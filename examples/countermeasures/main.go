// Countermeasures: the flip side the paper's conclusion calls for — use
// the testbed to study defenses against real-time PHY attacks. Part 1 runs
// the Xu-et-al-style consistency detector against live links under each
// jammer type; part 2 calibrates an iJam-style self-jamming secrecy scheme
// and shows the window where the intended receiver decodes everything and
// an energy-test eavesdropper decodes nothing.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/defense"
	"repro/internal/host"
	"repro/internal/iperf"
	"repro/internal/jammer"
	"repro/internal/wifi"
)

func main() {
	fmt.Println("== part 1: detecting the jammer from link telemetry ==")
	fmt.Printf("%-22s %6s %8s %6s   %s\n", "scenario", "PDR", "RSSI", "busy", "diagnosis")

	link := iperf.DefaultLink()
	link.Packets = 20
	link.PayloadBytes = 400

	scenarios := []struct {
		name string
		jam  iperf.JammerConfig
	}{
		{"no jammer", iperf.JammerConfig{Mode: iperf.JamOff}},
		{"continuous jammer", iperf.JammerConfig{
			Mode: iperf.JamContinuous, Personality: host.Personality{Gain: 1}}},
		{"reactive 0.1ms jammer", iperf.JammerConfig{
			Mode: iperf.JamReactive, VariableAttDB: 5,
			Personality: host.Personality{
				Waveform: jammer.WaveformWGN, Uptime: 100 * time.Microsecond, Gain: 1}}},
		{"weak reactive jammer", iperf.JammerConfig{
			Mode: iperf.JamReactive, VariableAttDB: 50,
			Personality: host.Personality{
				Waveform: jammer.WaveformWGN, Uptime: 100 * time.Microsecond, Gain: 1}}},
	}
	for _, sc := range scenarios {
		res, err := iperf.Run(link, sc.jam)
		if err != nil {
			log.Fatal(err)
		}
		// Telemetry the client actually has: its delivery ratio, the
		// (known) ~34 dB signal margin at the AP, and how often carrier
		// sense blocked it.
		busy := 0.0
		if sc.jam.Mode == iperf.JamContinuous && res.LinkDropped {
			busy = 1.0
		}
		diag := defense.DiagnoseAggregates(res.PRR, 34, busy)
		fmt.Printf("%-22s %6.2f %7.0fdB %6.2f   %v\n", sc.name, res.PRR, 34.0, busy, diag)
	}

	fmt.Println()
	fmt.Println("== part 2: iJam self-jamming secrecy (Gollakota & Katabi) ==")
	fmt.Println("frame at 54 Mbps; receiver jams one copy of every sample pair")
	fmt.Printf("%14s %12s %12s %16s\n", "jam/signal dB", "legit OK", "eve OK", "eve pick errors")
	pts, err := defense.IJamStudy([]float64{-10, -5, 0, 5, 10, 15}, 8,
		defense.IJamConfig{Rate: wifi.Rate54, NoiseSNRdB: 30, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("%14.0f %12.2f %12.2f %15.1f%%\n",
			p.JamToSignalDB, p.LegitRate, p.EveRate, 100*p.EvePickErrorRate)
	}
	fmt.Println()
	fmt.Println("the secrecy window: jamming near the signal level leaves the")
	fmt.Println("eavesdropper's energy test near chance while the intended")
	fmt.Println("receiver, holding the mask, loses nothing. too weak fails to")
	fmt.Println("corrupt; too loud leaks which copy was jammed.")

	fmt.Println()
	fmt.Println("== part 3: channel-hopping evasion ==")
	fmt.Println("victim hops over 8 channels; jammer sweeps with ~1.3 ms per probe")
	fmt.Printf("%12s %14s %16s\n", "dwell", "jammed air", "mean acquisition")
	for _, dwell := range []time.Duration{
		2 * time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond,
		100 * time.Millisecond, 500 * time.Millisecond,
	} {
		res, err := defense.SimulateHopping(defense.DefaultPursuit(8, dwell, 3), 400)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12v %13.1f%% %16v\n",
			dwell, 100*res.JammedFrac, res.MeanAcquisition.Round(10*time.Microsecond))
	}
	fmt.Println()
	fmt.Println("hopping faster than the jammer's scan-detect-tune loop keeps the")
	fmt.Println("link mostly clean; long dwells hand it back to the jammer.")
}
