// Flowgraph: compose the paper's §2.5 host application as a GNU-Radio-style
// graph — a WiFi frame source through a realistic front end into the jammer
// core, with probes on the receive and transmit edges. Every block boundary
// here corresponds to a wire in the GNU Radio Companion flowgraph the paper
// drives its hardware with.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/flow"
	"repro/internal/host"
	"repro/internal/impair"
	"repro/internal/jammer"
	"repro/internal/trigger"
	"repro/internal/wifi"
)

func main() {
	// Program the core exactly as the host GUI would.
	c := core.New()
	h := host.New(c)
	if _, err := h.ProgramCorrelatorFA(host.WiFiShortTemplate(), 0.1); err != nil {
		log.Fatal(err)
	}
	if _, err := h.ProgramTrigger(core.FusionSequence,
		[]trigger.Event{trigger.EventXCorr}, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := h.ProgramJammer(host.Personality{
		Waveform: jammer.WaveformWGN, Uptime: 50e3, Gain: 1, // 50 µs in ns
	}); err != nil {
		log.Fatal(err)
	}

	// Traffic: three WiFi frames with idle gaps, pre-resampled to the
	// core's 25 MSPS (the DDC wire of Fig. 1).
	var air dsp.Samples
	for i := 0; i < 3; i++ {
		frame, err := wifi.Modulate(wifi.AppendFCS(make([]byte, 120)),
			wifi.TxConfig{Rate: wifi.Rate24, ScramblerSeed: uint8(i) + 1})
		if err != nil {
			log.Fatal(err)
		}
		air = append(air, make(dsp.Samples, 1500)...)
		air = append(air, frame.Clone().Scale(0.3)...)
	}
	air = append(air, make(dsp.Samples, 1500)...)
	air = dsp.Resample(air, 5, 4)

	// The flowgraph:
	//   [frames] ─┐
	//             ├─[add]─[front end]─┬─[rx probe]
	//   [noise] ──┘                   └─[jammer core]─┬─[tx probe]
	//                                                 └─[tx sink]
	g := flow.NewGraph(2048)
	src := g.Add(&flow.VectorSource{Label: "wifi-frames", Data: air})
	noise := g.Add(&flow.NoiseSourceBlock{Src: dsp.NewNoiseSource(1e-6, 7)})
	add := g.Add(flow.Adder{})
	front := g.Add(flow.ImpairBlock{Chain: impair.New(impair.TypicalUSRP(2.484e9, 25e6, 1))})
	rxProbe := &flow.Probe{Label: "rx"}
	rp := g.Add(rxProbe)
	jam := g.Add(flow.CoreBlock{Core: c})
	txProbe := &flow.Probe{Label: "tx"}
	tp := g.Add(txProbe)
	sink := &flow.VectorSink{}
	sk := g.Add(sink)

	wires := []struct{ s, sp, d, dp int }{
		{src, 0, add, 0}, {noise, 0, add, 1},
		{add, 0, front, 0},
		{front, 0, rp, 0}, // probe taps are separate sinks
	}
	for _, w := range wires {
		if err := g.Connect(w.s, w.sp, w.d, w.dp); err != nil {
			log.Fatal(err)
		}
	}
	// The front end fans out to both the probe and the core; flow allows
	// multiple readers of one output port.
	if err := g.Connect(front, 0, jam, 0); err != nil {
		log.Fatal(err)
	}
	if err := g.Connect(jam, 0, tp, 0); err != nil {
		log.Fatal(err)
	}
	if err := g.Connect(jam, 0, sk, 0); err != nil {
		log.Fatal(err)
	}

	// Run on the backpressured pipeline scheduler: one goroutine per block,
	// bounded rings on every wire. Output is bit-identical to the
	// synchronous g.Run (the differential suite in internal/flow proves it);
	// the stats show how full each wire ran.
	stats, err := g.RunPipelined(len(air), flow.PipelineOptions{Depth: 4})
	if err != nil {
		log.Fatal(err)
	}

	st := c.Stats()
	fmt.Println("flowgraph run complete (pipelined scheduler):")
	fmt.Printf("  samples through graph   %d\n", rxProbe.Samples)
	fmt.Printf("  rx mean power           %.2e\n", rxProbe.Power())
	fmt.Printf("  detections              %d xcorr, %d triggers\n",
		st.XCorrDetections, st.JamTriggers)
	fmt.Printf("  tx mean power           %.2e (peak %.2f)\n", txProbe.Power(), txProbe.Peak)
	active := 0
	for _, v := range sink.Data {
		if v != 0 {
			active++
		}
	}
	fmt.Printf("  jam samples in sink     %d (%.1f µs)\n", active, float64(active)/25)
	fmt.Println("  edges (chunks carried, producer/consumer stalls, ring high-water):")
	for _, e := range stats.Edges {
		fmt.Printf("    %-18s → %-12s %4d chunks   stalls %d/%d   hw %d\n",
			e.From, e.To, e.Queue.Pushes,
			e.Queue.ProducerStalls, e.Queue.ConsumerStalls, e.Queue.OccupancyHW)
	}
}
