// WiMAX downlink jamming (paper §5, Fig. 12): detect and reactively jam
// 802.16e frames broadcast by the modeled Airspan base station, comparing
// cross-correlation-only detection against the fused correlator + energy
// configuration, and render the scope view of frames versus jam bursts.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"repro"
	"repro/internal/dsp"
	"repro/internal/experiments"
	"repro/internal/scope"
	"repro/internal/wimax"
)

func main() {
	res, err := experiments.Fig12WiMAX(30, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("WiMAX 802.16e downlink, Cell ID 1 / Segment 0, 10 MHz TDD:")
	fmt.Printf("  frames broadcast              %d\n", res.Frames)
	fmt.Printf("  xcorr-only detection          %.0f%%  (paper: ~1/3, misdetection ~2/3)\n", 100*res.XCorrOnlyPd)
	fmt.Printf("  xcorr+energy detection        %.0f%%  (paper: 100%%)\n", 100*res.CombinedPd)
	fmt.Printf("  jam bursts on the scope       %d\n", res.JamBursts)
	fmt.Printf("  one-to-one correspondence     %v\n\n", res.OneToOne)

	// Render a short scope capture like Fig. 12: base-station envelope on
	// top, jammer response underneath.
	jam := reactivejam.New()
	if err := jam.Tune(2.608e9); err != nil {
		log.Fatal(err)
	}
	if err := jam.DetectWiMAX(1, 0); err != nil {
		log.Fatal(err)
	}
	if err := jam.SetSourceRate(wimax.ActualSampleRate); err != nil {
		log.Fatal(err)
	}
	if _, err := jam.SetPersonality(reactivejam.Personality{
		Waveform: reactivejam.WGN, Uptime: 500 * time.Microsecond, Gain: 1,
	}); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	var air dsp.Samples
	for f := 0; f < 3; f++ {
		frame, err := wimax.DownlinkFrame(wimax.Config{CellID: 1, Segment: 0}, 24, int64(f))
		if err != nil {
			log.Fatal(err)
		}
		air = append(air, frame[:40*wimax.SymbolLen]...)
	}
	air.Scale(0.3)
	for i := range air {
		air[i] += complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-3
	}
	tx, err := jam.Process(air)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("scope view (3 frames, time left to right):")
	printEnvelope("  WiMAX DL ", scope.Envelope(air, len(air)/72), 0.05)
	printEnvelope("  jammer TX", scope.Envelope(tx, len(tx)/72), 0.05)
	st := jam.Stats()
	fmt.Printf("\njam triggers: %d, jam airtime: %v\n",
		st.JamTriggers, time.Duration(st.JamSamples)*40*time.Nanosecond)
}

func printEnvelope(label string, env []float64, level float64) {
	var b strings.Builder
	for _, v := range env {
		if v >= level {
			b.WriteByte('#')
		} else {
			b.WriteByte('.')
		}
	}
	fmt.Printf("%s |%s|\n", label, b.String())
}
