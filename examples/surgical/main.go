// Surgical jamming (paper §2.4 and §3.1): use the trigger-to-jam delay to
// place a very short burst on specific regions of an 802.11g frame — the
// remaining preamble, the SIGNAL field, the early data symbols — and
// measure which region is most destructive per microsecond of jamming.
// This is the "highly destructive ... ability to target critical
// information contained in a wireless PHY packet, such as channel
// estimation" attack the paper attributes to Thuente et al.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
	"repro/internal/dsp"
	"repro/internal/wifi"
)

const trials = 40

func main() {
	fmt.Println("surgical jamming: 8 µs WGN burst at increasing delay after the")
	fmt.Println("energy trigger, against 400-byte frames at 54 Mbps, jammer 14 dB")
	fmt.Println("below the signal at the receiver")
	fmt.Println()
	fmt.Printf("%12s %22s %10s\n", "delay (µs)", "burst lands on", "frame loss")

	for _, delayUS := range []int{0, 4, 8, 12, 16, 24, 40, 80} {
		loss, err := measure(time.Duration(delayUS) * time.Microsecond)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12d %22s %9.0f%%\n", delayUS, region(delayUS), 100*loss)
	}
	fmt.Println()
	fmt.Println("the burst that lands on the long training symbols (channel")
	fmt.Println("estimation) or SIGNAL field kills frames that the same burst")
	fmt.Println("cannot kill once the receiver is equalizing payload symbols.")
}

// region describes where a burst triggered ~1.3 µs into the frame lands
// after the given extra delay (frame: 8 µs STS, 8 µs LTS, 4 µs SIGNAL).
func region(delayUS int) string {
	at := 1.3 + float64(delayUS)
	switch {
	case at < 8:
		return "short preamble"
	case at < 16:
		return "LTS / channel est"
	case at < 20:
		return "SIGNAL field"
	case at < 60:
		return "early data symbols"
	default:
		return "frame tail"
	}
}

func measure(delay time.Duration) (float64, error) {
	jam := reactivejam.New()
	if err := jam.DetectEnergyRise(10); err != nil {
		return 0, err
	}
	if err := jam.SetSourceRate(wifi.SampleRate); err != nil {
		return 0, err
	}
	if _, err := jam.SetPersonality(reactivejam.Personality{
		Waveform: reactivejam.WGN,
		Uptime:   8 * time.Microsecond,
		Delay:    delay,
		Gain:     1,
	}); err != nil {
		return 0, err
	}

	rng := rand.New(rand.NewSource(11))
	const sigAmp = 0.5
	jamAmp := sigAmp / 5 // 14 dB below the signal at the victim receiver
	lost := 0
	for tr := 0; tr < trials; tr++ {
		payload := make([]byte, 400)
		rng.Read(payload)
		frame, err := wifi.Modulate(wifi.AppendFCS(payload),
			wifi.TxConfig{Rate: wifi.Rate54, ScramblerSeed: uint8(tr%126) + 1})
		if err != nil {
			return 0, err
		}
		air := make(dsp.Samples, 512+len(frame)+512)
		copy(air[512:], frame)
		air.Scale(sigAmp)

		// The jammer hears the same waveform; its burst lands back at the
		// victim receiver (resampled 25→20 MSPS) scaled to jamAmp.
		tx, err := jam.Process(air)
		if err != nil {
			return 0, err
		}
		burst := dsp.Resample(tx, 4, 5)
		victim := air.Clone()
		for i := range victim {
			if i < len(burst) {
				victim[i] += burst[i] * complex(jamAmp, 0)
			}
			victim[i] += complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-3
		}
		res, err := wifi.Demodulate(victim, 512+160, 512+224)
		ok := err == nil
		if ok {
			_, ok = wifi.CheckFCS(res.PSDU)
		}
		if !ok {
			lost++
		}
	}
	return float64(lost) / trials, nil
}
