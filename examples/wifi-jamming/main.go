// WiFi jamming study (paper §4, Figs. 10-11 in miniature): run iperf-style
// UDP bandwidth tests between the AP and client of the 5-port wired testbed
// while the jammer sweeps its effective power, for the three jammer types
// the paper compares — continuous, reactive with 0.1 ms uptime, and
// reactive with 0.01 ms uptime.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/experiments"
	"repro/internal/iperf"
)

func main() {
	base, err := experiments.BaselineBandwidthKbps(40, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no-jammer baseline: %.1f Mbps of %.0f Mbps offered (paper: ~29 of 54)\n\n",
		base/1000, experiments.MaxUDPTheoretical()/1000)

	types := []struct {
		name   string
		mode   iperf.JamMode
		uptime time.Duration
	}{
		{"continuous", iperf.JamContinuous, 0},
		{"reactive 0.1ms uptime", iperf.JamReactive, 100 * time.Microsecond},
		{"reactive 0.01ms uptime", iperf.JamReactive, 10 * time.Microsecond},
	}
	for _, ty := range types {
		cfg := experiments.DefaultJamSweep(ty.mode, ty.uptime)
		cfg.Packets = 25
		cfg.Attenuations = []float64{0, 10, 15, 20, 25, 30, 35, 45}
		pts, err := experiments.RunJamSweep(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", ty.name)
		fmt.Printf("  %10s %10s %12s %6s %8s %s\n",
			"SIR(dB)", "BW(Mbps)", "PRR", "rate", "on-air", "link")
		for _, p := range pts {
			link := "up"
			if p.Result.LinkDropped {
				link = "LOST"
			}
			fmt.Printf("  %10.1f %10.2f %12.2f %6v %7.1f%% %s\n",
				p.Result.SIRdB, p.Result.BandwidthKbps/1000, p.Result.PRR,
				p.Result.FinalRate, 100*p.Result.JamAirtimeFrac, link)
		}
		fmt.Println()
	}
	fmt.Println("reading the table: the continuous jammer kills the link at the")
	fmt.Println("weakest power (highest SIR) by tripping carrier sense; the 0.1 ms")
	fmt.Println("reactive jammer needs ~17 dB more instantaneous power but is on the")
	fmt.Println("air a third of the time; the 0.01 ms jammer needs the most power")
	fmt.Println("but transmits for only ~6% of the air time.")
}
