// Quickstart: arm the reactive jammer with the 802.11g short-preamble
// template, stream one WiFi frame past it, and watch it detect and jam
// within the paper's latency budget.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
	"repro/internal/dsp"
	"repro/internal/wifi"
)

func main() {
	jam := reactivejam.New()

	// Protocol-aware detection: 802.11g short training sequence, threshold
	// calibrated to ~0.06 false alarms per second on a terminated input.
	if err := jam.DetectWiFiShortPreamble(0.059); err != nil {
		log.Fatal(err)
	}
	// A 0.1 ms wideband-noise burst per trigger, at unit TX gain.
	if _, err := jam.SetPersonality(reactivejam.Personality{
		Name:     "reactive-0.1ms",
		Waveform: reactivejam.WGN,
		Uptime:   100 * time.Microsecond,
		Gain:     1,
	}); err != nil {
		log.Fatal(err)
	}
	// The victim transmits at the 802.11g native 20 MSPS; the jammer's
	// receive chain resamples to its fixed 25 MSPS.
	if err := jam.SetSourceRate(wifi.SampleRate); err != nil {
		log.Fatal(err)
	}

	tl := jam.Timelines()
	fmt.Println("latency budget (paper Fig. 5):")
	fmt.Printf("  energy detection   %8v\n", tl.EnergyDetect)
	fmt.Printf("  xcorr detection    %8v\n", tl.XCorrDetect)
	fmt.Printf("  TX init            %8v\n", tl.TXInit)
	fmt.Printf("  response (xcorr)   %8v\n", tl.ResponseXCorr)
	fmt.Printf("  jam burst          %8v\n", tl.JamBurst)

	// One 100-byte WiFi frame at 24 Mbps in light noise.
	frame, err := wifi.Modulate(wifi.AppendFCS(make([]byte, 100)),
		wifi.TxConfig{Rate: wifi.Rate24, ScramblerSeed: 0x2A})
	if err != nil {
		log.Fatal(err)
	}
	rx := make(dsp.Samples, 1000+len(frame)+1000)
	copy(rx[1000:], frame)
	rx.Scale(0.3)
	rng := rand.New(rand.NewSource(1))
	for i := range rx {
		rx[i] += complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-4
	}

	tx, err := jam.Process(rx)
	if err != nil {
		log.Fatal(err)
	}

	st := jam.Stats()
	firstJam := -1
	jamSamples := 0
	for i, s := range tx {
		if s != 0 {
			if firstJam < 0 {
				firstJam = i
			}
			jamSamples++
		}
	}
	fmt.Println("\nresult:")
	fmt.Printf("  frames on the air         1\n")
	fmt.Printf("  xcorr detections          %d\n", st.XCorrDetections)
	fmt.Printf("  jam triggers              %d\n", st.JamTriggers)
	fmt.Printf("  jam samples transmitted   %d (%.1f µs)\n",
		jamSamples, float64(jamSamples)/25)
	if firstJam >= 0 {
		// rx index 1000 at 20 MSPS = 50 µs; tx is at 25 MSPS.
		frameStartUS := 1000.0 / 20
		jamStartUS := float64(firstJam) / 25
		fmt.Printf("  jam started               %.2f µs after frame start\n",
			jamStartUS-frameStartUS)
	}
	fmt.Printf("  simulated hardware time   %v\n", jam.Elapsed())
}
