GO ?= go

.PHONY: ci build vet test race bench bench-smoke bench-json

## ci: the full tier-1 verify path — vet, build, tests, then the race
## detector over every package (the register bus, clock and telemetry
## recorder are exercised cross-goroutine by design), plus one iteration
## of the core throughput benchmark so datapath regressions that only
## break under -bench are caught here.
ci: vet build test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

## bench-smoke: compile-and-run sanity for the benchmark harness — one
## iteration of the core datapath benchmarks, no timing claims.
bench-smoke:
	$(GO) test -run='^$$' -bench='CorePerSample|CoreDatapath' -benchtime=1x .

## bench-json: write the machine-readable benchmark baseline
## (BENCH_<date>.json). Refuses to overwrite an existing baseline unless
## FORCE=1 is set.
bench-json:
	$(GO) run ./cmd/experiments -bench-json BENCH_$$(date +%Y-%m-%d).json $(if $(FORCE),-force)
