GO ?= go

.PHONY: ci build vet test race bench

## ci: the full tier-1 verify path — vet, build, tests, then the race
## detector over every package (the register bus, clock and telemetry
## recorder are exercised cross-goroutine by design).
ci: vet build test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
