GO ?= go

## BENCH_BASELINE: the committed benchmark baseline that bench-json writes
## and bench-diff compares against. Defaults to the newest BENCH_*.json in
## the repo root; falls back to a date-stamped name when none exists yet.
## Override per-invocation: `make bench-diff BENCH_BASELINE=BENCH_old.json`.
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
ifeq ($(BENCH_BASELINE),)
BENCH_BASELINE = BENCH_$(shell date +%Y-%m-%d).json
endif

## STATICCHECK_VERSION: the pinned honnef.co/go/tools release `make
## staticcheck` expects. The target runs the binary when it is on PATH and
## prints a skip note otherwise (the CI image does not ship it and the
## build must not fetch dependencies).
STATICCHECK_VERSION ?= 2025.1

.PHONY: ci build vet test race bench bench-smoke bench-json bench-diff bench-diff-smoke slo examples-smoke cover cover-baseline chaos staticcheck incident fleetobs fleetobs-smoke flowpipe flowpipe-smoke

## ci: the full tier-1 verify path — vet, build, tests, then the race
## detector over every package (the register bus, clock and telemetry
## recorder are exercised cross-goroutine by design), plus one iteration
## of the core throughput benchmark so datapath regressions that only
## break under -bench are caught here. The slo target gates the paper's
## reaction-latency and false-alarm budgets, and bench-diff-smoke compares
## datapath throughput against the committed baseline in tolerant mode so
## the whole chain fits a CI smoke budget. examples-smoke keeps the
## executable documentation honest, and cover enforces the coverage
## ratchet against COVERAGE_BASELINE. fleetobs-smoke runs the fleet
## telemetry drill at small scale and fails on journal drops, a
## reconciliation mismatch, or a malformed / over-budget metrics scrape.
## flowpipe-smoke proves the pipelined flowgraph scheduler bit-identical to
## the synchronous reference on the host datapath before measuring it.
ci: vet staticcheck build test race bench-smoke slo bench-diff-smoke fleetobs-smoke flowpipe-smoke examples-smoke cover

## staticcheck: zero-findings lint gate, pinned to $(STATICCHECK_VERSION).
## Skips with a note when the binary is absent (no network fetches in CI).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck: $$(staticcheck -version 2>/dev/null)"; \
		staticcheck ./...; \
	else \
		echo "staticcheck: binary not installed; skipping (pin: $(STATICCHECK_VERSION))"; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

## bench-smoke: compile-and-run sanity for the benchmark harness — one
## iteration of the core datapath benchmarks, no timing claims.
bench-smoke:
	$(GO) test -run='^$$' -bench='CorePerSample|CoreDatapath' -benchtime=1x .

## bench-json: write the machine-readable benchmark baseline
## ($(BENCH_BASELINE)). Refuses to overwrite an existing baseline or to
## record one from a dirty working tree unless FORCE=1 is set — a baseline
## must correspond to a commit, or bench-diff compares against nothing
## reproducible.
bench-json:
	@if [ -z "$(FORCE)" ] && ! git diff --quiet HEAD 2>/dev/null; then \
		echo "bench-json: working tree is dirty; commit first or set FORCE=1" >&2; \
		exit 1; \
	fi
	$(GO) run ./cmd/experiments -bench-json $(BENCH_BASELINE) $(if $(FORCE),-force)

## bench-diff: measure the current tree and fail on regression against the
## baseline — full mode: 300 ms throughput windows with a 0.60 ratio floor
## plus exact re-verification of every seeded figure in the baseline.
bench-diff:
	$(GO) run ./cmd/experiments -bench-diff $(BENCH_BASELINE)

## bench-diff-smoke: the tolerant variant used by `make ci` — short
## throughput windows and a loose ratio floor (catches order-of-magnitude
## datapath regressions without false-failing on loaded machines), no
## figure re-runs.
bench-diff-smoke:
	$(GO) run ./cmd/experiments -bench-diff $(BENCH_BASELINE) -tolerant

## slo: evaluate the paper-derived service-level budgets (reaction p99
## within Ten_det + Tinit + front-end group delay, late-jam fraction,
## false-alarm rate, journal drops) on seeded runs; violations exit 1.
slo:
	$(GO) run ./cmd/experiments -run slo

## chaos: run the fault-injection campaign sweep (control + every fault
## class at severities 1..3) against the datapath invariant catalog; any
## broken invariant, or any blemish on the zero-fault control row, exits 1.
chaos:
	$(GO) run ./cmd/experiments -run chaos

## fleetobs: the fleet observability drill — 256 concurrent cells through
## the sharded aggregation plane; verifies bit-for-bit reconciliation of
## every cell against its own recorder, zero journal drops, a lint-clean
## cardinality-bounded scrape, and writes the JSONL fleet ledger
## (fleet_ledger.jsonl, byte-stable per seed modulo wall_ms).
fleetobs:
	$(GO) run ./cmd/experiments -run fleetobs

## fleetobs-smoke: the CI-sized variant — 24 cells, same acceptance checks
## (reconciliation, zero drops, well-formed scrape), no ledger file.
fleetobs-smoke:
	$(GO) run ./cmd/experiments -run fleetobs -fleet-cells 24 -fleet-out ""

## flowpipe: the flowgraph scheduler comparison (EXPERIMENTS.md E20) —
## proves the backpressured pipeline runtime bit-identical to the
## synchronous reference on the host datapath at every chunk size, then
## reports both schedulers' Msps and the ring stall counters. Paper-scale
## streams via FULL=1.
flowpipe:
	$(GO) run ./cmd/experiments -run flowpipe $(if $(FULL),-full)

## flowpipe-smoke: the CI-sized variant — same bit-exactness gate on the
## default (reduced) stream budget; any scheduler divergence exits 1.
flowpipe-smoke:
	$(GO) run ./cmd/experiments -run flowpipe

## incident: the flight-recorder drill (EXPERIMENTS.md E16) — replay a
## seeded SLO breach through the breach→dump path twice and require the
## two incident dumps to be byte-identical; the dump lands in
## incident_dump.json.
incident:
	$(GO) run ./cmd/experiments -run incident

## examples-smoke: run every example program end to end and require a clean
## exit — the examples are executable documentation and must not rot.
examples-smoke:
	@set -e; for d in examples/*/; do \
		echo "examples-smoke: $$d"; \
		$(GO) run ./$$d >/dev/null; \
	done

## cover: the coverage ratchet. Measures statement coverage across
## ./internal/... and fails if the total drops more than half a point below
## the committed COVERAGE_BASELINE. When coverage genuinely improves,
## re-record the floor: `make cover-baseline`.
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./internal/...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	baseline=$$(cat COVERAGE_BASELINE); \
	echo "cover: total $$total% (baseline $$baseline%, tolerance 0.5pt)"; \
	awk -v t=$$total -v b=$$baseline 'BEGIN { exit !(t+0.5 >= b) }' || { \
		echo "cover: coverage regressed more than 0.5pt below the $$baseline% baseline" >&2; \
		exit 1; \
	}

## cover-baseline: re-record the coverage floor from the current tree.
cover-baseline:
	$(GO) test -count=1 -coverprofile=coverage.out ./internal/...
	@$(GO) tool cover -func=coverage.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }' > COVERAGE_BASELINE
	@echo "cover-baseline: $$(cat COVERAGE_BASELINE)% recorded"
