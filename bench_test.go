// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the ablations DESIGN.md calls out. Each bench
// regenerates its experiment's data and reports the headline numbers as
// custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation and prints paper-comparable figures.
package reactivejam

import (
	"math"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/experiments"
	"repro/internal/host"
	"repro/internal/iperf"
	"repro/internal/jammer"
	"repro/internal/radio"
	"repro/internal/telemetry"
	"repro/internal/trigger"
	"repro/internal/wifi"
)

// benchFrames / benchPackets trade statistical tightness for run time;
// cmd/experiments -full runs the paper-scale budgets.
const (
	benchFrames  = 200
	benchPackets = 25
)

func BenchmarkFig5Timelines(b *testing.B) {
	var last time.Duration
	for i := 0; i < b.N; i++ {
		t := experiments.Fig5(100 * time.Microsecond)
		last = t.TRespXCorr
	}
	b.ReportMetric(float64(last.Nanoseconds()), "Tresp-xcorr-ns")
	t := experiments.Fig5(100 * time.Microsecond)
	b.ReportMetric(float64(t.TRespEnergy.Nanoseconds()), "Tresp-energy-ns")
	b.ReportMetric(float64(t.TInit.Nanoseconds()), "Tinit-ns")
}

// reportPd runs a detection characterization once per bench invocation and
// reports Pd at the low/mid/high SNR points.
func reportPd(b *testing.B, cfg experiments.DetectionConfig) {
	b.Helper()
	var res *experiments.DetectionResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.CharacterizeDetection(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	for _, p := range res.Points {
		switch p.SNRdB {
		case -4, 2, 10:
			b.ReportMetric(p.Pd, "Pd@"+strconv.Itoa(int(p.SNRdB))+"dB")
		}
	}
	b.ReportMetric(res.FalseAlarmsPerSec, "FA/s")
}

func BenchmarkFig6LongPreambleDetection(b *testing.B) {
	b.Run("single-loose", func(b *testing.B) {
		reportPd(b, experiments.Fig6Config(experiments.SingleLongPreamble, false, benchFrames))
	})
	b.Run("single-tight", func(b *testing.B) {
		reportPd(b, experiments.Fig6Config(experiments.SingleLongPreamble, true, benchFrames))
	})
	b.Run("full-loose", func(b *testing.B) {
		reportPd(b, experiments.Fig6Config(experiments.FullFrame, false, benchFrames))
	})
}

func BenchmarkFig7ShortPreambleDetection(b *testing.B) {
	reportPd(b, experiments.Fig7Config(benchFrames))
}

func BenchmarkFig8EnergyDetection(b *testing.B) {
	cfg := experiments.Fig8Config(benchFrames)
	var res *experiments.DetectionResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.CharacterizeDetection(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	for _, p := range res.Points {
		if p.SNRdB == 14 {
			b.ReportMetric(p.Pd, "Pd@14dB")
			b.ReportMetric(p.DetectionsPerFrame, "det/frame@14dB")
		}
	}
}

func BenchmarkTable1InsertionLoss(b *testing.B) {
	var tab [5][5]float64
	for i := 0; i < b.N; i++ {
		tab = experiments.Table1()
	}
	b.ReportMetric(tab[0][1], "loss-1to2-dB")
	b.ReportMetric(tab[3][0], "loss-4to1-dB")
}

// jamSweepBench runs one Fig. 10/11 curve and reports the kill SIR (the
// highest measured SIR with zero delivery) and bandwidth at the weakest
// jamming point.
func jamSweepBench(b *testing.B, mode iperf.JamMode, uptime time.Duration) {
	b.Helper()
	cfg := experiments.DefaultJamSweep(mode, uptime)
	cfg.Packets = benchPackets
	var pts []experiments.JamSweepPoint
	for i := 0; i < b.N; i++ {
		p, err := experiments.RunJamSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pts = p
	}
	kill := math.Inf(-1)
	for _, p := range pts {
		if p.Result.PRR == 0 && p.Result.SIRdB > kill {
			kill = p.Result.SIRdB
		}
	}
	b.ReportMetric(kill, "kill-SIR-dB")
	last := pts[len(pts)-1].Result
	b.ReportMetric(last.BandwidthKbps/1000, "BW-weakest-Mbps")
	b.ReportMetric(last.JamAirtimeFrac, "jam-airtime")
}

func BenchmarkFig10Bandwidth(b *testing.B) {
	b.Run("continuous", func(b *testing.B) { jamSweepBench(b, iperf.JamContinuous, 0) })
	b.Run("reactive-0.1ms", func(b *testing.B) {
		jamSweepBench(b, iperf.JamReactive, 100*time.Microsecond)
	})
	b.Run("reactive-0.01ms", func(b *testing.B) {
		jamSweepBench(b, iperf.JamReactive, 10*time.Microsecond)
	})
}

func BenchmarkFig11PRR(b *testing.B) {
	// The PRR series comes from the same sweep machinery; report PRR at a
	// strong and a weak point for the 0.1 ms jammer.
	cfg := experiments.DefaultJamSweep(iperf.JamReactive, 100*time.Microsecond)
	cfg.Packets = benchPackets
	cfg.Attenuations = []float64{10, 45}
	var pts []experiments.JamSweepPoint
	for i := 0; i < b.N; i++ {
		p, err := experiments.RunJamSweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pts = p
	}
	b.ReportMetric(pts[0].Result.PRR, "PRR-strong")
	b.ReportMetric(pts[1].Result.PRR, "PRR-weak")
}

func BenchmarkFig12WiMAX(b *testing.B) {
	var res *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12WiMAX(30, 5)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.XCorrOnlyPd, "xcorr-only-Pd")
	b.ReportMetric(res.CombinedPd, "combined-Pd")
	b.ReportMetric(float64(res.JamBursts)/float64(res.Frames), "bursts/frame")
}

func BenchmarkResourceUtilization(b *testing.B) {
	var r experiments.ResourceReport
	for i := 0; i < b.N; i++ {
		r = experiments.Resources()
	}
	if r.XCorr == "" {
		b.Fatal("empty report")
	}
	c := New()
	_ = c
}

func BenchmarkReconfigLatency(b *testing.B) {
	var p, d time.Duration
	for i := 0; i < b.N; i++ {
		var err error
		p, d, err = experiments.ReconfigLatency()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p.Nanoseconds()), "personality-ns")
	b.ReportMetric(float64(d.Nanoseconds()), "detector-ns")
}

func BenchmarkAblationSignBitCorrelator(b *testing.B) {
	var rows []experiments.CorrelatorComparison
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationCorrelators([]float64{-4}, 100, 3)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[0].HardwarePd, "hw-Pd@-4dB")
	b.ReportMetric(rows[0].FullPrecisionPd, "float-Pd@-4dB")
	b.ReportMetric(rows[0].RawRateTemplatePd, "rawrate-Pd@-4dB")
}

func BenchmarkAblationCorrelatorLength(b *testing.B) {
	var rows []experiments.CorrelatorComparison
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationCorrelators([]float64{-6}, 100, 3)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[0].FullPrecisionPd, "64tap-Pd@-6dB")
	b.ReportMetric(rows[0].FullPrecision128Pd, "128tap-Pd@-6dB")
}

func BenchmarkAblationEnergyWindow(b *testing.B) {
	var rows []experiments.EnergyWindowPoint
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationEnergyWindow([]int{8, 32, 128}, 100, 4)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[1].LatencyUS, "N32-latency-us")
	b.ReportMetric(rows[2].Pd, "N128-Pd")
}

func BenchmarkAblationDetectorFusion(b *testing.B) {
	var res *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12WiMAX(20, 5)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.CombinedPd-res.XCorrOnlyPd, "fusion-gain")
}

func BenchmarkAblationWaveforms(b *testing.B) {
	var rows []experiments.WaveformAblationRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationWaveforms(8, 5, 2)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		b.ReportMetric(r.PRR, "PRR-"+r.Waveform.String())
	}
}

// BenchmarkCorePerSample measures the raw datapath throughput of the DSP
// core (engineering metric, not a paper figure).
func BenchmarkCorePerSample(b *testing.B) {
	f := New()
	if err := f.DetectWiFiShortPreamble(0.1); err != nil {
		b.Fatal(err)
	}
	buf := make([]complex128, 4096)
	for i := range buf {
		buf[i] = complex(float64(i%7)*0.01, 0)
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		out, err := f.Process(buf)
		if err != nil {
			b.Fatal(err)
		}
		n += len(out)
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "Msamples/s")
}

// BenchmarkCoreDatapath isolates the two core entry points behind the radio
// front end: the legacy per-sample call and the block fast path that hoists
// quantization, recorder dispatch and counter updates out of the loop.
func BenchmarkCoreDatapath(b *testing.B) {
	build := func(b *testing.B) *core.Core {
		r := radio.New()
		h := host.New(r.Core())
		if _, err := h.ProgramCorrelator(host.WiFiShortTemplate(), 0.1); err != nil {
			b.Fatal(err)
		}
		if _, err := h.ProgramEnergy(10, 0); err != nil {
			b.Fatal(err)
		}
		r.Start()
		return r.Core()
	}
	buf := make([]complex128, 4096)
	for i := range buf {
		buf[i] = complex(float64(i%7)*0.01, 0)
	}
	b.Run("per-sample", func(b *testing.B) {
		c := build(b)
		b.ReportAllocs()
		b.ResetTimer()
		n := 0
		for i := 0; i < b.N; i++ {
			for _, s := range buf {
				c.ProcessSample(s)
			}
			n += len(buf)
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "Msamples/s")
	})
	b.Run("block", func(b *testing.B) {
		c := build(b)
		tx := make([]complex128, len(buf))
		b.ReportAllocs()
		b.ResetTimer()
		n := 0
		for i := 0; i < b.N; i++ {
			c.ProcessBlock(buf, tx)
			n += len(buf)
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "Msamples/s")
	})
	// block-parallel models the multi-channel deployment: GOMAXPROCS
	// independent cores each streaming blocks at once. Aggregate Msps should
	// scale near-linearly since the block path allocates nothing in steady
	// state and shares no mutable data between cores.
	b.Run("block-parallel", func(b *testing.B) {
		var n int64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			c := build(b)
			tx := make([]complex128, len(buf))
			local := 0
			for pb.Next() {
				c.ProcessBlock(buf, tx)
				local += len(buf)
			}
			atomic.AddInt64(&n, int64(local))
		})
		b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "Msamples/s")
	})
}

// newTelemetryBenchCore builds an energy-armed, jamming core plus an input
// buffer whose quiet→burst→quiet shape exercises detections, trigger fires
// and full jam-burst lifecycles.
func newTelemetryBenchCore(tb testing.TB) (*core.Core, []complex128) {
	tb.Helper()
	r := radio.New()
	h := host.New(r.Core())
	if _, err := h.ProgramEnergy(10, 0); err != nil {
		tb.Fatal(err)
	}
	if _, err := h.ProgramTrigger(core.FusionSequence,
		[]trigger.Event{trigger.EventEnergyHigh}, 0); err != nil {
		tb.Fatal(err)
	}
	if _, err := h.ProgramJammer(host.Personality{
		Waveform: jammer.WaveformWGN, Uptime: 10 * time.Microsecond, Gain: 1,
	}); err != nil {
		tb.Fatal(err)
	}
	r.Start()
	buf := make([]complex128, 4096)
	for i := range buf {
		switch {
		case i >= 1024 && i < 1536: // burst
			buf[i] = complex(0.3, 0.1)
		default: // noise floor
			buf[i] = complex(1e-4*float64(i%5-2), 0)
		}
	}
	return r.Core(), buf
}

// BenchmarkTelemetryRecorder compares the per-sample datapath cost with the
// default no-op recorder against a live recorder (journal + histograms +
// counters attached).
func BenchmarkTelemetryRecorder(b *testing.B) {
	for _, mode := range []string{"nop", "live"} {
		b.Run(mode, func(b *testing.B) {
			c, buf := newTelemetryBenchCore(b)
			if mode == "live" {
				c.SetRecorder(telemetry.NewLive(1 << 12))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.ProcessSample(buf[i%len(buf)])
			}
		})
	}
}

// TestRecorderZeroAllocs pins the tentpole guarantee: the instrumented
// sample loop performs zero heap allocations per sample — with the default
// no-op recorder AND with a live recorder attached (ring journal and
// histograms are preallocated).
func TestRecorderZeroAllocs(t *testing.T) {
	for _, mode := range []string{"nop", "live"} {
		c, buf := newTelemetryBenchCore(t)
		if mode == "live" {
			c.SetRecorder(telemetry.NewLive(1 << 12))
		}
		allocs := testing.AllocsPerRun(10, func() {
			for _, s := range buf {
				c.ProcessSample(s)
			}
		})
		if allocs != 0 {
			t.Errorf("%s recorder: %.1f allocs per 4096-sample run, want 0",
				mode, allocs)
		}
	}
}

// BenchmarkProtocolSelectivity reports the §2.3 protocol-awareness matrix:
// diagonal detection minus worst off-diagonal cross-trigger.
func BenchmarkProtocolSelectivity(b *testing.B) {
	var res *experiments.SelectivityResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Selectivity(30, 15, 9)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	minDiag, maxCross := 1.0, 0.0
	for i := range experiments.AllStandards {
		if res.Pd[i][i] < minDiag {
			minDiag = res.Pd[i][i]
		}
		for j := range experiments.AllStandards {
			if i != j && res.Pd[i][j] > maxCross {
				maxCross = res.Pd[i][j]
			}
		}
	}
	b.ReportMetric(minDiag, "min-diagonal-Pd")
	b.ReportMetric(maxCross, "max-cross-Pd")
}

// BenchmarkAblationImpairments reports how hardware front-end realism
// shifts the Fig. 6 operating point.
func BenchmarkAblationImpairments(b *testing.B) {
	var rows []experiments.ImpairmentRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationImpairments(100, -3, 5)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, r := range rows {
		b.ReportMetric(r.Pd, "Pd-"+r.Label)
	}
}

// BenchmarkCountermeasureIJam reports the iJam secrecy window: legit and
// eavesdropper recovery at the calibrated 0 dB jam-to-signal point.
func BenchmarkCountermeasureIJam(b *testing.B) {
	var pts []defense.IJamPoint
	for i := 0; i < b.N; i++ {
		p, err := defense.IJamStudy([]float64{0}, 6,
			defense.IJamConfig{Rate: wifi.Rate54, NoiseSNRdB: 30, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		pts = p
	}
	b.ReportMetric(pts[0].LegitRate, "legit-rate")
	b.ReportMetric(pts[0].EveRate, "eve-rate")
	b.ReportMetric(pts[0].EvePickErrorRate, "eve-pick-err")
}

// BenchmarkAblationSoftDecision reports hard vs soft victim FER under a
// 4-symbol jam burst.
func BenchmarkAblationSoftDecision(b *testing.B) {
	var rows []experiments.SoftDecisionRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSoftDecision([]int{4}, 40, 6)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[0].HardFER, "hard-FER")
	b.ReportMetric(rows[0].SoftFER, "soft-FER")
}
