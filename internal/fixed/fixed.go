// Package fixed models the fixed-point numeric formats of the simulated
// USRP N210 receive chain: the 16-bit signed I/Q samples that the DDC hands
// to the custom DSP core, and the 3-bit signed cross-correlation coefficients
// the WARP-derived correlator uses (paper §2.3).
//
// Keeping quantization in its own package lets the detectors operate on
// exactly the integer values the FPGA would see, so effects like sign-bit
// slicing and coefficient quantization are reproduced bit-for-bit rather
// than approximated in floating point.
package fixed

import (
	"fmt"
	"math"
)

// FullScale is the int16 full-scale magnitude used by the simulated ADC/DDC.
// A floating-point amplitude of 1.0 maps to this code.
const FullScale = 32767

// IQ is one 16-bit complex baseband sample as seen on the FPGA user bus.
type IQ struct {
	I int16
	Q int16
}

// Quantize converts a floating-point complex sample (nominal range ±1.0)
// into a 16-bit I/Q pair, saturating out-of-range values like the ADC does.
func Quantize(x complex128) IQ {
	return IQ{I: sat16(real(x) * FullScale), Q: sat16(imag(x) * FullScale)}
}

// QuantizeBuffer converts a whole floating-point buffer.
func QuantizeBuffer(x []complex128) []IQ {
	out := make([]IQ, len(x))
	for i, v := range x {
		out[i] = Quantize(v)
	}
	return out
}

// QuantizeFused is the single-sweep block quantizer of the SoA datapath: it
// converts src into separate I and Q int16 planes and packs the I/Q sign
// bits 64 per uint64 word (bit k of word w ⟺ sample w·64+k is negative, the
// 1-bit MSB slice of the cross-correlator). scale is an RX amplitude gain
// applied before quantization, bit-identical to multiplying each sample by
// complex(scale, 0) first; pass 1 for none.
//
// iPlane and qPlane must be at least len(src) long; signI and signQ must
// hold at least ⌈len(src)/64⌉ words. Unused bits of the last sign word are
// left zero. The fusion exists so the block datapath touches the input
// exactly once: every downstream kernel (energy differentiator, packed
// correlator, replay capture) reads the planes this sweep produces.
func QuantizeFused(src []complex128, scale float64, iPlane, qPlane []int16, signI, signQ []uint64) {
	n := len(src)
	if n == 0 {
		return
	}
	_ = iPlane[:n]
	_ = qPlane[:n]
	words := (n + 63) / 64
	_ = signI[:words]
	_ = signQ[:words]
	g := complex(scale, 0)
	scaled := scale != 1
	for base, w := 0, 0; base < n; base, w = base+64, w+1 {
		count := n - base
		if count > 64 {
			count = 64
		}
		var sI, sQ uint64
		for k := 0; k < count; k++ {
			v := src[base+k]
			if scaled {
				v *= g
			}
			// Round-half-away-from-zero spelled out without math.Round: for
			// 0.5 ≤ |r| < 32767.5 the truncation of r ± 0.5 is exact (the
			// addition cannot round across an integer boundary there), for
			// |r| < 0.5 the result is 0 — which also catches ±(0.5 − 2⁻⁵⁴),
			// the one double where fl(r+0.5) rounds up to 1 — and the rare
			// saturation zone falls back to the scalar sat16. Bit-identical
			// to Quantize for every input, including NaN and ±Inf.
			ri := real(v) * FullScale
			rq := imag(v) * FullScale
			var i16, q16 int16
			if ai := math.Abs(ri); ai >= 0.5 {
				if ai < 32767.5 {
					i16 = int16(ri + math.Copysign(0.5, ri))
				} else {
					i16 = sat16(ri)
				}
			}
			if aq := math.Abs(rq); aq >= 0.5 {
				if aq < 32767.5 {
					q16 = int16(rq + math.Copysign(0.5, rq))
				} else {
					q16 = sat16(rq)
				}
			}
			iPlane[base+k] = i16
			qPlane[base+k] = q16
			sI |= uint64(uint16(i16)) >> 15 << k
			sQ |= uint64(uint16(q16)) >> 15 << k
		}
		signI[w] = sI
		signQ[w] = sQ
	}
}

// Complex converts the sample back to floating point in ±1.0 range.
func (s IQ) Complex() complex128 {
	return complex(float64(s.I)/FullScale, float64(s.Q)/FullScale)
}

// Energy returns I²+Q² as a uint64, matching the FPGA's x² energy reading
// (paper Fig. 4: x[n] computed from the incoming I/Q pair).
func (s IQ) Energy() uint64 {
	return uint64(int64(s.I)*int64(s.I) + int64(s.Q)*int64(s.Q))
}

// SignBit returns the 1-bit signed slicing of the sample used by the
// cross-correlator (paper Fig. 3: "Slice 1 bit signed MSB"): +1 for
// non-negative, -1 for negative, independently for I and Q.
func (s IQ) SignBit() (i, q int8) {
	i, q = 1, 1
	if s.I < 0 {
		i = -1
	}
	if s.Q < 0 {
		q = -1
	}
	return i, q
}

func sat16(v float64) int16 {
	r := math.Round(v)
	switch {
	case r > 32767:
		return 32767
	case r < -32768:
		return -32768
	default:
		return int16(r)
	}
}

// Coeff3 is a 3-bit signed correlator coefficient in [-4, 3], the format
// loaded over the user register bus into the correlator's coefficient banks.
type Coeff3 int8

// Coeff3Min and Coeff3Max bound the representable 3-bit signed range.
const (
	Coeff3Min Coeff3 = -4
	Coeff3Max Coeff3 = 3
)

// NewCoeff3 clamps v to the representable range.
func NewCoeff3(v int) Coeff3 {
	switch {
	case v < int(Coeff3Min):
		return Coeff3Min
	case v > int(Coeff3Max):
		return Coeff3Max
	default:
		return Coeff3(v)
	}
}

// QuantizeCoeff maps a floating-point coefficient in [-1, 1] to the 3-bit
// signed grid, scaling so that ±1.0 uses the full positive range (±3) to keep
// the quantization symmetric, as the reference design's offline coefficient
// generator does.
func QuantizeCoeff(v float64) Coeff3 {
	return NewCoeff3(int(math.Round(v * 3)))
}

// QuantizeCoeffs quantizes a coefficient template. Values are first
// normalized by the template's peak magnitude so the dynamic range of the
// preamble is preserved.
func QuantizeCoeffs(v []float64) []Coeff3 {
	peak := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > peak {
			peak = a
		}
	}
	out := make([]Coeff3, len(v))
	if peak == 0 {
		return out
	}
	for i, x := range v {
		out[i] = QuantizeCoeff(x / peak)
	}
	return out
}

// Pack packs the coefficient into the 3-bit two's-complement field used on
// the 32-bit register bus (bits 2..0).
func (c Coeff3) Pack() uint32 {
	return uint32(uint8(int8(c))) & 0x7
}

// UnpackCoeff3 decodes a 3-bit two's-complement field.
func UnpackCoeff3(bits uint32) Coeff3 {
	v := int8(bits & 0x7)
	if v >= 4 {
		v -= 8
	}
	return Coeff3(v)
}

func (c Coeff3) String() string { return fmt.Sprintf("%+d", int8(c)) }
