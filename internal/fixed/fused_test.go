package fixed

import (
	"math"
	"math/rand"
	"testing"
)

// Differential tests for the fused block quantizer: QuantizeFused must
// produce I/Q planes and packed sign words bit-identical to Quantize +
// SignBit per sample, for every input the scalar path accepts — including
// the rounding boundaries its branch-reduced round is built around, scale
// folding, and non-finite values.

func checkFused(t *testing.T, src []complex128, scale float64) {
	t.Helper()
	n := len(src)
	iPlane := make([]int16, n)
	qPlane := make([]int16, n)
	words := (n + 63) / 64
	signI := make([]uint64, words)
	signQ := make([]uint64, words)
	QuantizeFused(src, scale, iPlane, qPlane, signI, signQ)

	for k, v := range src {
		// scale 1 must skip the multiply entirely, like the per-sample path
		// (a complex multiply by 1+0i is not a no-op for NaN rails).
		want := Quantize(v)
		if scale != 1 {
			want = Quantize(v * complex(scale, 0))
		}
		if iPlane[k] != want.I || qPlane[k] != want.Q {
			t.Fatalf("scale %v: sample %d (%v): fused (%d,%d) != Quantize (%d,%d)",
				scale, k, v, iPlane[k], qPlane[k], want.I, want.Q)
		}
		wantSI := want.I < 0
		wantSQ := want.Q < 0
		if gotSI := signI[k/64]>>(k%64)&1 != 0; gotSI != wantSI {
			t.Fatalf("scale %v: sample %d: sign-I bit %v != %v", scale, k, gotSI, wantSI)
		}
		if gotSQ := signQ[k/64]>>(k%64)&1 != 0; gotSQ != wantSQ {
			t.Fatalf("scale %v: sample %d: sign-Q bit %v != %v", scale, k, gotSQ, wantSQ)
		}
	}
	// Bits beyond n-1 in the last words must be zero (the block datapath's
	// quiet-span scan relies on it).
	if n%64 != 0 {
		mask := ^uint64(0) << (n % 64)
		if signI[words-1]&mask != 0 || signQ[words-1]&mask != 0 {
			t.Fatalf("unused bits of last sign words not zero: %x %x",
				signI[words-1]&mask, signQ[words-1]&mask)
		}
	}
}

// roundEdgeValues are the inputs the branch-reduced round must get exactly
// right: half-LSB boundaries on both sides of zero, the largest double below
// 0.5 (whose +0.5 sum rounds up to 1.0 in floating point), the saturation
// zone edges, and non-finite rails.
func roundEdgeValues() []float64 {
	nearHalf := math.Nextafter(0.5, 0) // 0.49999999999999994
	vals := []float64{
		0, math.Copysign(0, -1),
		0.5 / FullScale, -0.5 / FullScale,
		nearHalf / FullScale, -nearHalf / FullScale,
		math.Nextafter(0.5/FullScale, 0), math.Nextafter(0.5/FullScale, 1),
		1, -1, 0.9999999, -0.9999999,
		32767.5 / FullScale, -32767.5 / FullScale,
		32768.5 / FullScale, -32768.5 / FullScale,
		math.Nextafter(32767.5/FullScale, 0), math.Nextafter(32768.5/FullScale, -2),
		2, -2, 1e300, -1e300, 1e-300, -1e-300,
		math.Inf(1), math.Inf(-1),
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	}
	// Every representable int16 code boundary ±ulp around a few codes.
	for _, code := range []float64{1, 2, 3, 100, 16383, 16384, 32766, 32767} {
		x := (code - 0.5) / FullScale
		vals = append(vals, x, math.Nextafter(x, 0), math.Nextafter(x, 2), -x)
	}
	return vals
}

func TestQuantizeFusedRoundingEdges(t *testing.T) {
	edges := roundEdgeValues()
	src := make([]complex128, 0, len(edges)*len(edges)/4+len(edges))
	for i := 0; i < len(edges); i++ {
		src = append(src, complex(edges[i], edges[len(edges)-1-i]))
	}
	for _, e := range edges {
		src = append(src, complex(e, -e))
	}
	checkFused(t, src, 1)
}

func TestQuantizeFusedScaleFolding(t *testing.T) {
	rng := rand.New(rand.NewSource(0xF05E))
	src := make([]complex128, 333)
	for k := range src {
		src[k] = complex(rng.NormFloat64()*0.4, rng.NormFloat64()*0.4)
	}
	for _, scale := range []float64{1, 0.5, 2.0, 0.001, 31.62277, 1e-300} {
		checkFused(t, src, scale)
	}
}

func TestQuantizeFusedRandomFullRange(t *testing.T) {
	rng := rand.New(rand.NewSource(0xFA57))
	src := make([]complex128, 1025) // odd length: partial last word
	for k := range src {
		// Mix magnitudes across the dynamic range, sprinkling exact
		// half-codes and saturating values.
		switch k % 5 {
		case 0:
			src[k] = complex(float64(rng.Intn(1<<16)-32768)/32768, float64(rng.Intn(1<<16)-32768)/32768)
		case 1:
			src[k] = complex(rng.NormFloat64()*3, rng.NormFloat64()*3)
		case 2:
			src[k] = complex((float64(rng.Intn(65536))-32767.5)/FullScale, 0)
		case 3:
			src[k] = complex(rng.NormFloat64()*1e-4, rng.NormFloat64()*1e-4)
		default:
			src[k] = complex(rng.NormFloat64()*40000, rng.NormFloat64()*40000)
		}
	}
	checkFused(t, src, 1)
}

func TestQuantizeFusedNaN(t *testing.T) {
	nan := math.NaN()
	src := []complex128{
		complex(nan, 0), complex(0, nan), complex(nan, nan),
		complex(nan, 1), complex(-1, nan),
	}
	checkFused(t, src, 1)
}

func TestQuantizeFusedBlockLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1E45))
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		src := make([]complex128, n)
		for k := range src {
			src[k] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		checkFused(t, src, 1)
	}
}
