package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantizeRoundTrip(t *testing.T) {
	cases := []complex128{0, 0.5 + 0.25i, -1 + 1i, 0.999 - 0.999i}
	for _, c := range cases {
		q := Quantize(c)
		back := q.Complex()
		if math.Abs(real(back)-real(c)) > 1.0/FullScale ||
			math.Abs(imag(back)-imag(c)) > 2.0/FullScale {
			t.Errorf("Quantize(%v) round-trips to %v", c, back)
		}
	}
}

func TestQuantizeSaturates(t *testing.T) {
	q := Quantize(complex(10, -10))
	if q.I != 32767 || q.Q != -32768 {
		t.Errorf("saturation gave %+v", q)
	}
}

func TestQuantizeRoundTripProperty(t *testing.T) {
	f := func(re, im float64) bool {
		re = math.Mod(re, 1)
		im = math.Mod(im, 1)
		if math.IsNaN(re) || math.IsNaN(im) {
			return true
		}
		q := Quantize(complex(re, im))
		back := q.Complex()
		return math.Abs(real(back)-re) <= 1.0/FullScale+1e-12 &&
			math.Abs(imag(back)-im) <= 1.0/FullScale+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignBit(t *testing.T) {
	cases := []struct {
		s    IQ
		i, q int8
	}{
		{IQ{100, -100}, 1, -1},
		{IQ{0, 0}, 1, 1},
		{IQ{-1, 1}, -1, 1},
		{IQ{-32768, 32767}, -1, 1},
	}
	for _, c := range cases {
		i, q := c.s.SignBit()
		if i != c.i || q != c.q {
			t.Errorf("SignBit(%+v) = %d,%d want %d,%d", c.s, i, q, c.i, c.q)
		}
	}
}

func TestEnergy(t *testing.T) {
	s := IQ{3, 4}
	if e := s.Energy(); e != 25 {
		t.Errorf("Energy = %d, want 25", e)
	}
	// Worst case must not overflow.
	w := IQ{-32768, -32768}
	if e := w.Energy(); e != 2*32768*32768 {
		t.Errorf("worst-case energy = %d", e)
	}
}

func TestCoeff3Clamp(t *testing.T) {
	if NewCoeff3(10) != Coeff3Max || NewCoeff3(-10) != Coeff3Min {
		t.Error("NewCoeff3 must clamp")
	}
	if NewCoeff3(2) != 2 {
		t.Error("in-range value altered")
	}
}

func TestQuantizeCoeff(t *testing.T) {
	cases := []struct {
		in   float64
		want Coeff3
	}{
		{1, 3}, {-1, -3}, {0, 0}, {0.5, 2} /* round(1.5)=2 */, {-0.34, -1},
	}
	for _, c := range cases {
		if got := QuantizeCoeff(c.in); got != c.want {
			t.Errorf("QuantizeCoeff(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuantizeCoeffsNormalizes(t *testing.T) {
	got := QuantizeCoeffs([]float64{2, -4, 1})
	want := []Coeff3{2, -3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("QuantizeCoeffs = %v, want %v", got, want)
		}
	}
	// All-zero template must not divide by zero.
	zeros := QuantizeCoeffs([]float64{0, 0})
	for _, v := range zeros {
		if v != 0 {
			t.Fatal("zero template must quantize to zeros")
		}
	}
}

func TestCoeff3PackUnpackProperty(t *testing.T) {
	f := func(v int8) bool {
		c := NewCoeff3(int(v))
		return UnpackCoeff3(c.Pack()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizeBufferLength(t *testing.T) {
	in := []complex128{1, -1i, 0.5}
	out := QuantizeBuffer(in)
	if len(out) != 3 || out[0].I != 32767 || out[1].Q != -32767 {
		t.Errorf("QuantizeBuffer = %+v", out)
	}
}

func TestCoeff3String(t *testing.T) {
	if Coeff3(3).String() != "+3" || Coeff3(-4).String() != "-4" {
		t.Error("Coeff3 String formatting wrong")
	}
}
