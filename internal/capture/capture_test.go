package capture

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := make(dsp.Samples, 500)
	for i := range in {
		in[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1) * 0.9
	}
	var buf bytes.Buffer
	h := Header{SampleRateHz: 25_000_000, CenterFreqHz: 2.484e9, UnixNanos: 12345}
	if err := Write(&buf, h, in); err != nil {
		t.Fatal(err)
	}
	got, out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleRateHz != h.SampleRateHz || got.CenterFreqHz != h.CenterFreqHz ||
		got.UnixNanos != h.UnixNanos || got.Samples != 500 {
		t.Errorf("header %+v", got)
	}
	for i := range in {
		if math.Abs(real(out[i])-real(in[i])) > 1e-4 ||
			math.Abs(imag(out[i])-imag(in[i])) > 1e-4 {
			t.Fatalf("sample %d: %v vs %v", i, out[i], in[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(re, im []byte) bool {
		n := min(len(re), len(im))
		in := make(dsp.Samples, n)
		for i := 0; i < n; i++ {
			in[i] = complex(float64(int8(re[i]))/128, float64(int8(im[i]))/128)
		}
		var buf bytes.Buffer
		if err := Write(&buf, Header{SampleRateHz: 1000}, in); err != nil {
			return false
		}
		_, out, err := Read(&buf)
		if err != nil || len(out) != n {
			return false
		}
		for i := range in {
			if math.Abs(real(out[i])-real(in[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{}, nil); err == nil {
		t.Error("zero sample rate accepted on write")
	}
	if _, _, err := Read(bytes.NewReader([]byte("shrt"))); err == nil {
		t.Error("truncated header accepted")
	}
	bad := make([]byte, 28)
	copy(bad, "XXXX")
	if _, _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewRecorder(Header{}); err == nil {
		t.Error("recorder with zero rate accepted")
	}
}

func TestTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	in := make(dsp.Samples, 10)
	if err := Write(&buf, Header{SampleRateHz: 1000}, in); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-8]
	if _, _, err := Read(bytes.NewReader(cut)); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestAbsurdHeaderRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{SampleRateHz: 1000}, nil); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Claim 2^40 samples.
	raw[24], raw[25], raw[26], raw[27] = 0, 0, 0, 0
	raw[28] = 0
	raw[29] = 1
	if _, _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("absurd sample count accepted")
	}
}

func TestRecorderIncremental(t *testing.T) {
	r, err := NewRecorder(Header{SampleRateHz: 25_000_000, CenterFreqHz: 2.608e9})
	if err != nil {
		t.Fatal(err)
	}
	a := dsp.Samples{0.1, 0.2}
	b := dsp.Samples{0.3 + 0.4i}
	r.Append(a)
	r.Append(b)
	if r.Samples() != 3 {
		t.Errorf("Samples = %d", r.Samples())
	}
	var buf bytes.Buffer
	if err := r.Finalize(&buf); err != nil {
		t.Fatal(err)
	}
	h, out, err := Read(&buf)
	if err != nil || h.Samples != 3 {
		t.Fatalf("read back: %+v, %v", h, err)
	}
	if math.Abs(real(out[2])-0.3) > 1e-4 || math.Abs(imag(out[2])-0.4) > 1e-4 {
		t.Errorf("sample 2 = %v", out[2])
	}
}

func TestClippingSaturates(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{SampleRateHz: 1}, dsp.Samples{complex(5, -5)}); err != nil {
		t.Fatal(err)
	}
	_, out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if real(out[0]) < 0.99 || imag(out[0]) > -0.99 {
		t.Errorf("clipped sample %v", out[0])
	}
}
