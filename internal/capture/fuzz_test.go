package capture

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the recording parser against arbitrary input: it must
// never panic, and anything it accepts must re-serialize to an equivalent
// recording.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	_ = Write(&seed, Header{SampleRateHz: 25_000_000, CenterFreqHz: 2.484e9},
		[]complex128{0.5, -0.25i, 0.1 + 0.1i})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("RJQ1 garbage that is not long enough"))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, samples, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip.
		var buf bytes.Buffer
		if err := Write(&buf, h, samples); err != nil {
			t.Fatalf("accepted recording failed to re-serialize: %v", err)
		}
		h2, s2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-serialized recording rejected: %v", err)
		}
		if h2.SampleRateHz != h.SampleRateHz || len(s2) != len(samples) {
			t.Fatalf("round-trip drift: %+v vs %+v", h2, h)
		}
	})
}
