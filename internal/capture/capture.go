// Package capture implements an I/Q recording format for the framework's
// signal-intelligence workflows (§2.1 motivates the USRP choice partly by
// "its existing integration with several signal intelligence libraries"):
// complex baseband streams are stored as interleaved 16-bit I/Q — the same
// quantization the FPGA sees — with a small self-describing header carrying
// the sample rate, center frequency, and a capture timestamp.
//
// Recordings round-trip through io.Writer/io.Reader, so they work with
// files, network pipes, or in-memory buffers. jamlab uses them to record a
// jamming engagement and replay it into a fresh detector.
package capture

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/dsp"
	"repro/internal/fixed"
)

// Magic identifies a recording stream ("RJIQ" + version 1).
var Magic = [4]byte{'R', 'J', 'Q', '1'}

// Header describes one recording.
type Header struct {
	// SampleRateHz of the recorded stream.
	SampleRateHz uint32
	// CenterFreqHz the front end was tuned to.
	CenterFreqHz float64
	// UnixNanos is the capture start time (0 if unknown).
	UnixNanos int64
	// Samples is the number of complex samples that follow.
	Samples uint64
}

// headerSize is the fixed on-stream header length in bytes.
const headerSize = 4 + 4 + 8 + 8 + 8

// Write serializes a header and the quantized samples.
func Write(w io.Writer, h Header, samples dsp.Samples) error {
	if h.SampleRateHz == 0 {
		return fmt.Errorf("capture: sample rate required")
	}
	h.Samples = uint64(len(samples))
	var hdr [headerSize]byte
	copy(hdr[0:4], Magic[:])
	binary.LittleEndian.PutUint32(hdr[4:], h.SampleRateHz)
	binary.LittleEndian.PutUint64(hdr[8:], math.Float64bits(h.CenterFreqHz))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(h.UnixNanos))
	binary.LittleEndian.PutUint64(hdr[24:], h.Samples)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 4*len(samples))
	for i, s := range samples {
		q := fixed.Quantize(s)
		binary.LittleEndian.PutUint16(buf[4*i:], uint16(q.I))
		binary.LittleEndian.PutUint16(buf[4*i+2:], uint16(q.Q))
	}
	_, err := w.Write(buf)
	return err
}

// Read parses a recording, returning its header and samples (dequantized
// to ±1.0 floating point).
func Read(r io.Reader) (Header, dsp.Samples, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Header{}, nil, fmt.Errorf("capture: header: %w", err)
	}
	if [4]byte(hdr[0:4]) != Magic {
		return Header{}, nil, fmt.Errorf("capture: bad magic %q", hdr[0:4])
	}
	h := Header{
		SampleRateHz: binary.LittleEndian.Uint32(hdr[4:]),
		CenterFreqHz: math.Float64frombits(binary.LittleEndian.Uint64(hdr[8:])),
		UnixNanos:    int64(binary.LittleEndian.Uint64(hdr[16:])),
		Samples:      binary.LittleEndian.Uint64(hdr[24:]),
	}
	if h.SampleRateHz == 0 {
		return Header{}, nil, fmt.Errorf("capture: zero sample rate")
	}
	const maxSamples = 1 << 30 // 4 GiB of payload; refuse absurd headers
	if h.Samples > maxSamples {
		return Header{}, nil, fmt.Errorf("capture: header claims %d samples", h.Samples)
	}
	buf := make([]byte, 4*h.Samples)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Header{}, nil, fmt.Errorf("capture: payload: %w", err)
	}
	out := make(dsp.Samples, h.Samples)
	for i := range out {
		iq := fixed.IQ{
			I: int16(binary.LittleEndian.Uint16(buf[4*i:])),
			Q: int16(binary.LittleEndian.Uint16(buf[4*i+2:])),
		}
		out[i] = iq.Complex()
	}
	return h, out, nil
}

// Recorder incrementally captures a stream and finalizes to a writer. It
// buffers samples in quantized form so long captures cost 4 bytes each.
type Recorder struct {
	h   Header
	buf []byte
	n   uint64
}

// NewRecorder starts a capture with the given metadata.
func NewRecorder(h Header) (*Recorder, error) {
	if h.SampleRateHz == 0 {
		return nil, fmt.Errorf("capture: sample rate required")
	}
	return &Recorder{h: h}, nil
}

// Append adds samples to the capture.
func (r *Recorder) Append(samples dsp.Samples) {
	start := len(r.buf)
	r.buf = append(r.buf, make([]byte, 4*len(samples))...)
	for i, s := range samples {
		q := fixed.Quantize(s)
		binary.LittleEndian.PutUint16(r.buf[start+4*i:], uint16(q.I))
		binary.LittleEndian.PutUint16(r.buf[start+4*i+2:], uint16(q.Q))
	}
	r.n += uint64(len(samples))
}

// Samples returns the number captured so far.
func (r *Recorder) Samples() uint64 { return r.n }

// Finalize writes the complete recording.
func (r *Recorder) Finalize(w io.Writer) error {
	var hdr [headerSize]byte
	copy(hdr[0:4], Magic[:])
	binary.LittleEndian.PutUint32(hdr[4:], r.h.SampleRateHz)
	binary.LittleEndian.PutUint64(hdr[8:], math.Float64bits(r.h.CenterFreqHz))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(r.h.UnixNanos))
	binary.LittleEndian.PutUint64(hdr[24:], r.n)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(r.buf)
	return err
}
