package chaos

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/fixed"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/impair"
	"repro/internal/jammer"
	"repro/internal/radio"
	"repro/internal/telemetry"
	"repro/internal/telemetry/flight"
	"repro/internal/trigger"
	"repro/internal/verdict"
	"repro/internal/xcorr"
)

// noiseFloorPower matches the detection experiments' -60 dBFS floor.
const noiseFloorPower = 1e-6

// Stimulus geometry: each block is lead noise, a frame of tiled WiFi short
// preamble, and a tail long enough for every jamming burst to finish and the
// engagement holdoff to release before the next block.
const (
	leadSamples = 512
	tailSamples = 768
	frameTiles  = 4
)

// Config describes one fault campaign.
type Config struct {
	// Plan is the fault plan (zero value + seed = control campaign).
	Plan Plan
	// Frames is the number of stimulus blocks (default 12).
	Frames int
	// SNRdB is the frame power over the noise floor (default 12).
	SNRdB float64
	// FAPerSec is the correlator threshold's false-alarm target (default 0.5).
	FAPerSec float64
	// Flight attaches a flight recorder to the primary core: armed after
	// register programming, fed the faulted stimulus, and triggered into a
	// dump when any invariant degrades or breaks (Result.Flight).
	Flight bool
}

// KindCount is one per-kind fault tally in the report, ordered by kind.
type KindCount struct {
	Kind  FaultKind `json:"kind"`
	Count int       `json:"count"`
}

// Result is the outcome of one campaign. It contains no wall-clock state:
// marshaling it (and the sweep report built from it) is byte-identical
// across runs of the same plan.
type Result struct {
	// Class and Severity label the sweep cell (empty/0 for direct runs).
	Class    string `json:"class,omitempty"`
	Severity int    `json:"severity"`
	// Plan echoes the full fault plan for replay.
	Plan Plan `json:"plan"`
	// Frames and Samples describe the stimulus actually processed (Samples
	// reflects stream drop/dup length changes).
	Frames  int    `json:"frames"`
	Samples uint64 `json:"samples"`
	// FaultTotal and FaultCounts summarize the injection ledger.
	FaultTotal  int         `json:"fault_total"`
	FaultCounts []KindCount `json:"fault_counts,omitempty"`
	// LedgerHash is the FNV-1a hash of the fault ledger — the replay
	// witness: same plan ⇒ same hash, bit for bit.
	LedgerHash string `json:"ledger_fnv1a"`
	// Invariants is the checked catalog with verdicts, fixed order.
	Invariants []Invariant `json:"invariants"`
	// Held/Degraded/Broken tally the verdicts.
	Held     int `json:"held"`
	Degraded int `json:"degraded"`
	Broken   int `json:"broken"`

	// Faults is the full injection ledger (not serialized into the sweep
	// report; available to tests and direct callers).
	Faults []Fault `json:"-"`
	// Flight is the incident dump captured when Config.Flight is set and an
	// invariant failed to hold (nil otherwise). Like Faults it stays out of
	// the sweep report so report bytes are unchanged.
	Flight *flight.Dump `json:"-"`
}

// Run executes one fault campaign: a dual-core differential datapath (block
// mode through the radio vs per-sample shadow) fed the identical faulted
// stimulus and identical committed register sequence, with a standalone
// popcount-vs-reference correlator pair riding the same stream, followed by
// the full invariant check.
func Run(cfg Config) (*Result, error) {
	if cfg.Frames <= 0 {
		cfg.Frames = 12
	}
	if cfg.SNRdB == 0 {
		cfg.SNRdB = 12
	}
	if cfg.FAPerSec == 0 {
		cfg.FAPerSec = 0.5
	}
	plan := cfg.Plan.withDefaults()
	if err := plan.validate(); err != nil {
		return nil, err
	}

	// Primary: the radio's block-mode path. Shadow: a bare per-sample core.
	r := radio.New()
	pc := r.Core()
	plive := telemetry.NewLive(plan.JournalDepth)
	pc.SetRecorder(plive)
	sc := core.New()
	slive := telemetry.NewLive(plan.JournalDepth)
	sc.SetRecorder(slive)
	r.Start()

	inj := newInjector(plan, pc.Clock())
	pc.Bus().Intercept(inj.interceptor())
	defer pc.Bus().Intercept(nil)

	// mirror replays newly committed (post-fault) writes onto the shadow
	// bus, so both cores always see the identical effective sequence.
	mirrored := 0
	mirror := func() error {
		for ; mirrored < len(inj.committed); mirrored++ {
			w := inj.committed[mirrored]
			if err := sc.Bus().Write(w.Addr, w.Value); err != nil {
				return err
			}
		}
		return nil
	}
	program := func(f func() error) error {
		if err := f(); err != nil {
			return err
		}
		return mirror()
	}

	h := host.New(pc)
	tpl := host.WiFiShortTemplate()
	events := []trigger.Event{trigger.EventXCorr, trigger.EventEnergyHigh}
	steps := []func() error{
		func() error { _, err := h.ProgramCorrelatorFA(tpl, cfg.FAPerSec); return err },
		func() error { _, err := h.ProgramEnergy(10, 0); return err },
		func() error { _, err := h.ProgramTrigger(core.FusionAny, events, 0); return err },
		func() error {
			_, err := h.ProgramJammer(host.Personality{
				Name: "chaos-reactive", Waveform: jammer.WaveformWGN,
				Uptime: 10 * time.Microsecond, Gain: 1,
			})
			return err
		},
	}
	for _, s := range steps {
		if err := program(s); err != nil {
			return nil, err
		}
	}

	// The flight recorder arms after programming so histogram deltas measure
	// only the campaign itself.
	var fr *flight.Recorder
	if cfg.Flight {
		fr = flight.New(plive, flight.Options{Seed: plan.Seed})
		fr.Arm()
	}

	// Timing faults are campaign-wide; ledger them at cycle 0.
	var chain *impair.Chain
	if plan.ClockOffsetPPM != 0 {
		chain = impair.New(impair.Config{
			ClockOffsetPPM: plan.ClockOffsetPPM,
			SampleRate:     fpga.SampleRateHz,
			Seed:           plan.Seed,
		})
		inj.record(FaultClockRamp, uint64(int64(plan.ClockOffsetPPM*1000)))
	}
	if plan.JournalDepth > 0 && plan.JournalDepth < telemetry.DefaultJournalDepth {
		inj.record(FaultJournalPressure, uint64(plan.JournalDepth))
	}

	// Standalone kernel differential pair on the same faulted stream.
	ci, cq := xcorr.CoefficientsFromTemplate(tpl)
	thr := xcorr.ThresholdForFARate(ci, cq, cfg.FAPerSec)
	hw := xcorr.New()
	ref := xcorr.NewReference()
	for _, c := range []interface {
		SetCoefficients(i, q []fixed.Coeff3) error
		SetThreshold(uint32)
	}{hw, ref} {
		if err := c.SetCoefficients(ci, cq); err != nil {
			return nil, err
		}
		c.SetThreshold(thr)
	}

	frame := make(dsp.Samples, 0, frameTiles*len(tpl))
	for i := 0; i < frameTiles; i++ {
		frame = append(frame, tpl...)
	}
	amp := math.Sqrt(noiseFloorPower * dsp.FromDB(cfg.SNRdB))
	scale := complex(amp/math.Sqrt(frame.Power()), 0)
	noise := dsp.NewNoiseSource(noiseFloorPower, plan.Seed+101)
	pclock := pc.Clock()

	var txMM, xcMM, samples uint64
	packets := make([]verdict.Packet, 0, cfg.Frames)
	for f := 0; f < cfg.Frames; f++ {
		inj.block = f
		// Stalled setting-bus writes that come due commit now, on both cores.
		if due := inj.dueDelayed(f); len(due) > 0 {
			inj.bypass = true
			for _, w := range due {
				if err := pc.Bus().Write(w.Addr, w.Value); err != nil {
					inj.bypass = false
					return nil, err
				}
			}
			inj.bypass = false
			if err := mirror(); err != nil {
				return nil, err
			}
		}
		// Mid-campaign personality switch through the faulty bus (§4.3's
		// on-the-fly reprogramming, now under fire).
		if f == cfg.Frames/2 && f > 0 {
			mid := []func() error{
				func() error {
					_, err := h.ProgramJammer(host.Personality{
						Name: "chaos-reactive-long", Waveform: jammer.WaveformWGN,
						Uptime: 20 * time.Microsecond, Gain: 1,
					})
					return err
				},
				func() error { _, err := h.ProgramEnergy(6, 0); return err },
			}
			for _, s := range mid {
				if err := program(s); err != nil {
					return nil, err
				}
			}
		}

		buf := make(dsp.Samples, leadSamples+len(frame)+tailSamples)
		copy(buf[leadSamples:], frame)
		for i := range buf {
			buf[i] = buf[i]*scale + noise.Sample()
		}
		if chain != nil {
			buf = chain.Process(buf)
		}
		buf = inj.mutateBlock(buf)
		if fr != nil {
			fr.RecordIQ(buf)
		}

		start := pclock.Cycle()
		txP, err := r.Process(buf)
		if err != nil {
			return nil, err
		}
		packets = append(packets, verdict.Packet{Index: f, Start: start, End: pclock.Cycle()})
		for i, s := range buf {
			if sc.ProcessSample(s) != txP[i] {
				txMM++
			}
			q := fixed.Quantize(s)
			m1, t1 := hw.Process(q)
			m2, t2 := ref.Process(q)
			if m1 != m2 || t1 != t2 {
				xcMM++
			}
		}
		samples += uint64(len(buf))
	}

	chk := &Checker{
		Primary:      plive,
		Shadow:       slive,
		PrimaryStats: pc.Stats(),
		ShadowStats:  sc.Stats(),
		TxMismatches: txMM, XCorrMismatches: xcMM,
		Committed: inj.committed,
		Bus:       pc.Bus(),
		Packets:   packets,
		DetectionKinds: []telemetry.EventKind{
			telemetry.EvXCorrEdge, telemetry.EvEnergyHighEdge,
		},
	}
	res := &Result{
		Plan:       plan,
		Frames:     cfg.Frames,
		Samples:    samples,
		FaultTotal: len(inj.ledger),
		LedgerHash: ledgerHash(inj.ledger),
		Invariants: chk.Check(),
		Faults:     inj.ledger,
	}
	var byKind [numFaultKinds]int
	for _, f := range inj.ledger {
		byKind[f.Kind]++
	}
	for k, n := range byKind {
		if n > 0 {
			res.FaultCounts = append(res.FaultCounts, KindCount{Kind: FaultKind(k), Count: n})
		}
	}
	for _, inv := range res.Invariants {
		switch inv.Status {
		case Held:
			res.Held++
		case Degraded:
			res.Degraded++
		case Broken:
			res.Broken++
		}
	}
	// Fire the flight recorder only after the checker has read both journals:
	// the dump marker lands in the primary journal, and journaling it earlier
	// would desynchronize the block/sample parity comparison.
	if fr != nil && res.Held < len(res.Invariants) {
		detail := ""
		for _, inv := range res.Invariants {
			if inv.Status != Held {
				detail = fmt.Sprintf("invariant %s %s: %s", inv.Name, inv.Status, inv.Detail)
				break
			}
		}
		res.Flight = fr.Trigger(flight.TriggerChaosInvariant, pclock.Cycle(), detail)
	}
	return res, nil
}

// ledgerHash folds the fault ledger through FNV-1a, the replay witness the
// report carries.
func ledgerHash(faults []Fault) string {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	for _, f := range faults {
		mix(f.Cycle)
		mix(uint64(f.Kind))
		mix(f.Arg)
	}
	return fmt.Sprintf("%016x", h)
}
