package chaos

import (
	"bytes"
	"testing"

	"repro/internal/telemetry/flight"
)

// TestFlightDumpOnDegradedInvariant is the incident acceptance check: a
// seeded campaign that degrades an invariant must produce a flight-recorder
// dump, and the dump's JSON must be byte-identical across runs of the same
// plan (same seed ⇒ same dump hash).
func TestFlightDumpOnDegradedInvariant(t *testing.T) {
	// Timing class at severity 3 shrinks the journal ring until it wraps,
	// which degrades the journal-dependent invariants deterministically.
	plan, err := PlanFor("timing", 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		res, err := Run(Config{Plan: plan, Flight: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	a := run()
	if a.Degraded+a.Broken == 0 {
		t.Fatalf("plan did not degrade any invariant: held=%d degraded=%d broken=%d",
			a.Held, a.Degraded, a.Broken)
	}
	if a.Flight == nil {
		t.Fatal("no flight dump despite non-held invariants")
	}
	if a.Flight.Trigger != flight.TriggerChaosInvariant {
		t.Errorf("trigger = %v, want chaos-invariant", a.Flight.Trigger)
	}
	if a.Flight.Detail == "" {
		t.Error("dump detail empty, want the offending invariant named")
	}
	if a.Flight.Seed != plan.Seed {
		t.Errorf("dump seed = %d, want %d", a.Flight.Seed, plan.Seed)
	}
	if !a.Flight.Armed {
		t.Error("dump not marked armed")
	}
	if len(a.Flight.IQ) == 0 {
		t.Error("dump carries no I/Q scope snapshot")
	}

	b := run()
	if b.Flight == nil {
		t.Fatal("second run produced no flight dump")
	}
	ab, err := a.Flight.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Flight.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("same seed produced different dump bytes (%d vs %d bytes)", len(ab), len(bb))
	}
	ha, _ := a.Flight.Hash()
	hb, _ := b.Flight.Hash()
	if ha != hb {
		t.Fatalf("same seed produced different dump hashes: %s vs %s", ha, hb)
	}
}

// TestFlightQuietWhenHeld asserts a control campaign with the recorder
// attached captures nothing: no dump, no journal marker.
func TestFlightQuietWhenHeld(t *testing.T) {
	plan, err := PlanFor("regbus", 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Plan: plan, Flight: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded+res.Broken != 0 {
		t.Fatalf("control campaign not clean: %+v", res.Invariants)
	}
	if res.Flight != nil {
		t.Error("control campaign produced a flight dump")
	}
}
