package chaos

import (
	"math/rand"

	"repro/internal/fpga"
)

// RegWrite is one committed register transaction (post-fault value).
type RegWrite struct {
	Addr  uint8
	Value uint32
}

type delayedWrite struct {
	w   RegWrite
	due int // stimulus block index at which the stalled write commits
}

// injector is the seeded fault engine of one campaign. It is single-
// goroutine by construction (the campaign drives everything sequentially),
// so a plain rand.Rand and plain slices suffice and determinism is free.
type injector struct {
	plan  Plan
	rng   *rand.Rand
	clock *fpga.Clock // primary core's clock, for fault cycle stamps

	ledger    []Fault
	committed []RegWrite // every write that actually reached the register file
	delayed   []delayedWrite
	block     int  // current stimulus block index
	bypass    bool // true while replaying a stalled write (no re-faulting)
}

func newInjector(plan Plan, clock *fpga.Clock) *injector {
	return &injector{
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		clock: clock,
	}
}

func (in *injector) record(kind FaultKind, arg uint64) {
	in.ledger = append(in.ledger, Fault{Cycle: in.clock.Cycle(), Kind: kind, Arg: arg})
}

func regArg(addr uint8, value uint32) uint64 {
	return uint64(addr)<<32 | uint64(value)
}

func spanArg(offset, n int) uint64 {
	return uint64(uint32(offset))<<32 | uint64(uint32(n))
}

// interceptor returns the fpga.WriteInterceptor that applies the plan's
// register-bus fault classes. Every commit (faulted or clean) is appended to
// the committed list so the campaign can mirror the *effective* write
// sequence onto the shadow core and the readback model.
func (in *injector) interceptor() fpga.WriteInterceptor {
	p := in.plan
	return func(addr uint8, value uint32) (uint32, fpga.WriteAction) {
		if in.bypass {
			in.committed = append(in.committed, RegWrite{addr, value})
			return value, fpga.WriteCommit
		}
		if p.RegDropProb > 0 && in.rng.Float64() < p.RegDropProb {
			in.record(FaultRegDrop, regArg(addr, value))
			return 0, fpga.WriteDrop
		}
		if p.RegFlipProb > 0 && in.rng.Float64() < p.RegFlipProb {
			value ^= 1 << uint(in.rng.Intn(32))
			in.record(FaultRegFlip, regArg(addr, value))
		}
		if p.RegDelayProb > 0 && in.rng.Float64() < p.RegDelayProb {
			in.delayed = append(in.delayed, delayedWrite{
				w:   RegWrite{addr, value},
				due: in.block + p.RegDelayBlocks,
			})
			in.record(FaultRegDelay, regArg(addr, value))
			return 0, fpga.WriteDrop // held back; commits at the due block
		}
		in.committed = append(in.committed, RegWrite{addr, value})
		return value, fpga.WriteCommit
	}
}

// dueDelayed pops the stalled writes due at or before the given block, in
// arrival order.
func (in *injector) dueDelayed(block int) []RegWrite {
	var due []RegWrite
	rest := in.delayed[:0]
	for _, d := range in.delayed {
		if d.due <= block {
			due = append(due, d.w)
		} else {
			rest = append(rest, d)
		}
	}
	in.delayed = rest
	return due
}

// mutateBlock applies the plan's stream fault classes to one stimulus block
// in place (length may change for drop/dup) and returns the faulted block.
// Fault cycle stamps are the primary clock at block entry plus the sample
// offset, i.e. the cycle at which the corrupted sample hits the datapath.
func (in *injector) mutateBlock(buf []complex128) []complex128 {
	p := in.plan
	base := in.clock.Cycle()
	stamp := func(kind FaultKind, off, n int) {
		in.ledger = append(in.ledger, Fault{
			Cycle: base + uint64(off)*fpga.CyclesPerSample,
			Kind:  kind,
			Arg:   spanArg(off, n),
		})
	}
	span := func(max int) (int, int) {
		off := in.rng.Intn(len(buf))
		n := 1 + in.rng.Intn(max)
		if off+n > len(buf) {
			n = len(buf) - off
		}
		return off, n
	}

	if p.StreamSatProb > 0 && len(buf) > 0 && in.rng.Float64() < p.StreamSatProb {
		off, n := span(p.StreamSatLen)
		g := complex(p.StreamSatGain, 0)
		for i := off; i < off+n; i++ {
			buf[i] *= g
		}
		stamp(FaultStreamSaturate, off, n)
	}
	if p.StreamDCProb > 0 && len(buf) > 0 && in.rng.Float64() < p.StreamDCProb {
		off, n := span(p.StreamDCLen)
		for i := off; i < off+n; i++ {
			buf[i] = complex(p.StreamDCLevel, imag(buf[i]))
		}
		stamp(FaultStreamDCStick, off, n)
	}
	if p.StreamDropProb > 0 && len(buf) > 1 && in.rng.Float64() < p.StreamDropProb {
		off, n := span(p.StreamDropMax)
		if n >= len(buf) {
			n = len(buf) - 1
		}
		if n > 0 {
			buf = append(buf[:off], buf[off+n:]...)
			stamp(FaultStreamDrop, off, n)
		}
	}
	if p.StreamDupProb > 0 && len(buf) > 0 && in.rng.Float64() < p.StreamDupProb {
		off, n := span(p.StreamDupMax)
		dup := append([]complex128(nil), buf[off:off+n]...)
		tail := append([]complex128(nil), buf[off+n:]...)
		buf = append(append(buf[:off+n], dup...), tail...)
		stamp(FaultStreamDup, off, n)
	}
	return buf
}
