package chaos

import (
	"bytes"
	"encoding/json"
	"testing"
)

func invariantByName(t *testing.T, res *Result, name string) Invariant {
	t.Helper()
	for _, inv := range res.Invariants {
		if inv.Name == name {
			return inv
		}
	}
	t.Fatalf("invariant %q not in result", name)
	return Invariant{}
}

// The acceptance gate: a zero-severity campaign checks at least 5 distinct
// invariants and every one of them holds outright.
func TestControlCampaignAllHeld(t *testing.T) {
	res, err := Run(Config{Plan: Plan{Seed: 42}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Invariants) < 5 {
		t.Fatalf("only %d invariants checked, want >= 5", len(res.Invariants))
	}
	names := make(map[string]bool)
	for _, inv := range res.Invariants {
		if names[inv.Name] {
			t.Errorf("duplicate invariant name %q", inv.Name)
		}
		names[inv.Name] = true
		if inv.Status != Held {
			t.Errorf("invariant %s = %s (%s), want held", inv.Name, inv.Status, inv.Detail)
		}
	}
	if res.FaultTotal != 0 || len(res.Faults) != 0 {
		t.Errorf("control campaign injected %d faults, want 0", res.FaultTotal)
	}
	if res.Held != len(res.Invariants) || res.Degraded != 0 || res.Broken != 0 {
		t.Errorf("tallies held/degraded/broken = %d/%d/%d", res.Held, res.Degraded, res.Broken)
	}
	// The control campaign must actually exercise the datapath: triggers
	// fired and the turnaround bound was genuinely observed.
	if inv := invariantByName(t, res, "tinit-bound"); inv.Status != Held {
		t.Errorf("tinit-bound not observable in control campaign: %s", inv.Detail)
	}
}

// Same plan, two runs: identical fault ledgers and byte-identical marshaled
// results, for every fault class.
func TestCampaignReplaysBitIdentically(t *testing.T) {
	for _, class := range append([]string{"control"}, Classes()...) {
		plan, err := PlanFor(class, 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(Config{Plan: plan})
		if err != nil {
			t.Fatalf("%s run 1: %v", class, err)
		}
		b, err := Run(Config{Plan: plan})
		if err != nil {
			t.Fatalf("%s run 2: %v", class, err)
		}
		if a.LedgerHash != b.LedgerHash {
			t.Errorf("%s: ledger hash %s vs %s", class, a.LedgerHash, b.LedgerHash)
		}
		ja, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ja, jb) {
			t.Errorf("%s: marshaled results differ:\n%s\n%s", class, ja, jb)
		}
		if len(a.Faults) != len(b.Faults) {
			t.Errorf("%s: ledger lengths differ: %d vs %d", class, len(a.Faults), len(b.Faults))
		}
		for i := range a.Faults {
			if a.Faults[i] != b.Faults[i] {
				t.Errorf("%s: ledger diverges at %d: %+v vs %+v", class, i, a.Faults[i], b.Faults[i])
				break
			}
		}
	}
}

// The full sweep emits a byte-identical JSONL report on replay.
func TestSweepReportReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	run := func() []byte {
		results, err := RunSweep(SweepConfig{Seed: 42, Frames: 8, Severities: []int{1, 3}})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteReport(&buf, results); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("sweep reports differ between identical runs")
	}
	// Control row leads and must be violation-free.
	var first Result
	if err := json.Unmarshal(a[:bytes.IndexByte(a, '\n')], &first); err != nil {
		t.Fatal(err)
	}
	if first.Class != "control" || first.Broken != 0 {
		t.Errorf("first row class=%q broken=%d, want control with 0 broken", first.Class, first.Broken)
	}
}

// Register-bus faults at full severity: writes visibly drop, yet the
// structural invariants survive (a fully unprogrammed core is a valid —
// silent — datapath).
func TestRegBusFaultsRecorded(t *testing.T) {
	res, err := Run(Config{Plan: Plan{Seed: 3, RegDropProb: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultTotal == 0 {
		t.Fatal("no faults recorded with RegDropProb=1")
	}
	for _, f := range res.Faults {
		if f.Kind != FaultRegDrop {
			t.Errorf("unexpected fault kind %s", f.Kind)
		}
	}
	if res.Broken != 0 {
		t.Errorf("broken invariants under pure write loss: %+v", res.Invariants)
	}
	if inv := invariantByName(t, res, "register-readback"); inv.Status != Held {
		t.Errorf("register-readback = %s (%s)", inv.Status, inv.Detail)
	}
	if inv := invariantByName(t, res, "counter-ledger-reconcile"); inv.Status != Held {
		t.Errorf("counter-ledger-reconcile = %s (%s)", inv.Status, inv.Detail)
	}
}

// Stream corruption at high severity must never break block/sample parity or
// kernel bit-exactness — both paths see the identical corrupted bytes.
func TestStreamFaultsKeepParity(t *testing.T) {
	plan, err := PlanFor("stream", 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultTotal == 0 {
		t.Fatal("severity-3 stream plan injected nothing")
	}
	if inv := invariantByName(t, res, "block-sample-parity"); inv.Status != Held {
		t.Errorf("block-sample-parity = %s (%s)", inv.Status, inv.Detail)
	}
	if inv := invariantByName(t, res, "xcorr-bit-exact"); inv.Status != Held {
		t.Errorf("xcorr-bit-exact = %s (%s)", inv.Status, inv.Detail)
	}
	if res.Broken != 0 {
		t.Errorf("broken invariants under stream faults: %+v", res.Invariants)
	}
}

// Journal pressure degrades the journal-derived invariants without breaking
// anything: the ring wrapped, so full-run claims become unobservable.
func TestJournalPressureDegrades(t *testing.T) {
	res, err := Run(Config{Plan: Plan{Seed: 5, JournalDepth: 32}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Broken != 0 {
		t.Errorf("broken invariants under journal pressure: %+v", res.Invariants)
	}
	if inv := invariantByName(t, res, "engagement-ledger"); inv.Status != Degraded {
		t.Errorf("engagement-ledger = %s, want degraded under a 32-deep journal", inv.Status)
	}
	var pressure bool
	for _, f := range res.Faults {
		if f.Kind == FaultJournalPressure {
			pressure = true
		}
	}
	if !pressure {
		t.Error("journal-pressure fault not in ledger")
	}
}

// A delayed commit reorders a real register write in time; the readback
// model and both cores must still agree, and the delay must be ledgered.
func TestDelayedCommits(t *testing.T) {
	res, err := Run(Config{Plan: Plan{Seed: 9, RegDelayProb: 0.5, RegDelayBlocks: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var delays int
	for _, f := range res.Faults {
		if f.Kind == FaultRegDelay {
			delays++
		}
	}
	if delays == 0 {
		t.Fatal("no delayed commits at RegDelayProb=0.5")
	}
	if res.Broken != 0 {
		t.Errorf("broken invariants under delayed commits: %+v", res.Invariants)
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := Run(Config{Plan: Plan{RegDropProb: 1.5}}); err == nil {
		t.Error("RegDropProb=1.5 accepted")
	}
	if _, err := Run(Config{Plan: Plan{JournalDepth: -1}}); err == nil {
		t.Error("negative JournalDepth accepted")
	}
	if _, err := PlanFor("nonsense", 1, 0); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := PlanFor("regbus", -1, 0); err == nil {
		t.Error("negative severity accepted")
	}
}
