package chaos

import (
	"encoding/json"
	"fmt"
	"io"
)

// Classes returns the fault-class names of the standard sweep, in report
// order. "control" (severity 0, no faults armed) is always prepended by
// RunSweep itself.
func Classes() []string {
	return []string{"regbus", "stream", "timing", "combined"}
}

// timingDepth maps sweep severity to journal depth: severity 1 fits the
// whole run, higher severities force the ring to wrap.
func timingDepth(severity int) int {
	switch {
	case severity <= 1:
		return 4096
	case severity == 2:
		return 1024
	default:
		return 256
	}
}

// PlanFor builds the standard sweep plan for one fault class × severity
// cell. Severity scales the per-opportunity probabilities linearly and the
// clock ramp quadratically; severity 0 of any class is the control plan.
func PlanFor(class string, severity int, seed int64) (Plan, error) {
	if severity < 0 {
		return Plan{}, fmt.Errorf("chaos: negative severity %d", severity)
	}
	s := float64(severity)
	regbus := Plan{
		RegDropProb:  0.08 * s,
		RegFlipProb:  0.08 * s,
		RegDelayProb: 0.05 * s,
	}
	stream := Plan{
		StreamDropProb: 0.20 * s,
		StreamDupProb:  0.15 * s,
		StreamSatProb:  0.20 * s,
		StreamDCProb:   0.15 * s,
	}
	timing := Plan{
		ClockOffsetPPM: 100 * s * s,
	}
	if severity > 0 {
		timing.JournalDepth = timingDepth(severity)
	}

	var p Plan
	switch class {
	case "control":
		p = Plan{}
	case "regbus":
		p = regbus
	case "stream":
		p = stream
	case "timing":
		p = timing
	case "combined":
		p = regbus
		p.StreamDropProb = stream.StreamDropProb
		p.StreamDupProb = stream.StreamDupProb
		p.StreamSatProb = stream.StreamSatProb
		p.StreamDCProb = stream.StreamDCProb
		p.ClockOffsetPPM = timing.ClockOffsetPPM
		p.JournalDepth = timing.JournalDepth
	default:
		return Plan{}, fmt.Errorf("chaos: unknown fault class %q", class)
	}
	p.Seed = seed
	return p, nil
}

// SweepConfig describes a full campaign sweep.
type SweepConfig struct {
	// Seed is the master seed; each cell derives its own plan seed from it.
	Seed int64
	// Frames per campaign (default 12).
	Frames int
	// Severities per fault class (default 1..3).
	Severities []int
}

// RunSweep runs the control campaign followed by every fault class at every
// severity, returning the results in deterministic report order.
func RunSweep(cfg SweepConfig) ([]*Result, error) {
	sev := cfg.Severities
	if len(sev) == 0 {
		sev = []int{1, 2, 3}
	}
	type cell struct {
		class    string
		severity int
	}
	cells := []cell{{"control", 0}}
	for _, class := range Classes() {
		for _, s := range sev {
			cells = append(cells, cell{class, s})
		}
	}
	results := make([]*Result, 0, len(cells))
	for i, c := range cells {
		plan, err := PlanFor(c.class, c.severity, cfg.Seed+int64(i)*7919)
		if err != nil {
			return nil, err
		}
		res, err := Run(Config{Plan: plan, Frames: cfg.Frames})
		if err != nil {
			return nil, fmt.Errorf("chaos: campaign %s/%d: %w", c.class, c.severity, err)
		}
		res.Class = c.class
		res.Severity = c.severity
		results = append(results, res)
	}
	return results, nil
}

// WriteReport writes the sweep as JSONL, one campaign result per line. The
// output is a pure function of the sweep's plans — running the same seed
// twice produces byte-identical reports, which is the replay gate the
// acceptance test diffs.
func WriteReport(w io.Writer, results []*Result) error {
	enc := json.NewEncoder(w)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
