package chaos

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/jammer"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/verdict"
)

// InvariantStatus is the verdict for one datapath invariant after a
// campaign.
type InvariantStatus uint8

const (
	// Held: the invariant was checked in full and holds.
	Held InvariantStatus = iota
	// Degraded: the faults weakened the invariant's observability (no
	// trigger fired, the journal wrapped, an injected delay widened a
	// bound) — the weakened form still holds but the full claim could not
	// be established.
	Degraded
	// Broken: a hard violation — a datapath bug, not a fault symptom.
	Broken
)

// String returns the report name of the status.
func (s InvariantStatus) String() string {
	switch s {
	case Held:
		return "held"
	case Degraded:
		return "degraded"
	case Broken:
		return "broken"
	default:
		return "status(?)"
	}
}

// MarshalJSON emits the symbolic name.
func (s InvariantStatus) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses the symbolic name back (report tooling round-trips).
func (s *InvariantStatus) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for _, v := range []InvariantStatus{Held, Degraded, Broken} {
		if v.String() == name {
			*s = v
			return nil
		}
	}
	return fmt.Errorf("chaos: unknown invariant status %q", name)
}

// Invariant is one checked property with its verdict.
type Invariant struct {
	// Name identifies the property (stable across runs, used in reports).
	Name string `json:"name"`
	// Status is the verdict.
	Status InvariantStatus `json:"status"`
	// Detail explains a non-held verdict (empty when held).
	Detail string `json:"detail,omitempty"`
}

// Checker holds everything a campaign observed and asserts the datapath
// invariant catalog over it. The campaign fills it; Check returns one
// Invariant per property, in fixed order.
type Checker struct {
	// Primary and Shadow are the block-mode and per-sample recorders.
	Primary *telemetry.Live
	Shadow  *telemetry.Live
	// PrimaryStats and ShadowStats are the cores' final counter snapshots.
	PrimaryStats core.Stats
	ShadowStats  core.Stats
	// TxMismatches counts transmit samples where the block path and the
	// per-sample path disagreed.
	TxMismatches uint64
	// XCorrMismatches counts samples where the popcount correlator and
	// xcorr.Reference disagreed on (metric, trigger).
	XCorrMismatches uint64
	// Committed is the effective register write sequence (post-fault).
	Committed []RegWrite
	// Bus is the primary core's register bus, for final readback.
	Bus *fpga.RegisterBus
	// Packets is the ground-truth packet window list for the verdict leg.
	Packets []verdict.Packet
	// DetectionKinds are the detector-edge kinds the trigger is fused on.
	DetectionKinds []telemetry.EventKind
}

// Check runs the full invariant catalog.
func (c *Checker) Check() []Invariant {
	return []Invariant{
		c.checkTinitBound(),
		c.checkEngagementLedger(),
		c.checkBlockParity(),
		c.checkXCorrBitExact(),
		c.checkCounterReconcile(),
		c.checkRegisterReadback(),
	}
}

// maxCommittedDelay returns the largest trigger-to-jam delay (in samples)
// ever committed to RegJammerDelay — injected bit-flips may legitimately
// program a surgical delay, which widens the Tinit bound.
func (c *Checker) maxCommittedDelay() uint64 {
	var max uint64
	for _, w := range c.Committed {
		if w.Addr == core.RegJammerDelay && uint64(w.Value) > max {
			max = uint64(w.Value)
		}
	}
	return max
}

// checkTinitBound asserts the paper's Tinit guarantee: every trigger-to-RF
// turnaround observed by the histogram stays within jammer.InitCycles
// (8 cycles, 80 ns), plus any surgical delay the committed register state
// legitimately programs (4 cycles per delay sample).
func (c *Checker) checkTinitBound() Invariant {
	inv := Invariant{Name: "tinit-bound"}
	h := c.Primary.Snapshot().Histogram(telemetry.HistTriggerToRF)
	if h.Count == 0 {
		inv.Status = Degraded
		inv.Detail = "no trigger-to-RF turnarounds observed"
		return inv
	}
	delay := c.maxCommittedDelay()
	bound := uint64(jammer.InitCycles) + delay*fpga.CyclesPerSample
	if h.Max > bound {
		inv.Status = Broken
		inv.Detail = fmt.Sprintf("max turnaround %d cycles exceeds bound %d (Tinit %d + delay %d samples)",
			h.Max, bound, jammer.InitCycles, delay)
		return inv
	}
	if delay > 0 {
		inv.Status = Degraded
		inv.Detail = fmt.Sprintf("bound widened to %d cycles by injected delay of %d samples (max observed %d)",
			bound, delay, h.Max)
	}
	return inv
}

// checkEngagementLedger asserts the engagement bookkeeping: IDs appear in
// strictly increasing contiguous order, each closes at most once, nothing is
// attributed to an engagement after its close, and cycle stamps never run
// backwards. When the journal ring wrapped, the surviving window is checked
// and the verdict degrades (the full-run claim is unobservable).
func (c *Checker) checkEngagementLedger() Invariant {
	inv := Invariant{Name: "engagement-ledger"}
	events := c.Primary.Events()
	dropped := c.Primary.Dropped()

	var lastCycle uint64
	var lastNew uint32
	closed := make(map[uint32]bool)
	for i, ev := range events {
		if ev.Cycle < lastCycle {
			inv.Status = Broken
			inv.Detail = fmt.Sprintf("journal cycle ran backwards at index %d (%d after %d)", i, ev.Cycle, lastCycle)
			return inv
		}
		lastCycle = ev.Cycle
		if ev.Eng == 0 {
			continue
		}
		if ev.Eng > lastNew {
			if dropped == 0 && ev.Eng != lastNew+1 {
				inv.Status = Broken
				inv.Detail = fmt.Sprintf("engagement IDs not contiguous: %d after %d", ev.Eng, lastNew)
				return inv
			}
			lastNew = ev.Eng
		} else if closed[ev.Eng] {
			inv.Status = Broken
			inv.Detail = fmt.Sprintf("event attributed to engagement %d after its close", ev.Eng)
			return inv
		}
		if ev.Kind == telemetry.EvHoldoffRelease {
			if closed[ev.Eng] {
				inv.Status = Broken
				inv.Detail = fmt.Sprintf("engagement %d closed twice", ev.Eng)
				return inv
			}
			closed[ev.Eng] = true
		}
	}
	if dropped == 0 {
		// Balance: with the whole run in view, every engagement except
		// possibly the last (which may still be open at capture) must have
		// closed.
		for _, e := range span.Build(events) {
			if e.ID != lastNew && !closed[e.ID] {
				inv.Status = Broken
				inv.Detail = fmt.Sprintf("engagement %d never closed", e.ID)
				return inv
			}
		}
	} else {
		inv.Status = Degraded
		inv.Detail = fmt.Sprintf("journal dropped %d events; checked surviving window only", dropped)
	}
	return inv
}

// checkBlockParity asserts the block/per-sample contract under fault: the
// primary (radio block path) and shadow (per-sample path) cores consumed the
// same faulted stream and identical committed register sequences, so their
// transmit output, counters, and telemetry journals must agree bit for bit.
func (c *Checker) checkBlockParity() Invariant {
	inv := Invariant{Name: "block-sample-parity"}
	if c.TxMismatches > 0 {
		inv.Status = Broken
		inv.Detail = fmt.Sprintf("%d transmit samples differ between block and per-sample paths", c.TxMismatches)
		return inv
	}
	if c.PrimaryStats != c.ShadowStats {
		inv.Status = Broken
		inv.Detail = fmt.Sprintf("counter divergence: block %+v vs per-sample %+v", c.PrimaryStats, c.ShadowStats)
		return inv
	}
	pe, se := c.Primary.Events(), c.Shadow.Events()
	if len(pe) != len(se) {
		inv.Status = Broken
		inv.Detail = fmt.Sprintf("journal length divergence: block %d vs per-sample %d events", len(pe), len(se))
		return inv
	}
	for i := range pe {
		if pe[i] != se[i] {
			inv.Status = Broken
			inv.Detail = fmt.Sprintf("journal divergence at index %d: block %+v vs per-sample %+v", i, pe[i], se[i])
			return inv
		}
	}
	return inv
}

// checkXCorrBitExact asserts the popcount kernel stayed bit-exact against
// the scalar reference on the faulted stream.
func (c *Checker) checkXCorrBitExact() Invariant {
	inv := Invariant{Name: "xcorr-bit-exact"}
	if c.XCorrMismatches > 0 {
		inv.Status = Broken
		inv.Detail = fmt.Sprintf("%d samples where popcount kernel and reference disagree", c.XCorrMismatches)
	}
	return inv
}

// checkCounterReconcile asserts the three observability planes agree: the
// atomic counter block, the all-time journal kind counts, and — when the
// journal survived intact — the verdict ledger built from packet windows.
func (c *Checker) checkCounterReconcile() Invariant {
	inv := Invariant{Name: "counter-ledger-reconcile"}
	pairs := []struct {
		name    string
		counter uint64
		kind    telemetry.EventKind
	}{
		{"xcorr detections", c.PrimaryStats.XCorrDetections, telemetry.EvXCorrEdge},
		{"energy-high detections", c.PrimaryStats.EnergyHighDetections, telemetry.EvEnergyHighEdge},
		{"energy-low detections", c.PrimaryStats.EnergyLowDetections, telemetry.EvEnergyLowEdge},
		{"jam triggers", c.PrimaryStats.JamTriggers, telemetry.EvTriggerFire},
		{"register writes", c.PrimaryStats.RegWrites, telemetry.EvRegWrite},
	}
	for _, p := range pairs {
		if got := c.Primary.EventCount(p.kind); got != p.counter {
			inv.Status = Broken
			inv.Detail = fmt.Sprintf("%s: counter %d vs journal %d", p.name, p.counter, got)
			return inv
		}
	}
	if got := uint64(len(c.Committed)); got != c.PrimaryStats.RegWrites {
		inv.Status = Broken
		inv.Detail = fmt.Sprintf("register writes: counter %d vs injector committed ledger %d", c.PrimaryStats.RegWrites, got)
		return inv
	}
	// Verdict-ledger leg: every configured-kind detector edge lands in the
	// ledger either as a detection (inside a packet window) or a false
	// alarm; their sum must equal the counter total. Needs the whole
	// journal, so it degrades under ring pressure.
	if c.Primary.Dropped() > 0 {
		inv.Status = Degraded
		inv.Detail = fmt.Sprintf("journal dropped %d events; verdict-ledger leg skipped", c.Primary.Dropped())
		return inv
	}
	res, err := verdict.Classify(c.Packets, span.Build(c.Primary.Events()),
		verdict.Options{Kinds: c.DetectionKinds})
	if err != nil {
		inv.Status = Broken
		inv.Detail = fmt.Sprintf("verdict classify: %v", err)
		return inv
	}
	var want uint64
	for _, k := range c.DetectionKinds {
		want += c.Primary.EventCount(k)
	}
	if got := res.Summary.DetectionEdges + res.Summary.FalseAlarmEdges; got != want {
		inv.Status = Broken
		inv.Detail = fmt.Sprintf("configured-kind edges: verdict ledger %d vs counters %d", got, want)
	}
	return inv
}

// checkRegisterReadback asserts the register file ends the campaign holding
// exactly the last committed value per address — dropped and delayed writes
// included, the file and the injector's committed ledger agree.
func (c *Checker) checkRegisterReadback() Invariant {
	inv := Invariant{Name: "register-readback"}
	model := make(map[uint8]uint32)
	for _, w := range c.Committed {
		model[w.Addr] = w.Value
	}
	addrs := make([]int, 0, len(model))
	for a := range model {
		addrs = append(addrs, int(a))
	}
	sort.Ints(addrs)
	for _, a := range addrs {
		got, err := c.Bus.Read(uint8(a))
		if err != nil {
			inv.Status = Broken
			inv.Detail = fmt.Sprintf("readback of register %d: %v", a, err)
			return inv
		}
		if want := model[uint8(a)]; got != want {
			inv.Status = Broken
			inv.Detail = fmt.Sprintf("register %d holds %#x, committed ledger says %#x", a, got, want)
			return inv
		}
	}
	return inv
}
