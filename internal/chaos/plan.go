// Package chaos is the deterministic fault-injection harness: it wraps the
// existing datapath layers with seeded adversarial behavior — register-bus
// glitches, receive-stream corruption, and timing skew — and then asserts
// that the datapath's structural invariants survive the campaign. The real
// USRP drops samples, loses setting-bus writes and drifts its clock; none of
// that may break the properties the rest of the test suite relies on
// (block/sample parity, kernel bit-exactness, counter/journal agreement,
// engagement bookkeeping, the Tinit turnaround bound).
//
// Everything is driven by a Plan: a seed plus per-class severity knobs. All
// randomness flows from one rand.Rand seeded by the plan, every injected
// fault is recorded with the hardware-clock cycle at which it was applied,
// and the campaign report contains no wall-clock state — so the same plan
// replays bit-identically, and a report diff is a regression signal.
package chaos

import (
	"encoding/json"
	"fmt"
)

// FaultKind identifies one class of injected fault in the ledger.
type FaultKind uint8

// The fault taxonomy. Register faults model UHD setting-bus glitches,
// stream faults model front-end/transport corruption on the receive path,
// timing faults model clock drift and observability back-pressure.
const (
	// FaultRegDrop is a register write lost in flight (never committed).
	// Arg: address<<32 | intended value.
	FaultRegDrop FaultKind = iota
	// FaultRegFlip is a single bit error on the data bus; the corrupted
	// value commits. Arg: address<<32 | committed (flipped) value.
	FaultRegFlip
	// FaultRegDelay is a write held back and committed whole blocks later
	// (a stalled setting-bus transaction). Arg: address<<32 | value.
	FaultRegDelay
	// FaultStreamDrop removes consecutive receive samples (overflow "O" on
	// a real N210). Arg: block offset<<32 | samples removed.
	FaultStreamDrop
	// FaultStreamDup duplicates a span of receive samples (re-delivered
	// transport frame). Arg: block offset<<32 | samples duplicated.
	FaultStreamDup
	// FaultStreamSaturate scales a span hard into ADC clipping.
	// Arg: block offset<<32 | span length.
	FaultStreamSaturate
	// FaultStreamDCStick sticks the I rail at a DC level for a span (a
	// stuck ADC bit / mixer rail). Arg: block offset<<32 | span length.
	FaultStreamDCStick
	// FaultClockRamp applies a sample-clock offset ramp through
	// internal/impair for the whole campaign. Arg: offset in ppm.
	FaultClockRamp
	// FaultJournalPressure shrinks the telemetry journal so the ring wraps
	// under load. Arg: journal depth in events.
	FaultJournalPressure

	numFaultKinds
)

// String returns the ledger name of the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultRegDrop:
		return "reg-drop"
	case FaultRegFlip:
		return "reg-flip"
	case FaultRegDelay:
		return "reg-delay"
	case FaultStreamDrop:
		return "stream-drop"
	case FaultStreamDup:
		return "stream-dup"
	case FaultStreamSaturate:
		return "stream-saturate"
	case FaultStreamDCStick:
		return "stream-dc-stick"
	case FaultClockRamp:
		return "clock-ramp"
	case FaultJournalPressure:
		return "journal-pressure"
	default:
		return "fault(?)"
	}
}

// MarshalJSON emits the symbolic name so reports stay readable and stable.
func (k FaultKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON parses the symbolic name back (report tooling round-trips).
func (k *FaultKind) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for v := FaultKind(0); v < numFaultKinds; v++ {
		if v.String() == name {
			*k = v
			return nil
		}
	}
	return fmt.Errorf("chaos: unknown fault kind %q", name)
}

// Fault is one ledger entry: what was injected and at which hardware-clock
// cycle of the primary core. The ledger is the replay witness — two runs of
// the same plan must produce identical ledgers.
type Fault struct {
	// Cycle is the 100 MHz hardware-clock cycle at which the fault applied.
	Cycle uint64 `json:"cycle"`
	// Kind identifies the fault class.
	Kind FaultKind `json:"kind"`
	// Arg carries kind-specific data (see the FaultKind docs).
	Arg uint64 `json:"arg"`
}

// Plan is the full configuration of one fault campaign. The zero value (plus
// a seed) is the control plan: no faults armed. All probabilities are per
// opportunity — per register write for the Reg knobs, per processed block
// for the Stream knobs.
type Plan struct {
	// Seed drives every random decision of the campaign (fault draws, noise,
	// stimulus). Same plan ⇒ same run, bit for bit.
	Seed int64 `json:"seed"`

	// Register-bus faults (applied per host register write).
	RegDropProb    float64 `json:"reg_drop_prob,omitempty"`
	RegFlipProb    float64 `json:"reg_flip_prob,omitempty"`
	RegDelayProb   float64 `json:"reg_delay_prob,omitempty"`
	RegDelayBlocks int     `json:"reg_delay_blocks,omitempty"` // hold time, in stimulus blocks (default 2)

	// Stream faults (applied per stimulus block).
	StreamDropProb float64 `json:"stream_drop_prob,omitempty"`
	StreamDropMax  int     `json:"stream_drop_max,omitempty"` // max samples removed (default 32)
	StreamDupProb  float64 `json:"stream_dup_prob,omitempty"`
	StreamDupMax   int     `json:"stream_dup_max,omitempty"` // max samples duplicated (default 32)
	StreamSatProb  float64 `json:"stream_sat_prob,omitempty"`
	StreamSatGain  float64 `json:"stream_sat_gain,omitempty"` // amplitude scale into clipping (default 1000)
	StreamSatLen   int     `json:"stream_sat_len,omitempty"`  // max clipped span (default 64)
	StreamDCProb   float64 `json:"stream_dc_prob,omitempty"`
	StreamDCLevel  float64 `json:"stream_dc_level,omitempty"` // stuck rail level (default 0.9)
	StreamDCLen    int     `json:"stream_dc_len,omitempty"`   // max stuck span (default 64)

	// Timing faults.
	ClockOffsetPPM float64 `json:"clock_offset_ppm,omitempty"` // sample-clock ramp via internal/impair
	JournalDepth   int     `json:"journal_depth,omitempty"`    // 0 = default telemetry depth
}

// withDefaults fills the non-probability knobs.
func (p Plan) withDefaults() Plan {
	if p.RegDelayBlocks <= 0 {
		p.RegDelayBlocks = 2
	}
	if p.StreamDropMax <= 0 {
		p.StreamDropMax = 32
	}
	if p.StreamDupMax <= 0 {
		p.StreamDupMax = 32
	}
	if p.StreamSatGain <= 0 {
		// The stimulus rides ~60 dB below full scale; drive the span far
		// past the quantizer's rails so the ADC genuinely clips.
		p.StreamSatGain = 1000
	}
	if p.StreamSatLen <= 0 {
		p.StreamSatLen = 64
	}
	if p.StreamDCLevel == 0 {
		p.StreamDCLevel = 0.9
	}
	if p.StreamDCLen <= 0 {
		p.StreamDCLen = 64
	}
	return p
}

// validate rejects out-of-range knobs with a diagnosable error.
func (p Plan) validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"reg_drop_prob", p.RegDropProb},
		{"reg_flip_prob", p.RegFlipProb},
		{"reg_delay_prob", p.RegDelayProb},
		{"stream_drop_prob", p.StreamDropProb},
		{"stream_dup_prob", p.StreamDupProb},
		{"stream_sat_prob", p.StreamSatProb},
		{"stream_dc_prob", p.StreamDCProb},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("chaos: %s = %v outside [0, 1]", pr.name, pr.v)
		}
	}
	if p.JournalDepth < 0 {
		return fmt.Errorf("chaos: journal_depth = %d negative", p.JournalDepth)
	}
	return nil
}
