package chaos

import (
	"math/rand"
	"testing"
)

// randomPlan draws an arbitrary plan from the full knob space. Probabilities
// go up to ~0.6 per opportunity — far beyond any plausible hardware — and
// journal depths down to 16 events.
func randomPlan(rng *rand.Rand) Plan {
	p := Plan{Seed: rng.Int63()}
	maybe := func(f *float64, scale float64) {
		if rng.Intn(2) == 0 {
			*f = rng.Float64() * scale
		}
	}
	maybe(&p.RegDropProb, 0.6)
	maybe(&p.RegFlipProb, 0.6)
	maybe(&p.RegDelayProb, 0.6)
	if p.RegDelayProb > 0 {
		p.RegDelayBlocks = 1 + rng.Intn(3)
	}
	maybe(&p.StreamDropProb, 0.6)
	maybe(&p.StreamDupProb, 0.6)
	maybe(&p.StreamSatProb, 0.6)
	maybe(&p.StreamDCProb, 0.6)
	if rng.Intn(2) == 0 {
		p.ClockOffsetPPM = (rng.Float64() - 0.5) * 1000
	}
	if rng.Intn(3) == 0 {
		p.JournalDepth = 16 << rng.Intn(8) // 16 .. 2048
	}
	return p
}

// TestPropertyRandomPlans is the property-based net: no randomly generated
// plan — any mix of fault classes at any severity — may ever produce a
// *broken* invariant. Faults are allowed to degrade observability (no
// triggers, wrapped journal, widened Tinit bound), never to expose a
// datapath divergence.
func TestPropertyRandomPlans(t *testing.T) {
	iters := 24
	if testing.Short() {
		iters = 6
	}
	rng := rand.New(rand.NewSource(20260806))
	for i := 0; i < iters; i++ {
		plan := randomPlan(rng)
		res, err := Run(Config{Plan: plan, Frames: 6})
		if err != nil {
			t.Fatalf("plan %d (%+v): %v", i, plan, err)
		}
		for _, inv := range res.Invariants {
			if inv.Status == Broken {
				t.Errorf("plan %d (%+v): invariant %s broken: %s", i, plan, inv.Name, inv.Detail)
			}
		}
	}
}

// Random plans replay deterministically too, not just the curated sweep.
func TestPropertyRandomPlansReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 4; i++ {
		plan := randomPlan(rng)
		a, err := Run(Config{Plan: plan, Frames: 5})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(Config{Plan: plan, Frames: 5})
		if err != nil {
			t.Fatal(err)
		}
		if a.LedgerHash != b.LedgerHash || a.Samples != b.Samples {
			t.Errorf("plan %d: replay diverged (hash %s vs %s, samples %d vs %d)",
				i, a.LedgerHash, b.LedgerHash, a.Samples, b.Samples)
		}
	}
}
