package jammer

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fixed"
)

// Differential tests for the block datapath's bulk span entry point:
// ProcessQuietSpan must march the controller through trigger-free ticks
// bit-identically to per-sample Process(rx, false) calls — same transmit
// samples, same phase-transition sequence, same counters, and the same
// replay-ring contents no matter how the stream is chopped into spans.

// quietStream builds a quantized receive stream with varying content so the
// replay capture is observable.
func quietStream(rng *rand.Rand, n int) []fixed.IQ {
	out := make([]fixed.IQ, n)
	for k := range out {
		out[k] = fixed.IQ{I: int16(rng.Intn(1 << 16)), Q: int16(rng.Intn(1 << 16))}
	}
	return out
}

func planes(samples []fixed.IQ) (iPlane, qPlane []int16) {
	iPlane = make([]int16, len(samples))
	qPlane = make([]int16, len(samples))
	for k, s := range samples {
		iPlane[k] = s.I
		qPlane[k] = s.Q
	}
	return iPlane, qPlane
}

// runDifferential fires a trigger at index trig (or never, if trig < 0) and
// compares a bulk-span controller against a per-sample one over the stream,
// chopping the bulk side's quiet stretches into spans of blockLen.
func runDifferential(t *testing.T, configure func(*Controller), samples []fixed.IQ, trig, blockLen int) {
	t.Helper()
	label := fmt.Sprintf("trig %d blockLen %d", trig, blockLen)

	var bulkPhases, scalarPhases []string
	bulk, scalar := New(), New()
	configure(bulk)
	configure(scalar)
	bulk.OnPhase(func(from, to Phase) { bulkPhases = append(bulkPhases, from.String()+">"+to.String()) })
	scalar.OnPhase(func(from, to Phase) { scalarPhases = append(scalarPhases, from.String()+">"+to.String()) })

	iPlane, qPlane := planes(samples)
	txB := make([]complex128, len(samples))
	var bulkJam uint64
	for pos := 0; pos < len(samples); {
		if pos == trig {
			txB[pos] = bulk.Process(samples[pos], true)
			if txB[pos] != 0 {
				bulkJam++
			}
			pos++
			continue
		}
		end := pos + blockLen
		if end > len(samples) {
			end = len(samples)
		}
		if trig > pos && trig < end {
			end = trig
		}
		bulkJam += bulk.ProcessQuietSpan(iPlane[pos:end], qPlane[pos:end], txB[pos:end])
		pos = end
	}

	var scalarJam uint64
	for k, s := range samples {
		out := scalar.Process(s, k == trig)
		if out != 0 {
			scalarJam++
		}
		if out != txB[k] {
			t.Fatalf("%s: tx diverges at sample %d: bulk %v vs scalar %v", label, k, txB[k], out)
		}
	}

	if bulkJam != scalarJam {
		t.Fatalf("%s: jam samples %d != %d", label, bulkJam, scalarJam)
	}
	if bulk.Triggers() != scalar.Triggers() || bulk.TXSamples() != scalar.TXSamples() {
		t.Fatalf("%s: counters (%d,%d) != (%d,%d)", label,
			bulk.Triggers(), bulk.TXSamples(), scalar.Triggers(), scalar.TXSamples())
	}
	if fmt.Sprint(bulkPhases) != fmt.Sprint(scalarPhases) {
		t.Fatalf("%s: phase transitions %v != %v", label, bulkPhases, scalarPhases)
	}
	if bulk.st != scalar.st || bulk.remaining != scalar.remaining || bulk.rfPending != scalar.rfPending {
		t.Fatalf("%s: end state {%v %d %v} != {%v %d %v}", label,
			bulk.st, bulk.remaining, bulk.rfPending, scalar.st, scalar.remaining, scalar.rfPending)
	}
	if bulk.replay != scalar.replay || bulk.replayPos != scalar.replayPos || bulk.replayLen != scalar.replayLen {
		t.Fatalf("%s: replay ring diverges (pos %d/%d len %d/%d)", label,
			bulk.replayPos, scalar.replayPos, bulk.replayLen, scalar.replayLen)
	}
}

func TestQuietSpanIdleCaptureLongSpan(t *testing.T) {
	// Idle spans longer than the 512-sample replay ring: the bulk capture
	// must skip-advance and keep only the tail, exactly like 1500 individual
	// captures.
	rng := rand.New(rand.NewSource(0x1D7E))
	samples := quietStream(rng, 3*ReplayDepth-37)
	for _, blockLen := range []int{1, 64, ReplayDepth - 1, ReplayDepth, ReplayDepth + 1, len(samples)} {
		runDifferential(t, func(c *Controller) {
			if err := c.SetWaveform(WaveformReplay); err != nil {
				t.Fatal(err)
			}
		}, samples, -1, blockLen)
	}
}

func TestQuietSpanBurstLifecycleAcrossSpans(t *testing.T) {
	// Trigger → delay → init → burst → idle, with every phase boundary
	// landing both inside spans and exactly on span edges.
	rng := rand.New(rand.NewSource(0xBEEF))
	samples := quietStream(rng, 700)
	for _, delay := range []uint64{0, 7, 64} {
		for _, uptime := range []uint64{24, 100, 320} {
			for _, blockLen := range []int{1, 3, 63, 64, 65, 200, len(samples)} {
				runDifferential(t, func(c *Controller) {
					c.SetDelaySamples(delay)
					if err := c.SetUptimeSamples(uptime); err != nil {
						t.Fatal(err)
					}
					c.SetGain(0.8)
				}, samples, 40, blockLen)
			}
		}
	}
}

func TestQuietSpanReplayWaveformAfterCapture(t *testing.T) {
	// Replay jamming plays back what the quiet-span capture stored, so a
	// capture divergence would surface directly in the transmit samples.
	rng := rand.New(rand.NewSource(0x4E91))
	samples := quietStream(rng, 1200)
	for _, blockLen := range []int{33, 512, 600} {
		runDifferential(t, func(c *Controller) {
			if err := c.SetWaveform(WaveformReplay); err != nil {
				t.Fatal(err)
			}
			if err := c.SetUptimeSamples(400); err != nil {
				t.Fatal(err)
			}
		}, samples, 800, blockLen)
	}
}

func TestQuietSpanHostStreamWaveform(t *testing.T) {
	rng := rand.New(rand.NewSource(0x4057))
	samples := quietStream(rng, 500)
	host := make([]complex128, 37)
	for k := range host {
		host[k] = complex(float64(k)*0.02, -float64(k)*0.01)
	}
	for _, blockLen := range []int{5, 64, 128} {
		runDifferential(t, func(c *Controller) {
			if err := c.SetWaveform(WaveformHostStream); err != nil {
				t.Fatal(err)
			}
			c.SetHostStream(host)
			if err := c.SetUptimeSamples(150); err != nil {
				t.Fatal(err)
			}
		}, samples, 100, blockLen)
	}
}
