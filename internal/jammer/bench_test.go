package jammer

import (
	"testing"

	"repro/internal/fixed"
)

func benchController(tb testing.TB) *Controller {
	tb.Helper()
	c := New()
	if err := c.SetWaveform(WaveformWGN); err != nil {
		tb.Fatal(err)
	}
	if err := c.SetUptimeSamples(256); err != nil {
		tb.Fatal(err)
	}
	c.SetGain(1)
	return c
}

// BenchmarkProcessIdle measures the controller's cost while armed but not
// jamming — the common case on the 25 MSPS datapath.
func BenchmarkProcessIdle(b *testing.B) {
	c := benchController(b)
	rx := fixed.IQ{I: 120, Q: -40}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Process(rx, false)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Msamples/s")
}

// BenchmarkProcessJamming measures the controller while it synthesizes a
// burst: re-trigger every sample so the uptime counter never idles the
// waveform generator.
func BenchmarkProcessJamming(b *testing.B) {
	c := benchController(b)
	rx := fixed.IQ{I: 120, Q: -40}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Process(rx, true)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Msamples/s")
}

// TestProcessZeroAllocs pins the controller's zero-allocation guarantee in
// both phases.
func TestProcessZeroAllocs(t *testing.T) {
	c := benchController(t)
	rx := fixed.IQ{I: 120, Q: -40}
	for _, trig := range []bool{false, true} {
		allocs := testing.AllocsPerRun(10, func() {
			for i := 0; i < 1024; i++ {
				c.Process(rx, trig)
			}
		})
		if allocs != 0 {
			t.Errorf("Process(trigger=%v): %.1f allocs per 1024 samples, want 0",
				trig, allocs)
		}
	}
}
