package jammer

import (
	"math"
	"testing"

	"repro/internal/fixed"
)

// run advances the controller n ticks with no trigger and quiet RX,
// collecting TX samples.
func run(c *Controller, n int, trigFirst bool) []complex128 {
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		out[i] = c.Process(fixed.IQ{}, trigFirst && i == 0)
	}
	return out
}

func TestInitLatencyIs80ns(t *testing.T) {
	c := New()
	if err := c.SetUptimeSamples(10); err != nil {
		t.Fatal(err)
	}
	out := run(c, 20, true)
	// Trigger at tick 0; Tinit = 8 cycles = 2 samples; first RF at tick 2.
	for i := 0; i < InitSamples; i++ {
		if out[i] != 0 {
			t.Errorf("TX active at tick %d, before DUC fill", i)
		}
	}
	if out[InitSamples] == 0 {
		t.Errorf("no TX at tick %d (expected first jam sample)", InitSamples)
	}
}

func TestUptimeExact(t *testing.T) {
	c := New()
	if err := c.SetUptimeSamples(5); err != nil {
		t.Fatal(err)
	}
	out := run(c, 30, true)
	active := 0
	for _, s := range out {
		if s != 0 {
			active++
		}
	}
	if active != 5 {
		t.Errorf("jammed for %d samples, want 5", active)
	}
	if c.TXSamples() != 5 || c.Triggers() != 1 {
		t.Errorf("counters: tx=%d trig=%d", c.TXSamples(), c.Triggers())
	}
}

func TestUptimeValidation(t *testing.T) {
	c := New()
	if err := c.SetUptimeSamples(0); err == nil {
		t.Error("0 uptime accepted")
	}
	if err := c.SetUptimeSamples(1 << 33); err == nil {
		t.Error("2^33 uptime accepted (register is 32-bit)")
	}
	if err := c.SetUptimeSamples(1); err != nil {
		t.Error("minimum 1-sample (40ns) burst rejected")
	}
	if err := c.SetUptimeSamples(1 << 32); err != nil {
		t.Error("maximum burst rejected")
	}
}

func TestSurgicalDelay(t *testing.T) {
	c := New()
	if err := c.SetUptimeSamples(3); err != nil {
		t.Fatal(err)
	}
	c.SetDelaySamples(10)
	out := run(c, 30, true)
	firstActive := -1
	for i, s := range out {
		if s != 0 {
			firstActive = i
			break
		}
	}
	want := 10 + InitSamples
	if firstActive != want {
		t.Errorf("first jam sample at tick %d, want %d (delay+init)", firstActive, want)
	}
}

func TestRetriggerIgnoredWhileBusy(t *testing.T) {
	c := New()
	if err := c.SetUptimeSamples(20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		c.Process(fixed.IQ{}, true) // continuous triggering
	}
	if c.Triggers() != 2 { // one at start, one after the 20-sample burst ends
		t.Errorf("Triggers = %d, want 2", c.Triggers())
	}
}

func TestWGNPowerAndGain(t *testing.T) {
	c := New()
	if err := c.SetUptimeSamples(1 << 16); err != nil {
		t.Fatal(err)
	}
	c.SetGain(2)
	var sum float64
	n := 0
	c.Process(fixed.IQ{}, true)
	for i := 0; i < 40000; i++ {
		s := c.Process(fixed.IQ{}, false)
		if s != 0 {
			sum += real(s)*real(s) + imag(s)*imag(s)
			n++
		}
	}
	if n == 0 {
		t.Fatal("no WGN emitted")
	}
	power := sum / float64(n)
	if math.Abs(power-4) > 0.2 { // gain² × unit power
		t.Errorf("WGN power = %v, want ~4", power)
	}
}

func TestReplayWaveform(t *testing.T) {
	c := New()
	if err := c.SetWaveform(WaveformReplay); err != nil {
		t.Fatal(err)
	}
	if err := c.SetUptimeSamples(8); err != nil {
		t.Fatal(err)
	}
	// Feed a recognizable RX ramp while idle.
	for i := 1; i <= 4; i++ {
		c.Process(fixed.Quantize(complex(float64(i)/10, 0)), false)
	}
	// The trigger tick consumes the first init cycle and captures one more
	// (zero) RX sample; the remaining init tick captures another. At jam
	// start the buffer holds [.1 .2 .3 .4 0 0], replayed oldest-first and
	// cycling: 8 samples = [.1 .2 .3 .4 0 0 .1 .2].
	c.Process(fixed.IQ{}, true)
	for i := 0; i < InitSamples-1; i++ {
		if s := c.Process(fixed.IQ{}, false); s != 0 {
			t.Fatalf("TX during init tick %d", i)
		}
	}
	want := []float64{0.1, 0.2, 0.3, 0.4, 0, 0, 0.1, 0.2}
	for i, w := range want {
		got := real(c.Process(fixed.IQ{}, false))
		if math.Abs(got-w) > 1e-3 {
			t.Errorf("replay sample %d = %v, want %v", i, got, w)
		}
	}
	if s := c.Process(fixed.IQ{}, false); s != 0 {
		t.Error("TX continued past uptime")
	}
}

func TestHostStreamWaveform(t *testing.T) {
	c := New()
	if err := c.SetWaveform(WaveformHostStream); err != nil {
		t.Fatal(err)
	}
	if err := c.SetUptimeSamples(6); err != nil {
		t.Fatal(err)
	}
	c.SetHostStream([]complex128{1, 2, 3})
	c.Process(fixed.IQ{}, true)
	var got []complex128
	for i := 0; i < 10; i++ {
		if s := c.Process(fixed.IQ{}, false); s != 0 {
			got = append(got, s)
		}
	}
	want := []complex128{1, 2, 3, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHostStreamEmptyBufferSilent(t *testing.T) {
	c := New()
	if err := c.SetWaveform(WaveformHostStream); err != nil {
		t.Fatal(err)
	}
	out := run(c, 20, true)
	for i, s := range out {
		if s != 0 {
			t.Fatalf("tick %d: TX with empty host buffer", i)
		}
	}
}

func TestSetWaveformValidation(t *testing.T) {
	c := New()
	if err := c.SetWaveform(Waveform(9)); err == nil {
		t.Error("bogus waveform accepted")
	}
	if c.Waveform() != WaveformWGN {
		t.Error("failed SetWaveform changed state")
	}
}

func TestResetAbortsJamming(t *testing.T) {
	c := New()
	if err := c.SetUptimeSamples(1000); err != nil {
		t.Fatal(err)
	}
	run(c, 10, true)
	if !c.Active() {
		t.Fatal("should be jamming")
	}
	c.Reset()
	if c.Active() || c.Triggers() != 0 || c.TXSamples() != 0 {
		t.Error("Reset incomplete")
	}
	out := run(c, 10, false)
	for _, s := range out {
		if s != 0 {
			t.Error("TX after reset without trigger")
		}
	}
}

func TestWaveformStrings(t *testing.T) {
	cases := map[Waveform]string{
		WaveformWGN: "wgn", WaveformReplay: "replay",
		WaveformHostStream: "host-stream", Waveform(7): "waveform(7)",
	}
	for w, want := range cases {
		if w.String() != want {
			t.Errorf("%d.String() = %q", w, w.String())
		}
	}
}

func TestLFSRNonDegenerate(t *testing.T) {
	var l lfsrGaussian
	l.seed(0) // must escape the absorbing state
	seen := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		seen[l.next()] = true
	}
	if len(seen) < 990 {
		t.Errorf("LFSR produced only %d distinct values in 1000", len(seen))
	}
}

func TestWGNZeroMean(t *testing.T) {
	var l lfsrGaussian
	l.seed(0xACE1)
	var mean complex128
	const n = 50000
	for i := 0; i < n; i++ {
		mean += l.sample()
	}
	mean /= n
	if math.Hypot(real(mean), imag(mean)) > 0.02 {
		t.Errorf("WGN mean = %v", mean)
	}
}
