// Package jammer implements the transmit controller of the custom DSP core:
// once the trigger state machine fires, the controller takes complete
// control of the transmit data path and produces a jamming waveform
// (paper §2.2, §2.4).
//
// Three user-selectable waveform presets are provided, matching the paper:
//
//  1. a pseudorandom 25 MHz-wide white Gaussian noise signal,
//  2. a repetitive replay of up to the 512 most recently received samples,
//  3. the waveform currently being streamed to the transmit buffer by the
//     host application.
//
// The jamming duration (uptime) ranges from 1 sample (40 ns) to 2³² samples
// (≈172 s; the paper quotes "about 40 s" for practical settings), and an
// optional delay between trigger and active jamming lets the user target
// specific locations within a packet ("surgical" jamming). The turnaround
// from trigger to RF output is modeled as the paper measures it: the
// response initiates within 1 clock cycle and needs ~7 more cycles to
// populate the digital up-conversion chain, so the first jamming sample
// reaches RF 8 hardware cycles (80 ns, 2 baseband samples) after the
// trigger.
package jammer

import (
	"fmt"

	"repro/internal/fixed"
	"repro/internal/fpga"
)

// Waveform selects the jamming waveform preset.
type Waveform uint8

// The three waveform presets of §2.4.
const (
	// WaveformWGN transmits pseudorandom wideband Gaussian noise.
	WaveformWGN Waveform = iota
	// WaveformReplay repetitively replays the most recent received samples.
	WaveformReplay
	// WaveformHostStream transmits whatever the host is streaming into the
	// TX buffer.
	WaveformHostStream
)

func (w Waveform) String() string {
	switch w {
	case WaveformWGN:
		return "wgn"
	case WaveformReplay:
		return "replay"
	case WaveformHostStream:
		return "host-stream"
	default:
		return fmt.Sprintf("waveform(%d)", uint8(w))
	}
}

// Hardware limits (paper §2.4).
const (
	// ReplayDepth is the capacity of the replay capture buffer.
	ReplayDepth = 512
	// MinUptimeSamples is the shortest jamming burst: one sample (40 ns).
	MinUptimeSamples = 1
	// InitCycles is the trigger-to-RF turnaround: 1 cycle to initiate plus
	// ~7 cycles to fill the DUC (Tinit ≈ 80 ns).
	InitCycles = 8
	// InitSamples is InitCycles expressed in baseband samples.
	InitSamples = InitCycles / fpga.CyclesPerSample
)

// Phase is the transmit controller's lifecycle state. Exported so the
// telemetry layer can journal burst phase transitions.
type Phase uint8

// The controller phases, in lifecycle order.
const (
	// PhaseIdle: no burst in progress; the replay capture runs.
	PhaseIdle Phase = iota
	// PhaseDelay: trigger accepted, surgical delay counting down.
	PhaseDelay
	// PhaseInit: filling the DUC pipeline (InitCycles to RF).
	PhaseInit
	// PhaseJamming: jamming waveform on the air.
	PhaseJamming
)

func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseDelay:
		return "delay"
	case PhaseInit:
		return "init"
	case PhaseJamming:
		return "jamming"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}

// PhaseFunc observes controller phase transitions. It must not allocate;
// it runs in the sample loop.
type PhaseFunc func(from, to Phase)

// Controller is the streaming transmit controller. Feed it one call per
// baseband sample tick; it returns the TX sample for that tick. Not safe for
// concurrent use.
type Controller struct {
	waveform Waveform
	uptime   uint64 // samples of active jamming per trigger
	delay    uint64 // samples between trigger and TX init
	gain     float64

	st        Phase
	onPhase   PhaseFunc
	rfPending bool // RF-on notification owed with the next emitted sample
	remaining uint64

	wgn lfsrGaussian

	replay    [ReplayDepth]complex128
	replayPos int
	replayLen int
	playPos   int

	hostBuf  []complex128
	hostPos  int
	triggers uint64
	txCount  uint64
}

// New returns a controller with the WGN preset, a 0.1 ms uptime, no delay,
// and unit gain.
func New() *Controller {
	c := &Controller{
		waveform: WaveformWGN,
		uptime:   2500, // 0.1 ms at 25 MSPS
		gain:     1,
	}
	c.wgn.seed(0xACE1)
	return c
}

// SetWaveform selects the jamming waveform preset.
func (c *Controller) SetWaveform(w Waveform) error {
	if w > WaveformHostStream {
		return fmt.Errorf("jammer: unknown waveform %v", w)
	}
	c.waveform = w
	return nil
}

// Waveform returns the selected preset.
func (c *Controller) Waveform() Waveform { return c.waveform }

// SetUptimeSamples sets the jamming burst length in baseband samples.
// The hardware register is 32 bits wide.
func (c *Controller) SetUptimeSamples(n uint64) error {
	if n < MinUptimeSamples || n > 1<<32 {
		return fmt.Errorf("jammer: uptime %d samples outside [1, 2^32]", n)
	}
	c.uptime = n
	return nil
}

// UptimeSamples returns the configured burst length.
func (c *Controller) UptimeSamples() uint64 { return c.uptime }

// SetDelaySamples sets the trigger-to-jam delay for surgical jamming.
func (c *Controller) SetDelaySamples(n uint64) { c.delay = n }

// DelaySamples returns the configured delay.
func (c *Controller) DelaySamples() uint64 { return c.delay }

// SetGain sets the TX amplitude scale applied to the waveform.
func (c *Controller) SetGain(g float64) { c.gain = g }

// Gain returns the TX amplitude scale.
func (c *Controller) Gain() float64 { return c.gain }

// SetHostStream provides the buffer replayed by WaveformHostStream. The
// buffer is cycled continuously while jamming.
func (c *Controller) SetHostStream(buf []complex128) {
	c.hostBuf = append(c.hostBuf[:0], buf...)
	c.hostPos = 0
}

// Triggers returns how many jamming events have been serviced.
func (c *Controller) Triggers() uint64 { return c.triggers }

// TXSamples returns how many active jamming samples have been emitted.
func (c *Controller) TXSamples() uint64 { return c.txCount }

// Active reports whether the controller is currently emitting RF.
func (c *Controller) Active() bool { return c.st == PhaseJamming }

// Phase returns the controller's current lifecycle phase.
func (c *Controller) Phase() Phase { return c.st }

// OnPhase installs the phase-transition observer (nil to remove). The
// transition into PhaseJamming is reported on the tick of the first sample
// that actually reaches RF, so trigger→RF-on spans exactly InitCycles.
func (c *Controller) OnPhase(fn PhaseFunc) { c.onPhase = fn }

// toPhase switches phase and notifies the observer.
func (c *Controller) toPhase(to Phase) {
	from := c.st
	if from == to {
		return
	}
	c.st = to
	if c.onPhase != nil {
		c.onPhase(from, to)
	}
}

// Reset aborts any jamming in progress and clears counters and capture
// state; configuration is preserved.
func (c *Controller) Reset() {
	c.st = PhaseIdle
	c.rfPending = false
	c.remaining = 0
	c.replayPos, c.replayLen, c.playPos = 0, 0, 0
	c.hostPos = 0
	c.triggers = 0
	c.txCount = 0
}

// Process advances one baseband sample tick. rx is the receive-path sample
// (captured for the replay waveform), trigger is the state-machine output
// for this tick. It returns the transmit sample (0 when not jamming).
func (c *Controller) Process(rx fixed.IQ, trigger bool) complex128 {
	// The replay capture runs whenever we are not transmitting, keeping the
	// "most recently received samples" fresh.
	if c.st != PhaseJamming {
		c.replay[c.replayPos] = rx.Complex()
		c.replayPos = (c.replayPos + 1) % ReplayDepth
		if c.replayLen < ReplayDepth {
			c.replayLen++
		}
	}

	if trigger && c.st == PhaseIdle {
		c.triggers++
		if c.delay > 0 {
			c.toPhase(PhaseDelay)
			c.remaining = c.delay
		} else {
			c.toPhase(PhaseInit)
			c.remaining = InitSamples
		}
	}

	switch c.st {
	case PhaseDelay:
		c.remaining--
		if c.remaining == 0 {
			c.toPhase(PhaseInit)
			c.remaining = InitSamples
		}
		return 0
	case PhaseInit:
		c.remaining--
		if c.remaining == 0 {
			// Enter the jamming phase silently; the observer is notified
			// with the first emitted sample so RF-on lands on the tick the
			// waveform actually reaches the antenna.
			c.st = PhaseJamming
			c.rfPending = true
			c.remaining = c.uptime
			c.playPos = 0
			c.hostPos = 0
		}
		return 0
	case PhaseJamming:
		if c.rfPending {
			c.rfPending = false
			if c.onPhase != nil {
				c.onPhase(PhaseInit, PhaseJamming)
			}
		}
		out := c.waveformSample()
		c.txCount++
		c.remaining--
		if c.remaining == 0 {
			c.toPhase(PhaseIdle)
		}
		return out
	default:
		return 0
	}
}

// ProcessQuietSpan advances the controller through len(tx) sample ticks
// that carry no trigger, bit-identically to calling Process(rx, false) once
// per tick. The receive samples arrive as the SoA int16 planes the block
// datapath stages (iPlane/qPlane must be at least len(tx) long); tx receives
// the transmit output. It returns the number of nonzero transmit samples
// emitted, which is what the core's JamSamples counter accumulates.
//
// The whole point is bulk handling of the overwhelmingly common phases: an
// idle span only refreshes the replay capture ring (at most ReplayDepth
// sample conversions no matter how long the span is, since earlier writes
// would be overwritten anyway), delay/init countdowns are consumed in one
// subtraction, and an active burst runs the waveform generator in a tight
// loop. Phase-transition callbacks fire exactly as they would per sample.
func (c *Controller) ProcessQuietSpan(iPlane, qPlane []int16, tx []complex128) (jamSamples uint64) {
	n := len(tx)
	_ = iPlane[:n]
	_ = qPlane[:n]
	i := 0
	for i < n {
		switch c.st {
		case PhaseIdle:
			// With no trigger arriving, idle absorbs the rest of the span:
			// capture the tail into the replay ring and emit silence.
			c.captureSpan(iPlane[i:n], qPlane[i:n])
			clear(tx[i:n])
			return jamSamples
		case PhaseDelay, PhaseInit:
			span := uint64(n - i)
			if c.remaining < span {
				span = c.remaining
			}
			m := int(span)
			// The replay capture keeps running until RF turns on.
			c.captureSpan(iPlane[i:i+m], qPlane[i:i+m])
			clear(tx[i : i+m])
			c.remaining -= span
			i += m
			if c.remaining == 0 {
				if c.st == PhaseDelay {
					c.toPhase(PhaseInit)
					c.remaining = InitSamples
				} else {
					// Enter jamming silently; the observer fires with the
					// first emitted sample, exactly like Process.
					c.st = PhaseJamming
					c.rfPending = true
					c.remaining = c.uptime
					c.playPos = 0
					c.hostPos = 0
				}
			}
		case PhaseJamming:
			if c.rfPending {
				c.rfPending = false
				if c.onPhase != nil {
					c.onPhase(PhaseInit, PhaseJamming)
				}
			}
			span := uint64(n - i)
			if c.remaining < span {
				span = c.remaining
			}
			m := int(span)
			for k := 0; k < m; k++ {
				out := c.waveformSample()
				if out != 0 {
					jamSamples++
				}
				tx[i+k] = out
			}
			c.txCount += span
			c.remaining -= span
			i += m
			if c.remaining == 0 {
				c.toPhase(PhaseIdle)
			}
		}
	}
	return jamSamples
}

// captureSpan feeds m quiet receive samples into the replay ring with the
// same final state m individual captures would leave: only the last
// ReplayDepth samples of the span can survive, so earlier ones just advance
// the write position without converting or storing anything.
func (c *Controller) captureSpan(iPlane, qPlane []int16) {
	m := len(iPlane)
	if m == 0 {
		return
	}
	start := 0
	if m > ReplayDepth {
		start = m - ReplayDepth
		c.replayPos = (c.replayPos + start) % ReplayDepth
	}
	for k := start; k < m; k++ {
		c.replay[c.replayPos] = fixed.IQ{I: iPlane[k], Q: qPlane[k]}.Complex()
		c.replayPos = (c.replayPos + 1) % ReplayDepth
	}
	c.replayLen += m
	if c.replayLen > ReplayDepth {
		c.replayLen = ReplayDepth
	}
}

func (c *Controller) waveformSample() complex128 {
	g := complex(c.gain, 0)
	switch c.waveform {
	case WaveformWGN:
		return g * c.wgn.sample()
	case WaveformReplay:
		if c.replayLen == 0 {
			return 0
		}
		// Play the capture buffer oldest-first, cycling repetitively.
		idx := (c.replayPos + c.playPos) % c.replayLen
		c.playPos = (c.playPos + 1) % c.replayLen
		return g * c.replay[idx]
	case WaveformHostStream:
		if len(c.hostBuf) == 0 {
			return 0
		}
		s := c.hostBuf[c.hostPos]
		c.hostPos = (c.hostPos + 1) % len(c.hostBuf)
		return g * s
	default:
		return 0
	}
}

// Resources reports the synthesized utilization of the jamming controller
// and waveform generators (estimated; the paper gives block-level numbers
// only for the two detectors).
func (c *Controller) Resources() fpga.Resources {
	return fpga.Resources{Slices: 860, FFs: 1104, BRAMs: 2, LUTs: 1491, DSP48s: 0}
}

// lfsrGaussian approximates white Gaussian noise in hardware fashion: a
// shift-register pseudorandom generator (xorshift32, a composition of
// linear-feedback shift operations) supplies uniform words and the central
// limit theorem (sum of 12 uniforms, per rail) shapes them. Unit average
// power. Plain Galois LFSR states are too correlated between successive
// reads for the CLT sum; the xorshift triple scrambles enough.
type lfsrGaussian struct {
	reg uint32
}

func (l *lfsrGaussian) seed(s uint32) {
	if s == 0 {
		s = 1 // the all-zero shift-register state is absorbing
	}
	l.reg = s
}

func (l *lfsrGaussian) next() uint32 {
	l.reg ^= l.reg << 13
	l.reg ^= l.reg >> 17
	l.reg ^= l.reg << 5
	return l.reg
}

func (l *lfsrGaussian) rail() float64 {
	// Sum of 12 uniform [0,1) variables minus 6: mean 0, variance 1.
	var sum float64
	for i := 0; i < 12; i++ {
		sum += float64(l.next()) / (1 << 32)
	}
	return sum - 6
}

func (l *lfsrGaussian) sample() complex128 {
	// Per-rail variance 1/2 for unit total power.
	const scale = 0.7071067811865476
	return complex(l.rail()*scale, l.rail()*scale)
}
