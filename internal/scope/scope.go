// Package scope models the oscilloscope connected to port 3 of the 5-port
// network (§4.1), used in the WiMAX experiment of §5 to observe base-station
// frames and jamming bursts in the time domain (Fig. 12).
package scope

import (
	"fmt"
	"math"

	"repro/internal/dsp"
)

// Trace is one captured time-domain record.
type Trace struct {
	// Start is the sample index of the trigger position in the source.
	Start int
	// Samples is the captured record.
	Samples dsp.Samples
}

// Scope captures fixed-length records when the input envelope crosses a
// trigger level, with a holdoff to avoid re-triggering inside one record.
type Scope struct {
	level   float64
	depth   int
	holdoff int
}

// New returns a scope with the given trigger level (envelope amplitude) and
// record depth in samples.
func New(level float64, depth int) (*Scope, error) {
	if level <= 0 {
		return nil, fmt.Errorf("scope: trigger level must be positive")
	}
	if depth <= 0 {
		return nil, fmt.Errorf("scope: record depth must be positive")
	}
	return &Scope{level: level, depth: depth, holdoff: depth}, nil
}

// SetHoldoff overrides the re-trigger holdoff (default: one record depth).
func (s *Scope) SetHoldoff(n int) {
	if n < 1 {
		n = 1
	}
	s.holdoff = n
}

// Capture scans the waveform and returns every triggered record. The
// trigger is a rising edge of the envelope through the level, with the
// holdoff applied after each record starts.
func (s *Scope) Capture(x dsp.Samples) []Trace {
	var traces []Trace
	quiet := 0
	prevAbove := false
	for i, v := range x {
		above := math.Hypot(real(v), imag(v)) >= s.level
		if quiet > 0 {
			quiet--
			prevAbove = above
			continue
		}
		if above && !prevAbove {
			end := i + s.depth
			if end > len(x) {
				end = len(x)
			}
			traces = append(traces, Trace{Start: i, Samples: x[i:end].Clone()})
			quiet = s.holdoff
		}
		prevAbove = above
	}
	return traces
}

// Envelope returns the magnitude envelope of a waveform, decimated by step,
// the way the scope display renders it.
func Envelope(x dsp.Samples, step int) []float64 {
	if step < 1 {
		step = 1
	}
	out := make([]float64, 0, len(x)/step+1)
	for i := 0; i < len(x); i += step {
		end := i + step
		if end > len(x) {
			end = len(x)
		}
		var peak float64
		for _, v := range x[i:end] {
			if a := math.Hypot(real(v), imag(v)); a > peak {
				peak = a
			}
		}
		out = append(out, peak)
	}
	return out
}

// BurstIntervals returns the [start, end) sample intervals where the
// envelope stays above level for at least minLen samples, merging gaps
// shorter than maxGap — how Fig. 12's "one-to-one correspondence" between
// downlink frames and jamming bursts is established programmatically.
func BurstIntervals(x dsp.Samples, level float64, minLen, maxGap int) [][2]int {
	var raw [][2]int
	start := -1
	for i, v := range x {
		above := math.Hypot(real(v), imag(v)) >= level
		switch {
		case above && start < 0:
			start = i
		case !above && start >= 0:
			raw = append(raw, [2]int{start, i})
			start = -1
		}
	}
	if start >= 0 {
		raw = append(raw, [2]int{start, len(x)})
	}
	// Merge close bursts.
	var merged [][2]int
	for _, iv := range raw {
		if n := len(merged); n > 0 && iv[0]-merged[n-1][1] <= maxGap {
			merged[n-1][1] = iv[1]
			continue
		}
		merged = append(merged, iv)
	}
	// Drop short glitches.
	var out [][2]int
	for _, iv := range merged {
		if iv[1]-iv[0] >= minLen {
			out = append(out, iv)
		}
	}
	return out
}
