package scope

import (
	"testing"

	"repro/internal/dsp"
)

func burstWave(bursts [][2]int, length int, amp float64) dsp.Samples {
	x := make(dsp.Samples, length)
	for _, b := range bursts {
		for i := b[0]; i < b[1] && i < length; i++ {
			x[i] = complex(amp, 0)
		}
	}
	return x
}

func TestScopeValidation(t *testing.T) {
	if _, err := New(0, 100); err == nil {
		t.Error("zero level accepted")
	}
	if _, err := New(0.5, 0); err == nil {
		t.Error("zero depth accepted")
	}
}

func TestCaptureTriggersOnBursts(t *testing.T) {
	s, err := New(0.5, 50)
	if err != nil {
		t.Fatal(err)
	}
	x := burstWave([][2]int{{100, 120}, {400, 430}}, 600, 1.0)
	traces := s.Capture(x)
	if len(traces) != 2 {
		t.Fatalf("%d traces, want 2", len(traces))
	}
	if traces[0].Start != 100 || traces[1].Start != 400 {
		t.Errorf("trigger positions %d, %d", traces[0].Start, traces[1].Start)
	}
	if len(traces[0].Samples) != 50 {
		t.Errorf("record depth %d", len(traces[0].Samples))
	}
}

func TestCaptureHoldoffSuppressesRetrigger(t *testing.T) {
	s, err := New(0.5, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Two bursts inside one record depth: only one trace.
	x := burstWave([][2]int{{100, 120}, {150, 170}}, 600, 1.0)
	if n := len(s.Capture(x)); n != 1 {
		t.Errorf("%d traces, want 1 (holdoff)", n)
	}
	s.SetHoldoff(10)
	if n := len(s.Capture(x)); n != 2 {
		t.Errorf("%d traces with short holdoff, want 2", n)
	}
}

func TestCaptureTriggerAtSampleZero(t *testing.T) {
	s, err := New(0.5, 50)
	if err != nil {
		t.Fatal(err)
	}
	// A record already above level at sample 0 counts as a rising edge:
	// there is no earlier sample, so the scope must not miss a burst that
	// started before the capture window.
	x := burstWave([][2]int{{0, 30}}, 200, 1.0)
	traces := s.Capture(x)
	if len(traces) != 1 || traces[0].Start != 0 {
		t.Fatalf("burst at sample 0: %+v", traces)
	}
}

func TestCaptureBackToBackAtHoldoffBoundary(t *testing.T) {
	s, err := New(0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	s.SetHoldoff(50)
	// First trigger at 100 starts the holdoff, which consumes samples
	// 101..150. A second rising edge landing exactly at 100+holdoff is
	// still inside the quiet countdown and is swallowed; the envelope is
	// back below level by the time re-triggering is possible, so no second
	// trace. This is the documented boundary: the first re-triggerable
	// edge is holdoff+1 samples after the previous trigger.
	x := burstWave([][2]int{{100, 110}, {150, 160}}, 400, 1.0)
	if n := len(s.Capture(x)); n != 1 {
		t.Errorf("edge exactly at holdoff: %d traces, want 1", n)
	}
	// One sample later the edge falls past the countdown and re-triggers.
	x = burstWave([][2]int{{100, 110}, {151, 161}}, 400, 1.0)
	traces := s.Capture(x)
	if len(traces) != 2 || traces[1].Start != 151 {
		t.Errorf("edge at holdoff+1: %+v", traces)
	}
}

func TestSetHoldoffClampsToOne(t *testing.T) {
	s, err := New(0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	s.SetHoldoff(0)
	// With the minimum holdoff of 1, two edges separated by a single
	// below-level sample both capture; a zero holdoff would have been a
	// no-op countdown but must not be accepted (quiet=0 means "armed").
	x := burstWave([][2]int{{10, 12}, {14, 16}}, 40, 1.0)
	traces := s.Capture(x)
	if len(traces) != 2 {
		t.Fatalf("holdoff clamp: %d traces, want 2", len(traces))
	}
	if traces[0].Start != 10 || traces[1].Start != 14 {
		t.Errorf("trigger positions %d, %d", traces[0].Start, traces[1].Start)
	}
}

func TestCaptureTruncatesAtEnd(t *testing.T) {
	s, err := New(0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	x := burstWave([][2]int{{580, 600}}, 600, 1.0)
	traces := s.Capture(x)
	if len(traces) != 1 || len(traces[0].Samples) != 20 {
		t.Errorf("end truncation: %+v", traces)
	}
}

func TestEnvelope(t *testing.T) {
	x := burstWave([][2]int{{10, 20}}, 40, 2.0)
	env := Envelope(x, 10)
	if len(env) != 4 {
		t.Fatalf("envelope length %d", len(env))
	}
	if env[0] != 0 || env[1] != 2 || env[2] != 0 {
		t.Errorf("envelope %v", env)
	}
	// Degenerate step.
	if n := len(Envelope(x, 0)); n != 40 {
		t.Errorf("step<1 should clamp to 1, got %d points", n)
	}
}

func TestBurstIntervals(t *testing.T) {
	x := burstWave([][2]int{{100, 200}, {205, 300}, {500, 510}}, 700, 1.0)
	// maxGap 10 merges the first two; minLen 20 drops the 10-sample glitch.
	got := BurstIntervals(x, 0.5, 20, 10)
	if len(got) != 1 || got[0][0] != 100 || got[0][1] != 300 {
		t.Errorf("BurstIntervals = %v", got)
	}
	// No merging with maxGap 2: two qualifying bursts.
	got = BurstIntervals(x, 0.5, 20, 2)
	if len(got) != 2 {
		t.Errorf("without merge: %v", got)
	}
}

func TestBurstIntervalOpenAtEnd(t *testing.T) {
	x := burstWave([][2]int{{90, 100}}, 100, 1.0)
	got := BurstIntervals(x, 0.5, 5, 0)
	if len(got) != 1 || got[0][1] != 100 {
		t.Errorf("open-ended burst: %v", got)
	}
}
