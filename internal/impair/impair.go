// Package impair models analog front-end impairments of real SDR hardware
// — carrier frequency offset, IQ imbalance, DC offset, phase noise, and
// sample-clock offset. The simulation's detection curves sit a few dB to
// the left of the paper's measured ones (EXPERIMENTS.md E2/E4) precisely
// because the default front end is ideal; this package provides the
// knobs to close that gap and the ablation experiments use it to show
// which impairment costs how much.
package impair

import (
	"math"
	"math/rand"

	"repro/internal/dsp"
)

// Config selects impairment severities. The zero value is a transparent
// front end.
type Config struct {
	// CFOHz is the carrier frequency offset between transmitter and
	// receiver (e.g. ±2.5 ppm of 2.484 GHz ≈ ±6.2 kHz for TCXO-grade
	// oscillators).
	CFOHz float64
	// SampleRate is the stream rate the offsets are applied at (required
	// when CFOHz, PhaseNoise or ClockOffsetPPM are nonzero).
	SampleRate float64
	// IQGainDB is the amplitude imbalance between the I and Q rails.
	IQGainDB float64
	// IQPhaseDeg is the quadrature skew in degrees.
	IQPhaseDeg float64
	// DCOffset is an additive complex bias (ADC/mixer leakage), as a
	// fraction of full scale.
	DCOffset complex128
	// PhaseNoiseRadRMS is the per-sample random-walk phase step RMS.
	PhaseNoiseRadRMS float64
	// ClockOffsetPPM is the sample-clock error in parts per million,
	// modeled as a slow linear phase slip of the resampling point.
	ClockOffsetPPM float64
	// Seed drives the phase-noise process.
	Seed int64
}

// Chain applies a Config to a sample stream with persistent state, so
// consecutive blocks are continuous. Construct with New.
type Chain struct {
	cfg   Config
	phase float64 // accumulated CFO phase
	pn    float64 // phase-noise random walk
	rng   *rand.Rand
	// IQ imbalance in the α·x + β·conj(x) form.
	alpha, beta complex128
	// Fractional resampling state for clock offset.
	frac float64
	prev complex128
	has  bool
}

// New returns a chain for the config.
func New(cfg Config) *Chain {
	c := &Chain{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g := math.Pow(10, cfg.IQGainDB/20)
	phi := cfg.IQPhaseDeg * math.Pi / 180
	// Standard IQ imbalance model: I' = I, Q' = g·(Q·cosφ + I·sinφ)
	// expressed as α·x + β·conj(x).
	c.alpha = complex((1+g*math.Cos(phi))/2, g*math.Sin(phi)/2)
	c.beta = complex((1-g*math.Cos(phi))/2, g*math.Sin(phi)/2)
	return c
}

// Reset clears the chain's running state.
func (c *Chain) Reset() {
	c.phase, c.pn, c.frac = 0, 0, 0
	c.prev, c.has = 0, false
	c.rng = rand.New(rand.NewSource(c.cfg.Seed))
}

// ProcessSample applies the impairments to one sample.
func (c *Chain) ProcessSample(x complex128) complex128 {
	// Sample clock offset: linear interpolation between consecutive
	// samples with a slowly drifting fractional position.
	if c.cfg.ClockOffsetPPM != 0 {
		if !c.has {
			c.prev, c.has = x, true
		}
		f := complex(c.frac, 0)
		interp := c.prev*(1-f) + x*f
		c.prev = x
		c.frac += c.cfg.ClockOffsetPPM * 1e-6
		if c.frac >= 1 {
			c.frac -= 1
		}
		if c.frac < 0 {
			c.frac += 1
		}
		x = interp
	}
	// CFO and phase noise.
	if c.cfg.CFOHz != 0 && c.cfg.SampleRate > 0 {
		c.phase += 2 * math.Pi * c.cfg.CFOHz / c.cfg.SampleRate
		if c.phase > math.Pi {
			c.phase -= 2 * math.Pi
		}
	}
	if c.cfg.PhaseNoiseRadRMS > 0 {
		c.pn += c.rng.NormFloat64() * c.cfg.PhaseNoiseRadRMS
	}
	if ph := c.phase + c.pn; ph != 0 {
		x *= complex(math.Cos(ph), math.Sin(ph))
	}
	// IQ imbalance.
	if c.cfg.IQGainDB != 0 || c.cfg.IQPhaseDeg != 0 {
		x = c.alpha*x + c.beta*complex(real(x), -imag(x))
	}
	// DC offset.
	return x + c.cfg.DCOffset
}

// Process applies the chain to a whole buffer, returning a new buffer.
func (c *Chain) Process(x dsp.Samples) dsp.Samples {
	out := make(dsp.Samples, len(x))
	c.ProcessInto(out, x)
	return out
}

// ProcessInto runs x through the chain into dst (which must be at least
// len(x) long) without allocating. dst and x may alias: each output sample
// is written only after its input sample has been consumed.
func (c *Chain) ProcessInto(dst, x dsp.Samples) {
	for i, v := range x {
		dst[i] = c.ProcessSample(v)
	}
}

// TypicalUSRP returns impairments representative of two free-running
// USRP N210s with TCXO references at the given carrier frequency: ±2 ppm
// relative CFO, mild IQ imbalance, the residual DC spur left after UHD's
// DC-offset calibration, and oscillator phase noise. Note the DC term: the
// sign-bit correlator is acutely sensitive to uncorrected DC (a bias much
// larger than the signal freezes the slicer outputs), which is why the
// calibrated residual — not the raw mixer leakage — is the right number
// here; the "harsh" ablation case shows the uncalibrated failure mode.
func TypicalUSRP(carrierHz, sampleRate float64, seed int64) Config {
	return Config{
		CFOHz:            2e-6 * carrierHz,
		SampleRate:       sampleRate,
		IQGainDB:         0.3,
		IQPhaseDeg:       2,
		DCOffset:         complex(2e-5, -1e-5),
		PhaseNoiseRadRMS: 0.002,
		ClockOffsetPPM:   2,
		Seed:             seed,
	}
}
