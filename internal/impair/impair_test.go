package impair

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/dsp"
)

func TestTransparentByDefault(t *testing.T) {
	c := New(Config{})
	x := dsp.Samples{1, 1i, -0.5 + 0.25i}
	y := c.Process(x)
	for i := range x {
		if cmplx.Abs(y[i]-x[i]) > 1e-12 {
			t.Fatalf("zero config altered sample %d: %v -> %v", i, x[i], y[i])
		}
	}
}

func TestCFORotatesAtConfiguredRate(t *testing.T) {
	c := New(Config{CFOHz: 1000, SampleRate: 1e6})
	// A DC input becomes a tone at exactly CFOHz.
	n := 1000
	x := make(dsp.Samples, n)
	for i := range x {
		x[i] = 1
	}
	y := c.Process(x)
	// Phase advance per sample = 2π·1000/1e6.
	want := 2 * math.Pi * 1000 / 1e6
	for i := 1; i < n; i++ {
		d := cmplx.Phase(y[i] * cmplx.Conj(y[i-1]))
		if math.Abs(d-want) > 1e-9 {
			t.Fatalf("sample %d: phase step %v, want %v", i, d, want)
		}
	}
}

func TestIQImbalanceCreatesImage(t *testing.T) {
	c := New(Config{IQGainDB: 1, IQPhaseDeg: 5})
	// A clean positive-frequency tone gains an image at the negative
	// frequency; image rejection should be finite but the direct path
	// dominant.
	x := dsp.Tone(1024, 0.1, 1.0)
	y := c.Process(x)
	buf := y.Clone()
	dsp.FFT(buf)
	direct := cmplx.Abs(buf[102])     // +0.1 normalized = bin 102.4 ~ 102
	image := cmplx.Abs(buf[1024-102]) // mirror bin
	if direct < 100*image {
		// Direct must dominate…
		if image <= 0 {
			t.Fatal("no image at all?")
		}
	}
	if image < 1e-6 {
		t.Error("IQ imbalance produced no image tone")
	}
	if direct < image {
		t.Error("image exceeds direct path")
	}
}

func TestDCOffset(t *testing.T) {
	c := New(Config{DCOffset: 0.25 + 0.1i})
	y := c.Process(make(dsp.Samples, 16))
	for _, v := range y {
		if v != 0.25+0.1i {
			t.Fatalf("DC offset sample %v", v)
		}
	}
}

func TestPhaseNoiseGrows(t *testing.T) {
	c := New(Config{PhaseNoiseRadRMS: 0.01, SampleRate: 1e6, Seed: 1})
	x := make(dsp.Samples, 10000)
	for i := range x {
		x[i] = 1
	}
	y := c.Process(x)
	early := cmplx.Phase(y[10])
	late := cmplx.Phase(y[9999])
	if math.Abs(late-early) < 1e-6 {
		t.Error("phase noise did not accumulate")
	}
}

func TestResetRestoresDeterminism(t *testing.T) {
	cfg := Config{CFOHz: 500, SampleRate: 1e6, PhaseNoiseRadRMS: 0.01, Seed: 7}
	c := New(cfg)
	x := dsp.Tone(256, 0.05, 1.0)
	a := c.Process(x)
	c.Reset()
	b := c.Process(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Reset did not restore deterministic state")
		}
	}
}

func TestClockOffsetInterpolates(t *testing.T) {
	c := New(Config{ClockOffsetPPM: 1000, SampleRate: 1e6}) // exaggerated
	x := dsp.Tone(5000, 0.01, 1.0)
	y := c.Process(x)
	// Energy preserved approximately.
	if math.Abs(y.Power()-x.Power()) > 0.05 {
		t.Errorf("clock-offset interpolation changed power: %v vs %v",
			y.Power(), x.Power())
	}
}

func TestTypicalUSRPValues(t *testing.T) {
	cfg := TypicalUSRP(2.484e9, 20e6, 1)
	if cfg.CFOHz < 4000 || cfg.CFOHz > 6000 {
		t.Errorf("CFO %v Hz for 2 ppm at 2.484 GHz", cfg.CFOHz)
	}
	if cfg.SampleRate != 20e6 {
		t.Error("sample rate not propagated")
	}
}
