package radio

import (
	"math"
	"testing"

	"repro/internal/dsp"
	"repro/internal/fpga"
)

func TestTuningRange(t *testing.T) {
	r := New()
	if r.CenterFreq() != 2.484e9 {
		t.Errorf("default center %v, want WiFi channel 14", r.CenterFreq())
	}
	if err := r.Tune(2.608e9); err != nil { // the paper's WiMAX frequency
		t.Error(err)
	}
	if err := r.Tune(100e6); err == nil {
		t.Error("below SBX range accepted")
	}
	if err := r.Tune(5e9); err == nil {
		t.Error("above SBX range accepted")
	}
}

func TestGainValidation(t *testing.T) {
	r := New()
	if err := r.SetRXGain(10); err != nil || r.RXGain() != 10 {
		t.Error("RX gain set failed")
	}
	if err := r.SetTXGain(31.5); err != nil || r.TXGain() != 31.5 {
		t.Error("TX gain set failed")
	}
	if err := r.SetRXGain(-1); err == nil {
		t.Error("negative gain accepted")
	}
	if err := r.SetTXGain(40); err == nil {
		t.Error("gain above range accepted")
	}
}

func TestProcessRequiresStart(t *testing.T) {
	r := New()
	if _, err := r.Process(make(dsp.Samples, 10)); err == nil {
		t.Error("Process before Start accepted")
	}
	r.Start()
	if !r.Started() {
		t.Error("Started flag")
	}
	if _, err := r.Process(make(dsp.Samples, 10)); err != nil {
		t.Error(err)
	}
}

func TestSourceRateResampling(t *testing.T) {
	r := New()
	r.Start()
	if err := r.SetSourceRate(0); err == nil {
		t.Error("zero source rate accepted")
	}
	// 20 MSPS source: 1000 input samples -> ~1250 at 25 MSPS.
	if err := r.SetSourceRate(20_000_000); err != nil {
		t.Fatal(err)
	}
	out, err := r.Process(make(dsp.Samples, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) < 1248 || len(out) > 1252 {
		t.Errorf("resampled to %d samples, want ~1250", len(out))
	}
	// Native rate: passthrough length.
	if err := r.SetSourceRate(fpga.SampleRateHz); err != nil {
		t.Fatal(err)
	}
	out, err = r.Process(make(dsp.Samples, 500))
	if err != nil || len(out) != 500 {
		t.Errorf("native rate gave %d samples, %v", len(out), err)
	}
}

func TestRXGainAffectsDetection(t *testing.T) {
	// A weak burst that the core's quantizer would floor at 0 dB RX gain
	// becomes detectable with +30 dB.
	makeRadio := func(gain float64) *N210 {
		r := New()
		if err := r.SetRXGain(gain); err != nil {
			t.Fatal(err)
		}
		bus := r.Core().Bus()
		for a, v := range map[uint8]uint32{
			16: 1, 17: 1000, // energy high 10 dB
			19: 2 | 1<<12, // single-stage energy-high trigger
			22: 100, 21: 0, 24: 1000,
		} {
			if err := bus.Write(a, v); err != nil {
				t.Fatal(err)
			}
		}
		r.Start()
		return r
	}
	burst := make(dsp.Samples, 2000)
	for i := 500; i < 1500; i++ {
		burst[i] = complex(2e-4, 0) // ~6 LSB at full scale
	}
	low := makeRadio(0)
	if _, err := low.Process(burst); err != nil {
		t.Fatal(err)
	}
	high := makeRadio(30)
	if _, err := high.Process(burst); err != nil {
		t.Fatal(err)
	}
	if high.Core().Stats().EnergyHighDetections == 0 {
		t.Error("30 dB RX gain: burst not detected")
	}
	if low.Core().Stats().EnergyHighDetections > high.Core().Stats().EnergyHighDetections {
		t.Error("gain reduced detectability?")
	}
}

func TestTXGainScalesOutput(t *testing.T) {
	r := New()
	if err := r.SetTXGain(20); err != nil {
		t.Fatal(err)
	}
	bus := r.Core().Bus()
	for a, v := range map[uint8]uint32{
		16: 1, 17: 600,
		19: 2 | 1<<12,
		22: 500, 21: 0, 24: 1000,
	} {
		if err := bus.Write(a, v); err != nil {
			t.Fatal(err)
		}
	}
	r.Start()
	// Quiet then loud to fire the energy trigger.
	in := make(dsp.Samples, 3000)
	for i := 1000; i < 3000; i++ {
		in[i] = complex(0.5, 0)
	}
	out, err := r.Process(in)
	if err != nil {
		t.Fatal(err)
	}
	var peak float64
	for _, s := range out {
		if a := math.Hypot(real(s), imag(s)); a > peak {
			peak = a
		}
	}
	if peak < 3 { // WGN unit power × 10 amplitude gain
		t.Errorf("TX peak %v with +20 dB gain, expected >3", peak)
	}
}
