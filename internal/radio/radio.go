// Package radio models the USRP N210 software-defined radio with its SBX
// front end (§2.1): a full-duplex transceiver whose receive path carries
// down-converted, decimated baseband at the fixed 25 MSPS rate into the
// custom DSP core, and whose transmit path carries the core's jamming
// output through the DUC back to RF.
//
// Both chains are initialized together at start-up, as the paper does to
// eliminate RX/TX switching time. Front-end tuning covers the SBX's
// 400 MHz – 4.4 GHz range with up to 40 MHz of instantaneous bandwidth.
package radio

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/fpga"
)

// SBX front-end limits.
const (
	// MinFreqHz and MaxFreqHz bound the SBX tuning range.
	MinFreqHz = 400e6
	MaxFreqHz = 4.4e9
	// MaxBandwidthHz is the SBX instantaneous bandwidth.
	MaxBandwidthHz = 40e6
	// MaxGainDB is the SBX receive/transmit gain range.
	MaxGainDB = 31.5
)

// N210 is the radio: front-end state plus the custom DSP core nested in its
// DDC chain. Construct with New.
type N210 struct {
	core *core.Core

	centerHz float64
	rxGainDB float64
	txGainDB float64

	ddc      *dsp.Resampler // source-rate → 25 MSPS, when needed
	sourceHz int

	started bool
}

// New returns a radio with a fresh DSP core, tuned to WiFi channel 14
// (2.484 GHz, the paper's §4.1 setting) with 0 dB gains.
func New() *N210 {
	return &N210{core: core.New(), centerHz: 2.484e9, sourceHz: fpga.SampleRateHz}
}

// Core exposes the custom DSP core (and through it the register bus).
func (r *N210) Core() *core.Core { return r.core }

// Tune sets the RF center frequency.
func (r *N210) Tune(hz float64) error {
	if hz < MinFreqHz || hz > MaxFreqHz {
		return fmt.Errorf("radio: %.0f Hz outside SBX range [%.0f, %.0f]",
			hz, MinFreqHz, MaxFreqHz)
	}
	r.centerHz = hz
	return nil
}

// CenterFreq returns the tuned center frequency in Hz.
func (r *N210) CenterFreq() float64 { return r.centerHz }

// SetRXGain and SetTXGain set the front-end gains in dB.
func (r *N210) SetRXGain(db float64) error {
	if db < 0 || db > MaxGainDB {
		return fmt.Errorf("radio: RX gain %v dB outside [0, %v]", db, MaxGainDB)
	}
	r.rxGainDB = db
	return nil
}

// SetTXGain sets the transmit gain in dB.
func (r *N210) SetTXGain(db float64) error {
	if db < 0 || db > MaxGainDB {
		return fmt.Errorf("radio: TX gain %v dB outside [0, %v]", db, MaxGainDB)
	}
	r.txGainDB = db
	return nil
}

// RXGain returns the receive gain in dB.
func (r *N210) RXGain() float64 { return r.rxGainDB }

// TXGain returns the transmit gain in dB.
func (r *N210) TXGain() float64 { return r.txGainDB }

// Start initializes both chains simultaneously (§2.1: "we initialize both
// TX and RX chains simultaneously in the host application at start-up").
func (r *N210) Start() {
	r.started = true
	r.core.ResetDatapath()
}

// Started reports whether the chains are streaming.
func (r *N210) Started() bool { return r.started }

// SetSourceRate installs a DDC resampler for input delivered at a rate
// other than 25 MSPS; the rational ratio 25 MSPS / sourceHz is reduced
// internally. Pass fpga.SampleRateHz to disable resampling.
func (r *N210) SetSourceRate(sourceHz int) error {
	if sourceHz <= 0 {
		return fmt.Errorf("radio: invalid source rate %d", sourceHz)
	}
	r.sourceHz = sourceHz
	if sourceHz == fpga.SampleRateHz {
		r.ddc = nil
		return nil
	}
	g := gcd(fpga.SampleRateHz, sourceHz)
	r.ddc = dsp.NewResampler(fpga.SampleRateHz/g, sourceHz/g, 8)
	return nil
}

// SourceRate returns the declared input sample rate in Hz.
func (r *N210) SourceRate() int { return r.sourceHz }

// GroupDelayCycles returns the receive front end's group delay in hardware
// clock cycles, rounded up: the DDC resampler's anti-aliasing filter delays
// every sample by this much before the detectors see it, so any end-to-end
// latency budget anchored at the antenna must allow for it on top of the
// detection + trigger timeline. Zero when no resampling is configured.
func (r *N210) GroupDelayCycles() uint64 {
	if r.ddc == nil {
		return 0
	}
	return uint64(math.Ceil(r.ddc.GroupDelayOutputSamples() * fpga.CyclesPerSample))
}

// MarkFrame journals a telemetry frame-start marker for a frame that will
// begin offsetSourceSamples into the *next* buffer handed to Process. The
// offset is converted from source-rate samples to core samples through the
// DDC ratio, so reaction-latency histograms measure from the frame boundary
// the core actually sees.
func (r *N210) MarkFrame(offsetSourceSamples int) {
	if offsetSourceSamples < 0 {
		offsetSourceSamples = 0
	}
	coreSamples := uint64(offsetSourceSamples) * fpga.SampleRateHz / uint64(r.sourceHz)
	cycle := r.core.Clock().Cycle() + coreSamples*fpga.CyclesPerSample
	r.core.MarkFrameStart(cycle)
}

// Process streams a block of received baseband through the DDC (if any) and
// the custom DSP core, returning the transmit-path output at 25 MSPS,
// scaled by the front-end gains. The core runs in block mode; at the
// default 0 dB gains the receive scaling pass is skipped entirely.
func (r *N210) Process(rx dsp.Samples) (dsp.Samples, error) {
	if !r.started {
		return nil, fmt.Errorf("radio: chains not started")
	}
	in := rx
	if r.ddc != nil {
		in = r.ddc.Process(rx)
	}
	out := make(dsp.Samples, len(in))
	r.processScaled(in, out)
	return out, nil
}

// ProcessInto is the allocation-free form of Process for callers that own
// their transmit buffers (the flowgraph runtime's reused ring chunks): rx is
// streamed through the core into tx, which must be at least len(rx) long.
// It requires the radio to run at the native 25 MSPS — a DDC resampler
// changes the sample count, so a rate-converting radio cannot be a 1:1
// streaming stage — and returns an error otherwise.
func (r *N210) ProcessInto(rx, tx dsp.Samples) error {
	if !r.started {
		return fmt.Errorf("radio: chains not started")
	}
	if r.ddc != nil {
		return fmt.Errorf("radio: ProcessInto needs the native %d Hz rate (DDC configured for %d Hz input)",
			fpga.SampleRateHz, r.sourceHz)
	}
	r.processScaled(rx, tx[:len(rx)])
	return nil
}

// processScaled runs the gain-folded core block path: the RX gain folds into
// the core's fused quantization sweep, so the scaling costs no extra pass
// over the block (bit-identical to scaling each sample by complex(rxGain, 0)
// first), and the TX gain is applied only when it is not unity.
func (r *N210) processScaled(in, out dsp.Samples) {
	rxGain := dsp.AmplitudeFromDB(r.rxGainDB)
	txGain := dsp.AmplitudeFromDB(r.txGainDB)
	r.core.ProcessBlockScaled(in, out, rxGain)
	if txGain != 1 {
		for i := range out {
			out[i] *= complex(txGain, 0)
		}
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
