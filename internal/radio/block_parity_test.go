package radio

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/host"
	"repro/internal/jammer"
	"repro/internal/telemetry"
	"repro/internal/trigger"
)

// Radio-level live-recorder parity: the front end folds its RX gain into the
// core's fused block quantizer, so a radio streaming buffers of any size must
// journal the exact event stream — kinds, cycle stamps, args and engagement
// IDs — that a per-sample core fed pre-scaled samples produces.

// burstyCapture builds a capture whose loud spans drive detections and full
// jam-burst lifecycles through a 10 dB energy trigger.
func burstyCapture(n int) []complex128 {
	rng := rand.New(rand.NewSource(97))
	buf := make([]complex128, 0, n)
	for len(buf) < n {
		amp := 0.002
		if len(buf)/500%3 == 1 {
			amp = 0.4
		}
		buf = append(buf, complex(rng.NormFloat64(), rng.NormFloat64())*complex(amp, 0))
	}
	return buf
}

func programBench(t *testing.T, c *core.Core) *telemetry.Live {
	t.Helper()
	h := host.New(c)
	if _, err := h.ProgramEnergy(10, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ProgramTrigger(core.FusionSequence,
		[]trigger.Event{trigger.EventEnergyHigh}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ProgramJammer(host.Personality{Name: "parity",
		Waveform: jammer.WaveformWGN, Uptime: 4 * time.Microsecond, Gain: 1}); err != nil {
		t.Fatal(err)
	}
	live := telemetry.NewLive(telemetry.DefaultJournalDepth)
	c.SetRecorder(live)
	return live
}

func TestRadioBlockModeJournalParity(t *testing.T) {
	const rxGainDB = 6.5
	input := burstyCapture(4000)

	// Per-sample reference: a bare core fed samples pre-scaled by the RX
	// gain, the semantics the radio's folded scaling must reproduce exactly.
	refCore := core.New()
	refLive := programBench(t, refCore)
	refCore.ResetDatapath()
	gain := complex(dsp.AmplitudeFromDB(rxGainDB), 0)
	wantTx := make([]complex128, len(input))
	for i, s := range input {
		wantTx[i] = refCore.ProcessSample(s * gain)
	}
	wantEvents := refLive.Events()
	wantSnap := refLive.Snapshot()
	if len(wantEvents) == 0 || wantSnap.Engagements == 0 {
		t.Fatalf("reference run inert: %d events, %d engagements",
			len(wantEvents), wantSnap.Engagements)
	}
	if wantSnap.Dropped != 0 {
		t.Fatalf("journal overflowed (%d dropped); deepen it for this test", wantSnap.Dropped)
	}

	for _, blocks := range [][]int{{4000}, {64}, {1, 3, 127, 64, 300}, {7}} {
		r := New()
		live := programBench(t, r.Core())
		if err := r.SetRXGain(rxGainDB); err != nil {
			t.Fatal(err)
		}
		r.Start()

		gotTx := make([]complex128, 0, len(input))
		rest := input
		for i := 0; len(rest) > 0; i++ {
			n := blocks[i%len(blocks)]
			if n > len(rest) {
				n = len(rest)
			}
			out, err := r.Process(rest[:n])
			if err != nil {
				t.Fatal(err)
			}
			gotTx = append(gotTx, out...)
			rest = rest[n:]
		}

		for i := range wantTx {
			if gotTx[i] != wantTx[i] {
				t.Fatalf("blocks %v: tx[%d] = %v, want %v", blocks, i, gotTx[i], wantTx[i])
			}
		}
		gotEvents := live.Events()
		if len(gotEvents) != len(wantEvents) {
			t.Fatalf("blocks %v: %d events, want %d", blocks, len(gotEvents), len(wantEvents))
		}
		for i, w := range wantEvents {
			if gotEvents[i] != w {
				t.Fatalf("blocks %v: event %d = %+v (cycle %d, eng %d), want %+v (cycle %d, eng %d)",
					blocks, i, gotEvents[i], gotEvents[i].Cycle, gotEvents[i].Eng,
					w, w.Cycle, w.Eng)
			}
		}
		gotSnap := live.Snapshot()
		if gotSnap.Engagements != wantSnap.Engagements {
			t.Errorf("blocks %v: %d engagements, want %d",
				blocks, gotSnap.Engagements, wantSnap.Engagements)
		}
		if gotSnap.Counters != wantSnap.Counters {
			t.Errorf("blocks %v: counters %+v, want %+v", blocks, gotSnap.Counters, wantSnap.Counters)
		}
	}
}
