// Package channel models the RF propagation elements of the experimental
// setup: fixed and variable attenuators, additive white Gaussian noise at
// the receiver front end, and superposition of multiple transmitters onto a
// single receive port (the signal + jammer combining at the access point).
package channel

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dsp"
)

// Attenuator applies a fixed power loss in dB.
type Attenuator struct {
	db float64
}

// NewAttenuator returns an attenuator with the given loss (positive dB
// attenuates).
func NewAttenuator(db float64) *Attenuator { return &Attenuator{db: db} }

// DB returns the configured loss.
func (a *Attenuator) DB() float64 { return a.db }

// SetDB changes the loss (a variable attenuator).
func (a *Attenuator) SetDB(db float64) { a.db = db }

// Gain returns the amplitude gain (≤1 for positive dB loss).
func (a *Attenuator) Gain() float64 { return dsp.AmplitudeFromDB(-a.db) }

// Apply attenuates a copy of the buffer.
func (a *Attenuator) Apply(x dsp.Samples) dsp.Samples {
	return x.Clone().Scale(a.Gain())
}

// AWGN is a receiver noise process with a fixed noise floor power.
type AWGN struct {
	src *dsp.NoiseSource
}

// NewAWGN returns an AWGN process with per-sample noise power and seed.
func NewAWGN(power float64, seed int64) *AWGN {
	return &AWGN{src: dsp.NewNoiseSource(power, seed)}
}

// Power returns the configured noise power.
func (n *AWGN) Power() float64 { return n.src.Power() }

// Apply adds noise to a copy of the buffer.
func (n *AWGN) Apply(x dsp.Samples) dsp.Samples {
	return n.src.AddTo(x.Clone())
}

// Sample returns one noise sample (for streaming receivers).
func (n *AWGN) Sample() complex128 { return n.src.Sample() }

// Combine sums multiple transmitter waveforms, each with its own amplitude
// gain and sample offset, into one receive buffer of the given length.
// Contributions beyond length are dropped; offsets may be negative (the
// leading part is dropped).
func Combine(length int, parts ...Part) dsp.Samples {
	out := make(dsp.Samples, length)
	for _, p := range parts {
		for i, s := range p.Samples {
			pos := i + p.Offset
			if pos < 0 || pos >= length {
				continue
			}
			out[pos] += s * complex(p.Gain, 0)
		}
	}
	return out
}

// Part is one transmitter's contribution to a combined receive waveform.
type Part struct {
	Samples dsp.Samples
	// Gain is the amplitude path gain from that transmitter.
	Gain float64
	// Offset is the sample position at which the contribution starts.
	Offset int
}

// SNRdB computes the signal-to-noise power ratio in dB given signal power
// and noise power.
func SNRdB(signalPower, noisePower float64) (float64, error) {
	if signalPower <= 0 || noisePower <= 0 {
		return 0, fmt.Errorf("channel: powers must be positive (got %v, %v)",
			signalPower, noisePower)
	}
	return dsp.DB(signalPower / noisePower), nil
}

// Multipath is a small tapped-delay-line fading channel for over-the-air
// experiments (the §5 WiMAX downlink is broadcast, not cabled).
type Multipath struct {
	taps []complex128
}

// NewRayleighMultipath draws nTaps complex Gaussian taps with exponentially
// decaying power (decay per tap, e.g. 0.5) from the given PRNG and
// normalizes total power to 1.
func NewRayleighMultipath(rng *rand.Rand, nTaps int, decay float64) *Multipath {
	if nTaps < 1 {
		nTaps = 1
	}
	taps := make([]complex128, nTaps)
	var p float64
	w := 1.0
	for i := range taps {
		taps[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * complex(math.Sqrt(w/2), 0)
		p += real(taps[i])*real(taps[i]) + imag(taps[i])*imag(taps[i])
		w *= decay
	}
	scale := complex(1/math.Sqrt(p), 0)
	for i := range taps {
		taps[i] *= scale
	}
	return &Multipath{taps: taps}
}

// Taps returns a copy of the channel taps.
func (m *Multipath) Taps() []complex128 {
	return append([]complex128(nil), m.taps...)
}

// Apply convolves the waveform with the channel taps (same-length output).
func (m *Multipath) Apply(x dsp.Samples) dsp.Samples {
	out := make(dsp.Samples, len(x))
	for i := range x {
		var acc complex128
		for k, t := range m.taps {
			if i-k < 0 {
				break
			}
			acc += x[i-k] * t
		}
		out[i] = acc
	}
	return out
}
