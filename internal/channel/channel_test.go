package channel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsp"
)

func TestAttenuatorGain(t *testing.T) {
	a := NewAttenuator(20)
	if g := a.Gain(); math.Abs(g-0.1) > 1e-12 {
		t.Errorf("20 dB pad gain = %v, want 0.1", g)
	}
	x := dsp.Samples{1, 1i}
	y := a.Apply(x)
	if math.Abs(real(y[0])-0.1) > 1e-12 {
		t.Errorf("attenuated sample %v", y[0])
	}
	if x[0] != 1 {
		t.Error("Apply mutated its input")
	}
	a.SetDB(0)
	if a.Gain() != 1 {
		t.Error("0 dB pad should be unity")
	}
	if a.DB() != 0 {
		t.Error("DB accessor")
	}
}

func TestAttenuatorPowerRelationship(t *testing.T) {
	a := NewAttenuator(10)
	x := make(dsp.Samples, 1000)
	for i := range x {
		x[i] = 1
	}
	y := a.Apply(x)
	ratio := x.Power() / y.Power()
	if math.Abs(dsp.DB(ratio)-10) > 1e-9 {
		t.Errorf("power loss %v dB, want 10", dsp.DB(ratio))
	}
}

func TestAWGN(t *testing.T) {
	n := NewAWGN(0.5, 1)
	if n.Power() != 0.5 {
		t.Error("Power accessor")
	}
	x := make(dsp.Samples, 100000)
	y := n.Apply(x)
	if math.Abs(y.Power()-0.5) > 0.03 {
		t.Errorf("noise power %v, want 0.5", y.Power())
	}
	if x.Power() != 0 {
		t.Error("Apply mutated its input")
	}
	if n.Sample() == 0 {
		t.Error("Sample returned zero noise")
	}
}

func TestCombineOffsets(t *testing.T) {
	a := dsp.Samples{1, 1, 1}
	b := dsp.Samples{2i, 2i}
	out := Combine(6,
		Part{Samples: a, Gain: 1, Offset: 0},
		Part{Samples: b, Gain: 0.5, Offset: 2},
	)
	want := dsp.Samples{1, 1, 1 + 1i, 1i, 0, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Combine[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestCombineClipsOutOfRange(t *testing.T) {
	a := dsp.Samples{1, 2, 3, 4}
	out := Combine(3, Part{Samples: a, Gain: 1, Offset: -2})
	if out[0] != 3 || out[1] != 4 || out[2] != 0 {
		t.Errorf("negative offset handling: %v", out)
	}
	out = Combine(3, Part{Samples: a, Gain: 1, Offset: 2})
	if out[2] != 1 {
		t.Errorf("tail clipping: %v", out)
	}
}

func TestSNRdB(t *testing.T) {
	snr, err := SNRdB(10, 1)
	if err != nil || math.Abs(snr-10) > 1e-12 {
		t.Errorf("SNRdB = %v, %v", snr, err)
	}
	if _, err := SNRdB(0, 1); err == nil {
		t.Error("zero signal power accepted")
	}
	if _, err := SNRdB(1, -1); err == nil {
		t.Error("negative noise power accepted")
	}
}

func TestMultipathUnitPowerTaps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		m := NewRayleighMultipath(rng, 3, 0.5)
		taps := m.Taps()
		if len(taps) != 3 {
			t.Fatalf("taps %d", len(taps))
		}
		var p float64
		for _, tp := range taps {
			p += real(tp)*real(tp) + imag(tp)*imag(tp)
		}
		if math.Abs(p-1) > 1e-9 {
			t.Fatalf("tap power %v, want 1", p)
		}
	}
	// Degenerate tap count clamps to 1.
	m := NewRayleighMultipath(rng, 0, 0.5)
	if len(m.Taps()) != 1 {
		t.Error("zero taps should clamp to 1")
	}
}

func TestMultipathApplyConvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewRayleighMultipath(rng, 2, 1)
	taps := m.Taps()
	x := dsp.Samples{1, 0, 0, 2}
	y := m.Apply(x)
	if len(y) != len(x) {
		t.Fatalf("output length %d", len(y))
	}
	// y[0] = taps[0]·x[0]; y[1] = taps[1]·x[0]; y[3] = taps[0]·x[3] + taps[1]·x[2].
	if cdist(y[0], taps[0]) > 1e-12 || cdist(y[1], taps[1]) > 1e-12 {
		t.Errorf("impulse response wrong: %v vs %v", y[:2], taps)
	}
	if cdist(y[3], 2*taps[0]) > 1e-12 {
		t.Errorf("y[3] = %v, want %v", y[3], 2*taps[0])
	}
}

func TestMultipathPreservesAveragePower(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := dsp.NewNoiseSource(1, 8)
	x := n.Block(50000)
	var acc float64
	const trials = 20
	for i := 0; i < trials; i++ {
		m := NewRayleighMultipath(rng, 3, 0.5)
		acc += m.Apply(x).Power()
	}
	if avg := acc / trials; math.Abs(avg-1) > 0.15 {
		t.Errorf("average faded power %v, want ~1", avg)
	}
}

func TestMultipathTapsCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewRayleighMultipath(rng, 2, 0.5)
	taps := m.Taps()
	taps[0] = 0
	if m.Taps()[0] == 0 {
		t.Error("Taps returned aliased slice")
	}
}

func cdist(a, b complex128) float64 {
	return math.Hypot(real(a)-real(b), imag(a)-imag(b))
}
