package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/iperf"
	"repro/internal/jammer"
	"repro/internal/testbed"
	"repro/internal/wifi"
)

// DefaultSNRSweep is the Fig. 6-8 x-axis: –6 dB to +14 dB.
var DefaultSNRSweep = []float64{-6, -4, -2, 0, 2, 4, 6, 8, 10, 12, 14}

// Fig6Config returns the long-preamble characterization of Fig. 6 for one
// of the two paper operating points: the 0.52 trig/s false-alarm curve
// (lower threshold, higher Pd) and the 0.083 trig/s curve.
func Fig6Config(kind FrameKind, tight bool, frames int) DetectionConfig {
	fa := 0.52
	if tight {
		fa = 0.083
	}
	return DetectionConfig{
		Template:       host.WiFiLongTemplate(),
		FATargetPerSec: fa,
		Kind:           kind,
		FramesPerPoint: frames,
		SNRsDB:         DefaultSNRSweep,
		Seed:           61,
	}
}

// Fig7Config returns the short-preamble characterization of Fig. 7
// (full WiFi frames, constant false-alarm rate 0.059 trig/s).
func Fig7Config(frames int) DetectionConfig {
	return DetectionConfig{
		Template:       host.WiFiShortTemplate(),
		FATargetPerSec: 0.059,
		Kind:           FullFrame,
		FramesPerPoint: frames,
		SNRsDB:         DefaultSNRSweep,
		Seed:           71,
	}
}

// Fig8Config returns the energy-differentiator characterization of Fig. 8
// (full WiFi frames, 10 dB threshold).
func Fig8Config(frames int) DetectionConfig {
	return DetectionConfig{
		EnergyThresholdDB: 10,
		Kind:              FullFrame,
		FramesPerPoint:    frames,
		SNRsDB:            DefaultSNRSweep,
		Seed:              81,
	}
}

// Table1 returns the measured 5-port insertion-loss matrix in dB.
func Table1() [testbed.NumPorts][testbed.NumPorts]float64 {
	return testbed.New().MeasureTable()
}

// JamSweepPoint is one (attenuation, result) entry of the Fig. 10/11
// bandwidth and PRR sweeps.
type JamSweepPoint struct {
	VariableAttDB float64
	Result        iperf.Result
}

// JamSweepConfig parameterizes one Fig. 10/11 curve.
type JamSweepConfig struct {
	// Mode and Uptime select the jammer type (uptime ignored for
	// continuous).
	Mode   iperf.JamMode
	Uptime time.Duration
	// Attenuations is the variable-attenuator sweep (dB); higher values
	// mean weaker jamming, i.e. higher SIR.
	Attenuations []float64
	// Packets per point.
	Packets int
	// PayloadBytes per datagram.
	PayloadBytes int
	Seed         int64
}

// DefaultAttenuationSweep spans SIR ≈ -12…+38 dB at the AP.
var DefaultAttenuationSweep = []float64{0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50}

// DefaultJamSweep returns the sweep settings for one curve with a modest
// packet budget.
func DefaultJamSweep(mode iperf.JamMode, uptime time.Duration) JamSweepConfig {
	return JamSweepConfig{
		Mode: mode, Uptime: uptime,
		Attenuations: DefaultAttenuationSweep,
		Packets:      40,
		PayloadBytes: 1470,
		Seed:         101,
	}
}

// RunJamSweep produces one Fig. 10/11 curve. The attenuation points run
// across the experiment worker pool; each point builds its own link and
// jammer stack, so the curve is identical at any pool width.
func RunJamSweep(cfg JamSweepConfig) ([]JamSweepPoint, error) {
	out := make([]JamSweepPoint, len(cfg.Attenuations))
	err := forEach(len(cfg.Attenuations), func(i int) error {
		att := cfg.Attenuations[i]
		link := iperf.DefaultLink()
		link.Packets = cfg.Packets
		link.PayloadBytes = cfg.PayloadBytes
		link.Seed = cfg.Seed
		jam := iperf.JammerConfig{
			Mode:          cfg.Mode,
			VariableAttDB: att,
			Personality: host.Personality{
				Waveform: jammer.WaveformWGN,
				Uptime:   cfg.Uptime,
				Gain:     1,
			},
		}
		res, err := iperf.Run(link, jam)
		if err != nil {
			return fmt.Errorf("sweep at %v dB: %w", att, err)
		}
		out[i] = JamSweepPoint{VariableAttDB: att, Result: *res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BaselineBandwidthKbps measures the no-jammer UDP bandwidth (the dashed
// line of Fig. 10).
func BaselineBandwidthKbps(packets int, seed int64) (float64, error) {
	link := iperf.DefaultLink()
	link.Packets = packets
	link.Seed = seed
	res, err := iperf.Run(link, iperf.JammerConfig{Mode: iperf.JamOff})
	if err != nil {
		return 0, err
	}
	return res.BandwidthKbps, nil
}

// Fig5 returns the timeline analysis for a given uptime setting.
func Fig5(uptime time.Duration) core.Timelines {
	c := core.New()
	up := uint64(uptime / (40 * time.Nanosecond))
	if up == 0 {
		up = 1
	}
	if err := c.Jammer().SetUptimeSamples(up); err != nil {
		// Clamp to hardware max rather than fail the analysis.
		_ = c.Jammer().SetUptimeSamples(1 << 32)
	}
	return c.Timelines()
}

// ResourceReport lists the per-block and total FPGA utilization (the
// insets of Figs. 3 and 4).
type ResourceReport struct {
	XCorr, Energy, Jammer, Total string
}

// Resources builds the utilization report.
func Resources() ResourceReport {
	c := core.New()
	return ResourceReport{
		XCorr:  c.XCorr().Resources().String(),
		Energy: c.Energy().Resources().String(),
		Jammer: c.Jammer().Resources().String(),
		Total:  c.Resources().String(),
	}
}

// ReconfigLatency measures the modeled bus latency of a full jammer
// personality switch and of a complete detector reprogram (the §4.3
// reconfigurability result).
func ReconfigLatency() (personality, fullDetector time.Duration, err error) {
	c := core.New()
	h := host.New(c)
	personality, err = h.ProgramJammer(host.ReactiveShort)
	if err != nil {
		return 0, 0, err
	}
	d1, err := h.ProgramCorrelator(host.WiFiLongTemplate(), 0.5)
	if err != nil {
		return 0, 0, err
	}
	d2, err := h.ProgramEnergy(10, 0)
	if err != nil {
		return 0, 0, err
	}
	return personality, d1 + d2, nil
}

// MaxUDPTheoretical returns the nominal 54 Mbps iperf setting of §4.2 in
// Kbps, for the report header.
func MaxUDPTheoretical() float64 { return 54000 }

// RateForMbps maps a nominal rate to the wifi.Rate enum, for reports.
func RateForMbps(mbps int) (wifi.Rate, error) {
	for _, r := range wifi.AllRates {
		if r.Mbps() == mbps {
			return r, nil
		}
	}
	return 0, fmt.Errorf("experiments: no %d Mbps OFDM rate", mbps)
}
