package experiments

import (
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/impair"
	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
	"repro/internal/trigger"
	"repro/internal/verdict"
	"repro/internal/wifi"
)

// The verdict-ledger experiment replays the §3.2 detection methodology —
// identical stimulus, seeds, radio construction and phase structure as
// CharacterizeDetection for a single SNR point — with the telemetry journal
// capturing every engagement, then classifies each transmitted frame from
// the journal alone and reconciles the ledger's Pd / false-alarm figures
// against the counter-delta figures computed the way the characterization
// computes them. Both views observe the same datapath run, so they must
// agree bit-for-bit; any divergence is an instrumentation bug (lost journal
// events, mis-stamped clocks, window misattribution), which is exactly what
// the reconciliation exists to catch.

// VerdictConfig describes one verdict-ledger run.
type VerdictConfig struct {
	// Detection is the stimulus and detector configuration, interpreted
	// exactly as CharacterizeDetection interprets it. SNRsDB must hold
	// exactly one point.
	Detection DetectionConfig
	// JournalDepth sizes the telemetry journals (default 1<<16 events). The
	// run fails if either journal drops events, since a truncated journal
	// cannot reconcile.
	JournalDepth int
}

// VerdictOutcome is the ledger plus both sets of figures.
type VerdictOutcome struct {
	// SNRdB is the measured point.
	SNRdB float64
	// Event is the resolved detection event the figures count.
	Event trigger.Event
	// Packets is the ground truth: one clock window per transmitted frame.
	Packets []verdict.Packet
	// Engagements is the reconstructed engagement list of the Pd phase.
	Engagements []span.Engagement
	// Ledger is the merged classification result: per-packet rows from the
	// Pd phase followed by false-positive rows from the noise-only
	// calibration phase.
	Ledger *verdict.Result

	// Counter-based figures, computed per CharacterizeDetection: per-frame
	// counter deltas for Pd, the raw counter for false alarms.
	CounterPd                 float64
	CounterDetectionsPerFrame float64
	CounterFalseAlarms        uint64
	// Ledger-based figures derived purely from journal windows.
	LedgerPd                 float64
	LedgerDetectionsPerFrame float64
	LedgerFalseAlarms        uint64
	// FalseAlarmsPerSec and FACalibrationSec mirror DetectionResult.
	FalseAlarmsPerSec float64
	FACalibrationSec  float64
	// Reconciled reports bit-for-bit agreement of every paired figure.
	Reconciled bool
}

// detectionKind maps a trigger event to the telemetry edge kind its counter
// counts.
func detectionKind(ev trigger.Event) telemetry.EventKind {
	switch ev {
	case trigger.EventXCorr:
		return telemetry.EvXCorrEdge
	case trigger.EventEnergyLow:
		return telemetry.EvEnergyLowEdge
	default:
		return telemetry.EvEnergyHighEdge
	}
}

// RunVerdictLedger runs the instrumented single-point characterization and
// returns the reconciled ledger.
func RunVerdictLedger(cfg VerdictConfig) (*VerdictOutcome, error) {
	d := cfg.Detection
	if d.FramesPerPoint <= 0 {
		return nil, fmt.Errorf("experiments: FramesPerPoint must be positive")
	}
	if len(d.SNRsDB) != 1 {
		return nil, fmt.Errorf("experiments: verdict ledger runs exactly one SNR point, got %d", len(d.SNRsDB))
	}
	snr := d.SNRsDB[0]
	depth := cfg.JournalDepth
	if depth <= 0 {
		depth = 1 << 16
	}

	// --- Phase 1: noise-only false-alarm calibration, its own fresh radio
	// and journal (mirroring CharacterizeDetection's structure so the
	// figures are comparable run-to-run, not just within this run). ---
	r, count, ev, err := buildDetector(d)
	if err != nil {
		return nil, err
	}
	kind := detectionKind(ev)
	faLive := telemetry.NewLive(depth)
	r.Core().SetRecorder(faLive)
	noise := dsp.NewNoiseSource(noiseFloorPower, d.Seed+9999)
	faSamples := 2_000_000 * faCalibrationScale
	if _, err := r.Process(noise.Block(faSamples)); err != nil {
		return nil, err
	}
	counterFA := count()
	if dropped := faLive.Dropped(); dropped != 0 {
		return nil, fmt.Errorf("experiments: FA journal dropped %d events; raise JournalDepth", dropped)
	}
	// With no ground-truth packets, every engagement is a false positive and
	// every configured-kind edge a false alarm.
	faResult, err := verdict.Classify(nil, span.Build(faLive.Events()),
		verdict.Options{Kinds: []telemetry.EventKind{kind}})
	if err != nil {
		return nil, err
	}

	// --- Phase 2: Pd measurement on a fresh radio, per-frame clock windows
	// journaled alongside the per-frame counter deltas. ---
	r, count, _, err = buildDetector(d)
	if err != nil {
		return nil, err
	}
	live := telemetry.NewLive(depth)
	r.Core().SetRecorder(live)
	clock := r.Core().Clock()
	front := impair.New(d.Impairments)
	pNoise := dsp.NewNoiseSource(noiseFloorPower, d.Seed+int64(snr*100))
	amp := math.Sqrt(noiseFloorPower * dsp.FromDB(snr))
	framesDetected := 0
	var detections uint64
	packets := make([]verdict.Packet, 0, d.FramesPerPoint)
	for f := 0; f < d.FramesPerPoint; f++ {
		wave, err := frameWaveform(d.Kind, f, d.Seed)
		if err != nil {
			return nil, err
		}
		buf := make(dsp.Samples, len(wave)+2*interFrameGap)
		copy(buf[interFrameGap:], wave)
		scale := amp / math.Sqrt(wave.Power())
		for i := range buf {
			buf[i] = front.ProcessSample(buf[i]*complex(scale, 0)) + pNoise.Sample()
		}
		before := count()
		start := clock.Cycle()
		if _, err := r.Process(buf); err != nil {
			return nil, err
		}
		packets = append(packets, verdict.Packet{Index: f, Start: start, End: clock.Cycle()})
		delta := count() - before
		if delta > 0 {
			framesDetected++
		}
		detections += delta
	}
	if dropped := live.Dropped(); dropped != 0 {
		return nil, fmt.Errorf("experiments: journal dropped %d events; raise JournalDepth", dropped)
	}

	engs := span.Build(live.Events())
	pdResult, err := verdict.Classify(packets, engs,
		verdict.Options{Kinds: []telemetry.EventKind{kind}})
	if err != nil {
		return nil, err
	}

	// Merge: packet rows from the Pd phase, FP rows from the calibration
	// phase (the Pd phase's windows tile its entire run, so it contributes
	// no false alarms of its own by construction).
	ledger := &verdict.Result{
		Records: append(append([]verdict.Record{}, pdResult.Records...), faResult.Records...),
		Summary: pdResult.Summary,
	}
	ledger.Summary.FPEngagements += faResult.Summary.FPEngagements
	ledger.Summary.FalseAlarmEdges += faResult.Summary.FalseAlarmEdges

	faSec := float64(faSamples) / wifi.SampleRate
	out := &VerdictOutcome{
		SNRdB:       snr,
		Event:       ev,
		Packets:     packets,
		Engagements: engs,
		Ledger:      ledger,

		CounterPd:                 float64(framesDetected) / float64(d.FramesPerPoint),
		CounterDetectionsPerFrame: float64(detections) / float64(d.FramesPerPoint),
		CounterFalseAlarms:        counterFA,
		LedgerPd:                  ledger.Summary.Pd,
		LedgerDetectionsPerFrame:  float64(ledger.Summary.DetectionEdges) / float64(d.FramesPerPoint),
		LedgerFalseAlarms:         ledger.Summary.FalseAlarmEdges,
		FalseAlarmsPerSec:         float64(counterFA) / faSec,
		FACalibrationSec:          faSec,
	}
	out.Reconciled = out.CounterPd == out.LedgerPd &&
		out.CounterDetectionsPerFrame == out.LedgerDetectionsPerFrame &&
		out.CounterFalseAlarms == out.LedgerFalseAlarms
	return out, nil
}
