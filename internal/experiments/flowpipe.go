package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/flow"
	"repro/internal/host"
	"repro/internal/impair"
	"repro/internal/jammer"
	"repro/internal/trigger"
)

// The flowpipe experiment (E20) characterizes the backpressured pipeline
// scheduler against the synchronous reference on the paper's host datapath:
// bursty air + noise → front-end impairments → jammer core → sink, with a
// probe tap fanning out from the front end. For every chunk size it first
// proves the two schedulers bit-identical on a seeded stream, then measures
// both in Msps and reports the pipeline/sync ratio plus the ring stall
// counters that explain it.

// FlowPipeConfig sizes the scheduler comparison.
type FlowPipeConfig struct {
	// TotalSamples is the stream length of one timed run (default 2M).
	TotalSamples int
	// VerifySamples is the stream length of the bit-exactness check
	// (default 200k; capped at TotalSamples).
	VerifySamples int
	// Chunks are the chunk sizes to sweep (default 256, 1024, 4096).
	Chunks []int
	// Depth is the ring depth between pipeline stages (default 4).
	Depth int
	// Workers caps concurrent Work calls (0 = one per runnable stage).
	Workers int
	// Seed drives every stochastic element (burst plan, noise, impairments).
	Seed int64
	// MinDuration is the per-scheduler measurement window (default 150 ms).
	MinDuration time.Duration
}

// FlowPipePoint is one chunk size's comparison row.
type FlowPipePoint struct {
	Chunk          int
	SyncMsps       float64
	PipelineMsps   float64
	Ratio          float64 // PipelineMsps / SyncMsps
	ProducerStalls uint64  // full-ring waits across all edges
	ConsumerStalls uint64  // empty-ring waits across all edges
}

// FlowPipeResult is the experiment outcome. Construction succeeds only if
// every chunk size passed the bit-exactness check first.
type FlowPipeResult struct {
	Points          []FlowPipePoint
	VerifiedSamples int // samples compared ==-exact per chunk size
}

// Best returns the row with the highest pipeline throughput.
func (r *FlowPipeResult) Best() FlowPipePoint {
	best := r.Points[0]
	for _, p := range r.Points[1:] {
		if p.PipelineMsps > best.PipelineMsps {
			best = p
		}
	}
	return best
}

// flowPipeBurst builds the deterministic on/off bursty waveform the graph
// source replays: idle gaps and Gaussian-ish bursts of varying amplitude,
// enough structure to exercise both detectors and the jam controller.
func flowPipeBurst(n int, seed int64) dsp.Samples {
	rng := rand.New(rand.NewSource(seed))
	data := make(dsp.Samples, n)
	for i := 0; i < n; {
		gap := 100 + rng.Intn(400)
		burst := 200 + rng.Intn(600)
		amp := 0.2 + rng.Float64()*0.5
		for j := 0; j < gap && i < n; j, i = j+1, i+1 {
			data[i] = 0
		}
		for j := 0; j < burst && i < n; j, i = j+1, i+1 {
			data[i] = complex(amp*rng.NormFloat64()*0.3+amp, amp*rng.NormFloat64()*0.3)
		}
	}
	return data
}

// flowPipeGraph assembles the datapath graph. With retain set the terminal
// block is a VectorSink (for exactness comparison); otherwise a Probe so
// timed runs hold no stream memory.
func flowPipeGraph(chunk int, seed int64, retain bool) (*flow.Graph, *flow.VectorSink, error) {
	c := core.New()
	h := host.New(c)
	if _, err := h.ProgramCorrelatorFA(host.WiFiShortTemplate(), 0.1); err != nil {
		return nil, nil, err
	}
	if _, err := h.ProgramEnergy(10, 0); err != nil {
		return nil, nil, err
	}
	if _, err := h.ProgramTrigger(core.FusionAny,
		[]trigger.Event{trigger.EventXCorr, trigger.EventEnergyHigh}, 0); err != nil {
		return nil, nil, err
	}
	if _, err := h.ProgramJammer(host.Personality{
		Waveform: jammer.WaveformWGN, Uptime: 10e3, Gain: 1,
	}); err != nil {
		return nil, nil, err
	}

	g := flow.NewGraph(chunk)
	src := g.Add(&flow.VectorSource{Label: "air", Data: flowPipeBurst(6000, seed), Repeat: true})
	noise := g.Add(&flow.NoiseSourceBlock{Src: dsp.NewNoiseSource(1e-4, seed+1)})
	add := g.Add(flow.Adder{})
	front := g.Add(flow.ImpairBlock{Chain: impair.New(impair.TypicalUSRP(2.484e9, 25e6, seed+2))})
	tap := g.Add(&flow.Probe{Label: "rx-tap"})
	jam := g.Add(flow.CoreBlock{Core: c})

	var sink *flow.VectorSink
	var term int
	if retain {
		sink = &flow.VectorSink{}
		term = g.Add(sink)
	} else {
		term = g.Add(&flow.Probe{Label: "tx"})
	}
	for _, w := range []struct{ s, sp, d, dp int }{
		{src, 0, add, 0}, {noise, 0, add, 1}, {add, 0, front, 0},
		{front, 0, tap, 0}, {front, 0, jam, 0}, {jam, 0, term, 0},
	} {
		if err := g.Connect(w.s, w.sp, w.d, w.dp); err != nil {
			return nil, nil, err
		}
	}
	return g, sink, nil
}

// flowPipeVerify builds the graph twice from the same seed and requires the
// pipelined sink stream ==-exact against the synchronous one.
func flowPipeVerify(chunk, total int, cfg FlowPipeConfig) error {
	ref, refSink, err := flowPipeGraph(chunk, cfg.Seed, true)
	if err != nil {
		return err
	}
	if err := ref.Run(total); err != nil {
		return fmt.Errorf("sync run: %w", err)
	}
	pip, pipSink, err := flowPipeGraph(chunk, cfg.Seed, true)
	if err != nil {
		return err
	}
	if _, err := pip.RunPipelined(total, flow.PipelineOptions{
		Depth: cfg.Depth, Workers: cfg.Workers,
	}); err != nil {
		return fmt.Errorf("pipelined run: %w", err)
	}
	if len(refSink.Data) != total || len(pipSink.Data) != total {
		return fmt.Errorf("sink lengths sync %d / pipelined %d, want %d",
			len(refSink.Data), len(pipSink.Data), total)
	}
	for i := range refSink.Data {
		if refSink.Data[i] != pipSink.Data[i] {
			return fmt.Errorf("sample %d diverges: sync %v, pipelined %v",
				i, refSink.Data[i], pipSink.Data[i])
		}
	}
	return nil
}

// RunFlowPipe verifies and measures both schedulers at every configured
// chunk size. Any bit-exactness failure aborts the whole experiment — a
// pipeline that is fast but wrong has no throughput figure worth reporting.
func RunFlowPipe(cfg FlowPipeConfig) (*FlowPipeResult, error) {
	if cfg.TotalSamples <= 0 {
		cfg.TotalSamples = 2_000_000
	}
	if cfg.VerifySamples <= 0 {
		cfg.VerifySamples = 200_000
	}
	if cfg.VerifySamples > cfg.TotalSamples {
		cfg.VerifySamples = cfg.TotalSamples
	}
	if len(cfg.Chunks) == 0 {
		cfg.Chunks = []int{256, 1024, 4096}
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 4
	}
	if cfg.MinDuration <= 0 {
		cfg.MinDuration = 150 * time.Millisecond
	}

	res := &FlowPipeResult{VerifiedSamples: cfg.VerifySamples}
	for _, chunk := range cfg.Chunks {
		if chunk < 1 {
			return nil, fmt.Errorf("experiments: chunk %d invalid", chunk)
		}
		if err := flowPipeVerify(chunk, cfg.VerifySamples, cfg); err != nil {
			return nil, fmt.Errorf("experiments: flowpipe chunk %d: schedulers diverge: %w", chunk, err)
		}

		sg, _, err := flowPipeGraph(chunk, cfg.Seed, false)
		if err != nil {
			return nil, err
		}
		syncMsps, err := flowPipeMeasure(cfg, func() error {
			return sg.Run(cfg.TotalSamples)
		})
		if err != nil {
			return nil, err
		}

		pg, _, err := flowPipeGraph(chunk, cfg.Seed, false)
		if err != nil {
			return nil, err
		}
		var producer, consumer uint64
		pipeMsps, err := flowPipeMeasure(cfg, func() error {
			stats, err := pg.RunPipelined(cfg.TotalSamples, flow.PipelineOptions{
				Depth: cfg.Depth, Workers: cfg.Workers,
			})
			if err != nil {
				return err
			}
			p, c := stats.TotalStalls()
			producer, consumer = p, c
			return nil
		})
		if err != nil {
			return nil, err
		}

		pt := FlowPipePoint{
			Chunk:          chunk,
			SyncMsps:       syncMsps,
			PipelineMsps:   pipeMsps,
			ProducerStalls: producer,
			ConsumerStalls: consumer,
		}
		if syncMsps > 0 {
			pt.Ratio = pipeMsps / syncMsps
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// flowPipeMeasure repeats run until the measurement window fills and
// returns millions of samples per second. The first run warms plan caches
// and ring allocations outside the timed window.
func flowPipeMeasure(cfg FlowPipeConfig, run func() error) (float64, error) {
	if err := run(); err != nil {
		return 0, err
	}
	start := time.Now()
	n := 0
	for n == 0 || time.Since(start) < cfg.MinDuration {
		if err := run(); err != nil {
			return 0, err
		}
		n += cfg.TotalSamples
	}
	return float64(n) / time.Since(start).Seconds() / 1e6, nil
}
