package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/host"
	"repro/internal/jammer"
	"repro/internal/radio"
	"repro/internal/telemetry"
	"repro/internal/trigger"
	"repro/internal/wifi"
)

// ReactionConfig describes a reaction-latency measurement run: 802.11g
// frames streamed at the WiFi source rate into an energy-armed jammer with
// the telemetry recorder attached, measuring frame-start→RF-on per frame.
type ReactionConfig struct {
	// Frames is the number of measured frames.
	Frames int
	// SNRdB is the frame power over the noise floor. The default sits just
	// above the energy threshold — the marginal regime the paper's 1.28 µs
	// worst case describes, where the 32-sample window must fill with the
	// new level before the comparison crosses. Well above threshold the
	// detector fires earlier (fewer samples suffice).
	SNRdB float64
	// EnergyThresholdDB arms the energy differentiator (default 10 dB).
	EnergyThresholdDB float64
	// Uptime is the jamming burst duration (default 10 µs).
	Uptime time.Duration
	// Seed drives noise and payload randomness.
	Seed int64
	// Cell, when non-empty and a fleet sink is installed (SetFleetSink),
	// names the fleet cell this run's telemetry is absorbed into on
	// completion.
	Cell string
}

// ReactionResult is the measured latency distribution plus the recorder
// that captured it (for trace export and histogram tables).
type ReactionResult struct {
	// Frames and Triggered count the offered and jammed frames.
	Frames    int
	Triggered uint64
	// ReactionP50/P99 summarize the frame-start→RF-on histogram; the
	// paper's single-stage energy budget is Ten_det (1.28 µs) + Tinit
	// (80 ns) = 1.36 µs, plus the receive front end's group delay.
	ReactionP50 time.Duration
	ReactionP99 time.Duration
	// TriggerToRFP50 is the trigger-fire→RF-on turnaround (Tinit, 80 ns).
	TriggerToRFP50 time.Duration
	// Snapshot is the full telemetry state at the end of the run.
	Snapshot telemetry.Snapshot
	// Recorder is the live recorder, still attached to the core.
	Recorder *telemetry.Live
}

// WiFiFrontEndGroupDelayCycles returns the group delay, in hardware clock
// cycles, of the DDC a WiFi-rate (20 MSPS) source passes through before the
// detectors see it. Latency budgets anchored at the frame boundary entering
// the radio must allow for it on top of the paper's detection timeline.
func WiFiFrontEndGroupDelayCycles() uint64 {
	r := radio.New()
	if err := r.SetSourceRate(wifi.SampleRate); err != nil {
		return 0
	}
	return r.GroupDelayCycles()
}

// MeasureReactionLatency streams WiFi frames with per-frame telemetry
// markers through an energy-triggered jammer and returns the reaction
// latency distribution — the end-to-end measurement behind Fig. 5's
// Tresp(energy) < 1.36 µs line.
func MeasureReactionLatency(cfg ReactionConfig) (*ReactionResult, error) {
	if cfg.Frames <= 0 {
		return nil, fmt.Errorf("experiments: Frames must be positive")
	}
	if cfg.EnergyThresholdDB == 0 {
		cfg.EnergyThresholdDB = 10
	}
	if cfg.SNRdB == 0 {
		cfg.SNRdB = 11
	}
	if cfg.Uptime == 0 {
		cfg.Uptime = 10 * time.Microsecond
	}

	r := radio.New()
	if err := r.SetSourceRate(wifi.SampleRate); err != nil {
		return nil, err
	}
	h := host.New(r.Core())
	if _, err := h.ProgramEnergy(cfg.EnergyThresholdDB, 0); err != nil {
		return nil, err
	}
	if _, err := h.ProgramTrigger(core.FusionSequence,
		[]trigger.Event{trigger.EventEnergyHigh}, 0); err != nil {
		return nil, err
	}
	if _, err := h.ProgramJammer(host.Personality{
		Name: "reaction-probe", Waveform: jammer.WaveformWGN,
		Uptime: cfg.Uptime, Gain: 1,
	}); err != nil {
		return nil, err
	}
	live := telemetry.NewLive(telemetry.DefaultJournalDepth)
	r.Core().SetRecorder(live)
	r.Start()

	noise := dsp.NewNoiseSource(noiseFloorPower, cfg.Seed+77)
	amp := math.Sqrt(noiseFloorPower * dsp.FromDB(cfg.SNRdB))
	const lead = 512 // quiet samples before the frame (re-arms the detector)
	for f := 0; f < cfg.Frames; f++ {
		wave, err := frameWaveform(FullFrame, f, cfg.Seed)
		if err != nil {
			return nil, err
		}
		buf := make(dsp.Samples, lead+len(wave)+lead)
		copy(buf[lead:], wave)
		scale := amp / math.Sqrt(wave.Power())
		for i := range buf {
			buf[i] = buf[i]*complex(scale, 0) + noise.Sample()
		}
		r.MarkFrame(lead)
		if _, err := r.Process(buf); err != nil {
			return nil, err
		}
	}

	snap := live.Snapshot()
	reportCell(cfg.Cell, snap, uint64(cfg.Frames), snap.Counters.JamTriggers)
	res := &ReactionResult{
		Frames:    cfg.Frames,
		Triggered: snap.Counters.JamTriggers,
		Snapshot:  snap,
		Recorder:  live,
	}
	if hr := snap.Histogram(telemetry.HistReaction); hr.Count > 0 {
		res.ReactionP50 = hr.P50Duration()
		res.ReactionP99 = hr.P99Duration()
	}
	if ht := snap.Histogram(telemetry.HistTriggerToRF); ht.Count > 0 {
		res.TriggerToRFP50 = telemetry.CyclesToDuration(ht.P50)
	}
	return res, nil
}
