// Package experiments drives the paper's evaluation: the detection
// characterization of §3 (Figs. 6-8), the testbed characterization of §4.1
// (Table 1), the WiFi jamming sweeps of §4.3 (Figs. 10-11), the WiMAX
// validation of §5 (Fig. 12), and the timeline/resource/reconfigurability
// analyses. Each experiment returns plain data that cmd/experiments prints
// and bench_test.go reports as benchmark metrics.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/host"
	"repro/internal/impair"
	"repro/internal/radio"
	"repro/internal/trigger"
	"repro/internal/wifi"
)

// FrameKind selects the §3.2 test frame type.
type FrameKind uint8

// The frame types used in the detection characterization.
const (
	// FullFrame is a complete WiFi frame: 10 short preambles, 2 long
	// preambles, SIGNAL and payload.
	FullFrame FrameKind = iota
	// SingleLongPreamble is a pseudo-frame with one long training symbol.
	SingleLongPreamble
	// SingleShortPreamble is a pseudo-frame with one short training symbol.
	SingleShortPreamble
)

func (k FrameKind) String() string {
	switch k {
	case FullFrame:
		return "full-frames"
	case SingleLongPreamble:
		return "single-long-preamble"
	case SingleShortPreamble:
		return "single-short-preamble"
	default:
		return fmt.Sprintf("FrameKind(%d)", uint8(k))
	}
}

// DetectionConfig describes one detection characterization run.
type DetectionConfig struct {
	// Template arms the cross-correlator (nil runs energy-only).
	Template []complex128
	// ThresholdFrac is the correlator threshold as a fraction of the
	// template's ideal peak metric. Ignored when FATargetPerSec is set.
	ThresholdFrac float64
	// FATargetPerSec calibrates the correlator threshold to this
	// false-alarm rate on terminated input (the §3.2 methodology).
	FATargetPerSec float64
	// EnergyThresholdDB arms the energy differentiator (0 leaves it off).
	EnergyThresholdDB float64
	// Kind selects the transmitted frames.
	Kind FrameKind
	// FramesPerPoint is the number of frames per SNR point (the paper uses
	// 10,000; scale down for quick runs).
	FramesPerPoint int
	// SNRsDB lists the receiver SNR sweep points.
	SNRsDB []float64
	// Seed drives all noise and payload randomness.
	Seed int64
	// Impairments optionally distorts the received waveform with a
	// hardware-realistic front end before the jammer's DDC (zero value =
	// ideal front end).
	Impairments impair.Config
	// Event selects which detector's edges count as detections; defaults
	// to xcorr when a template is present, energy-high otherwise.
	Event trigger.Event
}

// DetectionPoint is one (SNR, detection) measurement.
type DetectionPoint struct {
	SNRdB float64
	// Pd is the fraction of frames with at least one detection.
	Pd float64
	// DetectionsPerFrame is the mean detection count per frame (Fig. 8's
	// excessive-detection region shows values above 1).
	DetectionsPerFrame float64
}

// DetectionResult is a full characterization curve plus the false-alarm
// calibration measured on a terminated (noise-only) input.
type DetectionResult struct {
	Points []DetectionPoint
	// FalseAlarmsPerSec is the detection rate with the input terminated
	// (§3.2's 50 Ω terminator methodology).
	FalseAlarmsPerSec float64
	// FACalibrationSec is how much noise-only time was simulated; the
	// paper observes 30 minutes, which is beyond a unit-test budget, so
	// runs report their actual window.
	FACalibrationSec float64
}

// noiseFloorPower keeps the quantizer exercised without dominating: about
// -60 dBFS per sample at the jammer ADC.
const noiseFloorPower = 1e-6

// frameWaveform builds one transmitted frame at 20 MSPS.
func frameWaveform(kind FrameKind, seq int, seed int64) (dsp.Samples, error) {
	switch kind {
	case SingleLongPreamble:
		return wifi.ModulatePseudoFrame(wifi.PseudoLong), nil
	case SingleShortPreamble:
		return wifi.ModulatePseudoFrame(wifi.PseudoShort), nil
	default:
		psdu := make([]byte, 64)
		for i := range psdu {
			psdu[i] = byte((seq + i) * 31)
		}
		return wifi.Modulate(wifi.AppendFCS(psdu), wifi.TxConfig{
			Rate:          wifi.Rate24,
			ScramblerSeed: uint8((seed+int64(seq))%126) + 1,
		})
	}
}

// buildDetector assembles a jammer radio with the requested detection
// configuration; the returned counter function reports the chosen event's
// edge count, and the returned event is the resolved detection event.
func buildDetector(cfg DetectionConfig) (*radio.N210, func() uint64, trigger.Event, error) {
	r := radio.New()
	if err := r.SetSourceRate(wifi.SampleRate); err != nil {
		return nil, nil, trigger.EventNone, err
	}
	h := host.New(r.Core())
	ev := cfg.Event
	if len(cfg.Template) > 0 {
		if cfg.FATargetPerSec > 0 {
			if _, err := h.ProgramCorrelatorFA(cfg.Template, cfg.FATargetPerSec); err != nil {
				return nil, nil, ev, err
			}
		} else {
			frac := cfg.ThresholdFrac
			if frac == 0 {
				frac = 0.5
			}
			if _, err := h.ProgramCorrelator(cfg.Template, frac); err != nil {
				return nil, nil, ev, err
			}
		}
		if ev == trigger.EventNone {
			ev = trigger.EventXCorr
		}
	}
	if cfg.EnergyThresholdDB > 0 {
		if _, err := h.ProgramEnergy(cfg.EnergyThresholdDB, 0); err != nil {
			return nil, nil, ev, err
		}
		if ev == trigger.EventNone {
			ev = trigger.EventEnergyHigh
		}
	}
	if ev == trigger.EventNone {
		return nil, nil, ev, fmt.Errorf("experiments: no detector armed")
	}
	if _, err := h.ProgramTrigger(core.FusionSequence, []trigger.Event{ev}, 0); err != nil {
		return nil, nil, ev, err
	}
	// The jammer must stay silent during characterization: minimum burst,
	// zero gain.
	if _, err := h.ProgramJammer(host.Personality{Gain: 0.001}); err != nil {
		return nil, nil, ev, err
	}
	r.Start()
	counter := func() uint64 {
		st := r.Core().Stats()
		switch ev {
		case trigger.EventXCorr:
			return st.XCorrDetections
		case trigger.EventEnergyLow:
			return st.EnergyLowDetections
		default:
			return st.EnergyHighDetections
		}
	}
	return r, counter, ev, nil
}

// CharacterizeDetection runs the §3.2 methodology: measure the false-alarm
// rate on a terminated input, then sweep SNR sending FramesPerPoint frames
// per point and counting per-frame detections.
func CharacterizeDetection(cfg DetectionConfig) (*DetectionResult, error) {
	if cfg.FramesPerPoint <= 0 {
		return nil, fmt.Errorf("experiments: FramesPerPoint must be positive")
	}
	if len(cfg.SNRsDB) == 0 {
		return nil, fmt.Errorf("experiments: no SNR points")
	}

	// --- False-alarm calibration: terminated input, noise only. ---
	r, count, _, err := buildDetector(cfg)
	if err != nil {
		return nil, err
	}
	noise := dsp.NewNoiseSource(noiseFloorPower, cfg.Seed+9999)
	// 2M samples at 20 MSPS input (2.5M at the core) ≈ 0.1 s. Kept modest;
	// cmd/experiments -full raises it via FACalibrationScale.
	faSamples := 2_000_000 * faCalibrationScale
	block := noise.Block(faSamples)
	if _, err := r.Process(block); err != nil {
		return nil, err
	}
	faCount := count()
	faSec := float64(faSamples) / wifi.SampleRate
	result := &DetectionResult{
		FalseAlarmsPerSec: float64(faCount) / faSec,
		FACalibrationSec:  faSec,
	}

	// --- Pd sweep: one worker-pool item per SNR point. Each point builds
	// its own radio stack and derives every seed from (cfg.Seed, snr), so
	// the sweep is bit-identical at any pool width. ---
	result.Points = make([]DetectionPoint, len(cfg.SNRsDB))
	err = forEach(len(cfg.SNRsDB), func(pi int) error {
		snr := cfg.SNRsDB[pi]
		r, count, _, err := buildDetector(cfg)
		if err != nil {
			return err
		}
		front := impair.New(cfg.Impairments)
		noise := dsp.NewNoiseSource(noiseFloorPower, cfg.Seed+int64(snr*100))
		amp := math.Sqrt(noiseFloorPower * dsp.FromDB(snr))
		framesDetected := 0
		var detections uint64
		for f := 0; f < cfg.FramesPerPoint; f++ {
			wave, err := frameWaveform(cfg.Kind, f, cfg.Seed)
			if err != nil {
				return err
			}
			// Scale the unit-power frame to the target SNR over noise and
			// surround it with idle gap (the paper sends 130 frames/s; the
			// inter-frame gap only needs to re-arm the detectors).
			buf := make(dsp.Samples, len(wave)+2*interFrameGap)
			copy(buf[interFrameGap:], wave)
			scale := amp / math.Sqrt(wave.Power())
			for i := range buf {
				buf[i] = front.ProcessSample(buf[i]*complex(scale, 0)) + noise.Sample()
			}
			before := count()
			if _, err := r.Process(buf); err != nil {
				return err
			}
			d := count() - before
			if d > 0 {
				framesDetected++
			}
			detections += d
		}
		result.Points[pi] = DetectionPoint{
			SNRdB:              snr,
			Pd:                 float64(framesDetected) / float64(cfg.FramesPerPoint),
			DetectionsPerFrame: float64(detections) / float64(cfg.FramesPerPoint),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return result, nil
}

// interFrameGap is the idle padding around each characterization frame at
// 20 MSPS; enough for the energy differentiator's compare pipeline to see
// the fall and re-arm.
const interFrameGap = 256

// faCalibrationScale multiplies the noise-only calibration window;
// cmd/experiments -full raises it for tighter false-alarm estimates.
var faCalibrationScale = 1

// SetFACalibrationScale adjusts the false-alarm window multiplier (≥1).
func SetFACalibrationScale(n int) {
	if n < 1 {
		n = 1
	}
	faCalibrationScale = n
}
