package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry/fleet"
)

// fleetObsLedger renders a result's ledger with zeroed wall clock, the
// byte-stable form two runs of the same seed must agree on.
func fleetObsLedger(t *testing.T, res *FleetObsResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := fleet.WriteLedger(&buf, res.Snap, fleet.LedgerMeta{
		Scenario: "fleetobs", Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFleetObsDeterministicAcrossPoolWidths: the same seed yields
// byte-identical fleet ledgers sequentially and at full pool width, and
// the fleet plane reconciles bit-for-bit with every cell's own recorder.
func TestFleetObsDeterministicAcrossPoolWidths(t *testing.T) {
	cfg := FleetObsConfig{Cells: 24, FramesPerCell: 3, Seed: 7, LabelBudget: 8, TopK: 4}
	var ledgers [][]byte
	for _, workers := range []int{1, 8} {
		withParallelism(t, workers, func() {
			res, err := RunFleetObs(cfg)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if err := res.Reconcile(); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if len(res.Snap.Cells) != cfg.Cells {
				t.Fatalf("workers=%d: %d cells, want %d", workers, len(res.Snap.Cells), cfg.Cells)
			}
			if res.Snap.Total.Dropped != 0 {
				t.Fatalf("workers=%d: %d journal drops", workers, res.Snap.Total.Dropped)
			}
			ledgers = append(ledgers, fleetObsLedger(t, res))
		})
	}
	if !bytes.Equal(ledgers[0], ledgers[1]) {
		t.Fatalf("ledger differs between pool widths:\n--- w=1\n%s\n--- w=8\n%s",
			ledgers[0], ledgers[1])
	}
}

// TestFleetObsScrapeWithinBudget: the OpenMetrics export of a fleetobs run
// passes the cardinality lint at the configured label budget.
func TestFleetObsScrapeWithinBudget(t *testing.T) {
	res, err := RunFleetObs(FleetObsConfig{Cells: 12, FramesPerCell: 2, Seed: 3, LabelBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Snap.WriteOpenMetrics(&buf, res.Agg.LabelBudget()); err != nil {
		t.Fatal(err)
	}
	cells, err := fleet.LintMetrics(strings.NewReader(buf.String()), res.Agg.LabelBudget())
	if err != nil {
		t.Fatalf("lint: %v\n%s", err, buf.String())
	}
	if cells != 4 {
		t.Fatalf("labelled cells = %d, want 4", cells)
	}
}

// TestFleetObsRestoresSink: RunFleetObs leaves the previously installed
// process-wide sink in place.
func TestFleetObsRestoresSink(t *testing.T) {
	prev := fleet.New(fleet.Options{})
	SetFleetSink(prev)
	defer SetFleetSink(nil)
	if _, err := RunFleetObs(FleetObsConfig{Cells: 2, FramesPerCell: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if FleetSink() != prev {
		t.Fatal("fleet sink not restored")
	}
	if prev.Cells() != 0 {
		t.Fatal("fleetobs leaked cells into the previous sink")
	}
}
