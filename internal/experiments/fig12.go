package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/channel"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/host"
	"repro/internal/jammer"
	"repro/internal/radio"
	"repro/internal/scope"
	"repro/internal/trigger"
	"repro/internal/wimax"
)

// Fig12Result captures the §5 WiMAX validation: detection rates for the
// cross-correlator alone versus combined with the energy differentiator,
// and the scope-observed correspondence between downlink frames and jam
// bursts.
type Fig12Result struct {
	// Frames is the number of downlink frames broadcast.
	Frames int
	// XCorrOnlyPd is the per-frame detection probability with only the
	// 64-sample correlator armed (the paper reports ≈1/3: "insufficient
	// correlation time leads to a misdetection rate of about 2/3").
	XCorrOnlyPd float64
	// CombinedPd is the detection probability with correlator and energy
	// differentiator fused (paper: "able to detect reliably 100%").
	CombinedPd float64
	// JamBursts is the number of jamming bursts the scope observed in the
	// combined configuration.
	JamBursts int
	// OneToOne reports a 1:1 frame/burst correspondence.
	OneToOne bool
}

// wimaxDetector builds a jammer radio configured for the Airspan downlink.
func wimaxDetector(cfg wimax.Config, combined bool, jamGain float64) (*radio.N210, error) {
	r := radio.New()
	if err := r.Tune(2.608e9); err != nil {
		return nil, err
	}
	if err := r.SetSourceRate(wimax.ActualSampleRate); err != nil {
		return nil, err
	}
	h := host.New(r.Core())
	tpl, err := host.WiMAXTemplate(cfg)
	if err != nil {
		return nil, err
	}
	// The 64-sample window captures only the first 2.56 µs of the 25 µs
	// preamble code, and the template is built for the 11.4 MHz rate the
	// Airspan reports while the true 802.16e sampling factor for 10 MHz is
	// 11.2 MSPS (28/25): the residual slip plus over-the-air fading leaves
	// a thin margin. The threshold (0.83 of the matched peak) is calibrated
	// so the xcorr-only configuration lands at the paper's reported
	// operating point of ~2/3 misdetection; see EXPERIMENTS.md.
	if _, err := h.ProgramCorrelator(tpl, 0.86); err != nil {
		return nil, err
	}
	events := []trigger.Event{trigger.EventXCorr}
	mode := core.FusionSequence
	if combined {
		if _, err := h.ProgramEnergy(10, 0); err != nil {
			return nil, err
		}
		events = []trigger.Event{trigger.EventXCorr, trigger.EventEnergyHigh}
		mode = core.FusionAny
	}
	if _, err := h.ProgramTrigger(mode, events, 0); err != nil {
		return nil, err
	}
	if _, err := h.ProgramJammer(host.Personality{
		Waveform: jammer.WaveformWGN,
		Uptime:   500 * time.Microsecond,
		Gain:     jamGain,
	}); err != nil {
		return nil, err
	}
	r.Start()
	return r, nil
}

// Fig12SNRdB is the modeled over-the-air SNR of the base-station downlink
// at the jammer's receive antenna (§5 is a broadcast experiment, not a
// cabled one).
const Fig12SNRdB = 12

// Fig12WiMAX broadcasts downlink frames from the modeled Airspan base
// station (Cell ID 1, Segment 0) and measures the jammer's behavior in
// both detector configurations. The over-the-air path is modeled with a
// per-frame 3-tap Rayleigh channel plus receiver noise; clock drift
// between the base station and the jammer appears as a per-frame
// fractional resampling phase (random idle padding at the 11.4 MSPS
// source rate).
func Fig12WiMAX(frames int, seed int64) (*Fig12Result, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("experiments: frame count must be positive")
	}
	cfg := wimax.Config{CellID: 1, Segment: 0}
	res := &Fig12Result{Frames: frames}

	run := func(combined bool, jamGain float64) (int, dsp.Samples, error) {
		r, err := wimaxDetector(cfg, combined, jamGain)
		if err != nil {
			return 0, nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		noise := dsp.NewNoiseSource(noiseFloorPower, seed+1)
		sigAmp := math.Sqrt(noiseFloorPower * dsp.FromDB(Fig12SNRdB))
		detected := 0
		var jamTX dsp.Samples
		for f := 0; f < frames; f++ {
			frame, err := wimax.DownlinkFrame(cfg, 24, seed+int64(f))
			if err != nil {
				return 0, nil, err
			}
			// Clock drift: random source-side padding shifts the polyphase
			// phase of the 125/57 resampler frame to frame.
			pad := rng.Intn(wimax.SymbolLen)
			buf := make(dsp.Samples, pad+len(frame))
			copy(buf[pad:], frame)
			// Truncate the trailing silence to keep runs quick; keep enough
			// for the energy fall and detector re-arm.
			burst := 26 * wimax.SymbolLen
			if len(buf) > burst+4096 {
				buf = buf[:burst+4096]
			}
			fading := channel.NewRayleighMultipath(rng, 3, 0.5)
			buf = fading.Apply(buf)
			buf.Scale(sigAmp / math.Sqrt(52.0/64))
			noise.AddTo(buf)
			stBefore := r.Core().Stats().JamTriggers
			tx, err := r.Process(buf)
			if err != nil {
				return 0, nil, err
			}
			jamTX = append(jamTX, tx...)
			if r.Core().Stats().JamTriggers > stBefore {
				detected++
			}
		}
		return detected, jamTX, nil
	}

	// Cross-correlator alone, jammer muted.
	dx, _, err := run(false, 0.001)
	if err != nil {
		return nil, err
	}
	res.XCorrOnlyPd = float64(dx) / float64(frames)

	// Combined detection with active jamming for the scope capture.
	dc, jamTX, err := run(true, 1)
	if err != nil {
		return nil, err
	}
	res.CombinedPd = float64(dc) / float64(frames)

	// Scope: one burst per downlink frame (Fig. 12's lower trace).
	bursts := scope.BurstIntervals(jamTX, 0.1, 64, 2048)
	res.JamBursts = len(bursts)
	// Allow one stray burst per 20 frames (spurious mid-frame re-triggers).
	slack := max(1, frames/20)
	res.OneToOne = dc == frames && abs(res.JamBursts-frames) <= slack
	return res, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
