package experiments

import (
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// withParallelism runs f with the pool fixed at width n, restoring the
// previous setting afterwards.
func withParallelism(t *testing.T, n int, f func()) {
	t.Helper()
	prev := Parallelism()
	SetParallelism(n)
	defer SetParallelism(prev)
	f()
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		withParallelism(t, workers, func() {
			const n = 100
			var hits [n]atomic.Int32
			if err := forEach(n, func(i int) error {
				hits[i].Add(1)
				return nil
			}); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
				}
			}
		})
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	if err := forEach(0, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := forEach(-3, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		withParallelism(t, workers, func() {
			err := forEach(32, func(i int) error {
				switch i {
				case 7:
					return errLow
				case 20:
					return errHigh
				}
				return nil
			})
			if err != errLow {
				t.Fatalf("workers=%d: got %v, want %v", workers, err, errLow)
			}
		})
	}
}

func TestForEachConcurrencyBounded(t *testing.T) {
	const width = 3
	withParallelism(t, width, func() {
		var cur, peak atomic.Int32
		var mu sync.Mutex
		if err := forEach(64, func(i int) error {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			for j := 0; j < 1000; j++ {
				_ = j // busy-spin long enough for workers to overlap
			}
			cur.Add(-1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if p := peak.Load(); p > width {
			t.Fatalf("observed %d concurrent items, pool width %d", p, width)
		}
	})
}

func TestSetParallelismFloor(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(0)
	if got, want := Parallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("SetParallelism(0): got %d, want GOMAXPROCS=%d", got, want)
	}
	SetParallelism(5)
	if got := Parallelism(); got != 5 {
		t.Fatalf("SetParallelism(5): got %d", got)
	}
}

// TestCharacterizeDetectionDeterministicAcrossWidths is the determinism
// regression for the parallel harness: a fixed-seed characterization must
// return byte-identical results at every pool width, because each SNR point
// derives all of its randomness from the config and its own parameters.
func TestCharacterizeDetectionDeterministicAcrossWidths(t *testing.T) {
	cfg := DetectionConfig{
		EnergyThresholdDB: 10,
		Kind:              FullFrame,
		FramesPerPoint:    6,
		SNRsDB:            []float64{-4, 0, 4, 8, 12},
		Seed:              1234,
	}
	widths := []int{1, 4, runtime.GOMAXPROCS(0)}
	var ref []byte
	for _, w := range widths {
		withParallelism(t, w, func() {
			res, err := CharacterizeDetection(cfg)
			if err != nil {
				t.Fatalf("width %d: %v", w, err)
			}
			buf, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = buf
				return
			}
			if string(buf) != string(ref) {
				t.Fatalf("width %d result differs from width %d:\n%s\nvs\n%s",
					w, widths[0], buf, ref)
			}
		})
	}
}

// TestSelectivityDeterministicAcrossWidths covers the matrix experiment the
// same way: every (template, signal) cell is seeded independently.
func TestSelectivityDeterministicAcrossWidths(t *testing.T) {
	var ref []byte
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		withParallelism(t, w, func() {
			res, err := Selectivity(3, 15, 9)
			if err != nil {
				t.Fatalf("width %d: %v", w, err)
			}
			buf, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = buf
				return
			}
			if string(buf) != string(ref) {
				t.Fatalf("width %d selectivity differs:\n%s\nvs\n%s", w, buf, ref)
			}
		})
	}
}
