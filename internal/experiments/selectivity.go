package experiments

import (
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/host"
	"repro/internal/wifi"
	"repro/internal/wifib"
	"repro/internal/wimax"
)

// Protocol selectivity: the paper's central "protocol-aware" claim is that
// template-based detection "enables the platform to react to only packets
// of a single wireless standard" (§2.3). This experiment quantifies it: a
// trigger-probability matrix of detector template × transmitted standard.
// The diagonal should approach 1 and the off-diagonal 0 (an energy
// detector, by contrast, fires on everything).

// Standard identifies a transmitted waveform family.
type Standard uint8

// The three standards the platform targets.
const (
	Std80211g Standard = iota
	Std80211b
	Std80216e
)

func (s Standard) String() string {
	switch s {
	case Std80211g:
		return "802.11g"
	case Std80211b:
		return "802.11b"
	case Std80216e:
		return "802.16e"
	default:
		return fmt.Sprintf("Standard(%d)", uint8(s))
	}
}

// AllStandards lists the selectivity matrix axes.
var AllStandards = []Standard{Std80211g, Std80211b, Std80216e}

// SelectivityResult is the trigger-probability matrix: rows are detector
// templates, columns transmitted standards.
type SelectivityResult struct {
	// Pd[tpl][sig] is the per-frame trigger probability.
	Pd [3][3]float64
	// EnergyPd[sig] is the energy-only detector's rate on each standard
	// (the non-selective baseline).
	EnergyPd [3]float64
	// Frames per cell.
	Frames int
}

// sourceRate returns the native sample rate of each standard's waveform.
func sourceRate(s Standard) int {
	switch s {
	case Std80211g:
		return wifi.SampleRate
	case Std80211b:
		return wifib.SampleRate
	default:
		return wimax.ActualSampleRate
	}
}

// template returns the detector template for a standard.
func template(s Standard) ([]complex128, error) {
	switch s {
	case Std80211g:
		return host.WiFiShortTemplate(), nil
	case Std80211b:
		return host.WiFiBTemplate(), nil
	default:
		return host.WiMAXTemplate(wimax.Config{CellID: 1, Segment: 0})
	}
}

// standardFrame generates one frame of the standard at its native rate.
func standardFrame(s Standard, seq int) (dsp.Samples, error) {
	switch s {
	case Std80211g:
		psdu := wifi.AppendFCS(make([]byte, 64))
		return wifi.Modulate(psdu, wifi.TxConfig{
			Rate: wifi.Rate24, ScramblerSeed: uint8(seq%126) + 1,
		})
	case Std80211b:
		return wifib.Modulate(make([]byte, 32), wifib.Rate11, uint8(seq%126)+1)
	default:
		frame, err := wimax.DownlinkFrame(wimax.Config{CellID: 1, Segment: 0}, 4, int64(seq))
		if err != nil {
			return nil, err
		}
		return frame[:8*wimax.SymbolLen], nil
	}
}

// Selectivity measures the full matrix at the given SNR with frames per
// cell. All matrix cells (template × signal, plus the energy-only row) run
// across the experiment worker pool; every cell is seeded independently,
// so the matrix is identical at any pool width.
func Selectivity(frames int, snrDB float64, seed int64) (*SelectivityResult, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("experiments: frames must be positive")
	}
	res := &SelectivityResult{Frames: frames}

	// The templates are generated once, sequentially, and shared read-only
	// by the cells.
	type cell struct {
		ti, si   int // ti == -1 marks the energy-only row
		tpl      []complex128
		frac     float64
		energyDB float64
	}
	var cells []cell
	for ti, tplStd := range AllStandards {
		tpl, err := template(tplStd)
		if err != nil {
			return nil, err
		}
		// The 802.11b SYNC template is purely real (BPSK), so its metric
		// floor against unrelated wideband signals is higher (the Q rail
		// contributes an unrejected noise term); its threshold sits
		// correspondingly higher.
		frac := 0.55
		if tplStd == Std80211b {
			frac = 0.72
		}
		for si := range AllStandards {
			cells = append(cells, cell{ti: ti, si: si, tpl: tpl, frac: frac})
		}
	}
	for si := range AllStandards {
		cells = append(cells, cell{ti: -1, si: si, energyDB: 10})
	}

	err := forEach(len(cells), func(i int) error {
		c := cells[i]
		pd, err := selectivityCell(c.tpl, c.frac, c.energyDB, AllStandards[c.si],
			frames, snrDB, seed)
		if err != nil {
			return err
		}
		if c.ti < 0 {
			res.EnergyPd[c.si] = pd
		} else {
			res.Pd[c.ti][c.si] = pd
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// selectivityCell measures one (template, signal) trigger rate. A nil
// template with energyDB > 0 measures the energy-only baseline.
func selectivityCell(tpl []complex128, thresholdFrac, energyDB float64, sig Standard,
	frames int, snrDB float64, seed int64) (float64, error) {
	cfg := DetectionConfig{
		Template:          tpl,
		ThresholdFrac:     thresholdFrac,
		EnergyThresholdDB: energyDB,
		FramesPerPoint:    frames,
		SNRsDB:            []float64{snrDB},
		Seed:              seed,
	}
	r, counter, _, err := buildDetector(cfg)
	if err != nil {
		return 0, err
	}
	if err := r.SetSourceRate(sourceRate(sig)); err != nil {
		return 0, err
	}
	noise := dsp.NewNoiseSource(noiseFloorPower, seed+int64(sig)*37)
	amp := math.Sqrt(noiseFloorPower * dsp.FromDB(snrDB))
	hits := 0
	for f := 0; f < frames; f++ {
		wave, err := standardFrame(sig, f)
		if err != nil {
			return 0, err
		}
		buf := make(dsp.Samples, len(wave)+2*interFrameGap)
		copy(buf[interFrameGap:], wave)
		scale := amp / math.Sqrt(wave.Power())
		for i := range buf {
			buf[i] = buf[i]*complex(scale, 0) + noise.Sample()
		}
		before := counter()
		if _, err := r.Process(buf); err != nil {
			return 0, err
		}
		if counter() > before {
			hits++
		}
	}
	return float64(hits) / float64(frames), nil
}
