package experiments

import (
	"fmt"

	"repro/internal/telemetry"
	"repro/internal/telemetry/fleet"
	"repro/internal/telemetry/slo"
)

// The fleetobs scenario is the fleet-scale observability drill: N
// independent testbed cells (each its own radio/core/jammer stack) run a
// seeded reaction-latency engagement across the worker pool, every cell's
// telemetry is absorbed into the fleet aggregation plane, and the merged
// snapshot is checked three ways — per-cell SLO verdicts must reconcile
// bit-for-bit with each cell's own recorder, the OpenMetrics scrape must
// stay inside the cell-label cardinality budget, and the JSONL fleet
// ledger must be byte-stable per seed (modulo the wall-clock meta field).

// FleetObsConfig sizes the fleet drill.
type FleetObsConfig struct {
	// Cells is the number of concurrent cells (default 256).
	Cells int
	// FramesPerCell is the per-cell engagement count (default 6).
	FramesPerCell int
	// Seed is the master seed; each cell derives its own.
	Seed int64
	// LabelBudget bounds the `cell` label cardinality of the scrape
	// (default 32).
	LabelBudget int
	// TopK bounds the worst-cell rankings (default 8).
	TopK int
}

// FleetCellOutcome retains one cell's own recorder snapshot — the ground
// truth the fleet plane's figures are reconciled against.
type FleetCellOutcome struct {
	Name     string
	Frames   int
	Snapshot telemetry.Snapshot
}

// FleetObsResult is the fleet drill's outcome.
type FleetObsResult struct {
	Agg      *fleet.Aggregator
	Snap     *fleet.Snapshot
	Budgets  []slo.Budget
	Outcomes []FleetCellOutcome
}

// fleetCellName names cell i; fixed width so lexicographic cell order
// equals numeric order in ledgers and scrapes.
func fleetCellName(i int) string { return fmt.Sprintf("cell-%04d", i) }

// fleetCellSNR spreads the fleet across a deterministic SNR plan: most
// cells sit comfortably above the 10 dB energy threshold (SNR 11–14 dB by
// index), and every 16th cell runs marginal at 10.3 dB — the cells a
// worst-case ranking should surface.
func fleetCellSNR(i int) float64 {
	if i%16 == 7 {
		return 10.3
	}
	return 11 + float64(i%4)
}

// RunFleetObs runs the fleet observability drill. Cell results are
// bit-identical at any worker-pool width: each cell's seeds derive only
// from the config and its own index, and the aggregator's merge is order
// invariant.
func RunFleetObs(cfg FleetObsConfig) (*FleetObsResult, error) {
	if cfg.Cells <= 0 {
		cfg.Cells = 256
	}
	if cfg.FramesPerCell <= 0 {
		cfg.FramesPerCell = 6
	}
	if cfg.LabelBudget <= 0 {
		cfg.LabelBudget = 32
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 8
	}
	budgets := fleet.DefaultBudgets(WiFiFrontEndGroupDelayCycles())
	agg := fleet.New(fleet.Options{
		Budgets:     budgets,
		TopK:        cfg.TopK,
		LabelBudget: cfg.LabelBudget,
	})
	prev := FleetSink()
	SetFleetSink(agg)
	defer SetFleetSink(prev)

	outcomes := make([]FleetCellOutcome, cfg.Cells)
	err := forEach(cfg.Cells, func(i int) error {
		name := fleetCellName(i)
		res, err := MeasureReactionLatency(ReactionConfig{
			Frames: cfg.FramesPerCell,
			SNRdB:  fleetCellSNR(i),
			Seed:   cfg.Seed + int64(i)*9973,
			Cell:   name,
		})
		if err != nil {
			return err
		}
		outcomes[i] = FleetCellOutcome{
			Name:     name,
			Frames:   cfg.FramesPerCell,
			Snapshot: res.Snapshot,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &FleetObsResult{
		Agg:      agg,
		Snap:     agg.Snapshot(),
		Budgets:  budgets,
		Outcomes: outcomes,
	}, nil
}

// Reconcile verifies the fleet plane against every cell's own recorder:
// counters, histogram statistics and buckets, journal health, outcome
// tallies, and the SLO verdict must all match bit for bit. Any divergence
// means the aggregation pipeline invented or lost telemetry.
func (r *FleetObsResult) Reconcile() error {
	for _, o := range r.Outcomes {
		c := r.Snap.CellByName(o.Name)
		if c == nil {
			return fmt.Errorf("fleetobs: cell %s missing from fleet snapshot", o.Name)
		}
		if c.Counters != o.Snapshot.Counters {
			return fmt.Errorf("fleetobs: %s counters diverge: fleet %+v, own %+v",
				o.Name, c.Counters, o.Snapshot.Counters)
		}
		if err := histsEqual(c.Reaction, o.Snapshot.Histogram(telemetry.HistReaction)); err != nil {
			return fmt.Errorf("fleetobs: %s reaction histogram: %w", o.Name, err)
		}
		if err := histsEqual(c.TriggerToRF, o.Snapshot.Histogram(telemetry.HistTriggerToRF)); err != nil {
			return fmt.Errorf("fleetobs: %s trigger→RF histogram: %w", o.Name, err)
		}
		if c.Dropped != o.Snapshot.Dropped {
			return fmt.Errorf("fleetobs: %s dropped %d, own %d", o.Name, c.Dropped, o.Snapshot.Dropped)
		}
		if c.Engagements != o.Snapshot.Engagements {
			return fmt.Errorf("fleetobs: %s engagements %d, own %d",
				o.Name, c.Engagements, o.Snapshot.Engagements)
		}
		if c.Frames != uint64(o.Frames) || c.Jammed != o.Snapshot.Counters.JamTriggers {
			return fmt.Errorf("fleetobs: %s outcome %d/%d, own %d/%d", o.Name,
				c.Jammed, c.Frames, o.Snapshot.Counters.JamTriggers, uint64(o.Frames))
		}
		// The cell's SLO verdict recomputed from its own recorder must be
		// check-for-check identical with the fleet's.
		own := slo.Evaluate(r.Budgets, c.Metrics())
		if own.Pass != c.SLO.Pass || len(own.Checks) != len(c.SLO.Checks) {
			return fmt.Errorf("fleetobs: %s SLO verdict diverges", o.Name)
		}
		for j := range own.Checks {
			if own.Checks[j] != c.SLO.Checks[j] {
				return fmt.Errorf("fleetobs: %s SLO check %s diverges: %+v vs %+v",
					o.Name, own.Checks[j].Budget.Metric, own.Checks[j], c.SLO.Checks[j])
			}
		}
	}
	return nil
}

func histsEqual(a, b telemetry.HistogramSnapshot) error {
	if a.Count != b.Count || a.Sum != b.Sum || a.Min != b.Min || a.Max != b.Max ||
		a.P50 != b.P50 || a.P90 != b.P90 || a.P99 != b.P99 {
		return fmt.Errorf("stats diverge: fleet %+v, own %+v", a, b)
	}
	if len(a.Buckets) != len(b.Buckets) {
		return fmt.Errorf("bucket counts diverge: %d vs %d", len(a.Buckets), len(b.Buckets))
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			return fmt.Errorf("bucket %d diverges: %v vs %v", i, a.Buckets[i], b.Buckets[i])
		}
	}
	return nil
}
