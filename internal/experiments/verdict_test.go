package experiments

import (
	"testing"

	"repro/internal/verdict"
)

// TestVerdictLedgerReconciles is the acceptance check for the verdict
// ledger: the journal-derived Pd / false-alarm figures must equal the
// counter-derived figures bit-for-bit, both within the instrumented run and
// against an uninstrumented CharacterizeDetection run of the identical
// configuration.
func TestVerdictLedgerReconciles(t *testing.T) {
	cfg := DetectionConfig{
		EnergyThresholdDB: 10,
		Kind:              FullFrame,
		FramesPerPoint:    30,
		SNRsDB:            []float64{9}, // marginal: a mix of hits and misses
		Seed:              7,
	}
	out, err := RunVerdictLedger(VerdictConfig{Detection: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reconciled {
		t.Fatalf("counter and ledger figures diverge: counter Pd=%v det/frame=%v FA=%d; ledger Pd=%v det/frame=%v FA=%d",
			out.CounterPd, out.CounterDetectionsPerFrame, out.CounterFalseAlarms,
			out.LedgerPd, out.LedgerDetectionsPerFrame, out.LedgerFalseAlarms)
	}

	// The same configuration through the uninstrumented characterization
	// must produce the identical figures: the stimulus is seeded and the
	// recorder must not perturb the datapath.
	det, err := CharacterizeDetection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if det.Points[0].Pd != out.LedgerPd {
		t.Errorf("ledger Pd = %v, characterization Pd = %v", out.LedgerPd, det.Points[0].Pd)
	}
	if det.Points[0].DetectionsPerFrame != out.LedgerDetectionsPerFrame {
		t.Errorf("ledger det/frame = %v, characterization = %v",
			out.LedgerDetectionsPerFrame, det.Points[0].DetectionsPerFrame)
	}
	if det.FalseAlarmsPerSec != out.FalseAlarmsPerSec {
		t.Errorf("ledger FA/s = %v, characterization FA/s = %v",
			out.FalseAlarmsPerSec, det.FalseAlarmsPerSec)
	}

	// Ledger internal consistency: the class partition covers every packet.
	s := out.Ledger.Summary
	if s.TP+s.FN+s.Late != s.Packets || s.Packets != cfg.FramesPerPoint {
		t.Errorf("class partition %d+%d+%d does not cover %d packets", s.TP, s.FN, s.Late, s.Packets)
	}
	var rows, fpRows int
	for _, rec := range out.Ledger.Records {
		if rec.Packet == -1 {
			fpRows++
			if rec.Class != verdict.FP {
				t.Errorf("packetless row with class %v", rec.Class)
			}
		} else {
			rows++
		}
	}
	if rows != s.Packets || fpRows != s.FPEngagements {
		t.Errorf("ledger rows %d/%d, want %d packets / %d FP", rows, fpRows, s.Packets, s.FPEngagements)
	}
	if s.Pd == 0 || s.Pd == 1 {
		t.Logf("note: Pd = %v at SNR %v — marginal point no longer marginal", s.Pd, out.SNRdB)
	}
}
