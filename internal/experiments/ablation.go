package experiments

import (
	"fmt"
	"math"
	"math/cmplx"
	"time"

	"repro/internal/dsp"
	"repro/internal/fixed"
	"repro/internal/host"
	"repro/internal/impair"
	"repro/internal/iperf"
	"repro/internal/jammer"
	"repro/internal/testbed"
	"repro/internal/wifi"
	"repro/internal/xcorr"
)

// Ablations quantify the design choices DESIGN.md calls out: the 1-bit
// sign correlator versus full precision, the fixed 64-sample window versus
// longer ones, the energy window length, detector fusion, template rate
// correction, and jamming waveforms.

// softCorrelator is a full-precision sliding matched filter used as the
// ablation baseline against the hardware sign-bit design. It is not part of
// the FPGA model.
type softCorrelator struct {
	tpl  []complex128
	hist []complex128
	pos  int
	warm int
}

func newSoftCorrelator(tpl []complex128) *softCorrelator {
	t := append([]complex128(nil), tpl...)
	return &softCorrelator{tpl: t, hist: make([]complex128, len(t))}
}

func (s *softCorrelator) process(x complex128) float64 {
	s.hist[s.pos] = x
	s.pos = (s.pos + 1) % len(s.hist)
	if s.warm < len(s.hist) {
		s.warm++
		return 0
	}
	var acc complex128
	idx := s.pos
	for k := range s.tpl {
		acc += s.hist[idx] * cmplx.Conj(s.tpl[k])
		idx++
		if idx == len(s.hist) {
			idx = 0
		}
	}
	// Normalized magnitude-squared (template energy normalization keeps
	// thresholds comparable across lengths).
	var te float64
	for _, t := range s.tpl {
		te += real(t)*real(t) + imag(t)*imag(t)
	}
	m := real(acc)*real(acc) + imag(acc)*imag(acc)
	return m / te
}

// CorrelatorComparison is one ablation row: detection probability of a
// single long preamble at the given SNR for several correlator variants.
type CorrelatorComparison struct {
	SNRdB               float64
	HardwarePd          float64 // 1-bit signs × 3-bit coeffs, 64 taps
	FullPrecisionPd     float64 // float matched filter, 64 taps
	FullPrecision128Pd  float64 // float matched filter, 128 taps
	RawRateTemplatePd   float64 // hardware correlator, uncorrected 20 MSPS template
	HardwareThreshold   uint32
	SoftThresholdFactor float64
}

// AblationCorrelators measures single-long-preamble detection at a sweep of
// SNRs for the hardware design and its ablation variants.
func AblationCorrelators(snrsDB []float64, frames int, seed int64) ([]CorrelatorComparison, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("experiments: frames must be positive")
	}
	tpl64 := host.WiFiLongTemplate()
	tplRaw := host.WiFiLongTemplateRawRate()
	// 128-tap template: the resampled LTS repeated (the real long preamble
	// transmits the symbol twice, so a 128-tap window is physically
	// available at higher resource cost — the §5 limitation discussion).
	lts := wifi.LongTrainingSymbol()
	both := append(lts.Clone(), lts...)
	tpl128 := dsp.Resample(both, 5, 4)
	if len(tpl128) > 128 {
		tpl128 = tpl128[:128]
	}

	iC, qC := xcorr.CoefficientsFromTemplate(tpl64)
	hwThresh := xcorr.ThresholdForFARate(iC, qC, 0.52)
	iR, qR := xcorr.CoefficientsFromTemplate(tplRaw)
	rawThresh := xcorr.ThresholdForFARate(iR, qR, 0.52)
	// Soft thresholds: same χ² logic — for the normalized soft metric under
	// noise of power Pn, E[m] = Pn, and the tail is exp(-T/Pn).
	softFactor := math.Log(float64(fpga25M()) / 0.52)

	out := make([]CorrelatorComparison, len(snrsDB))
	err := forEach(len(snrsDB), func(oi int) error {
		snr := snrsDB[oi]
		noise := dsp.NewNoiseSource(noiseFloorPower, seed+int64(snr*10))
		amp := math.Sqrt(noiseFloorPower * dsp.FromDB(snr))

		row := CorrelatorComparison{
			SNRdB: snr, HardwareThreshold: hwThresh, SoftThresholdFactor: softFactor,
		}
		var hwHits, fpHits, fp128Hits, rawHits int
		for f := 0; f < frames; f++ {
			// The real preamble transmits two LTS copies; the 64-tap
			// detectors see a single copy per §3.2's pseudo-frames, while
			// the 128-tap variant needs both.
			wave := dsp.Resample(append(lts.Clone(), lts...), 5, 4)
			buf := make(dsp.Samples, len(wave)+2*interFrameGap)
			copy(buf[interFrameGap:], wave)
			scale := amp / math.Sqrt(wave.Power())
			for i := range buf {
				buf[i] = buf[i]*complex(scale, 0) + noise.Sample()
			}

			hw := xcorr.New()
			if err := hw.SetCoefficients(iC, qC); err != nil {
				return err
			}
			hw.SetThreshold(hwThresh)
			raw := xcorr.New()
			if err := raw.SetCoefficients(iR, qR); err != nil {
				return err
			}
			raw.SetThreshold(rawThresh)
			soft := newSoftCorrelator(tpl64)
			soft128 := newSoftCorrelator(tpl128)
			softThresh := noiseFloorPower * softFactor
			var hwHit, fpHit, fp128Hit, rawHit bool
			for _, s := range buf {
				q := fixed.Quantize(s)
				if _, tr := hw.Process(q); tr {
					hwHit = true
				}
				if _, tr := raw.Process(q); tr {
					rawHit = true
				}
				if soft.process(s) > softThresh {
					fpHit = true
				}
				if soft128.process(s) > softThresh {
					fp128Hit = true
				}
			}
			if hwHit {
				hwHits++
			}
			if fpHit {
				fpHits++
			}
			if fp128Hit {
				fp128Hits++
			}
			if rawHit {
				rawHits++
			}
		}
		n := float64(frames)
		row.HardwarePd = float64(hwHits) / n
		row.FullPrecisionPd = float64(fpHits) / n
		row.FullPrecision128Pd = float64(fp128Hits) / n
		row.RawRateTemplatePd = float64(rawHits) / n
		out[oi] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func fpga25M() int { return 25_000_000 }

// EnergyWindowPoint is one row of the energy-window ablation: worst-case
// detection latency and detection probability for a given moving-sum
// length.
type EnergyWindowPoint struct {
	Window    int
	LatencyUS float64 // worst-case fill latency in µs
	Pd        float64 // Pd for a 12 dB burst at the 10 dB threshold
}

// AblationEnergyWindow evaluates moving-sum lengths around the hardware's
// N=32 with a software model of the same recurrence.
func AblationEnergyWindow(windows []int, bursts int, seed int64) ([]EnergyWindowPoint, error) {
	if bursts <= 0 {
		return nil, fmt.Errorf("experiments: bursts must be positive")
	}
	out := make([]EnergyWindowPoint, len(windows))
	err := forEach(len(windows), func(oi int) error {
		w := windows[oi]
		if w < 1 {
			return fmt.Errorf("experiments: window %d invalid", w)
		}
		noise := dsp.NewNoiseSource(noiseFloorPower, seed+int64(w))
		amp := math.Sqrt(noiseFloorPower * dsp.FromDB(12))
		hits := 0
		for b := 0; b < bursts; b++ {
			buf := make(dsp.Samples, 1024)
			for i := 400; i < 800; i++ {
				buf[i] = complex(amp, 0)
			}
			noise.AddTo(buf)
			if softEnergyDetect(buf, w, 10) {
				hits++
			}
		}
		out[oi] = EnergyWindowPoint{
			Window:    w,
			LatencyUS: float64(w) / 25, // w samples at 25 MSPS
			Pd:        float64(hits) / float64(bursts),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// softEnergyDetect models the differentiator recurrence with an arbitrary
// window in floating point.
func softEnergyDetect(x dsp.Samples, window int, thresholdDB float64) bool {
	th := dsp.FromDB(thresholdDB)
	sum := 0.0
	hist := make([]float64, window)
	delay := make([]float64, 64)
	pos, dpos, seen := 0, 0, 0
	for _, v := range x {
		e := real(v)*real(v) + imag(v)*imag(v)
		sum += e - hist[pos]
		hist[pos] = e
		pos = (pos + 1) % window
		ref := delay[dpos]
		delay[dpos] = sum
		dpos = (dpos + 1) % 64
		seen++
		if seen < window+64 {
			continue
		}
		if ref > 0 && sum > ref*th {
			return true
		}
	}
	return false
}

// WaveformAblationRow compares jamming waveform presets at equal gain.
type WaveformAblationRow struct {
	Waveform jammer.Waveform
	PRR      float64
	SIRdB    float64
}

// AblationWaveforms runs the iperf link against each waveform preset with
// identical trigger/uptime settings and per-waveform gain chosen so each
// preset radiates unit power: the replay buffer holds the victim's signal
// as received through the −32.8 dB client→jammer path, so it needs that
// much TX gain to reach the same power as the synthetic waveforms.
func AblationWaveforms(packets int, attDB float64, seed int64) ([]WaveformAblationRow, error) {
	tone := dsp.Tone(1024, 2e6, 25e6)
	replayGain := 1 / testbed.New().PathGain(testbed.PortClient, testbed.PortJammerRX)
	waveforms := []jammer.Waveform{jammer.WaveformWGN, jammer.WaveformReplay, jammer.WaveformHostStream}
	out := make([]WaveformAblationRow, len(waveforms))
	err := forEach(len(waveforms), func(oi int) error {
		w := waveforms[oi]
		link := iperf.DefaultLink()
		link.Packets = packets
		link.PayloadBytes = 600
		link.Seed = seed
		gain := 1.0
		var delay time.Duration
		if w == jammer.WaveformReplay {
			gain = replayGain
			// Replay transmits whatever the capture buffer last heard; an
			// immediate burst would replay pre-frame silence, so delay past
			// the preamble to fill the 512-sample buffer with real signal
			// (a protocol-replay attack on the payload).
			delay = 20 * time.Microsecond
		}
		cfg := iperf.JammerConfig{
			Mode:          iperf.JamReactive,
			VariableAttDB: attDB,
			Personality: host.Personality{
				Waveform: w,
				Uptime:   100 * time.Microsecond,
				Delay:    delay,
				Gain:     gain,
			},
		}
		if w == jammer.WaveformHostStream {
			cfg.HostStream = tone
		}
		res, err := iperf.Run(link, cfg)
		if err != nil {
			return err
		}
		out[oi] = WaveformAblationRow{Waveform: w, PRR: res.PRR, SIRdB: res.SIRdB}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ImpairmentRow is one row of the front-end impairment ablation: detection
// probability of full WiFi frames at a fixed SNR under increasing hardware
// realism.
type ImpairmentRow struct {
	Label string
	Pd    float64
}

// AblationImpairments measures how hardware impairments shift the Fig. 6
// operating point: the same long-preamble detector at snrDB, fed frames
// through increasingly realistic front ends. This quantifies the documented
// gap between the ideal simulation and the paper's measured curves.
func AblationImpairments(frames int, snrDB float64, seed int64) ([]ImpairmentRow, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("experiments: frames must be positive")
	}
	cases := []struct {
		label string
		cfg   impair.Config
	}{
		{"ideal", impair.Config{}},
		{"cfo-6kHz", impair.Config{CFOHz: 6000, SampleRate: wifi.SampleRate}},
		{"iq-1dB-5deg", impair.Config{IQGainDB: 1, IQPhaseDeg: 5}},
		{"typical-usrp", impair.TypicalUSRP(2.484e9, wifi.SampleRate, seed)},
		// Uncalibrated DC offset: the mixer-leakage spur dwarfs a weak
		// signal and freezes the 1-bit slicer — the correlator's sharpest
		// hardware sensitivity.
		{"dc-uncalibrated", impair.Config{DCOffset: 2e-3}},
		{"harsh", impair.Config{
			CFOHz: 20000, SampleRate: wifi.SampleRate,
			IQGainDB: 1.5, IQPhaseDeg: 8, DCOffset: 5e-3,
			PhaseNoiseRadRMS: 0.01, ClockOffsetPPM: 20, Seed: seed,
		}},
	}
	out := make([]ImpairmentRow, len(cases))
	err := forEach(len(cases), func(oi int) error {
		c := cases[oi]
		cfg := DetectionConfig{
			Template:       host.WiFiLongTemplate(),
			FATargetPerSec: 0.52,
			Kind:           FullFrame,
			FramesPerPoint: frames,
			SNRsDB:         []float64{snrDB},
			Seed:           seed,
			Impairments:    c.cfg,
		}
		res, err := CharacterizeDetection(cfg)
		if err != nil {
			return err
		}
		out[oi] = ImpairmentRow{Label: c.label, Pd: res.Points[0].Pd}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SoftDecisionRow compares hard and soft receivers under a jam burst of
// growing length at fixed burst power.
type SoftDecisionRow struct {
	BurstSymbols int
	HardFER      float64
	SoftFER      float64
}

// AblationSoftDecision measures frame error rate for the hard-decision
// receiver (what the framework's victims run) versus a soft-decision
// upgrade, as a jam burst covers more OFDM symbols — the "improved victim"
// study: how much more jamming does a better receiver force the attacker
// to buy?
func AblationSoftDecision(burstSymbols []int, trials int, seed int64) ([]SoftDecisionRow, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("experiments: trials must be positive")
	}
	out := make([]SoftDecisionRow, len(burstSymbols))
	err := forEach(len(burstSymbols), func(oi int) error {
		nb := burstSymbols[oi]
		if nb < 0 {
			return fmt.Errorf("experiments: negative burst length")
		}
		hardErr, softErr := 0, 0
		for tr := 0; tr < trials; tr++ {
			psdu := make([]byte, 300)
			for i := range psdu {
				psdu[i] = byte((tr + i) * 131)
			}
			tx, err := wifi.Modulate(psdu, wifi.TxConfig{
				Rate: wifi.Rate24, ScramblerSeed: uint8(tr%126) + 1,
			})
			if err != nil {
				return err
			}
			rx := tx.Clone()
			jam := dsp.NewNoiseSource(0.12, seed+int64(tr)+int64(nb)*977)
			start := 400 + 160 // after preamble+SIGNAL, into the data
			for i := start; i < start+nb*wifi.SymbolLen && i < len(rx); i++ {
				rx[i] += jam.Sample()
			}
			dsp.NewNoiseSource(1e-4, seed+int64(tr)+5000).AddTo(rx)

			if res, err := wifi.Demodulate(rx, 0, 300); err != nil || !equalBytes(res.PSDU, psdu) {
				hardErr++
			}
			if res, err := wifi.DemodulateSoft(rx, 0, 300); err != nil || !equalBytes(res.PSDU, psdu) {
				softErr++
			}
		}
		out[oi] = SoftDecisionRow{
			BurstSymbols: nb,
			HardFER:      float64(hardErr) / float64(trials),
			SoftFER:      float64(softErr) / float64(trials),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
