package experiments

import "testing"

func TestRunFlowPipe(t *testing.T) {
	res, err := RunFlowPipe(FlowPipeConfig{
		TotalSamples:  60_000,
		VerifySamples: 30_000,
		Chunks:        []int{64, 1024},
		Seed:          5,
		MinDuration:   1, // one timed repetition per scheduler
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.SyncMsps <= 0 || p.PipelineMsps <= 0 {
			t.Fatalf("chunk %d: non-positive throughput %+v", p.Chunk, p)
		}
		if p.Ratio <= 0 {
			t.Fatalf("chunk %d: ratio not computed", p.Chunk)
		}
	}
	if res.VerifiedSamples != 30_000 {
		t.Fatalf("verified %d samples, want 30000", res.VerifiedSamples)
	}
	if best := res.Best(); best.PipelineMsps < res.Points[0].PipelineMsps &&
		best.PipelineMsps < res.Points[1].PipelineMsps {
		t.Fatal("Best returned neither point")
	}
}

func TestRunFlowPipeRejectsBadChunk(t *testing.T) {
	if _, err := RunFlowPipe(FlowPipeConfig{Chunks: []int{0}}); err == nil {
		t.Fatal("chunk 0 accepted")
	}
}
