package experiments

import (
	"math"
	"testing"
	"time"

	"repro/internal/iperf"
	"repro/internal/testbed"
)

// Small budgets keep the unit tests quick; cmd/experiments and the benches
// run the full-size versions.
const (
	testFrames  = 60
	testPackets = 10
)

func TestFig6SingleVsFullFrames(t *testing.T) {
	single, err := CharacterizeDetection(Fig6Config(SingleLongPreamble, false, testFrames))
	if err != nil {
		t.Fatal(err)
	}
	full, err := CharacterizeDetection(Fig6Config(FullFrame, false, testFrames))
	if err != nil {
		t.Fatal(err)
	}
	// Pd must be monotone-ish in SNR and full frames must beat single
	// preambles in the transition region (two long preambles per frame).
	for i := range single.Points {
		s, f := single.Points[i], full.Points[i]
		if f.Pd+0.15 < s.Pd {
			t.Errorf("SNR %v: full-frame Pd %v below single-preamble Pd %v",
				s.SNRdB, f.Pd, s.Pd)
		}
	}
	last := len(full.Points) - 1
	if full.Points[last].Pd < 0.99 {
		t.Errorf("full-frame Pd at %v dB = %v, want ~1",
			full.Points[last].SNRdB, full.Points[last].Pd)
	}
	if single.Points[0].Pd > 0.3 {
		t.Errorf("single-preamble Pd at %v dB = %v, want low",
			single.Points[0].SNRdB, single.Points[0].Pd)
	}
}

func TestFig6ThresholdTradeoff(t *testing.T) {
	// The tighter false-alarm target (0.083/s) must not out-detect the
	// looser one (0.52/s) in the transition region.
	loose, err := CharacterizeDetection(Fig6Config(SingleLongPreamble, false, testFrames))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := CharacterizeDetection(Fig6Config(SingleLongPreamble, true, testFrames))
	if err != nil {
		t.Fatal(err)
	}
	for i := range loose.Points {
		if tight.Points[i].Pd > loose.Points[i].Pd+0.1 {
			t.Errorf("SNR %v: tight threshold Pd %v above loose %v",
				loose.Points[i].SNRdB, tight.Points[i].Pd, loose.Points[i].Pd)
		}
	}
}

func TestFig7ShortPreambleStrong(t *testing.T) {
	res, err := CharacterizeDetection(Fig7Config(testFrames))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: >90% at -3 dB, >99% above 3 dB. Our idealized front end meets
	// those marks within a couple of dB; hold it to the 0 dB/4 dB points.
	for _, p := range res.Points {
		if p.SNRdB >= 0 && p.Pd < 0.9 {
			t.Errorf("short-preamble Pd at %v dB = %v, want > 0.9", p.SNRdB, p.Pd)
		}
		if p.SNRdB >= 4 && p.Pd < 0.99 {
			t.Errorf("short-preamble Pd at %v dB = %v, want > 0.99", p.SNRdB, p.Pd)
		}
	}
}

func TestFig8EnergyShape(t *testing.T) {
	res, err := CharacterizeDetection(Fig8Config(testFrames))
	if err != nil {
		t.Fatal(err)
	}
	var low, high DetectionPoint
	excessive := false
	for _, p := range res.Points {
		if p.SNRdB == -6 {
			low = p
		}
		if p.SNRdB == 14 {
			high = p
		}
		if p.DetectionsPerFrame > 1.05 {
			excessive = true
		}
	}
	if low.Pd != 0 {
		t.Errorf("energy Pd below the noise floor = %v, want 0", low.Pd)
	}
	if high.Pd < 0.99 {
		t.Errorf("energy Pd at 14 dB = %v, want ~1", high.Pd)
	}
	if math.Abs(high.DetectionsPerFrame-1) > 0.05 {
		t.Errorf("detections/frame at 14 dB = %v, want exactly 1", high.DetectionsPerFrame)
	}
	if !excessive {
		t.Error("no excessive-detection region found in the transition band")
	}
	if res.FalseAlarmsPerSec != 0 {
		t.Errorf("energy FA rate %v/s, paper measures 0", res.FalseAlarmsPerSec)
	}
}

func TestCharacterizeValidation(t *testing.T) {
	if _, err := CharacterizeDetection(DetectionConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := Fig8Config(1)
	cfg.SNRsDB = nil
	if _, err := CharacterizeDetection(cfg); err == nil {
		t.Error("no SNR points accepted")
	}
	cfg = Fig8Config(1)
	cfg.EnergyThresholdDB = 0
	if _, err := CharacterizeDetection(cfg); err == nil {
		t.Error("no detector armed accepted")
	}
}

func TestTable1MatchesTestbed(t *testing.T) {
	tab := Table1()
	if tab[0][1] != -51.0 || tab[2][0] != -25.2 {
		t.Errorf("Table1 = %v", tab)
	}
	if !math.IsNaN(tab[3][4]) {
		t.Error("isolated pair should be NaN")
	}
	_ = testbed.NumPorts
}

func TestFig5Timelines(t *testing.T) {
	tl := Fig5(100 * time.Microsecond)
	if tl.TxcorrDet != 2560*time.Nanosecond || tl.TenDet != 1280*time.Nanosecond {
		t.Errorf("detection timelines %+v", tl)
	}
	if tl.TInit != 80*time.Nanosecond {
		t.Errorf("TInit = %v", tl.TInit)
	}
	// Paper: "less than 1.36µs if using energy detection, and 2.64µs using
	// cross-correlation detection".
	if tl.TRespEnergy > 1360*time.Nanosecond || tl.TRespXCorr > 2640*time.Nanosecond {
		t.Errorf("response times %+v", tl)
	}
	// Clamping path for absurd uptimes.
	tl = Fig5(0)
	if tl.TJam <= 0 {
		t.Errorf("TJam = %v", tl.TJam)
	}
}

func TestResourcesReport(t *testing.T) {
	r := Resources()
	if r.XCorr != "Slices:2613 FFs:2647 BRAMs:12 LUTs:2818 IOBs:0 DSP_48:2" {
		t.Errorf("xcorr resources %q", r.XCorr)
	}
	if r.Energy != "Slices:1262 FFs:1313 BRAMs:0 LUTs:2513 IOBs:0 DSP_48:6" {
		t.Errorf("energy resources %q", r.Energy)
	}
	if r.Total == "" || r.Jammer == "" {
		t.Error("missing totals")
	}
}

func TestReconfigLatency(t *testing.T) {
	p, d, err := ReconfigLatency()
	if err != nil {
		t.Fatal(err)
	}
	// Personality: 4 registers × 300 ns.
	if p != 1200*time.Nanosecond {
		t.Errorf("personality switch %v", p)
	}
	// Full detector: 15 correlator + 3 energy registers.
	if d != 5400*time.Nanosecond {
		t.Errorf("detector reprogram %v", d)
	}
}

func TestFig12WiMAXOperatingPoint(t *testing.T) {
	res, err := Fig12WiMAX(30, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: xcorr alone misses ~2/3; combined detects 100% with bursts in
	// 1:1 correspondence with frames.
	if res.XCorrOnlyPd < 0.1 || res.XCorrOnlyPd > 0.6 {
		t.Errorf("xcorr-only Pd = %v, want ~1/3", res.XCorrOnlyPd)
	}
	if res.CombinedPd != 1 {
		t.Errorf("combined Pd = %v, want 1.0", res.CombinedPd)
	}
	if !res.OneToOne {
		t.Errorf("bursts %d vs frames %d: not 1:1", res.JamBursts, res.Frames)
	}
	if _, err := Fig12WiMAX(0, 1); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestJamSweepOrdering(t *testing.T) {
	// Tiny sweep checking the headline result: at a mid-power point the
	// continuous jammer is deadliest, 0.1 ms next, 0.01 ms gentlest.
	mk := func(mode iperf.JamMode, up time.Duration) JamSweepConfig {
		cfg := DefaultJamSweep(mode, up)
		cfg.Packets = testPackets
		cfg.PayloadBytes = 500
		cfg.Attenuations = []float64{18}
		return cfg
	}
	cont, err := RunJamSweep(mk(iperf.JamContinuous, 0))
	if err != nil {
		t.Fatal(err)
	}
	long, err := RunJamSweep(mk(iperf.JamReactive, 100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	short, err := RunJamSweep(mk(iperf.JamReactive, 10*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	c, l, s := cont[0].Result, long[0].Result, short[0].Result
	if c.PRR > l.PRR+0.01 {
		t.Errorf("continuous PRR %v above 0.1ms PRR %v", c.PRR, l.PRR)
	}
	if l.PRR > s.PRR+0.2 {
		t.Errorf("0.1ms PRR %v above 0.01ms PRR %v", l.PRR, s.PRR)
	}
	if !c.LinkDropped {
		t.Error("continuous jammer at 18 dB attenuation should trip CCA")
	}
}

func TestBaselineBandwidthInPaperRange(t *testing.T) {
	bw, err := BaselineBandwidthKbps(30, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~29 Mbps achieved of the 54 Mbps offered.
	if bw < 25000 || bw > 34000 {
		t.Errorf("baseline bandwidth %v Kbps, want 25-34 Mbps", bw)
	}
}

func TestAblationCorrelators(t *testing.T) {
	rows, err := AblationCorrelators([]float64{-4, 4}, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Full precision must dominate the 1-bit hardware, 128 taps must
		// dominate 64, and the uncorrected-rate template must be useless.
		if r.FullPrecisionPd+0.1 < r.HardwarePd {
			t.Errorf("SNR %v: full precision %v below hardware %v",
				r.SNRdB, r.FullPrecisionPd, r.HardwarePd)
		}
		if r.FullPrecision128Pd+0.1 < r.FullPrecisionPd {
			t.Errorf("SNR %v: 128 taps %v below 64 taps %v",
				r.SNRdB, r.FullPrecision128Pd, r.FullPrecisionPd)
		}
		if r.RawRateTemplatePd > 0.1 {
			t.Errorf("SNR %v: raw-rate template Pd %v, should collapse",
				r.SNRdB, r.RawRateTemplatePd)
		}
	}
	if _, err := AblationCorrelators([]float64{0}, 0, 1); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestAblationEnergyWindow(t *testing.T) {
	rows, err := AblationEnergyWindow([]int{8, 32, 64}, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].LatencyUS != 32.0/25 {
		t.Errorf("N=32 latency %v µs, want 1.28", rows[1].LatencyUS)
	}
	for _, r := range rows {
		if r.Pd < 0.9 {
			t.Errorf("window %d: Pd %v for a 12 dB burst", r.Window, r.Pd)
		}
	}
	if _, err := AblationEnergyWindow([]int{0}, 10, 1); err == nil {
		t.Error("invalid window accepted")
	}
	if _, err := AblationEnergyWindow([]int{8}, 0, 1); err == nil {
		t.Error("zero bursts accepted")
	}
}

func TestAblationWaveforms(t *testing.T) {
	rows, err := AblationWaveforms(6, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d waveform rows", len(rows))
	}
	// At full power (5 dB pad) every waveform should bite; WGN at least
	// must devastate the link.
	if rows[0].PRR > 0.35 {
		t.Errorf("WGN PRR %v at near-full power", rows[0].PRR)
	}
}

func TestSelectivityMatrix(t *testing.T) {
	res, err := Selectivity(25, 15, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range AllStandards {
		if res.Pd[i][i] < 0.9 {
			t.Errorf("%v template misses its own standard: Pd %.2f",
				AllStandards[i], res.Pd[i][i])
		}
		for j := range AllStandards {
			if i != j && res.Pd[i][j] > 0.1 {
				t.Errorf("%v template cross-triggers on %v: Pd %.2f",
					AllStandards[i], AllStandards[j], res.Pd[i][j])
			}
		}
		if res.EnergyPd[i] < 0.9 {
			t.Errorf("energy detector misses %v: Pd %.2f", AllStandards[i], res.EnergyPd[i])
		}
	}
	if _, err := Selectivity(0, 15, 1); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestAblationImpairments(t *testing.T) {
	rows, err := AblationImpairments(60, -3, 5)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, r := range rows {
		byLabel[r.Label] = r.Pd
	}
	if byLabel["ideal"] < 0.3 {
		t.Errorf("ideal Pd %v unexpectedly low", byLabel["ideal"])
	}
	// The calibrated-USRP front end must cost detection probability, and
	// uncorrected DC must kill the sign-bit correlator outright.
	if byLabel["typical-usrp"] > byLabel["ideal"] {
		t.Errorf("typical-usrp Pd %v above ideal %v", byLabel["typical-usrp"], byLabel["ideal"])
	}
	if byLabel["dc-uncalibrated"] > 0.05 {
		t.Errorf("uncalibrated DC offset Pd %v, want ~0 (frozen slicer)", byLabel["dc-uncalibrated"])
	}
	if _, err := AblationImpairments(0, -3, 1); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestAblationSoftDecision(t *testing.T) {
	rows, err := AblationSoftDecision([]int{0, 4}, 25, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].HardFER != 0 || rows[0].SoftFER != 0 {
		t.Errorf("clean frames erred: %+v", rows[0])
	}
	// Under the burst, the soft receiver must do no worse than hard.
	if rows[1].SoftFER > rows[1].HardFER+0.05 {
		t.Errorf("soft FER %v above hard FER %v under burst", rows[1].SoftFER, rows[1].HardFER)
	}
	if _, err := AblationSoftDecision([]int{1}, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := AblationSoftDecision([]int{-1}, 5, 1); err == nil {
		t.Error("negative burst accepted")
	}
}
