package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
	"repro/internal/telemetry/fleet"
)

// The experiment harness fans independent work items — SNR points, sweep
// attenuations, selectivity cells, ablation rows — across a bounded worker
// pool. Every item builds its own radio/core stack and derives its RNG
// seeds purely from the experiment config and the item's own parameters
// (e.g. cfg.Seed+int64(snr*100)), so the results are bit-identical to a
// sequential run at any pool width; only wall-clock time changes.

var (
	parMu       sync.RWMutex
	parallelism = runtime.GOMAXPROCS(0)
)

// SetParallelism sets the worker fan-out of the experiment harness. Width 1
// runs every experiment strictly sequentially; values below 1 restore the
// default of GOMAXPROCS.
func SetParallelism(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	parMu.Lock()
	parallelism = n
	parMu.Unlock()
}

// Parallelism returns the current worker fan-out.
func Parallelism() int {
	parMu.RLock()
	defer parMu.RUnlock()
	return parallelism
}

// fleetSink, when installed, receives per-cell telemetry from every
// instrumented sweep item the worker pool runs: an item that names its
// cell (e.g. ReactionConfig.Cell) absorbs its recorder snapshot and
// outcome tallies into the fleet aggregation plane on completion. The
// sink is process-wide — the pool is — and items report concurrently from
// every worker, which the aggregator's sharded cells are built for.
var fleetSink atomic.Pointer[fleet.Aggregator]

// SetFleetSink installs (or, with nil, removes) the fleet aggregator that
// collects per-cell telemetry from instrumented sweep items.
func SetFleetSink(a *fleet.Aggregator) { fleetSink.Store(a) }

// FleetSink returns the installed fleet aggregator (nil when none).
func FleetSink() *fleet.Aggregator { return fleetSink.Load() }

// reportCell absorbs one finished item's telemetry into the named fleet
// cell when a sink is installed. frames/jammed carry the item's
// ground-truth detection outcome for the FN-rate SLO.
func reportCell(cell string, snap telemetry.Snapshot, frames, jammed uint64) {
	a := FleetSink()
	if a == nil || cell == "" {
		return
	}
	c := a.Cell(cell)
	c.Absorb(snap)
	c.AddOutcome(frames, jammed)
}

// forEach runs fn(i) for every i in [0, n) across the worker pool and
// returns the error of the lowest failing index (nil when all succeed).
// fn must write its result into its own index of a pre-sized output slice;
// with that discipline the assembled output is identical at any pool width.
func forEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	idx := make(chan int)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
