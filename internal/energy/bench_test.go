package energy

import (
	"testing"

	"repro/internal/fixed"
)

// benchInput alternates quiet and loud stretches so both threshold
// comparators and the delay-line compare stay busy.
func benchInput(n int) []fixed.IQ {
	out := make([]fixed.IQ, n)
	for i := range out {
		amp := int16(50)
		if i%512 >= 256 {
			amp = 8000
		}
		out[i] = fixed.IQ{I: amp, Q: -amp / 2}
	}
	return out
}

func benchDiff(tb testing.TB) *Differentiator {
	tb.Helper()
	d := New()
	if err := d.SetHighThresholdDB(10); err != nil {
		tb.Fatal(err)
	}
	if err := d.SetLowThresholdDB(6); err != nil {
		tb.Fatal(err)
	}
	return d
}

// BenchmarkProcess measures the per-sample entry point.
func BenchmarkProcess(b *testing.B) {
	d := benchDiff(b)
	in := benchInput(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Process(in[i%len(in)])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Msamples/s")
}

// BenchmarkProcessBlock measures the block fast path used by
// core.ProcessBlock, which hoists the threshold-enable loads out of the
// loop.
func BenchmarkProcessBlock(b *testing.B) {
	d := benchDiff(b)
	in := benchInput(4096)
	high := make([]bool, len(in))
	low := make([]bool, len(in))
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		d.ProcessBlock(in, high, low)
		n += len(in)
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds()/1e6, "Msamples/s")
}

// TestProcessBlockZeroAllocs pins the block path's zero-allocation
// guarantee.
func TestProcessBlockZeroAllocs(t *testing.T) {
	d := benchDiff(t)
	in := benchInput(1024)
	high := make([]bool, len(in))
	low := make([]bool, len(in))
	allocs := testing.AllocsPerRun(10, func() {
		d.ProcessBlock(in, high, low)
	})
	if allocs != 0 {
		t.Errorf("ProcessBlock: %.1f allocs per 1024-sample block, want 0", allocs)
	}
}
