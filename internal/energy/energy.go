// Package energy implements the energy differentiator of the custom DSP
// core (paper §2.3, Fig. 4): a coarse-grained detector that compares the
// energy of incoming samples against the recent past to detect energy rises
// and falls on a band of interest, usable when no preamble template is known.
//
// The hardware keeps a running sum of the last N=32 energy readings
//
//	y[n] = y[n-1] + x[n] - x[n-N]
//
// where x[n] = I² + Q² of the incoming quantized sample, and compares y[n]
// against its own value 64 samples earlier (the Z⁻⁶⁴ path in Fig. 4) scaled
// by user thresholds: an energy-high trigger fires when the current sum
// exceeds the delayed sum times the high threshold, and an energy-low
// trigger when the delayed sum exceeds the current sum times the low
// threshold. Thresholds are configurable between 3 dB and 30 dB.
package energy

import (
	"fmt"

	"repro/internal/dsp"
	"repro/internal/fixed"
	"repro/internal/fpga"
)

// WindowLength is the moving-sum length of the hardware design: 32 samples.
const WindowLength = 32

// CompareDelay is the Z⁻⁶⁴ delay between the current and reference energy
// sums.
const CompareDelay = 64

// DetectionCycles is the worst-case latency from the start of an energy step
// to the trigger: the 32-sample window must fill with the new level, i.e.
// 32 samples × 4 cycles = 128 cycles = 1.28 µs (paper §3.1: Ten_det).
const DetectionCycles = WindowLength * fpga.CyclesPerSample

// Threshold limits in dB (paper §2.3: "any energy level change between 3dB
// and 30dB").
const (
	MinThresholdDB = 3.0
	MaxThresholdDB = 30.0
)

// noiseFloorSum keeps the delayed-comparison meaningful during silence: a
// sum of zeros would let any tiny energy blip satisfy cur > delayed*k. Real
// hardware always integrates thermal noise plus ADC dither; we clamp the
// reference sum to the energy of ~1 LSB per sample.
const noiseFloorSum = WindowLength

// Differentiator is the streaming energy rise/fall detector. Not safe for
// concurrent use.
type Differentiator struct {
	window [WindowLength]uint64 // raw x[n] energy readings
	wpos   int

	sums [CompareDelay]uint64 // history of y[n] for the Z⁻⁶⁴ comparison
	spos int

	sum  uint64
	seen int // total samples consumed, saturates once warm

	// Thresholds in Q16.16 linear fixed point (the register bus carries a
	// 32-bit scaled integer, not a float).
	highQ16 uint64
	lowQ16  uint64

	highEnabled bool
	lowEnabled  bool
}

// New returns a differentiator with both triggers disabled.
func New() *Differentiator {
	return &Differentiator{}
}

// SetHighThresholdDB enables energy-high detection at the given dB rise.
func (d *Differentiator) SetHighThresholdDB(db float64) error {
	q, err := thresholdQ16(db)
	if err != nil {
		return err
	}
	d.highQ16 = q
	d.highEnabled = true
	return nil
}

// SetLowThresholdDB enables energy-low detection at the given dB fall.
func (d *Differentiator) SetLowThresholdDB(db float64) error {
	q, err := thresholdQ16(db)
	if err != nil {
		return err
	}
	d.lowQ16 = q
	d.lowEnabled = true
	return nil
}

// DisableHigh turns off energy-high detection.
func (d *Differentiator) DisableHigh() { d.highEnabled = false }

// DisableLow turns off energy-low detection.
func (d *Differentiator) DisableLow() { d.lowEnabled = false }

func thresholdQ16(db float64) (uint64, error) {
	if db < MinThresholdDB || db > MaxThresholdDB {
		return 0, fmt.Errorf("energy: threshold %.1f dB outside [%v, %v]",
			db, MinThresholdDB, MaxThresholdDB)
	}
	return uint64(dsp.FromDB(db) * 65536), nil
}

// Reset clears all sample state but keeps thresholds.
func (d *Differentiator) Reset() {
	d.window = [WindowLength]uint64{}
	d.sums = [CompareDelay]uint64{}
	d.wpos, d.spos, d.sum, d.seen = 0, 0, 0, 0
}

// Process consumes one quantized sample and reports whether the high or low
// trigger fired on this sample.
func (d *Differentiator) Process(s fixed.IQ) (high, low bool) {
	x := s.Energy()
	// y[n] = y[n-1] + x[n] - x[n-N]
	d.sum += x - d.window[d.wpos]
	d.window[d.wpos] = x
	d.wpos++
	if d.wpos == WindowLength {
		d.wpos = 0
	}

	delayed := d.sums[d.spos]
	d.sums[d.spos] = d.sum
	d.spos++
	if d.spos == CompareDelay {
		d.spos = 0
	}

	if d.seen < WindowLength+CompareDelay {
		d.seen++
		return false, false // comparison pipeline still filling
	}

	ref := delayed
	if ref < noiseFloorSum {
		ref = noiseFloorSum
	}
	cur := d.sum
	if cur < noiseFloorSum {
		cur = noiseFloorSum
	}
	if d.highEnabled && cur<<16 > ref*d.highQ16 {
		high = true
	}
	if d.lowEnabled && ref<<16 > cur*d.lowQ16 {
		low = true
	}
	return high, low
}

// ProcessBlock consumes a whole block of quantized samples, writing each
// sample's high/low trigger decision into the caller-provided slices (which
// must be at least len(in) long). It is the block-mode fast path of Process:
// the per-call threshold/enable loads are hoisted out of the loop, and the
// decisions are bit-identical to calling Process once per sample.
func (d *Differentiator) ProcessBlock(in []fixed.IQ, high, low []bool) {
	_ = high[:len(in)]
	_ = low[:len(in)]
	hiOn, loOn := d.highEnabled, d.lowEnabled
	hiQ, loQ := d.highQ16, d.lowQ16
	for n, s := range in {
		x := s.Energy()
		d.sum += x - d.window[d.wpos]
		d.window[d.wpos] = x
		d.wpos++
		if d.wpos == WindowLength {
			d.wpos = 0
		}

		delayed := d.sums[d.spos]
		d.sums[d.spos] = d.sum
		d.spos++
		if d.spos == CompareDelay {
			d.spos = 0
		}

		if d.seen < WindowLength+CompareDelay {
			d.seen++
			high[n], low[n] = false, false
			continue
		}

		ref := delayed
		if ref < noiseFloorSum {
			ref = noiseFloorSum
		}
		cur := d.sum
		if cur < noiseFloorSum {
			cur = noiseFloorSum
		}
		high[n] = hiOn && cur<<16 > ref*hiQ
		low[n] = loOn && ref<<16 > cur*loQ
	}
}

// ProcessBits is the SoA block entry point: it consumes the separate int16
// I/Q planes fixed.QuantizeFused writes, computes each sample's energy
// reading x[n] = I²+Q² in place (two int16 loads beat a 64-bit energy plane
// round-tripping through the cache), and packs the high/low trigger-level
// decisions into bitmaps — bit k of high[w]/low[w] ⟺ sample w·64+k fired.
// Unused bits of the last words are cleared, so a zero word means "64 quiet
// samples" and the block datapath can skip them wholesale. Decisions and
// end-of-block state are bit-identical to calling Process once per sample.
func (d *Differentiator) ProcessBits(iPlane, qPlane []int16, high, low []uint64) {
	n := len(iPlane)
	if n == 0 {
		return
	}
	_ = qPlane[:n]
	words := (n + 63) >> 6
	_ = high[:words]
	_ = low[:words]
	hiOn, loOn := d.highEnabled, d.lowEnabled
	hiQ, loQ := d.highQ16, d.lowQ16
	// Running state lives in registers for the whole block; only the two
	// ring buffers are touched through the receiver. Both ring lengths are
	// powers of two, so the wrap is a mask instead of a compare-and-reset.
	sum, wpos, spos, seen := d.sum, d.wpos, d.spos, d.seen
	for base, w := 0, 0; base < n; base, w = base+64, w+1 {
		count := n - base
		if count > 64 {
			count = 64
		}
		var hw, lw uint64
		k := 0
		// Cold loop: the comparison pipeline is still filling; no sample in
		// this region can produce a trigger level.
		for ; k < count && seen < WindowLength+CompareDelay; k++ {
			vi, vq := int64(iPlane[base+k]), int64(qPlane[base+k])
			e := uint64(vi*vi + vq*vq)
			sum += e - d.window[wpos]
			d.window[wpos] = e
			wpos = (wpos + 1) & (WindowLength - 1)
			d.sums[spos] = sum
			spos = (spos + 1) & (CompareDelay - 1)
			seen++
		}
		// Hot loop: warm pipeline, no fill check, mask-wrapped rings.
		for ; k < count; k++ {
			vi, vq := int64(iPlane[base+k]), int64(qPlane[base+k])
			e := uint64(vi*vi + vq*vq)
			sum += e - d.window[wpos]
			d.window[wpos] = e
			wpos = (wpos + 1) & (WindowLength - 1)
			delayed := d.sums[spos]
			d.sums[spos] = sum
			spos = (spos + 1) & (CompareDelay - 1)

			ref := delayed
			if ref < noiseFloorSum {
				ref = noiseFloorSum
			}
			cur := sum
			if cur < noiseFloorSum {
				cur = noiseFloorSum
			}
			if hiOn && cur<<16 > ref*hiQ {
				hw |= 1 << k
			}
			if loOn && ref<<16 > cur*loQ {
				lw |= 1 << k
			}
		}
		high[w] = hw
		low[w] = lw
	}
	d.sum, d.wpos, d.spos, d.seen = sum, wpos, spos, seen
}

// Sum returns the current 32-sample energy sum (for host feedback/debug).
func (d *Differentiator) Sum() uint64 { return d.sum }

// Resources reports the synthesized utilization of the energy differentiator
// block (paper Fig. 4 inset).
func (d *Differentiator) Resources() fpga.Resources {
	return fpga.Resources{Slices: 1262, FFs: 1313, LUTs: 2513, DSP48s: 6}
}
