package energy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixed"
)

// feed streams amplitude-a DC samples for n ticks, returning counts of
// high/low trigger samples.
func feed(d *Differentiator, a float64, n int) (highs, lows int) {
	s := fixed.Quantize(complex(a, 0))
	for i := 0; i < n; i++ {
		h, l := d.Process(s)
		if h {
			highs++
		}
		if l {
			lows++
		}
	}
	return highs, lows
}

func TestThresholdValidation(t *testing.T) {
	d := New()
	for _, db := range []float64{2.9, 30.1, -5, 0} {
		if err := d.SetHighThresholdDB(db); err == nil {
			t.Errorf("threshold %v dB accepted", db)
		}
		if err := d.SetLowThresholdDB(db); err == nil {
			t.Errorf("low threshold %v dB accepted", db)
		}
	}
	if err := d.SetHighThresholdDB(3); err != nil {
		t.Error(err)
	}
	if err := d.SetHighThresholdDB(30); err != nil {
		t.Error(err)
	}
}

func TestEnergyRiseTriggersHigh(t *testing.T) {
	d := New()
	if err := d.SetHighThresholdDB(10); err != nil {
		t.Fatal(err)
	}
	// Quiet noise floor, then a 20 dB step.
	feed(d, 0.01, 500)
	h, _ := feed(d, 0.1, 200)
	if h == 0 {
		t.Error("20 dB rise did not trigger at a 10 dB threshold")
	}
}

func TestSmallRiseDoesNotTrigger(t *testing.T) {
	d := New()
	if err := d.SetHighThresholdDB(10); err != nil {
		t.Fatal(err)
	}
	// 6 dB step is below the 10 dB threshold.
	feed(d, 0.05, 500)
	h, _ := feed(d, 0.1, 200)
	if h != 0 {
		t.Errorf("6 dB rise triggered %d times at a 10 dB threshold", h)
	}
}

func TestEnergyFallTriggersLow(t *testing.T) {
	d := New()
	if err := d.SetLowThresholdDB(10); err != nil {
		t.Fatal(err)
	}
	feed(d, 0.2, 500)
	_, l := feed(d, 0.005, 200)
	if l == 0 {
		t.Error("energy fall did not trigger low")
	}
}

func TestConstantPowerNeverTriggers(t *testing.T) {
	d := New()
	if err := d.SetHighThresholdDB(3); err != nil {
		t.Fatal(err)
	}
	if err := d.SetLowThresholdDB(3); err != nil {
		t.Fatal(err)
	}
	h, l := feed(d, 0.5, 5000)
	if h != 0 || l != 0 {
		t.Errorf("constant power triggered: %d high, %d low", h, l)
	}
}

func TestConstantPowerPropertyAnyAmplitude(t *testing.T) {
	f := func(ampSel uint8, dbSel uint8) bool {
		amp := 0.001 + 0.998*float64(ampSel)/255
		db := 3 + 27*float64(dbSel)/255
		d := New()
		if d.SetHighThresholdDB(db) != nil || d.SetLowThresholdDB(db) != nil {
			return false
		}
		h, l := feed(d, amp, 1000)
		return h == 0 && l == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMovingSumMatchesBruteForce(t *testing.T) {
	d := New()
	rng := rand.New(rand.NewSource(1))
	var hist []uint64
	for i := 0; i < 500; i++ {
		s := fixed.Quantize(complex(rng.NormFloat64()*0.2, rng.NormFloat64()*0.2))
		hist = append(hist, s.Energy())
		d.Process(s)
		var want uint64
		start := max(0, len(hist)-WindowLength)
		for _, e := range hist[start:] {
			want += e
		}
		if d.Sum() != want {
			t.Fatalf("sample %d: moving sum %d != brute force %d", i, d.Sum(), want)
		}
	}
}

func TestDisabledDetectorsNeverFire(t *testing.T) {
	d := New()
	// No thresholds set at all.
	feed(d, 0.001, 300)
	h, l := feed(d, 0.9, 300)
	if h != 0 || l != 0 {
		t.Error("disabled detector fired")
	}
	// Enable then disable.
	if err := d.SetHighThresholdDB(5); err != nil {
		t.Fatal(err)
	}
	d.DisableHigh()
	d.Reset()
	feed(d, 0.001, 300)
	h, _ = feed(d, 0.9, 300)
	if h != 0 {
		t.Error("DisableHigh did not stick")
	}
}

func TestDetectionLatencyWithinWindow(t *testing.T) {
	// Paper §3.1: an energy-high detection takes at most 32 samples from
	// the start of a strong transmission.
	d := New()
	if err := d.SetHighThresholdDB(10); err != nil {
		t.Fatal(err)
	}
	feed(d, 0.01, 500)
	s := fixed.Quantize(complex(0.9, 0))
	for i := 0; i < WindowLength; i++ {
		if h, _ := d.Process(s); h {
			if i > WindowLength-1 {
				t.Errorf("latency %d samples > %d", i, WindowLength)
			}
			return
		}
	}
	t.Errorf("strong signal not detected within %d samples", WindowLength)
}

func TestResetClearsState(t *testing.T) {
	d := New()
	if err := d.SetHighThresholdDB(10); err != nil {
		t.Fatal(err)
	}
	feed(d, 0.9, 300)
	d.Reset()
	if d.Sum() != 0 {
		t.Error("Reset did not clear sum")
	}
	// After reset, the warmup holdoff must apply again: no triggers during
	// the first WindowLength+CompareDelay samples even on a strong signal.
	s := fixed.Quantize(complex(0.9, 0))
	for i := 0; i < WindowLength+CompareDelay; i++ {
		if h, _ := d.Process(s); h {
			t.Fatalf("triggered during post-reset warmup at %d", i)
		}
	}
}

func TestResourcesMatchPaper(t *testing.T) {
	r := New().Resources()
	if r.Slices != 1262 || r.FFs != 1313 || r.BRAMs != 0 || r.LUTs != 2513 || r.DSP48s != 6 {
		t.Errorf("Resources = %+v, want paper Fig. 4 inset", r)
	}
}

func TestDetectionCyclesConstant(t *testing.T) {
	// Paper §3.1: Ten_det < 1.28 µs = 128 cycles.
	if DetectionCycles != 128 {
		t.Errorf("DetectionCycles = %d, want 128", DetectionCycles)
	}
}
