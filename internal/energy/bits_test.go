package energy

import (
	"math/rand"
	"testing"

	"repro/internal/fixed"
)

// Differential tests for the SoA block entry point: ProcessBits consumes
// int16 I/Q planes and must pack trigger-level bitmaps bit-identical to
// calling Process once per sample, across partial words, the comparison
// pipeline fill, and every threshold enable combination — and must leave the
// differentiator state positioned so per-sample processing can resume.

func splitPlanes(samples []fixed.IQ) (iPlane, qPlane []int16) {
	iPlane = make([]int16, len(samples))
	qPlane = make([]int16, len(samples))
	for n, s := range samples {
		iPlane[n] = s.I
		qPlane[n] = s.Q
	}
	return iPlane, qPlane
}

func configure(t *testing.T, d *Differentiator, highDB, lowDB float64) {
	t.Helper()
	if highDB > 0 {
		if err := d.SetHighThresholdDB(highDB); err != nil {
			t.Fatal(err)
		}
	}
	if lowDB > 0 {
		if err := d.SetLowThresholdDB(lowDB); err != nil {
			t.Fatal(err)
		}
	}
}

// burstStream yields quiet noise with loud spans so both the high and low
// comparators actually fire.
func burstStream(rng *rand.Rand, n int) []fixed.IQ {
	out := make([]fixed.IQ, n)
	for k := range out {
		if k/150%2 == 1 {
			out[k] = fixed.IQ{I: int16(20000 + rng.Intn(8000)), Q: int16(-20000 - rng.Intn(8000))}
		} else {
			out[k] = fixed.IQ{I: int16(rng.Intn(64) - 32), Q: int16(rng.Intn(64) - 32)}
		}
	}
	return out
}

func checkBits(t *testing.T, highDB, lowDB float64, samples []fixed.IQ, blockLen int) {
	t.Helper()
	blk, ref := New(), New()
	configure(t, blk, highDB, lowDB)
	configure(t, ref, highDB, lowDB)

	refHigh := make([]bool, len(samples))
	refLow := make([]bool, len(samples))
	for n, s := range samples {
		refHigh[n], refLow[n] = ref.Process(s)
	}

	for pos := 0; pos < len(samples); pos += blockLen {
		end := pos + blockLen
		if end > len(samples) {
			end = len(samples)
		}
		chunk := samples[pos:end]
		iPlane, qPlane := splitPlanes(chunk)
		words := (len(chunk) + 63) / 64
		high := make([]uint64, words)
		low := make([]uint64, words)
		blk.ProcessBits(iPlane, qPlane, high, low)
		for k := range chunk {
			gotH := high[k/64]>>(k%64)&1 != 0
			gotL := low[k/64]>>(k%64)&1 != 0
			if gotH != refHigh[pos+k] || gotL != refLow[pos+k] {
				t.Fatalf("blockLen %d (hi %v, lo %v): sample %d: bits (%v,%v) != per-sample (%v,%v)",
					blockLen, highDB, lowDB, pos+k, gotH, gotL, refHigh[pos+k], refLow[pos+k])
			}
		}
	}
	if blk.Sum() != ref.Sum() {
		t.Fatalf("blockLen %d: end sum %d != per-sample %d", blockLen, blk.Sum(), ref.Sum())
	}
}

func TestProcessBitsBoundaryLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(0xE4E6))
	samples := burstStream(rng, 900)
	for _, blockLen := range []int{1, 63, 64, 65, 127, 128, 129, len(samples)} {
		checkBits(t, 10, 10, samples, blockLen)
	}
}

func TestProcessBitsThresholdCombinations(t *testing.T) {
	rng := rand.New(rand.NewSource(0x7E57))
	samples := burstStream(rng, 600)
	for _, cfg := range []struct{ hi, lo float64 }{
		{10, 0}, {0, 10}, {3, 30}, {0, 0},
	} {
		checkBits(t, cfg.hi, cfg.lo, samples, 64)
		checkBits(t, cfg.hi, cfg.lo, samples, 65)
	}
}

func TestProcessBitsResumesPerSample(t *testing.T) {
	// Block consumption mid-pipeline-fill, then per-sample processing: the
	// rings and warm-up counter must carry over exactly.
	rng := rand.New(rand.NewSource(0x9E5A))
	samples := burstStream(rng, 500)
	blk, ref := New(), New()
	configure(t, blk, 6, 6)
	configure(t, ref, 6, 6)

	head := samples[:71] // inside the 96-sample fill at an odd offset
	iPlane, qPlane := splitPlanes(head)
	high := make([]uint64, 2)
	low := make([]uint64, 2)
	blk.ProcessBits(iPlane, qPlane, high, low)
	for _, s := range head {
		ref.Process(s)
	}
	for n, s := range samples[71:] {
		bh, bl := blk.Process(s)
		rh, rl := ref.Process(s)
		if bh != rh || bl != rl {
			t.Fatalf("post-block sample %d: (%v,%v) != (%v,%v)", n, bh, bl, rh, rl)
		}
	}
}
