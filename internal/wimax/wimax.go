// Package wimax implements the mobile WiMAX (IEEE 802.16e) OFDMA downlink
// signal structure needed by the validation experiment of §5: the downlink
// preamble with its three carrier sets, PN-sequence-modulated subcarriers,
// and TDD frame timing, modeled on the Airspan Air4G macro base station the
// paper uses (10 MHz channel, 1024-point FFT, Cell ID 1, Segment 0).
//
// In the time domain the preamble is a single OFDMA symbol at the start of
// each downlink frame. Because only every third subcarrier is occupied, the
// symbol's useful part consists of three repetitions of a ~"284-sample"
// orthogonal code — the structure the paper's §5 exploits and whose 25 µs
// total duration defeats a 64-sample / 2.56 µs correlation window about 2/3
// of the time.
package wimax

import (
	"fmt"
	"math"

	"repro/internal/dsp"
)

// PHY constants for the 10 MHz TDD profile the paper configures.
const (
	// SampleRate is the hardware sampling rate the paper reports for the
	// 10 MHz bandwidth mode: 11.4 MSPS (28/25 × 10 MHz, rounded up to the
	// base station's clocking).
	SampleRate = 11_400_000
	// FFTSize is the OFDMA modulation FFT size.
	FFTSize = 1024
	// CPLen is the cyclic prefix for the standard 1/8 guard ratio.
	CPLen = FFTSize / 8
	// SymbolLen is one OFDMA symbol including guard.
	SymbolLen = FFTSize + CPLen
	// GuardBandCarriers is the number of null guard subcarriers on each
	// side of the preamble spectrum (paper §5: 86 per side).
	GuardBandCarriers = 86
	// PreambleCarrierSpacing: every 3rd subcarrier carries a pilot tone.
	PreambleCarrierSpacing = 3
	// PNLength is the number of PN values modulating each preamble carrier
	// set (paper §5: a 284-value sequence).
	PNLength = 284
	// NumSegments is the number of preamble carrier sets (segments 0-2).
	NumSegments = 3
	// FrameDurationSamples is the 5 ms TDD frame at the hardware rate.
	FrameDurationSamples = SampleRate / 200
)

// Config identifies the base-station parameters that select the preamble.
type Config struct {
	// CellID is the cell identifier, 0..31.
	CellID int
	// Segment selects the preamble carrier set, 0..2.
	Segment int
}

// Validate checks the configuration against the standard's ranges.
func (c Config) Validate() error {
	if c.CellID < 0 || c.CellID > 31 {
		return fmt.Errorf("wimax: cell ID %d outside [0,31]", c.CellID)
	}
	if c.Segment < 0 || c.Segment >= NumSegments {
		return fmt.Errorf("wimax: segment %d outside [0,%d]", c.Segment, NumSegments-1)
	}
	return nil
}

// pnSequence derives the 284-value ±1 preamble modulation sequence for a
// (cellID, segment) pair. The standard tabulates these per preamble index;
// we generate them from a seeded LFSR so that distinct cells/segments get
// distinct, reproducible low-cross-correlation sequences with the same
// structure (what matters to the detector is the sequence's length,
// bandwidth, and repetition geometry, not the exact table values).
func pnSequence(cellID, segment int) []float64 {
	// 11-bit LFSR (x^11 + x^9 + 1), seeded from the preamble index.
	state := uint16(1 + cellID + 32*segment)
	seq := make([]float64, PNLength)
	for i := range seq {
		b := ((state >> 10) ^ (state >> 8)) & 1
		state = ((state << 1) | b) & 0x7FF
		seq[i] = 1 - 2*float64(b)
	}
	return seq
}

// plan1024 is the precomputed 1024-point transform every OFDMA symbol here
// modulates through; its folded-scaling inverse is value-exact against the
// generic dsp.IFFT the original implementation used.
var plan1024 = dsp.NewFFTPlan(FFTSize)

// PreambleSymbol generates the time-domain downlink preamble OFDMA symbol
// (CP + 1024 samples) for the configuration.
func PreambleSymbol(cfg Config) (dsp.Samples, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make(dsp.Samples, SymbolLen)
	freq := make(dsp.Samples, FFTSize)
	fillPreambleSymbol(out, freq, cfg)
	return out, nil
}

// fillPreambleSymbol renders the preamble symbol into dst (SymbolLen
// samples) using freq (FFTSize samples) as transform scratch.
func fillPreambleSymbol(dst, freq dsp.Samples, cfg Config) {
	for i := range freq {
		freq[i] = 0
	}
	pn := pnSequence(cfg.CellID, cfg.Segment)
	used := FFTSize - 2*GuardBandCarriers // usable band
	// Carrier set n occupies subcarriers guard + n + 3k within the usable
	// band (skipping DC).
	idx := 0
	for k := 0; idx < PNLength; k++ {
		off := GuardBandCarriers + cfg.Segment + PreambleCarrierSpacing*k
		if off >= GuardBandCarriers+used {
			break
		}
		// Map from "spectrum position" (0..1023 across the band, DC at
		// center) to FFT bin.
		carrier := off - FFTSize/2
		if carrier == 0 {
			// DC is punctured: its PN value is consumed but not radiated
			// (only segment 0 hits DC on the 1024-FFT grid).
			idx++
			continue
		}
		bin := carrier
		if bin < 0 {
			bin += FFTSize
		}
		freq[bin] = complex(pn[idx], 0)
		idx++
	}
	plan1024.Inverse(freq)
	// Scale so the preamble symbol has unit-order power: occupied carriers
	// number ~284 of 1024.
	freq.Scale(float64(FFTSize) / math.Sqrt(float64(FFTSize)))
	boost := math.Sqrt(float64(FFTSize) / float64(PNLength))
	freq.Scale(boost)
	copy(dst[:CPLen], freq[FFTSize-CPLen:])
	copy(dst[CPLen:SymbolLen], freq)
}

// PreambleDuration is the preamble symbol duration in seconds at the
// hardware rate (paper: "lasting for 100.8 µs" including guard).
func PreambleDuration() float64 {
	return float64(SymbolLen) / SampleRate
}

// DownlinkFrame assembles one TDD downlink subframe: the preamble symbol
// followed by nDataSymbols of OFDMA payload (pseudorandom QPSK across the
// usable band) and silence covering the rest of the 5 ms frame (uplink
// subframe plus gaps), so consecutive frames exhibit the on/off envelope an
// energy detector keys on.
func DownlinkFrame(cfg Config, nDataSymbols int, seed int64) (dsp.Samples, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nDataSymbols < 0 {
		return nil, fmt.Errorf("wimax: negative data symbol count")
	}
	if (1+nDataSymbols)*SymbolLen > FrameDurationSamples {
		return nil, fmt.Errorf("wimax: %d symbols exceed the 5 ms frame", nDataSymbols)
	}
	// The whole 5 ms frame is one zeroed allocation; every symbol renders
	// into its window in place, sharing one transform scratch. The tail
	// beyond the last symbol stays zero (uplink subframe plus gaps).
	out := make(dsp.Samples, FrameDurationSamples)
	freq := make(dsp.Samples, FFTSize)
	fillPreambleSymbol(out[:SymbolLen], freq, cfg)
	rng := newPCG(seed)
	for s := 0; s < nDataSymbols; s++ {
		start := (1 + s) * SymbolLen
		fillDataSymbol(out[start:start+SymbolLen], freq, rng)
	}
	return out, nil
}

// fillDataSymbol renders one OFDMA payload symbol with random QPSK on the
// usable subcarriers into dst, using freq as transform scratch.
func fillDataSymbol(dst, freq dsp.Samples, rng *pcg) {
	for i := range freq {
		freq[i] = 0
	}
	const a = 0.7071067811865476
	for off := GuardBandCarriers; off < FFTSize-GuardBandCarriers; off++ {
		carrier := off - FFTSize/2
		if carrier == 0 {
			continue
		}
		bin := carrier
		if bin < 0 {
			bin += FFTSize
		}
		v := rng.next()
		re, im := a, a
		if v&1 != 0 {
			re = -a
		}
		if v&2 != 0 {
			im = -a
		}
		freq[bin] = complex(re, im)
	}
	plan1024.Inverse(freq)
	freq.Scale(math.Sqrt(float64(FFTSize)))
	// Normalize for occupied fraction.
	occupied := float64(FFTSize - 2*GuardBandCarriers - 1)
	freq.Scale(math.Sqrt(float64(FFTSize) / occupied))
	copy(dst[:CPLen], freq[FFTSize-CPLen:])
	copy(dst[CPLen:SymbolLen], freq)
}

// pcg is a tiny deterministic PRNG for payload generation.
type pcg struct{ state uint64 }

func newPCG(seed int64) *pcg {
	return &pcg{state: uint64(seed)*6364136223846793005 + 1442695040888963407}
}

func (p *pcg) next() uint64 {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	x := p.state
	x ^= x >> 33
	return x
}

// CodePeriodSamples returns the length of the preamble's internal
// orthogonal code: with every 3rd subcarrier of the 852-carrier usable band
// occupied, the useful symbol approximately repeats three times with a
// 284-sample period (852/3; the paper quotes "an orthogonal code of 284
// samples ... total duration of this code is 25 µs" at 11.4 MSPS). The
// jammer's 64-sample window sees only the first 2.56 µs of it (§5).
func CodePeriodSamples() int { return PNLength }

// ActualSampleRate is the true 802.16e sampling rate for a 10 MHz channel:
// the standard's 28/25 sampling factor gives 11.2 MSPS. The paper quotes
// the Airspan's rate as 11.4 MHz; the framework's host follows the paper
// when generating correlation templates (SampleRate), while the base
// station transmits at the standard's actual rate — the ~1.8% mismatch is
// one of the "different sampling rates" limitations §5 calls out.
const ActualSampleRate = 11_200_000
