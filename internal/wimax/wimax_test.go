package wimax

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
)

func TestConfigValidate(t *testing.T) {
	good := Config{CellID: 1, Segment: 0} // the paper's setting
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	for _, bad := range []Config{{CellID: -1}, {CellID: 32}, {Segment: -1}, {Segment: 3}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestPreambleSymbolLength(t *testing.T) {
	p, err := PreambleSymbol(Config{CellID: 1, Segment: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != SymbolLen {
		t.Fatalf("preamble %d samples, want %d", len(p), SymbolLen)
	}
	// ~101 µs at 11.4 MSPS, the paper quotes 100.8 µs.
	us := PreambleDuration() * 1e6
	if us < 95 || us > 106 {
		t.Errorf("preamble duration %.1f µs, want ~101", us)
	}
}

func TestPreambleSpectrum(t *testing.T) {
	p, err := PreambleSymbol(Config{CellID: 1, Segment: 0})
	if err != nil {
		t.Fatal(err)
	}
	freq := p[CPLen:].Clone()
	dsp.FFT(freq)
	// Guard bands must be empty; occupied carriers every 3rd in the usable
	// band starting at the segment offset.
	occupied := 0
	for off := 0; off < FFTSize; off++ {
		carrier := off - FFTSize/2
		bin := carrier
		if bin < 0 {
			bin += FFTSize
		}
		mag := cmplx.Abs(freq[bin])
		inGuard := off < GuardBandCarriers || off >= FFTSize-GuardBandCarriers
		onSet := !inGuard && (off-GuardBandCarriers)%PreambleCarrierSpacing == 0 && carrier != 0
		switch {
		case inGuard && mag > 1e-6:
			t.Fatalf("guard carrier %d has energy %v", off, mag)
		case onSet && mag < 1e-6:
			t.Fatalf("carrier-set bin %d empty", off)
		case !inGuard && !onSet && mag > 1e-6:
			t.Fatalf("off-set carrier %d has energy %v", off, mag)
		}
		if mag > 1e-6 {
			occupied++
		}
	}
	// Segment 0's carrier set hits DC, which is punctured: 283 radiated.
	if occupied != PNLength-1 {
		t.Errorf("%d occupied carriers, want %d", occupied, PNLength-1)
	}
	// Segments 1 and 2 miss DC and radiate all 284.
	for seg := 1; seg <= 2; seg++ {
		p, err := PreambleSymbol(Config{CellID: 1, Segment: seg})
		if err != nil {
			t.Fatal(err)
		}
		f := p[CPLen:].Clone()
		dsp.FFT(f)
		n := 0
		for _, v := range f {
			if cmplx.Abs(v) > 1e-6 {
				n++
			}
		}
		if n != PNLength {
			t.Errorf("segment %d: %d occupied carriers, want %d", seg, n, PNLength)
		}
	}
}

func TestPreambleCyclicPrefix(t *testing.T) {
	p, err := PreambleSymbol(Config{CellID: 1, Segment: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < CPLen; i++ {
		d := p[i] - p[FFTSize+i]
		if math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("CP not cyclic at %d", i)
		}
	}
}

func TestPreambleApproxThreefoldRepetition(t *testing.T) {
	// With every 3rd subcarrier occupied the useful symbol repeats ~3× (up
	// to a constant phase); correlate segments 341 samples apart.
	p, err := PreambleSymbol(Config{CellID: 1, Segment: 0})
	if err != nil {
		t.Fatal(err)
	}
	body := p[CPLen:]
	period := FFTSize / 3 // 341
	var corr, e1, e2 complex128
	for i := 0; i < period; i++ {
		a, b := body[i], body[i+period]
		corr += a * cmplx.Conj(b)
		e1 += a * cmplx.Conj(a)
		e2 += b * cmplx.Conj(b)
	}
	rho := cmplx.Abs(corr) / math.Sqrt(real(e1)*real(e2))
	if rho < 0.8 {
		t.Errorf("repetition correlation %.2f, want > 0.8", rho)
	}
}

func TestPNSequencesDifferAcrossCells(t *testing.T) {
	f := func(c1, c2, s1, s2 uint8) bool {
		cfg1 := Config{CellID: int(c1 % 32), Segment: int(s1 % 3)}
		cfg2 := Config{CellID: int(c2 % 32), Segment: int(s2 % 3)}
		a := pnSequence(cfg1.CellID, cfg1.Segment)
		b := pnSequence(cfg2.CellID, cfg2.Segment)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if cfg1 == cfg2 {
			return same
		}
		return !same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPNValuesAreBipolar(t *testing.T) {
	for _, v := range pnSequence(1, 0) {
		if v != 1 && v != -1 {
			t.Fatalf("PN value %v", v)
		}
	}
}

func TestDownlinkFrameStructure(t *testing.T) {
	frame, err := DownlinkFrame(Config{CellID: 1, Segment: 0}, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != FrameDurationSamples {
		t.Fatalf("frame %d samples, want %d (5 ms)", len(frame), FrameDurationSamples)
	}
	// Downlink burst has power; the tail (uplink gap) is silent.
	dl := frame[:21*SymbolLen]
	tail := frame[len(frame)-1000:]
	if dl.Power() < 0.5 {
		t.Errorf("downlink power %v too low", dl.Power())
	}
	if tail.Power() != 0 {
		t.Errorf("TDD gap not silent: %v", tail.Power())
	}
}

func TestDownlinkFrameValidation(t *testing.T) {
	if _, err := DownlinkFrame(Config{CellID: 99}, 1, 0); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := DownlinkFrame(Config{CellID: 1}, -1, 0); err == nil {
		t.Error("negative symbols accepted")
	}
	if _, err := DownlinkFrame(Config{CellID: 1}, 100000, 0); err == nil {
		t.Error("overlong frame accepted")
	}
}

func TestDownlinkFrameReproducible(t *testing.T) {
	a, _ := DownlinkFrame(Config{CellID: 1}, 5, 7)
	b, _ := DownlinkFrame(Config{CellID: 1}, 5, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different frames")
		}
	}
}

func TestPreamblePowerNormalized(t *testing.T) {
	p, err := PreambleSymbol(Config{CellID: 1, Segment: 0})
	if err != nil {
		t.Fatal(err)
	}
	if pw := p.Power(); math.Abs(pw-1) > 0.15 {
		t.Errorf("preamble power %v, want ~1", pw)
	}
}

func TestCodePeriod(t *testing.T) {
	if CodePeriodSamples() != 284 {
		t.Errorf("code period %d, want 284 (paper §5)", CodePeriodSamples())
	}
	// 284 samples at 11.4 MSPS ≈ 25 µs, as the paper states.
	us := float64(CodePeriodSamples()) / SampleRate * 1e6
	if us < 24 || us > 26 {
		t.Errorf("code duration %.1f µs, want ~25", us)
	}
}
