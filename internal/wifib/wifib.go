// Package wifib implements the IEEE 802.11b DSSS/CCK physical layer. The
// paper's platform is explicitly multi-standard — "reliably and
// selectively jam in-flight packets of WiFi (802.11 a/b/g)" — and the
// direct-sequence PHY is the part of that claim the OFDM modem in package
// wifi does not cover: an 11-chip Barker-spread preamble at 1 Mbps DBPSK,
// a PLCP header protected by CRC-16, and payloads at 1/2 Mbps (Barker,
// DBPSK/DQPSK) or 5.5/11 Mbps (CCK).
//
// Waveforms are produced at 22 MSPS (two samples per 11 Mchip/s chip); the
// jammer's 25 MSPS receive chain resamples them like any other standard.
// The 128-bit scrambled-ones SYNC field is the low-entropy, always-present
// structure the cross-correlator keys on.
package wifib

import "fmt"

// PHY constants.
const (
	// ChipRate is the DSSS chipping rate: 11 Mchip/s.
	ChipRate = 11_000_000
	// SamplesPerChip is the oversampling of the generated waveform.
	SamplesPerChip = 2
	// SampleRate is the waveform rate: 22 MSPS.
	SampleRate = ChipRate * SamplesPerChip
	// BarkerLength is the spreading-code length in chips.
	BarkerLength = 11
	// SyncBits is the long-preamble SYNC field length (scrambled ones).
	SyncBits = 128
	// SFD is the start-frame delimiter transmitted after SYNC (LSB first).
	SFD = 0xF3A0
	// HeaderBits is the PLCP header: SIGNAL(8) SERVICE(8) LENGTH(16) CRC(16).
	HeaderBits = 48
	// MaxPSDU bounds the MPDU length for the 16-bit microsecond LENGTH
	// field at 1 Mbps.
	MaxPSDU = 4095
)

// Barker is the 11-chip Barker sequence used to spread every 1/2 Mbps
// symbol.
var Barker = [BarkerLength]float64{1, -1, 1, 1, -1, 1, 1, 1, -1, -1, -1}

// Rate is an 802.11b data rate.
type Rate uint8

// The four 802.11b rates.
const (
	Rate1 Rate = iota
	Rate2
	Rate5_5
	Rate11
)

func (r Rate) String() string {
	switch r {
	case Rate1:
		return "1Mbps"
	case Rate2:
		return "2Mbps"
	case Rate5_5:
		return "5.5Mbps"
	case Rate11:
		return "11Mbps"
	default:
		return fmt.Sprintf("Rate(%d)", uint8(r))
	}
}

// Valid reports whether r is defined.
func (r Rate) Valid() bool { return r <= Rate11 }

// BitsPerSymbol returns data bits per PHY symbol.
func (r Rate) BitsPerSymbol() int {
	switch r {
	case Rate1:
		return 1
	case Rate2:
		return 2
	case Rate5_5:
		return 4
	default:
		return 8
	}
}

// ChipsPerSymbol returns chips per PHY symbol (11 for Barker, 8 for CCK).
func (r Rate) ChipsPerSymbol() int {
	if r == Rate1 || r == Rate2 {
		return BarkerLength
	}
	return 8
}

// signalByte returns the PLCP SIGNAL field encoding (rate in 100 kbit/s).
func (r Rate) signalByte() uint8 {
	switch r {
	case Rate1:
		return 0x0A
	case Rate2:
		return 0x14
	case Rate5_5:
		return 0x37
	default:
		return 0x6E
	}
}

func rateFromSignal(b uint8) (Rate, error) {
	switch b {
	case 0x0A:
		return Rate1, nil
	case 0x14:
		return Rate2, nil
	case 0x37:
		return Rate5_5, nil
	case 0x6E:
		return Rate11, nil
	default:
		return 0, fmt.Errorf("wifib: invalid SIGNAL byte %#x", b)
	}
}

// Scrambler is the 802.11b self-synchronizing (multiplicative) scrambler
// with polynomial z⁷ + z⁴ + 1 (§18.2.4). Unlike the OFDM PHY's additive
// scrambler, the receive side resynchronizes from the received bits
// themselves, so no seed recovery step is needed.
type Scrambler struct {
	state uint8
}

// NewScrambler returns a scrambler seeded with the given 7-bit state
// (the standard transmits with 0x1B for the long preamble... any nonzero
// value interoperates because descrambling self-synchronizes).
func NewScrambler(seed uint8) *Scrambler { return &Scrambler{state: seed & 0x7F} }

// Scramble processes one transmit bit.
func (s *Scrambler) Scramble(b uint8) uint8 {
	out := (b ^ (s.state >> 3) ^ (s.state >> 6)) & 1
	s.state = ((s.state << 1) | out) & 0x7F
	return out
}

// Descramble processes one received bit.
func (s *Scrambler) Descramble(b uint8) uint8 {
	b &= 1
	out := (b ^ (s.state >> 3) ^ (s.state >> 6)) & 1
	s.state = ((s.state << 1) | b) & 0x7F
	return out
}

// CRC16 computes the PLCP header CRC (CCITT, x¹⁶+x¹²+x⁵+1), transmitted
// ones-complemented.
func CRC16(bits []uint8) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range bits {
		msb := (crc >> 15) & 1
		crc <<= 1
		if (uint16(b&1) ^ msb) != 0 {
			crc ^= 0x1021
		}
	}
	return ^crc
}
