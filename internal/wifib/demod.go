package wifib

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dsp"
)

// Receive path: Barker-correlation symbol sync, differential demodulation
// of the scrambled SYNC/SFD/header, CRC check, and payload recovery at the
// header-indicated rate (Barker DBPSK/DQPSK or CCK code-bank correlation).

// RxResult reports one demodulated 802.11b PPDU.
type RxResult struct {
	// Start is the sample index of the first SYNC symbol.
	Start int
	// Rate is the PSDU rate from the PLCP header.
	Rate Rate
	// LengthUS is the header LENGTH field (PSDU microseconds).
	LengthUS int
	// PSDU is the descrambled payload.
	PSDU []byte
}

// ErrSync is returned when no Barker-spread preamble is found.
var ErrSync = fmt.Errorf("wifib: synchronization failed")

// barkerTemplate is the oversampled Barker symbol used for sync.
var barkerTemplate = func() dsp.Samples {
	out := make(dsp.Samples, 0, BarkerLength*SamplesPerChip)
	for _, b := range Barker {
		for s := 0; s < SamplesPerChip; s++ {
			out = append(out, complex(b, 0))
		}
	}
	return out
}()

// symbolSpan is one Barker symbol in samples.
const symbolSpan = BarkerLength * SamplesPerChip

// despread correlates one symbol-aligned span against the Barker template.
func despread(x dsp.Samples) complex128 {
	var acc complex128
	n := min(len(x), symbolSpan)
	for i := 0; i < n; i++ {
		acc += x[i] * barkerTemplate[i]
	}
	return acc
}

// Sync scans [from, to) for the Barker symbol alignment that maximizes
// despread energy over a few consecutive symbols.
func Sync(x dsp.Samples, from, to int) (int, error) {
	const checkSymbols = 8
	if from < 0 {
		from = 0
	}
	if to > len(x)-checkSymbols*symbolSpan {
		to = len(x) - checkSymbols*symbolSpan
	}
	if from >= to {
		return 0, ErrSync
	}
	best, bestE := -1, 0.0
	var sum float64
	var count int
	for k := from; k < to; k++ {
		var e float64
		for s := 0; s < checkSymbols; s++ {
			c := despread(x[k+s*symbolSpan:])
			e += real(c)*real(c) + imag(c)*imag(c)
		}
		sum += e
		count++
		if e > bestE {
			best, bestE = k, e
		}
	}
	if best < 0 || bestE < 4*sum/float64(count) {
		return 0, ErrSync
	}
	return best, nil
}

// demodulator walks the waveform symbol by symbol.
type demodulator struct {
	x      dsp.Samples
	pos    int
	prev   complex128
	scr    *Scrambler
	symIdx int
}

// nextBarkerBits despreads one symbol and differentially slices nbits
// (1 for DBPSK, 2 for DQPSK), returning descrambled bits.
func (d *demodulator) nextBarkerBits(nbits int) ([]uint8, error) {
	if d.pos+symbolSpan > len(d.x) {
		return nil, fmt.Errorf("wifib: waveform truncated at sample %d", d.pos)
	}
	cur := despread(d.x[d.pos:])
	d.pos += symbolSpan
	diff := cur * cmplx.Conj(d.prev)
	d.prev = cur
	ph := cmplx.Phase(diff)
	var raw []uint8
	if nbits == 1 {
		if math.Abs(ph) > math.Pi/2 {
			raw = []uint8{1}
		} else {
			raw = []uint8{0}
		}
	} else {
		// Quantize to the nearest DQPSK increment.
		q := int(math.Round(ph/(math.Pi/2)+4)) % 4
		switch q {
		case 0:
			raw = []uint8{0, 0}
		case 1:
			raw = []uint8{0, 1}
		case 2:
			raw = []uint8{1, 1}
		default:
			raw = []uint8{1, 0}
		}
	}
	out := make([]uint8, len(raw))
	for i, b := range raw {
		out[i] = d.scr.Descramble(b)
	}
	d.symIdx++
	return out, nil
}

// nextCCKBits decodes one CCK symbol of 4 or 8 bits.
func (d *demodulator) nextCCKBits(nbits int) ([]uint8, error) {
	span := 8 * SamplesPerChip
	if d.pos+span > len(d.x) {
		return nil, fmt.Errorf("wifib: waveform truncated at sample %d", d.pos)
	}
	// Chip estimates (average the oversampled points).
	var chips [8]complex128
	for c := 0; c < 8; c++ {
		var acc complex128
		for s := 0; s < SamplesPerChip; s++ {
			acc += d.x[d.pos+c*SamplesPerChip+s]
		}
		chips[c] = acc
	}
	d.pos += span

	type cand struct {
		bits       []uint8
		p2, p3, p4 float64
	}
	var cands []cand
	if nbits == 8 {
		for b2 := 0; b2 < 4; b2++ {
			for b3 := 0; b3 < 4; b3++ {
				for b4 := 0; b4 < 4; b4++ {
					cands = append(cands, cand{
						bits: []uint8{uint8(b2 >> 1), uint8(b2 & 1),
							uint8(b3 >> 1), uint8(b3 & 1),
							uint8(b4 >> 1), uint8(b4 & 1)},
						p2: qpskPhase(uint8(b2>>1), uint8(b2&1)),
						p3: qpskPhase(uint8(b3>>1), uint8(b3&1)),
						p4: qpskPhase(uint8(b4>>1), uint8(b4&1)),
					})
				}
			}
		}
	} else {
		for d2 := 0; d2 < 2; d2++ {
			for d3 := 0; d3 < 2; d3++ {
				cands = append(cands, cand{
					bits: []uint8{uint8(d2), uint8(d3)},
					p2:   float64(d2)*math.Pi + math.Pi/2,
					p3:   0,
					p4:   float64(d3) * math.Pi,
				})
			}
		}
	}
	bestMag := -1.0
	var bestCorr complex128
	var bestBits []uint8
	for _, c := range cands {
		code := cckChips(0, c.p2, c.p3, c.p4)
		var acc complex128
		for k := 0; k < 8; k++ {
			acc += chips[k] * cmplx.Conj(code[k])
		}
		if m := cmplx.Abs(acc); m > bestMag {
			bestMag, bestCorr, bestBits = m, acc, c.bits
		}
	}
	// φ1 comes from the residual phase, differentially against the running
	// reference, undoing the odd-symbol π rotation.
	diff := bestCorr * cmplx.Conj(d.prev)
	ph := cmplx.Phase(diff)
	if d.symIdx%2 == 1 {
		ph -= math.Pi
	}
	q := ((int(math.Round(ph/(math.Pi/2))) % 4) + 4) % 4
	var first []uint8
	switch q {
	case 0:
		first = []uint8{0, 0}
	case 1:
		first = []uint8{0, 1}
	case 2:
		first = []uint8{1, 1}
	default:
		first = []uint8{1, 0}
	}
	// The correlator output's phase is the full accumulated φ1 (the TX
	// phase accumulates across symbols, odd-symbol rotations included), so
	// it becomes the next differential reference directly.
	d.prev = bestCorr
	d.symIdx++

	raw := append(first, bestBits...)
	out := make([]uint8, 0, nbits)
	for _, b := range raw[:nbits] {
		out = append(out, d.scr.Descramble(b))
	}
	return out, nil
}

// Demodulate recovers one PPDU, searching for the preamble start within
// [searchFrom, searchTo).
func Demodulate(x dsp.Samples, searchFrom, searchTo int) (*RxResult, error) {
	start, err := Sync(x, searchFrom, searchTo)
	if err != nil {
		return nil, err
	}
	d := &demodulator{x: x, pos: start, scr: NewScrambler(0)}
	// Prime the differential reference with the first symbol.
	d.prev = despread(x[d.pos:])
	d.pos += symbolSpan
	d.symIdx = 1
	// Feed the first symbol's (unknown) bit into the self-synchronizing
	// descrambler via a dummy: the SYNC bits before SFD are discardable.
	d.scr.Descramble(0)

	// Hunt for the SFD in the descrambled DBPSK stream.
	var window uint32
	found := false
	for i := 0; i < SyncBits+40; i++ {
		bits, err := d.nextBarkerBits(1)
		if err != nil {
			return nil, err
		}
		window = (window >> 1) | uint32(bits[0])<<15
		if window == SFD {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("wifib: SFD not found after sync at %d", start)
	}

	// PLCP header.
	hdr := make([]uint8, 0, HeaderBits)
	for len(hdr) < HeaderBits {
		bits, err := d.nextBarkerBits(1)
		if err != nil {
			return nil, err
		}
		hdr = append(hdr, bits...)
	}
	crcGot := uint16(0)
	for i := 0; i < 16; i++ {
		crcGot |= uint16(hdr[32+i]) << i
	}
	if CRC16(hdr[:32]) != crcGot {
		return nil, fmt.Errorf("wifib: PLCP header CRC mismatch")
	}
	var sig uint8
	for i := 0; i < 8; i++ {
		sig |= hdr[i] << i
	}
	rate, err := rateFromSignal(sig)
	if err != nil {
		return nil, err
	}
	lengthUS := 0
	for i := 0; i < 16; i++ {
		lengthUS |= int(hdr[16+i]) << i
	}
	service := uint8(0)
	for i := 0; i < 8; i++ {
		service |= hdr[8+i] << i
	}
	psduBytes := psduBytesFromLength(rate, lengthUS, service&0x80 != 0)

	// The CCK odd-symbol rotation is counted from the frame start, and the
	// first PSDU symbol is always TX symbol 192 (144 preamble + 48 header
	// at 1 Mbps). Re-anchoring here makes the parity immune to the sync
	// landing a few whole symbols into the SYNC field.
	d.symIdx = PreambleDuration()

	// PSDU.
	var bits []uint8
	for len(bits) < psduBytes*8 {
		var got []uint8
		var err error
		switch rate {
		case Rate1:
			got, err = d.nextBarkerBits(1)
		case Rate2:
			got, err = d.nextBarkerBits(2)
		case Rate5_5:
			got, err = d.nextCCKBits(4)
		default:
			got, err = d.nextCCKBits(8)
		}
		if err != nil {
			return nil, err
		}
		bits = append(bits, got...)
	}
	psdu := make([]byte, psduBytes)
	for i := range psdu {
		var v byte
		for j := 0; j < 8; j++ {
			v |= byte(bits[i*8+j]) << j
		}
		psdu[i] = v
	}
	return &RxResult{Start: start, Rate: rate, LengthUS: lengthUS, PSDU: psdu}, nil
}

// psduBytesFromLength inverts txTimeUS (§18.2.3.5).
func psduBytesFromLength(rate Rate, us int, lengthExt bool) int {
	switch rate {
	case Rate1:
		return us / 8
	case Rate2:
		return us * 2 / 8
	case Rate5_5:
		return int(math.Floor(float64(us)*5.5/8)) / 1
	default:
		n := int(math.Floor(float64(us) * 11 / 8))
		if lengthExt {
			n--
		}
		return n
	}
}
