package wifib

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dsp"
)

// Transmit path: long-preamble PPDU assembly (§18.2.2): scrambled SYNC and
// SFD, the CRC-protected PLCP header at 1 Mbps DBPSK, and the PSDU at the
// selected rate — Barker-spread DBPSK/DQPSK for 1/2 Mbps, CCK for
// 5.5/11 Mbps.

// dqpskPhase maps a differential dibit (d0 first) to its phase increment.
func dqpskPhase(d0, d1 uint8) float64 {
	switch d0<<1 | d1 {
	case 0b00:
		return 0
	case 0b01:
		return math.Pi / 2
	case 0b11:
		return math.Pi
	default: // 0b10
		return 3 * math.Pi / 2
	}
}

// qpskPhase maps a CCK dibit to a fixed phase (Table 18-4).
func qpskPhase(d0, d1 uint8) float64 {
	switch d0<<1 | d1 {
	case 0b00:
		return 0
	case 0b01:
		return math.Pi / 2
	case 0b10:
		return math.Pi
	default:
		return 3 * math.Pi / 2
	}
}

// cckChips builds the 8-chip CCK code vector for the four phases.
func cckChips(p1, p2, p3, p4 float64) [8]complex128 {
	e := func(ph float64) complex128 { return cmplx.Exp(complex(0, ph)) }
	return [8]complex128{
		e(p1 + p2 + p3 + p4),
		e(p1 + p3 + p4),
		e(p1 + p2 + p4),
		-e(p1 + p4),
		e(p1 + p2 + p3),
		e(p1 + p3),
		-e(p1 + p2),
		e(p1),
	}
}

// modulator tracks the differential phase reference across symbols.
type modulator struct {
	phase  float64 // accumulated differential reference
	symIdx int     // symbol counter for the CCK odd-symbol π rotation
	out    dsp.Samples
}

// emitChips appends chips at SamplesPerChip oversampling (rectangular
// chip shaping; the station's TX filter is outside the scope of the chip
// model and the detectors operate on the despread structure).
func (m *modulator) emitChips(chips []complex128) {
	for _, c := range chips {
		for s := 0; s < SamplesPerChip; s++ {
			m.out = append(m.out, c)
		}
	}
}

// barkerSymbol emits one Barker-spread symbol at the current phase.
func (m *modulator) barkerSymbol() {
	ref := cmplx.Exp(complex(0, m.phase))
	chips := make([]complex128, BarkerLength)
	for i, b := range Barker {
		chips[i] = ref * complex(b, 0)
	}
	m.emitChips(chips)
}

// dbpsk modulates one bit at 1 Mbps.
func (m *modulator) dbpsk(b uint8) {
	if b&1 == 1 {
		m.phase += math.Pi
	}
	m.barkerSymbol()
	m.symIdx++
}

// dqpsk modulates a dibit at 2 Mbps.
func (m *modulator) dqpsk(d0, d1 uint8) {
	m.phase += dqpskPhase(d0, d1)
	m.barkerSymbol()
	m.symIdx++
}

// cck modulates 4 or 8 bits per symbol.
func (m *modulator) cck(bits []uint8) {
	m.phase += dqpskPhase(bits[0], bits[1])
	if m.symIdx%2 == 1 {
		// Odd-numbered symbols get an extra π rotation (§18.4.6.5).
		m.phase += math.Pi
	}
	var p2, p3, p4 float64
	if len(bits) == 8 { // 11 Mbps
		p2 = qpskPhase(bits[2], bits[3])
		p3 = qpskPhase(bits[4], bits[5])
		p4 = qpskPhase(bits[6], bits[7])
	} else { // 5.5 Mbps
		p2 = float64(bits[2])*math.Pi + math.Pi/2
		p3 = 0
		p4 = float64(bits[3]) * math.Pi
	}
	chips := cckChips(m.phase, p2, p3, p4)
	m.emitChips(chips[:])
	m.symIdx++
}

// headerBits assembles the unscrambled 48-bit PLCP header for the PSDU.
func headerBits(rate Rate, psduBytes int) []uint8 {
	// LENGTH is the PSDU transmit time in microseconds.
	usec := txTimeUS(rate, psduBytes)
	var bits []uint8
	appendByte := func(v uint8) {
		for i := 0; i < 8; i++ {
			bits = append(bits, (v>>i)&1)
		}
	}
	appendByte(rate.signalByte())
	service := uint8(0)
	if rate == Rate11 && lengthExtension(rate, psduBytes) {
		service |= 0x80 // length-extension bit
	}
	appendByte(service)
	bits = append(bits, uint16Bits(uint16(usec))...)
	crc := CRC16(bits)
	bits = append(bits, uint16Bits(crc)...)
	return bits
}

func uint16Bits(v uint16) []uint8 {
	out := make([]uint8, 16)
	for i := range out {
		out[i] = uint8(v>>i) & 1
	}
	return out
}

// txTimeUS returns the PSDU duration in whole microseconds (§18.2.3.5).
func txTimeUS(rate Rate, psduBytes int) int {
	bits := psduBytes * 8
	switch rate {
	case Rate1:
		return bits
	case Rate2:
		return (bits + 1) / 2
	case Rate5_5:
		return int(math.Ceil(float64(bits) / 5.5))
	default:
		return int(math.Ceil(float64(bits) / 11))
	}
}

// lengthExtension reports the 11 Mbps ambiguity bit of §18.2.3.5.
func lengthExtension(rate Rate, psduBytes int) bool {
	if rate != Rate11 {
		return false
	}
	bits := psduBytes * 8
	us := int(math.Ceil(float64(bits) / 11))
	return us*11-bits >= 8
}

// Modulate builds a complete long-preamble PPDU at 22 MSPS.
func Modulate(psdu []byte, rate Rate, scramblerSeed uint8) (dsp.Samples, error) {
	if !rate.Valid() {
		return nil, fmt.Errorf("wifib: invalid rate %v", rate)
	}
	if len(psdu) == 0 || len(psdu) > MaxPSDU {
		return nil, fmt.Errorf("wifib: PSDU length %d outside [1, %d]", len(psdu), MaxPSDU)
	}
	if scramblerSeed&0x7F == 0 {
		scramblerSeed = 0x1B
	}
	scr := NewScrambler(scramblerSeed)
	m := &modulator{}

	// SYNC: 128 scrambled ones, DBPSK.
	for i := 0; i < SyncBits; i++ {
		m.dbpsk(scr.Scramble(1))
	}
	// SFD, LSB first.
	for i := 0; i < 16; i++ {
		m.dbpsk(scr.Scramble(uint8((uint32(SFD) >> i) & 1)))
	}
	// PLCP header at 1 Mbps.
	for _, b := range headerBits(rate, len(psdu)) {
		m.dbpsk(scr.Scramble(b))
	}
	// PSDU at the selected rate, LSB first per octet, scrambled.
	var bits []uint8
	for _, v := range psdu {
		for i := 0; i < 8; i++ {
			bits = append(bits, scr.Scramble((v>>i)&1))
		}
	}
	switch rate {
	case Rate1:
		for _, b := range bits {
			m.dbpsk(b)
		}
	case Rate2:
		for i := 0; i+1 < len(bits); i += 2 {
			m.dqpsk(bits[i], bits[i+1])
		}
	case Rate5_5:
		for i := 0; i+3 < len(bits); i += 4 {
			m.cck(bits[i : i+4])
		}
	default:
		for i := 0; i+7 < len(bits); i += 8 {
			m.cck(bits[i : i+8])
		}
	}
	return m.out, nil
}

// PreambleDuration returns the long preamble + header duration: 144 bits
// of SYNC/SFD plus 48 header bits at 1 Mbps = 192 µs.
func PreambleDuration() int { return (SyncBits + 16 + HeaderBits) }

// SyncWaveform returns the leading portion of the scrambled SYNC field as
// a correlation template source (the first n symbols at 22 MSPS). The
// scrambled-ones sequence is deterministic for a given seed, which is what
// makes it usable as a matched-filter template despite the scrambling.
func SyncWaveform(symbols int, scramblerSeed uint8) dsp.Samples {
	if scramblerSeed&0x7F == 0 {
		scramblerSeed = 0x1B
	}
	scr := NewScrambler(scramblerSeed)
	m := &modulator{}
	for i := 0; i < symbols; i++ {
		m.dbpsk(scr.Scramble(1))
	}
	return m.out
}
