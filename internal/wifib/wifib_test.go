package wifib

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
)

var allRates = []Rate{Rate1, Rate2, Rate5_5, Rate11}

func TestRateProperties(t *testing.T) {
	cases := []struct {
		r     Rate
		bits  int
		chips int
	}{
		{Rate1, 1, 11}, {Rate2, 2, 11}, {Rate5_5, 4, 8}, {Rate11, 8, 8},
	}
	for _, c := range cases {
		if c.r.BitsPerSymbol() != c.bits || c.r.ChipsPerSymbol() != c.chips {
			t.Errorf("%v: bits=%d chips=%d", c.r, c.r.BitsPerSymbol(), c.r.ChipsPerSymbol())
		}
		got, err := rateFromSignal(c.r.signalByte())
		if err != nil || got != c.r {
			t.Errorf("%v: SIGNAL byte round-trip gave %v, %v", c.r, got, err)
		}
	}
	if _, err := rateFromSignal(0x42); err == nil {
		t.Error("bogus SIGNAL byte accepted")
	}
	if Rate(9).Valid() {
		t.Error("Rate(9) claims valid")
	}
}

func TestScramblerSelfSynchronizing(t *testing.T) {
	f := func(seedTX, seedRX uint8, data []byte) bool {
		if len(data) < 2 {
			return true
		}
		tx := NewScrambler(seedTX)
		// RX seeded differently: must still descramble correctly after the
		// first 7 bits (self-synchronization).
		rx := NewScrambler(seedRX)
		var ok = true
		for i, v := range data {
			b := v & 1
			d := rx.Descramble(tx.Scramble(b))
			if i >= 7 && d != b {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCRC16KnownProperties(t *testing.T) {
	// CRC of data followed by its own (un-complemented) CRC has a fixed
	// residual; simpler check: two different headers differ in CRC.
	a := make([]uint8, 32)
	b := make([]uint8, 32)
	b[5] = 1
	if CRC16(a) == CRC16(b) {
		t.Error("CRC16 collision on single-bit difference")
	}
}

func TestBarkerAutocorrelation(t *testing.T) {
	// The Barker code's aperiodic autocorrelation sidelobes are ≤ 1.
	for lag := 1; lag < BarkerLength; lag++ {
		var acc float64
		for i := 0; i+lag < BarkerLength; i++ {
			acc += Barker[i] * Barker[i+lag]
		}
		if math.Abs(acc) > 1 {
			t.Errorf("lag %d: autocorrelation %v", lag, acc)
		}
	}
}

func TestCCKChipsUnitModulus(t *testing.T) {
	chips := cckChips(0.3, math.Pi/2, math.Pi, 0)
	for i, c := range chips {
		if math.Abs(real(c)*real(c)+imag(c)*imag(c)-1) > 1e-12 {
			t.Errorf("chip %d modulus %v", i, c)
		}
	}
}

func TestModulateValidation(t *testing.T) {
	if _, err := Modulate(nil, Rate1, 0x1B); err == nil {
		t.Error("empty PSDU accepted")
	}
	if _, err := Modulate(make([]byte, MaxPSDU+1), Rate1, 0x1B); err == nil {
		t.Error("oversize PSDU accepted")
	}
	if _, err := Modulate([]byte{1}, Rate(7), 0x1B); err == nil {
		t.Error("bogus rate accepted")
	}
}

func TestPreambleDuration(t *testing.T) {
	// Long preamble + header = 192 µs at 1 Mbps.
	if PreambleDuration() != 192 {
		t.Errorf("preamble+header %d µs, want 192", PreambleDuration())
	}
	// Waveform length check: 192 symbols × 22 samples.
	wave, err := Modulate([]byte{0xAA}, Rate1, 0x1B)
	if err != nil {
		t.Fatal(err)
	}
	want := (192 + 8) * symbolSpan
	if len(wave) != want {
		t.Errorf("waveform %d samples, want %d", len(wave), want)
	}
}

func TestLoopbackAllRates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, r := range allRates {
		psdu := make([]byte, 64)
		rng.Read(psdu)
		wave, err := Modulate(psdu, r, 0x1B)
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		res, err := Demodulate(wave, 0, 5*symbolSpan)
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if res.Rate != r {
			t.Errorf("%v: decoded rate %v", r, res.Rate)
		}
		if !bytes.Equal(res.PSDU, psdu) {
			t.Errorf("%v: PSDU corrupted (got %d bytes)", r, len(res.PSDU))
		}
	}
}

func TestLoopbackWithOffsetAndNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	psdu := make([]byte, 48)
	rng.Read(psdu)
	wave, err := Modulate(psdu, Rate11, 0x1B)
	if err != nil {
		t.Fatal(err)
	}
	buf := make(dsp.Samples, 300+len(wave)+100)
	copy(buf[300:], wave)
	buf.Scale(0.5)
	noise := dsp.NewNoiseSource(dsp.FromDB(-20)*0.25, 3) // 20 dB SNR
	noise.AddTo(buf)
	res, err := Demodulate(buf, 0, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Sync may legitimately lock onto any whole-symbol offset within the
	// repetitive SYNC field.
	if res.Start < 300 || res.Start > 300+10*symbolSpan || (res.Start-300)%symbolSpan != 0 {
		t.Errorf("sync at %d, want 300 + k·%d", res.Start, symbolSpan)
	}
	if !bytes.Equal(res.PSDU, psdu) {
		t.Error("PSDU corrupted at 20 dB SNR")
	}
}

func TestLoopbackProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(n uint8, rSel uint8, seed uint8) bool {
		r := allRates[rSel%4]
		psdu := make([]byte, 8+int(n)%120)
		rng.Read(psdu)
		wave, err := Modulate(psdu, r, seed)
		if err != nil {
			return false
		}
		res, err := Demodulate(wave, 0, 3*symbolSpan)
		if err != nil {
			return false
		}
		return bytes.Equal(res.PSDU, psdu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestDemodulateNoiseFails(t *testing.T) {
	noise := dsp.NewNoiseSource(0.1, 5).Block(8000)
	if _, err := Demodulate(noise, 0, 2000); err == nil {
		t.Error("demodulated pure noise")
	}
}

func TestJammedHeaderFailsCRC(t *testing.T) {
	psdu := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	wave, err := Modulate(psdu, Rate2, 0x1B)
	if err != nil {
		t.Fatal(err)
	}
	// Smash the header region (symbols 144..192) with strong noise.
	jam := dsp.NewNoiseSource(25, 6)
	for i := 144 * symbolSpan; i < 192*symbolSpan; i++ {
		wave[i] += jam.Sample()
	}
	if _, err := Demodulate(wave, 0, 3*symbolSpan); err == nil {
		t.Error("jammed header decoded")
	}
}

func TestSyncWaveformDeterministicPerSeed(t *testing.T) {
	a := SyncWaveform(6, 0x1B)
	b := SyncWaveform(6, 0x1B)
	c := SyncWaveform(6, 0x33)
	if len(a) != 6*symbolSpan {
		t.Fatalf("sync waveform %d samples", len(a))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Error("same seed differs")
			break
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different scrambler seeds gave identical SYNC")
	}
}

func TestTxTimeUS(t *testing.T) {
	cases := []struct {
		r    Rate
		n    int
		want int
	}{
		{Rate1, 100, 800},
		{Rate2, 100, 400},
		{Rate5_5, 100, 146},
		{Rate11, 100, 73},
	}
	for _, c := range cases {
		if got := txTimeUS(c.r, c.n); got != c.want {
			t.Errorf("txTimeUS(%v, %d) = %d, want %d", c.r, c.n, got, c.want)
		}
		if got := psduBytesFromLength(c.r, c.want, lengthExtension(c.r, c.n)); got != c.n {
			t.Errorf("psduBytesFromLength(%v, %d) = %d, want %d", c.r, c.want, got, c.n)
		}
	}
}
