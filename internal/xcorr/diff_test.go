package xcorr

import (
	"math/rand"
	"testing"

	"repro/internal/fixed"
)

// Differential tests: the packed popcount kernel (Correlator) must produce
// the identical (metric, trigger) pair as the scalar multiply-accumulate
// specification (Reference) for every coefficient bank and sample stream,
// including the warm < Length holdoff while the delay line fills, after
// Reset, and across mid-stream coefficient swaps.

// randBanks draws two coefficient banks spanning the full 3-bit signed
// range [-4, 3].
func randBanks(rng *rand.Rand) (i, q []fixed.Coeff3) {
	i = make([]fixed.Coeff3, Length)
	q = make([]fixed.Coeff3, Length)
	for k := range i {
		i[k] = fixed.Coeff3(rng.Intn(8) - 4)
		q[k] = fixed.Coeff3(rng.Intn(8) - 4)
	}
	return i, q
}

// pair returns a packed/reference pair loaded with the same bank and
// threshold.
func pair(t *testing.T, i, q []fixed.Coeff3, threshold uint32) (*Correlator, *Reference) {
	t.Helper()
	p, r := New(), NewReference()
	if err := p.SetCoefficients(i, q); err != nil {
		t.Fatal(err)
	}
	if err := r.SetCoefficients(i, q); err != nil {
		t.Fatal(err)
	}
	p.SetThreshold(threshold)
	r.SetThreshold(threshold)
	return p, r
}

func checkStream(t *testing.T, p *Correlator, r *Reference, samples []fixed.IQ, label string) {
	t.Helper()
	for n, s := range samples {
		mp, tp := p.Process(s)
		mr, tr := r.Process(s)
		if mp != mr || tp != tr {
			t.Fatalf("%s: sample %d (%d,%d): packed (metric %d, trigger %v) != reference (metric %d, trigger %v)",
				label, n, s.I, s.Q, mp, tp, mr, tr)
		}
	}
}

func TestPackedMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(0xD1FF))
	for trial := 0; trial < 100; trial++ {
		i, q := randBanks(rng)
		// Low thresholds exercise the trigger comparator (and the warm-up
		// holdoff: a threshold of 0 would fire on every post-warm sample).
		p, r := pair(t, i, q, uint32(rng.Intn(MaxMetric/4)))
		stream := make([]fixed.IQ, 3*Length)
		for n := range stream {
			stream[n] = fixed.IQ{
				I: int16(rng.Intn(1 << 16)),
				Q: int16(rng.Intn(1 << 16)),
			}
		}
		checkStream(t, p, r, stream, "random")
	}
}

func TestPackedMatchesReferenceWarmupEdge(t *testing.T) {
	// Threshold 0 means the comparator would fire on every sample; only the
	// warm < Length holdoff keeps it quiet, so any off-by-one between the
	// two implementations shows up as a trigger mismatch in the first 64
	// samples.
	rng := rand.New(rand.NewSource(0xED6E))
	i, q := randBanks(rng)
	p, r := pair(t, i, q, 0)
	stream := make([]fixed.IQ, 2*Length)
	for n := range stream {
		stream[n] = fixed.IQ{I: int16(rng.Intn(1 << 16)), Q: int16(rng.Intn(1 << 16))}
	}
	checkStream(t, p, r, stream, "warmup")
}

func TestPackedMatchesReferenceExtremes(t *testing.T) {
	// Saturated, zero and mixed-sign samples with full-range coefficient
	// banks; includes the int16 minimum, whose sign bit must slice to -1.
	extremes := []fixed.IQ{
		{I: 32767, Q: 32767}, {I: -32768, Q: -32768},
		{I: 0, Q: 0}, {I: -1, Q: 1}, {I: 1, Q: -1},
		{I: -32768, Q: 0}, {I: 0, Q: -32768}, {I: 32767, Q: -32768},
	}
	banks := [][]fixed.Coeff3{
		make([]fixed.Coeff3, Length), // all zero
		nil, nil,
	}
	allMin := make([]fixed.Coeff3, Length)
	allMax := make([]fixed.Coeff3, Length)
	for k := range allMin {
		allMin[k] = fixed.Coeff3Min
		allMax[k] = fixed.Coeff3Max
	}
	banks[1], banks[2] = allMin, allMax
	for _, iBank := range banks {
		for _, qBank := range banks {
			p, r := pair(t, iBank, qBank, 1)
			stream := make([]fixed.IQ, 0, 3*Length)
			for len(stream) < 3*Length {
				stream = append(stream, extremes...)
			}
			checkStream(t, p, r, stream, "extremes")
		}
	}
}

func TestPackedMatchesReferenceResetAndSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5EED))
	i1, q1 := randBanks(rng)
	i2, q2 := randBanks(rng)
	p, r := pair(t, i1, q1, uint32(rng.Intn(MaxMetric/8)))
	stream := func(n int) []fixed.IQ {
		s := make([]fixed.IQ, n)
		for k := range s {
			s[k] = fixed.IQ{I: int16(rng.Intn(1 << 16)), Q: int16(rng.Intn(1 << 16))}
		}
		return s
	}
	checkStream(t, p, r, stream(Length+7), "pre-swap")
	// Swap coefficients mid-stream: history must be preserved by both.
	if err := p.SetCoefficients(i2, q2); err != nil {
		t.Fatal(err)
	}
	if err := r.SetCoefficients(i2, q2); err != nil {
		t.Fatal(err)
	}
	checkStream(t, p, r, stream(Length), "post-swap")
	// Reset both: the warm-up holdoff must restart identically.
	p.Reset()
	r.Reset()
	if p.Metric() != 0 || r.Metric() != 0 {
		t.Fatal("Reset did not clear metrics")
	}
	checkStream(t, p, r, stream(2*Length), "post-reset")
}

// FuzzPackedVsReference drives both implementations from one fuzzed byte
// string: the first 128 bytes select the two coefficient banks, the next 4
// the threshold, and the remainder becomes the I/Q sample stream. Run with
//
//	go test -fuzz=FuzzPackedVsReference ./internal/xcorr
//
// to search for divergence beyond the seeded corpus.
func FuzzPackedVsReference(f *testing.F) {
	seed := make([]byte, 128+4+6*4)
	for k := range seed {
		seed[k] = byte(k * 37)
	}
	f.Add(seed)
	f.Add(make([]byte, 128+4)) // zero banks, zero threshold, empty stream
	long := make([]byte, 128+4+4*(2*Length+5))
	for k := range long {
		long[k] = byte(255 - k%251)
	}
	f.Add(long)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 128+4 {
			return
		}
		i := make([]fixed.Coeff3, Length)
		q := make([]fixed.Coeff3, Length)
		for k := 0; k < Length; k++ {
			i[k] = fixed.Coeff3(int(data[k]%8) - 4)
			q[k] = fixed.Coeff3(int(data[Length+k]%8) - 4)
		}
		threshold := uint32(data[128]) | uint32(data[129])<<8 |
			uint32(data[130])<<16 | uint32(data[131])<<24
		p, r := New(), NewReference()
		if err := p.SetCoefficients(i, q); err != nil {
			t.Fatal(err)
		}
		if err := r.SetCoefficients(i, q); err != nil {
			t.Fatal(err)
		}
		p.SetThreshold(threshold)
		r.SetThreshold(threshold)
		rest := data[132:]
		for n := 0; n+4 <= len(rest); n += 4 {
			s := fixed.IQ{
				I: int16(uint16(rest[n]) | uint16(rest[n+1])<<8),
				Q: int16(uint16(rest[n+2]) | uint16(rest[n+3])<<8),
			}
			mp, tp := p.Process(s)
			mr, tr := r.Process(s)
			if mp != mr || tp != tr {
				t.Fatalf("sample %d (%d,%d): packed (metric %d, trigger %v) != reference (metric %d, trigger %v)",
					n/4, s.I, s.Q, mp, tp, mr, tr)
			}
		}
	})
}
