package xcorr

import (
	"testing"

	"repro/internal/fixed"
)

// benchStream builds a deterministic quantized input that toggles the sign
// slicer often enough to exercise the full bit-plane datapath.
func benchStream(n int) []fixed.IQ {
	out := make([]fixed.IQ, n)
	for i := range out {
		out[i] = fixed.IQ{
			I: int16((i*2654435761+12345)%65536 - 32768),
			Q: int16((i*40503+991)%65536 - 32768),
		}
	}
	return out
}

func benchBanks(tb testing.TB) (iC, qC []fixed.Coeff3) {
	tb.Helper()
	iC = make([]fixed.Coeff3, Length)
	qC = make([]fixed.Coeff3, Length)
	for k := 0; k < Length; k++ {
		iC[k] = fixed.Coeff3(k%8 - 4)
		qC[k] = fixed.Coeff3((k*3+1)%8 - 4)
	}
	return iC, qC
}

// BenchmarkProcessPacked measures the popcount bit-plane kernel — the hot
// path of the whole datapath (one call per 25 MSPS sample).
func BenchmarkProcessPacked(b *testing.B) {
	iC, qC := benchBanks(b)
	c := New()
	if err := c.SetCoefficients(iC, qC); err != nil {
		b.Fatal(err)
	}
	c.SetThreshold(1 << 30)
	in := benchStream(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Process(in[i%len(in)])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Msamples/s")
}

// BenchmarkProcessReference measures the scalar specification loop the
// packed kernel is verified against (64-tap MAC per sample).
func BenchmarkProcessReference(b *testing.B) {
	iC, qC := benchBanks(b)
	c := NewReference()
	if err := c.SetCoefficients(iC, qC); err != nil {
		b.Fatal(err)
	}
	c.SetThreshold(1 << 30)
	in := benchStream(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Process(in[i%len(in)])
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Msamples/s")
}

// TestProcessZeroAllocs pins the kernel's zero-allocation guarantee.
func TestProcessZeroAllocs(t *testing.T) {
	iC, qC := benchBanks(t)
	c := New()
	if err := c.SetCoefficients(iC, qC); err != nil {
		t.Fatal(err)
	}
	in := benchStream(1024)
	allocs := testing.AllocsPerRun(10, func() {
		for _, s := range in {
			c.Process(s)
		}
	})
	if allocs != 0 {
		t.Errorf("packed Process: %.1f allocs per 1024-sample run, want 0", allocs)
	}
}
