// Package xcorr implements the signal cross-correlator of the custom DSP
// core: a bit-exact port of the 64-sample weighted phase correlator from the
// Rice University WARP OFDM Reference Design v15, with the paper's added
// custom logic (run-time coefficient loading and threshold comparison;
// paper §2.3, Fig. 3).
//
// The correlator slices each incoming 16-bit I/Q sample to its sign bit
// (1-bit signed, 90° phase resolution) and correlates the sign sequences
// against two banks of 64 3-bit signed coefficients (I and Q). The two
// partial correlations are combined into a confidence-weighted magnitude
// metric:
//
//	metric = (sI·cI − sQ·cQ)² + (sQ·cI + sI·cQ)²
//
// which is |Σ sign(x[n]) · conj(c[n])|² computed in 1-bit × 3-bit integer
// arithmetic, exactly what the FPGA block computes. A detection triggers
// when the metric crosses a user-selected threshold.
package xcorr

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/fixed"
	"repro/internal/fpga"
)

// Length is the fixed correlation window of the hardware design: 64 samples
// at the 25 MSPS digital sampling rate (2.56 µs of signal). The paper's §5
// limitation discussion notes this window cannot be changed at runtime.
const Length = 64

// DetectionCycles is the pipeline latency from the start of a matching
// transmission to the correlator trigger: the full 64-sample window must
// fill, i.e. 64 samples × 4 clock cycles = 256 cycles = 2.56 µs
// (paper §3.1: Txcorr_det).
const DetectionCycles = Length * fpga.CyclesPerSample

// MaxMetric is the largest metric value the datapath can produce:
// each partial sum is at most 64 · 2 · 4 = 512, so the metric tops out at
// 2 · 512² = 524288, comfortably inside the 32-bit register width.
const MaxMetric = 2 * 512 * 512

// Correlator is the streaming hardware cross-correlator. It consumes one
// quantized I/Q sample per baseband sample tick and reports the metric and
// trigger decision. Not safe for concurrent use; the register bus layer
// serializes host access.
type Correlator struct {
	coefI [Length]fixed.Coeff3
	coefQ [Length]fixed.Coeff3

	signI [Length]int8 // circular history of sliced sign bits
	signQ [Length]int8
	pos   int
	warm  int // samples consumed, saturates at Length

	threshold uint32
	metric    uint32
}

// New returns a correlator with all-zero coefficients (never triggers) and
// threshold at maximum.
func New() *Correlator {
	return &Correlator{threshold: math.MaxUint32}
}

// SetCoefficients loads the two 64-tap 3-bit coefficient banks, as the host
// does over the user register bus. Both banks must have exactly Length taps.
func (c *Correlator) SetCoefficients(i, q []fixed.Coeff3) error {
	if len(i) != Length || len(q) != Length {
		return fmt.Errorf("xcorr: coefficient banks must be %d taps, got %d/%d",
			Length, len(i), len(q))
	}
	copy(c.coefI[:], i)
	copy(c.coefQ[:], q)
	return nil
}

// SetThreshold sets the trigger comparison threshold on the squared metric.
func (c *Correlator) SetThreshold(t uint32) { c.threshold = t }

// Threshold returns the current trigger threshold.
func (c *Correlator) Threshold() uint32 { return c.threshold }

// Reset clears the sample history (but keeps coefficients and threshold).
func (c *Correlator) Reset() {
	c.signI = [Length]int8{}
	c.signQ = [Length]int8{}
	c.pos = 0
	c.warm = 0
	c.metric = 0
}

// Process consumes one baseband sample and returns the correlation metric
// and whether the trigger comparator fired on this sample.
func (c *Correlator) Process(s fixed.IQ) (metric uint32, trigger bool) {
	si, sq := s.SignBit()
	c.signI[c.pos] = si
	c.signQ[c.pos] = sq
	c.pos++
	if c.pos == Length {
		c.pos = 0
	}
	if c.warm < Length {
		c.warm++
	}

	// The oldest sample in the history aligns with coefficient 0. After the
	// pos++ above, the oldest sample sits at index c.pos.
	var sumII, sumQQ, sumQI, sumIQ int32
	idx := c.pos
	for k := 0; k < Length; k++ {
		i := int32(c.signI[idx])
		q := int32(c.signQ[idx])
		ci := int32(c.coefI[k])
		cq := int32(c.coefQ[k])
		sumII += i * ci
		sumQQ += q * cq
		sumQI += q * ci
		sumIQ += i * cq
		idx++
		if idx == Length {
			idx = 0
		}
	}
	// The coefficient banks already hold the conjugated template, so the
	// matched output is the plain complex product Σ s·c:
	// (sI + j·sQ)(cI + j·cQ) = (sI·cI − sQ·cQ) + j(sQ·cI + sI·cQ).
	re := sumII - sumQQ
	im := sumQI + sumIQ
	m := uint32(re*re) + uint32(im*im)
	c.metric = m
	// Hold off until the window has filled once so start-up garbage in the
	// delay line cannot fire the comparator.
	trigger = c.warm == Length && m >= c.threshold
	return m, trigger
}

// Metric returns the most recent correlation metric.
func (c *Correlator) Metric() uint32 { return c.metric }

// Resources reports the synthesized utilization of the cross-correlator
// block on the N210's Spartan-3A DSP (paper Fig. 3 inset).
func (c *Correlator) Resources() fpga.Resources {
	return fpga.Resources{Slices: 2613, FFs: 2647, BRAMs: 12, LUTs: 2818, DSP48s: 2}
}

// CoefficientsFromTemplate generates the two 3-bit coefficient banks from a
// complex baseband preamble template, the offline host-side generation step
// of §2.3. The template is conjugated (matched filter) and each component
// quantized to the 3-bit signed grid after peak normalization. Templates
// shorter than Length are zero-padded at the end; longer templates use their
// first Length samples — this truncation is exactly the paper's "orthogonal
// code correlated across its first 2.56 µs" effect for long codes.
func CoefficientsFromTemplate(tpl []complex128) (i, q []fixed.Coeff3) {
	re := make([]float64, Length)
	im := make([]float64, Length)
	n := min(len(tpl), Length)
	peak := 0.0
	for k := 0; k < n; k++ {
		re[k] = real(tpl[k])
		im[k] = -imag(tpl[k]) // conjugate for matched filtering
		peak = math.Max(peak, math.Max(math.Abs(re[k]), math.Abs(im[k])))
	}
	// Both rails share one normalization: scaling them independently would
	// blow the numerically-empty rail of a (near-)real template up to full
	// scale and fill the coefficient bank with quantized noise.
	i = make([]fixed.Coeff3, Length)
	q = make([]fixed.Coeff3, Length)
	if peak == 0 {
		return i, q
	}
	for k := 0; k < Length; k++ {
		i[k] = fixed.QuantizeCoeff(re[k] / peak)
		q[k] = fixed.QuantizeCoeff(im[k] / peak)
	}
	return i, q
}

// IdealPeakMetric estimates the metric the correlator would produce when the
// template itself (noiselessly) fills the window, useful for picking
// thresholds as a fraction of the achievable peak.
func IdealPeakMetric(tpl []complex128) uint32 {
	i, q := CoefficientsFromTemplate(tpl)
	c := New()
	if err := c.SetCoefficients(i, q); err != nil {
		panic(err)
	}
	var peak uint32
	for k := 0; k < min(len(tpl), Length); k++ {
		m, _ := c.Process(fixed.Quantize(tpl[k]))
		if m > peak {
			peak = m
		}
	}
	// Feed a few more samples in case pipeline alignment peaks late.
	for k := 0; k < Length && k < len(tpl)-Length; k++ {
		m, _ := c.Process(fixed.Quantize(tpl[Length+k]))
		if m > peak {
			peak = m
		}
	}
	return peak
}

// ReferenceMetric computes the same confidence-weighted metric in floating
// point without sign-bit slicing or coefficient quantization. It is not part
// of the hardware; the ablation benches use it to quantify the quantization
// loss of the 1-bit design.
func ReferenceMetric(window, tpl []complex128) float64 {
	n := min(min(len(window), len(tpl)), Length)
	var acc complex128
	for k := 0; k < n; k++ {
		acc += window[k] * cmplx.Conj(tpl[k])
	}
	return real(acc)*real(acc) + imag(acc)*imag(acc)
}

// NoiseMetricVariance returns the per-rail variance V of the correlator
// output when the input is wideband noise: the sliced signs are i.i.d. ±1,
// so both the real and imaginary partial sums are zero-mean with variance
// V = Σ(cI² + cQ²), and the metric is V·χ²₂ distributed.
func NoiseMetricVariance(i, q []fixed.Coeff3) float64 {
	var v float64
	for k := 0; k < min(len(i), len(q)); k++ {
		v += float64(i[k])*float64(i[k]) + float64(q[k])*float64(q[k])
	}
	return v
}

// ThresholdForFARate returns the trigger threshold that yields the target
// false-alarm rate (triggers per second) on a noise-only input at the
// 25 MSPS sample rate, using the χ²₂ tail P(metric > T) = exp(−T/2V).
// This reproduces the §3.2 methodology of calibrating thresholds against
// terminated-input trigger counts.
func ThresholdForFARate(i, q []fixed.Coeff3, faPerSec float64) uint32 {
	v := NoiseMetricVariance(i, q)
	if v == 0 || faPerSec <= 0 {
		return math.MaxUint32
	}
	p := faPerSec / float64(fpga.SampleRateHz)
	t := -2 * v * math.Log(p)
	if t < 1 {
		t = 1
	}
	if t > float64(MaxMetric) {
		return MaxMetric
	}
	return uint32(t)
}
