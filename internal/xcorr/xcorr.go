// Package xcorr implements the signal cross-correlator of the custom DSP
// core: a bit-exact port of the 64-sample weighted phase correlator from the
// Rice University WARP OFDM Reference Design v15, with the paper's added
// custom logic (run-time coefficient loading and threshold comparison;
// paper §2.3, Fig. 3).
//
// The correlator slices each incoming 16-bit I/Q sample to its sign bit
// (1-bit signed, 90° phase resolution) and correlates the sign sequences
// against two banks of 64 3-bit signed coefficients (I and Q). The two
// partial correlations are combined into a confidence-weighted magnitude
// metric:
//
//	metric = (sI·cI − sQ·cQ)² + (sQ·cI + sI·cQ)²
//
// which is |Σ sign(x[n]) · conj(c[n])|² computed in 1-bit × 3-bit integer
// arithmetic, exactly what the FPGA block computes. A detection triggers
// when the metric crosses a user-selected threshold.
package xcorr

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"repro/internal/fixed"
	"repro/internal/fpga"
)

// Length is the fixed correlation window of the hardware design: 64 samples
// at the 25 MSPS digital sampling rate (2.56 µs of signal). The paper's §5
// limitation discussion notes this window cannot be changed at runtime.
const Length = 64

// DetectionCycles is the pipeline latency from the start of a matching
// transmission to the correlator trigger: the full 64-sample window must
// fill, i.e. 64 samples × 4 clock cycles = 256 cycles = 2.56 µs
// (paper §3.1: Txcorr_det).
const DetectionCycles = Length * fpga.CyclesPerSample

// MaxMetric is the largest metric value the datapath can produce:
// each partial sum is at most 64 · 2 · 4 = 512, so the metric tops out at
// 2 · 512² = 524288, comfortably inside the 32-bit register width.
const MaxMetric = 2 * 512 * 512

// bitplanes is one coefficient bank decomposed for the popcount kernel.
// Because the sliced signs are ±1 and coefficients are 3-bit signed, the
// dot product Σ s[k]·c[k] can be computed without any multiplies:
//
//	s·c = sign(s)·sign(c)·|c|, and sign(s)·sign(c) = −1 ⟺ signbit(s) XOR signbit(c)
//
// so with the 64 sign bits of the history packed into one uint64 word, the
// 64 coefficient sign bits in neg, and |c| split into its three magnitude
// bit-planes mag[b] (bit k of mag[b] = bit b of |c[k]|), the whole 64-tap
// sum collapses to
//
//	Σ s·c = Σ_b 2^b·(popcount(mag[b]) − 2·popcount((signs XOR neg) AND mag[b]))
//
// which is bit-exact against the scalar multiply-accumulate (Reference).
type bitplanes struct {
	neg  uint64    // bit k set ⟺ coeff[k] < 0
	mag  [3]uint64 // magnitude bit-planes; |coeff| ≤ 4 needs exactly 3
	base int32     // Σ|coeff| = Σ_b 2^b·popcount(mag[b])
}

func makeBitplanes(bank []fixed.Coeff3) bitplanes {
	var b bitplanes
	for k, c := range bank {
		v := int32(c)
		if v < 0 {
			b.neg |= 1 << k
			v = -v
		}
		for p := 0; p < 3; p++ {
			if v&(1<<p) != 0 {
				b.mag[p] |= 1 << k
			}
		}
		b.base += v
	}
	return b
}

// dot computes Σ s[k]·c[k] over a full 64-sample window, given the XOR of
// the packed sign history with the bank's coefficient sign mask.
func (b *bitplanes) dot(x uint64) int32 {
	p := bits.OnesCount64(x&b.mag[0]) +
		2*bits.OnesCount64(x&b.mag[1]) +
		4*bits.OnesCount64(x&b.mag[2])
	return b.base - int32(2*p)
}

// dotMasked computes the same sum restricted to the valid window positions,
// used while the delay line is still filling: taps whose history slot has
// not been written yet contribute 0, exactly like the zeroed int8 entries
// of the scalar reference.
func (b *bitplanes) dotMasked(x, valid uint64) int32 {
	m0, m1, m2 := b.mag[0]&valid, b.mag[1]&valid, b.mag[2]&valid
	base := bits.OnesCount64(m0) + 2*bits.OnesCount64(m1) + 4*bits.OnesCount64(m2)
	p := bits.OnesCount64(x&m0) + 2*bits.OnesCount64(x&m1) + 4*bits.OnesCount64(x&m2)
	return int32(base - 2*p)
}

// Correlator is the streaming hardware cross-correlator. It consumes one
// quantized I/Q sample per baseband sample tick and reports the metric and
// trigger decision. Not safe for concurrent use; the register bus layer
// serializes host access.
//
// Internally it runs the packed popcount kernel: the 64-sample sign history
// lives in two rotating uint64 masks and each coefficient bank in sign/
// magnitude bit-planes, so the four partial sums cost a handful of XOR/AND/
// popcount word operations instead of 256 multiplies per sample. The
// Reference type keeps the original scalar loop; the two are bit-exact
// against each other for every input (see the differential and fuzz tests).
type Correlator struct {
	bankI bitplanes
	bankQ bitplanes

	signI uint64 // bit k ⟺ sample aligned with coefficient k is negative
	signQ uint64
	valid uint64 // bit k ⟺ that history slot holds a consumed sample
	warm  int    // samples consumed, saturates at Length

	threshold uint32
	metric    uint32
}

// New returns a correlator with all-zero coefficients (never triggers) and
// threshold at maximum.
func New() *Correlator {
	return &Correlator{threshold: math.MaxUint32}
}

// SetCoefficients loads the two 64-tap 3-bit coefficient banks, as the host
// does over the user register bus. Both banks must have exactly Length taps.
func (c *Correlator) SetCoefficients(i, q []fixed.Coeff3) error {
	if len(i) != Length || len(q) != Length {
		return fmt.Errorf("xcorr: coefficient banks must be %d taps, got %d/%d",
			Length, len(i), len(q))
	}
	c.bankI = makeBitplanes(i)
	c.bankQ = makeBitplanes(q)
	return nil
}

// SetThreshold sets the trigger comparison threshold on the squared metric.
func (c *Correlator) SetThreshold(t uint32) { c.threshold = t }

// Threshold returns the current trigger threshold.
func (c *Correlator) Threshold() uint32 { return c.threshold }

// Reset clears the sample history (but keeps coefficients and threshold).
func (c *Correlator) Reset() {
	c.signI = 0
	c.signQ = 0
	c.valid = 0
	c.warm = 0
	c.metric = 0
}

// Process consumes one baseband sample and returns the correlation metric
// and whether the trigger comparator fired on this sample.
func (c *Correlator) Process(s fixed.IQ) (metric uint32, trigger bool) {
	// The oldest sample aligns with coefficient 0 and the newest with
	// coefficient 63, so each new sample shifts every history bit one
	// coefficient position down and lands in bit 63. The sign bit of the
	// int16 is exactly the 1-bit slicer of the hardware.
	c.signI = c.signI>>1 | uint64(uint16(s.I))>>15<<63
	c.signQ = c.signQ>>1 | uint64(uint16(s.Q))>>15<<63

	var sumII, sumQQ, sumQI, sumIQ int32
	if c.warm < Length {
		c.warm++
		c.valid = c.valid>>1 | 1<<63
		v := c.valid
		sumII = c.bankI.dotMasked(c.signI^c.bankI.neg, v)
		sumQQ = c.bankQ.dotMasked(c.signQ^c.bankQ.neg, v)
		sumQI = c.bankI.dotMasked(c.signQ^c.bankI.neg, v)
		sumIQ = c.bankQ.dotMasked(c.signI^c.bankQ.neg, v)
	} else {
		sumII = c.bankI.dot(c.signI ^ c.bankI.neg)
		sumQQ = c.bankQ.dot(c.signQ ^ c.bankQ.neg)
		sumQI = c.bankI.dot(c.signQ ^ c.bankI.neg)
		sumIQ = c.bankQ.dot(c.signI ^ c.bankQ.neg)
	}
	// The coefficient banks already hold the conjugated template, so the
	// matched output is the plain complex product Σ s·c:
	// (sI + j·sQ)(cI + j·cQ) = (sI·cI − sQ·cQ) + j(sQ·cI + sI·cQ).
	re := sumII - sumQQ
	im := sumQI + sumIQ
	m := uint32(re*re) + uint32(im*im)
	c.metric = m
	// Hold off until the window has filled once so start-up garbage in the
	// delay line cannot fire the comparator.
	trigger = c.warm == Length && m >= c.threshold
	return m, trigger
}

// ProcessPacked is the block entry point of the correlator: it consumes n
// samples' worth of pre-packed sign bits (bit k of signI[w]/signQ[w] set ⟺
// sample w·64+k sliced negative, the layout fixed.QuantizeFused produces)
// and writes the per-sample trigger-level decisions into the level bitmap
// (bit k of level[w] ⟺ sample w·64+k crossed the threshold). Unused bits of
// the last level word are cleared.
//
// Instead of rotating the two uint64 sign histories once per sample, each
// sample's 64-bit window is extracted from two adjacent packed words with a
// pair of shifts, so the whole popcount kernel runs register-resident over
// the block. Metric, trigger decisions and end-of-block state (sign
// histories, warm-up fill, last metric) are bit-identical to calling
// Process once per sample — the differential and fuzz suites pin this
// against both the per-sample kernel and the scalar Reference.
func (c *Correlator) ProcessPacked(signI, signQ []uint64, n int, level []uint64) {
	if n == 0 {
		return
	}
	words := (n + 63) >> 6
	_ = signI[:words]
	_ = signQ[:words]
	_ = level[:words]
	// carries hold the 64 sign bits preceding the current word: the
	// pre-block rotating histories for word 0, then the previous packed
	// word.
	carryI, carryQ := c.signI, c.signQ
	negI, negQ := c.bankI.neg, c.bankQ.neg
	thr := c.threshold
	// Bitplane words live in locals so the four dot products of the hot loop
	// stay register-resident (mi/mq are the magnitude planes, bi/bq the
	// Σ|coeff| bases).
	mi0, mi1, mi2, bi := c.bankI.mag[0], c.bankI.mag[1], c.bankI.mag[2], c.bankI.base
	mq0, mq1, mq2, bq := c.bankQ.mag[0], c.bankQ.mag[1], c.bankQ.mag[2], c.bankQ.base
	var histI, histQ uint64
	var m uint32
	for w := 0; w < words; w++ {
		wordI, wordQ := signI[w], signQ[w]
		count := n - w<<6
		if count > 64 {
			count = 64
		}
		var lvl uint64
		k := 0
		// Cold loop: the delay line is still filling, so taps beyond the
		// consumed history are masked out exactly like the per-sample path.
		for ; k < count && c.warm < Length; k++ {
			histI = wordI<<(63-uint(k)) | carryI>>(uint(k)+1)
			histQ = wordQ<<(63-uint(k)) | carryQ>>(uint(k)+1)
			c.warm++
			c.valid = c.valid>>1 | 1<<63
			v := c.valid
			sumII := c.bankI.dotMasked(histI^negI, v)
			sumQQ := c.bankQ.dotMasked(histQ^negQ, v)
			sumQI := c.bankI.dotMasked(histQ^negI, v)
			sumIQ := c.bankQ.dotMasked(histI^negQ, v)
			re := sumII - sumQQ
			im := sumQI + sumIQ
			m = uint32(re*re) + uint32(im*im)
			if c.warm == Length && m >= thr {
				lvl |= 1 << k
			}
		}
		// Hot loop: full 64-tap windows, no masking, no per-sample branches
		// beyond the comparator itself. Template-derived banks quantize to
		// |c| ≤ 3 and never populate the weight-4 magnitude plane, so the
		// common case runs an 8-popcount kernel; popcount issues on a single
		// execution port, making the plane count the loop's critical
		// resource. Banks loaded raw over the register bus can carry −4 and
		// take the full 12-popcount path.
		if mi2|mq2 == 0 {
			for ; k < count; k++ {
				histI = wordI<<(63-uint(k)) | carryI>>(uint(k)+1)
				histQ = wordQ<<(63-uint(k)) | carryQ>>(uint(k)+1)
				xII := histI ^ negI
				xQQ := histQ ^ negQ
				xQI := histQ ^ negI
				xIQ := histI ^ negQ
				sumII := bi - int32(2*(bits.OnesCount64(xII&mi0)+
					2*bits.OnesCount64(xII&mi1)))
				sumQQ := bq - int32(2*(bits.OnesCount64(xQQ&mq0)+
					2*bits.OnesCount64(xQQ&mq1)))
				sumQI := bi - int32(2*(bits.OnesCount64(xQI&mi0)+
					2*bits.OnesCount64(xQI&mi1)))
				sumIQ := bq - int32(2*(bits.OnesCount64(xIQ&mq0)+
					2*bits.OnesCount64(xIQ&mq1)))
				re := sumII - sumQQ
				im := sumQI + sumIQ
				m = uint32(re*re) + uint32(im*im)
				if m >= thr {
					lvl |= 1 << k
				}
			}
		} else {
			for ; k < count; k++ {
				histI = wordI<<(63-uint(k)) | carryI>>(uint(k)+1)
				histQ = wordQ<<(63-uint(k)) | carryQ>>(uint(k)+1)
				xII := histI ^ negI
				xQQ := histQ ^ negQ
				xQI := histQ ^ negI
				xIQ := histI ^ negQ
				sumII := bi - int32(2*(bits.OnesCount64(xII&mi0)+
					2*bits.OnesCount64(xII&mi1)+4*bits.OnesCount64(xII&mi2)))
				sumQQ := bq - int32(2*(bits.OnesCount64(xQQ&mq0)+
					2*bits.OnesCount64(xQQ&mq1)+4*bits.OnesCount64(xQQ&mq2)))
				sumQI := bi - int32(2*(bits.OnesCount64(xQI&mi0)+
					2*bits.OnesCount64(xQI&mi1)+4*bits.OnesCount64(xQI&mi2)))
				sumIQ := bq - int32(2*(bits.OnesCount64(xIQ&mq0)+
					2*bits.OnesCount64(xIQ&mq1)+4*bits.OnesCount64(xIQ&mq2)))
				re := sumII - sumQQ
				im := sumQI + sumIQ
				m = uint32(re*re) + uint32(im*im)
				if m >= thr {
					lvl |= 1 << k
				}
			}
		}
		level[w] = lvl
		carryI, carryQ = wordI, wordQ
	}
	c.signI, c.signQ = histI, histQ
	c.metric = m
}

// Metric returns the most recent correlation metric.
func (c *Correlator) Metric() uint32 { return c.metric }

// Resources reports the synthesized utilization of the cross-correlator
// block on the N210's Spartan-3A DSP (paper Fig. 3 inset).
func (c *Correlator) Resources() fpga.Resources {
	return fpga.Resources{Slices: 2613, FFs: 2647, BRAMs: 12, LUTs: 2818, DSP48s: 2}
}

// CoefficientsFromTemplate generates the two 3-bit coefficient banks from a
// complex baseband preamble template, the offline host-side generation step
// of §2.3. The template is conjugated (matched filter) and each component
// quantized to the 3-bit signed grid after peak normalization. Templates
// shorter than Length are zero-padded at the end; longer templates use their
// first Length samples — this truncation is exactly the paper's "orthogonal
// code correlated across its first 2.56 µs" effect for long codes.
func CoefficientsFromTemplate(tpl []complex128) (i, q []fixed.Coeff3) {
	re := make([]float64, Length)
	im := make([]float64, Length)
	n := min(len(tpl), Length)
	peak := 0.0
	for k := 0; k < n; k++ {
		re[k] = real(tpl[k])
		im[k] = -imag(tpl[k]) // conjugate for matched filtering
		peak = math.Max(peak, math.Max(math.Abs(re[k]), math.Abs(im[k])))
	}
	// Both rails share one normalization: scaling them independently would
	// blow the numerically-empty rail of a (near-)real template up to full
	// scale and fill the coefficient bank with quantized noise.
	i = make([]fixed.Coeff3, Length)
	q = make([]fixed.Coeff3, Length)
	if peak == 0 {
		return i, q
	}
	for k := 0; k < Length; k++ {
		i[k] = fixed.QuantizeCoeff(re[k] / peak)
		q[k] = fixed.QuantizeCoeff(im[k] / peak)
	}
	return i, q
}

// IdealPeakMetric estimates the metric the correlator would produce when the
// template itself (noiselessly) fills the window, useful for picking
// thresholds as a fraction of the achievable peak.
func IdealPeakMetric(tpl []complex128) uint32 {
	i, q := CoefficientsFromTemplate(tpl)
	c := New()
	if err := c.SetCoefficients(i, q); err != nil {
		panic(err)
	}
	var peak uint32
	for k := 0; k < min(len(tpl), Length); k++ {
		m, _ := c.Process(fixed.Quantize(tpl[k]))
		if m > peak {
			peak = m
		}
	}
	// Feed a few more samples in case pipeline alignment peaks late.
	for k := 0; k < Length && k < len(tpl)-Length; k++ {
		m, _ := c.Process(fixed.Quantize(tpl[Length+k]))
		if m > peak {
			peak = m
		}
	}
	return peak
}

// ReferenceMetric computes the same confidence-weighted metric in floating
// point without sign-bit slicing or coefficient quantization. It is not part
// of the hardware; the ablation benches use it to quantify the quantization
// loss of the 1-bit design.
func ReferenceMetric(window, tpl []complex128) float64 {
	n := min(min(len(window), len(tpl)), Length)
	var acc complex128
	for k := 0; k < n; k++ {
		acc += window[k] * cmplx.Conj(tpl[k])
	}
	return real(acc)*real(acc) + imag(acc)*imag(acc)
}

// NoiseMetricVariance returns the per-rail variance V of the correlator
// output when the input is wideband noise: the sliced signs are i.i.d. ±1,
// so both the real and imaginary partial sums are zero-mean with variance
// V = Σ(cI² + cQ²), and the metric is V·χ²₂ distributed.
func NoiseMetricVariance(i, q []fixed.Coeff3) float64 {
	var v float64
	for k := 0; k < min(len(i), len(q)); k++ {
		v += float64(i[k])*float64(i[k]) + float64(q[k])*float64(q[k])
	}
	return v
}

// ThresholdForFARate returns the trigger threshold that yields the target
// false-alarm rate (triggers per second) on a noise-only input at the
// 25 MSPS sample rate, using the χ²₂ tail P(metric > T) = exp(−T/2V).
// This reproduces the §3.2 methodology of calibrating thresholds against
// terminated-input trigger counts.
func ThresholdForFARate(i, q []fixed.Coeff3, faPerSec float64) uint32 {
	v := NoiseMetricVariance(i, q)
	if v == 0 || faPerSec <= 0 {
		return math.MaxUint32
	}
	p := faPerSec / float64(fpga.SampleRateHz)
	t := -2 * v * math.Log(p)
	if t < 1 {
		t = 1
	}
	if t > float64(MaxMetric) {
		return MaxMetric
	}
	return uint32(t)
}
