package xcorr

import (
	"math/rand"
	"testing"

	"repro/internal/fixed"
)

// Differential tests for the block entry point: ProcessPacked consumes
// pre-packed sign bits and must produce trigger-level bitmaps and
// end-of-block state bit-identical to calling Process once per sample —
// including partial last words, the warm-up holdoff straddling a word
// boundary, and the register-bus-only −4 coefficients that populate the
// weight-4 magnitude plane and select the 12-popcount kernel.

// packSigns packs a sample stream's sign bits into the SoA word layout that
// fixed.QuantizeFused produces.
func packSigns(samples []fixed.IQ) (signI, signQ []uint64) {
	words := (len(samples) + 63) / 64
	signI = make([]uint64, words)
	signQ = make([]uint64, words)
	for n, s := range samples {
		if s.I < 0 {
			signI[n/64] |= 1 << (n % 64)
		}
		if s.Q < 0 {
			signQ[n/64] |= 1 << (n % 64)
		}
	}
	return signI, signQ
}

// checkPackedBlocks streams the samples through a per-sample reference
// correlator and through a block correlator chopped at blockLen, comparing
// the per-sample trigger decisions and the carried state after every block.
func checkPackedBlocks(t *testing.T, i, q []fixed.Coeff3, threshold uint32, samples []fixed.IQ, blockLen int) {
	t.Helper()
	blk, ref := New(), New()
	if err := blk.SetCoefficients(i, q); err != nil {
		t.Fatal(err)
	}
	if err := ref.SetCoefficients(i, q); err != nil {
		t.Fatal(err)
	}
	blk.SetThreshold(threshold)
	ref.SetThreshold(threshold)

	refLevel := make([]bool, len(samples))
	for n, s := range samples {
		_, trig := ref.Process(s)
		refLevel[n] = trig
	}

	for pos := 0; pos < len(samples); pos += blockLen {
		end := pos + blockLen
		if end > len(samples) {
			end = len(samples)
		}
		chunk := samples[pos:end]
		signI, signQ := packSigns(chunk)
		level := make([]uint64, (len(chunk)+63)/64)
		blk.ProcessPacked(signI, signQ, len(chunk), level)
		for k := range chunk {
			got := level[k/64]>>(k%64)&1 != 0
			if got != refLevel[pos+k] {
				t.Fatalf("blockLen %d: level diverges at sample %d: packed %v vs per-sample %v",
					blockLen, pos+k, got, refLevel[pos+k])
			}
		}
	}
	if blk.Metric() != ref.Metric() {
		t.Fatalf("blockLen %d: end metric %d != per-sample %d", blockLen, blk.Metric(), ref.Metric())
	}
	if blk.signI != ref.signI || blk.signQ != ref.signQ {
		t.Fatalf("blockLen %d: carried sign history diverges: (%x,%x) vs (%x,%x)",
			blockLen, blk.signI, blk.signQ, ref.signI, ref.signQ)
	}
}

func TestProcessPackedBoundaryLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(0xB10C))
	stream := make([]fixed.IQ, 4*Length+5)
	for n := range stream {
		stream[n] = fixed.IQ{I: int16(rng.Intn(1 << 16)), Q: int16(rng.Intn(1 << 16))}
	}
	i, q := randBanks(rng)
	for _, blockLen := range []int{1, 63, 64, 65, 128, 129, len(stream)} {
		checkPackedBlocks(t, i, q, uint32(rng.Intn(MaxMetric/4)), stream, blockLen)
	}
}

func TestProcessPackedThreePlaneBanks(t *testing.T) {
	// All-(−4) banks populate mag[2], forcing the full 12-popcount kernel
	// that template-derived coefficients (|c| ≤ 3) never select.
	allMin := make([]fixed.Coeff3, Length)
	for k := range allMin {
		allMin[k] = fixed.Coeff3Min
	}
	rng := rand.New(rand.NewSource(0x3147))
	stream := make([]fixed.IQ, 3*Length)
	for n := range stream {
		stream[n] = fixed.IQ{I: int16(rng.Intn(1 << 16)), Q: int16(rng.Intn(1 << 16))}
	}
	for _, blockLen := range []int{1, 63, 64, 65, len(stream)} {
		checkPackedBlocks(t, allMin, allMin, 1000, stream, blockLen)
	}
}

func TestProcessPackedWarmupAcrossBlocks(t *testing.T) {
	// Threshold 0 fires on every warm sample, so any off-by-one in how the
	// cold loop hands over to the hot loop mid-word shows up immediately.
	rng := rand.New(rand.NewSource(0xC01D))
	i, q := randBanks(rng)
	stream := make([]fixed.IQ, 2*Length+17)
	for n := range stream {
		stream[n] = fixed.IQ{I: int16(rng.Intn(1 << 16)), Q: int16(rng.Intn(1 << 16))}
	}
	for _, blockLen := range []int{1, 3, 63, 64, 65} {
		checkPackedBlocks(t, i, q, 0, stream, blockLen)
	}
}

func TestProcessPackedResumesPerSample(t *testing.T) {
	// A block call followed by per-sample calls must behave as one
	// uninterrupted stream: the packed path has to leave the rotating
	// histories exactly where the scalar path would.
	rng := rand.New(rand.NewSource(0x5EAD))
	i, q := randBanks(rng)
	blk, ref := New(), New()
	if err := blk.SetCoefficients(i, q); err != nil {
		t.Fatal(err)
	}
	if err := ref.SetCoefficients(i, q); err != nil {
		t.Fatal(err)
	}
	thr := uint32(rng.Intn(MaxMetric / 8))
	blk.SetThreshold(thr)
	ref.SetThreshold(thr)

	head := make([]fixed.IQ, Length+29)
	for n := range head {
		head[n] = fixed.IQ{I: int16(rng.Intn(1 << 16)), Q: int16(rng.Intn(1 << 16))}
	}
	signI, signQ := packSigns(head)
	level := make([]uint64, (len(head)+63)/64)
	blk.ProcessPacked(signI, signQ, len(head), level)
	for _, s := range head {
		ref.Process(s)
	}
	for n := 0; n < 2*Length; n++ {
		s := fixed.IQ{I: int16(rng.Intn(1 << 16)), Q: int16(rng.Intn(1 << 16))}
		mb, tb := blk.Process(s)
		mr, tr := ref.Process(s)
		if mb != mr || tb != tr {
			t.Fatalf("post-block sample %d: (%d,%v) != (%d,%v)", n, mb, tb, mr, tr)
		}
	}
}
