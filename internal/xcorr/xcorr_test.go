package xcorr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixed"
)

// randTemplate builds a random unit-amplitude complex template.
func randTemplate(rng *rand.Rand, n int) []complex128 {
	tpl := make([]complex128, n)
	for i := range tpl {
		tpl[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return tpl
}

func loaded(t *testing.T, tpl []complex128) *Correlator {
	t.Helper()
	c := New()
	i, q := CoefficientsFromTemplate(tpl)
	if err := c.SetCoefficients(i, q); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSetCoefficientsValidation(t *testing.T) {
	c := New()
	if err := c.SetCoefficients(make([]fixed.Coeff3, 10), make([]fixed.Coeff3, 64)); err == nil {
		t.Error("short I bank accepted")
	}
	if err := c.SetCoefficients(make([]fixed.Coeff3, 64), make([]fixed.Coeff3, 63)); err == nil {
		t.Error("short Q bank accepted")
	}
}

func TestMetricPeaksAtTemplateEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tpl := randTemplate(rng, Length)
	c := loaded(t, tpl)

	// Stream 200 noise samples, then the template, then more noise; the peak
	// metric must land exactly when the last template sample enters.
	var peakAt int
	var peak uint32
	n := 0
	feed := func(s complex128) {
		m, _ := c.Process(fixed.Quantize(s))
		if m > peak {
			peak, peakAt = m, n
		}
		n++
	}
	for i := 0; i < 200; i++ {
		feed(complex(rng.NormFloat64(), rng.NormFloat64()) * 0.05)
	}
	for _, s := range tpl {
		feed(s * 0.5)
	}
	for i := 0; i < 100; i++ {
		feed(complex(rng.NormFloat64(), rng.NormFloat64()) * 0.05)
	}
	if peakAt != 200+Length-1 {
		t.Errorf("peak at sample %d, want %d", peakAt, 200+Length-1)
	}
	// A Gaussian template through 1-bit × 3-bit arithmetic accumulates
	// partial sums of roughly ±60 per rail, so the squared metric lands in
	// the low tens of thousands; anything below ~8000 means the arithmetic
	// is not accumulating coherently.
	if peak < 8000 {
		t.Errorf("peak metric %d suspiciously low", peak)
	}
}

func TestTriggerThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tpl := randTemplate(rng, Length)
	peak := IdealPeakMetric(tpl)
	c := loaded(t, tpl)
	c.SetThreshold(peak / 2)

	trig := false
	for _, s := range tpl {
		if _, tr := c.Process(fixed.Quantize(s)); tr {
			trig = true
		}
	}
	if !trig {
		t.Error("matched template did not trigger at half-peak threshold")
	}

	// Uncorrelated noise at the same threshold must not trigger.
	c.Reset()
	for i := 0; i < 5000; i++ {
		s := complex(rng.NormFloat64(), rng.NormFloat64())
		if _, tr := c.Process(fixed.Quantize(s)); tr {
			t.Fatal("noise triggered at half-peak threshold")
		}
	}
}

func TestNoTriggerDuringWarmup(t *testing.T) {
	// An all-positive-coefficient correlator fed DC would instantly cross
	// any small threshold, but must hold off until 64 samples are in.
	c := New()
	ones := make([]fixed.Coeff3, Length)
	for i := range ones {
		ones[i] = 3
	}
	if err := c.SetCoefficients(ones, make([]fixed.Coeff3, Length)); err != nil {
		t.Fatal(err)
	}
	c.SetThreshold(1)
	for i := 0; i < Length-1; i++ {
		if _, tr := c.Process(fixed.IQ{I: 32767, Q: 0}); tr {
			t.Fatalf("triggered during warmup at sample %d", i)
		}
	}
	if _, tr := c.Process(fixed.IQ{I: 32767, Q: 0}); !tr {
		t.Error("did not trigger once window filled")
	}
}

func TestResetClearsHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tpl := randTemplate(rng, Length)
	c := loaded(t, tpl)
	for _, s := range tpl {
		c.Process(fixed.Quantize(s))
	}
	before := c.Metric()
	c.Reset()
	if c.Metric() != 0 {
		t.Error("Reset did not clear metric")
	}
	// After reset the same template must reproduce the same metric.
	for _, s := range tpl {
		c.Process(fixed.Quantize(s))
	}
	if c.Metric() != before {
		t.Errorf("metric after reset %d != %d", c.Metric(), before)
	}
}

// The sign-bit correlator metric is invariant to any global phase rotation
// that maps the quadrant grid to itself (multiples of 90°): rotating input
// by i permutes (I,Q) signs and the complex magnitude is unchanged.
func TestQuadrantRotationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tpl := randTemplate(r, Length)
		rot := complex(0, 1)

		c1 := loaded(t, tpl)
		c2 := loaded(t, tpl)
		var m1, m2 uint32
		for _, s := range tpl {
			m1, _ = c1.Process(fixed.Quantize(s * 0.5))
			m2, _ = c2.Process(fixed.Quantize(s * 0.5 * rot))
		}
		return m1 == m2
	}
	// The invariance genuinely fails on samples with an exactly-zero I or Q
	// component (the slicer maps 0 to +1, which is not symmetric under
	// rotation), so drive quick from a fixed source that avoids them rather
	// than the default time-based seed.
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestAmplitudeInvariance(t *testing.T) {
	// Sign-bit slicing makes the metric independent of input amplitude.
	rng := rand.New(rand.NewSource(5))
	tpl := randTemplate(rng, Length)
	c1 := loaded(t, tpl)
	c2 := loaded(t, tpl)
	var m1, m2 uint32
	for _, s := range tpl {
		m1, _ = c1.Process(fixed.Quantize(s * 0.9))
		m2, _ = c2.Process(fixed.Quantize(s * 0.01))
	}
	if m1 != m2 {
		t.Errorf("amplitude changed metric: %d vs %d", m1, m2)
	}
}

func TestCoefficientsFromTemplateTruncates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	long := randTemplate(rng, 200)
	i1, q1 := CoefficientsFromTemplate(long)
	i2, q2 := CoefficientsFromTemplate(long[:Length])
	for k := 0; k < Length; k++ {
		if i1[k] != i2[k] || q1[k] != q2[k] {
			t.Fatal("long template must use exactly its first 64 samples")
		}
	}
	// Short template zero-pads.
	i3, _ := CoefficientsFromTemplate(long[:10])
	for k := 10; k < Length; k++ {
		if i3[k] != 0 {
			t.Fatal("short template must zero-pad")
		}
	}
}

func TestDetectionCyclesConstant(t *testing.T) {
	// Paper §3.1: Txcorr_det = 64 samples = 2.56 µs at 25 MSPS.
	if DetectionCycles != 256 {
		t.Errorf("DetectionCycles = %d, want 256", DetectionCycles)
	}
}

func TestResourcesMatchPaper(t *testing.T) {
	r := New().Resources()
	if r.Slices != 2613 || r.FFs != 2647 || r.BRAMs != 12 || r.LUTs != 2818 || r.DSP48s != 2 {
		t.Errorf("Resources = %+v, want paper Fig. 3 inset", r)
	}
}

func TestReferenceMetricPeak(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tpl := randTemplate(rng, Length)
	m := ReferenceMetric(tpl, tpl)
	if m <= 0 {
		t.Error("self-correlation must be positive")
	}
	// Mismatched random window correlates much lower on average.
	other := randTemplate(rng, Length)
	if ReferenceMetric(other, tpl) >= m {
		t.Error("random window out-correlated the matched template")
	}
}

func TestNoiseMetricVariance(t *testing.T) {
	i := []fixed.Coeff3{3, -2, 0}
	q := []fixed.Coeff3{1, 0, 2}
	// V = (9+1) + (4+0) + (0+4) = 18.
	if v := NoiseMetricVariance(i, q); v != 18 {
		t.Errorf("V = %v, want 18", v)
	}
	if v := NoiseMetricVariance(nil, nil); v != 0 {
		t.Errorf("empty V = %v", v)
	}
}

func TestThresholdForFARate(t *testing.T) {
	tpl := randTemplate(rand.New(rand.NewSource(8)), Length)
	i, q := CoefficientsFromTemplate(tpl)
	loose := ThresholdForFARate(i, q, 1.0)
	tight := ThresholdForFARate(i, q, 0.001)
	if tight <= loose {
		t.Errorf("tighter FA target must raise the threshold: %d vs %d", tight, loose)
	}
	// Degenerate inputs saturate safely.
	if ThresholdForFARate(nil, nil, 1) != math.MaxUint32 {
		t.Error("zero-variance banks should disable the trigger")
	}
	if ThresholdForFARate(i, q, 0) != math.MaxUint32 {
		t.Error("zero FA target should disable the trigger")
	}
	// An absurdly loose target clamps to at least 1.
	if thr := ThresholdForFARate(i, q, 1e12); thr < 1 {
		t.Errorf("loose threshold %d", thr)
	}
}

func TestThresholdFAEmpirical(t *testing.T) {
	// The analytic χ² threshold must actually bound the empirical FA rate:
	// at a 100/s target over 2M noise samples we expect ~8 triggers; allow
	// generous slack but catch order-of-magnitude miscalibration.
	tpl := randTemplate(rand.New(rand.NewSource(9)), Length)
	i, q := CoefficientsFromTemplate(tpl)
	thr := ThresholdForFARate(i, q, 1000)
	c := New()
	if err := c.SetCoefficients(i, q); err != nil {
		t.Fatal(err)
	}
	c.SetThreshold(thr)
	rng := rand.New(rand.NewSource(10))
	const n = 2_000_000
	edges := 0
	prev := false
	for k := 0; k < n; k++ {
		_, tr := c.Process(fixed.Quantize(complex(rng.NormFloat64(), rng.NormFloat64()) * 0.1))
		if tr && !prev {
			edges++
		}
		prev = tr
	}
	// 1000/s at 25 MSPS over 2M samples ⇒ expect ~80 edges.
	if edges < 8 || edges > 800 {
		t.Errorf("empirical FA edges = %d over %d samples, want ~80", edges, n)
	}
}
