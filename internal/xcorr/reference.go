package xcorr

import (
	"fmt"
	"math"

	"repro/internal/fixed"
)

// Reference is the original 64-iteration scalar multiply-accumulate
// implementation of the cross-correlator, kept verbatim as the bit-exact
// specification of the datapath. The production Correlator runs the packed
// popcount kernel instead; the differential and fuzz tests assert that the
// two produce identical (metric, trigger) pairs for every possible input,
// including the warm-up holdoff while the delay line fills.
//
// Reference is the literal transcription of the FPGA block diagram (one
// multiply-accumulate per tap per sample) and is what new kernel variants
// must be validated against. It is not used on the hot path.
type Reference struct {
	coefI [Length]fixed.Coeff3
	coefQ [Length]fixed.Coeff3

	signI [Length]int8 // circular history of sliced sign bits
	signQ [Length]int8
	pos   int
	warm  int // samples consumed, saturates at Length

	threshold uint32
	metric    uint32
}

// NewReference returns a reference correlator with all-zero coefficients
// (never triggers) and threshold at maximum.
func NewReference() *Reference {
	return &Reference{threshold: math.MaxUint32}
}

// SetCoefficients loads the two 64-tap 3-bit coefficient banks.
func (c *Reference) SetCoefficients(i, q []fixed.Coeff3) error {
	if len(i) != Length || len(q) != Length {
		return fmt.Errorf("xcorr: coefficient banks must be %d taps, got %d/%d",
			Length, len(i), len(q))
	}
	copy(c.coefI[:], i)
	copy(c.coefQ[:], q)
	return nil
}

// SetThreshold sets the trigger comparison threshold on the squared metric.
func (c *Reference) SetThreshold(t uint32) { c.threshold = t }

// Threshold returns the current trigger threshold.
func (c *Reference) Threshold() uint32 { return c.threshold }

// Reset clears the sample history (but keeps coefficients and threshold).
func (c *Reference) Reset() {
	c.signI = [Length]int8{}
	c.signQ = [Length]int8{}
	c.pos = 0
	c.warm = 0
	c.metric = 0
}

// Metric returns the most recent correlation metric.
func (c *Reference) Metric() uint32 { return c.metric }

// Process consumes one baseband sample and returns the correlation metric
// and whether the trigger comparator fired on this sample.
func (c *Reference) Process(s fixed.IQ) (metric uint32, trigger bool) {
	si, sq := s.SignBit()
	c.signI[c.pos] = si
	c.signQ[c.pos] = sq
	c.pos++
	if c.pos == Length {
		c.pos = 0
	}
	if c.warm < Length {
		c.warm++
	}

	// The oldest sample in the history aligns with coefficient 0. After the
	// pos++ above, the oldest sample sits at index c.pos.
	var sumII, sumQQ, sumQI, sumIQ int32
	idx := c.pos
	for k := 0; k < Length; k++ {
		i := int32(c.signI[idx])
		q := int32(c.signQ[idx])
		ci := int32(c.coefI[k])
		cq := int32(c.coefQ[k])
		sumII += i * ci
		sumQQ += q * cq
		sumQI += q * ci
		sumIQ += i * cq
		idx++
		if idx == Length {
			idx = 0
		}
	}
	// The coefficient banks already hold the conjugated template, so the
	// matched output is the plain complex product Σ s·c:
	// (sI + j·sQ)(cI + j·cQ) = (sI·cI − sQ·cQ) + j(sQ·cI + sI·cQ).
	re := sumII - sumQQ
	im := sumQI + sumIQ
	m := uint32(re*re) + uint32(im*im)
	c.metric = m
	// Hold off until the window has filled once so start-up garbage in the
	// delay line cannot fire the comparator.
	trigger = c.warm == Length && m >= c.threshold
	return m, trigger
}
