package defense

import (
	"fmt"
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/wifi"
)

// iJam-style self-jamming secrecy (Gollakota & Katabi [5,6]): the
// transmitter sends every OFDM data symbol twice; the intended receiver
// uses its own full-duplex radio to jam, at every sample position, exactly
// one of the two copies — chosen by a secret per-sample mask. Both copies
// therefore carry the same amount of jamming energy (defeating symbol-level
// energy comparison), but the receiver, who knows the mask, stitches a
// completely clean symbol out of the unjammed halves. An eavesdropper must
// guess per sample; with the jamming power near the signal level the
// per-sample energy test it can run is barely better than chance.

// IJamConfig parameterizes one exchange.
type IJamConfig struct {
	// Rate is the OFDM data rate of the protected frame. Dense
	// constellations (Rate54) are the natural fit: the scheme denies the
	// eavesdropper clean samples, and 64-QAM cannot survive the residue,
	// whereas a heavily-coded QPSK frame can shrug off the eavesdropper's
	// picking errors via the Viterbi decoder.
	Rate wifi.Rate
	// JamToSignalDB is the receiver's self-jamming power relative to the
	// received signal power. Near 0 dB hides which copy is jammed; far
	// above it the energy difference leaks the choice.
	JamToSignalDB float64
	// NoiseSNRdB is the channel SNR for both receiver and eavesdropper.
	NoiseSNRdB float64
	// Seed drives the receiver's secret copy choices and all noise.
	Seed int64
}

// IJamResult reports one exchange.
type IJamResult struct {
	// LegitOK: the intended receiver recovered the exact payload.
	LegitOK bool
	// EveOK: the eavesdropper (picking the lower-energy sample of each
	// pair position) recovered the exact payload.
	EveOK bool
	// EveSampleErrors counts sample positions where the eavesdropper
	// picked the jammed copy.
	EveSampleErrors int
	// Samples is the number of duplicated sample positions.
	Samples int
}

// IJamExchange runs one protected frame through the scheme.
func IJamExchange(psdu []byte, cfg IJamConfig) (*IJamResult, error) {
	if len(psdu) == 0 {
		return nil, fmt.Errorf("defense: empty payload")
	}
	if !cfg.Rate.Valid() {
		return nil, fmt.Errorf("defense: invalid rate %v", cfg.Rate)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	frame, err := wifi.Modulate(psdu, wifi.TxConfig{
		Rate:          cfg.Rate,
		ScramblerSeed: uint8(rng.Intn(126)) + 1,
	})
	if err != nil {
		return nil, err
	}
	// Split: preamble+SIGNAL head, then the data symbols.
	head := wifi.ShortPreambleLen + wifi.LongPreambleLen + wifi.SymbolLen
	data := frame[head:]
	nsym := len(data) / wifi.SymbolLen
	if nsym == 0 {
		return nil, fmt.Errorf("defense: no data symbols")
	}

	// On-air stream: head, then each symbol twice.
	air := frame[:head].Clone()
	for s := 0; s < nsym; s++ {
		sym := data[s*wifi.SymbolLen : (s+1)*wifi.SymbolLen]
		air = append(air, sym...)
		air = append(air, sym...)
	}

	// The receiver's secret: at every sample position of every pair, which
	// copy gets jammed. Both copies receive N/2 jammed samples on average,
	// so their total energies are statistically identical.
	mask := make([][]bool, nsym) // mask[s][i]: true = first copy jammed at i
	for s := range mask {
		mask[s] = make([]bool, wifi.SymbolLen)
		for i := range mask[s] {
			mask[s][i] = rng.Intn(2) == 0
		}
	}
	sigPower := frame.Power()
	jamPower := sigPower * dsp.FromDB(cfg.JamToSignalDB)
	jamSrc := dsp.NewNoiseSource(jamPower, cfg.Seed+11)
	jammed := air.Clone()
	for s := 0; s < nsym; s++ {
		off0 := head + 2*s*wifi.SymbolLen
		off1 := off0 + wifi.SymbolLen
		for i := 0; i < wifi.SymbolLen; i++ {
			if mask[s][i] {
				jammed[off0+i] += jamSrc.Sample()
			} else {
				jammed[off1+i] += jamSrc.Sample()
			}
		}
	}

	// Channel noise for each listener.
	noisePower := sigPower / dsp.FromDB(cfg.NoiseSNRdB)
	rxNoise := dsp.NewNoiseSource(noisePower, cfg.Seed+22)
	eveNoise := dsp.NewNoiseSource(noisePower, cfg.Seed+33)
	rxAir := rxNoise.AddTo(jammed.Clone())
	eveAir := eveNoise.AddTo(jammed.Clone())

	res := &IJamResult{Samples: nsym * wifi.SymbolLen}

	// Legitimate receiver: stitch each symbol from the unjammed samples.
	legit := reassemble(rxAir, head, nsym, func(s, i int) int {
		if mask[s][i] {
			return 1 // first copy jammed at i, take the second
		}
		return 0
	})
	if got, err := wifi.Demodulate(legit, 0, head); err == nil {
		res.LegitOK = equalPSDU(got.PSDU, psdu)
	}

	// Eavesdropper: per sample position, pick the lower-energy copy (the
	// best generic strategy without the mask).
	evePick := func(s, i int) int {
		a := eveAir[head+2*s*wifi.SymbolLen+i]
		b := eveAir[head+(2*s+1)*wifi.SymbolLen+i]
		if real(b)*real(b)+imag(b)*imag(b) < real(a)*real(a)+imag(a)*imag(a) {
			return 1
		}
		return 0
	}
	for s := 0; s < nsym; s++ {
		for i := 0; i < wifi.SymbolLen; i++ {
			pick := evePick(s, i)
			jammedIdx := 1
			if mask[s][i] {
				jammedIdx = 0
			}
			if pick == jammedIdx {
				res.EveSampleErrors++
			}
		}
	}
	eve := reassemble(eveAir, head, nsym, evePick)
	if got, err := wifi.Demodulate(eve, 0, head); err == nil {
		res.EveOK = equalPSDU(got.PSDU, psdu)
	}
	return res, nil
}

// reassemble rebuilds a standard frame from the duplicated on-air stream,
// choosing copy pick(s, i) ∈ {0,1} for every sample position of each pair.
func reassemble(air dsp.Samples, head, nsym int, pick func(s, i int) int) dsp.Samples {
	out := air[:head].Clone()
	for s := 0; s < nsym; s++ {
		for i := 0; i < wifi.SymbolLen; i++ {
			off := head + (2*s+pick(s, i))*wifi.SymbolLen + i
			out = append(out, air[off])
		}
	}
	return out
}

func equalPSDU(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IJamStudy sweeps the jam-to-signal ratio, reporting legit and
// eavesdropper success rates per point — the calibration curve that shows
// where self-jamming is both recoverable and secret.
type IJamPoint struct {
	JamToSignalDB float64
	LegitRate     float64
	EveRate       float64
	// EvePickErrorRate is the fraction of sample positions where the
	// energy test picked the jammed copy.
	EvePickErrorRate float64
}

// IJamStudy runs trials exchanges per ratio point.
func IJamStudy(ratiosDB []float64, trials int, cfg IJamConfig) ([]IJamPoint, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("defense: trials must be positive")
	}
	var out []IJamPoint
	for _, r := range ratiosDB {
		c := cfg
		c.JamToSignalDB = r
		var legit, eve, pickErr, pairs int
		for t := 0; t < trials; t++ {
			c.Seed = cfg.Seed + int64(t)*1001
			psdu := []byte(fmt.Sprintf("secret-%03d-%v", t, r))
			res, err := IJamExchange(psdu, c)
			if err != nil {
				return nil, err
			}
			if res.LegitOK {
				legit++
			}
			if res.EveOK {
				eve++
			}
			pickErr += res.EveSampleErrors
			pairs += res.Samples
		}
		out = append(out, IJamPoint{
			JamToSignalDB:    r,
			LegitRate:        float64(legit) / float64(trials),
			EveRate:          float64(eve) / float64(trials),
			EvePickErrorRate: float64(pickErr) / float64(pairs),
		})
	}
	return out, nil
}
