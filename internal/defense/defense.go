// Package defense implements the countermeasure side the paper's
// conclusion anticipates: "The testbed presented in this paper can be an
// effective tool for studying and developing countermeasures to a new
// series of real-time over-the-air physical layer attacks."
//
// Two countermeasures are provided:
//
//   - jamming detection in the style of Xu et al. [15] ("The feasibility of
//     launching and detecting jamming attacks in wireless networks"):
//     consistency checks between delivery ratio, signal strength and
//     carrier-sense busy time that classify a link as clean, continuously
//     jammed, or reactively jammed;
//   - an iJam-style self-jamming secrecy scheme after Gollakota & Katabi
//     [5,6]: the transmitter repeats every data symbol and the intended
//     receiver jams one random copy of each pair with its own radio, so an
//     eavesdropper cannot tell which copy is clean while the receiver, who
//     chose, always can.
package defense

import (
	"fmt"
	"math"
)

// Observation is one frame-exchange's worth of link telemetry at a station:
// whether the MSDU was delivered, the received signal strength margin over
// the noise floor (dB), and the fraction of the attempt time carrier sense
// reported busy before transmission.
type Observation struct {
	Delivered  bool
	RSSIdB     float64
	BusyBefore bool
}

// Diagnosis is the detector's classification.
type Diagnosis uint8

// Possible verdicts.
const (
	// VerdictClean: delivery is consistent with signal strength.
	VerdictClean Diagnosis = iota
	// VerdictWeakSignal: losses explained by a genuinely weak link.
	VerdictWeakSignal
	// VerdictContinuousJamming: carrier sense pinned busy, nothing sent.
	VerdictContinuousJamming
	// VerdictReactiveJamming: strong signal, idle medium, yet the frames
	// die — the consistency violation that betrays a reactive jammer.
	VerdictReactiveJamming
)

func (d Diagnosis) String() string {
	switch d {
	case VerdictClean:
		return "clean"
	case VerdictWeakSignal:
		return "weak-signal"
	case VerdictContinuousJamming:
		return "continuous-jamming"
	case VerdictReactiveJamming:
		return "reactive-jamming"
	default:
		return fmt.Sprintf("Diagnosis(%d)", uint8(d))
	}
}

// Detector accumulates observations over a sliding window and classifies
// the link. The thresholds follow the consistency-check structure of Xu et
// al.: PDR alone cannot distinguish jamming from poor links, but PDR
// combined with RSSI (and carrier-sense busy time) can.
type Detector struct {
	window int
	obs    []Observation

	// PDRThreshold below which the link counts as broken.
	PDRThreshold float64
	// RSSIGoodDB above which the signal is "too good to be failing".
	RSSIGoodDB float64
	// BusyThreshold on the busy fraction that indicates a blocked medium.
	BusyThreshold float64
}

// NewDetector returns a detector over the given observation window.
func NewDetector(window int) *Detector {
	if window < 1 {
		window = 1
	}
	return &Detector{
		window:        window,
		PDRThreshold:  0.35,
		RSSIGoodDB:    15,
		BusyThreshold: 0.8,
	}
}

// Observe appends one observation, discarding those beyond the window.
func (d *Detector) Observe(o Observation) {
	d.obs = append(d.obs, o)
	if len(d.obs) > d.window {
		d.obs = d.obs[len(d.obs)-d.window:]
	}
}

// Count returns the number of buffered observations.
func (d *Detector) Count() int { return len(d.obs) }

// Stats returns the window's packet delivery ratio, mean RSSI margin, and
// busy fraction.
func (d *Detector) Stats() (pdr, meanRSSI, busyFrac float64) {
	if len(d.obs) == 0 {
		return 0, 0, 0
	}
	var delivered, busy int
	var rssi float64
	for _, o := range d.obs {
		if o.Delivered {
			delivered++
		}
		if o.BusyBefore {
			busy++
		}
		rssi += o.RSSIdB
	}
	n := float64(len(d.obs))
	return float64(delivered) / n, rssi / n, float64(busy) / n
}

// Verdict classifies the link from the buffered observations.
func (d *Detector) Verdict() Diagnosis {
	if len(d.obs) == 0 {
		return VerdictClean
	}
	pdr, rssi, busy := d.Stats()
	switch {
	case busy >= d.BusyThreshold && pdr <= d.PDRThreshold:
		return VerdictContinuousJamming
	case pdr <= d.PDRThreshold && rssi >= d.RSSIGoodDB:
		return VerdictReactiveJamming
	case pdr <= d.PDRThreshold:
		return VerdictWeakSignal
	default:
		return VerdictClean
	}
}

// DiagnoseAggregates classifies from run-level aggregates (e.g. an iperf
// result) instead of per-frame observations.
func DiagnoseAggregates(pdr, meanRSSIdB, busyFrac float64) Diagnosis {
	d := NewDetector(1)
	d.Observe(Observation{
		Delivered:  pdr > d.PDRThreshold,
		RSSIdB:     meanRSSIdB,
		BusyBefore: busyFrac >= d.BusyThreshold,
	})
	// Reuse the threshold logic directly on the aggregates.
	switch {
	case busyFrac >= d.BusyThreshold && pdr <= d.PDRThreshold:
		return VerdictContinuousJamming
	case pdr <= d.PDRThreshold && meanRSSIdB >= d.RSSIGoodDB:
		return VerdictReactiveJamming
	case pdr <= d.PDRThreshold:
		return VerdictWeakSignal
	default:
		return VerdictClean
	}
}

// ExpectedPDRFromRSSI is a crude link model used by the consistency check
// explanation: above ~15 dB margin an 802.11g link should deliver nearly
// everything, so observing PDR ≪ this expectation flags interference.
func ExpectedPDRFromRSSI(rssiDB float64) float64 {
	switch {
	case rssiDB >= 15:
		return 0.99
	case rssiDB <= 3:
		return 0.05
	default:
		return 0.05 + 0.94*(rssiDB-3)/12
	}
}

// Consistent reports whether an observed PDR is plausible for the RSSI
// (within slack), the core of the Xu et al. check.
func Consistent(pdr, rssiDB float64) bool {
	return pdr >= ExpectedPDRFromRSSI(rssiDB)-0.25 ||
		math.Abs(pdr-ExpectedPDRFromRSSI(rssiDB)) < 0.25
}
