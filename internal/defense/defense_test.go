package defense

import (
	"fmt"
	"testing"

	"repro/internal/wifi"
)

func obsRun(d *Detector, n int, delivered bool, rssi float64, busy bool) {
	for i := 0; i < n; i++ {
		d.Observe(Observation{Delivered: delivered, RSSIdB: rssi, BusyBefore: busy})
	}
}

func TestVerdictClean(t *testing.T) {
	d := NewDetector(50)
	obsRun(d, 50, true, 30, false)
	if v := d.Verdict(); v != VerdictClean {
		t.Errorf("verdict %v, want clean", v)
	}
}

func TestVerdictWeakSignal(t *testing.T) {
	d := NewDetector(50)
	obsRun(d, 50, false, 5, false)
	if v := d.Verdict(); v != VerdictWeakSignal {
		t.Errorf("verdict %v, want weak-signal", v)
	}
}

func TestVerdictReactiveJamming(t *testing.T) {
	// Strong signal, idle medium, dead frames: the consistency violation.
	d := NewDetector(50)
	obsRun(d, 50, false, 30, false)
	if v := d.Verdict(); v != VerdictReactiveJamming {
		t.Errorf("verdict %v, want reactive-jamming", v)
	}
}

func TestVerdictContinuousJamming(t *testing.T) {
	d := NewDetector(50)
	obsRun(d, 50, false, 30, true)
	if v := d.Verdict(); v != VerdictContinuousJamming {
		t.Errorf("verdict %v, want continuous-jamming", v)
	}
}

func TestSlidingWindowForgets(t *testing.T) {
	d := NewDetector(20)
	obsRun(d, 20, false, 30, false) // jammed era
	obsRun(d, 20, true, 30, false)  // jammer gone
	if v := d.Verdict(); v != VerdictClean {
		t.Errorf("verdict %v after recovery, want clean", v)
	}
	if d.Count() != 20 {
		t.Errorf("window holds %d, want 20", d.Count())
	}
}

func TestEmptyDetector(t *testing.T) {
	d := NewDetector(0) // clamps to 1
	if d.Verdict() != VerdictClean {
		t.Error("empty detector should report clean")
	}
	pdr, rssi, busy := d.Stats()
	if pdr != 0 || rssi != 0 || busy != 0 {
		t.Error("empty stats nonzero")
	}
}

func TestDiagnoseAggregates(t *testing.T) {
	cases := []struct {
		pdr, rssi, busy float64
		want            Diagnosis
	}{
		{1.0, 34, 0, VerdictClean},
		{0.0, 34, 1.0, VerdictContinuousJamming},
		{0.0, 34, 0.1, VerdictReactiveJamming},
		{0.1, 5, 0.0, VerdictWeakSignal},
	}
	for _, c := range cases {
		if got := DiagnoseAggregates(c.pdr, c.rssi, c.busy); got != c.want {
			t.Errorf("Diagnose(%v,%v,%v) = %v, want %v", c.pdr, c.rssi, c.busy, got, c.want)
		}
	}
}

func TestConsistencyModel(t *testing.T) {
	if !Consistent(1.0, 30) {
		t.Error("perfect delivery at strong RSSI should be consistent")
	}
	if Consistent(0.0, 30) {
		t.Error("zero delivery at strong RSSI should be inconsistent")
	}
	if !Consistent(0.05, 2) {
		t.Error("bad delivery at weak RSSI is consistent (just a bad link)")
	}
	if e := ExpectedPDRFromRSSI(9); e <= 0.05 || e >= 0.99 {
		t.Errorf("mid-range expectation %v", e)
	}
}

func TestDiagnosisStrings(t *testing.T) {
	for d, want := range map[Diagnosis]string{
		VerdictClean: "clean", VerdictWeakSignal: "weak-signal",
		VerdictContinuousJamming: "continuous-jamming",
		VerdictReactiveJamming:   "reactive-jamming",
		Diagnosis(9):             "Diagnosis(9)",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q", d, d.String())
		}
	}
}

func TestIJamValidation(t *testing.T) {
	if _, err := IJamExchange(nil, IJamConfig{Rate: wifi.Rate12}); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := IJamExchange([]byte{1}, IJamConfig{Rate: wifi.Rate(99)}); err == nil {
		t.Error("bogus rate accepted")
	}
	if _, err := IJamStudy([]float64{0}, 0, IJamConfig{Rate: wifi.Rate12}); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestIJamLegitAlwaysRecovers(t *testing.T) {
	cfg := IJamConfig{Rate: wifi.Rate54, JamToSignalDB: 0, NoiseSNRdB: 30, Seed: 1}
	for trial := 0; trial < 5; trial++ {
		cfg.Seed = int64(trial) * 77
		psdu := []byte(fmt.Sprintf("the secret payload %d", trial))
		res, err := IJamExchange(psdu, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.LegitOK {
			t.Errorf("trial %d: intended receiver failed", trial)
		}
	}
}

func TestIJamDeniesStrongEnergyEavesdropper(t *testing.T) {
	// With the complementary per-sample masking, the eavesdropper's
	// per-sample energy test stays far from reliable at the calibrated
	// 0 dB ratio, corrupting its reconstruction, while the legit receiver
	// always recovers.
	pts, err := IJamStudy([]float64{0, 15}, 6,
		IJamConfig{Rate: wifi.Rate54, NoiseSNRdB: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.LegitRate < 1 {
			t.Errorf("jam %v dB: legit rate %v, want 1.0", p.JamToSignalDB, p.LegitRate)
		}
	}
	// Calibrated (0 dB) jamming: the per-sample energy test is near chance
	// (≥25% wrong picks) and the eavesdropper's 64-QAM reconstruction dies.
	if pts[0].EvePickErrorRate < 0.2 {
		t.Errorf("pick-error at 0 dB = %v, want near-chance", pts[0].EvePickErrorRate)
	}
	if pts[0].EveRate > 0 {
		t.Error("eavesdropper recovered the payload under calibrated jamming")
	}
	// Over-loud (+15 dB) jamming leaks the mask: the energy test becomes
	// accurate and the eavesdropper recovers — the calibration lesson of
	// the original iJam work.
	if pts[1].EvePickErrorRate >= pts[0].EvePickErrorRate {
		t.Errorf("pick-error should drop at loud jamming: %v vs %v",
			pts[1].EvePickErrorRate, pts[0].EvePickErrorRate)
	}
	if pts[1].EveRate == 0 {
		t.Error("over-loud jamming should leak the mask (eavesdropper wins)")
	}
}
