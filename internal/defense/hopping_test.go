package defense

import (
	"testing"
	"time"
)

func TestHoppingValidation(t *testing.T) {
	if _, err := SimulateHopping(HopConfig{Channels: 1, DwellTime: time.Second}, 10); err == nil {
		t.Error("single channel accepted")
	}
	if _, err := SimulateHopping(HopConfig{Channels: 4}, 10); err == nil {
		t.Error("zero dwell accepted")
	}
	if _, err := SimulateHopping(DefaultPursuit(4, time.Second, 1), 0); err == nil {
		t.Error("zero hops accepted")
	}
}

func TestSlowHopperGetsJammed(t *testing.T) {
	// Dwelling 100 ms on one of 4 channels: the jammer's ~1.3 ms per-probe
	// loop finds the victim quickly and jams most of the dwell.
	res, err := SimulateHopping(DefaultPursuit(4, 100*time.Millisecond, 1), 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.JammedFrac < 0.9 {
		t.Errorf("slow hopper jammed %.2f of air time, want > 0.9", res.JammedFrac)
	}
}

func TestFastHopperEvades(t *testing.T) {
	// Dwelling 3 ms: the scan loop (up to 4 probes × 1.3 ms) usually can't
	// acquire before the victim moves.
	res, err := SimulateHopping(DefaultPursuit(4, 3*time.Millisecond, 1), 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.JammedFrac > 0.35 {
		t.Errorf("fast hopper jammed %.2f of air time, want < 0.35", res.JammedFrac)
	}
}

func TestMoreChannelsHelpTheVictim(t *testing.T) {
	few, err := SimulateHopping(DefaultPursuit(2, 10*time.Millisecond, 1), 300)
	if err != nil {
		t.Fatal(err)
	}
	many, err := SimulateHopping(DefaultPursuit(16, 10*time.Millisecond, 1), 300)
	if err != nil {
		t.Fatal(err)
	}
	if many.JammedFrac >= few.JammedFrac {
		t.Errorf("16 channels (%.2f) should beat 2 channels (%.2f)",
			many.JammedFrac, few.JammedFrac)
	}
}

func TestRandomGuessingWorseOrEqualToScan(t *testing.T) {
	cfg := DefaultPursuit(8, 20*time.Millisecond, 3)
	scan, err := SimulateHopping(cfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scanning = false
	random, err := SimulateHopping(cfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	// A systematic sweep never re-probes a channel within a cycle, so its
	// acquisition is at least as fast on average.
	if scan.MeanAcquisition > random.MeanAcquisition+2*time.Millisecond {
		t.Errorf("scan acquisition %v much worse than random %v",
			scan.MeanAcquisition, random.MeanAcquisition)
	}
}

func TestAcquisitionCappedByDwell(t *testing.T) {
	res, err := SimulateHopping(DefaultPursuit(64, 2*time.Millisecond, 2), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAcquisition > 2*time.Millisecond {
		t.Errorf("acquisition %v exceeds dwell", res.MeanAcquisition)
	}
	if res.Hops != 100 {
		t.Errorf("hops = %d", res.Hops)
	}
}
