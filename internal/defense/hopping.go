package defense

import (
	"fmt"
	"math/rand"
	"time"
)

// Channel-hopping evasion: the classical defense against a single-channel
// reactive jammer is to move. The SBX front end tunes anywhere in
// 400 MHz–4.4 GHz, so the jammer can follow — but retuning and re-detecting
// cost time, and a victim that hops faster than the jammer's
// scan-detect-tune loop keeps most of its air time clean. This model plays
// the pursuit at the timing level (the waveform-level detection and
// jamming behavior is characterized elsewhere; here the question is purely
// the race).

// HopConfig parameterizes the pursuit.
type HopConfig struct {
	// Channels is the hop set size.
	Channels int
	// DwellTime is how long the victim stays on one channel.
	DwellTime time.Duration
	// JammerRetune is the jammer's tune+settle time per attempt (USRP
	// daughterboard retune is ~hundreds of µs to ms).
	JammerRetune time.Duration
	// JammerDetect is the time the jammer needs on the right channel to
	// confirm activity (its energy-detect latency plus margin).
	JammerDetect time.Duration
	// Scanning: if true the jammer sweeps channels in order; if false it
	// knows the hop set but not the sequence and picks randomly.
	Scanning bool
	// Seed drives the victim's hop sequence and the jammer's guesses.
	Seed int64
}

// HopResult reports the pursuit outcome.
type HopResult struct {
	// JammedFrac is the fraction of victim air time under jamming.
	JammedFrac float64
	// MeanAcquisition is the jammer's average time to find the victim
	// after a hop (capped at the dwell time when it never finds it).
	MeanAcquisition time.Duration
	// Hops simulated.
	Hops int
}

// SimulateHopping runs the pursuit for the given number of victim hops.
func SimulateHopping(cfg HopConfig, hops int) (*HopResult, error) {
	if cfg.Channels < 2 {
		return nil, fmt.Errorf("defense: need at least 2 channels")
	}
	if cfg.DwellTime <= 0 || cfg.JammerRetune < 0 || cfg.JammerDetect < 0 {
		return nil, fmt.Errorf("defense: invalid timing configuration")
	}
	if hops <= 0 {
		return nil, fmt.Errorf("defense: hops must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var jammedTotal, acqTotal time.Duration
	scanPos := 0
	for h := 0; h < hops; h++ {
		victim := rng.Intn(cfg.Channels)
		// The jammer hunts: each attempt costs retune + detect dwell; it
		// succeeds when it lands on the victim's channel.
		var t time.Duration
		found := false
		for t < cfg.DwellTime {
			var guess int
			if cfg.Scanning {
				guess = scanPos % cfg.Channels
				scanPos++
			} else {
				guess = rng.Intn(cfg.Channels)
			}
			t += cfg.JammerRetune + cfg.JammerDetect
			if guess == victim {
				found = true
				break
			}
		}
		if found && t < cfg.DwellTime {
			jammedTotal += cfg.DwellTime - t
			acqTotal += t
		} else {
			acqTotal += cfg.DwellTime
		}
	}
	return &HopResult{
		JammedFrac:      float64(jammedTotal) / float64(time.Duration(hops)*cfg.DwellTime),
		MeanAcquisition: acqTotal / time.Duration(hops),
		Hops:            hops,
	}, nil
}

// DefaultPursuit reflects the reproduced platform's numbers: the jammer
// confirms activity within ~2 of its energy-detection windows once tuned
// (≈3 µs at 25 MSPS, padded to one WiFi frame time ≈ 300 µs to see a frame
// at all) and a USRP retune of ~1 ms.
func DefaultPursuit(channels int, dwell time.Duration, seed int64) HopConfig {
	return HopConfig{
		Channels:     channels,
		DwellTime:    dwell,
		JammerRetune: time.Millisecond,
		JammerDetect: 300 * time.Microsecond,
		Scanning:     true,
		Seed:         seed,
	}
}
