package trigger

import (
	"testing"
)

// Differential tests for the block datapath's bulk quiet-span advance:
// AdvanceQuiet(n) must leave an EdgeDetector or StateMachine in exactly the
// state n scalar steps with no input would — including holdoff countdowns
// that end inside the span and armed windows that expire inside it, where
// the abandon transition must fire exactly once.

func TestEdgeDetectorAdvanceQuietMatchesScalar(t *testing.T) {
	for _, holdoff := range []uint64{0, 1, 5, 16, 100} {
		for _, span := range []uint64{1, 2, 4, 15, 16, 17, 63, 64, 65, 1000} {
			bulk := NewEdgeDetector(holdoff)
			scalar := NewEdgeDetector(holdoff)
			// Put both into a post-pulse holdoff with the level still high,
			// so prev=true and quiet=holdoff.
			bulk.Process(true)
			scalar.Process(true)

			bulk.AdvanceQuiet(span)
			for i := uint64(0); i < span; i++ {
				if scalar.Process(false) {
					t.Fatalf("holdoff %d: scalar edge on quiet sample %d", holdoff, i)
				}
			}
			if *bulk != *scalar {
				t.Fatalf("holdoff %d span %d: bulk %+v != scalar %+v", holdoff, span, *bulk, *scalar)
			}
			// Behavior after the span must match too: a rising edge now.
			if b, s := bulk.Process(true), scalar.Process(true); b != s {
				t.Fatalf("holdoff %d span %d: post-span edge %v != %v", holdoff, span, b, s)
			}
		}
	}
}

func TestStateMachineAdvanceQuietIdleUntouched(t *testing.T) {
	sm := New(EventXCorr)
	before := *sm
	sm.AdvanceQuiet(1000)
	if sm.armed != before.armed || sm.stage != before.stage || sm.elapsed != before.elapsed {
		t.Fatalf("idle machine mutated by AdvanceQuiet: %+v", *sm)
	}
}

func TestStateMachineAdvanceQuietMatchesScalar(t *testing.T) {
	for _, window := range []uint64{0, 1, 5, 64, 200} {
		for _, span := range []uint64{1, 4, 5, 6, 63, 64, 65, 199, 200, 201, 500} {
			build := func() (*StateMachine, *[]int) {
				sm := New(EventXCorr)
				if err := sm.Configure([]Event{EventEnergyHigh, EventXCorr}, window); err != nil {
					t.Fatal(err)
				}
				var abandons []int
				sm.OnTransition(func(from, to int, fired bool) {
					if !fired && to == 0 {
						abandons = append(abandons, from)
					}
				})
				// Arm stage 1.
				sm.Process(Inputs{EnergyHigh: true})
				return sm, &abandons
			}
			bulk, bulkAb := build()
			scalar, scalarAb := build()

			bulk.AdvanceQuiet(span)
			for i := uint64(0); i < span; i++ {
				if scalar.Process(Inputs{}) {
					t.Fatalf("window %d: scalar fired on quiet sample %d", window, i)
				}
			}
			if bulk.armed != scalar.armed || bulk.stage != scalar.stage || bulk.elapsed != scalar.elapsed {
				t.Fatalf("window %d span %d: bulk {armed %v stage %d elapsed %d} != scalar {armed %v stage %d elapsed %d}",
					window, span, bulk.armed, bulk.stage, bulk.elapsed,
					scalar.armed, scalar.stage, scalar.elapsed)
			}
			if len(*bulkAb) != len(*scalarAb) {
				t.Fatalf("window %d span %d: %d bulk abandons != %d scalar", window, span, len(*bulkAb), len(*scalarAb))
			}
			// The machine must behave identically afterwards.
			if b, s := bulk.Process(Inputs{XCorr: true}), scalar.Process(Inputs{XCorr: true}); b != s {
				t.Fatalf("window %d span %d: post-span fire %v != %v", window, span, b, s)
			}
		}
	}
}
