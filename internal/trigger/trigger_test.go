package trigger

import (
	"testing"
	"testing/quick"
)

func TestSingleEventFiresEveryOccurrence(t *testing.T) {
	sm := New(EventXCorr)
	fires := 0
	for i := 0; i < 10; i++ {
		if sm.Process(Inputs{XCorr: i%2 == 0}) {
			fires++
		}
	}
	if fires != 5 {
		t.Errorf("fired %d times, want 5", fires)
	}
}

func TestConfigureValidation(t *testing.T) {
	sm := &StateMachine{}
	if err := sm.Configure(nil, 0); err == nil {
		t.Error("empty sequence accepted")
	}
	if err := sm.Configure(make([]Event, 4), 0); err == nil {
		t.Error("4 stages accepted (hardware has 3)")
	}
	if err := sm.Configure([]Event{EventNone}, 0); err == nil {
		t.Error("EventNone stage accepted")
	}
	if err := sm.Configure([]Event{Event(9)}, 0); err == nil {
		t.Error("bogus event accepted")
	}
	if err := sm.Configure([]Event{EventXCorr, EventEnergyHigh, EventEnergyLow}, 100); err != nil {
		t.Error(err)
	}
}

func TestTwoStageSequenceWithinWindow(t *testing.T) {
	sm := &StateMachine{}
	if err := sm.Configure([]Event{EventEnergyHigh, EventXCorr}, 10); err != nil {
		t.Fatal(err)
	}
	// Energy high at t=0, xcorr at t=5: inside window, must fire at t=5.
	if sm.Process(Inputs{EnergyHigh: true}) {
		t.Fatal("fired on first stage alone")
	}
	for i := 0; i < 4; i++ {
		if sm.Process(Inputs{}) {
			t.Fatal("fired with no event")
		}
	}
	if !sm.Process(Inputs{XCorr: true}) {
		t.Error("did not fire when sequence completed in window")
	}
}

func TestWindowExpiryResetsSequence(t *testing.T) {
	sm := &StateMachine{}
	if err := sm.Configure([]Event{EventEnergyHigh, EventXCorr}, 5); err != nil {
		t.Fatal(err)
	}
	sm.Process(Inputs{EnergyHigh: true})
	for i := 0; i < 10; i++ {
		sm.Process(Inputs{})
	}
	// Window long gone: xcorr alone must not complete the stale sequence.
	if sm.Process(Inputs{XCorr: true}) {
		t.Error("fired after window expired")
	}
	// But a fresh complete sequence still works.
	sm.Process(Inputs{EnergyHigh: true})
	if !sm.Process(Inputs{XCorr: true}) {
		t.Error("fresh sequence did not fire")
	}
}

func TestSimultaneousEventsCompleteInOneSample(t *testing.T) {
	sm := &StateMachine{}
	if err := sm.Configure([]Event{EventEnergyHigh, EventXCorr}, 0); err != nil {
		t.Fatal(err)
	}
	if !sm.Process(Inputs{EnergyHigh: true, XCorr: true}) {
		t.Error("coincident events should satisfy both stages at once")
	}
}

func TestThreeStageSequence(t *testing.T) {
	sm := &StateMachine{}
	if err := sm.Configure([]Event{EventEnergyHigh, EventXCorr, EventEnergyLow}, 100); err != nil {
		t.Fatal(err)
	}
	sm.Process(Inputs{EnergyHigh: true})
	sm.Process(Inputs{XCorr: true})
	if sm.Process(Inputs{}) {
		t.Fatal("fired before final stage")
	}
	if !sm.Process(Inputs{EnergyLow: true}) {
		t.Error("three-stage sequence did not fire")
	}
	// FSM must have reset: the same final event alone must not re-fire.
	if sm.Process(Inputs{EnergyLow: true}) {
		t.Error("fired again without restarting the sequence")
	}
}

func TestOutOfOrderEventsIgnored(t *testing.T) {
	sm := &StateMachine{}
	if err := sm.Configure([]Event{EventXCorr, EventEnergyHigh}, 50); err != nil {
		t.Fatal(err)
	}
	// Stage-2 event before stage 1: ignored.
	sm.Process(Inputs{EnergyHigh: true})
	sm.Process(Inputs{XCorr: true})
	if !sm.Process(Inputs{EnergyHigh: true}) {
		t.Error("in-order sequence did not fire")
	}
}

func TestStagesAndWindowAccessors(t *testing.T) {
	sm := &StateMachine{}
	seq := []Event{EventXCorr, EventEnergyLow}
	if err := sm.Configure(seq, 42); err != nil {
		t.Fatal(err)
	}
	got := sm.Stages()
	got[0] = EventNone // must be a copy
	if sm.Stages()[0] != EventXCorr {
		t.Error("Stages returned aliased slice")
	}
	if sm.Window() != 42 {
		t.Error("Window accessor wrong")
	}
	if s := sm.String(); s != "trigger[xcorr->energy-low within 42 samples]" {
		t.Errorf("String = %q", s)
	}
}

func TestEventStrings(t *testing.T) {
	cases := map[Event]string{
		EventNone: "none", EventXCorr: "xcorr",
		EventEnergyHigh: "energy-high", EventEnergyLow: "energy-low",
		Event(77): "event(77)",
	}
	for e, want := range cases {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), want)
		}
	}
}

func TestEdgeDetector(t *testing.T) {
	e := NewEdgeDetector(0)
	seq := []bool{false, true, true, false, true}
	want := []bool{false, true, false, false, true}
	for i, lv := range seq {
		if got := e.Process(lv); got != want[i] {
			t.Errorf("sample %d: edge = %v, want %v", i, got, want[i])
		}
	}
}

func TestEdgeDetectorHoldoff(t *testing.T) {
	e := NewEdgeDetector(3)
	if !e.Process(true) {
		t.Fatal("first edge missed")
	}
	// During holdoff nothing fires, even a new rising edge.
	for i, lv := range []bool{false, true, false} {
		if e.Process(lv) {
			t.Errorf("fired during holdoff at %d", i)
		}
	}
	if !e.Process(true) {
		t.Error("edge after holdoff missed")
	}
}

func TestEdgeDetectorReset(t *testing.T) {
	e := NewEdgeDetector(10)
	e.Process(true)
	e.Reset()
	if !e.Process(true) {
		t.Error("Reset did not clear holdoff/level")
	}
}

// Property: a single-stage FSM fires exactly as many times as its event
// occurs, regardless of pattern.
func TestSingleStageCountProperty(t *testing.T) {
	f := func(pattern []bool) bool {
		sm := New(EventEnergyHigh)
		fires, want := 0, 0
		for _, p := range pattern {
			if p {
				want++
			}
			if sm.Process(Inputs{EnergyHigh: p}) {
				fires++
			}
		}
		return fires == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the FSM never fires on empty inputs.
func TestNeverFiresOnSilenceProperty(t *testing.T) {
	f := func(n uint8, stageSel uint8) bool {
		stages := [][]Event{
			{EventXCorr},
			{EventEnergyHigh, EventXCorr},
			{EventXCorr, EventEnergyHigh, EventEnergyLow},
		}[stageSel%3]
		sm := &StateMachine{}
		if err := sm.Configure(stages, uint64(n)); err != nil {
			return false
		}
		for i := 0; i < int(n)+10; i++ {
			if sm.Process(Inputs{}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
