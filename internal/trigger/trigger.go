// Package trigger implements the jamming event builder of the custom DSP
// core: the three-stage hardware state machine that combines detector
// outputs into a jamming trigger (paper §2.4: "a three-stage hardware state
// machine allows the user to select up to three trigger event combinations,
// all of which must occur within a user-assigned time interval").
package trigger

import (
	"fmt"
	"strings"
)

// Event identifies one detector output that can participate in a trigger
// combination.
type Event uint8

// The detector events available to the state machine.
const (
	// EventNone marks an unused stage.
	EventNone Event = iota
	// EventXCorr is a cross-correlator threshold crossing.
	EventXCorr
	// EventEnergyHigh is an energy-rise detection.
	EventEnergyHigh
	// EventEnergyLow is an energy-fall detection.
	EventEnergyLow
)

func (e Event) String() string {
	switch e {
	case EventNone:
		return "none"
	case EventXCorr:
		return "xcorr"
	case EventEnergyHigh:
		return "energy-high"
	case EventEnergyLow:
		return "energy-low"
	default:
		return fmt.Sprintf("event(%d)", uint8(e))
	}
}

// MaxStages is the depth of the hardware state machine.
const MaxStages = 3

// Inputs carries the per-sample detector outputs into the state machine.
type Inputs struct {
	XCorr      bool
	EnergyHigh bool
	EnergyLow  bool
}

func (in Inputs) has(e Event) bool {
	switch e {
	case EventXCorr:
		return in.XCorr
	case EventEnergyHigh:
		return in.EnergyHigh
	case EventEnergyLow:
		return in.EnergyLow
	default:
		return false
	}
}

// StateMachine is the three-stage trigger combiner. Configure it with a
// sequence of 1..3 events and a window (in baseband samples) within which
// all of them must occur; it then fires once per completed sequence.
// An empty sequence never fires. Not safe for concurrent use.
type StateMachine struct {
	stages  []Event
	window  uint64 // samples allowed from first event to completion
	stage   int
	elapsed uint64
	armed   bool
	onTrans TransitionFunc
}

// TransitionFunc observes state-machine transitions: the stage held before
// and after one Process call, and whether the sequence completed (fired).
// A window expiry that abandons a partial sequence reports toStage 0
// without fired. The hook must not allocate; it runs in the sample loop.
type TransitionFunc func(fromStage, toStage int, fired bool)

// OnTransition installs the transition observer (nil to remove). The
// telemetry layer uses it to journal arm/advance/abandon/fire events.
func (sm *StateMachine) OnTransition(fn TransitionFunc) { sm.onTrans = fn }

// New returns a state machine that fires on every occurrence of the single
// given event (the most common configuration).
func New(e Event) *StateMachine {
	sm := &StateMachine{}
	if err := sm.Configure([]Event{e}, 0); err != nil {
		panic(err) // single-event config cannot fail
	}
	return sm
}

// Configure sets the event sequence and the completion window in samples.
// A window of 0 means the whole sequence must complete on a single sample
// when more than one stage is configured; for a single stage the window is
// irrelevant.
func (sm *StateMachine) Configure(stages []Event, windowSamples uint64) error {
	if len(stages) == 0 || len(stages) > MaxStages {
		return fmt.Errorf("trigger: need 1..%d stages, got %d", MaxStages, len(stages))
	}
	for _, e := range stages {
		if e == EventNone || e > EventEnergyLow {
			return fmt.Errorf("trigger: invalid stage event %v", e)
		}
	}
	sm.stages = append(sm.stages[:0], stages...)
	sm.window = windowSamples
	sm.ResetState()
	return nil
}

// ResetState returns the FSM to its idle state without touching the
// configuration.
func (sm *StateMachine) ResetState() {
	sm.stage = 0
	sm.elapsed = 0
	sm.armed = false
}

// Stages returns a copy of the configured event sequence.
func (sm *StateMachine) Stages() []Event {
	return append([]Event(nil), sm.stages...)
}

// Window returns the configured completion window in samples.
func (sm *StateMachine) Window() uint64 { return sm.window }

// Process advances the state machine by one baseband sample and reports
// whether the trigger fired on this sample. Multiple stages may be consumed
// by a single sample if their events coincide.
func (sm *StateMachine) Process(in Inputs) bool {
	if len(sm.stages) == 0 {
		return false
	}
	entry := sm.stage
	if sm.armed {
		sm.elapsed++
		if sm.window > 0 && sm.elapsed > sm.window {
			sm.ResetState() // window expired: abandon partial sequence
			if sm.onTrans != nil && entry > 0 {
				sm.onTrans(entry, 0, false)
			}
			entry = 0
		}
	}
	for sm.stage < len(sm.stages) && in.has(sm.stages[sm.stage]) {
		if sm.stage == 0 {
			sm.armed = true
			sm.elapsed = 0
		}
		sm.stage++
	}
	if sm.stage == len(sm.stages) {
		sm.ResetState()
		if sm.onTrans != nil {
			sm.onTrans(entry, len(sm.stages), true)
		}
		return true
	}
	if sm.onTrans != nil && sm.stage != entry {
		sm.onTrans(entry, sm.stage, false)
	}
	return false
}

// Armed reports whether a partial sequence is in progress (stage ≥ 1 and
// the completion window ticking). The block datapath uses it to decide
// whether a quiet span can be batched without losing cycle-accurate
// abandon events.
func (sm *StateMachine) Armed() bool { return sm.armed }

// AdvanceQuiet advances the state machine by n samples that carry no
// detector events, bit-identically to n Process calls with zero Inputs:
// an armed window keeps ticking and, if it expires inside the span, the
// partial sequence is abandoned (one transition callback, as the scalar
// path would emit at the expiry sample). Idle machines are untouched.
func (sm *StateMachine) AdvanceQuiet(n uint64) {
	if n == 0 || !sm.armed {
		return
	}
	sm.elapsed += n
	if sm.window > 0 && sm.elapsed > sm.window {
		entry := sm.stage
		sm.ResetState()
		if sm.onTrans != nil && entry > 0 {
			sm.onTrans(entry, 0, false)
		}
	}
}

func (sm *StateMachine) String() string {
	names := make([]string, len(sm.stages))
	for i, e := range sm.stages {
		names[i] = e.String()
	}
	return fmt.Sprintf("trigger[%s within %d samples]",
		strings.Join(names, "->"), sm.window)
}

// EdgeDetector converts a level trigger (comparator output held high while
// the condition persists) into single-sample pulses, with an optional
// holdoff to suppress re-triggering while a detection is being serviced.
type EdgeDetector struct {
	prev    bool
	holdoff uint64 // samples to stay quiet after a pulse
	quiet   uint64
}

// NewEdgeDetector returns an edge detector with the given holdoff (0 for
// none).
func NewEdgeDetector(holdoffSamples uint64) *EdgeDetector {
	return &EdgeDetector{holdoff: holdoffSamples}
}

// Process consumes one level sample and reports a rising edge.
func (e *EdgeDetector) Process(level bool) bool {
	if e.quiet > 0 {
		e.quiet--
		e.prev = level
		return false
	}
	rising := level && !e.prev
	e.prev = level
	if rising {
		e.quiet = e.holdoff
	}
	return rising
}

// AdvanceQuiet advances the edge detector by n all-false level samples,
// bit-identically to n Process(false) calls: any holdoff countdown burns
// down (clamping at zero) and the previous-level latch clears.
func (e *EdgeDetector) AdvanceQuiet(n uint64) {
	if n == 0 {
		return
	}
	if e.quiet > n {
		e.quiet -= n
	} else {
		e.quiet = 0
	}
	e.prev = false
}

// Reset clears the edge detector state.
func (e *EdgeDetector) Reset() {
	e.prev = false
	e.quiet = 0
}
