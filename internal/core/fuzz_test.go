package core

import (
	"encoding/binary"
	"testing"

	"repro/internal/fixed"
	"repro/internal/trigger"
	"repro/internal/xcorr"
)

// fuzzProgram arms a core with a fixed synthetic configuration through the
// register bus: both detectors on, FusionAny trigger, short jamming bursts.
// The thresholds are low enough that fuzzed input actually drives the
// trigger and jammer paths rather than idling through the comparators.
func fuzzProgram(tb testing.TB, c *Core) {
	tb.Helper()
	write := func(addr uint8, v uint32) {
		if err := c.Bus().Write(addr, v); err != nil {
			tb.Fatal(err)
		}
	}
	ci := make([]fixed.Coeff3, xcorr.Length)
	cq := make([]fixed.Coeff3, xcorr.Length)
	for k := range ci {
		ci[k] = fixed.Coeff3(k%7 - 3)
		cq[k] = fixed.Coeff3((k+3)%7 - 3)
	}
	for r, v := range PackCoefficients(ci) {
		write(RegXCorrCoefI0+uint8(r), v)
	}
	for r, v := range PackCoefficients(cq) {
		write(RegXCorrCoefQ0+uint8(r), v)
	}
	write(RegXCorrThreshold, 900)
	write(RegEnergyThreshHigh, 600)
	write(RegEnergyConfig, 1)
	write(RegTriggerWindow, 0)
	write(RegTriggerConfig,
		uint32(trigger.EventXCorr&0xF)|
			uint32(trigger.EventEnergyHigh&0xF)<<4|
			2<<12|1<<14)
	write(RegJammerUptime, 24)
	write(RegJammerGainAnt, 1000)
}

// fuzzSamples decodes arbitrary fuzz bytes into baseband: four bytes per
// sample, two little-endian int16 rails scaled to [-1, 1) — the quantizer's
// native dynamic range, so every code point is reachable.
func fuzzSamples(data []byte) []complex128 {
	n := len(data) / 4
	if n > 4096 {
		n = 4096
	}
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		re := int16(binary.LittleEndian.Uint16(data[4*i:]))
		im := int16(binary.LittleEndian.Uint16(data[4*i+2:]))
		out[i] = complex(float64(re)/32768, float64(im)/32768)
	}
	return out
}

// FuzzProcessBlock fuzzes the block/per-sample parity contract: arbitrary
// sample content chopped into arbitrary block sizes must produce transmit
// output and counters bit-identical to the per-sample path.
func FuzzProcessBlock(f *testing.F) {
	f.Add([]byte("reactive jamming block parity seed: preamble-ish bytes....."), uint16(1))
	f.Add([]byte{0xFF, 0x7F, 0xFF, 0x7F, 0x00, 0x80, 0x00, 0x80, 1, 2, 3, 4}, uint16(313))
	f.Add([]byte{}, uint16(0))

	f.Fuzz(func(t *testing.T, data []byte, sizeSeed uint16) {
		samples := fuzzSamples(data)
		blockCore, sampleCore := New(), New()
		fuzzProgram(t, blockCore)
		fuzzProgram(t, sampleCore)

		// Chop the stream into block sizes derived from the fuzzed seed:
		// seeds below 0x8000 select pseudo-random sizes (LCG, 1..97) and
		// seeds at or above it pin a fixed size 1..512, so the corpus can
		// target exact sign-word boundaries (1, 63, 64, 65) and block edges
		// that split an engagement.
		txB := make([]complex128, len(samples))
		fixedBS := 0
		if sizeSeed >= 0x8000 {
			fixedBS = 1 + int(sizeSeed-0x8000)%512
		}
		lcg := uint32(sizeSeed) | 1
		for pos := 0; pos < len(samples); {
			lcg = lcg*1664525 + 1013904223
			bs := fixedBS
			if bs == 0 {
				bs = 1 + int(lcg>>16)%97
			}
			if pos+bs > len(samples) {
				bs = len(samples) - pos
			}
			blockCore.ProcessBlock(samples[pos:pos+bs], txB[pos:pos+bs])
			pos += bs
		}
		for i, s := range samples {
			if txS := sampleCore.ProcessSample(s); txS != txB[i] {
				t.Fatalf("tx diverges at sample %d: block %v vs per-sample %v", i, txB[i], txS)
			}
		}
		if bs, ss := blockCore.Stats(), sampleCore.Stats(); bs != ss {
			t.Fatalf("stats diverge: block %+v vs per-sample %+v", bs, ss)
		}
	})
}
