package core

import (
	"repro/internal/fixed"
	"repro/internal/jammer"
	"repro/internal/trigger"
	"repro/internal/xcorr"
)

// Register decode: the hardware side of the user bus. Each write lands in
// the register file and the affected block picks its configuration up
// immediately, which is what lets the host change jammer personalities at
// run time without reprogramming the FPGA (§4.3).

func (c *Core) installRegisterDecode() {
	for a := RegXCorrCoefI0; a < RegXCorrCoefI0+2*numCoefRegs; a++ {
		c.bus.Watch(a, func(uint8, uint32) { c.reloadCoefficients() })
	}
	c.bus.Watch(RegXCorrThreshold, func(_ uint8, v uint32) {
		c.xc.SetThreshold(v)
	})
	c.bus.Watch(RegEnergyConfig, func(_ uint8, v uint32) { c.reloadEnergy() })
	c.bus.Watch(RegEnergyThreshHigh, func(uint8, uint32) { c.reloadEnergy() })
	c.bus.Watch(RegEnergyThreshLow, func(uint8, uint32) { c.reloadEnergy() })
	c.bus.Watch(RegTriggerConfig, func(uint8, uint32) { c.reloadTrigger() })
	c.bus.Watch(RegTriggerWindow, func(uint8, uint32) { c.reloadTrigger() })
	c.bus.Watch(RegJammerWaveform, func(_ uint8, v uint32) {
		// Out-of-range presets are ignored, as hardware would.
		_ = c.jam.SetWaveform(jammer.Waveform(v & 0x3))
	})
	c.bus.Watch(RegJammerUptime, func(_ uint8, v uint32) {
		if v == 0 {
			v = 1
		}
		_ = c.jam.SetUptimeSamples(uint64(v))
	})
	c.bus.Watch(RegJammerDelay, func(_ uint8, v uint32) {
		c.jam.SetDelaySamples(uint64(v))
	})
	c.bus.Watch(RegJammerGainAnt, func(_ uint8, v uint32) {
		c.jam.SetGain(float64(v&0xFFFF) / 1000)
		c.antenna = uint8((v >> 16) & 0xF)
	})
}

// reloadCoefficients unpacks both banks from the register file into the
// correlator.
func (c *Core) reloadCoefficients() {
	unpack := func(base uint8) []fixed.Coeff3 {
		out := make([]fixed.Coeff3, 0, xcorr.Length)
		for r := 0; r < numCoefRegs; r++ {
			v, err := c.bus.Read(base + uint8(r))
			if err != nil {
				return nil
			}
			for k := 0; k < coeffsPerReg && len(out) < xcorr.Length; k++ {
				out = append(out, fixed.UnpackCoeff3(v>>(3*k)))
			}
		}
		return out
	}
	i := unpack(RegXCorrCoefI0)
	q := unpack(RegXCorrCoefQ0)
	if len(i) == xcorr.Length && len(q) == xcorr.Length {
		_ = c.xc.SetCoefficients(i, q)
	}
}

func (c *Core) reloadEnergy() {
	cfg, _ := c.bus.Read(RegEnergyConfig)
	if cfg&1 != 0 {
		v, _ := c.bus.Read(RegEnergyThreshHigh)
		_ = c.en.SetHighThresholdDB(float64(v) / 100)
	} else {
		c.en.DisableHigh()
	}
	if cfg&2 != 0 {
		v, _ := c.bus.Read(RegEnergyThreshLow)
		_ = c.en.SetLowThresholdDB(float64(v) / 100)
	} else {
		c.en.DisableLow()
	}
}

func (c *Core) reloadTrigger() {
	cfg, _ := c.bus.Read(RegTriggerConfig)
	window, _ := c.bus.Read(RegTriggerWindow)
	count := int((cfg >> 12) & 0x3)
	if count == 0 {
		return
	}
	events := make([]trigger.Event, 0, trigger.MaxStages)
	for s := 0; s < count && s < trigger.MaxStages; s++ {
		events = append(events, trigger.Event((cfg>>(4*s))&0xF))
	}
	mode := FusionSequence
	if cfg&(1<<14) != 0 {
		mode = FusionAny
	}
	_ = c.SetFusion(mode, events, uint64(window))
}

// PackCoefficients converts a 64-tap coefficient bank into its 7-register
// bus image; the host package uses it when programming the correlator.
func PackCoefficients(bank []fixed.Coeff3) [numCoefRegs]uint32 {
	var regs [numCoefRegs]uint32
	for i, cf := range bank {
		if i >= xcorr.Length {
			break
		}
		r, k := i/coeffsPerReg, i%coeffsPerReg
		regs[r] |= cf.Pack() << (3 * k)
	}
	return regs
}
