// Package core implements the custom DSP core of Fig. 2 — the paper's
// primary contribution. It nests the cross-correlator, the energy
// differentiator, the three-stage trigger state machine, and the jamming
// transmit controller into one sample-clocked datapath, exposes the whole
// configuration through the UHD user register bus, and counts detection
// events for host feedback ("Synchro Flags" in Fig. 1).
//
// One call to ProcessSample corresponds to one 25 MSPS baseband sample
// entering the DDC chain: the sample is quantized to the 16-bit I/Q the
// FPGA sees, both detectors run in parallel, their (edge-detected) outputs
// drive the trigger state machine, and the transmit controller produces the
// jamming output for the same tick.
package core

import (
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/fpga"
	"repro/internal/jammer"
	"repro/internal/telemetry"
	"repro/internal/trigger"
	"repro/internal/xcorr"
)

// FusionMode selects how detector events combine into a jam trigger.
type FusionMode uint8

// Fusion modes of the trigger builder.
const (
	// FusionSequence requires the configured events in order within the
	// window (the hardware three-stage state machine).
	FusionSequence FusionMode = iota
	// FusionAny fires on any one of the configured events (OR), the
	// combination used for the WiMAX experiment of §5.
	FusionAny
)

// Stats carries the host-feedback counters of the core. It is a snapshot
// of the telemetry counter block — the same memory the exposition endpoint
// reads — so host feedback and telemetry can never drift apart.
type Stats struct {
	// Samples is the number of baseband samples processed.
	Samples uint64
	// XCorrDetections counts cross-correlator trigger edges.
	XCorrDetections uint64
	// EnergyHighDetections and EnergyLowDetections count energy edges.
	EnergyHighDetections uint64
	EnergyLowDetections  uint64
	// JamTriggers counts serviced jamming events.
	JamTriggers uint64
	// JamSamples counts transmitted jamming samples.
	JamSamples uint64
	// RegWrites counts user register-bus writes.
	RegWrites uint64
	// HostPolls counts host-feedback polls.
	HostPolls uint64
}

// Core is the complete custom DSP core. Construct with New. Core is not
// safe for concurrent use from multiple goroutines; the register bus it
// exposes is.
type Core struct {
	bus *fpga.RegisterBus

	xc  *xcorr.Correlator
	en  *energy.Differentiator
	sm  *trigger.StateMachine
	jam *jammer.Controller

	edgeX *trigger.EdgeDetector
	edgeH *trigger.EdgeDetector
	edgeL *trigger.EdgeDetector

	clock fpga.Clock

	fusion FusionMode
	events []trigger.Event

	counters *telemetry.Counters
	rec      telemetry.Recorder
	live     bool // a capturing recorder is attached

	// Engagement tracking (only maintained while a capturing recorder is
	// attached): every detector edge that arrives while no engagement is
	// open allocates a fresh engagement ID, and all subsequent sample-
	// clocked events — detector edges, trigger FSM transitions, jammer
	// phases — carry that ID until the engagement closes. An engagement
	// closes EdgeHoldoff samples after the datapath goes quiescent (jammer
	// idle, no new edges), at which point EvHoldoffRelease is journaled:
	// the detectors have re-armed and the next packet starts a new
	// engagement.
	engSeq    uint32
	curEng    uint32
	engLinger uint64

	scratch blockScratch

	antenna uint8
}

// EdgeHoldoff is the default detector re-trigger holdoff in samples,
// preventing one preamble from registering as a burst of detections.
const EdgeHoldoff = 16

// New returns a core with detectors idle (no coefficients, no thresholds),
// a single-stage energy-high trigger, and the jammer in its defaults.
func New() *Core {
	c := &Core{
		bus:      fpga.NewRegisterBus(),
		xc:       xcorr.New(),
		en:       energy.New(),
		sm:       trigger.New(trigger.EventEnergyHigh),
		jam:      jammer.New(),
		edgeX:    trigger.NewEdgeDetector(EdgeHoldoff),
		edgeH:    trigger.NewEdgeDetector(EdgeHoldoff),
		edgeL:    trigger.NewEdgeDetector(EdgeHoldoff),
		fusion:   FusionSequence,
		events:   []trigger.Event{trigger.EventEnergyHigh},
		counters: &telemetry.Counters{},
		rec:      telemetry.Discard,
	}
	c.installRegisterDecode()
	c.installInstrumentation()
	return c
}

// installInstrumentation routes block-level transitions into the recorder.
// The hooks live for the core's lifetime and read c.rec on every firing, so
// SetRecorder swaps take effect immediately.
func (c *Core) installInstrumentation() {
	c.bus.WatchAll(func(addr uint8, value uint32) {
		c.counters.RegWrites.Add(1)
		// Register writes may arrive from a host goroutine while the
		// datapath runs, so they never read the engagement state.
		c.rec.Event(telemetry.EvRegWrite, c.clock.Cycle(),
			uint64(addr)<<32|uint64(value), 0)
	})
	c.sm.OnTransition(func(from, to int, fired bool) {
		if fired {
			return // the fire event is emitted by ProcessSample
		}
		switch {
		case from == 0 && to > 0:
			c.rec.Event(telemetry.EvTriggerArm, c.clock.Cycle(), uint64(to), c.curEng)
		case to > from:
			c.rec.Event(telemetry.EvTriggerStage, c.clock.Cycle(), uint64(to), c.curEng)
		case to < from:
			c.rec.Event(telemetry.EvTriggerAbandon, c.clock.Cycle(), uint64(from), c.curEng)
		}
	})
	c.jam.OnPhase(func(from, to jammer.Phase) {
		switch {
		case to == jammer.PhaseDelay:
			c.rec.Event(telemetry.EvJamDelay, c.clock.Cycle(), 0, c.curEng)
		case to == jammer.PhaseInit:
			c.rec.Event(telemetry.EvJamInit, c.clock.Cycle(), 0, c.curEng)
		case to == jammer.PhaseJamming:
			c.rec.Event(telemetry.EvJamRFOn, c.clock.Cycle(), 0, c.curEng)
		case to == jammer.PhaseIdle && from == jammer.PhaseJamming:
			c.rec.Event(telemetry.EvJamRFOff, c.clock.Cycle(), 0, c.curEng)
			// The burst is over: restart the engagement linger so the
			// holdoff-release fires once the detectors have re-armed.
			c.engLinger = EdgeHoldoff
		}
	})
}

// SetRecorder installs a telemetry recorder (telemetry.Discard to disable).
// A *telemetry.Live recorder is additionally bound to the core's counter
// block so its exposition reads the same counters Stats snapshots. Swap
// recorders only while the sample loop is quiescent.
func (c *Core) SetRecorder(r telemetry.Recorder) {
	if r == nil {
		r = telemetry.Discard
	}
	if l, ok := r.(*telemetry.Live); ok {
		l.BindCounters(c.counters)
	}
	c.rec = r
	_, nop := r.(telemetry.Nop)
	c.live = !nop
	if !c.live {
		c.curEng, c.engLinger = 0, 0
	}
}

// Recorder returns the installed telemetry recorder.
func (c *Core) Recorder() telemetry.Recorder { return c.rec }

// Counters exposes the telemetry counter block (shared with Stats and the
// exposition endpoint).
func (c *Core) Counters() *telemetry.Counters { return c.counters }

// MarkFrameStart journals a frame-start marker at the given hardware clock
// cycle. Measurement harnesses call it when they know where an injected
// frame begins, which is what anchors the end-to-end reaction-latency
// histogram.
func (c *Core) MarkFrameStart(cycle uint64) {
	c.rec.Event(telemetry.EvFrameStart, cycle, 0, 0)
}

// PollFeedback reads the host-feedback counters the way the host
// application does ("Synchro Flags" in Fig. 1), counting the poll itself.
func (c *Core) PollFeedback() Stats {
	c.counters.HostPolls.Add(1)
	c.rec.Event(telemetry.EvHostPoll, c.clock.Cycle(), 0, 0)
	return c.Stats()
}

// Bus returns the user register bus for host-side programming.
func (c *Core) Bus() *fpga.RegisterBus { return c.bus }

// XCorr exposes the cross-correlator block (for direct configuration in
// tests and characterization runs).
func (c *Core) XCorr() *xcorr.Correlator { return c.xc }

// Energy exposes the energy differentiator block.
func (c *Core) Energy() *energy.Differentiator { return c.en }

// Jammer exposes the transmit controller block.
func (c *Core) Jammer() *jammer.Controller { return c.jam }

// SetFusion configures the trigger combination directly (bypassing the
// register bus), mirroring what RegTriggerConfig decodes to.
func (c *Core) SetFusion(mode FusionMode, events []trigger.Event, window uint64) error {
	if len(events) == 0 || len(events) > trigger.MaxStages {
		return fmt.Errorf("core: need 1..%d trigger events", trigger.MaxStages)
	}
	if mode == FusionSequence {
		if err := c.sm.Configure(events, window); err != nil {
			return err
		}
	}
	c.fusion = mode
	c.events = append(c.events[:0], events...)
	return nil
}

// Antenna returns the antenna-control GPIO lines (bits 16-19 of
// RegJammerGainAnt).
func (c *Core) Antenna() uint8 { return c.antenna }

// Stats returns a snapshot of the host-feedback counters.
func (c *Core) Stats() Stats {
	s := c.counters.Snapshot()
	return Stats{
		Samples:              s.Samples,
		XCorrDetections:      s.XCorrDetections,
		EnergyHighDetections: s.EnergyHighDetections,
		EnergyLowDetections:  s.EnergyLowDetections,
		JamTriggers:          s.JamTriggers,
		JamSamples:           s.JamSamples,
		RegWrites:            s.RegWrites,
		HostPolls:            s.HostPolls,
	}
}

// ResetStats clears the feedback counters only.
func (c *Core) ResetStats() { c.counters.Reset() }

// ResetDatapath clears all sample state (detector histories, trigger FSM,
// jammer state, counters) while keeping the register configuration.
func (c *Core) ResetDatapath() {
	c.xc.Reset()
	c.en.Reset()
	c.sm.ResetState()
	c.jam.Reset()
	c.edgeX.Reset()
	c.edgeH.Reset()
	c.edgeL.Reset()
	c.counters.Reset()
	c.clock.Reset()
	c.curEng, c.engLinger = 0, 0
}

// Clock returns the core's hardware clock (advances 4 cycles per sample).
func (c *Core) Clock() *fpga.Clock { return &c.clock }

// ProcessSample consumes one receive-path baseband sample and returns the
// transmit-path output for the same sample tick.
func (c *Core) ProcessSample(rx complex128) (tx complex128) {
	c.clock.AdvanceSamples(1)
	c.counters.Samples.Add(1)
	q := fixed.Quantize(rx)
	enHigh, enLow := c.en.Process(q)
	tx = c.step(q, enHigh, enLow)
	if tx != 0 {
		c.counters.JamSamples.Add(1)
	}
	return tx
}

// step runs the post-energy stages of one sample tick: cross-correlation,
// edge detection, trigger fusion and the jamming transmit controller. The
// caller owns clock advancement and the Samples/JamSamples counters.
func (c *Core) step(q fixed.IQ, enHigh, enLow bool) complex128 {
	_, xcLevel := c.xc.Process(q)

	in := trigger.Inputs{
		XCorr:      c.edgeX.Process(xcLevel),
		EnergyHigh: c.edgeH.Process(enHigh),
		EnergyLow:  c.edgeL.Process(enLow),
	}
	if c.live && (in.XCorr || in.EnergyHigh || in.EnergyLow) {
		if c.curEng == 0 {
			c.engSeq++
			c.curEng = c.engSeq
		}
		c.engLinger = EdgeHoldoff
	}
	if in.XCorr {
		c.counters.XCorrDetections.Add(1)
		c.rec.Event(telemetry.EvXCorrEdge, c.clock.Cycle(), 0, c.curEng)
	}
	if in.EnergyHigh {
		c.counters.EnergyHighDetections.Add(1)
		c.rec.Event(telemetry.EvEnergyHighEdge, c.clock.Cycle(), 0, c.curEng)
	}
	if in.EnergyLow {
		c.counters.EnergyLowDetections.Add(1)
		c.rec.Event(telemetry.EvEnergyLowEdge, c.clock.Cycle(), 0, c.curEng)
	}

	var fire bool
	switch c.fusion {
	case FusionAny:
		for _, e := range c.events {
			switch e {
			case trigger.EventXCorr:
				fire = fire || in.XCorr
			case trigger.EventEnergyHigh:
				fire = fire || in.EnergyHigh
			case trigger.EventEnergyLow:
				fire = fire || in.EnergyLow
			}
		}
	default:
		fire = c.sm.Process(in)
	}
	if fire {
		c.counters.JamTriggers.Add(1)
		c.rec.Event(telemetry.EvTriggerFire, c.clock.Cycle(), 0, c.curEng)
	}

	tx := c.jam.Process(q, fire)

	// Engagement close: once the jammer is idle again, let the engagement
	// linger for the detector holdoff and then release it.
	if c.curEng != 0 && c.jam.Phase() == jammer.PhaseIdle {
		c.engLinger--
		if c.engLinger == 0 {
			c.rec.Event(telemetry.EvHoldoffRelease, c.clock.Cycle(), 0, c.curEng)
			c.curEng = 0
		}
	}
	return tx
}

// blockScratch holds the reusable block-mode staging buffers.
type blockScratch struct {
	iq     []fixed.IQ
	enHigh []bool
	enLow  []bool
}

func (s *blockScratch) grow(n int) {
	if cap(s.iq) < n {
		s.iq = make([]fixed.IQ, n)
		s.enHigh = make([]bool, n)
		s.enLow = make([]bool, n)
	}
	s.iq = s.iq[:n]
	s.enHigh = s.enHigh[:n]
	s.enLow = s.enLow[:n]
}

// ProcessBlock is the block-mode fast path: it runs a whole receive slice
// through the datapath, writing the transmit output into tx (which must be
// at least len(rx) long). The results — transmit samples, counters, trigger
// decisions and detector state — are bit-identical to calling ProcessSample
// once per sample; the speedup comes from amortizing the per-sample
// overheads over the slice: quantization runs as its own pass, the energy
// differentiator runs in block mode, and the Samples/JamSamples counter
// updates are batched to one atomic add per block.
//
// With the default no-op recorder the hardware clock is also advanced once
// per block instead of once per sample (nothing can observe mid-block
// cycle stamps when events are discarded). With a live recorder attached
// the clock advances per sample so journaled events keep cycle-accurate
// timestamps.
func (c *Core) ProcessBlock(rx []complex128, tx []complex128) {
	n := len(rx)
	if n == 0 {
		return
	}
	_ = tx[:n]
	c.counters.Samples.Add(uint64(n))
	nop := !c.live
	if nop {
		c.clock.AdvanceSamples(uint64(n))
	}

	c.scratch.grow(n)
	iq := c.scratch.iq
	for i, s := range rx {
		iq[i] = fixed.Quantize(s)
	}
	c.en.ProcessBlock(iq, c.scratch.enHigh, c.scratch.enLow)

	var jamSamples uint64
	for i := 0; i < n; i++ {
		if !nop {
			c.clock.AdvanceSamples(1)
		}
		out := c.step(iq[i], c.scratch.enHigh[i], c.scratch.enLow[i])
		if out != 0 {
			jamSamples++
		}
		tx[i] = out
	}
	if jamSamples > 0 {
		c.counters.JamSamples.Add(jamSamples)
	}
}

// ProcessBuffer runs a whole receive buffer through the core, returning the
// transmit buffer of equal length.
func (c *Core) ProcessBuffer(rx []complex128) []complex128 {
	tx := make([]complex128, len(rx))
	c.ProcessBlock(rx, tx)
	return tx
}

// Resources returns the total FPGA utilization of the synthesized core.
func (c *Core) Resources() fpga.Resources {
	return c.xc.Resources().Add(c.en.Resources()).Add(c.jam.Resources())
}

// Timelines reports the reactive-jamming latency budget of Fig. 5 / §3.1
// for the current jammer settings.
type Timelines struct {
	// TenDet is the worst-case energy detection latency (32 samples).
	TenDet time.Duration
	// TxcorrDet is the cross-correlation detection latency (64 samples).
	TxcorrDet time.Duration
	// TInit is the trigger-to-RF turnaround (8 clock cycles).
	TInit time.Duration
	// TJam is the configured jamming burst duration.
	TJam time.Duration
	// TRespEnergy and TRespXCorr are the total system response times for
	// each detection path (detection + init).
	TRespEnergy time.Duration
	TRespXCorr  time.Duration
}

// Timelines computes the latency budget from the block constants and the
// live jammer configuration.
func (c *Core) Timelines() Timelines {
	ten := fpga.CyclesToDuration(energy.DetectionCycles)
	txc := fpga.CyclesToDuration(xcorr.DetectionCycles)
	tin := fpga.CyclesToDuration(jammer.InitCycles)
	return Timelines{
		TenDet:      ten,
		TxcorrDet:   txc,
		TInit:       tin,
		TJam:        fpga.SamplesToDuration(c.jam.UptimeSamples()),
		TRespEnergy: ten + tin,
		TRespXCorr:  txc + tin,
	}
}
