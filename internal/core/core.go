// Package core implements the custom DSP core of Fig. 2 — the paper's
// primary contribution. It nests the cross-correlator, the energy
// differentiator, the three-stage trigger state machine, and the jamming
// transmit controller into one sample-clocked datapath, exposes the whole
// configuration through the UHD user register bus, and counts detection
// events for host feedback ("Synchro Flags" in Fig. 1).
//
// One call to ProcessSample corresponds to one 25 MSPS baseband sample
// entering the DDC chain: the sample is quantized to the 16-bit I/Q the
// FPGA sees, both detectors run in parallel, their (edge-detected) outputs
// drive the trigger state machine, and the transmit controller produces the
// jamming output for the same tick.
package core

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/energy"
	"repro/internal/fixed"
	"repro/internal/fpga"
	"repro/internal/jammer"
	"repro/internal/telemetry"
	"repro/internal/trigger"
	"repro/internal/xcorr"
)

// FusionMode selects how detector events combine into a jam trigger.
type FusionMode uint8

// Fusion modes of the trigger builder.
const (
	// FusionSequence requires the configured events in order within the
	// window (the hardware three-stage state machine).
	FusionSequence FusionMode = iota
	// FusionAny fires on any one of the configured events (OR), the
	// combination used for the WiMAX experiment of §5.
	FusionAny
)

// Stats carries the host-feedback counters of the core. It is a snapshot
// of the telemetry counter block — the same memory the exposition endpoint
// reads — so host feedback and telemetry can never drift apart.
type Stats struct {
	// Samples is the number of baseband samples processed.
	Samples uint64
	// XCorrDetections counts cross-correlator trigger edges.
	XCorrDetections uint64
	// EnergyHighDetections and EnergyLowDetections count energy edges.
	EnergyHighDetections uint64
	EnergyLowDetections  uint64
	// JamTriggers counts serviced jamming events.
	JamTriggers uint64
	// JamSamples counts transmitted jamming samples.
	JamSamples uint64
	// RegWrites counts user register-bus writes.
	RegWrites uint64
	// HostPolls counts host-feedback polls.
	HostPolls uint64
}

// Core is the complete custom DSP core. Construct with New. Core is not
// safe for concurrent use from multiple goroutines; the register bus it
// exposes is.
type Core struct {
	bus *fpga.RegisterBus

	xc  *xcorr.Correlator
	en  *energy.Differentiator
	sm  *trigger.StateMachine
	jam *jammer.Controller

	edgeX *trigger.EdgeDetector
	edgeH *trigger.EdgeDetector
	edgeL *trigger.EdgeDetector

	clock fpga.Clock

	fusion FusionMode
	events []trigger.Event

	counters *telemetry.Counters
	rec      telemetry.Recorder
	live     bool // a capturing recorder is attached

	// Engagement tracking (only maintained while a capturing recorder is
	// attached): every detector edge that arrives while no engagement is
	// open allocates a fresh engagement ID, and all subsequent sample-
	// clocked events — detector edges, trigger FSM transitions, jammer
	// phases — carry that ID until the engagement closes. An engagement
	// closes EdgeHoldoff samples after the datapath goes quiescent (jammer
	// idle, no new edges), at which point EvHoldoffRelease is journaled:
	// the detectors have re-armed and the next packet starts a new
	// engagement.
	engSeq    uint32
	curEng    uint32
	engLinger uint64

	scratch blockScratch

	antenna uint8
}

// EdgeHoldoff is the default detector re-trigger holdoff in samples,
// preventing one preamble from registering as a burst of detections.
const EdgeHoldoff = 16

// New returns a core with detectors idle (no coefficients, no thresholds),
// a single-stage energy-high trigger, and the jammer in its defaults.
func New() *Core {
	c := &Core{
		bus:      fpga.NewRegisterBus(),
		xc:       xcorr.New(),
		en:       energy.New(),
		sm:       trigger.New(trigger.EventEnergyHigh),
		jam:      jammer.New(),
		edgeX:    trigger.NewEdgeDetector(EdgeHoldoff),
		edgeH:    trigger.NewEdgeDetector(EdgeHoldoff),
		edgeL:    trigger.NewEdgeDetector(EdgeHoldoff),
		fusion:   FusionSequence,
		events:   []trigger.Event{trigger.EventEnergyHigh},
		counters: &telemetry.Counters{},
		rec:      telemetry.Discard,
	}
	c.installRegisterDecode()
	c.installInstrumentation()
	return c
}

// installInstrumentation routes block-level transitions into the recorder.
// The hooks live for the core's lifetime and read c.rec on every firing, so
// SetRecorder swaps take effect immediately.
func (c *Core) installInstrumentation() {
	c.bus.WatchAll(func(addr uint8, value uint32) {
		c.counters.RegWrites.Add(1)
		// Register writes may arrive from a host goroutine while the
		// datapath runs, so they never read the engagement state.
		c.rec.Event(telemetry.EvRegWrite, c.clock.Cycle(),
			uint64(addr)<<32|uint64(value), 0)
	})
	c.sm.OnTransition(func(from, to int, fired bool) {
		if fired {
			return // the fire event is emitted by ProcessSample
		}
		switch {
		case from == 0 && to > 0:
			c.rec.Event(telemetry.EvTriggerArm, c.clock.Cycle(), uint64(to), c.curEng)
		case to > from:
			c.rec.Event(telemetry.EvTriggerStage, c.clock.Cycle(), uint64(to), c.curEng)
		case to < from:
			c.rec.Event(telemetry.EvTriggerAbandon, c.clock.Cycle(), uint64(from), c.curEng)
		}
	})
	c.jam.OnPhase(func(from, to jammer.Phase) {
		switch {
		case to == jammer.PhaseDelay:
			c.rec.Event(telemetry.EvJamDelay, c.clock.Cycle(), 0, c.curEng)
		case to == jammer.PhaseInit:
			c.rec.Event(telemetry.EvJamInit, c.clock.Cycle(), 0, c.curEng)
		case to == jammer.PhaseJamming:
			c.rec.Event(telemetry.EvJamRFOn, c.clock.Cycle(), 0, c.curEng)
		case to == jammer.PhaseIdle && from == jammer.PhaseJamming:
			c.rec.Event(telemetry.EvJamRFOff, c.clock.Cycle(), 0, c.curEng)
			// The burst is over: restart the engagement linger so the
			// holdoff-release fires once the detectors have re-armed.
			c.engLinger = EdgeHoldoff
		}
	})
}

// SetRecorder installs a telemetry recorder (telemetry.Discard to disable).
// A *telemetry.Live recorder is additionally bound to the core's counter
// block so its exposition reads the same counters Stats snapshots. Swap
// recorders only while the sample loop is quiescent.
func (c *Core) SetRecorder(r telemetry.Recorder) {
	if r == nil {
		r = telemetry.Discard
	}
	if l, ok := r.(*telemetry.Live); ok {
		l.BindCounters(c.counters)
	}
	c.rec = r
	_, nop := r.(telemetry.Nop)
	c.live = !nop
	if !c.live {
		c.curEng, c.engLinger = 0, 0
	}
}

// Recorder returns the installed telemetry recorder.
func (c *Core) Recorder() telemetry.Recorder { return c.rec }

// Counters exposes the telemetry counter block (shared with Stats and the
// exposition endpoint).
func (c *Core) Counters() *telemetry.Counters { return c.counters }

// MarkFrameStart journals a frame-start marker at the given hardware clock
// cycle. Measurement harnesses call it when they know where an injected
// frame begins, which is what anchors the end-to-end reaction-latency
// histogram.
func (c *Core) MarkFrameStart(cycle uint64) {
	c.rec.Event(telemetry.EvFrameStart, cycle, 0, 0)
}

// PollFeedback reads the host-feedback counters the way the host
// application does ("Synchro Flags" in Fig. 1), counting the poll itself.
func (c *Core) PollFeedback() Stats {
	c.counters.HostPolls.Add(1)
	c.rec.Event(telemetry.EvHostPoll, c.clock.Cycle(), 0, 0)
	return c.Stats()
}

// Bus returns the user register bus for host-side programming.
func (c *Core) Bus() *fpga.RegisterBus { return c.bus }

// XCorr exposes the cross-correlator block (for direct configuration in
// tests and characterization runs).
func (c *Core) XCorr() *xcorr.Correlator { return c.xc }

// Energy exposes the energy differentiator block.
func (c *Core) Energy() *energy.Differentiator { return c.en }

// Jammer exposes the transmit controller block.
func (c *Core) Jammer() *jammer.Controller { return c.jam }

// SetFusion configures the trigger combination directly (bypassing the
// register bus), mirroring what RegTriggerConfig decodes to.
func (c *Core) SetFusion(mode FusionMode, events []trigger.Event, window uint64) error {
	if len(events) == 0 || len(events) > trigger.MaxStages {
		return fmt.Errorf("core: need 1..%d trigger events", trigger.MaxStages)
	}
	if mode == FusionSequence {
		if err := c.sm.Configure(events, window); err != nil {
			return err
		}
	}
	c.fusion = mode
	c.events = append(c.events[:0], events...)
	return nil
}

// Antenna returns the antenna-control GPIO lines (bits 16-19 of
// RegJammerGainAnt).
func (c *Core) Antenna() uint8 { return c.antenna }

// Stats returns a snapshot of the host-feedback counters.
func (c *Core) Stats() Stats {
	s := c.counters.Snapshot()
	return Stats{
		Samples:              s.Samples,
		XCorrDetections:      s.XCorrDetections,
		EnergyHighDetections: s.EnergyHighDetections,
		EnergyLowDetections:  s.EnergyLowDetections,
		JamTriggers:          s.JamTriggers,
		JamSamples:           s.JamSamples,
		RegWrites:            s.RegWrites,
		HostPolls:            s.HostPolls,
	}
}

// ResetStats clears the feedback counters only.
func (c *Core) ResetStats() { c.counters.Reset() }

// ResetDatapath clears all sample state (detector histories, trigger FSM,
// jammer state, counters) while keeping the register configuration.
func (c *Core) ResetDatapath() {
	c.xc.Reset()
	c.en.Reset()
	c.sm.ResetState()
	c.jam.Reset()
	c.edgeX.Reset()
	c.edgeH.Reset()
	c.edgeL.Reset()
	c.counters.Reset()
	c.clock.Reset()
	c.curEng, c.engLinger = 0, 0
}

// Clock returns the core's hardware clock (advances 4 cycles per sample).
func (c *Core) Clock() *fpga.Clock { return &c.clock }

// ProcessSample consumes one receive-path baseband sample and returns the
// transmit-path output for the same sample tick.
func (c *Core) ProcessSample(rx complex128) (tx complex128) {
	c.clock.AdvanceSamples(1)
	c.counters.Samples.Add(1)
	q := fixed.Quantize(rx)
	enHigh, enLow := c.en.Process(q)
	tx = c.step(q, enHigh, enLow)
	if tx != 0 {
		c.counters.JamSamples.Add(1)
	}
	return tx
}

// step runs the post-energy stages of one sample tick: cross-correlation,
// edge detection, trigger fusion and the jamming transmit controller. The
// caller owns clock advancement and the Samples/JamSamples counters.
func (c *Core) step(q fixed.IQ, enHigh, enLow bool) complex128 {
	_, xcLevel := c.xc.Process(q)
	return c.stepLevels(q, xcLevel, enHigh, enLow)
}

// stepLevels runs one sample tick from precomputed detector comparator
// levels: edge detection, trigger fusion, the jamming controller and
// engagement bookkeeping. The block datapath calls it directly for samples
// inside detection/engagement windows, where the correlator and energy
// levels already came out of the block kernels.
func (c *Core) stepLevels(q fixed.IQ, xcLevel, enHigh, enLow bool) complex128 {
	in := trigger.Inputs{
		XCorr:      c.edgeX.Process(xcLevel),
		EnergyHigh: c.edgeH.Process(enHigh),
		EnergyLow:  c.edgeL.Process(enLow),
	}
	if c.live && (in.XCorr || in.EnergyHigh || in.EnergyLow) {
		if c.curEng == 0 {
			c.engSeq++
			c.curEng = c.engSeq
		}
		c.engLinger = EdgeHoldoff
	}
	if in.XCorr {
		c.counters.XCorrDetections.Add(1)
		c.rec.Event(telemetry.EvXCorrEdge, c.clock.Cycle(), 0, c.curEng)
	}
	if in.EnergyHigh {
		c.counters.EnergyHighDetections.Add(1)
		c.rec.Event(telemetry.EvEnergyHighEdge, c.clock.Cycle(), 0, c.curEng)
	}
	if in.EnergyLow {
		c.counters.EnergyLowDetections.Add(1)
		c.rec.Event(telemetry.EvEnergyLowEdge, c.clock.Cycle(), 0, c.curEng)
	}

	var fire bool
	switch c.fusion {
	case FusionAny:
		for _, e := range c.events {
			switch e {
			case trigger.EventXCorr:
				fire = fire || in.XCorr
			case trigger.EventEnergyHigh:
				fire = fire || in.EnergyHigh
			case trigger.EventEnergyLow:
				fire = fire || in.EnergyLow
			}
		}
	default:
		fire = c.sm.Process(in)
	}
	if fire {
		c.counters.JamTriggers.Add(1)
		c.rec.Event(telemetry.EvTriggerFire, c.clock.Cycle(), 0, c.curEng)
	}

	tx := c.jam.Process(q, fire)

	// Engagement close: once the jammer is idle again, let the engagement
	// linger for the detector holdoff and then release it.
	if c.curEng != 0 && c.jam.Phase() == jammer.PhaseIdle {
		c.engLinger--
		if c.engLinger == 0 {
			c.rec.Event(telemetry.EvHoldoffRelease, c.clock.Cycle(), 0, c.curEng)
			c.curEng = 0
		}
	}
	return tx
}

// blockScratch holds the reusable block-mode staging buffers: the SoA I/Q
// planes, the packed sign-bit words, the detector level bitmaps, and the
// pooled ProcessBuffer output.
type blockScratch struct {
	iPlane []int16
	qPlane []int16
	signI  []uint64
	signQ  []uint64
	lvlX   []uint64 // xcorr trigger-level bitmap
	lvlH   []uint64 // energy-high level bitmap
	lvlL   []uint64 // energy-low level bitmap
	lvlAny []uint64 // OR of the three, for the quiet-span scan
	tx     []complex128
}

func (s *blockScratch) grow(n int) {
	w := (n + 63) / 64
	if cap(s.iPlane) < n {
		s.iPlane = make([]int16, n)
		s.qPlane = make([]int16, n)
	}
	if cap(s.signI) < w {
		s.signI = make([]uint64, w)
		s.signQ = make([]uint64, w)
		s.lvlX = make([]uint64, w)
		s.lvlH = make([]uint64, w)
		s.lvlL = make([]uint64, w)
		s.lvlAny = make([]uint64, w)
	}
	s.iPlane = s.iPlane[:n]
	s.qPlane = s.qPlane[:n]
	s.signI = s.signI[:w]
	s.signQ = s.signQ[:w]
	s.lvlX = s.lvlX[:w]
	s.lvlH = s.lvlH[:w]
	s.lvlL = s.lvlL[:w]
	s.lvlAny = s.lvlAny[:w]
}

// ProcessBlock is the block-mode fast path: it runs a whole receive slice
// through the datapath, writing the transmit output into tx (which must be
// at least len(rx) long). The results — transmit samples, counters, trigger
// decisions and detector state — are bit-identical to calling ProcessSample
// once per sample.
//
// The pipeline is fused and structure-of-arrays: one sweep quantizes the
// input into separate int16 I/Q planes and packs the sign bits 64 per word
// (fixed.QuantizeFused); the energy differentiator and the packed
// correlator then turn those planes into per-sample trigger-level bitmaps. The trigger/jammer state machine
// runs batched over the bitmaps: spans with no detector level anywhere —
// the overwhelming majority of airtime — are handled in bulk (edge-detector
// holdoffs and trigger windows burn down arithmetically, idle replay
// capture and jam-burst fill run as tight loops, transmit silence is a
// memclr), and the datapath only drops to cycle-accurate scalar stepping
// for samples inside detection and engagement windows.
//
// With the default no-op recorder the hardware clock is advanced once per
// block (nothing can observe mid-block cycle stamps when events are
// discarded). With a live recorder attached the clock advances per quiet
// span and per scalar sample, so every journaled event keeps the exact
// cycle stamp the per-sample path would give it; while an engagement is
// open the whole path stays scalar so holdoff-release timing is preserved.
func (c *Core) ProcessBlock(rx []complex128, tx []complex128) {
	c.ProcessBlockScaled(rx, tx, 1)
}

// ProcessBlockScaled is ProcessBlock with an RX amplitude gain folded into
// the quantization sweep, bit-identical to scaling every input sample by
// complex(scale, 0) first. The radio front end uses it to apply its RX gain
// without an extra pass over the data.
func (c *Core) ProcessBlockScaled(rx []complex128, tx []complex128, scale float64) {
	n := len(rx)
	if n == 0 {
		return
	}
	tx = tx[:n]
	c.counters.Samples.Add(uint64(n))
	nop := !c.live
	if nop {
		c.clock.AdvanceSamples(uint64(n))
	}

	c.scratch.grow(n)
	sc := &c.scratch
	fixed.QuantizeFused(rx, scale, sc.iPlane, sc.qPlane, sc.signI, sc.signQ)
	c.en.ProcessBits(sc.iPlane, sc.qPlane, sc.lvlH, sc.lvlL)
	c.xc.ProcessPacked(sc.signI, sc.signQ, n, sc.lvlX)
	for w, x := range sc.lvlX {
		sc.lvlAny[w] = x | sc.lvlH[w] | sc.lvlL[w]
	}

	var jamSamples uint64
	for i := 0; i < n; {
		if c.bulkEligible() {
			if j := nextLevelBit(sc.lvlAny, i, n); j > i {
				span := uint64(j - i)
				if !nop {
					c.clock.AdvanceSamples(span)
				}
				c.edgeX.AdvanceQuiet(span)
				c.edgeH.AdvanceQuiet(span)
				c.edgeL.AdvanceQuiet(span)
				if c.fusion != FusionAny {
					c.sm.AdvanceQuiet(span)
				}
				jamSamples += c.jam.ProcessQuietSpan(sc.iPlane[i:j], sc.qPlane[i:j], tx[i:j])
				i = j
				continue
			}
		}
		if !nop {
			c.clock.AdvanceSamples(1)
		}
		w, b := i>>6, uint(i&63)
		out := c.stepLevels(
			fixed.IQ{I: sc.iPlane[i], Q: sc.qPlane[i]},
			sc.lvlX[w]>>b&1 != 0,
			sc.lvlH[w]>>b&1 != 0,
			sc.lvlL[w]>>b&1 != 0)
		if out != 0 {
			jamSamples++
		}
		tx[i] = out
		i++
	}
	if jamSamples > 0 {
		c.counters.JamSamples.Add(jamSamples)
	}
}

// bulkEligible reports whether the datapath may batch a detector-quiet span
// right now. With the no-op recorder every quiet span batches: the batched
// state updates are bit-identical and no observer exists for mid-span
// timing. With a live recorder attached, batching is only safe while
// nothing that journals cycle-stamped events can fire mid-span: the jammer
// must be idle (phase transitions carry stamps), no engagement may be open
// (the holdoff-release countdown is per-sample), and no trigger window may
// be armed (its expiry journals an abandon transition).
func (c *Core) bulkEligible() bool {
	if !c.live {
		return true
	}
	return c.curEng == 0 &&
		c.jam.Phase() == jammer.PhaseIdle &&
		(c.fusion == FusionAny || !c.sm.Armed())
}

// nextLevelBit returns the index of the first sample at or after `from`
// whose bit is set in the level bitmap, or n when the rest of the block is
// quiet. Bits above n-1 in the last word are zero by construction.
func nextLevelBit(words []uint64, from, n int) int {
	w := from >> 6
	if m := words[w] >> uint(from&63); m != 0 {
		return from + bits.TrailingZeros64(m)
	}
	for w++; w < len(words); w++ {
		if m := words[w]; m != 0 {
			return w<<6 + bits.TrailingZeros64(m)
		}
	}
	return n
}

// ProcessBuffer runs a whole receive buffer through the core, returning the
// transmit buffer of equal length. The returned slice is pooled: it stays
// valid until the next ProcessBuffer call on this core, which reuses the
// same backing array. Callers that need the output to outlive the next
// block must copy it (the flowgraph sinks already do).
func (c *Core) ProcessBuffer(rx []complex128) []complex128 {
	if cap(c.scratch.tx) < len(rx) {
		c.scratch.tx = make([]complex128, len(rx))
	}
	tx := c.scratch.tx[:len(rx)]
	c.ProcessBlock(rx, tx)
	return tx
}

// Resources returns the total FPGA utilization of the synthesized core.
func (c *Core) Resources() fpga.Resources {
	return c.xc.Resources().Add(c.en.Resources()).Add(c.jam.Resources())
}

// Timelines reports the reactive-jamming latency budget of Fig. 5 / §3.1
// for the current jammer settings.
type Timelines struct {
	// TenDet is the worst-case energy detection latency (32 samples).
	TenDet time.Duration
	// TxcorrDet is the cross-correlation detection latency (64 samples).
	TxcorrDet time.Duration
	// TInit is the trigger-to-RF turnaround (8 clock cycles).
	TInit time.Duration
	// TJam is the configured jamming burst duration.
	TJam time.Duration
	// TRespEnergy and TRespXCorr are the total system response times for
	// each detection path (detection + init).
	TRespEnergy time.Duration
	TRespXCorr  time.Duration
}

// Timelines computes the latency budget from the block constants and the
// live jammer configuration.
func (c *Core) Timelines() Timelines {
	ten := fpga.CyclesToDuration(energy.DetectionCycles)
	txc := fpga.CyclesToDuration(xcorr.DetectionCycles)
	tin := fpga.CyclesToDuration(jammer.InitCycles)
	return Timelines{
		TenDet:      ten,
		TxcorrDet:   txc,
		TInit:       tin,
		TJam:        fpga.SamplesToDuration(c.jam.UptimeSamples()),
		TRespEnergy: ten + tin,
		TRespXCorr:  txc + tin,
	}
}
