package core

import (
	"testing"

	"repro/internal/telemetry"
)

// Allocation and pooling guards for the block datapath: after scratch
// warm-up, ProcessBlock and ProcessBuffer must run allocation-free in steady
// state — with the default no-op recorder and with a live journal attached —
// and the pooled ProcessBuffer output must reuse one backing array.

func TestProcessBlockZeroAllocNop(t *testing.T) {
	c := New()
	programEnergyHigh(t, c, 100)
	input := parityInput()
	tx := make([]complex128, len(input))
	c.ProcessBlock(input, tx) // warm up scratch planes

	if avg := testing.AllocsPerRun(20, func() {
		c.ProcessBlock(input, tx)
	}); avg != 0 {
		t.Fatalf("ProcessBlock (nop recorder) allocates %.1f per call in steady state", avg)
	}
}

func TestProcessBlockZeroAllocLive(t *testing.T) {
	c := New()
	programEnergyHigh(t, c, 100)
	live := telemetry.NewLive(telemetry.DefaultJournalDepth)
	c.SetRecorder(live)
	input := parityInput() // engagement-bearing: bursts open and close
	tx := make([]complex128, len(input))
	c.ProcessBlock(input, tx)

	if avg := testing.AllocsPerRun(20, func() {
		c.ProcessBlock(input, tx)
	}); avg != 0 {
		t.Fatalf("ProcessBlock (live recorder) allocates %.1f per call in steady state", avg)
	}
}

func TestProcessBufferPooling(t *testing.T) {
	c := New()
	programEnergyHigh(t, c, 100)
	input := parityInput()

	first := c.ProcessBuffer(input)
	if len(first) != len(input) {
		t.Fatalf("ProcessBuffer returned %d samples, want %d", len(first), len(input))
	}
	second := c.ProcessBuffer(input[:1000])
	if len(second) != 1000 {
		t.Fatalf("second call returned %d samples, want 1000", len(second))
	}
	if &first[0] != &second[0] {
		t.Error("ProcessBuffer did not reuse its pooled backing array for a smaller block")
	}

	// The pooled slice must still carry correct data: compare a fresh call
	// against a per-sample reference on an identically-programmed core.
	ref := New()
	programEnergyHigh(t, ref, 100)
	refC := New()
	programEnergyHigh(t, refC, 100)
	got := refC.ProcessBuffer(input)
	for i, s := range input {
		if want := ref.ProcessSample(s); got[i] != want {
			t.Fatalf("pooled tx[%d] = %v, want %v", i, got[i], want)
		}
	}

	if avg := testing.AllocsPerRun(20, func() {
		c.ProcessBuffer(input)
	}); avg != 0 {
		t.Fatalf("ProcessBuffer allocates %.1f per call in steady state", avg)
	}
}
