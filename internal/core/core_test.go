package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/fixed"
	"repro/internal/jammer"
	"repro/internal/trigger"
	"repro/internal/xcorr"
)

// quietThenBurst feeds n1 low-power samples then n2 high-power samples.
func quietThenBurst(c *Core, n1, n2 int) (txActive int) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n1; i++ {
		c.ProcessSample(complex(rng.NormFloat64(), rng.NormFloat64()) * 0.003)
	}
	for i := 0; i < n2; i++ {
		if tx := c.ProcessSample(complex(rng.NormFloat64(), rng.NormFloat64()) * 0.5); tx != 0 {
			txActive++
		}
	}
	return txActive
}

// programEnergyHigh configures a 10 dB energy-high trigger and a short
// jammer burst over the register bus.
func programEnergyHigh(t *testing.T, c *Core, uptimeSamples uint32) {
	t.Helper()
	bus := c.Bus()
	writes := map[uint8]uint32{
		RegEnergyThreshHigh: 1000,
		RegEnergyConfig:     1,
		RegTriggerConfig:    uint32(trigger.EventEnergyHigh) | 1<<12,
		RegTriggerWindow:    0,
		RegJammerWaveform:   uint32(jammer.WaveformWGN),
		RegJammerUptime:     uptimeSamples,
		RegJammerGainAnt:    1000, // unity gain
	}
	for a, v := range writes {
		if err := bus.Write(a, v); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEnergyTriggeredJamming(t *testing.T) {
	c := New()
	programEnergyHigh(t, c, 100)
	active := quietThenBurst(c, 500, 400)
	if active == 0 {
		t.Fatal("energy rise did not produce a jamming burst")
	}
	st := c.Stats()
	if st.JamTriggers == 0 || st.EnergyHighDetections == 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.JamSamples != uint64(active) {
		t.Errorf("JamSamples=%d but counted %d active TX", st.JamSamples, active)
	}
	if st.Samples != 900 {
		t.Errorf("Samples=%d, want 900", st.Samples)
	}
}

func TestNoJamWithoutTrigger(t *testing.T) {
	c := New()
	programEnergyHigh(t, c, 100)
	// Constant power: energy differentiator must stay silent.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 3000; i++ {
		if tx := c.ProcessSample(complex(rng.NormFloat64(), rng.NormFloat64()) * 0.2); tx != 0 {
			t.Fatal("jammed with no energy step")
		}
	}
}

func TestRegisterProgrammedCoefficients(t *testing.T) {
	c := New()
	rng := rand.New(rand.NewSource(3))
	tpl := make([]complex128, xcorr.Length)
	for i := range tpl {
		tpl[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	i64, q64 := xcorr.CoefficientsFromTemplate(tpl)
	iRegs := PackCoefficients(i64)
	qRegs := PackCoefficients(q64)
	for r, v := range iRegs {
		if err := c.Bus().Write(RegXCorrCoefI0+uint8(r), v); err != nil {
			t.Fatal(err)
		}
	}
	for r, v := range qRegs {
		if err := c.Bus().Write(RegXCorrCoefQ0+uint8(r), v); err != nil {
			t.Fatal(err)
		}
	}
	peak := xcorr.IdealPeakMetric(tpl)
	if err := c.Bus().Write(RegXCorrThreshold, peak/2); err != nil {
		t.Fatal(err)
	}
	if err := c.Bus().Write(RegTriggerConfig, uint32(trigger.EventXCorr)|1<<12); err != nil {
		t.Fatal(err)
	}
	if err := c.Bus().Write(RegJammerUptime, 50); err != nil {
		t.Fatal(err)
	}
	if err := c.Bus().Write(RegJammerGainAnt, 1000); err != nil {
		t.Fatal(err)
	}

	// Warm up past the correlator holdoff with quiet noise, then send the
	// template: the core must detect and jam.
	for i := 0; i < 200; i++ {
		c.ProcessSample(complex(rng.NormFloat64(), rng.NormFloat64()) * 0.01)
	}
	for _, s := range tpl {
		c.ProcessSample(s * 0.5)
	}
	var jammed bool
	for i := 0; i < 100; i++ {
		if c.ProcessSample(0) != 0 {
			jammed = true
		}
	}
	if !jammed {
		t.Fatal("register-programmed correlator did not trigger jamming")
	}
	if c.Stats().XCorrDetections == 0 {
		t.Error("no xcorr detections counted")
	}
}

func TestPackCoefficientsRoundTrip(t *testing.T) {
	bank := make([]fixed.Coeff3, xcorr.Length)
	for i := range bank {
		bank[i] = fixed.NewCoeff3(i%8 - 4)
	}
	regs := PackCoefficients(bank)
	for i, want := range bank {
		r, k := i/coeffsPerReg, i%coeffsPerReg
		got := fixed.UnpackCoeff3(regs[r] >> (3 * k))
		if got != want {
			t.Fatalf("coefficient %d: %v != %v", i, got, want)
		}
	}
}

func TestFusionAnyORsEvents(t *testing.T) {
	c := New()
	if err := c.SetFusion(FusionAny,
		[]trigger.Event{trigger.EventXCorr, trigger.EventEnergyHigh}, 0); err != nil {
		t.Fatal(err)
	}
	programEnergyHigh(t, c, 50) // rewrites trigger regs to sequence mode
	// Re-apply OR fusion via the register bus (bit 14).
	cfg := uint32(trigger.EventXCorr) | uint32(trigger.EventEnergyHigh)<<4 | 2<<12 | 1<<14
	if err := c.Bus().Write(RegTriggerConfig, cfg); err != nil {
		t.Fatal(err)
	}
	// Energy event alone must fire in OR mode (sequence would wait for
	// xcorr first).
	if active := quietThenBurst(c, 500, 300); active == 0 {
		t.Fatal("OR fusion did not fire on energy alone")
	}
}

func TestSetFusionValidation(t *testing.T) {
	c := New()
	if err := c.SetFusion(FusionSequence, nil, 0); err == nil {
		t.Error("empty events accepted")
	}
	if err := c.SetFusion(FusionSequence, make([]trigger.Event, 4), 0); err == nil {
		t.Error("4 events accepted")
	}
}

func TestResetDatapathKeepsConfig(t *testing.T) {
	c := New()
	programEnergyHigh(t, c, 100)
	quietThenBurst(c, 400, 200)
	c.ResetDatapath()
	if c.Stats() != (Stats{}) {
		t.Error("stats not cleared")
	}
	if c.Clock().Cycle() != 0 {
		t.Error("clock not cleared")
	}
	// Config survives: a new burst must still trigger.
	if active := quietThenBurst(c, 500, 300); active == 0 {
		t.Error("configuration lost across ResetDatapath")
	}
}

func TestAntennaControlBits(t *testing.T) {
	c := New()
	if err := c.Bus().Write(RegJammerGainAnt, 1000|0xA<<16); err != nil {
		t.Fatal(err)
	}
	if c.Antenna() != 0xA {
		t.Errorf("antenna bits = %x, want A", c.Antenna())
	}
	if c.Jammer().Gain() != 1.0 {
		t.Errorf("gain = %v, want 1", c.Jammer().Gain())
	}
}

func TestTimelinesMatchPaper(t *testing.T) {
	c := New()
	if err := c.Jammer().SetUptimeSamples(2500); err != nil { // 0.1 ms
		t.Fatal(err)
	}
	tl := c.Timelines()
	if tl.TenDet != 1280*time.Nanosecond {
		t.Errorf("TenDet = %v, want 1.28µs", tl.TenDet)
	}
	if tl.TxcorrDet != 2560*time.Nanosecond {
		t.Errorf("TxcorrDet = %v, want 2.56µs", tl.TxcorrDet)
	}
	if tl.TInit != 80*time.Nanosecond {
		t.Errorf("TInit = %v, want 80ns", tl.TInit)
	}
	if tl.TRespEnergy != 1360*time.Nanosecond {
		t.Errorf("TRespEnergy = %v, want 1.36µs", tl.TRespEnergy)
	}
	if tl.TRespXCorr != 2640*time.Nanosecond {
		t.Errorf("TRespXCorr = %v, want 2.64µs", tl.TRespXCorr)
	}
	if tl.TJam != 100*time.Microsecond {
		t.Errorf("TJam = %v, want 100µs", tl.TJam)
	}
}

func TestCoreResourcesSum(t *testing.T) {
	r := New().Resources()
	// xcorr + energy + jammer controller.
	if r.Slices != 2613+1262+860 {
		t.Errorf("total slices = %d", r.Slices)
	}
	if r.DSP48s != 2+6 {
		t.Errorf("total DSP48 = %d", r.DSP48s)
	}
}

func TestUsedRegisterBudget(t *testing.T) {
	// Programming every feature must land within the paper's 24 registers.
	c := New()
	regs := []uint8{
		RegXCorrThreshold, RegEnergyConfig, RegEnergyThreshHigh,
		RegEnergyThreshLow, RegTriggerConfig, RegTriggerWindow,
		RegJammerWaveform, RegJammerUptime, RegJammerDelay, RegJammerGainAnt,
	}
	for r := uint8(0); r < numCoefRegs; r++ {
		regs = append(regs, RegXCorrCoefI0+r, RegXCorrCoefQ0+r)
	}
	seen := map[uint8]bool{}
	for _, r := range regs {
		if seen[r] {
			t.Fatalf("register %d assigned twice", r)
		}
		seen[r] = true
		if err := c.Bus().Write(r, 0); err != nil {
			t.Fatalf("write reg %d: %v", r, err)
		}
	}
	if len(seen) != NumUsedRegisters {
		t.Errorf("%d registers used, want %d", len(seen), NumUsedRegisters)
	}
	if got := len(c.Bus().UsedRegisters()); got != NumUsedRegisters {
		t.Errorf("bus reports %d used registers", got)
	}
}

// TestRegisterFuzzRobustness hammers the register bus with arbitrary writes
// and verifies the datapath neither panics nor wedges: whatever garbage the
// host writes, samples keep flowing and a sane reconfiguration afterwards
// restores normal operation.
func TestRegisterFuzzRobustness(t *testing.T) {
	c := New()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		addr := uint8(rng.Intn(256))
		val := uint32(rng.Uint64())
		err := c.Bus().Write(addr, val)
		if addr == 0 && err == nil {
			t.Fatal("reserved register write accepted")
		}
		if i%100 == 0 {
			// The datapath must stay alive mid-fuzz.
			c.ProcessSample(complex(rng.NormFloat64()*0.1, 0))
		}
	}
	// Recover to a known-good configuration — rewriting every register the
	// fuzz may have corrupted, including the trigger-to-jam delay.
	c.ResetDatapath()
	if err := c.Bus().Write(RegJammerDelay, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Bus().Write(RegXCorrThreshold, 1<<31); err != nil {
		t.Fatal(err)
	}
	programEnergyHigh(t, c, 100)
	if active := quietThenBurst(c, 500, 300); active == 0 {
		t.Fatal("core wedged after register fuzzing")
	}
}

// TestTriggerWindowViaRegisters drives the 2-stage sequence feature through
// the bus end to end.
func TestTriggerWindowViaRegisters(t *testing.T) {
	c := New()
	rng := rand.New(rand.NewSource(7))
	tpl := make([]complex128, xcorr.Length)
	for i := range tpl {
		tpl[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	ci, cq := xcorr.CoefficientsFromTemplate(tpl)
	for r, v := range PackCoefficients(ci) {
		if err := c.Bus().Write(RegXCorrCoefI0+uint8(r), v); err != nil {
			t.Fatal(err)
		}
	}
	for r, v := range PackCoefficients(cq) {
		if err := c.Bus().Write(RegXCorrCoefQ0+uint8(r), v); err != nil {
			t.Fatal(err)
		}
	}
	peak := xcorr.IdealPeakMetric(tpl)
	writes := map[uint8]uint32{
		RegXCorrThreshold:   peak / 2,
		RegEnergyThreshHigh: 1000,
		RegEnergyConfig:     1,
		// Sequence: energy-high THEN xcorr within 200 samples.
		RegTriggerConfig: uint32(trigger.EventEnergyHigh) |
			uint32(trigger.EventXCorr)<<4 | 2<<12,
		RegTriggerWindow:  200,
		RegJammerUptime:   50,
		RegJammerGainAnt:  1000,
		RegJammerWaveform: uint32(jammer.WaveformWGN),
	}
	for a, v := range writes {
		if err := c.Bus().Write(a, v); err != nil {
			t.Fatal(err)
		}
	}
	// Quiet, then the template at high power: energy rise fires first,
	// xcorr inside the window completes the sequence.
	for i := 0; i < 500; i++ {
		c.ProcessSample(complex(rng.NormFloat64(), rng.NormFloat64()) * 0.002)
	}
	for _, s := range tpl {
		c.ProcessSample(s * 0.5)
	}
	jammed := false
	for i := 0; i < 100; i++ {
		if c.ProcessSample(0) != 0 {
			jammed = true
		}
	}
	if !jammed {
		t.Fatal("2-stage register-configured sequence never fired")
	}
}
