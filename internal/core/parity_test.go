package core

import (
	"math/rand"
	"testing"

	"repro/internal/telemetry"
)

// parityInput builds a deterministic capture with two distinct energy
// bursts separated by quiet noise, so a run opens (and closes) more than
// one detection engagement.
func parityInput() []complex128 {
	rng := rand.New(rand.NewSource(41))
	buf := make([]complex128, 0, 4000)
	segment := func(n int, amp float64) {
		for i := 0; i < n; i++ {
			buf = append(buf, complex(rng.NormFloat64(), rng.NormFloat64())*complex(amp, 0))
		}
	}
	segment(600, 0.003)
	segment(300, 0.5)
	segment(900, 0.003)
	segment(300, 0.5)
	segment(600, 0.003)
	return buf
}

// TestBlockModeTelemetryParity is the differential check behind the block
// datapath: with a live recorder attached, ProcessBlock must produce the
// exact event stream — kinds, clock stamps, args and engagement IDs — and
// the exact TX output that the per-sample path produces, at every block
// size including ones that straddle the burst boundaries.
func TestBlockModeTelemetryParity(t *testing.T) {
	input := parityInput()

	run := func(blockLens []int) ([]complex128, telemetry.Snapshot, []telemetry.Event) {
		c := New()
		programEnergyHigh(t, c, 100)
		live := telemetry.NewLive(telemetry.DefaultJournalDepth)
		c.SetRecorder(live)
		tx := make([]complex128, 0, len(input))
		if blockLens == nil {
			for _, s := range input {
				tx = append(tx, c.ProcessSample(s))
			}
		} else {
			rest := input
			for i := 0; len(rest) > 0; i++ {
				n := blockLens[i%len(blockLens)]
				if n > len(rest) {
					n = len(rest)
				}
				out := make([]complex128, n)
				c.ProcessBlock(rest[:n], out)
				tx = append(tx, out...)
				rest = rest[n:]
			}
		}
		return tx, live.Snapshot(), live.Events()
	}

	wantTx, wantSnap, wantEvents := run(nil)
	if len(wantEvents) == 0 {
		t.Fatal("per-sample reference run recorded no events")
	}
	if wantSnap.Engagements == 0 {
		t.Fatal("per-sample reference run closed no engagements")
	}
	if wantSnap.Dropped != 0 {
		t.Fatalf("journal overflowed (%d dropped); deepen it for this test", wantSnap.Dropped)
	}

	for _, blocks := range [][]int{{1}, {7}, {64}, {4096}, {1, 3, 127, 64, 300}} {
		gotTx, gotSnap, gotEvents := run(blocks)
		if len(gotTx) != len(wantTx) {
			t.Fatalf("blocks %v: %d tx samples, want %d", blocks, len(gotTx), len(wantTx))
		}
		for i := range wantTx {
			if gotTx[i] != wantTx[i] {
				t.Fatalf("blocks %v: tx[%d] = %v, want %v", blocks, i, gotTx[i], wantTx[i])
			}
		}
		if len(gotEvents) != len(wantEvents) {
			t.Fatalf("blocks %v: %d events, want %d", blocks, len(gotEvents), len(wantEvents))
		}
		for i, w := range wantEvents {
			if gotEvents[i] != w {
				t.Fatalf("blocks %v: event %d = %+v, want %+v", blocks, i, gotEvents[i], w)
			}
		}
		if gotSnap.Counters != wantSnap.Counters {
			t.Errorf("blocks %v: counters %+v, want %+v", blocks, gotSnap.Counters, wantSnap.Counters)
		}
		if gotSnap.Engagements != wantSnap.Engagements {
			t.Errorf("blocks %v: %d engagements, want %d",
				blocks, gotSnap.Engagements, wantSnap.Engagements)
		}
	}
}

// TestBlockModeNopRecorderSkipsPerSampleClock confirms the fast path: with
// the default Nop recorder the block datapath still advances the sample
// clock by the block length and produces identical TX output.
func TestBlockModeNopRecorderParity(t *testing.T) {
	input := parityInput()

	ref := New()
	programEnergyHigh(t, ref, 100)
	wantTx := make([]complex128, len(input))
	for i, s := range input {
		wantTx[i] = ref.ProcessSample(s)
	}

	c := New()
	programEnergyHigh(t, c, 100)
	gotTx := make([]complex128, len(input))
	c.ProcessBlock(input, gotTx)
	for i := range wantTx {
		if gotTx[i] != wantTx[i] {
			t.Fatalf("tx[%d] = %v, want %v", i, gotTx[i], wantTx[i])
		}
	}
	if got, want := c.Stats().Samples, ref.Stats().Samples; got != want {
		t.Errorf("Samples = %d, want %d", got, want)
	}
}
