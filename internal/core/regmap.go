package core

// The user-register map of the custom DSP core. The design uses 24 of the
// 255 available registers (paper §2.2) to make every detection and jamming
// parameter run-time programmable from the host.
const (
	// RegXCorrCoefI0..+6 pack the 64 I-bank coefficients, ten 3-bit fields
	// per register (coefficient k of the register at bits 3k..3k+2).
	RegXCorrCoefI0 uint8 = 1 // .. 7
	// RegXCorrCoefQ0..+6 pack the Q bank the same way.
	RegXCorrCoefQ0 uint8 = 8 // .. 14
	// RegXCorrThreshold is the 32-bit trigger comparison threshold.
	RegXCorrThreshold uint8 = 15
	// RegEnergyConfig: bit0 enables energy-high, bit1 enables energy-low.
	RegEnergyConfig uint8 = 16
	// RegEnergyThreshHigh / Low hold thresholds in centi-dB (300..3000).
	RegEnergyThreshHigh uint8 = 17
	RegEnergyThreshLow  uint8 = 18
	// RegTriggerConfig packs the event sequence: bits 0-3 stage 1, 4-7
	// stage 2, 8-11 stage 3 (trigger.Event values; 0 = unused), bits 12-13
	// the stage count, bit 14 the fusion mode (0 = sequence, 1 = any).
	RegTriggerConfig uint8 = 19
	// RegTriggerWindow is the sequence completion window in samples.
	RegTriggerWindow uint8 = 20
	// RegJammerWaveform selects the waveform preset (jammer.Waveform).
	RegJammerWaveform uint8 = 21
	// RegJammerUptime is the burst length in samples (32-bit).
	RegJammerUptime uint8 = 22
	// RegJammerDelay is the trigger-to-jam delay in samples.
	RegJammerDelay uint8 = 23
	// RegJammerGainAnt: bits 0-15 TX gain in milli-units (1000 = unity),
	// bits 16-19 the antenna-control GPIO lines.
	RegJammerGainAnt uint8 = 24
)

// NumUsedRegisters is the count of registers the design occupies, matching
// the paper's "24 of these user registers".
const NumUsedRegisters = 24

// coeffsPerReg is how many 3-bit coefficients share one 32-bit register.
const coeffsPerReg = 10

// numCoefRegs is the register span of one coefficient bank (ceil(64/10)).
const numCoefRegs = 7
