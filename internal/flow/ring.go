package flow

import (
	"context"

	"repro/internal/dsp"
	"repro/internal/telemetry"
)

// ring is the bounded single-producer/single-consumer chunk queue on one
// graph edge. All `depth` chunk buffers are allocated up front and recycle
// between the free list and the full queue for the life of the run, so the
// steady-state hot path allocates nothing: the producer acquires an empty
// buffer (blocking when the consumer is behind — that is the backpressure),
// fills it, and pushes; the consumer pops, reads, and recycles.
//
// Both channels have capacity `depth` and at most `depth` buffers exist, so
// a push or a recycle can never block — only acquire (producer side) and pop
// (consumer side) wait, and both give up when the run is cancelled. EOF is
// the producer closing `full` after its last push.
type ring struct {
	full chan dsp.Samples // filled chunks, in stream order
	free chan dsp.Samples // recycled empty buffers
	q    telemetry.QueueCounters
}

func newRing(depth, chunk int) *ring {
	r := &ring{
		full: make(chan dsp.Samples, depth),
		free: make(chan dsp.Samples, depth),
	}
	for i := 0; i < depth; i++ {
		r.free <- make(dsp.Samples, chunk)
	}
	return r
}

// acquire obtains an empty chunk buffer of length n, blocking while every
// buffer is queued downstream (backpressure). ok is false when the run was
// cancelled first.
func (r *ring) acquire(ctx context.Context, n int) (buf dsp.Samples, ok bool) {
	select {
	case buf = <-r.free:
		return buf[:n], true
	default:
	}
	r.q.ProducerStalls.Add(1)
	select {
	case buf = <-r.free:
		return buf[:n], true
	case <-ctx.Done():
		return nil, false
	}
}

// push queues a filled buffer previously obtained from acquire. It never
// blocks (see the type comment for why).
func (r *ring) push(buf dsp.Samples) {
	r.full <- buf
	r.q.NotePush(len(r.full))
}

// pop takes the next chunk in stream order, blocking while the queue is
// empty. eof reports that the producer closed the ring; ok is false when the
// run was cancelled first.
func (r *ring) pop(ctx context.Context) (buf dsp.Samples, ok, eof bool) {
	select {
	case buf, open := <-r.full:
		if !open {
			return nil, true, true
		}
		r.q.NotePop()
		return buf, true, false
	default:
	}
	r.q.ConsumerStalls.Add(1)
	select {
	case buf, open := <-r.full:
		if !open {
			return nil, true, true
		}
		r.q.NotePop()
		return buf, true, false
	case <-ctx.Done():
		return nil, false, false
	}
}

// recycle returns a popped buffer to the free list. It never blocks.
func (r *ring) recycle(buf dsp.Samples) {
	r.free <- buf[:cap(buf)]
}

// close marks end of stream. Only the producer calls it, exactly once.
func (r *ring) close() {
	close(r.full)
}
