package flow

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/dsp"
	"repro/internal/telemetry"
)

// PipelineOptions tunes the streaming pipeline scheduler. The zero value is
// ready to use.
type PipelineOptions struct {
	// Depth is the ring capacity of every edge in chunks (default 4,
	// minimum 1). Deeper rings absorb burstier stage timings at the cost of
	// memory and latency; depth 1 is full lock-step.
	Depth int
	// Workers caps how many blocks may execute Work simultaneously (0 = one
	// per block, uncapped). Every block still runs on its own goroutine and
	// chunks still flow through the rings in stream order, so the output is
	// bit-identical at any width — the cap only bounds CPU concurrency.
	Workers int
}

// EdgeStat reports one edge's ring telemetry after a pipelined run.
type EdgeStat struct {
	// From and To name the endpoints as "block:port".
	From, To string
	// Queue is the edge ring's counter snapshot. ProducerStalls are
	// backpressure events (downstream ran behind), ConsumerStalls are
	// starvation events (upstream ran behind).
	Queue telemetry.QueueSnapshot
}

// PipelineStats is the per-edge telemetry of one pipelined run.
type PipelineStats struct {
	Edges []EdgeStat
}

// TotalStalls sums producer- and consumer-side stalls across all edges.
func (s *PipelineStats) TotalStalls() (producer, consumer uint64) {
	for _, e := range s.Edges {
		producer += e.Queue.ProducerStalls
		consumer += e.Queue.ConsumerStalls
	}
	return producer, consumer
}

// pipeRun is the shared state of one pipelined execution.
type pipeRun struct {
	g     *Graph
	total int

	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{} // Workers cap; nil = uncapped

	// rings[ei] carries edge ei's chunks; inRing/outRings resolve them per
	// block from the validated plan.
	rings    []*ring
	inRing   [][]*ring
	outRings [][][]*ring

	wg      sync.WaitGroup
	errOnce sync.Once
	err     error
}

// fail records the first error and cancels the run.
func (r *pipeRun) fail(err error) {
	r.errOnce.Do(func() {
		r.err = err
		r.cancel()
	})
}

// RunPipelined executes the graph on the streaming pipeline runtime for
// totalSamples per source: one goroutine per block, bounded SPSC chunk rings
// on every edge, backpressure when a ring fills. The sink output is
// bit-for-bit identical to the synchronous Run. The returned stats carry
// every edge's occupancy and stall counters (also valid after an error).
func (g *Graph) RunPipelined(totalSamples int, opts PipelineOptions) (*PipelineStats, error) {
	return g.RunPipelinedContext(context.Background(), totalSamples, opts)
}

// RunPipelinedContext is RunPipelined with cancellation: when ctx is
// cancelled every stage unwinds promptly (mid-chunk work completes, blocked
// ring operations abort) and no goroutine outlives the call.
func (g *Graph) RunPipelinedContext(ctx context.Context, totalSamples int, opts PipelineOptions) (*PipelineStats, error) {
	if totalSamples <= 0 {
		return &PipelineStats{}, fmt.Errorf("flow: totalSamples must be positive")
	}
	p, err := g.ensurePlan()
	if err != nil {
		return &PipelineStats{}, err
	}
	depth := opts.Depth
	if depth <= 0 {
		depth = 4
	}
	r := &pipeRun{g: g, total: totalSamples}
	r.ctx, r.cancel = context.WithCancel(ctx)
	defer r.cancel()
	if opts.Workers > 0 {
		r.sem = make(chan struct{}, opts.Workers)
	}
	r.rings = make([]*ring, len(g.edges))
	for ei := range g.edges {
		r.rings[ei] = newRing(depth, g.chunk)
	}
	r.inRing = make([][]*ring, len(g.blocks))
	r.outRings = make([][][]*ring, len(g.blocks))
	for bi, b := range g.blocks {
		r.inRing[bi] = make([]*ring, b.Inputs())
		for pi := range r.inRing[bi] {
			r.inRing[bi][pi] = r.rings[p.inEdge[bi][pi]]
		}
		r.outRings[bi] = make([][]*ring, b.Outputs())
		for pi := range r.outRings[bi] {
			for _, ei := range p.outEdges[bi][pi] {
				r.outRings[bi][pi] = append(r.outRings[bi][pi], r.rings[ei])
			}
		}
	}

	r.wg.Add(len(g.blocks))
	for bi := range g.blocks {
		go r.stage(bi)
	}
	r.wg.Wait()

	stats := &PipelineStats{Edges: make([]EdgeStat, len(g.edges))}
	for ei, e := range g.edges {
		stats.Edges[ei] = EdgeStat{
			From:  fmt.Sprintf("%s:%d", g.blocks[e.from.block].Name(), e.from.idx),
			To:    fmt.Sprintf("%s:%d", g.blocks[e.to.block].Name(), e.to.idx),
			Queue: r.rings[ei].q.Snapshot(),
		}
	}
	if r.err != nil {
		return stats, r.err
	}
	if err := ctx.Err(); err != nil {
		return stats, err
	}
	return stats, nil
}

// closeOuts propagates EOF: the stage closes every ring it produces into.
func (r *pipeRun) closeOuts(bi int) {
	for _, fan := range r.outRings[bi] {
		for _, rg := range fan {
			rg.close()
		}
	}
}

// stage is the per-block goroutine: pop one chunk per input (or mint one,
// for sources), acquire one output buffer per outgoing edge, run Work,
// fan out, recycle, repeat until EOF, error, or cancellation.
func (r *pipeRun) stage(bi int) {
	defer r.wg.Done()
	b := r.g.blocks[bi]
	nIn, nOut := b.Inputs(), b.Outputs()
	ins := make([]dsp.Samples, nIn)
	outs := make([]dsp.Samples, nOut)
	// slots holds the acquired downstream buffers per output port; the first
	// subscriber's buffer doubles as the Work output, the rest receive
	// copies. An output port nobody reads still needs somewhere for the
	// block to write: a private scratch buffer.
	slots := make([][]dsp.Samples, nOut)
	var scratch []dsp.Samples
	for pi := range slots {
		slots[pi] = make([]dsp.Samples, len(r.outRings[bi][pi]))
		if len(slots[pi]) == 0 {
			if scratch == nil {
				scratch = make([]dsp.Samples, nOut)
			}
			scratch[pi] = make(dsp.Samples, r.g.chunk)
		}
	}

	remaining := r.total
	for {
		// Establish the chunk length n and gather inputs.
		var n int
		if nIn == 0 {
			if remaining == 0 {
				r.closeOuts(bi)
				return
			}
			n = r.g.chunk
			if remaining < n {
				n = remaining
			}
			remaining -= n
		} else {
			eofAt := -1
			for pi := 0; pi < nIn; pi++ {
				buf, ok, eof := r.inRing[bi][pi].pop(r.ctx)
				if !ok {
					return // cancelled
				}
				if eof {
					eofAt = pi
					break
				}
				ins[pi] = buf
			}
			if eofAt >= 0 {
				// All inputs must end on the same chunk: every stream in the
				// graph carries the same per-source sample budget. A port
				// that already delivered data, or that still holds more,
				// means the graph broke that invariant.
				if eofAt > 0 {
					r.fail(fmt.Errorf("flow: block %s: input %d outlives input %d", b.Name(), 0, eofAt))
					return
				}
				for pi := 1; pi < nIn; pi++ {
					if _, ok, eof := r.inRing[bi][pi].pop(r.ctx); !ok {
						return
					} else if !eof {
						r.fail(fmt.Errorf("flow: block %s: input %d outlives input %d", b.Name(), pi, eofAt))
						return
					}
				}
				r.closeOuts(bi)
				return
			}
			n = len(ins[0])
			for pi := 1; pi < nIn; pi++ {
				if len(ins[pi]) != n {
					r.fail(fmt.Errorf("flow: block %s: chunk length mismatch (%d vs %d)",
						b.Name(), len(ins[pi]), n))
					return
				}
			}
		}

		// Acquire one downstream buffer per outgoing edge; this is where
		// backpressure stalls the stage when a consumer runs behind.
		for pi := 0; pi < nOut; pi++ {
			if len(slots[pi]) == 0 {
				outs[pi] = scratch[pi][:n]
				continue
			}
			for j, rg := range r.outRings[bi][pi] {
				buf, ok := rg.acquire(r.ctx, n)
				if !ok {
					return // cancelled
				}
				slots[pi][j] = buf
			}
			outs[pi] = slots[pi][0]
		}

		// Execute, bounded by the worker cap when one is set.
		if r.sem != nil {
			select {
			case r.sem <- struct{}{}:
			case <-r.ctx.Done():
				return
			}
		}
		err := b.Work(ins, outs)
		if r.sem != nil {
			<-r.sem
		}
		if err != nil {
			r.fail(fmt.Errorf("flow: block %s: %w", b.Name(), err))
			return
		}

		// Fan out (extra subscribers get copies) and hand chunks downstream,
		// then recycle the consumed inputs upstream.
		for pi := 0; pi < nOut; pi++ {
			for j, rg := range r.outRings[bi][pi] {
				if j > 0 {
					copy(slots[pi][j], outs[pi])
				}
				rg.push(slots[pi][j])
			}
		}
		for pi := 0; pi < nIn; pi++ {
			r.inRing[bi][pi].recycle(ins[pi])
		}
	}
}
