package flow

import (
	"testing"

	"repro/internal/dsp"
)

// benchGraph is a three-stage allocation-free datapath (source → gain →
// probe): none of the blocks allocate in Work, so any alloc the benchmark
// reports is scheduler overhead.
func benchGraph(b testing.TB, chunk int) *Graph {
	b.Helper()
	g := NewGraph(chunk)
	src := g.Add(&VectorSource{Data: dsp.Samples{1, 2i, 3}, Repeat: true})
	gain := g.Add(Gain{G: complex(0.5, 0.5)})
	probe := g.Add(&Probe{})
	if err := g.Connect(src, 0, gain, 0); err != nil {
		b.Fatal(err)
	}
	if err := g.Connect(gain, 0, probe, 0); err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkSyncScheduler pins the synchronous scheduler's steady-state
// allocation count: after the first Run warms the cached plan, chunk loops
// must not allocate at all.
func BenchmarkSyncScheduler(b *testing.B) {
	const chunk, total = 4096, 4096 * 16
	g := benchGraph(b, chunk)
	if err := g.Run(total); err != nil { // warm the plan cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(total * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Run(total); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinedScheduler measures the pipelined scheduler's per-run
// cost. Unlike the sync path, each run necessarily allocates its ring set
// and goroutine stack bookkeeping — but that cost is per-Run, not
// per-chunk, so allocs/op must stay flat as the stream grows.
func BenchmarkPipelinedScheduler(b *testing.B) {
	const chunk, total = 4096, 4096 * 16
	g := benchGraph(b, chunk)
	b.ReportAllocs()
	b.SetBytes(int64(total * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.RunPipelined(total, PipelineOptions{Depth: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSyncSchedulerSteadyStateZeroAlloc is the hard pin behind
// BenchmarkSyncScheduler: with the plan cached, a full Run performs zero
// heap allocations.
func TestSyncSchedulerSteadyStateZeroAlloc(t *testing.T) {
	g := benchGraph(t, 1024)
	if err := g.Run(1024 * 8); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := g.Run(1024 * 8); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("sync scheduler steady state allocates: %v allocs/run, want 0", allocs)
	}
}

// TestPipelinedAllocsPerRunFlat pins that pipelined-run allocation is a
// function of the graph shape, not the stream length: a 16× longer stream
// must not allocate more, because chunks ride preallocated ring buffers.
func TestPipelinedAllocsPerRunFlat(t *testing.T) {
	const chunk = 512
	measure := func(total int) float64 {
		g := benchGraph(t, chunk)
		if _, err := g.RunPipelined(total, PipelineOptions{Depth: 2}); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := g.RunPipelined(total, PipelineOptions{Depth: 2}); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(chunk * 2)
	long := measure(chunk * 32)
	// Scheduling jitter moves a few allocations (goroutine stacks, timer
	// internals) between runs; the point is that 16× the chunks does not
	// mean 16× the allocations.
	if long > short*2+16 {
		t.Fatalf("pipelined allocs grow with stream length: %v for %d chunks vs %v for %d chunks",
			long, 32, short, 2)
	}
}
