package flow

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/host"
	"repro/internal/impair"
	"repro/internal/jammer"
	"repro/internal/trigger"
)

// The differential suite is the pipeline runtime's bit-exactness anchor:
// every seeded graph is built twice from identical seeds — once per
// scheduler — and the pipelined sink output must be ==-exact against the
// synchronous reference at every chunk size and worker width. Stateful
// blocks (noise RNGs, impairment oscillators, the jammer core) make any
// reordering, dropped chunk, or torn buffer visible immediately.

var (
	diffChunks  = []int{1, 63, 64, 4096}
	diffWorkers = []int{1, 2, 8}
)

// diffGraph is one seeded graph construction plus handles to its observable
// state: the sink stream and any probe taps.
type diffGraph struct {
	g      *Graph
	sinks  []*VectorSink
	probes []*Probe
}

// seededBurst builds a deterministic on/off bursty waveform from seed.
func seededBurst(n int, seed int64) dsp.Samples {
	rng := rand.New(rand.NewSource(seed))
	data := make(dsp.Samples, n)
	for i := 0; i < n; {
		gap := 100 + rng.Intn(400)
		burst := 200 + rng.Intn(600)
		amp := 0.2 + rng.Float64()*0.5
		for j := 0; j < gap && i < n; j, i = j+1, i+1 {
			data[i] = 0
		}
		for j := 0; j < burst && i < n; j, i = j+1, i+1 {
			data[i] = complex(amp*rng.NormFloat64()*0.3+amp, amp*rng.NormFloat64()*0.3)
		}
	}
	return data
}

// buildChainGraph is the paper's host datapath as a graph:
// source → +noise → impairments (front end) → core → sink, with a fan-out
// probe tap on the front end's output (two readers of one port).
func buildChainGraph(t *testing.T, chunk int, seed int64) *diffGraph {
	t.Helper()
	c := core.New()
	h := host.New(c)
	if _, err := h.ProgramCorrelatorFA(host.WiFiShortTemplate(), 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ProgramEnergy(10, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ProgramTrigger(core.FusionAny,
		[]trigger.Event{trigger.EventXCorr, trigger.EventEnergyHigh}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ProgramJammer(host.Personality{
		Waveform: jammer.WaveformWGN, Uptime: 10e3, Gain: 1,
	}); err != nil {
		t.Fatal(err)
	}

	g := NewGraph(chunk)
	src := g.Add(&VectorSource{Label: "air", Data: seededBurst(6000, seed), Repeat: true})
	noise := g.Add(&NoiseSourceBlock{Src: dsp.NewNoiseSource(1e-4, seed+1)})
	add := g.Add(Adder{})
	front := g.Add(ImpairBlock{Chain: impair.New(impair.TypicalUSRP(2.484e9, 25e6, seed+2))})
	probe := &Probe{Label: "rx-tap"}
	pb := g.Add(probe)
	jam := g.Add(CoreBlock{Core: c})
	sink := &VectorSink{}
	sk := g.Add(sink)
	for _, w := range []struct{ s, sp, d, dp int }{
		{src, 0, add, 0}, {noise, 0, add, 1}, {add, 0, front, 0},
		{front, 0, pb, 0}, {front, 0, jam, 0}, {jam, 0, sk, 0},
	} {
		if err := g.Connect(w.s, w.sp, w.d, w.dp); err != nil {
			t.Fatal(err)
		}
	}
	return &diffGraph{g: g, sinks: []*VectorSink{sink}, probes: []*Probe{probe}}
}

// buildFanGraph stresses topology: two sources into an adder, the adder
// fanning out to a gain chain, a FIR branch, and a probe, with two sinks.
func buildFanGraph(t *testing.T, chunk int, seed int64) *diffGraph {
	t.Helper()
	g := NewGraph(chunk)
	a := g.Add(&VectorSource{Label: "a", Data: seededBurst(3000, seed), Repeat: true})
	b := g.Add(&NoiseSourceBlock{Src: dsp.NewNoiseSource(0.01, seed+3)})
	add := g.Add(Adder{})
	gain := g.Add(Gain{G: complex(0.5, 0.25)})
	fir := g.Add(&FIRBlock{Filter: dsp.NewFIR(dsp.LowpassTaps(9, 0.2))})
	probe := &Probe{}
	pb := g.Add(probe)
	s1, s2 := &VectorSink{Label: "gain-sink"}, &VectorSink{Label: "fir-sink"}
	k1 := g.Add(s1)
	k2 := g.Add(s2)
	for _, w := range []struct{ s, sp, d, dp int }{
		{a, 0, add, 0}, {b, 0, add, 1},
		{add, 0, gain, 0}, {add, 0, fir, 0}, {add, 0, pb, 0},
		{gain, 0, k1, 0}, {fir, 0, k2, 0},
	} {
		if err := g.Connect(w.s, w.sp, w.d, w.dp); err != nil {
			t.Fatal(err)
		}
	}
	return &diffGraph{g: g, sinks: []*VectorSink{s1, s2}, probes: []*Probe{probe}}
}

// diffCompare runs the same seeded construction through both schedulers and
// requires ==-exact sink streams and probe state.
func diffCompare(t *testing.T, name string, total int,
	build func(t *testing.T, chunk int, seed int64) *diffGraph) {
	t.Helper()
	const seed = 42
	for _, chunk := range diffChunks {
		ref := build(t, chunk, seed)
		if err := ref.g.Run(total); err != nil {
			t.Fatalf("%s chunk %d: sync run: %v", name, chunk, err)
		}
		for _, workers := range diffWorkers {
			pip := build(t, chunk, seed)
			stats, err := pip.g.RunPipelined(total, PipelineOptions{Workers: workers})
			if err != nil {
				t.Fatalf("%s chunk %d workers %d: pipelined run: %v", name, chunk, workers, err)
			}
			label := fmt.Sprintf("%s chunk %d workers %d", name, chunk, workers)
			for si := range ref.sinks {
				r, p := ref.sinks[si].Data, pip.sinks[si].Data
				if len(r) != total || len(p) != total {
					t.Fatalf("%s: sink %d lengths sync %d / pipelined %d, want %d",
						label, si, len(r), len(p), total)
				}
				for i := range r {
					if r[i] != p[i] {
						t.Fatalf("%s: sink %d sample %d: sync %v, pipelined %v",
							label, si, i, r[i], p[i])
					}
				}
			}
			for pi := range ref.probes {
				r, p := ref.probes[pi], pip.probes[pi]
				if r.Samples != p.Samples || r.Energy != p.Energy || r.Peak != p.Peak {
					t.Fatalf("%s: probe %d diverges: sync {%d %v %v}, pipelined {%d %v %v}",
						label, pi, r.Samples, r.Energy, r.Peak, p.Samples, p.Energy, p.Peak)
				}
			}
			// Conservation: every edge's ring must have passed exactly
			// ceil(total/chunk) chunks, all popped.
			wantChunks := uint64((total + chunk - 1) / chunk)
			for _, e := range stats.Edges {
				if e.Queue.Pushes != wantChunks || e.Queue.Pops != wantChunks {
					t.Fatalf("%s: edge %s→%s carried %d/%d chunks, want %d",
						label, e.From, e.To, e.Queue.Pushes, e.Queue.Pops, wantChunks)
				}
			}
		}
	}
}

func TestPipelineMatchesSyncDatapathGraph(t *testing.T) {
	total := 12000
	if testing.Short() {
		total = 3000
	}
	diffCompare(t, "datapath", total, buildChainGraph)
}

func TestPipelineMatchesSyncFanGraph(t *testing.T) {
	diffCompare(t, "fan", 10000, buildFanGraph)
}

// TestPipelineMatchesSyncAcrossDepths pins that ring depth is invisible to
// the output: depth changes scheduling, never data.
func TestPipelineMatchesSyncAcrossDepths(t *testing.T) {
	const total = 5000
	ref := buildChainGraph(t, 256, 7)
	if err := ref.g.Run(total); err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{1, 2, 16} {
		pip := buildChainGraph(t, 256, 7)
		if _, err := pip.g.RunPipelined(total, PipelineOptions{Depth: depth}); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		for i := range ref.sinks[0].Data {
			if ref.sinks[0].Data[i] != pip.sinks[0].Data[i] {
				t.Fatalf("depth %d: sample %d diverges", depth, i)
			}
		}
	}
}

// TestPipelineRadioBlockMatchesSync runs the full modeled N210 (gains folded
// into the fused quantize sweep) as a pipeline stage and compares schedulers.
func TestPipelineRadioBlockMatchesSync(t *testing.T) {
	build := func(t *testing.T, chunk int, seed int64) *diffGraph {
		t.Helper()
		mk := func() *diffGraph {
			r := radioForTest(t)
			g := NewGraph(chunk)
			src := g.Add(&VectorSource{Data: seededBurst(4000, seed), Repeat: true})
			rb := g.Add(RadioBlock{Radio: r})
			sink := &VectorSink{}
			sk := g.Add(sink)
			if err := g.Connect(src, 0, rb, 0); err != nil {
				t.Fatal(err)
			}
			if err := g.Connect(rb, 0, sk, 0); err != nil {
				t.Fatal(err)
			}
			return &diffGraph{g: g, sinks: []*VectorSink{sink}}
		}
		return mk()
	}
	diffCompare(t, "radio", 8000, build)
}
