package flow

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/dsp"
	"repro/internal/host"
	"repro/internal/radio"
)

// radioForTest builds a started N210 with the short-preamble correlator and
// energy detector programmed, at the native rate (no DDC).
func radioForTest(t *testing.T) *radio.N210 {
	t.Helper()
	r := radio.New()
	h := host.New(r.Core())
	if _, err := h.ProgramCorrelator(host.WiFiShortTemplate(), 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ProgramEnergy(10, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRXGain(3); err != nil {
		t.Fatal(err)
	}
	r.Start()
	return r
}

// leakCheck snapshots the goroutine count and returns an assertion that the
// pipeline left none behind. Shutdown is asynchronous only up to stage
// unwind, so the check retries briefly before failing.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			runtime.Gosched()
			time.Sleep(time.Millisecond)
		}
	}
}

// errorAfter fails its Work call once `after` chunks have passed through.
type errorAfter struct {
	after int
	seen  int
}

func (errorAfter) Name() string { return "error-after" }
func (errorAfter) Inputs() int  { return 1 }
func (errorAfter) Outputs() int { return 1 }
func (e *errorAfter) Work(in, out []dsp.Samples) error {
	if e.seen >= e.after {
		return errors.New("injected mid-stream failure")
	}
	e.seen++
	copy(out[0], in[0])
	return nil
}

// slowSink delays every chunk, making every upstream ring back up.
type slowSink struct {
	delay time.Duration
	got   int
}

func (slowSink) Name() string { return "slow-sink" }
func (slowSink) Inputs() int  { return 1 }
func (slowSink) Outputs() int { return 0 }
func (s *slowSink) Work(in, _ []dsp.Samples) error {
	time.Sleep(s.delay)
	s.got += len(in[0])
	return nil
}

// signalFirst closes its channel on the first chunk, proving the stream is
// live before the test cancels it.
type signalFirst struct {
	started chan struct{}
	fired   bool
}

func (signalFirst) Name() string { return "signal-first" }
func (signalFirst) Inputs() int  { return 1 }
func (signalFirst) Outputs() int { return 0 }
func (b *signalFirst) Work(in, _ []dsp.Samples) error {
	if !b.fired {
		b.fired = true
		close(b.started)
	}
	return nil
}

func TestPipelineMidStreamErrorPropagates(t *testing.T) {
	check := leakCheck(t)
	g := NewGraph(64)
	src := g.Add(&NoiseSourceBlock{Src: dsp.NewNoiseSource(1, 1)})
	bad := g.Add(&errorAfter{after: 3})
	sink := g.Add(&VectorSink{})
	if err := g.Connect(src, 0, bad, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(bad, 0, sink, 0); err != nil {
		t.Fatal(err)
	}
	// Far more samples than the failure point: upstream must be unwound
	// mid-stream, not run to completion.
	_, err := g.RunPipelined(1<<20, PipelineOptions{Depth: 2})
	if err == nil || !strings.Contains(err.Error(), "error-after") ||
		!strings.Contains(err.Error(), "injected mid-stream failure") {
		t.Fatalf("want wrapped block error, got %v", err)
	}
	check()
}

func TestPipelineSyncSchedulerSameError(t *testing.T) {
	g := NewGraph(64)
	src := g.Add(&NoiseSourceBlock{Src: dsp.NewNoiseSource(1, 1)})
	bad := g.Add(&errorAfter{after: 0})
	sink := g.Add(&VectorSink{})
	_ = g.Connect(src, 0, bad, 0)
	_ = g.Connect(bad, 0, sink, 0)
	err := g.Run(256)
	if err == nil || !strings.Contains(err.Error(), "error-after") {
		t.Fatalf("sync scheduler: want wrapped block error, got %v", err)
	}
}

func TestPipelineEarlyCancel(t *testing.T) {
	check := leakCheck(t)
	g := NewGraph(16)
	src := g.Add(&NoiseSourceBlock{Src: dsp.NewNoiseSource(1, 1)})
	blocked := &signalFirst{started: make(chan struct{})}
	sink := g.Add(blocked)
	if err := g.Connect(src, 0, sink, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-blocked.started // the pipeline is demonstrably mid-stream
		cancel()
	}()
	_, err := g.RunPipelinedContext(ctx, 1<<30, PipelineOptions{Depth: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	check()
}

func TestPipelineSlowSinkBackpressure(t *testing.T) {
	check := leakCheck(t)
	g := NewGraph(256)
	src := g.Add(&NoiseSourceBlock{Src: dsp.NewNoiseSource(1, 9)})
	gain := g.Add(Gain{G: 2})
	slow := &slowSink{delay: 500 * time.Microsecond}
	sk := g.Add(slow)
	if err := g.Connect(src, 0, gain, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(gain, 0, sk, 0); err != nil {
		t.Fatal(err)
	}
	const total = 256 * 40
	stats, err := g.RunPipelined(total, PipelineOptions{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if slow.got != total {
		t.Fatalf("sink got %d samples, want %d", slow.got, total)
	}
	// The fast producer side must have hit the full ring and stalled; the
	// ring may never exceed its depth.
	producer, _ := stats.TotalStalls()
	if producer == 0 {
		t.Fatalf("no producer stalls recorded against a slow sink: %+v", stats.Edges)
	}
	for _, e := range stats.Edges {
		if e.Queue.OccupancyHW > 2 {
			t.Fatalf("edge %s→%s occupancy high-water %d exceeds depth 2",
				e.From, e.To, e.Queue.OccupancyHW)
		}
	}
	check()
}

// TestPipelineRepeatedRunsReuseGraph pins that one Graph can run many times
// (plan and ring wiring are rebuilt or reused correctly) and that a
// completed run leaves no goroutines regardless of outcome.
func TestPipelineRepeatedRunsReuseGraph(t *testing.T) {
	check := leakCheck(t)
	g := NewGraph(32)
	src := g.Add(&VectorSource{Data: dsp.Samples{1, 2}, Repeat: true})
	sink := &VectorSink{}
	sk := g.Add(sink)
	if err := g.Connect(src, 0, sk, 0); err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		sink.Data = sink.Data[:0]
		if _, err := g.RunPipelined(100, PipelineOptions{}); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if len(sink.Data) != 100 {
			t.Fatalf("run %d: sink has %d samples", run, len(sink.Data))
		}
	}
	check()
}

// TestPipelineManyShutdownPaths hammers start/cancel timing to catch
// shutdown races: each iteration cancels at a slightly different point in
// the stream. Run under -race this is the shutdown-protocol proof.
func TestPipelineManyShutdownPaths(t *testing.T) {
	check := leakCheck(t)
	for i := 0; i < 30; i++ {
		g := NewGraph(8)
		src := g.Add(&NoiseSourceBlock{Src: dsp.NewNoiseSource(1, int64(i))})
		gain := g.Add(Gain{G: complex(0, 1)})
		sink := g.Add(&VectorSink{})
		_ = g.Connect(src, 0, gain, 0)
		_ = g.Connect(gain, 0, sink, 0)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, err := g.RunPipelinedContext(ctx, 1<<20, PipelineOptions{Depth: 1, Workers: i%3 + 1})
			if err == nil {
				t.Errorf("iteration %d: cancelled run returned nil error", i)
			}
		}()
		if i%2 == 0 {
			runtime.Gosched()
		}
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("iteration %d: pipeline did not unwind after cancel", i)
		}
	}
	check()
}

// TestPipelineStatsEdges verifies the stats naming and chunk accounting on a
// clean run.
func TestPipelineStatsEdges(t *testing.T) {
	g := NewGraph(10)
	src := g.Add(&VectorSource{Label: "s", Data: dsp.Samples{1}, Repeat: true})
	sink := g.Add(&VectorSink{Label: "k"})
	if err := g.Connect(src, 0, sink, 0); err != nil {
		t.Fatal(err)
	}
	stats, err := g.RunPipelined(25, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Edges) != 1 {
		t.Fatalf("want 1 edge stat, got %d", len(stats.Edges))
	}
	e := stats.Edges[0]
	if e.From != "s:0" || e.To != "k:0" {
		t.Fatalf("edge named %s→%s", e.From, e.To)
	}
	if e.Queue.Pushes != 3 || e.Queue.Pops != 3 { // chunks: 10+10+5
		t.Fatalf("edge carried %d/%d chunks, want 3/3", e.Queue.Pushes, e.Queue.Pops)
	}
}

// errorSourceGraph exercises the error path from a source block (no inputs).
func TestPipelineSourceError(t *testing.T) {
	check := leakCheck(t)
	g := NewGraph(16)
	src := g.Add(&NoiseSourceBlock{}) // unconfigured: Work errors
	sink := g.Add(&VectorSink{})
	if err := g.Connect(src, 0, sink, 0); err != nil {
		t.Fatal(err)
	}
	_, err := g.RunPipelined(1024, PipelineOptions{})
	if err == nil || !strings.Contains(err.Error(), "noise source not configured") {
		t.Fatalf("want source error, got %v", err)
	}
	check()
}

func TestPipelineWorkerWidthsZeroAndLarge(t *testing.T) {
	for _, workers := range []int{0, 1, 64} {
		g := NewGraph(32)
		src := g.Add(&VectorSource{Data: dsp.Samples{3}, Repeat: true})
		sink := &VectorSink{}
		sk := g.Add(sink)
		if err := g.Connect(src, 0, sk, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := g.RunPipelined(64, PipelineOptions{Workers: workers}); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if len(sink.Data) != 64 {
			t.Fatalf("workers %d: got %d samples", workers, len(sink.Data))
		}
		for i, v := range sink.Data {
			if v != 3 {
				t.Fatalf("workers %d: sample %d = %v", workers, i, v)
			}
		}
	}
}
