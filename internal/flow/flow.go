// Package flow is a GNU-Radio-style flowgraph engine for the host-side
// applications of §2.5: the paper's control backend is a GNU Radio Companion
// flowgraph, and this package provides the same composition model in Go —
// blocks with typed sample ports, connected into a directed acyclic graph
// and executed in streaming chunks.
//
// Blocks process complex baseband in fixed-size work calls over buffers the
// runtime owns and reuses, so a steady-state run allocates nothing. Two
// schedulers execute the same graph:
//
//   - Graph.Run is the synchronous reference: one goroutine walks the blocks
//     in topological order, chunk by chunk, over preallocated per-edge
//     buffers. It is the bit-exactness anchor, the same role
//     xcorr.Reference plays for the popcount kernel.
//   - Graph.RunPipelined is the streaming pipeline runtime: one goroutine
//     per block, bounded single-producer/single-consumer ring buffers of
//     sample chunks on every edge, backpressure when a downstream ring is
//     full, and clean EOF/error/cancellation propagation. Its sink output is
//     bit-for-bit identical to Run at every chunk size and worker width —
//     the differential suite asserts exactly that.
package flow

import (
	"fmt"
	"sort"

	"repro/internal/dsp"
)

// Block is one processing stage. Work consumes one chunk per input port and
// produces one chunk per output port, all of the same length (the scheduling
// quantum, or the shorter final chunk of a run).
type Block interface {
	// Name identifies the block instance in errors and listings.
	Name() string
	// Inputs and Outputs give the port counts.
	Inputs() int
	Outputs() int
	// Work processes one chunk. in has Inputs() buffers and out has
	// Outputs() buffers, all of equal length n ≥ 1; the runtime owns every
	// buffer and reuses it across calls. Blocks must treat in as read-only
	// (several readers may share one upstream buffer) and must fully
	// overwrite each out buffer — out contents are whatever the previous
	// chunk left there. A block with no inputs is a source and derives n
	// from len(out[0]); a block with no outputs is a sink.
	Work(in, out []dsp.Samples) error
}

// port addresses one endpoint of a connection.
type port struct {
	block int
	idx   int
}

// edge is a directed connection between two ports.
type edge struct {
	from, to port
}

// Graph is a flowgraph under construction and execution. The zero value is
// an empty graph ready for Add/Connect.
type Graph struct {
	blocks []Block
	edges  []edge
	// chunk is the scheduling quantum in samples.
	chunk int
	// plan caches the validated wiring and the synchronous scheduler's
	// buffers; Add and Connect invalidate it.
	plan *plan
}

// NewGraph returns an empty graph with the given chunk size (samples per
// work call; 4096 when ≤0).
func NewGraph(chunk int) *Graph {
	if chunk <= 0 {
		chunk = 4096
	}
	return &Graph{chunk: chunk}
}

// ChunkSize returns the scheduling quantum in samples.
func (g *Graph) ChunkSize() int { return g.chunk }

// Add registers a block and returns its handle (index).
func (g *Graph) Add(b Block) int {
	g.blocks = append(g.blocks, b)
	g.plan = nil
	return len(g.blocks) - 1
}

// Connect wires output port srcPort of block src into input port dstPort
// of block dst. One output may feed any number of inputs; each input is fed
// by exactly one output.
func (g *Graph) Connect(src, srcPort, dst, dstPort int) error {
	if src < 0 || src >= len(g.blocks) || dst < 0 || dst >= len(g.blocks) {
		return fmt.Errorf("flow: connect references unknown block (%d→%d)", src, dst)
	}
	if srcPort < 0 || srcPort >= g.blocks[src].Outputs() {
		return fmt.Errorf("flow: %s has no output port %d", g.blocks[src].Name(), srcPort)
	}
	if dstPort < 0 || dstPort >= g.blocks[dst].Inputs() {
		return fmt.Errorf("flow: %s has no input port %d", g.blocks[dst].Name(), dstPort)
	}
	for _, e := range g.edges {
		if e.to == (port{dst, dstPort}) {
			return fmt.Errorf("flow: input %s:%d already connected", g.blocks[dst].Name(), dstPort)
		}
	}
	g.edges = append(g.edges, edge{port{src, srcPort}, port{dst, dstPort}})
	g.plan = nil
	return nil
}

// plan is the validated, precomputed wiring of a graph: the topological
// order, one shared buffer per (block, output port), and for every block the
// resolved input/output buffer lists — so the synchronous scheduler's chunk
// loop touches no maps, scans no edge lists, and allocates nothing.
type plan struct {
	order []int
	// inEdge[b][p] is the index of the edge feeding block b's input p.
	inEdge [][]int
	// outEdges[b][p] lists the edges leaving block b's output p, in
	// connection order.
	outEdges [][][]int

	// Synchronous-scheduler workspaces: bufs has one full-chunk buffer per
	// (block, output port); ins and outs are the per-block Work arguments,
	// re-sliced to the chunk length by setLen. Edges sharing a source port
	// share the source's buffer.
	bufs  []dsp.Samples
	ins   [][]dsp.Samples
	outs  [][]dsp.Samples
	lastN int
}

// validate checks that every input port is fed and the graph is acyclic,
// returning the precomputed wiring (without scheduler workspaces).
func (g *Graph) validate() (*plan, error) {
	nb := len(g.blocks)
	indeg := make([]int, nb)
	adj := make([][]int, nb)
	p := &plan{
		inEdge:   make([][]int, nb),
		outEdges: make([][][]int, nb),
	}
	for bi, b := range g.blocks {
		p.inEdge[bi] = make([]int, b.Inputs())
		for i := range p.inEdge[bi] {
			p.inEdge[bi][i] = -1
		}
		p.outEdges[bi] = make([][]int, b.Outputs())
	}
	for ei, e := range g.edges {
		adj[e.from.block] = append(adj[e.from.block], e.to.block)
		indeg[e.to.block]++
		p.inEdge[e.to.block][e.to.idx] = ei
		p.outEdges[e.from.block][e.from.idx] = append(p.outEdges[e.from.block][e.from.idx], ei)
	}
	for bi, b := range g.blocks {
		for pi := 0; pi < b.Inputs(); pi++ {
			if p.inEdge[bi][pi] < 0 {
				return nil, fmt.Errorf("flow: input %s:%d unconnected", b.Name(), pi)
			}
		}
	}
	// Kahn's algorithm; deterministic order via sorted ready set.
	ready := []int{}
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		sort.Ints(ready)
		n := ready[0]
		ready = ready[1:]
		p.order = append(p.order, n)
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
	}
	if len(p.order) != nb {
		return nil, fmt.Errorf("flow: graph has a cycle")
	}
	return p, nil
}

// ensurePlan validates the graph (or reuses the cached plan) and equips it
// with the synchronous scheduler's buffers.
func (g *Graph) ensurePlan() (*plan, error) {
	if g.plan != nil {
		return g.plan, nil
	}
	p, err := g.validate()
	if err != nil {
		return nil, err
	}
	// One buffer per (block, output port); bufID[b][p] indexes bufs.
	bufID := make([][]int, len(g.blocks))
	for bi, b := range g.blocks {
		bufID[bi] = make([]int, b.Outputs())
		for pi := range bufID[bi] {
			bufID[bi][pi] = len(p.bufs)
			p.bufs = append(p.bufs, make(dsp.Samples, g.chunk))
		}
	}
	p.ins = make([][]dsp.Samples, len(g.blocks))
	p.outs = make([][]dsp.Samples, len(g.blocks))
	for bi, b := range g.blocks {
		p.ins[bi] = make([]dsp.Samples, b.Inputs())
		p.outs[bi] = make([]dsp.Samples, b.Outputs())
	}
	p.setLen(g, g.chunk)
	g.plan = p
	return p, nil
}

// setLen re-slices every block's input and output buffers to chunk length n.
// It is a no-op when n matches the previous chunk, so within a run it runs
// twice: once up front and once for the shorter final chunk (if any).
func (p *plan) setLen(g *Graph, n int) {
	if n == p.lastN {
		return
	}
	bufAt := 0
	for bi, b := range g.blocks {
		for pi := 0; pi < b.Outputs(); pi++ {
			p.outs[bi][pi] = p.bufs[bufAt][:n]
			bufAt++
		}
	}
	for bi, b := range g.blocks {
		for pi := 0; pi < b.Inputs(); pi++ {
			e := g.edges[p.inEdge[bi][pi]]
			p.ins[bi][pi] = p.outs[e.from.block][e.from.idx]
		}
	}
	p.lastN = n
}

// Run executes the graph synchronously for totalSamples per source, in
// chunks: the retained reference scheduler. It stops early with an error
// from any block. Steady state allocates nothing — the wiring and buffers
// are computed once per graph and reused across chunks and runs.
func (g *Graph) Run(totalSamples int) error {
	if totalSamples <= 0 {
		return fmt.Errorf("flow: totalSamples must be positive")
	}
	p, err := g.ensurePlan()
	if err != nil {
		return err
	}
	for produced := 0; produced < totalSamples; {
		n := g.chunk
		if rem := totalSamples - produced; rem < n {
			n = rem
		}
		p.setLen(g, n)
		for _, bi := range p.order {
			b := g.blocks[bi]
			if err := b.Work(p.ins[bi], p.outs[bi]); err != nil {
				return fmt.Errorf("flow: block %s: %w", b.Name(), err)
			}
		}
		produced += n
	}
	return nil
}
