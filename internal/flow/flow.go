// Package flow is a minimal GNU-Radio-style flowgraph engine for the
// host-side applications of §2.5: the paper's control backend is a GNU
// Radio Companion flowgraph, and this package provides the same
// composition model in Go — blocks with typed sample ports, connected
// into a directed acyclic graph and executed in streaming chunks.
//
// Blocks process complex baseband in fixed-size work calls. The graph
// schedules them in topological order, so a jammer host application is
// literally [source] → [impairments] → [jammer core] → [sink], and test
// benches can tap any edge with probes.
package flow

import (
	"fmt"
	"sort"

	"repro/internal/dsp"
)

// Block is one processing stage. Work consumes one chunk per input port
// and produces one chunk per output port; a block with no inputs is a
// source and is asked to produce chunkSize samples, and a block with no
// outputs is a sink.
type Block interface {
	// Name identifies the block instance in errors and listings.
	Name() string
	// Inputs and Outputs give the port counts.
	Inputs() int
	Outputs() int
	// Work processes one chunk. in has Inputs() buffers of equal length
	// (chunkSize for sources' callers); the returned slice must have
	// Outputs() buffers.
	Work(in []dsp.Samples) ([]dsp.Samples, error)
}

// port addresses one endpoint of a connection.
type port struct {
	block int
	idx   int
}

// edge is a directed connection between two ports.
type edge struct {
	from, to port
}

// Graph is a flowgraph under construction and execution. The zero value is
// an empty graph ready for Add/Connect.
type Graph struct {
	blocks []Block
	edges  []edge
	// chunk is the scheduling quantum in samples.
	chunk int
}

// NewGraph returns an empty graph with the given chunk size (samples per
// work call; 4096 when ≤0).
func NewGraph(chunk int) *Graph {
	if chunk <= 0 {
		chunk = 4096
	}
	return &Graph{chunk: chunk}
}

// Add registers a block and returns its handle (index).
func (g *Graph) Add(b Block) int {
	g.blocks = append(g.blocks, b)
	return len(g.blocks) - 1
}

// Connect wires output port srcPort of block src into input port dstPort
// of block dst.
func (g *Graph) Connect(src, srcPort, dst, dstPort int) error {
	if src < 0 || src >= len(g.blocks) || dst < 0 || dst >= len(g.blocks) {
		return fmt.Errorf("flow: connect references unknown block (%d→%d)", src, dst)
	}
	if srcPort < 0 || srcPort >= g.blocks[src].Outputs() {
		return fmt.Errorf("flow: %s has no output port %d", g.blocks[src].Name(), srcPort)
	}
	if dstPort < 0 || dstPort >= g.blocks[dst].Inputs() {
		return fmt.Errorf("flow: %s has no input port %d", g.blocks[dst].Name(), dstPort)
	}
	for _, e := range g.edges {
		if e.to == (port{dst, dstPort}) {
			return fmt.Errorf("flow: input %s:%d already connected", g.blocks[dst].Name(), dstPort)
		}
	}
	g.edges = append(g.edges, edge{port{src, srcPort}, port{dst, dstPort}})
	return nil
}

// validate checks that every input port is fed and the graph is acyclic,
// returning a topological order.
func (g *Graph) validate() ([]int, error) {
	indeg := make([]int, len(g.blocks))
	adj := make([][]int, len(g.blocks))
	fed := make(map[port]bool)
	for _, e := range g.edges {
		adj[e.from.block] = append(adj[e.from.block], e.to.block)
		indeg[e.to.block]++
		fed[e.to] = true
	}
	for bi, b := range g.blocks {
		for p := 0; p < b.Inputs(); p++ {
			if !fed[port{bi, p}] {
				return nil, fmt.Errorf("flow: input %s:%d unconnected", b.Name(), p)
			}
		}
	}
	// Kahn's algorithm; deterministic order via sorted ready set.
	var order []int
	ready := []int{}
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		sort.Ints(ready)
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
	}
	if len(order) != len(g.blocks) {
		return nil, fmt.Errorf("flow: graph has a cycle")
	}
	return order, nil
}

// Run executes the graph for totalSamples per source, in chunks. It stops
// early with an error from any block.
func (g *Graph) Run(totalSamples int) error {
	if totalSamples <= 0 {
		return fmt.Errorf("flow: totalSamples must be positive")
	}
	order, err := g.validate()
	if err != nil {
		return err
	}
	produced := 0
	for produced < totalSamples {
		n := min(g.chunk, totalSamples-produced)
		// Buffers per (block, output port) for this chunk.
		outputs := make(map[port]dsp.Samples)
		for _, bi := range order {
			b := g.blocks[bi]
			in := make([]dsp.Samples, b.Inputs())
			for p := 0; p < b.Inputs(); p++ {
				for _, e := range g.edges {
					if e.to == (port{bi, p}) {
						in[p] = outputs[e.from]
					}
				}
				if in[p] == nil {
					in[p] = make(dsp.Samples, n)
				}
			}
			// Sources get an empty input slice but must know the chunk
			// size; pass it via a single zero-length-convention: sources
			// receive a nil slice and use ChunkHint.
			if b.Inputs() == 0 {
				if h, ok := b.(chunkHinter); ok {
					h.ChunkHint(n)
				}
			}
			out, err := b.Work(in)
			if err != nil {
				return fmt.Errorf("flow: block %s: %w", b.Name(), err)
			}
			if len(out) != b.Outputs() {
				return fmt.Errorf("flow: block %s produced %d buffers, declared %d",
					b.Name(), len(out), b.Outputs())
			}
			for p, buf := range out {
				outputs[port{bi, p}] = buf
			}
		}
		produced += n
	}
	return nil
}

// chunkHinter lets sources learn the requested chunk size.
type chunkHinter interface{ ChunkHint(n int) }
