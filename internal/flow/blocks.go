package flow

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/impair"
	"repro/internal/radio"
)

// Standard blocks for host-side flowgraphs. Every Work implementation
// writes into the runtime-owned output buffers, so all of them are
// allocation-free in steady state (VectorSink's append is the one amortized
// exception — it retains the stream).

// VectorSource replays a fixed buffer, cycling when it runs out (like GNU
// Radio's vector_source with repeat=true) or padding zeros when repeat is
// off.
type VectorSource struct {
	Label  string
	Data   dsp.Samples
	Repeat bool
	pos    int
}

// Name implements Block.
func (v *VectorSource) Name() string {
	if v.Label != "" {
		return v.Label
	}
	return "vector-source"
}

// Inputs implements Block.
func (v *VectorSource) Inputs() int { return 0 }

// Outputs implements Block.
func (v *VectorSource) Outputs() int { return 1 }

// Work implements Block.
func (v *VectorSource) Work(_, out []dsp.Samples) error {
	dst := out[0]
	for i := range dst {
		if v.pos >= len(v.Data) {
			if !v.Repeat || len(v.Data) == 0 {
				for ; i < len(dst); i++ {
					dst[i] = 0
				}
				return nil
			}
			v.pos = 0
		}
		dst[i] = v.Data[v.pos]
		v.pos++
	}
	return nil
}

// NoiseSourceBlock emits WGN at a fixed power.
type NoiseSourceBlock struct {
	Label string
	Src   *dsp.NoiseSource
}

// Name implements Block.
func (n *NoiseSourceBlock) Name() string {
	if n.Label != "" {
		return n.Label
	}
	return "noise-source"
}

// Inputs implements Block.
func (n *NoiseSourceBlock) Inputs() int { return 0 }

// Outputs implements Block.
func (n *NoiseSourceBlock) Outputs() int { return 1 }

// Work implements Block.
func (n *NoiseSourceBlock) Work(_, out []dsp.Samples) error {
	if n.Src == nil {
		return fmt.Errorf("noise source not configured")
	}
	n.Src.Fill(out[0])
	return nil
}

// Adder sums its two inputs.
type Adder struct{}

// Name implements Block.
func (Adder) Name() string { return "add" }

// Inputs implements Block.
func (Adder) Inputs() int { return 2 }

// Outputs implements Block.
func (Adder) Outputs() int { return 1 }

// Work implements Block.
func (Adder) Work(in, out []dsp.Samples) error {
	a, b, dst := in[0], in[1], out[0]
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
	return nil
}

// Gain scales its input by a constant.
type Gain struct {
	G complex128
}

// Name implements Block.
func (Gain) Name() string { return "gain" }

// Inputs implements Block.
func (Gain) Inputs() int { return 1 }

// Outputs implements Block.
func (Gain) Outputs() int { return 1 }

// Work implements Block.
func (g Gain) Work(in, out []dsp.Samples) error {
	src, dst := in[0], out[0]
	for i := range dst {
		dst[i] = src[i] * g.G
	}
	return nil
}

// FIRBlock wraps a streaming dsp.FIR.
type FIRBlock struct {
	Label  string
	Filter *dsp.FIR
}

// Name implements Block.
func (f *FIRBlock) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "fir"
}

// Inputs implements Block.
func (f *FIRBlock) Inputs() int { return 1 }

// Outputs implements Block.
func (f *FIRBlock) Outputs() int { return 1 }

// Work implements Block.
func (f *FIRBlock) Work(in, out []dsp.Samples) error {
	if f.Filter == nil {
		return fmt.Errorf("FIR not configured")
	}
	f.Filter.FilterInto(out[0], in[0])
	return nil
}

// ImpairBlock wraps an impair.Chain front-end model.
type ImpairBlock struct {
	Chain *impair.Chain
}

// Name implements Block.
func (ImpairBlock) Name() string { return "impairments" }

// Inputs implements Block.
func (ImpairBlock) Inputs() int { return 1 }

// Outputs implements Block.
func (ImpairBlock) Outputs() int { return 1 }

// Work implements Block.
func (b ImpairBlock) Work(in, out []dsp.Samples) error {
	if b.Chain == nil {
		return fmt.Errorf("impairment chain not configured")
	}
	b.Chain.ProcessInto(out[0], in[0])
	return nil
}

// CoreBlock runs the custom jammer DSP core through its fused single-pass
// block path (DESIGN.md §11): RX samples in, TX out, bit-identical to
// per-sample processing.
type CoreBlock struct {
	Core *core.Core
}

// Name implements Block.
func (CoreBlock) Name() string { return "jammer-core" }

// Inputs implements Block.
func (CoreBlock) Inputs() int { return 1 }

// Outputs implements Block.
func (CoreBlock) Outputs() int { return 1 }

// Work implements Block.
func (b CoreBlock) Work(in, out []dsp.Samples) error {
	if b.Core == nil {
		return fmt.Errorf("core not configured")
	}
	b.Core.ProcessBlock(in[0], out[0])
	return nil
}

// RadioBlock runs the whole modeled N210 — front-end gains folded into the
// core's fused quantization sweep — as one flowgraph stage: RX baseband in,
// TX (jamming) output out. The radio must be started and run at the native
// 25 MSPS (a DDC resampler would change the sample count, which a 1:1
// streaming stage cannot express).
type RadioBlock struct {
	Radio *radio.N210
}

// Name implements Block.
func (RadioBlock) Name() string { return "n210" }

// Inputs implements Block.
func (RadioBlock) Inputs() int { return 1 }

// Outputs implements Block.
func (RadioBlock) Outputs() int { return 1 }

// Work implements Block.
func (b RadioBlock) Work(in, out []dsp.Samples) error {
	if b.Radio == nil {
		return fmt.Errorf("radio not configured")
	}
	return b.Radio.ProcessInto(in[0], out[0])
}

// VectorSink collects everything it receives.
type VectorSink struct {
	Label string
	Data  dsp.Samples
}

// Name implements Block.
func (v *VectorSink) Name() string {
	if v.Label != "" {
		return v.Label
	}
	return "vector-sink"
}

// Inputs implements Block.
func (v *VectorSink) Inputs() int { return 1 }

// Outputs implements Block.
func (v *VectorSink) Outputs() int { return 0 }

// Work implements Block.
func (v *VectorSink) Work(in, _ []dsp.Samples) error {
	v.Data = append(v.Data, in[0]...)
	return nil
}

// Probe measures running power and peak without retaining samples.
type Probe struct {
	Label   string
	Samples int
	Energy  float64
	Peak    float64
}

// Name implements Block.
func (p *Probe) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "probe"
}

// Inputs implements Block.
func (p *Probe) Inputs() int { return 1 }

// Outputs implements Block.
func (p *Probe) Outputs() int { return 0 }

// Work implements Block.
func (p *Probe) Work(in, _ []dsp.Samples) error {
	for _, v := range in[0] {
		e := real(v)*real(v) + imag(v)*imag(v)
		p.Energy += e
		if e > p.Peak {
			p.Peak = e
		}
	}
	p.Samples += len(in[0])
	return nil
}

// Power returns the mean power seen so far.
func (p *Probe) Power() float64 {
	if p.Samples == 0 {
		return 0
	}
	return p.Energy / float64(p.Samples)
}
