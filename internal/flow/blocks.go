package flow

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/impair"
)

// Standard blocks for host-side flowgraphs.

// VectorSource replays a fixed buffer, cycling when it runs out (like GNU
// Radio's vector_source with repeat=true) or padding zeros when repeat is
// off.
type VectorSource struct {
	Label  string
	Data   dsp.Samples
	Repeat bool
	pos    int
	hint   int
}

// Name implements Block.
func (v *VectorSource) Name() string {
	if v.Label != "" {
		return v.Label
	}
	return "vector-source"
}

// Inputs implements Block.
func (v *VectorSource) Inputs() int { return 0 }

// Outputs implements Block.
func (v *VectorSource) Outputs() int { return 1 }

// ChunkHint implements the source sizing contract.
func (v *VectorSource) ChunkHint(n int) { v.hint = n }

// Work implements Block.
func (v *VectorSource) Work([]dsp.Samples) ([]dsp.Samples, error) {
	out := make(dsp.Samples, v.hint)
	for i := range out {
		if v.pos >= len(v.Data) {
			if !v.Repeat {
				break
			}
			v.pos = 0
		}
		if len(v.Data) > 0 {
			out[i] = v.Data[v.pos]
			v.pos++
		}
	}
	return []dsp.Samples{out}, nil
}

// NoiseSourceBlock emits WGN at a fixed power.
type NoiseSourceBlock struct {
	Label string
	Src   *dsp.NoiseSource
	hint  int
}

// Name implements Block.
func (n *NoiseSourceBlock) Name() string {
	if n.Label != "" {
		return n.Label
	}
	return "noise-source"
}

// Inputs implements Block.
func (n *NoiseSourceBlock) Inputs() int { return 0 }

// Outputs implements Block.
func (n *NoiseSourceBlock) Outputs() int { return 1 }

// ChunkHint implements the source sizing contract.
func (n *NoiseSourceBlock) ChunkHint(h int) { n.hint = h }

// Work implements Block.
func (n *NoiseSourceBlock) Work([]dsp.Samples) ([]dsp.Samples, error) {
	if n.Src == nil {
		return nil, fmt.Errorf("noise source not configured")
	}
	return []dsp.Samples{n.Src.Block(n.hint)}, nil
}

// Adder sums its two inputs.
type Adder struct{}

// Name implements Block.
func (Adder) Name() string { return "add" }

// Inputs implements Block.
func (Adder) Inputs() int { return 2 }

// Outputs implements Block.
func (Adder) Outputs() int { return 1 }

// Work implements Block.
func (Adder) Work(in []dsp.Samples) ([]dsp.Samples, error) {
	out := in[0].Clone()
	out.Add(in[1])
	return []dsp.Samples{out}, nil
}

// Gain scales its input by a constant.
type Gain struct {
	G complex128
}

// Name implements Block.
func (Gain) Name() string { return "gain" }

// Inputs implements Block.
func (Gain) Inputs() int { return 1 }

// Outputs implements Block.
func (Gain) Outputs() int { return 1 }

// Work implements Block.
func (g Gain) Work(in []dsp.Samples) ([]dsp.Samples, error) {
	out := make(dsp.Samples, len(in[0]))
	for i, v := range in[0] {
		out[i] = v * g.G
	}
	return []dsp.Samples{out}, nil
}

// FIRBlock wraps a streaming dsp.FIR.
type FIRBlock struct {
	Label  string
	Filter *dsp.FIR
}

// Name implements Block.
func (f *FIRBlock) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "fir"
}

// Inputs implements Block.
func (f *FIRBlock) Inputs() int { return 1 }

// Outputs implements Block.
func (f *FIRBlock) Outputs() int { return 1 }

// Work implements Block.
func (f *FIRBlock) Work(in []dsp.Samples) ([]dsp.Samples, error) {
	if f.Filter == nil {
		return nil, fmt.Errorf("FIR not configured")
	}
	return []dsp.Samples{f.Filter.Filter(in[0])}, nil
}

// ImpairBlock wraps an impair.Chain front-end model.
type ImpairBlock struct {
	Chain *impair.Chain
}

// Name implements Block.
func (ImpairBlock) Name() string { return "impairments" }

// Inputs implements Block.
func (ImpairBlock) Inputs() int { return 1 }

// Outputs implements Block.
func (ImpairBlock) Outputs() int { return 1 }

// Work implements Block.
func (b ImpairBlock) Work(in []dsp.Samples) ([]dsp.Samples, error) {
	if b.Chain == nil {
		return nil, fmt.Errorf("impairment chain not configured")
	}
	return []dsp.Samples{b.Chain.Process(in[0])}, nil
}

// CoreBlock runs the custom jammer DSP core: RX samples in, TX out.
type CoreBlock struct {
	Core *core.Core
}

// Name implements Block.
func (CoreBlock) Name() string { return "jammer-core" }

// Inputs implements Block.
func (CoreBlock) Inputs() int { return 1 }

// Outputs implements Block.
func (CoreBlock) Outputs() int { return 1 }

// Work implements Block.
func (b CoreBlock) Work(in []dsp.Samples) ([]dsp.Samples, error) {
	if b.Core == nil {
		return nil, fmt.Errorf("core not configured")
	}
	return []dsp.Samples{b.Core.ProcessBuffer(in[0])}, nil
}

// VectorSink collects everything it receives.
type VectorSink struct {
	Label string
	Data  dsp.Samples
}

// Name implements Block.
func (v *VectorSink) Name() string {
	if v.Label != "" {
		return v.Label
	}
	return "vector-sink"
}

// Inputs implements Block.
func (v *VectorSink) Inputs() int { return 1 }

// Outputs implements Block.
func (v *VectorSink) Outputs() int { return 0 }

// Work implements Block.
func (v *VectorSink) Work(in []dsp.Samples) ([]dsp.Samples, error) {
	v.Data = append(v.Data, in[0]...)
	return nil, nil
}

// Probe measures running power and peak without retaining samples.
type Probe struct {
	Label   string
	Samples int
	Energy  float64
	Peak    float64
}

// Name implements Block.
func (p *Probe) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "probe"
}

// Inputs implements Block.
func (p *Probe) Inputs() int { return 1 }

// Outputs implements Block.
func (p *Probe) Outputs() int { return 0 }

// Work implements Block.
func (p *Probe) Work(in []dsp.Samples) ([]dsp.Samples, error) {
	for _, v := range in[0] {
		e := real(v)*real(v) + imag(v)*imag(v)
		p.Energy += e
		if e > p.Peak {
			p.Peak = e
		}
	}
	p.Samples += len(in[0])
	return nil, nil
}

// Power returns the mean power seen so far.
func (p *Probe) Power() float64 {
	if p.Samples == 0 {
		return 0
	}
	return p.Energy / float64(p.Samples)
}
