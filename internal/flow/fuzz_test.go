package flow

import (
	"testing"

	"repro/internal/dsp"
)

// fuzzTopology decodes an arbitrary byte string into a graph construction:
// a chunk size, a set of blocks, and a set of Connect calls (legal or not).
// The same bytes always build the same graph, so the fuzzer can also run it
// differentially across both schedulers. Returned alongside are the sinks
// for output comparison.
//
// Encoding: byte 0 selects the chunk size, byte 1 the block count (1–6),
// then one byte per block selects its kind, and every following group of 4
// bytes is one Connect(src, srcPort, dst, dstPort) attempt. Ports are taken
// mod 4 so out-of-range ports (rejection paths) stay reachable.
func fuzzTopology(data []byte) (*Graph, []*VectorSink) {
	chunks := []int{1, 3, 64, 257}
	if len(data) < 2 {
		return NewGraph(64), nil
	}
	g := NewGraph(chunks[int(data[0])%len(chunks)])
	nBlocks := 1 + int(data[1])%6
	data = data[2:]
	var sinks []*VectorSink
	for i := 0; i < nBlocks; i++ {
		var kind byte
		if len(data) > 0 {
			kind = data[0]
			data = data[1:]
		}
		switch kind % 6 {
		case 0:
			g.Add(&VectorSource{Data: dsp.Samples{complex(float64(kind), 1), 2, 3i}, Repeat: kind%2 == 0})
		case 1:
			g.Add(&NoiseSourceBlock{Src: dsp.NewNoiseSource(0.5, int64(kind))})
		case 2:
			g.Add(Adder{})
		case 3:
			g.Add(Gain{G: complex(float64(kind%7), -1)})
		case 4:
			s := &VectorSink{}
			sinks = append(sinks, s)
			g.Add(s)
		case 5:
			g.Add(&Probe{})
		}
	}
	for len(data) >= 4 {
		// Connect must reject bad wiring with an error, never panic; legal
		// calls are kept.
		_ = g.Connect(int(data[0])%nBlocks, int(data[1])%4, int(data[2])%nBlocks, int(data[3])%4)
		data = data[4:]
	}
	return g, sinks
}

// FuzzGraphTopology throws random block/edge sets at both schedulers:
// construction and execution must never panic — cycles, unconnected inputs
// and port mismatches all surface as errors — and whenever the topology is
// runnable at all, the pipelined output must be bit-identical to the
// synchronous reference (the graph is rebuilt from the same bytes for each
// scheduler, so all block state is freshly seeded both times).
func FuzzGraphTopology(f *testing.F) {
	f.Add([]byte("\x01\x02\x00\x03\x04\x00\x00\x01\x00\x01\x00\x02\x00"))                                         // source→gain→sink chain
	f.Add([]byte("\x03\x04\x00\x01\x02\x04\x05\x00\x00\x02\x00\x01\x00\x02\x01\x02\x00\x03\x00\x02\x00\x04\x00")) // adder fan-out to sink+probe
	f.Add([]byte("\x00\x02\x03\x03\x04\x00\x00\x01\x00\x01\x00\x00\x00\x01\x00\x02\x00"))                         // gain↔gain cycle
	f.Add([]byte("\x02\x02\x00\x02\x04\x00\x00\x01\x00\x01\x00\x02\x00"))                                         // adder with input 1 unconnected
	f.Add([]byte("\x01\x01\x00\x04\x00\x02\x01\x01"))                                                             // port out of range
	f.Add([]byte{})                                                                                               // empty input
	f.Fuzz(func(t *testing.T, data []byte) {
		const total = 200
		ref, refSinks := fuzzTopology(data)
		refErr := ref.Run(total)

		pip, pipSinks := fuzzTopology(data)
		_, pipErr := pip.RunPipelined(total, PipelineOptions{Depth: 2, Workers: 2})

		if (refErr == nil) != (pipErr == nil) {
			t.Fatalf("schedulers disagree: sync err=%v, pipelined err=%v", refErr, pipErr)
		}
		if refErr != nil {
			return
		}
		if len(refSinks) != len(pipSinks) {
			t.Fatalf("sink counts diverge: %d vs %d", len(refSinks), len(pipSinks))
		}
		for si := range refSinks {
			r, p := refSinks[si].Data, pipSinks[si].Data
			if len(r) != total || len(p) != total {
				t.Fatalf("sink %d lengths %d/%d, want %d", si, len(r), len(p), total)
			}
			for i := range r {
				if r[i] != p[i] {
					t.Fatalf("sink %d sample %d: sync %v, pipelined %v", si, i, r[i], p[i])
				}
			}
		}
	})
}
