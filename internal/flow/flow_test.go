package flow

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/host"
	"repro/internal/jammer"
	"repro/internal/trigger"
)

func TestSourceToSink(t *testing.T) {
	g := NewGraph(8)
	src := g.Add(&VectorSource{Data: dsp.Samples{1, 2, 3}, Repeat: true})
	sink := &VectorSink{}
	sk := g.Add(sink)
	if err := g.Connect(src, 0, sk, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(10); err != nil {
		t.Fatal(err)
	}
	// The cycle continues seamlessly across the chunk boundary at 8.
	want := dsp.Samples{1, 2, 3, 1, 2, 3, 1, 2, 3, 1}
	if len(sink.Data) != len(want) {
		t.Fatalf("sink has %d samples, want %d", len(sink.Data), len(want))
	}
	for i := range want {
		if sink.Data[i] != want[i] {
			t.Fatalf("sample %d = %v, want %v", i, sink.Data[i], want[i])
		}
	}
}

func TestNonRepeatingSourcePads(t *testing.T) {
	g := NewGraph(4)
	src := g.Add(&VectorSource{Data: dsp.Samples{1, 1}})
	sink := &VectorSink{}
	sk := g.Add(sink)
	if err := g.Connect(src, 0, sk, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(4); err != nil {
		t.Fatal(err)
	}
	if sink.Data[2] != 0 || sink.Data[3] != 0 {
		t.Errorf("exhausted source should pad zeros: %v", sink.Data)
	}
}

// TestSourceOverwritesReusedBuffer pins the reused-buffer contract: an
// exhausted non-repeating source must zero its whole output even though the
// runtime hands it a dirty buffer from an earlier chunk.
func TestSourceOverwritesReusedBuffer(t *testing.T) {
	g := NewGraph(4)
	src := g.Add(&VectorSource{Data: dsp.Samples{9, 9, 9, 9}})
	sink := &VectorSink{}
	sk := g.Add(sink)
	if err := g.Connect(src, 0, sk, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(12); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 12; i++ {
		if sink.Data[i] != 0 {
			t.Fatalf("sample %d = %v, want 0 (stale buffer leaked through)", i, sink.Data[i])
		}
	}
}

func TestAdderAndGain(t *testing.T) {
	g := NewGraph(16)
	a := g.Add(&VectorSource{Label: "a", Data: dsp.Samples{1}, Repeat: true})
	b := g.Add(&VectorSource{Label: "b", Data: dsp.Samples{2i}, Repeat: true})
	add := g.Add(Adder{})
	gain := g.Add(Gain{G: 2})
	sink := &VectorSink{}
	sk := g.Add(sink)
	for _, c := range []struct{ s, sp, d, dp int }{
		{a, 0, add, 0}, {b, 0, add, 1}, {add, 0, gain, 0}, {gain, 0, sk, 0},
	} {
		if err := g.Connect(c.s, c.sp, c.d, c.dp); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Run(16); err != nil {
		t.Fatal(err)
	}
	for _, v := range sink.Data {
		if v != 2+4i {
			t.Fatalf("sample %v, want (2+4i)", v)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	g := NewGraph(8)
	src := g.Add(&VectorSource{Data: dsp.Samples{1}})
	add := g.Add(Adder{})
	sink := g.Add(&VectorSink{})
	if err := g.Connect(99, 0, sink, 0); err == nil {
		t.Error("unknown block accepted")
	}
	if err := g.Connect(src, 1, sink, 0); err == nil {
		t.Error("bad source port accepted")
	}
	if err := g.Connect(src, 0, add, 5); err == nil {
		t.Error("bad dest port accepted")
	}
	if err := g.Connect(src, 0, add, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect(src, 0, add, 0); err == nil {
		t.Error("double connection accepted")
	}
	// Run with add's second input unconnected: must fail, on both schedulers.
	if err := g.Connect(add, 0, sink, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(8); err == nil || !strings.Contains(err.Error(), "unconnected") {
		t.Errorf("unconnected input not caught: %v", err)
	}
	if _, err := g.RunPipelined(8, PipelineOptions{}); err == nil || !strings.Contains(err.Error(), "unconnected") {
		t.Errorf("pipelined: unconnected input not caught: %v", err)
	}
	if err := g.Run(0); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := g.RunPipelined(0, PipelineOptions{}); err == nil {
		t.Error("pipelined: zero samples accepted")
	}
}

// loopback wires a block's output back to its own input via an adder to
// force a cycle.
func TestCycleDetection(t *testing.T) {
	g := NewGraph(8)
	src := g.Add(&VectorSource{Data: dsp.Samples{1}, Repeat: true})
	add := g.Add(Adder{})
	gain := g.Add(Gain{G: 1})
	sink := g.Add(&VectorSink{})
	_ = g.Connect(src, 0, add, 0)
	_ = g.Connect(gain, 0, add, 1)
	_ = g.Connect(add, 0, gain, 0) // cycle: add -> gain -> add
	_ = g.Connect(gain, 0, sink, 0)
	for name, run := range map[string]func() error{
		"sync": func() error { return g.Run(8) },
		"pipelined": func() error {
			_, err := g.RunPipelined(8, PipelineOptions{})
			return err
		},
	} {
		err := run()
		if err == nil {
			t.Fatalf("%s: cycle not detected", name)
		}
		if !strings.Contains(err.Error(), "cycle") && !strings.Contains(err.Error(), "unconnected") {
			t.Errorf("%s: unexpected error: %v", name, err)
		}
	}
}

func TestProbePower(t *testing.T) {
	g := NewGraph(64)
	n := g.Add(&NoiseSourceBlock{Src: dsp.NewNoiseSource(0.25, 1)})
	p := &Probe{}
	pb := g.Add(p)
	if err := g.Connect(n, 0, pb, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(100000); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Power()-0.25) > 0.02 {
		t.Errorf("probe power %v, want 0.25", p.Power())
	}
	if p.Samples != 100000 {
		t.Errorf("probe counted %d samples", p.Samples)
	}
}

// TestJammerHostFlowgraph composes the paper's host application as a
// flowgraph: WiFi-frame source → jammer core → sink, verifying the core
// jams inside the graph.
func TestJammerHostFlowgraph(t *testing.T) {
	c := core.New()
	h := host.New(c)
	if _, err := h.ProgramEnergy(10, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ProgramTrigger(core.FusionSequence,
		[]trigger.Event{trigger.EventEnergyHigh}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ProgramJammer(host.Personality{
		Waveform: jammer.WaveformWGN, Uptime: 20e-6 * 1e9, Gain: 1,
	}); err != nil {
		t.Fatal(err)
	}

	burst := make(dsp.Samples, 4000)
	for i := 1500; i < 3000; i++ {
		burst[i] = complex(0.5, 0)
	}
	g := NewGraph(512)
	src := g.Add(&VectorSource{Data: burst})
	noise := g.Add(&NoiseSourceBlock{Src: dsp.NewNoiseSource(1e-6, 2)})
	add := g.Add(Adder{})
	jam := g.Add(CoreBlock{Core: c})
	sink := &VectorSink{}
	sk := g.Add(sink)
	for _, cn := range []struct{ s, sp, d, dp int }{
		{src, 0, add, 0}, {noise, 0, add, 1}, {add, 0, jam, 0}, {jam, 0, sk, 0},
	} {
		if err := g.Connect(cn.s, cn.sp, cn.d, cn.dp); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Run(len(burst)); err != nil {
		t.Fatal(err)
	}
	if c.Stats().JamTriggers == 0 {
		t.Fatal("core never triggered inside the flowgraph")
	}
	active := 0
	for _, v := range sink.Data {
		if v != 0 {
			active++
		}
	}
	if active == 0 {
		t.Error("no jamming output reached the sink")
	}
}

func TestBlockNames(t *testing.T) {
	blocks := []Block{
		&VectorSource{}, &NoiseSourceBlock{}, Adder{}, Gain{},
		&FIRBlock{}, ImpairBlock{}, CoreBlock{}, RadioBlock{}, &VectorSink{}, &Probe{},
	}
	for _, b := range blocks {
		if b.Name() == "" {
			t.Errorf("%T has empty name", b)
		}
	}
	if (&VectorSource{Label: "x"}).Name() != "x" {
		t.Error("label override failed")
	}
}

func TestUnconfiguredBlocksFail(t *testing.T) {
	for _, b := range []Block{&NoiseSourceBlock{}, &FIRBlock{}, ImpairBlock{}, CoreBlock{}, RadioBlock{}} {
		in := make([]dsp.Samples, b.Inputs())
		for i := range in {
			in[i] = make(dsp.Samples, 4)
		}
		out := make([]dsp.Samples, b.Outputs())
		for i := range out {
			out[i] = make(dsp.Samples, 4)
		}
		if err := b.Work(in, out); err == nil {
			t.Errorf("%s accepted work while unconfigured", b.Name())
		}
	}
}
