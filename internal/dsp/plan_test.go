package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// TestFFTPlanMatchesGenericFFT pins the planned forward transform bit-exact
// against the generic dsp.FFT across every power-of-two size the system
// uses (the WiFi modem's 64 and the WiMAX modem's 1024 included).
func TestFFTPlanMatchesGenericFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 1024; n <<= 1 {
		p := NewFFTPlan(n)
		for trial := 0; trial < 8; trial++ {
			x := randSamples(rng, n)
			want := x.Clone()
			FFT(want)
			got := x.Clone()
			p.Forward(got)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d trial %d: plan Forward[%d] = %v, generic %v",
						n, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFFTPlanInverseMatchesGenericIFFT pins the planned inverse — with the
// 1/N scaling folded into the butterfly stages — against the generic
// dsp.IFFT. Power-of-two scalings are exact in IEEE arithmetic, so equality
// here is == (Go's float comparison, which identifies +0 and -0).
func TestFFTPlanInverseMatchesGenericIFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for n := 1; n <= 1024; n <<= 1 {
		p := NewFFTPlan(n)
		for trial := 0; trial < 8; trial++ {
			x := randSamples(rng, n)
			want := x.Clone()
			IFFT(want)
			got := x.Clone()
			p.Inverse(got)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d trial %d: plan Inverse[%d] = %v, generic %v",
						n, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFFTPlanSparseSpectra covers the modem-shaped inputs: mostly-zero
// frequency buffers with a few occupied carriers, where zero-sign handling
// in the folded scaling would show up first.
func TestFFTPlanSparseSpectra(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := NewFFTPlan(64)
	for trial := 0; trial < 32; trial++ {
		x := make(Samples, 64)
		for k := 0; k < 8; k++ {
			x[rng.Intn(64)] = complex(float64(rng.Intn(3)-1), float64(rng.Intn(3)-1))
		}
		want := x.Clone()
		IFFT(want)
		got := x.Clone()
		p.Inverse(got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: sparse Inverse[%d] = %v, generic %v",
					trial, i, got[i], want[i])
			}
		}
	}
}

func TestFFTPlanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := NewFFTPlan(256)
	x := randSamples(rng, 256)
	orig := x.Clone()
	p.Forward(x)
	p.Inverse(x)
	for i := range x {
		if d := x[i] - orig[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestFFTPlanValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewFFTPlan(12)", func() { NewFFTPlan(12) })
	mustPanic("NewFFTPlan(0)", func() { NewFFTPlan(0) })
	mustPanic("short input", func() { FFT64.Forward(make(Samples, 32)) })
	mustPanic("long input", func() { FFT64.Inverse(make(Samples, 128)) })
	if FFT64.Size() != 64 {
		t.Errorf("FFT64.Size() = %d", FFT64.Size())
	}
}

// TestFFTPlanZeroAlloc pins the plan's whole point: transforms run in the
// caller's buffer with no per-call allocation.
func TestFFTPlanZeroAlloc(t *testing.T) {
	x := randSamples(rand.New(rand.NewSource(15)), 64)
	if allocs := testing.AllocsPerRun(100, func() {
		FFT64.Forward(x)
		FFT64.Inverse(x)
	}); allocs != 0 {
		t.Errorf("planned transform allocates %.1f per round trip, want 0", allocs)
	}
}

func BenchmarkFFT64Generic(b *testing.B) {
	x := randSamples(rand.New(rand.NewSource(16)), 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFT64Planned(b *testing.B) {
	x := randSamples(rand.New(rand.NewSource(17)), 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT64.Forward(x)
	}
}

func BenchmarkIFFT64Planned(b *testing.B) {
	x := randSamples(rand.New(rand.NewSource(18)), 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT64.Inverse(x)
	}
}
