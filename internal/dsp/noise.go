package dsp

import (
	"math"
	"math/rand"
)

// NoiseSource produces complex white Gaussian noise with a configurable
// per-sample power. Every experiment in the framework seeds its own source so
// runs are reproducible; NoiseSource is not safe for concurrent use.
type NoiseSource struct {
	rng   *rand.Rand
	power float64
	std   float64 // per-dimension standard deviation
}

// NewNoiseSource returns a WGN source with the given total per-sample power
// (E|x|^2 = power, split evenly between I and Q) and PRNG seed.
func NewNoiseSource(power float64, seed int64) *NoiseSource {
	n := &NoiseSource{rng: rand.New(rand.NewSource(seed))}
	n.SetPower(power)
	return n
}

// SetPower changes the per-sample noise power.
func (n *NoiseSource) SetPower(power float64) {
	if power < 0 {
		power = 0
	}
	n.power = power
	n.std = math.Sqrt(power / 2)
}

// Power returns the configured per-sample noise power.
func (n *NoiseSource) Power() float64 { return n.power }

// Sample returns one complex Gaussian sample.
func (n *NoiseSource) Sample() complex128 {
	return complex(n.rng.NormFloat64()*n.std, n.rng.NormFloat64()*n.std)
}

// Block fills and returns a buffer of count noise samples.
func (n *NoiseSource) Block(count int) Samples {
	out := make(Samples, count)
	n.Fill(out)
	return out
}

// Fill overwrites out with noise samples, drawing exactly len(out) samples
// from the stream — the allocation-free form of Block for callers that own
// their buffers (the flowgraph runtime's reused ring chunks).
func (n *NoiseSource) Fill(out Samples) {
	for i := range out {
		out[i] = n.Sample()
	}
}

// AddTo adds noise to x in place and returns x.
func (n *NoiseSource) AddTo(x Samples) Samples {
	for i := range x {
		x[i] += n.Sample()
	}
	return x
}
