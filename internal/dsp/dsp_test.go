package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSamples(rng *rand.Rand, n int) Samples {
	s := make(Samples, n)
	for i := range s {
		s[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return s
}

func TestFFTKnownTone(t *testing.T) {
	const n = 64
	// A complex exponential at bin 5 must concentrate all energy in bin 5.
	x := Tone(n, 5.0/n, 1.0)
	FFT(x)
	for k := range x {
		mag := cmplx.Abs(x[k])
		if k == 5 {
			if math.Abs(mag-n) > 1e-6 {
				t.Errorf("bin 5 magnitude = %v, want %v", mag, float64(n))
			}
		} else if mag > 1e-6 {
			t.Errorf("bin %d magnitude = %v, want 0", k, mag)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	x := make(Samples, 16)
	x[0] = 1
	FFT(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, sizeSel uint8) bool {
		n := 1 << (3 + sizeSel%6) // 8..256
		_ = seed
		x := randSamples(rng, n)
		orig := x.Clone()
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(sizeSel uint8) bool {
		n := 1 << (4 + sizeSel%5)
		x := randSamples(rng, n)
		timeE := x.Energy()
		FFT(x)
		freqE := x.Energy() / float64(n)
		return math.Abs(timeE-freqE) < 1e-6*timeE
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFFTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT of length 12 should panic")
		}
	}()
	FFT(make(Samples, 12))
}

func TestFFTShift(t *testing.T) {
	x := Samples{0, 1, 2, 3}
	got := FFTShift(x)
	want := Samples{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FFTShift = %v, want %v", got, want)
		}
	}
}

func TestPowerAndScale(t *testing.T) {
	x := Samples{1, 1i, -1, -1i}
	if p := x.Power(); math.Abs(p-1) > 1e-12 {
		t.Errorf("Power = %v, want 1", p)
	}
	x.ScaleToPower(4)
	if p := x.Power(); math.Abs(p-4) > 1e-12 {
		t.Errorf("after ScaleToPower(4), Power = %v", p)
	}
	var empty Samples
	if empty.Power() != 0 {
		t.Error("empty power should be 0")
	}
	zero := make(Samples, 8)
	zero.ScaleToPower(1) // must not NaN
	if zero.Power() != 0 {
		t.Error("zero buffer must stay zero")
	}
}

func TestDBConversions(t *testing.T) {
	cases := []struct{ lin, db float64 }{
		{1, 0}, {10, 10}, {100, 20}, {0.1, -10},
	}
	for _, c := range cases {
		if got := DB(c.lin); math.Abs(got-c.db) > 1e-9 {
			t.Errorf("DB(%v) = %v, want %v", c.lin, got, c.db)
		}
		if got := FromDB(c.db); math.Abs(got-c.lin) > 1e-9*c.lin {
			t.Errorf("FromDB(%v) = %v, want %v", c.db, got, c.lin)
		}
	}
	if got := AmplitudeFromDB(20); math.Abs(got-10) > 1e-9 {
		t.Errorf("AmplitudeFromDB(20) = %v, want 10", got)
	}
}

func TestCorrelatePeakAtTrueOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randSamples(rng, 64)
	x := make(Samples, 256)
	copy(x[100:], h)
	out := Correlate(x, h)
	best, bestMag := 0, 0.0
	for k, v := range out {
		if m := cmplx.Abs(v); m > bestMag {
			best, bestMag = k, m
		}
	}
	if best != 100 {
		t.Errorf("correlation peak at %d, want 100", best)
	}
}

func TestCorrelateDegenerate(t *testing.T) {
	if Correlate(make(Samples, 4), make(Samples, 8)) != nil {
		t.Error("template longer than input should return nil")
	}
	if Correlate(make(Samples, 4), nil) != nil {
		t.Error("empty template should return nil")
	}
}

func TestToneFrequency(t *testing.T) {
	// Tone at fs/8: every 8th sample returns to the start.
	x := Tone(16, 1.0/8, 1.0)
	if cmplx.Abs(x[0]-1) > 1e-12 || cmplx.Abs(x[8]-1) > 1e-12 {
		t.Errorf("tone period wrong: x[0]=%v x[8]=%v", x[0], x[8])
	}
}

func TestAddAndClone(t *testing.T) {
	a := Samples{1, 2, 3}
	b := a.Clone()
	a.Add(Samples{1, 1})
	if a[0] != 2 || a[1] != 3 || a[2] != 3 {
		t.Errorf("Add result %v", a)
	}
	if b[0] != 1 {
		t.Error("Clone must not alias")
	}
}

func TestPeakAmplitude(t *testing.T) {
	x := Samples{complex(3, 4), 1}
	if p := x.PeakAmplitude(); math.Abs(p-5) > 1e-12 {
		t.Errorf("PeakAmplitude = %v, want 5", p)
	}
}
