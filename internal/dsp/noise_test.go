package dsp

import (
	"math"
	"testing"
)

func TestNoisePowerMatchesSetting(t *testing.T) {
	for _, p := range []float64{0.01, 1, 100} {
		n := NewNoiseSource(p, 42)
		b := n.Block(200000)
		got := b.Power()
		if math.Abs(got-p) > 0.05*p {
			t.Errorf("noise power = %v, want %v", got, p)
		}
	}
}

func TestNoiseReproducible(t *testing.T) {
	a := NewNoiseSource(1, 7).Block(64)
	b := NewNoiseSource(1, 7).Block(64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical noise")
		}
	}
	c := NewNoiseSource(1, 8).Block(64)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical noise")
	}
}

func TestNoiseZeroAndNegativePower(t *testing.T) {
	n := NewNoiseSource(0, 1)
	if s := n.Sample(); s != 0 {
		t.Errorf("zero-power noise sample = %v", s)
	}
	n.SetPower(-5)
	if n.Power() != 0 {
		t.Error("negative power should clamp to 0")
	}
}

func TestNoiseAddTo(t *testing.T) {
	n := NewNoiseSource(1, 3)
	x := make(Samples, 100000)
	n.AddTo(x)
	if p := x.Power(); math.Abs(p-1) > 0.05 {
		t.Errorf("AddTo power = %v, want ~1", p)
	}
}

func TestNoiseZeroMean(t *testing.T) {
	n := NewNoiseSource(1, 9)
	b := n.Block(200000)
	var mean complex128
	for _, v := range b {
		mean += v
	}
	mean /= complex(float64(len(b)), 0)
	if math.Hypot(real(mean), imag(mean)) > 0.01 {
		t.Errorf("noise mean = %v, want ~0", mean)
	}
}
