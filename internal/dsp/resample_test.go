package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestResamplerRatioReduced(t *testing.T) {
	r := NewResampler(10, 8, 8)
	l, m := r.Ratio()
	if l != 5 || m != 4 {
		t.Errorf("ratio = %d/%d, want 5/4", l, m)
	}
}

func TestResamplerOutputLength(t *testing.T) {
	cases := []struct{ l, m, in int }{
		{5, 4, 1000}, {4, 5, 1000}, {125, 57, 1140}, {1, 1, 500},
	}
	for _, c := range cases {
		out := Resample(make(Samples, c.in), c.l, c.m)
		want := c.in * c.l / c.m
		if got := len(out); got < want-2 || got > want+2 {
			t.Errorf("L/M=%d/%d: %d in -> %d out, want ~%d", c.l, c.m, c.in, got, want)
		}
	}
}

// tonePeakBin returns the FFT bin with the most energy.
func tonePeakBin(x Samples, n int) int {
	buf := x[:n].Clone()
	FFT(buf)
	best, bestMag := 0, 0.0
	for k, v := range buf {
		if mag := cmplx.Abs(v); mag > bestMag {
			best, bestMag = k, mag
		}
	}
	return best
}

func TestResamplerPreservesToneFrequency(t *testing.T) {
	// A tone at 2 MHz sampled at 20 MSPS, resampled 5/4 to 25 MSPS, must
	// still sit at 2 MHz: bin 0.1*N before, bin 0.08*N after.
	in := Tone(4096, 2e6, 20e6)
	out := Resample(in, 5, 4)
	const n = 2048
	inBin := tonePeakBin(in[512:], n)
	outBin := tonePeakBin(out[512:], n)
	wantIn := int(math.Round(2e6 / 20e6 * n))
	wantOut := int(math.Round(2e6 / 25e6 * n))
	if abs(inBin-wantIn) > 1 {
		t.Errorf("input tone bin %d, want %d", inBin, wantIn)
	}
	if abs(outBin-wantOut) > 1 {
		t.Errorf("output tone bin %d, want %d", outBin, wantOut)
	}
}

func TestResamplerToneFrequencyProperty(t *testing.T) {
	f := func(freqSel uint8) bool {
		// In-band tone (below both Nyquists after 4/5 decimation).
		freq := (0.02 + 0.3*float64(freqSel)/255) * 20e6 / 2
		in := Tone(4096, freq, 20e6)
		out := Resample(in, 5, 4)
		const n = 2048
		got := tonePeakBin(out[512:], n)
		want := int(math.Round(freq / 25e6 * n))
		return abs(got-want) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestResamplerStreamingSeamless(t *testing.T) {
	in := Tone(2000, 1e6, 20e6)
	whole := NewResampler(5, 4, 8).Process(in)
	r := NewResampler(5, 4, 8)
	var chunked Samples
	for i := 0; i < len(in); i += 137 {
		end := min(i+137, len(in))
		chunked = append(chunked, r.Process(in[i:end])...)
	}
	if len(whole) != len(chunked) {
		t.Fatalf("length mismatch: %d vs %d", len(whole), len(chunked))
	}
	for i := range whole {
		if cmplx.Abs(whole[i]-chunked[i]) > 1e-9 {
			t.Fatalf("chunked processing differs at %d", i)
		}
	}
}

func TestResamplerAmplitudePreserved(t *testing.T) {
	in := Tone(4096, 1e6, 20e6)
	out := Resample(in, 5, 4)
	// Skip filter transient, compare steady-state power (unit-power tone).
	p := out[256 : len(out)-16].Power()
	if math.Abs(p-1) > 0.05 {
		t.Errorf("resampled tone power %v, want ~1", p)
	}
}

func TestResamplerInvalidRatio(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero ratio should panic")
		}
	}()
	NewResampler(0, 4, 8)
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int }{{12, 8, 4}, {25, 20, 5}, {7, 13, 1}, {5, 5, 5}}
	for _, c := range cases {
		if g := gcd(c.a, c.b); g != c.want {
			t.Errorf("gcd(%d,%d)=%d want %d", c.a, c.b, g, c.want)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
