package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFIRIdentity(t *testing.T) {
	f := NewFIR([]float64{1})
	rng := rand.New(rand.NewSource(1))
	x := randSamples(rng, 32)
	y := f.Filter(x)
	for i := range x {
		if cmplx.Abs(y[i]-x[i]) > 1e-12 {
			t.Fatalf("identity filter changed sample %d", i)
		}
	}
}

func TestFIRDelay(t *testing.T) {
	f := NewFIR([]float64{0, 0, 1}) // pure 2-sample delay
	x := Samples{1, 2, 3, 4}
	y := f.Filter(x)
	want := Samples{0, 0, 1, 2}
	for i := range want {
		if cmplx.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("delay output %v, want %v", y, want)
		}
	}
}

func TestFIRStreamingMatchesBlock(t *testing.T) {
	taps := LowpassTaps(31, 0.2)
	rng := rand.New(rand.NewSource(2))
	x := randSamples(rng, 100)

	block := NewFIR(taps).Filter(x)

	stream := NewFIR(taps)
	var y Samples
	for _, chunk := range []Samples{x[:7], x[7:50], x[50:]} {
		y = append(y, stream.Filter(chunk)...)
	}
	for i := range block {
		if cmplx.Abs(block[i]-y[i]) > 1e-12 {
			t.Fatalf("streaming differs from block at %d", i)
		}
	}
}

func TestFIRReset(t *testing.T) {
	f := NewFIR([]float64{0.5, 0.5})
	f.ProcessSample(10)
	f.Reset()
	if y := f.ProcessSample(2); cmplx.Abs(y-1) > 1e-12 {
		t.Errorf("after reset got %v, want 1", y)
	}
}

func TestLowpassDCGain(t *testing.T) {
	taps := LowpassTaps(63, 0.1)
	var sum float64
	for _, v := range taps {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("DC gain = %v, want 1", sum)
	}
}

func TestLowpassAttenuatesStopband(t *testing.T) {
	taps := LowpassTaps(63, 0.1)
	f := NewFIR(taps)
	// Passband tone at 0.02, stopband tone at 0.4.
	pass := f.Filter(Tone(512, 0.02, 1.0))[128:]
	f.Reset()
	stop := f.Filter(Tone(512, 0.4, 1.0))[128:]
	pdb := DB(pass.Power())
	sdb := DB(stop.Power())
	if pdb < -1 {
		t.Errorf("passband attenuation %v dB too high", pdb)
	}
	if sdb > -40 {
		t.Errorf("stopband rejection only %v dB", sdb)
	}
}

func TestLowpassTapsValidation(t *testing.T) {
	for _, cutoff := range []float64{0, 0.5, -0.1, 0.7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cutoff %v should panic", cutoff)
				}
			}()
			LowpassTaps(8, cutoff)
		}()
	}
}

func TestWindows(t *testing.T) {
	for _, n := range []int{1, 2, 16, 17} {
		h := Hamming(n)
		hn := Hann(n)
		if len(h) != n || len(hn) != n {
			t.Fatalf("window length wrong for n=%d", n)
		}
		for i := range h {
			if h[i] < 0 || h[i] > 1.0001 || hn[i] < -1e-12 || hn[i] > 1.0001 {
				t.Fatalf("window value out of range at n=%d i=%d", n, i)
			}
		}
	}
	// Symmetry.
	h := Hamming(32)
	for i := 0; i < 16; i++ {
		if math.Abs(h[i]-h[31-i]) > 1e-12 {
			t.Fatalf("Hamming not symmetric at %d", i)
		}
	}
}
