package dsp

import "fmt"

// Resampler converts a sample stream between two rates by rational
// interpolation L / decimation M with a polyphase anti-aliasing lowpass.
// It is how the simulator reproduces the paper's central rate mismatch: WiFi
// frames are generated at 20 MSPS per 802.11g, while the jammer's receive
// chain is fixed at 25 MSPS (L/M = 5/4), and the WiMAX downlink at 11.4 MSPS
// becomes L/M = 125/57.
type Resampler struct {
	l, m  int
	taps  []float64
	phase [][]float64 // polyphase banks, phase[p][k] multiplies x[n-k]
	hist  Samples     // most recent input samples, newest last
	acc   int         // output phase accumulator
}

// NewResampler creates an L/M rational resampler. tapsPerPhase controls
// filter quality (8 is a good default; higher is sharper and slower).
func NewResampler(l, m, tapsPerPhase int) *Resampler {
	if l <= 0 || m <= 0 {
		panic(fmt.Sprintf("dsp: invalid resampler ratio %d/%d", l, m))
	}
	if tapsPerPhase < 2 {
		tapsPerPhase = 2
	}
	g := gcd(l, m)
	l, m = l/g, m/g
	numTaps := l * tapsPerPhase
	// Cut off at the narrower of the input and output Nyquist rates.
	cutoff := 0.5 / float64(max(l, m))
	taps := LowpassTaps(numTaps, cutoff*0.9)
	// The interpolator inserts L-1 zeros, so scale gain by L to preserve
	// signal amplitude through the zero-stuffed lowpass.
	for i := range taps {
		taps[i] *= float64(l)
	}
	phase := make([][]float64, l)
	for p := 0; p < l; p++ {
		var bank []float64
		for i := p; i < numTaps; i += l {
			bank = append(bank, taps[i])
		}
		phase[p] = bank
	}
	return &Resampler{l: l, m: m, taps: taps, phase: phase,
		hist: make(Samples, 0, tapsPerPhase)}
}

// Ratio returns the reduced interpolation and decimation factors.
func (r *Resampler) Ratio() (l, m int) { return r.l, r.m }

// GroupDelayOutputSamples returns the anti-aliasing filter's group delay in
// output-rate samples. The lowpass is linear-phase, so its delay is exactly
// (numTaps-1)/2 positions of the virtual upsampled stream, which advances M
// positions per output sample.
func (r *Resampler) GroupDelayOutputSamples() float64 {
	return float64(len(r.taps)-1) / float64(2*r.m)
}

// Reset clears filter state.
func (r *Resampler) Reset() {
	r.hist = r.hist[:0]
	r.acc = 0
}

// Process consumes a block of input samples and returns the resampled
// output. Streaming state is preserved across calls so that consecutive
// blocks are seamless.
func (r *Resampler) Process(in Samples) Samples {
	tapsPerPhase := len(r.phase[0])
	out := make(Samples, 0, len(in)*r.l/r.m+1)
	for _, x := range in {
		r.hist = append(r.hist, x)
		if len(r.hist) > tapsPerPhase {
			r.hist = r.hist[1:]
		}
		// Each input sample advances the virtual upsampled stream by L
		// positions; emit an output whenever the accumulator crosses M.
		for r.acc < r.l {
			p := r.acc
			out = append(out, r.dot(p))
			r.acc += r.m
		}
		r.acc -= r.l
	}
	return out
}

func (r *Resampler) dot(p int) complex128 {
	bank := r.phase[p]
	var acc complex128
	n := len(r.hist)
	for k, c := range bank {
		idx := n - 1 - k
		if idx < 0 {
			break
		}
		acc += r.hist[idx] * complex(c, 0)
	}
	return acc
}

// Resample is a convenience wrapper that resamples a whole buffer with a
// fresh L/M resampler and returns the result.
func Resample(in Samples, l, m int) Samples {
	return NewResampler(l, m, 8).Process(in)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
