// Package dsp provides the digital signal processing primitives that every
// other subsystem of the reactive jamming framework is built on: complex
// baseband sample buffers, power and decibel conversions, FFT/IFFT, FIR
// filtering, window functions, and rational resampling.
//
// All waveforms in the simulator are complex baseband I/Q streams
// (complex128). Conversion to and from the fixed-point representation used
// inside the simulated FPGA lives in package fixed.
package dsp

import (
	"fmt"
	"math"
)

// Samples is a complex baseband I/Q sample buffer.
type Samples []complex128

// Clone returns a deep copy of s.
func (s Samples) Clone() Samples {
	out := make(Samples, len(s))
	copy(out, s)
	return out
}

// Energy returns the total energy sum(|x|^2) of the buffer.
func (s Samples) Energy() float64 {
	var e float64
	for _, x := range s {
		e += real(x)*real(x) + imag(x)*imag(x)
	}
	return e
}

// Power returns the mean power of the buffer, or 0 for an empty buffer.
func (s Samples) Power() float64 {
	if len(s) == 0 {
		return 0
	}
	return s.Energy() / float64(len(s))
}

// Scale multiplies every sample by the real gain g in place and returns s.
func (s Samples) Scale(g float64) Samples {
	for i := range s {
		s[i] *= complex(g, 0)
	}
	return s
}

// ScaleToPower rescales the buffer in place so its mean power equals p.
// A zero-power buffer is left unchanged.
func (s Samples) ScaleToPower(p float64) Samples {
	cur := s.Power()
	if cur <= 0 {
		return s
	}
	return s.Scale(math.Sqrt(p / cur))
}

// Add accumulates other into s element-wise. The shorter length governs.
func (s Samples) Add(other Samples) Samples {
	n := min(len(s), len(other))
	for i := 0; i < n; i++ {
		s[i] += other[i]
	}
	return s
}

// PeakAmplitude returns max |x| over the buffer.
func (s Samples) PeakAmplitude() float64 {
	var peak float64
	for _, x := range s {
		if a := math.Hypot(real(x), imag(x)); a > peak {
			peak = a
		}
	}
	return peak
}

// DB converts a linear power ratio to decibels. DB(0) returns -Inf.
func DB(ratio float64) float64 {
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// AmplitudeFromDB converts decibels to a linear amplitude (voltage) ratio.
func AmplitudeFromDB(db float64) float64 {
	return math.Pow(10, db/20)
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// FFT computes the in-place radix-2 decimation-in-time FFT of x.
// len(x) must be a power of two; FFT panics otherwise, since a non-power-of-2
// transform indicates a programming error in a fixed-size modem pipeline.
func FFT(x Samples) {
	fft(x, false)
}

// IFFT computes the in-place inverse FFT of x, including the 1/N scaling.
// len(x) must be a power of two.
func IFFT(x Samples) {
	fft(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

// stageRoot returns the length-th root of unity that seeds one butterfly
// stage's incremental twiddle recurrence. Shared between the generic kernel
// and the FFTPlan twiddle tables so both produce identical weights.
func stageRoot(length int, inverse bool) complex128 {
	ang := 2 * math.Pi / float64(length)
	if !inverse {
		ang = -ang
	}
	return complex(math.Cos(ang), math.Sin(ang))
}

func fft(x Samples, inverse bool) {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: FFT size %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		wl := stageRoot(length, inverse)
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// FFTShift reorders a spectrum so that DC is in the middle, matching the
// conventional subcarrier indexing used by the OFDM modems. It returns a new
// buffer.
func FFTShift(x Samples) Samples {
	n := len(x)
	out := make(Samples, n)
	h := (n + 1) / 2
	copy(out, x[h:])
	copy(out[n-h:], x[:h])
	return out
}

// Tone synthesizes n samples of a complex exponential at frequency freq
// given sample rate rate, with unit amplitude.
func Tone(n int, freq, rate float64) Samples {
	out := make(Samples, n)
	w := 2 * math.Pi * freq / rate
	for i := range out {
		ph := w * float64(i)
		out[i] = complex(math.Cos(ph), math.Sin(ph))
	}
	return out
}

// Correlate computes the complex cross-correlation of x against the
// conjugated template h at every lag where the template fully overlaps:
// out[k] = sum_i x[k+i] * conj(h[i]), k = 0..len(x)-len(h).
// It is the reference (full-precision) correlator used to validate the
// sign-bit hardware correlator.
func Correlate(x, h Samples) Samples {
	if len(h) == 0 || len(x) < len(h) {
		return nil
	}
	out := make(Samples, len(x)-len(h)+1)
	for k := range out {
		var acc complex128
		for i, hv := range h {
			xv := x[k+i]
			acc += xv * complex(real(hv), -imag(hv))
		}
		out[k] = acc
	}
	return out
}
