package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite impulse response filter over complex samples with real
// coefficients. The zero value is unusable; construct with NewFIR. FIR keeps
// per-instance delay-line state so it can filter a sample stream
// incrementally (ProcessSample) or a whole buffer at once (Filter).
type FIR struct {
	taps  []float64
	delay Samples // circular delay line, len == len(taps)
	pos   int
}

// NewFIR returns a streaming FIR filter with the given tap coefficients.
func NewFIR(taps []float64) *FIR {
	if len(taps) == 0 {
		panic("dsp: NewFIR with no taps")
	}
	t := make([]float64, len(taps))
	copy(t, taps)
	return &FIR{taps: t, delay: make(Samples, len(taps))}
}

// NumTaps returns the filter order plus one.
func (f *FIR) NumTaps() int { return len(f.taps) }

// Reset clears the delay line.
func (f *FIR) Reset() {
	for i := range f.delay {
		f.delay[i] = 0
	}
	f.pos = 0
}

// ProcessSample pushes one input sample and returns one output sample.
func (f *FIR) ProcessSample(x complex128) complex128 {
	f.delay[f.pos] = x
	var acc complex128
	idx := f.pos
	for _, t := range f.taps {
		acc += f.delay[idx] * complex(t, 0)
		idx--
		if idx < 0 {
			idx = len(f.delay) - 1
		}
	}
	f.pos++
	if f.pos == len(f.delay) {
		f.pos = 0
	}
	return acc
}

// Filter runs the whole buffer through the filter, returning a buffer of the
// same length. The filter state persists across calls.
func (f *FIR) Filter(x Samples) Samples {
	out := make(Samples, len(x))
	f.FilterInto(out, x)
	return out
}

// FilterInto filters x into dst (which must be at least len(x) long) without
// allocating. dst and x may be the same slice: each output sample is written
// only after the corresponding input sample has entered the delay line.
func (f *FIR) FilterInto(dst, x Samples) {
	for i, v := range x {
		dst[i] = f.ProcessSample(v)
	}
}

// LowpassTaps designs a windowed-sinc lowpass filter with the given number
// of taps and normalized cutoff (cutoff = fc/fs, 0 < cutoff < 0.5), using a
// Hamming window. Taps are normalized to unit DC gain.
func LowpassTaps(numTaps int, cutoff float64) []float64 {
	if numTaps < 1 {
		panic("dsp: LowpassTaps needs at least 1 tap")
	}
	if cutoff <= 0 || cutoff >= 0.5 {
		panic(fmt.Sprintf("dsp: lowpass cutoff %v out of (0, 0.5)", cutoff))
	}
	taps := make([]float64, numTaps)
	m := float64(numTaps - 1)
	var sum float64
	for i := range taps {
		n := float64(i) - m/2
		var s float64
		if n == 0 {
			s = 2 * cutoff
		} else {
			s = math.Sin(2*math.Pi*cutoff*n) / (math.Pi * n)
		}
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/m)
		if numTaps == 1 {
			w = 1
		}
		taps[i] = s * w
		sum += taps[i]
	}
	for i := range taps {
		taps[i] /= sum
	}
	return taps
}

// Hamming returns an n-point Hamming window.
func Hamming(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// Hann returns an n-point Hann window.
func Hann(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}
