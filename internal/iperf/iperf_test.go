package iperf

import (
	"math"
	"testing"
	"time"

	"repro/internal/host"
	"repro/internal/jammer"
	"repro/internal/wifi"
)

// testLink keeps unit-test runs fast: small payloads, few packets.
func testLink() LinkConfig {
	l := DefaultLink()
	l.Packets = 15
	l.PayloadBytes = 300
	return l
}

func reactive(uptime time.Duration, varAtt float64) JammerConfig {
	return JammerConfig{
		Mode: JamReactive,
		Personality: host.Personality{
			Waveform: jammer.WaveformWGN, Uptime: uptime, Gain: 1,
		},
		VariableAttDB: varAtt,
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(LinkConfig{PayloadBytes: 0, Packets: 1}, JammerConfig{}); err == nil {
		t.Error("zero payload accepted")
	}
	if _, err := Run(LinkConfig{PayloadBytes: 100, Packets: 0}, JammerConfig{}); err == nil {
		t.Error("zero packets accepted")
	}
	l := testLink()
	if _, err := Run(l, JammerConfig{Mode: JamMode(9)}); err == nil {
		t.Error("bogus mode accepted")
	}
	if _, err := Run(l, JammerConfig{Mode: JamReactive, VariableAttDB: -3}); err == nil {
		t.Error("negative attenuation accepted")
	}
}

func TestCleanLinkDeliversEverything(t *testing.T) {
	res, err := Run(testLink(), JammerConfig{Mode: JamOff})
	if err != nil {
		t.Fatal(err)
	}
	if res.PRR != 1 {
		t.Errorf("clean-link PRR = %v, want 1", res.PRR)
	}
	if res.LinkDropped {
		t.Error("clean link dropped")
	}
	if !math.IsInf(res.SIRdB, 1) {
		t.Errorf("SIR with jammer off = %v, want +Inf", res.SIRdB)
	}
	if res.BandwidthKbps <= 0 {
		t.Error("no bandwidth measured")
	}
	if res.JamAirtimeFrac != 0 {
		t.Error("jam airtime with jammer off")
	}
	if res.FinalRate != wifi.Rate54 {
		t.Errorf("final rate %v, want 54Mbps on a clean link", res.FinalRate)
	}
}

func TestStrongReactiveJammerKillsLink(t *testing.T) {
	res, err := Run(testLink(), reactive(100*time.Microsecond, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.PRR > 0.2 {
		t.Errorf("PRR %v under strong reactive jamming", res.PRR)
	}
	if res.BandwidthKbps != 0 && !res.LinkDropped {
		t.Errorf("link survived strong jamming: %+v", res)
	}
	if res.JamAirtimeFrac <= 0 {
		t.Error("reactive jammer never transmitted")
	}
	// SIR at full jammer power through the -38.4 dB path lands around
	// -12 dB against the -51 dB signal path.
	if res.SIRdB > 0 {
		t.Errorf("measured SIR %v dB, expected strongly negative", res.SIRdB)
	}
}

func TestWeakReactiveJammerHarmless(t *testing.T) {
	res, err := Run(testLink(), reactive(100*time.Microsecond, 50))
	if err != nil {
		t.Fatal(err)
	}
	if res.PRR != 1 {
		t.Errorf("PRR %v under 50 dB-attenuated jamming, want 1", res.PRR)
	}
	// The jammer still reacts (it hears the frames fine) — it is just too
	// weak to corrupt anything. Stealth metric must show activity.
	if res.JamAirtimeFrac == 0 {
		t.Error("jammer stopped reacting at high attenuation")
	}
	if res.SIRdB < 30 {
		t.Errorf("SIR %v dB, expected > 30 with 50 dB pad", res.SIRdB)
	}
}

func TestContinuousJammerTripsCCA(t *testing.T) {
	res, err := Run(testLink(), JammerConfig{
		Mode:        JamContinuous,
		Personality: host.Personality{Gain: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LinkDropped {
		t.Error("strong continuous jammer did not drop the link")
	}
	if res.BandwidthKbps != 0 || res.Delivered != 0 {
		t.Errorf("delivered %d under CCA blockage", res.Delivered)
	}
}

func TestContinuousJammerBelowCCAOnlyAddsNoise(t *testing.T) {
	res, err := Run(testLink(), JammerConfig{
		Mode:          JamContinuous,
		Personality:   host.Personality{Gain: 1},
		VariableAttDB: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkDropped {
		t.Error("weak continuous jammer dropped the link")
	}
	if res.PRR < 0.9 {
		t.Errorf("PRR %v under weak continuous jamming", res.PRR)
	}
}

func TestLongerUptimeMoreDisruptive(t *testing.T) {
	// §4.3: "a reactive jammer with longer uptime after trigger tends to be
	// more disruptive". At a mid-range attenuation the 0.1 ms jammer must
	// deliver no more than the 0.01 ms jammer.
	link := testLink()
	link.Packets = 12
	const att = 22
	long, err := Run(link, reactive(100*time.Microsecond, att))
	if err != nil {
		t.Fatal(err)
	}
	short, err := Run(link, reactive(10*time.Microsecond, att))
	if err != nil {
		t.Fatal(err)
	}
	if long.PRR > short.PRR+0.2 {
		t.Errorf("0.1ms PRR %v vs 0.01ms PRR %v: long uptime should not be gentler",
			long.PRR, short.PRR)
	}
}

func TestReactiveStealthVsContinuous(t *testing.T) {
	// The reactive jammer's on-air fraction must be far below continuous
	// jamming (the paper's core energy-efficiency argument).
	link := testLink()
	r, err := Run(link, reactive(10*time.Microsecond, 20))
	if err != nil {
		t.Fatal(err)
	}
	if r.JamAirtimeFrac > 0.5 {
		t.Errorf("10µs reactive jammer on-air fraction %v", r.JamAirtimeFrac)
	}
}

func TestReproducibleRuns(t *testing.T) {
	link := testLink()
	a, err := Run(link, reactive(50*time.Microsecond, 25))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(link, reactive(50*time.Microsecond, 25))
	if err != nil {
		t.Fatal(err)
	}
	if a.PRR != b.PRR || a.BandwidthKbps != b.BandwidthKbps || a.SIRdB != b.SIRdB {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestTemplateTriggeredJamming(t *testing.T) {
	// Protocol-aware mode: correlator template of the WiFi short preamble.
	cfg := reactive(100*time.Microsecond, 0)
	cfg.Template = host.WiFiShortTemplate()
	cfg.TemplateThresholdFrac = 0.5
	res, err := Run(testLink(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.JamAirtimeFrac == 0 {
		t.Error("template-triggered jammer never fired on WiFi frames")
	}
	if res.PRR > 0.3 {
		t.Errorf("PRR %v under protocol-aware jamming at full power", res.PRR)
	}
}
