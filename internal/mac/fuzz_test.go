package mac

import "testing"

// FuzzParseBeacon hardens the beacon parser against arbitrary MPDUs: no
// panics, and accepted beacons must rebuild to a parseable frame.
func FuzzParseBeacon(f *testing.F) {
	good, _ := BuildBeacon(Beacon{Timestamp: 1, IntervalTU: 100, SSID: "net"})
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, 24))

	f.Fuzz(func(t *testing.T, mpdu []byte) {
		b, err := ParseBeacon(mpdu)
		if err != nil {
			return
		}
		rebuilt, err := BuildBeacon(*b)
		if err != nil {
			t.Fatalf("accepted beacon failed to rebuild: %v", err)
		}
		b2, err := ParseBeacon(rebuilt)
		if err != nil || *b2 != *b {
			t.Fatalf("beacon round-trip drift: %+v vs %+v (%v)", b2, b, err)
		}
	})
}
