// Package mac implements the 802.11 distributed coordination function used
// by the throughput experiments of §4: CSMA/CA with clear-channel
// assessment, binary exponential backoff, ACKs with retransmission up to a
// retry limit, and ARF-style rate adaptation ("the 802.11 buffering
// parameters and rate back-offs are not constrained" — §4.2).
//
// The package provides the protocol logic and air-time accounting; the
// waveform-level link (who actually decodes what under jamming) is driven
// by package iperf, which feeds transmission outcomes back into these state
// machines.
package mac

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/wifi"
)

// 802.11g OFDM timing parameters (2.4 GHz, short slot).
const (
	SlotTime   = 9 * time.Microsecond
	SIFS       = 10 * time.Microsecond
	DIFS       = SIFS + 2*SlotTime // 28 µs
	AckTimeout = SIFS + 50*time.Microsecond
	// CWMin and CWMax bound the contention window.
	CWMin = 15
	CWMax = 1023
)

// HeaderBytes is the data MPDU overhead: 24-byte MAC header + 8-byte
// LLC/SNAP; the 4-byte FCS is accounted separately.
const HeaderBytes = 24 + 8

// AckBytes is the ACK MPDU length including FCS.
const AckBytes = 14

// AckRate is the control-response rate used for ACK frames.
const AckRate = wifi.Rate24

// RetryLimit is the default long retry limit.
const RetryLimit = 7

// FrameAirtime returns the PPDU duration for a payload of n bytes carried
// as one MPDU (header + payload + FCS) at the given rate.
func FrameAirtime(rate wifi.Rate, payloadBytes int) time.Duration {
	psdu := HeaderBytes + payloadBytes + 4
	samples := wifi.FrameDuration(rate, psdu)
	return time.Duration(samples) * time.Second / wifi.SampleRate
}

// AckAirtime returns the ACK PPDU duration.
func AckAirtime() time.Duration {
	samples := wifi.FrameDuration(AckRate, AckBytes)
	return time.Duration(samples) * time.Second / wifi.SampleRate
}

// Backoff tracks the DCF contention window for one station.
type Backoff struct {
	cw  int
	rng *rand.Rand
}

// NewBackoff returns a backoff state at CWMin with the given PRNG seed.
func NewBackoff(seed int64) *Backoff {
	return &Backoff{cw: CWMin, rng: rand.New(rand.NewSource(seed))}
}

// Draw samples a backoff duration from the current window.
func (b *Backoff) Draw() time.Duration {
	slots := b.rng.Intn(b.cw + 1)
	return time.Duration(slots) * SlotTime
}

// OnFailure doubles the window (saturating at CWMax).
func (b *Backoff) OnFailure() {
	b.cw = min(2*b.cw+1, CWMax)
}

// OnSuccess resets the window to CWMin.
func (b *Backoff) OnSuccess() { b.cw = CWMin }

// CW returns the current contention window for inspection.
func (b *Backoff) CW() int { return b.cw }

// ARF is automatic-rate-fallback state: consecutive failures step the rate
// down, a run of successes steps it back up.
type ARF struct {
	rate      wifi.Rate
	failRun   int
	succRun   int
	downAfter int
	upAfter   int
}

// NewARF returns ARF state starting at the given rate, stepping down after
// 2 consecutive failures and up after 10 consecutive successes.
func NewARF(start wifi.Rate) *ARF {
	return &ARF{rate: start, downAfter: 2, upAfter: 10}
}

// Rate returns the current transmission rate.
func (a *ARF) Rate() wifi.Rate { return a.rate }

// OnResult feeds one transmission outcome into the adaptation.
func (a *ARF) OnResult(success bool) {
	if success {
		a.succRun++
		a.failRun = 0
		if a.succRun >= a.upAfter && a.rate < wifi.Rate54 {
			a.rate++
			a.succRun = 0
		}
		return
	}
	a.failRun++
	a.succRun = 0
	if a.failRun >= a.downAfter && a.rate > wifi.Rate6 {
		a.rate--
		a.failRun = 0
	}
}

// CCAThreshold is the clear-channel-assessment energy-detect level relative
// to the station's noise floor: the medium reports busy when the in-band
// power exceeds the noise floor by this factor. 802.11 energy detect sits
// roughly 20 dB above a typical noise floor.
const CCAThresholdDB = 20.0

// CCA reports whether the medium is busy given the ambient (non-own)
// in-band power and the station noise floor.
func CCA(ambientPower, noiseFloor float64) bool {
	return ambientPower > noiseFloor*math.Pow(10, CCAThresholdDB/10)
}

// TxAttempt describes one MPDU transmission attempt for the link simulator.
type TxAttempt struct {
	// Rate is the PHY rate for this attempt.
	Rate wifi.Rate
	// Retry is the retry index (0 = first attempt).
	Retry int
	// Airtime is the data PPDU duration.
	Airtime time.Duration
}

// Sequencer runs the DCF transmit sequence for a single saturated sender:
// it produces the attempt schedule for each MSDU given per-attempt outcomes
// and accumulates air/idle time.
type Sequencer struct {
	backoff *Backoff
	arf     *ARF
	elapsed time.Duration
	// Failures counts consecutive MSDU (not attempt) failures for
	// link-drop detection.
	consecutiveMSDUFailures int
}

// NewSequencer returns a sequencer starting at the given rate.
func NewSequencer(start wifi.Rate, seed int64) *Sequencer {
	return &Sequencer{backoff: NewBackoff(seed), arf: NewARF(start)}
}

// Elapsed returns the accumulated simulated air/idle time.
func (s *Sequencer) Elapsed() time.Duration { return s.elapsed }

// AdvanceIdle adds idle (deferred) time, e.g. while CCA reports busy.
func (s *Sequencer) AdvanceIdle(d time.Duration) {
	if d > 0 {
		s.elapsed += d
	}
}

// Rate returns the current adapted rate.
func (s *Sequencer) Rate() wifi.Rate { return s.arf.Rate() }

// ConsecutiveMSDUFailures reports the current failure run length.
func (s *Sequencer) ConsecutiveMSDUFailures() int { return s.consecutiveMSDUFailures }

// SendMSDU runs the retransmission loop for one MSDU of payloadBytes. The
// try callback performs the actual over-the-air exchange for one attempt
// and reports whether the ACK came back. SendMSDU returns whether the MSDU
// was delivered and updates timing, backoff and rate adaptation.
func (s *Sequencer) SendMSDU(payloadBytes int, try func(TxAttempt) bool) (bool, error) {
	if try == nil {
		return false, fmt.Errorf("mac: nil attempt callback")
	}
	for retry := 0; retry <= RetryLimit; retry++ {
		rate := s.arf.Rate()
		air := FrameAirtime(rate, payloadBytes)
		s.elapsed += DIFS + s.backoff.Draw()
		attempt := TxAttempt{Rate: rate, Retry: retry, Airtime: air}
		ok := try(attempt)
		s.elapsed += air
		if ok {
			s.elapsed += SIFS + AckAirtime()
			s.backoff.OnSuccess()
			s.arf.OnResult(true)
			s.consecutiveMSDUFailures = 0
			return true, nil
		}
		s.elapsed += AckTimeout
		s.backoff.OnFailure()
		s.arf.OnResult(false)
	}
	s.consecutiveMSDUFailures++
	return false, nil
}
