package mac

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dsp"
	"repro/internal/wifi"
)

func TestBeaconRoundTrip(t *testing.T) {
	in := Beacon{Timestamp: 123456789, IntervalTU: 100, SSID: "drexel-dwsl"}
	mpdu, err := BuildBeacon(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseBeacon(mpdu)
	if err != nil {
		t.Fatal(err)
	}
	if *out != in {
		t.Errorf("round trip %+v != %+v", out, in)
	}
}

func TestBeaconRoundTripProperty(t *testing.T) {
	f := func(ts uint64, tu uint16, ssidRaw []byte) bool {
		ssid := strings.Map(func(r rune) rune {
			if r < 32 || r > 126 {
				return 'x'
			}
			return r
		}, string(ssidRaw))
		if len(ssid) > MaxSSIDLen {
			ssid = ssid[:MaxSSIDLen]
		}
		in := Beacon{Timestamp: ts, IntervalTU: tu, SSID: ssid}
		mpdu, err := BuildBeacon(in)
		if err != nil {
			return false
		}
		out, err := ParseBeacon(mpdu)
		return err == nil && *out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBeaconValidation(t *testing.T) {
	if _, err := BuildBeacon(Beacon{SSID: strings.Repeat("a", 33)}); err == nil {
		t.Error("oversize SSID accepted")
	}
	if _, err := ParseBeacon([]byte{1, 2, 3}); err == nil {
		t.Error("truncated beacon accepted")
	}
	mpdu, _ := BuildBeacon(Beacon{SSID: "x"})
	mpdu[0] = FrameData
	if _, err := ParseBeacon(mpdu); err == nil {
		t.Error("data frame parsed as beacon")
	}
}

func TestBeaconOverTheAir(t *testing.T) {
	// A beacon must survive the real PHY at the basic rate.
	mpdu, err := BuildBeacon(Beacon{Timestamp: 777, IntervalTU: 100, SSID: "dwsl"})
	if err != nil {
		t.Fatal(err)
	}
	wave, err := wifi.Modulate(wifi.AppendFCS(mpdu), wifi.TxConfig{Rate: wifi.Rate6, ScramblerSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rx := make(dsp.Samples, 200+len(wave)+100)
	copy(rx[200:], wave)
	rng := rand.New(rand.NewSource(1))
	for i := range rx {
		rx[i] += complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-3
	}
	res, err := wifi.Demodulate(rx, 200+160, 200+224)
	if err != nil {
		t.Fatal(err)
	}
	body, ok := wifi.CheckFCS(res.PSDU)
	if !ok {
		t.Fatal("beacon FCS failed")
	}
	got, err := ParseBeacon(body)
	if err != nil || got.SSID != "dwsl" {
		t.Errorf("over-the-air beacon: %+v, %v", got, err)
	}
}

func TestAssociationLifecycle(t *testing.T) {
	a := NewAssociation()
	if a.State() != StateScanning {
		t.Fatal("should start scanning")
	}
	a.OnBeacon()
	if a.State() != StateAssociated {
		t.Fatal("beacon should associate")
	}
	// Healthy beaconing: advance 50 intervals with beacons.
	for i := 0; i < 50; i++ {
		a.Advance(BeaconInterval)
		a.OnBeacon()
	}
	if a.State() != StateAssociated || a.Drops() != 0 {
		t.Errorf("healthy link dropped: %v drops=%d", a.State(), a.Drops())
	}
	// Jammer kills all beacons: 7 missed -> disassociation.
	a.Advance(7 * BeaconInterval)
	if a.State() != StateScanning {
		t.Errorf("state %v after 7 missed beacons, want scanning", a.State())
	}
	if a.Drops() != 1 {
		t.Errorf("drops = %d, want 1", a.Drops())
	}
	// Jammer gone: first beacon reassociates.
	a.OnBeacon()
	if a.State() != StateAssociated {
		t.Error("reassociation failed")
	}
}

func TestAssociationPartialMisses(t *testing.T) {
	a := NewAssociation()
	a.OnBeacon()
	// Miss 5, catch one, miss 5 again: never hits 7 consecutive.
	a.Advance(5 * BeaconInterval)
	if a.MissedBeacons() != 5 {
		t.Errorf("missed = %d, want 5", a.MissedBeacons())
	}
	a.OnBeacon()
	a.Advance(5 * BeaconInterval)
	if a.State() != StateAssociated {
		t.Error("dropped despite non-consecutive misses")
	}
	// Negative/zero advance is a no-op.
	a.Advance(-time.Second)
	if a.State() != StateAssociated {
		t.Error("negative advance changed state")
	}
}

func TestAssocStateStrings(t *testing.T) {
	if StateScanning.String() != "scanning" || StateAssociated.String() != "associated" {
		t.Error("state strings")
	}
	if AssocState(7).String() != "AssocState(7)" {
		t.Error("unknown state string")
	}
}
