package mac

import (
	"testing"
	"time"

	"repro/internal/wifi"
)

func TestTimingConstants(t *testing.T) {
	if DIFS != 28*time.Microsecond {
		t.Errorf("DIFS = %v, want 28µs", DIFS)
	}
	if SIFS != 10*time.Microsecond || SlotTime != 9*time.Microsecond {
		t.Error("SIFS/slot wrong for 802.11g short slot")
	}
}

func TestFrameAirtime(t *testing.T) {
	// 1470B payload at 54 Mbps: PSDU = 32+1470+4 = 1506 bytes ->
	// (16+12048+6)/216 = 56 symbols -> 320+80+56*80 samples at 20 MSPS.
	want := time.Duration(320+80+56*80) * time.Second / wifi.SampleRate
	if got := FrameAirtime(wifi.Rate54, 1470); got != want {
		t.Errorf("FrameAirtime = %v, want %v", got, want)
	}
	// Lower rate takes longer.
	if FrameAirtime(wifi.Rate6, 1470) <= FrameAirtime(wifi.Rate54, 1470) {
		t.Error("6 Mbps should be slower than 54")
	}
}

func TestAckAirtime(t *testing.T) {
	// 14-byte ACK at 24 Mbps: (16+112+6)/96 = 2 symbols -> 560 samples = 28µs.
	if got := AckAirtime(); got != 28*time.Microsecond {
		t.Errorf("AckAirtime = %v, want 28µs", got)
	}
}

func TestBackoffDoublesAndResets(t *testing.T) {
	b := NewBackoff(1)
	if b.CW() != CWMin {
		t.Fatalf("initial CW %d", b.CW())
	}
	b.OnFailure()
	if b.CW() != 2*CWMin+1 {
		t.Errorf("CW after failure %d, want %d", b.CW(), 2*CWMin+1)
	}
	for i := 0; i < 10; i++ {
		b.OnFailure()
	}
	if b.CW() != CWMax {
		t.Errorf("CW must saturate at %d, got %d", CWMax, b.CW())
	}
	b.OnSuccess()
	if b.CW() != CWMin {
		t.Error("CW must reset on success")
	}
}

func TestBackoffDrawWithinWindow(t *testing.T) {
	b := NewBackoff(2)
	for i := 0; i < 1000; i++ {
		d := b.Draw()
		if d < 0 || d > time.Duration(CWMin)*SlotTime {
			t.Fatalf("draw %v outside [0, %v]", d, time.Duration(CWMin)*SlotTime)
		}
	}
}

func TestARFStepsDownAndUp(t *testing.T) {
	a := NewARF(wifi.Rate54)
	a.OnResult(false)
	a.OnResult(false)
	if a.Rate() != wifi.Rate48 {
		t.Errorf("after 2 failures rate %v, want 48Mbps", a.Rate())
	}
	for i := 0; i < 10; i++ {
		a.OnResult(true)
	}
	if a.Rate() != wifi.Rate54 {
		t.Errorf("after 10 successes rate %v, want 54Mbps", a.Rate())
	}
}

func TestARFBounds(t *testing.T) {
	a := NewARF(wifi.Rate6)
	for i := 0; i < 20; i++ {
		a.OnResult(false)
	}
	if a.Rate() != wifi.Rate6 {
		t.Error("rate must not fall below 6 Mbps")
	}
	b := NewARF(wifi.Rate54)
	for i := 0; i < 100; i++ {
		b.OnResult(true)
	}
	if b.Rate() != wifi.Rate54 {
		t.Error("rate must not rise above 54 Mbps")
	}
}

func TestCCA(t *testing.T) {
	noise := 1e-9
	if CCA(noise, noise) {
		t.Error("noise-floor ambient must be idle")
	}
	if !CCA(noise*1000, noise) { // +30 dB
		t.Error("strong ambient must be busy")
	}
	if CCA(noise*50, noise) { // +17 dB < 20 dB threshold
		t.Error("sub-threshold ambient must be idle")
	}
}

func TestSequencerDeliversFirstTry(t *testing.T) {
	s := NewSequencer(wifi.Rate54, 1)
	ok, err := s.SendMSDU(1470, func(a TxAttempt) bool {
		if a.Retry != 0 || a.Rate != wifi.Rate54 {
			t.Errorf("attempt %+v", a)
		}
		return true
	})
	if err != nil || !ok {
		t.Fatalf("SendMSDU = %v, %v", ok, err)
	}
	// Elapsed covers DIFS + backoff + frame + SIFS + ACK.
	minimum := DIFS + FrameAirtime(wifi.Rate54, 1470) + SIFS + AckAirtime()
	if s.Elapsed() < minimum {
		t.Errorf("elapsed %v < floor %v", s.Elapsed(), minimum)
	}
}

func TestSequencerRetriesAndGivesUp(t *testing.T) {
	s := NewSequencer(wifi.Rate54, 2)
	attempts := 0
	ok, err := s.SendMSDU(100, func(TxAttempt) bool {
		attempts++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("delivered despite all failures")
	}
	if attempts != RetryLimit+1 {
		t.Errorf("%d attempts, want %d", attempts, RetryLimit+1)
	}
	if s.ConsecutiveMSDUFailures() != 1 {
		t.Error("failure run not counted")
	}
	// ARF must have stepped the rate down during the failure burst.
	if s.Rate() >= wifi.Rate54 {
		t.Errorf("rate did not fall: %v", s.Rate())
	}
}

func TestSequencerFailureRunResets(t *testing.T) {
	s := NewSequencer(wifi.Rate24, 3)
	fail := func(TxAttempt) bool { return false }
	okF := func(TxAttempt) bool { return true }
	if _, err := s.SendMSDU(10, fail); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SendMSDU(10, fail); err != nil {
		t.Fatal(err)
	}
	if s.ConsecutiveMSDUFailures() != 2 {
		t.Errorf("failure run %d", s.ConsecutiveMSDUFailures())
	}
	if _, err := s.SendMSDU(10, okF); err != nil {
		t.Fatal(err)
	}
	if s.ConsecutiveMSDUFailures() != 0 {
		t.Error("success did not reset failure run")
	}
}

func TestSequencerNilCallback(t *testing.T) {
	s := NewSequencer(wifi.Rate6, 4)
	if _, err := s.SendMSDU(10, nil); err == nil {
		t.Error("nil callback accepted")
	}
}

func TestAdvanceIdle(t *testing.T) {
	s := NewSequencer(wifi.Rate6, 5)
	s.AdvanceIdle(time.Millisecond)
	s.AdvanceIdle(-time.Second) // ignored
	if s.Elapsed() != time.Millisecond {
		t.Errorf("elapsed %v", s.Elapsed())
	}
}

func TestSaturatedThroughputCeiling(t *testing.T) {
	// With a perfect channel, UDP goodput at 54 Mbps lands in the
	// 25-34 Mbps range the paper reports (~29 Mbps achieved max).
	s := NewSequencer(wifi.Rate54, 6)
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := s.SendMSDU(1470, func(TxAttempt) bool { return true }); err != nil {
			t.Fatal(err)
		}
	}
	mbps := float64(n) * 1470 * 8 / s.Elapsed().Seconds() / 1e6
	if mbps < 25 || mbps > 34 {
		t.Errorf("clean-channel goodput %.1f Mbps, want 25-34", mbps)
	}
}
