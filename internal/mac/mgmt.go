package mac

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Management-plane modeling: beacon frames and the client association
// state machine. This is what turns sustained jamming into the paper's
// observed "connection to the access point was lost" — a client that
// misses enough consecutive beacons tears the association down and must
// rescan, while one whose data frames die but whose beacons survive keeps
// reporting an (apparently) healthy link, exactly the §4.3 stealth
// asymmetry between continuous and reactive jammers.

// BeaconInterval is the standard default: 100 TU of 1024 µs.
const BeaconInterval = 102400 * time.Microsecond

// Management frame subtypes (frame-control byte 0).
const (
	FrameBeacon = 0x80
	FrameData   = 0x08
)

// MaxSSIDLen bounds the SSID information element.
const MaxSSIDLen = 32

// Beacon is a parsed beacon frame.
type Beacon struct {
	// Timestamp is the AP's TSF timer at transmission (µs).
	Timestamp uint64
	// IntervalTU is the beacon interval in time units.
	IntervalTU uint16
	// SSID is the network name.
	SSID string
}

// BuildBeacon serializes a beacon MPDU (without FCS): a 24-byte management
// header, fixed parameters (timestamp, interval, capability) and the SSID
// element.
func BuildBeacon(b Beacon) ([]byte, error) {
	if len(b.SSID) > MaxSSIDLen {
		return nil, fmt.Errorf("mac: SSID %q exceeds %d bytes", b.SSID, MaxSSIDLen)
	}
	out := make([]byte, 24, 24+12+2+len(b.SSID))
	out[0] = FrameBeacon
	// Broadcast destination.
	for i := 4; i < 10; i++ {
		out[i] = 0xFF
	}
	var fixed [12]byte
	binary.LittleEndian.PutUint64(fixed[0:], b.Timestamp)
	binary.LittleEndian.PutUint16(fixed[8:], b.IntervalTU)
	binary.LittleEndian.PutUint16(fixed[10:], 0x0401) // ESS + short slot
	out = append(out, fixed[:]...)
	out = append(out, 0x00, byte(len(b.SSID)))
	out = append(out, b.SSID...)
	return out, nil
}

// ParseBeacon inverts BuildBeacon.
func ParseBeacon(mpdu []byte) (*Beacon, error) {
	if len(mpdu) < 24+12+2 {
		return nil, fmt.Errorf("mac: beacon truncated (%d bytes)", len(mpdu))
	}
	if mpdu[0] != FrameBeacon {
		return nil, fmt.Errorf("mac: frame control %#x is not a beacon", mpdu[0])
	}
	body := mpdu[24:]
	b := &Beacon{
		Timestamp:  binary.LittleEndian.Uint64(body[0:]),
		IntervalTU: binary.LittleEndian.Uint16(body[8:]),
	}
	ie := body[12:]
	if ie[0] != 0x00 {
		return nil, fmt.Errorf("mac: first IE %#x is not SSID", ie[0])
	}
	n := int(ie[1])
	if n > MaxSSIDLen || len(ie) < 2+n {
		return nil, fmt.Errorf("mac: malformed SSID element")
	}
	b.SSID = string(ie[2 : 2+n])
	return b, nil
}

// AssocState is the client's connection state.
type AssocState uint8

// Client association states.
const (
	// StateScanning: not associated, hunting for beacons.
	StateScanning AssocState = iota
	// StateAssociated: holding a live association.
	StateAssociated
)

func (s AssocState) String() string {
	switch s {
	case StateScanning:
		return "scanning"
	case StateAssociated:
		return "associated"
	default:
		return fmt.Sprintf("AssocState(%d)", uint8(s))
	}
}

// Association tracks a client's link liveness from beacon arrivals. The
// zero value starts scanning.
type Association struct {
	// MaxMissedBeacons before the client declares the AP gone (typical
	// firmware uses ~7).
	MaxMissedBeacons int

	state      AssocState
	lastBeacon time.Duration // station clock at last beacon
	now        time.Duration
	missed     int
	drops      int
}

// NewAssociation returns a state machine with the default beacon-loss
// threshold.
func NewAssociation() *Association {
	return &Association{MaxMissedBeacons: 7}
}

// State returns the current association state.
func (a *Association) State() AssocState { return a.state }

// Drops counts how many times the association was lost.
func (a *Association) Drops() int { return a.drops }

// MissedBeacons returns the current consecutive-miss count.
func (a *Association) MissedBeacons() int { return a.missed }

// OnBeacon records a successfully decoded beacon at the current clock; a
// scanning client (re)associates immediately.
func (a *Association) OnBeacon() {
	a.missed = 0
	a.lastBeacon = a.now
	if a.state == StateScanning {
		a.state = StateAssociated
	}
}

// Advance moves the station clock forward and accounts for beacons that
// should have arrived but did not.
func (a *Association) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	a.now += d
	if a.state != StateAssociated {
		return
	}
	max := a.MaxMissedBeacons
	if max <= 0 {
		max = 7
	}
	for a.now-a.lastBeacon >= BeaconInterval {
		a.lastBeacon += BeaconInterval
		a.missed++
		if a.missed >= max {
			a.state = StateScanning
			a.drops++
			a.missed = 0
			return
		}
	}
}
