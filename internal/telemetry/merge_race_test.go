package telemetry

import (
	"sync"
	"testing"
)

// TestCounterMergeRace is the fleet-aggregation tear audit: one goroutine
// plays the datapath hot path incrementing a cell's counter block, while
// another repeatedly snapshots it and merges the snapshot into a fleet
// accumulator. Under -race this proves the snapshot/merge path performs no
// non-atomic multi-word reads; the monotonicity check proves no snapshot
// ever observes a torn intermediate going backwards.
func TestCounterMergeRace(t *testing.T) {
	var cell Counters
	var fleetAcc Counters
	const iters = 20000

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			cell.Samples.Add(1)
			cell.JamTriggers.Add(1)
			cell.XCorrDetections.Add(1)
			cell.EnergyHighDetections.Add(1)
			cell.JamSamples.Add(3)
		}
	}()
	var lastSamples uint64
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s := cell.Snapshot()
			if s.Samples < lastSamples {
				t.Errorf("snapshot went backwards: %d after %d", s.Samples, lastSamples)
				return
			}
			lastSamples = s.Samples
			fleetAcc.Add(s)
		}
	}()
	wg.Wait()

	final := cell.Snapshot()
	if final.Samples != iters || final.JamSamples != 3*iters {
		t.Fatalf("hot path lost increments: %+v", final)
	}
	// The accumulator holds 200 partial merges; only sanity-check that the
	// adds themselves were atomic (a torn add would corrupt the total in a
	// way unrelated to any snapshot value, caught by -race anyway).
	if acc := fleetAcc.Snapshot(); acc.Samples < lastSamples {
		t.Fatalf("accumulator lost the last merge: %d < %d", acc.Samples, lastSamples)
	}
}

// TestLiveMergeWhileObserving covers the histogram half of the same audit:
// Live.Merge folds a snapshot into a recorder whose hot path keeps
// observing events concurrently. Counts must add up exactly afterwards.
func TestLiveMergeWhileObserving(t *testing.T) {
	src := NewLive(64)
	for i := 0; i < 100; i++ {
		src.Event(EvTriggerFire, uint64(i*10), 0, 1)
		src.Event(EvJamRFOn, uint64(i*10+5), 0, 1)
	}
	snap := src.Snapshot()

	dst := NewLive(64)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			dst.Event(EvTriggerFire, uint64(i*10), 0, 2)
			dst.Event(EvJamRFOn, uint64(i*10+7), 0, 2)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			dst.Merge(snap)
		}
	}()
	wg.Wait()

	got := dst.Snapshot().Histogram(HistTriggerToRF).Count
	want := uint64(100 + 10*100)
	if got != want {
		t.Fatalf("merged trigger→RF count = %d, want %d", got, want)
	}
}
