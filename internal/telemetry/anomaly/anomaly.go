// Package anomaly is the streaming anomaly detector of the observability
// plane: rolling-window EWMA + robust z-score detectors over the handful of
// per-engagement telemetry signals that predict trouble — reaction p99,
// detection probability, false-alarm rate, journal-drop rate and engagement
// duty cycle. A value that strays more than Threshold robust sigmas from the
// rolling mean raises an Alert, which is journaled as a first-class
// EvAnomalyAlert event (so it lands in the Chrome trace and the /metrics
// rollups) and handed to an optional callback — the hook the flight recorder
// arms on.
//
// Everything is deterministic: no wall clock, no randomness. The robust
// scale estimate is an EWMA of absolute deviation scaled by 1.4826 (the
// MAD-to-sigma factor for a normal distribution), so a single outlier
// cannot poison the baseline the way a plain variance EWMA would let it.
package anomaly

import (
	"fmt"
	"math"

	"repro/internal/telemetry"
)

// Metric identifies one watched signal. The numeric value is stable: it is
// journaled in EvAnomalyAlert's Arg high word and appears in trace args.
type Metric uint8

// The watched-signal catalog.
const (
	// MetricReactionP99 is the frame-start→RF-on p99 in clock cycles.
	MetricReactionP99 Metric = iota
	// MetricPd is the detection probability of the current window.
	MetricPd
	// MetricFalseAlarmRate is the noise-only trigger rate per second.
	MetricFalseAlarmRate
	// MetricJournalDropRate is the journal events lost per rollup interval.
	MetricJournalDropRate
	// MetricDutyCycle is jam samples transmitted per sample processed.
	MetricDutyCycle

	numMetrics
)

// String returns the stable report name of the metric.
func (m Metric) String() string {
	switch m {
	case MetricReactionP99:
		return "reaction_p99_cycles"
	case MetricPd:
		return "pd"
	case MetricFalseAlarmRate:
		return "false_alarms_per_sec"
	case MetricJournalDropRate:
		return "journal_drop_rate"
	case MetricDutyCycle:
		return "engagement_duty_cycle"
	default:
		return "metric(?)"
	}
}

// Alert is one detector firing: a watched metric strayed beyond the robust
// z-score threshold of its rolling window.
type Alert struct {
	// Metric is the signal that fired.
	Metric Metric `json:"metric"`
	// Name is the stable metric name (Metric.String(), serialized for
	// consumers that do not know the enum).
	Name string `json:"name"`
	// Cycle is the hardware-clock cycle the offending observation carried.
	Cycle uint64 `json:"cycle"`
	// Value is the observed value, Mean the rolling baseline it strayed
	// from, and Score the robust z-score that tripped the threshold.
	Value float64 `json:"value"`
	Mean  float64 `json:"mean"`
	Score float64 `json:"score"`
}

// Config tunes the detector bank.
type Config struct {
	// Window is the effective rolling-window length in observations; the
	// EWMA decay is 2/(Window+1). Default 32.
	Window int
	// Warmup is the number of observations a series must accumulate before
	// it may alert (a baseline estimated from two points is noise).
	// Default 8.
	Warmup int
	// Threshold is the robust z-score above which an observation alerts.
	// Default 4.
	Threshold float64
	// Cooldown suppresses repeat alerts on the same metric for this many
	// observations after one fires, so a level shift raises one alert, not
	// an alert per sample while the EWMA catches up. Default 8.
	Cooldown int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.Warmup <= 0 {
		c.Warmup = 8
	}
	if c.Threshold <= 0 {
		c.Threshold = 4
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 8
	}
	return c
}

// madToSigma converts a mean absolute deviation to a normal-equivalent
// standard deviation.
const madToSigma = 1.4826

// series is one metric's rolling state.
type series struct {
	n        uint64  // observations seen
	mean     float64 // EWMA of the value
	dev      float64 // EWMA of |value - mean|
	cooldown int     // observations left before the series may re-alert
}

// Detector is a bank of rolling-window detectors, one per watched metric.
// Not safe for concurrent use; the caller's rollup loop owns it.
type Detector struct {
	cfg    Config
	rec    telemetry.Recorder // journal sink for alerts (never nil)
	series [numMetrics]series
	alerts []Alert
	// OnAlert, when set, is invoked for every alert after it is journaled —
	// the flight-recorder arming hook.
	OnAlert func(Alert)

	// FeedSnapshot deltas.
	prev    telemetry.Snapshot
	hasPrev bool
}

// New returns a detector bank journaling alerts into rec (pass
// telemetry.Discard to disable journaling).
func New(rec telemetry.Recorder, cfg Config) *Detector {
	if rec == nil {
		rec = telemetry.Discard
	}
	return &Detector{cfg: cfg.withDefaults(), rec: rec}
}

// Observe feeds one observation of a watched metric at the given hardware
// cycle and reports whether it raised an alert.
func (d *Detector) Observe(m Metric, cycle uint64, v float64) (Alert, bool) {
	if m >= numMetrics || math.IsNaN(v) || math.IsInf(v, 0) {
		return Alert{}, false
	}
	s := &d.series[m]
	s.n++
	if s.n == 1 {
		s.mean, s.dev = v, 0
		return Alert{}, false
	}
	// satScore stands in for an infinite z-score when the baseline has zero
	// spread (a perfectly constant series): any movement is maximally
	// anomalous, but the score must stay finite for JSON serialization.
	const satScore = 1e6
	score := 0.0
	sigma := madToSigma * s.dev
	switch {
	case sigma > 0:
		score = math.Abs(v-s.mean) / sigma
		if score > satScore {
			score = satScore
		}
	case v != s.mean:
		score = satScore
	}
	fired := false
	var alert Alert
	if s.cooldown > 0 {
		s.cooldown--
	} else if s.n > uint64(d.cfg.Warmup) && score > d.cfg.Threshold {
		alert = Alert{
			Metric: m, Name: m.String(), Cycle: cycle,
			Value: v, Mean: s.mean, Score: score,
		}
		d.alerts = append(d.alerts, alert)
		s.cooldown = d.cfg.Cooldown
		d.rec.Event(telemetry.EvAnomalyAlert, cycle, EncodeArg(m, score), 0)
		fired = true
	}
	// Update the rolling baseline after the decision, so the offending
	// observation does not vouch for itself.
	alpha := 2 / float64(d.cfg.Window+1)
	s.dev += alpha * (math.Abs(v-s.mean) - s.dev)
	s.mean += alpha * (v - s.mean)
	if fired && d.OnAlert != nil {
		d.OnAlert(alert)
	}
	return alert, fired
}

// FeedSnapshot derives the snapshot-borne watched metrics from the delta
// between this snapshot and the previous one, and observes each: reaction
// p99 (level), journal-drop rate and engagement duty cycle (both per-delta
// rates). Pd and the false-alarm rate come from the verdict layer and are
// fed through Observe directly by callers that have them. The first call
// establishes the delta baseline and observes nothing.
func (d *Detector) FeedSnapshot(cycle uint64, s telemetry.Snapshot) []Alert {
	before := len(d.alerts)
	if d.hasPrev {
		if h := s.Histogram(telemetry.HistReaction); h.Count > 0 {
			d.Observe(MetricReactionP99, cycle, float64(h.P99))
		}
		d.Observe(MetricJournalDropRate, cycle, float64(s.Dropped-d.prev.Dropped))
		if ds := s.Counters.Samples - d.prev.Counters.Samples; ds > 0 {
			dj := s.Counters.JamSamples - d.prev.Counters.JamSamples
			d.Observe(MetricDutyCycle, cycle, float64(dj)/float64(ds))
		}
	}
	d.prev, d.hasPrev = s, true
	return d.alerts[before:]
}

// Alerts returns every alert raised so far, in order.
func (d *Detector) Alerts() []Alert { return d.alerts }

// EncodeArg packs a metric and score into an EvAnomalyAlert journal Arg:
// metric index in the high word, the score in milli-sigma (saturated) in
// the low word.
func EncodeArg(m Metric, score float64) uint64 {
	mz := score * 1000
	if mz > math.MaxUint32 {
		mz = math.MaxUint32
	}
	return uint64(m)<<32 | uint64(mz)
}

// DecodeArg unpacks an EvAnomalyAlert journal Arg.
func DecodeArg(arg uint64) (m Metric, milliZ uint32) {
	return Metric(arg >> 32), uint32(arg & 0xFFFFFFFF)
}

// WriteAlert renders one alert as a log line.
func WriteAlert(a Alert) string {
	return fmt.Sprintf("anomaly: %s = %g strayed %.1f sigma from rolling mean %g at cycle %d",
		a.Name, a.Value, a.Score, a.Mean, a.Cycle)
}
