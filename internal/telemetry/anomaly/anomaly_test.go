package anomaly

import (
	"math"
	"testing"

	"repro/internal/telemetry"
)

// feedStable feeds n alternating observations around a stable level.
func feedStable(d *Detector, m Metric, n int, level float64) {
	for i := 0; i < n; i++ {
		v := level + float64(i%2)*0.1 - 0.05
		if _, fired := d.Observe(m, uint64(i), v); fired {
			panic("stable stream alerted")
		}
	}
}

func TestStableStreamNeverAlerts(t *testing.T) {
	d := New(nil, Config{})
	feedStable(d, MetricReactionP99, 500, 140)
	if len(d.Alerts()) != 0 {
		t.Fatalf("stable stream raised %d alerts", len(d.Alerts()))
	}
}

func TestLevelShiftAlertsOnce(t *testing.T) {
	d := New(nil, Config{Cooldown: 100})
	feedStable(d, MetricReactionP99, 64, 140)
	// A 10x tail-latency excursion must fire on the first bad observation.
	a, fired := d.Observe(MetricReactionP99, 9999, 1400)
	if !fired {
		t.Fatal("10x excursion did not alert")
	}
	if a.Metric != MetricReactionP99 || a.Cycle != 9999 || a.Value != 1400 {
		t.Fatalf("alert = %+v", a)
	}
	if a.Score <= 4 {
		t.Errorf("score = %g, want > threshold 4", a.Score)
	}
	// Cooldown suppresses the echo while the EWMA catches up.
	if _, fired := d.Observe(MetricReactionP99, 10000, 1400); fired {
		t.Error("alert re-fired inside cooldown")
	}
	if got := len(d.Alerts()); got != 1 {
		t.Errorf("alerts = %d, want 1", got)
	}
}

func TestWarmupSuppressesEarlyAlerts(t *testing.T) {
	d := New(nil, Config{Warmup: 8})
	// Wild early values: no baseline yet, so no alerts allowed.
	for i, v := range []float64{1, 1000, 2, 900, 3} {
		if _, fired := d.Observe(MetricDutyCycle, uint64(i), v); fired {
			t.Fatalf("alert during warmup at observation %d", i)
		}
	}
}

func TestAlertJournaledAsFirstClassEvent(t *testing.T) {
	live := telemetry.NewLive(64)
	d := New(live, Config{})
	feedStable(d, MetricFalseAlarmRate, 64, 0.1)
	if _, fired := d.Observe(MetricFalseAlarmRate, 777, 50); !fired {
		t.Fatal("excursion did not alert")
	}
	if got := live.EventCount(telemetry.EvAnomalyAlert); got != 1 {
		t.Fatalf("journal holds %d EvAnomalyAlert events, want 1", got)
	}
	evs := live.Events()
	ev := evs[len(evs)-1]
	if ev.Kind != telemetry.EvAnomalyAlert || ev.Cycle != 777 {
		t.Fatalf("journaled event = %+v", ev)
	}
	m, mz := DecodeArg(ev.Arg)
	if m != MetricFalseAlarmRate {
		t.Errorf("decoded metric = %v", m)
	}
	if mz < 4000 {
		t.Errorf("decoded milli-z = %d, want >= 4000 (threshold)", mz)
	}
}

func TestOnAlertHookFires(t *testing.T) {
	d := New(nil, Config{})
	var hooked []Alert
	d.OnAlert = func(a Alert) { hooked = append(hooked, a) }
	feedStable(d, MetricPd, 64, 0.98)
	if _, fired := d.Observe(MetricPd, 5, 0.2); !fired {
		t.Fatal("Pd collapse did not alert")
	}
	if len(hooked) != 1 || hooked[0].Metric != MetricPd {
		t.Fatalf("hook saw %+v", hooked)
	}
}

func TestNonFiniteObservationsIgnored(t *testing.T) {
	d := New(nil, Config{})
	feedStable(d, MetricDutyCycle, 64, 0.5)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, fired := d.Observe(MetricDutyCycle, 1, v); fired {
			t.Errorf("non-finite value %v alerted", v)
		}
	}
	// Baseline must survive the garbage: a real excursion still fires.
	if _, fired := d.Observe(MetricDutyCycle, 2, 50); !fired {
		t.Error("excursion after non-finite values did not alert")
	}
}

func TestFeedSnapshotDerivesMetrics(t *testing.T) {
	live := telemetry.NewLive(256)
	d := New(live, Config{Window: 8, Warmup: 4})

	// Synthesize rollup snapshots with a stable duty cycle, then a spike.
	c := &telemetry.Counters{}
	live.BindCounters(c)
	var cycle uint64
	step := func(samples, jam uint64) []Alert {
		c.Samples.Add(samples)
		c.JamSamples.Add(jam)
		cycle += samples
		return d.FeedSnapshot(cycle, live.Snapshot())
	}
	for i := 0; i < 32; i++ {
		if got := step(10000, 100); len(got) != 0 {
			t.Fatalf("stable rollup %d alerted: %+v", i, got)
		}
	}
	// Duty cycle jumps 1% → 60%: the jammer is stuck on.
	alerts := step(10000, 6000)
	if len(alerts) != 1 || alerts[0].Metric != MetricDutyCycle {
		t.Fatalf("alerts = %+v, want one duty-cycle alert", alerts)
	}
	if live.EventCount(telemetry.EvAnomalyAlert) != 1 {
		t.Error("snapshot-derived alert not journaled")
	}
}

func TestMetricNamesStable(t *testing.T) {
	want := map[Metric]string{
		MetricReactionP99:     "reaction_p99_cycles",
		MetricPd:              "pd",
		MetricFalseAlarmRate:  "false_alarms_per_sec",
		MetricJournalDropRate: "journal_drop_rate",
		MetricDutyCycle:       "engagement_duty_cycle",
	}
	for m, name := range want {
		if m.String() != name {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), name)
		}
	}
}
