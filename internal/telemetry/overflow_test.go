package telemetry

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestJournalOverflowExposedOnMetrics fills a deliberately shallow journal
// past its ring depth and checks the overflow is visible everywhere an
// operator would look: Live.Dropped, the snapshot, and the /metrics
// exposition (journal_dropped_total) — alongside the engagement counter so
// a scrape can tell "journal truncated" apart from "nothing happened".
func TestJournalOverflowExposedOnMetrics(t *testing.T) {
	l := NewLive(8)
	for i := 0; i < 20; i++ {
		l.Event(EvEnergyHighEdge, uint64(100*i), 0, uint32(i+1))
		l.Event(EvHoldoffRelease, uint64(100*i+50), 0, uint32(i+1))
	}
	const want = 40 - 8
	if got := l.Dropped(); got != want {
		t.Fatalf("Dropped() = %d, want %d", got, want)
	}
	s := l.Snapshot()
	if s.Dropped != want {
		t.Errorf("snapshot Dropped = %d, want %d", s.Dropped, want)
	}
	if s.Engagements != 20 {
		t.Errorf("snapshot Engagements = %d, want 20 (counted, not journal-limited)", s.Engagements)
	}

	rec := httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, line := range []string{
		"reactivejam_journal_dropped_total 32",
		"reactivejam_engagements_total 20",
		"reactivejam_journal_events 8",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("/metrics missing %q\n%s", line, body)
		}
	}
}

// TestEngagementCounterSurvivesOverflow: the engagement count comes from a
// counter incremented at append time, so it must keep the true total even
// when the EvHoldoffRelease events themselves were evicted from the ring.
func TestEngagementCounterSurvivesOverflow(t *testing.T) {
	l := NewLive(4)
	for i := 0; i < 10; i++ {
		l.Event(EvHoldoffRelease, uint64(i), 0, uint32(i+1))
	}
	// Flood the ring so no release events remain in the journal.
	for i := 0; i < 16; i++ {
		l.Event(EvHostPoll, uint64(1000+i), 0, 0)
	}
	for _, e := range l.Events() {
		if e.Kind == EvHoldoffRelease {
			t.Fatal("test setup: release events should have been evicted")
		}
	}
	if s := l.Snapshot(); s.Engagements != 10 {
		t.Errorf("Engagements = %d, want 10 despite eviction", s.Engagements)
	}
}

// TestLiveConcurrentMergeAndExport races the APIs added for the verdict
// and span layers — Merge of worker snapshots, Dropped reads, and Chrome
// trace export — against a concurrently appending datapath. Run under
// -race by `make ci`.
func TestLiveConcurrentMergeAndExport(t *testing.T) {
	l := NewLive(128)
	var c Counters
	l.BindCounters(&c)

	worker := NewLive(128)
	for i := 0; i < 32; i++ {
		drive(worker, uint64(i)*3000)
		worker.Event(EvHoldoffRelease, uint64(i)*3000+2900, 0, uint32(i+1))
	}
	ws := worker.Snapshot()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				switch g {
				case 0:
					drive(l, uint64(i)*2000)
					l.Event(EvHoldoffRelease, uint64(i)*2000+1900, 0, uint32(i+1))
				case 1:
					l.Merge(ws)
				case 2:
					_ = l.Dropped()
					_ = l.Snapshot().Engagements
				default:
					var buf bytes.Buffer
					_ = l.WriteTrace(&buf)
				}
			}
		}(g)
	}
	wg.Wait()

	// Merge folds histograms only, so engagements are the 300 local releases.
	if got := l.Snapshot().Engagements; got != 300 {
		t.Errorf("Engagements = %d, want 300 (Merge must not double-count)", got)
	}
	// Each merge folded the worker's 32 reaction observations on top of the
	// 300 local ones.
	if got := l.Snapshot().Histogram(HistReaction).Count; got != 300*32+300 {
		t.Errorf("merged reaction count = %d, want %d", got, 300*32+300)
	}
}
