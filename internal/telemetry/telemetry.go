// Package telemetry is the observability layer of the datapath: typed
// counters, log2-bucketed latency histograms, and a bounded event journal,
// all designed to cost nothing on the sample-clocked hot path.
//
// The paper's headline claims are timing claims — 80 ns trigger initiation,
// 1.28 µs / 2.56 µs detection latency — so the instrumentation is built
// around the hardware clock: every event carries the 100 MHz cycle count at
// which it occurred, histograms are kept in clock ticks, and the journal can
// be exported as Chrome trace_event JSON for chrome://tracing / Perfetto.
//
// Two recorder implementations exist: Nop (the default everywhere) makes
// every instrumentation point free apart from an interface call on the rare
// event edges, and Live captures everything. The datapath's plain counters
// (samples, detections, triggers) are *not* routed through the Recorder
// interface — they live in a Counters struct that the core increments
// directly and that both core.Stats and the exposition endpoint read, so the
// two can never drift.
package telemetry

// EventKind identifies one kind of datapath event in the journal.
type EventKind uint8

// The event taxonomy of the datapath. Each event carries the hardware-clock
// cycle at which it occurred and one kind-specific argument.
const (
	// EvFrameStart marks the first sample of an injected frame entering the
	// core (emitted by measurement harnesses, not by the datapath itself).
	// Arg: unused.
	EvFrameStart EventKind = iota
	// EvXCorrEdge is a cross-correlator detection edge. Arg: unused.
	EvXCorrEdge
	// EvEnergyHighEdge is an energy-rise detection edge. Arg: unused.
	EvEnergyHighEdge
	// EvEnergyLowEdge is an energy-fall detection edge. Arg: unused.
	EvEnergyLowEdge
	// EvTriggerArm records the trigger state machine leaving idle.
	// Arg: the stage reached.
	EvTriggerArm
	// EvTriggerStage records an armed state machine advancing a stage.
	// Arg: the stage reached.
	EvTriggerStage
	// EvTriggerAbandon records a window expiry abandoning a partial
	// sequence. Arg: the stage abandoned from.
	EvTriggerAbandon
	// EvTriggerFire records a completed trigger (either the state machine
	// sequence or a FusionAny hit). Arg: unused.
	EvTriggerFire
	// EvJamDelay records the jammer entering its surgical delay phase.
	// Arg: unused.
	EvJamDelay
	// EvJamInit records the jammer starting to fill the DUC pipeline.
	// Arg: unused.
	EvJamInit
	// EvJamRFOn records the first jamming sample reaching RF. Arg: unused.
	EvJamRFOn
	// EvJamRFOff records the end of a jamming burst. Arg: unused.
	EvJamRFOff
	// EvHoldoffRelease closes a detection engagement: the jammer is idle
	// again and the detector holdoff has elapsed, so the datapath can
	// service a new packet. Arg: unused.
	EvHoldoffRelease
	// EvRegWrite records a user register-bus write.
	// Arg: address<<32 | value.
	EvRegWrite
	// EvHostPoll records the host application polling the feedback
	// counters. Arg: unused.
	EvHostPoll
	// EvAnomalyAlert records a streaming anomaly detector firing on a
	// watched metric (internal/telemetry/anomaly).
	// Arg: metric index<<32 | scaled robust z-score (milli-sigma).
	EvAnomalyAlert
	// EvFlightDump records the flight recorder capturing an incident dump
	// (internal/telemetry/flight). Arg: the trigger kind.
	EvFlightDump

	numEventKinds
)

func (k EventKind) String() string {
	switch k {
	case EvFrameStart:
		return "frame-start"
	case EvXCorrEdge:
		return "xcorr-edge"
	case EvEnergyHighEdge:
		return "energy-high-edge"
	case EvEnergyLowEdge:
		return "energy-low-edge"
	case EvTriggerArm:
		return "trigger-arm"
	case EvTriggerStage:
		return "trigger-stage"
	case EvTriggerAbandon:
		return "trigger-abandon"
	case EvTriggerFire:
		return "trigger-fire"
	case EvJamDelay:
		return "jam-delay"
	case EvJamInit:
		return "jam-init"
	case EvJamRFOn:
		return "jam-rf-on"
	case EvJamRFOff:
		return "jam-rf-off"
	case EvHoldoffRelease:
		return "holdoff-release"
	case EvRegWrite:
		return "reg-write"
	case EvHostPoll:
		return "host-poll"
	case EvAnomalyAlert:
		return "anomaly-alert"
	case EvFlightDump:
		return "flight-dump"
	default:
		return "event(?)"
	}
}

// Event is one journal entry: what happened, at which hardware-clock cycle,
// with a kind-specific argument, and — for sample-clocked datapath events —
// the detection engagement it belongs to.
type Event struct {
	// Cycle is the 100 MHz hardware clock cycle of the event.
	Cycle uint64
	// Kind identifies the event.
	Kind EventKind
	// Arg carries kind-specific data (register address/value, stage index).
	Arg uint64
	// Eng is the detection-engagement ID the event belongs to, assigned by
	// the core when a detector edge opens an engagement and carried through
	// trigger, jammer and holdoff events until the engagement closes with
	// EvHoldoffRelease. Zero means the event is outside any engagement
	// (frame markers, register writes, host polls).
	Eng uint32
}

// Recorder receives datapath events. Implementations must be safe for the
// concurrency the datapath exhibits: sample-clocked events arrive from the
// processing goroutine, register-bus and host-poll events may arrive from a
// host goroutine concurrently.
type Recorder interface {
	// Event records one event. It must not allocate: it is called from the
	// sample loop. eng is the engagement ID (0 = none).
	Event(kind EventKind, cycle uint64, arg uint64, eng uint32)
}

// Nop is the default recorder: it discards everything. The zero value is
// ready to use.
type Nop struct{}

// Event discards the event.
func (Nop) Event(EventKind, uint64, uint64, uint32) {}

// Discard is a shared no-op recorder instance.
var Discard Recorder = Nop{}
