package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotone(t *testing.T) {
	// Every value maps into a bucket whose upper bound is >= the value,
	// and bucket indices never decrease with the value.
	prev := -1
	for _, v := range []uint64{0, 1, 2, 15, 16, 17, 31, 32, 33, 100, 1000,
		1 << 20, 1<<20 + 1, 1<<63 - 1, 1 << 63, ^uint64(0)} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d)=%d below previous %d", v, i, prev)
		}
		if u := bucketUpper(i); u < v {
			t.Fatalf("bucketUpper(%d)=%d below value %d", i, u, v)
		}
		if i >= numBuckets {
			t.Fatalf("bucketIndex(%d)=%d out of range", v, i)
		}
		prev = i
	}
}

func TestBucketResolution(t *testing.T) {
	// Log-linear buckets keep relative error under 1/16 above the exact
	// range.
	for _, v := range []uint64{100, 137, 1000, 12345, 1 << 30} {
		u := bucketUpper(bucketIndex(v))
		if float64(u-v) > float64(v)/16+1 {
			t.Errorf("bucket upper %d too far above %d", u, v)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 500 || p50 > 560 {
		t.Errorf("p50 = %d, want ~500 within bucket resolution", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 990 || p99 > 1000 {
		t.Errorf("p99 = %d, want ~990..1000", p99)
	}
	if h.Quantile(1) != 1000 {
		t.Errorf("p100 = %d, want clamped to max 1000", h.Quantile(1))
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestJournalWrapAround(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 6; i++ {
		j.Append(Event{Cycle: uint64(i)})
	}
	ev := j.Events()
	if len(ev) != 4 || j.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", len(ev), j.Dropped())
	}
	for i, e := range ev {
		if e.Cycle != uint64(i+2) {
			t.Fatalf("event %d has cycle %d, want oldest-first 2..5", i, e.Cycle)
		}
	}
}

// drive pushes one synthetic frame's event sequence through the recorder:
// frame start, xcorr edge, energy edge, trigger fire, jam on/off.
func drive(l *Live, base uint64) {
	l.Event(EvFrameStart, base, 0, 0)
	l.Event(EvXCorrEdge, base+256, 0, 1)      // 2.56 µs correlator latency
	l.Event(EvEnergyHighEdge, base+128, 0, 1) // energy window fills earlier
	l.Event(EvTriggerFire, base+128, 0, 1)    // single-stage energy trigger
	l.Event(EvJamInit, base+128, 0, 1)
	l.Event(EvJamRFOn, base+136, 0, 1)        // 8-cycle Tinit
	l.Event(EvJamRFOff, base+136+10000, 0, 1) // 100 µs burst
}

func TestLiveHistogramsFromEventPairs(t *testing.T) {
	l := NewLive(1024)
	for i := 0; i < 100; i++ {
		drive(l, uint64(1_000_000*i))
	}
	s := l.Snapshot()
	re := s.Histogram(HistReaction)
	if re.Count != 100 {
		t.Fatalf("reaction count = %d", re.Count)
	}
	// Frame → RF is 136 cycles = 1.36 µs: the 1.28 µs energy-detection
	// timeline plus the 80 ns Tinit, within bucket resolution.
	if d := re.P50Duration(); d < 1360*time.Nanosecond || d > 1500*time.Nanosecond {
		t.Errorf("reaction p50 = %v, want ~1.36 µs", d)
	}
	tr := s.Histogram(HistTriggerToRF)
	if tr.P50 != 8 {
		t.Errorf("trigger→RF p50 = %d cycles, want exactly 8 (80 ns)", tr.P50)
	}
	bu := s.Histogram(HistJamBurst)
	if bu.Count != 100 || bu.Min != 10000 {
		t.Errorf("burst count=%d min=%d, want 100 bursts of 10000 cycles", bu.Count, bu.Min)
	}
	if s.Histogram(HistXCorrLead).Count != 0 {
		// Energy edge arrived before the xcorr edge here, so no lead pair.
		t.Errorf("unexpected lead observations")
	}
}

func TestLiveLeadPairing(t *testing.T) {
	l := NewLive(64)
	l.Event(EvXCorrEdge, 1000, 0, 0)
	l.Event(EvEnergyHighEdge, 1128, 0, 0)
	s := l.Snapshot().Histogram(HistXCorrLead)
	if s.Count != 1 || s.Min != 128 {
		t.Fatalf("lead count=%d min=%d, want one 128-cycle lead", s.Count, s.Min)
	}
}

func TestWriteMetricsFormat(t *testing.T) {
	l := NewLive(64)
	var c Counters
	c.Samples.Add(42)
	l.BindCounters(&c)
	drive(l, 0)
	var buf bytes.Buffer
	if err := l.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE reactivejam_samples_total counter",
		"reactivejam_samples_total 42",
		"# TYPE reactivejam_reaction_cycles histogram",
		"reactivejam_reaction_cycles_count 1",
		`reactivejam_trigger_to_rf_cycles_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestWriteTraceParses(t *testing.T) {
	l := NewLive(64)
	l.Event(EvRegWrite, 5, uint64(12)<<32|77, 0)
	drive(l, 100)
	var buf bytes.Buffer
	if err := l.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Args map[string]any
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	found := map[string]bool{}
	for _, e := range doc.TraceEvents {
		found[e.Name+"/"+e.Ph] = true
		if e.Name == "jam-burst" {
			if e.Dur != 100 { // 10000 cycles = 100 µs
				t.Errorf("jam-burst dur = %v µs, want 100", e.Dur)
			}
			if e.Ts != 2.36 { // cycle 236 = 2.36 µs
				t.Errorf("jam-burst ts = %v µs, want 2.36", e.Ts)
			}
		}
		if e.Name == "reg-write/i" {
			if e.Args["addr"] != float64(12) {
				t.Errorf("reg-write args = %v", e.Args)
			}
		}
	}
	for _, want := range []string{
		"frame-start/i", "xcorr-edge/i", "energy-high-edge/i",
		"trigger-fire/i", "jam-init/X", "jam-burst/X", "reg-write/i",
	} {
		if !found[want] {
			t.Errorf("trace missing event %s (have %v)", want, found)
		}
	}
}

func TestLiveConcurrentAccess(t *testing.T) {
	// Exercised under -race by the CI target: concurrent datapath events,
	// register writes and scrapes must not race.
	l := NewLive(256)
	var c Counters
	l.BindCounters(&c)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch g {
				case 0:
					drive(l, uint64(i)*2000)
				case 1:
					l.Event(EvRegWrite, uint64(i), uint64(i)<<32, 0)
				case 2:
					_ = l.Snapshot()
				default:
					var buf bytes.Buffer
					_ = l.WriteMetrics(&buf)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestHistogramTable(t *testing.T) {
	l := NewLive(64)
	drive(l, 0)
	var buf bytes.Buffer
	if err := WriteHistogramTable(&buf, l.Snapshot().Histogram(HistReaction)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reaction_cycles: n=1") {
		t.Errorf("unexpected table output:\n%s", buf.String())
	}
}
