package telemetry

import (
	"sync"
	"time"
)

// cyclePeriod converts hardware clock cycles to wall time (100 MHz clock,
// 10 ns per cycle; kept local so the package stays dependency-free).
const cyclePeriod = 10 * time.Nanosecond

// CyclesToDuration converts a cycle count to simulated wall time.
func CyclesToDuration(cycles uint64) time.Duration {
	return time.Duration(cycles) * cyclePeriod
}

// leadWindowCycles bounds how far apart an xcorr edge and an energy edge may
// be and still be attributed to the same frame for the lead-time histogram
// (1024 samples ≈ 41 µs).
const leadWindowCycles = 4096

// Live is the capturing Recorder: it journals every event and maintains the
// latency histograms derived from event pairs. All methods are safe for
// concurrent use (one mutex guards journal, histograms and pairing state —
// events are edge-rate, not sample-rate, so the lock is cold).
type Live struct {
	counters *Counters // bound by the core on attach; may be nil

	mu      sync.Mutex
	journal *Journal

	// reaction: frame-start marker → first jamming sample at RF. This is
	// the end-to-end reaction latency of Fig. 5 (Tdet + Tinit).
	reaction Histogram
	// detectToRF: last detector edge → RF on (collapses to Tinit for
	// single-stage triggers; shows sequence cost for multi-stage).
	detectToRF Histogram
	// triggerToRF: trigger fire → RF on (the paper's 80 ns Tinit).
	triggerToRF Histogram
	// burst: RF on → RF off jamming burst durations.
	burst Histogram
	// lead: xcorr edge → energy-high edge on the same frame (the xcorr
	// detector sees the preamble before the energy window fills).
	lead Histogram

	// Pairing state.
	frameStart   uint64
	hasFrame     bool
	lastDetect   uint64
	hasDetect    bool
	lastXCorr    uint64
	hasXCorr     bool
	lastFire     uint64
	hasFire      bool
	jamOn        uint64
	jamActive    bool
	eventsByKind [numEventKinds]uint64
}

// NewLive returns a live recorder with a journal of the given depth
// (DefaultJournalDepth when depth <= 0).
func NewLive(depth int) *Live {
	return &Live{journal: NewJournal(depth)}
}

// BindCounters attaches the datapath counter block so the exposition
// endpoint reads the same memory as core.Stats. Called by the core when the
// recorder is installed.
func (l *Live) BindCounters(c *Counters) {
	l.mu.Lock()
	l.counters = c
	l.mu.Unlock()
}

// Event records one datapath event; it never allocates (the journal ring is
// preallocated and the histograms are fixed arrays).
func (l *Live) Event(kind EventKind, cycle uint64, arg uint64, eng uint32) {
	l.mu.Lock()
	l.journal.Append(Event{Cycle: cycle, Kind: kind, Arg: arg, Eng: eng})
	if kind < numEventKinds {
		l.eventsByKind[kind]++
	}
	switch kind {
	case EvFrameStart:
		l.frameStart, l.hasFrame = cycle, true
	case EvXCorrEdge:
		l.lastDetect, l.hasDetect = cycle, true
		l.lastXCorr, l.hasXCorr = cycle, true
	case EvEnergyHighEdge:
		l.lastDetect, l.hasDetect = cycle, true
		if l.hasXCorr && cycle >= l.lastXCorr && cycle-l.lastXCorr <= leadWindowCycles {
			l.lead.Observe(cycle - l.lastXCorr)
			l.hasXCorr = false
		}
	case EvEnergyLowEdge:
		l.lastDetect, l.hasDetect = cycle, true
	case EvTriggerFire:
		l.lastFire, l.hasFire = cycle, true
	case EvJamRFOn:
		l.jamOn, l.jamActive = cycle, true
		if l.hasFire && cycle >= l.lastFire {
			l.triggerToRF.Observe(cycle - l.lastFire)
			l.hasFire = false
		}
		if l.hasDetect && cycle >= l.lastDetect {
			l.detectToRF.Observe(cycle - l.lastDetect)
			l.hasDetect = false
		}
		if l.hasFrame && cycle >= l.frameStart {
			l.reaction.Observe(cycle - l.frameStart)
			l.hasFrame = false
		}
	case EvJamRFOff:
		if l.jamActive && cycle >= l.jamOn {
			l.burst.Observe(cycle - l.jamOn)
			l.jamActive = false
		}
	}
	l.mu.Unlock()
}

// Events returns a chronological copy of the journal.
func (l *Live) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.journal.Events()
}

// EventCount returns how many events of the given kind have been recorded
// (including any since overwritten in the ring).
func (l *Live) EventCount(kind EventKind) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if kind >= numEventKinds {
		return 0
	}
	return l.eventsByKind[kind]
}

// Dropped returns how many journal events have been lost to ring-buffer
// wrap-around so far. A non-zero value means Events() no longer holds the
// whole run and any artifact derived from the journal (span trees, verdict
// ledgers) is incomplete.
func (l *Live) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.journal.Dropped()
}

// HistogramSnapshot is a point-in-time copy of one latency histogram with
// its headline statistics, in hardware clock cycles.
type HistogramSnapshot struct {
	Name  string
	Count uint64
	Sum   uint64
	Min   uint64
	Max   uint64
	P50   uint64
	P90   uint64
	P99   uint64
	// Buckets holds (inclusive upper bound, count) pairs for every
	// non-empty bucket, ascending.
	Buckets [][2]uint64
}

// P50Duration returns the median as simulated wall time.
func (s HistogramSnapshot) P50Duration() time.Duration { return CyclesToDuration(s.P50) }

// P99Duration returns the 99th percentile as simulated wall time.
func (s HistogramSnapshot) P99Duration() time.Duration { return CyclesToDuration(s.P99) }

func snapshotHist(name string, h *Histogram) HistogramSnapshot {
	return h.Snapshot(name)
}

// Histogram names used in snapshots and the exposition endpoint.
const (
	HistReaction    = "reaction_cycles"
	HistDetectToRF  = "detect_to_rf_cycles"
	HistTriggerToRF = "trigger_to_rf_cycles"
	HistJamBurst    = "jam_burst_cycles"
	HistXCorrLead   = "xcorr_energy_lead_cycles"
)

// Snapshot is a point-in-time copy of everything the recorder holds.
type Snapshot struct {
	Counters   CounterSnapshot
	Histograms []HistogramSnapshot
	Events     int
	Dropped    uint64
	// Engagements counts completed detection engagements (holdoff-release
	// events): the unit the span and verdict layers reason about.
	Engagements uint64
}

// Histogram returns the named histogram from the snapshot (zero value when
// absent).
func (s Snapshot) Histogram(name string) HistogramSnapshot {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h
		}
	}
	return HistogramSnapshot{Name: name}
}

// Snapshot captures the recorder state.
func (l *Live) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Snapshot{
		Events:      l.journal.Len(),
		Dropped:     l.journal.Dropped(),
		Engagements: l.eventsByKind[EvHoldoffRelease],
		Histograms: []HistogramSnapshot{
			snapshotHist(HistReaction, &l.reaction),
			snapshotHist(HistDetectToRF, &l.detectToRF),
			snapshotHist(HistTriggerToRF, &l.triggerToRF),
			snapshotHist(HistJamBurst, &l.burst),
			snapshotHist(HistXCorrLead, &l.lead),
		},
	}
	if l.counters != nil {
		s.Counters = l.counters.Snapshot()
	}
	return s
}

// Merge folds a snapshot of another recorder into this one's histograms:
// every histogram in the snapshot whose name matches one of l's is added
// bucket-by-bucket. Counters, journal and pairing state are untouched —
// merge is for aggregating latency distributions across the per-worker
// recorders of a parallel sweep. Taking a Snapshot first (instead of locking
// two Live instances) keeps the operation free of lock-ordering hazards, so
// it is safe to call while both recorders keep capturing.
func (l *Live) Merge(s Snapshot) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, hs := range s.Histograms {
		switch hs.Name {
		case HistReaction:
			l.reaction.MergeSnapshot(hs)
		case HistDetectToRF:
			l.detectToRF.MergeSnapshot(hs)
		case HistTriggerToRF:
			l.triggerToRF.MergeSnapshot(hs)
		case HistJamBurst:
			l.burst.MergeSnapshot(hs)
		case HistXCorrLead:
			l.lead.MergeSnapshot(hs)
		}
	}
}

// Reset clears the journal, histograms and pairing state (bound counters
// are left alone; reset those through the core).
func (l *Live) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.journal.Reset()
	l.reaction.Reset()
	l.detectToRF.Reset()
	l.triggerToRF.Reset()
	l.burst.Reset()
	l.lead.Reset()
	l.hasFrame, l.hasDetect, l.hasXCorr, l.hasFire, l.jamActive = false, false, false, false, false
	l.eventsByKind = [numEventKinds]uint64{}
}
