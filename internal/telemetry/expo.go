package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
)

// Text exposition: Prometheus-style `# TYPE` / name / value lines over the
// counter block and the latency histograms, so a run can be scraped (or
// just curl'ed) while it executes.

const metricPrefix = "reactivejam_"

// WriteMetrics renders the current counters and histograms in the
// Prometheus text format.
func (l *Live) WriteMetrics(w io.Writer) error {
	s := l.Snapshot()
	counters := []struct {
		name string
		v    uint64
	}{
		{"samples_total", s.Counters.Samples},
		{"xcorr_detections_total", s.Counters.XCorrDetections},
		{"energy_high_detections_total", s.Counters.EnergyHighDetections},
		{"energy_low_detections_total", s.Counters.EnergyLowDetections},
		{"jam_triggers_total", s.Counters.JamTriggers},
		{"jam_samples_total", s.Counters.JamSamples},
		{"reg_writes_total", s.Counters.RegWrites},
		{"host_polls_total", s.Counters.HostPolls},
		{"journal_events", uint64(s.Events)},
		{"journal_dropped_total", s.Dropped},
		{"engagements_total", s.Engagements},
		{"anomaly_alerts_total", l.EventCount(EvAnomalyAlert)},
		{"flight_dumps_total", l.EventCount(EvFlightDump)},
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# TYPE %s%s counter\n%s%s %d\n",
			metricPrefix, c.name, metricPrefix, c.name, c.v); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := writeHistogram(w, h); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, h HistogramSnapshot) error {
	name := metricPrefix + h.Name
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b[1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b[0], cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count)
	return err
}

// Handler returns an http.Handler serving the text exposition (mount it at
// /metrics).
func (l *Live) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = l.WriteMetrics(w)
	})
}

// WriteHistogramTable renders one histogram as an aligned ASCII table with
// cycle and microsecond columns and a bar per bucket — the worked-example
// format used by EXPERIMENTS.md and cmd/experiments.
func WriteHistogramTable(w io.Writer, h HistogramSnapshot) error {
	if h.Count == 0 {
		_, err := fmt.Fprintf(w, "%s: no observations\n", h.Name)
		return err
	}
	if _, err := fmt.Fprintf(w,
		"%s: n=%d  min=%v  p50=%v  p90=%v  p99=%v  max=%v\n",
		h.Name, h.Count, CyclesToDuration(h.Min), CyclesToDuration(h.P50),
		CyclesToDuration(h.P90), CyclesToDuration(h.P99), CyclesToDuration(h.Max)); err != nil {
		return err
	}
	var peak uint64
	for _, b := range h.Buckets {
		if b[1] > peak {
			peak = b[1]
		}
	}
	sort.Slice(h.Buckets, func(i, j int) bool { return h.Buckets[i][0] < h.Buckets[j][0] })
	for _, b := range h.Buckets {
		bar := int(b[1] * 40 / peak)
		if bar == 0 {
			bar = 1
		}
		if _, err := fmt.Fprintf(w, "  <= %8d cyc (%9v) %7d %s\n",
			b[0], CyclesToDuration(b[0]), b[1], bars[:bar]); err != nil {
			return err
		}
	}
	return nil
}

const bars = "########################################"
