package telemetry

import (
	"math/rand"
	"testing"
)

// histEqual compares two histograms for full structural equality —
// bucket-by-bucket, plus every headline statistic and a quantile sweep.
func histEqual(t *testing.T, label string, a, b *Histogram) {
	t.Helper()
	if a.counts != b.counts {
		t.Fatalf("%s: bucket arrays differ", label)
	}
	if a.count != b.count || a.sum != b.sum || a.min != b.min || a.max != b.max {
		t.Fatalf("%s: stats differ: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", label,
			a.count, a.sum, a.min, a.max, b.count, b.sum, b.min, b.max)
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("%s: quantile %g differs: %d vs %d", label, q, a.Quantile(q), b.Quantile(q))
		}
	}
}

// TestHistogramMergeOrderInvariance is the shard-merge property test: the
// fleet aggregator merges per-cell histograms in whatever order the shard
// walk produces, so MergeSnapshot must be commutative and associative —
// any merge order and any grouping must yield the identical histogram,
// bucket for bucket and quantile for quantile.
func TestHistogramMergeOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		// Random shard count and shard contents spanning the full
		// log-linear range, including empties.
		nShards := 2 + rng.Intn(6)
		shards := make([]*Histogram, nShards)
		var direct Histogram // observes every value, no merging
		for i := range shards {
			shards[i] = &Histogram{}
			for n := rng.Intn(40); n > 0; n-- {
				v := uint64(0)
				switch rng.Intn(4) {
				case 0:
					v = uint64(rng.Intn(16)) // exact small buckets
				case 1:
					v = uint64(rng.Intn(1 << 10))
				case 2:
					v = uint64(rng.Int63n(1 << 32))
				case 3:
					v = uint64(rng.Int63()) // deep octaves
				}
				shards[i].Observe(v)
				direct.Observe(v)
			}
		}
		snaps := make([]HistogramSnapshot, nShards)
		for i, h := range shards {
			snaps[i] = h.Snapshot("")
		}

		// Forward order.
		var fwd Histogram
		for _, s := range snaps {
			fwd.MergeSnapshot(s)
		}
		// A merged histogram must match one that observed both streams
		// directly (the MergeSnapshot contract).
		histEqual(t, "merged vs direct", &fwd, &direct)

		// Commutativity: a random permutation.
		var perm Histogram
		for _, i := range rng.Perm(nShards) {
			perm.MergeSnapshot(snaps[i])
		}
		histEqual(t, "permuted order", &perm, &fwd)

		// Associativity: merge a random split pairwise, then combine the
		// intermediates ((a..k) + (k..n) vs flat).
		k := 1 + rng.Intn(nShards-1)
		var left, right, assoc Histogram
		for _, s := range snaps[:k] {
			left.MergeSnapshot(s)
		}
		for _, s := range snaps[k:] {
			right.MergeSnapshot(s)
		}
		assoc.MergeSnapshot(left.Snapshot(""))
		assoc.MergeSnapshot(right.Snapshot(""))
		histEqual(t, "grouped merge", &assoc, &fwd)
	}
}
