package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenJournal replays a fixed two-engagement capture: a clean
// detect→jam→release engagement bracketed by host traffic, then a noise
// engagement that opens on an energy edge and releases without a trigger.
func goldenJournal(l *Live) {
	l.Event(EvRegWrite, 2, uint64(17)<<32|4096, 0)
	l.Event(EvFrameStart, 100, 0, 0)
	l.Event(EvEnergyHighEdge, 228, 0, 1)
	l.Event(EvXCorrEdge, 356, 0, 1)
	l.Event(EvTriggerArm, 356, 0, 1)
	l.Event(EvTriggerFire, 356, 1, 1)
	l.Event(EvJamDelay, 356, 0, 1)
	l.Event(EvJamInit, 456, 0, 1)
	l.Event(EvJamRFOn, 464, 0, 1)
	l.Event(EvJamRFOff, 1464, 0, 1)
	l.Event(EvHoldoffRelease, 1528, 0, 1)
	l.Event(EvHostPoll, 2000, 0, 0)
	l.Event(EvEnergyHighEdge, 3000, 0, 2)
	l.Event(EvHoldoffRelease, 3064, 0, 2)
	// Observability-plane events: a streaming anomaly alert (metric 0,
	// z = 4.2 sigma) arming the flight recorder, and the resulting dump.
	l.Event(EvAnomalyAlert, 3500, uint64(0)<<32|4200, 0)
	l.Event(EvFlightDump, 3600, 2, 0)
}

// TestWriteTraceGolden locks the Chrome trace export byte-for-byte: the
// export is deterministic (ordered thread metadata, sorted JSON keys), so
// any schema or rendering change must show up as a reviewed golden diff.
// Regenerate with: go test ./internal/telemetry -run TraceGolden -update
func TestWriteTraceGolden(t *testing.T) {
	l := NewLive(64)
	goldenJournal(l)
	var buf bytes.Buffer
	if err := l.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace export differs from %s (regenerate with -update if intended)\ngot:  %s\nwant: %s",
			path, buf.Bytes(), want)
	}
}

// TestTraceSchema asserts the structural invariants a trace viewer relies
// on, independent of the exact bytes: a single process with named threads
// for every row in use, phase kinds restricted to M/i/X, instant events
// carrying a scope, duration slices non-negative, and engagement-stamped
// events exposing their ID as an arg.
func TestTraceSchema(t *testing.T) {
	l := NewLive(64)
	goldenJournal(l)
	var buf bytes.Buffer
	if err := l.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	named := map[int]bool{}
	engagementSlices := 0
	anomalyInstants, flightInstants := 0, 0
	for _, e := range doc.TraceEvents {
		if e.PID != 1 {
			t.Errorf("%s: pid = %d, want 1", e.Name, e.PID)
		}
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				named[e.TID] = true
			}
		case "i":
			if e.S == "" {
				t.Errorf("instant %s lacks a scope", e.Name)
			}
			switch e.Name {
			case "anomaly-alert":
				anomalyInstants++
				if _, ok := e.Args["metric"].(float64); !ok {
					t.Errorf("anomaly-alert instant lacks metric arg: %v", e.Args)
				}
				if _, ok := e.Args["milli_z"].(float64); !ok {
					t.Errorf("anomaly-alert instant lacks milli_z arg: %v", e.Args)
				}
			case "flight-dump":
				flightInstants++
				if _, ok := e.Args["trigger"].(float64); !ok {
					t.Errorf("flight-dump instant lacks trigger arg: %v", e.Args)
				}
			}
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				t.Errorf("slice %s has no (or negative) duration", e.Name)
			}
			if e.Name == "engagement" {
				engagementSlices++
				if _, ok := e.Args["eng"].(float64); !ok {
					t.Errorf("engagement slice lacks eng arg: %v", e.Args)
				}
			}
		default:
			t.Errorf("%s: unexpected phase %q", e.Name, e.Ph)
		}
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" && !named[e.TID] {
			t.Errorf("%s on tid %d which has no thread_name metadata", e.Name, e.TID)
		}
	}
	if engagementSlices != 2 {
		t.Errorf("engagement slices = %d, want 2", engagementSlices)
	}
	if anomalyInstants != 1 || flightInstants != 1 {
		t.Errorf("anomaly/flight instants = %d/%d, want 1/1", anomalyInstants, flightInstants)
	}
}
