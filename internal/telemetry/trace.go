package telemetry

import (
	"encoding/json"
	"io"
)

// Chrome trace_event export: the journal becomes a JSON object whose
// traceEvents array loads directly into chrome://tracing or Perfetto.
// Jam bursts (and surgical delay/init phases) render as duration slices;
// detector edges, trigger transitions and register writes render as instant
// events on their own rows. Timestamps are microseconds of simulated
// hardware time (1 cycle = 0.01 µs).

// traceEvent is one entry of the trace_event format.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace rows: one tid per subsystem so the viewer groups events sensibly.
const (
	tidFrames      = 1
	tidDetector    = 2
	tidTrigger     = 3
	tidJammer      = 4
	tidRegBus      = 5
	tidHost        = 6
	tidEngagements = 7
	tidAnomaly     = 8
	tidFlight      = 9
)

// tidNames is ordered by tid so the exported metadata is deterministic
// (golden-file tests compare the trace byte-for-byte).
var tidNames = [...]struct {
	tid  int
	name string
}{
	{tidFrames, "frames"},
	{tidDetector, "detectors"},
	{tidTrigger, "trigger-fsm"},
	{tidJammer, "jammer"},
	{tidRegBus, "register-bus"},
	{tidHost, "host"},
	{tidEngagements, "engagements"},
	{tidAnomaly, "anomaly"},
	{tidFlight, "flight-recorder"},
}

func cyclesToUS(c uint64) float64 { return float64(c) / 100 }

// appendTraceEvents converts journal events into trace events. Jam
// delay/init/burst phases are stitched into duration slices, every
// engagement becomes a duration slice on its own row, and everything else
// becomes an instant event carrying its engagement ID.
func appendTraceEvents(out []traceEvent, events []Event) []traceEvent {
	var (
		phaseStart uint64 // start cycle of the current jammer phase slice
		phaseName  string
		phaseEng   uint32
	)
	// Engagement slices: first and last cycle seen per engagement ID, in
	// order of first appearance.
	type engSpan struct {
		id          uint32
		first, last uint64
	}
	var engs []engSpan
	engIdx := map[uint32]int{}
	noteEng := func(e Event) {
		if e.Eng == 0 {
			return
		}
		i, ok := engIdx[e.Eng]
		if !ok {
			i = len(engs)
			engIdx[e.Eng] = i
			engs = append(engs, engSpan{id: e.Eng, first: e.Cycle})
		}
		engs[i].last = e.Cycle
	}
	engArgs := func(e Event, args map[string]any) map[string]any {
		if e.Eng == 0 {
			return args
		}
		if args == nil {
			args = map[string]any{}
		}
		args["eng"] = e.Eng
		return args
	}
	closePhase := func(end uint64) {
		if phaseName == "" {
			return
		}
		d := cyclesToUS(end - phaseStart)
		var args map[string]any
		if phaseEng != 0 {
			args = map[string]any{"eng": phaseEng}
		}
		out = append(out, traceEvent{
			Name: phaseName, Ph: "X", Ts: cyclesToUS(phaseStart), Dur: &d,
			PID: 1, TID: tidJammer, Args: args,
		})
		phaseName = ""
	}
	instant := func(e Event, tid int, args map[string]any) {
		out = append(out, traceEvent{
			Name: e.Kind.String(), Ph: "i", Ts: cyclesToUS(e.Cycle),
			PID: 1, TID: tid, S: "t", Args: engArgs(e, args),
		})
	}
	for _, e := range events {
		noteEng(e)
		switch e.Kind {
		case EvFrameStart:
			instant(e, tidFrames, nil)
		case EvXCorrEdge, EvEnergyHighEdge, EvEnergyLowEdge:
			instant(e, tidDetector, nil)
		case EvTriggerArm, EvTriggerStage, EvTriggerAbandon:
			instant(e, tidTrigger, map[string]any{"stage": e.Arg})
		case EvTriggerFire:
			instant(e, tidTrigger, nil)
		case EvJamDelay:
			closePhase(e.Cycle)
			phaseStart, phaseName, phaseEng = e.Cycle, "jam-delay", e.Eng
		case EvJamInit:
			closePhase(e.Cycle)
			phaseStart, phaseName, phaseEng = e.Cycle, "jam-init", e.Eng
		case EvJamRFOn:
			closePhase(e.Cycle)
			phaseStart, phaseName, phaseEng = e.Cycle, "jam-burst", e.Eng
		case EvJamRFOff:
			closePhase(e.Cycle)
		case EvHoldoffRelease:
			instant(e, tidEngagements, nil)
		case EvRegWrite:
			instant(e, tidRegBus, map[string]any{
				"addr": e.Arg >> 32, "value": e.Arg & 0xFFFFFFFF,
			})
		case EvHostPoll:
			instant(e, tidHost, nil)
		case EvAnomalyAlert:
			instant(e, tidAnomaly, map[string]any{
				"metric": e.Arg >> 32, "milli_z": e.Arg & 0xFFFFFFFF,
			})
		case EvFlightDump:
			instant(e, tidFlight, map[string]any{"trigger": e.Arg})
		}
	}
	// A burst still in flight at export time gets a zero-length marker so
	// it is not silently lost.
	if phaseName != "" {
		closePhase(phaseStart)
	}
	for _, s := range engs {
		d := cyclesToUS(s.last - s.first)
		out = append(out, traceEvent{
			Name: "engagement", Ph: "X", Ts: cyclesToUS(s.first), Dur: &d,
			PID: 1, TID: tidEngagements, Args: map[string]any{"eng": s.id},
		})
	}
	return out
}

// WriteTrace renders the recorder's journal as Chrome trace_event JSON.
func (l *Live) WriteTrace(w io.Writer) error {
	events := l.Events()
	out := make([]traceEvent, 0, len(events)+len(tidNames)+1)
	out = append(out, traceEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "reactivejam-core"},
	})
	for _, t := range tidNames {
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: t.tid,
			Args: map[string]any{"name": t.name},
		})
	}
	out = appendTraceEvents(out, events)
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ns",
		"traceEvents":     out,
	})
}
