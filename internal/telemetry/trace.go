package telemetry

import (
	"encoding/json"
	"io"
)

// Chrome trace_event export: the journal becomes a JSON object whose
// traceEvents array loads directly into chrome://tracing or Perfetto.
// Jam bursts (and surgical delay/init phases) render as duration slices;
// detector edges, trigger transitions and register writes render as instant
// events on their own rows. Timestamps are microseconds of simulated
// hardware time (1 cycle = 0.01 µs).

// traceEvent is one entry of the trace_event format.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace rows: one tid per subsystem so the viewer groups events sensibly.
const (
	tidFrames   = 1
	tidDetector = 2
	tidTrigger  = 3
	tidJammer   = 4
	tidRegBus   = 5
	tidHost     = 6
)

var tidNames = map[int]string{
	tidFrames:   "frames",
	tidDetector: "detectors",
	tidTrigger:  "trigger-fsm",
	tidJammer:   "jammer",
	tidRegBus:   "register-bus",
	tidHost:     "host",
}

func cyclesToUS(c uint64) float64 { return float64(c) / 100 }

// appendTraceEvents converts journal events into trace events. Jam
// delay/init/burst phases are stitched into duration slices; everything
// else becomes an instant event.
func appendTraceEvents(out []traceEvent, events []Event) []traceEvent {
	var (
		phaseStart uint64 // start cycle of the current jammer phase slice
		phaseName  string
	)
	closePhase := func(end uint64) {
		if phaseName == "" {
			return
		}
		d := cyclesToUS(end - phaseStart)
		out = append(out, traceEvent{
			Name: phaseName, Ph: "X", Ts: cyclesToUS(phaseStart), Dur: &d,
			PID: 1, TID: tidJammer,
		})
		phaseName = ""
	}
	instant := func(e Event, tid int, args map[string]any) {
		out = append(out, traceEvent{
			Name: e.Kind.String(), Ph: "i", Ts: cyclesToUS(e.Cycle),
			PID: 1, TID: tid, S: "t", Args: args,
		})
	}
	for _, e := range events {
		switch e.Kind {
		case EvFrameStart:
			instant(e, tidFrames, nil)
		case EvXCorrEdge, EvEnergyHighEdge, EvEnergyLowEdge:
			instant(e, tidDetector, nil)
		case EvTriggerArm, EvTriggerStage, EvTriggerAbandon:
			instant(e, tidTrigger, map[string]any{"stage": e.Arg})
		case EvTriggerFire:
			instant(e, tidTrigger, nil)
		case EvJamDelay:
			closePhase(e.Cycle)
			phaseStart, phaseName = e.Cycle, "jam-delay"
		case EvJamInit:
			closePhase(e.Cycle)
			phaseStart, phaseName = e.Cycle, "jam-init"
		case EvJamRFOn:
			closePhase(e.Cycle)
			phaseStart, phaseName = e.Cycle, "jam-burst"
		case EvJamRFOff:
			closePhase(e.Cycle)
		case EvRegWrite:
			instant(e, tidRegBus, map[string]any{
				"addr": e.Arg >> 32, "value": e.Arg & 0xFFFFFFFF,
			})
		case EvHostPoll:
			instant(e, tidHost, nil)
		}
	}
	// A burst still in flight at export time gets a zero-length marker so
	// it is not silently lost.
	if phaseName != "" {
		closePhase(phaseStart)
	}
	return out
}

// WriteTrace renders the recorder's journal as Chrome trace_event JSON.
func (l *Live) WriteTrace(w io.Writer) error {
	events := l.Events()
	out := make([]traceEvent, 0, len(events)+len(tidNames)+1)
	out = append(out, traceEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "reactivejam-core"},
	})
	for tid, name := range tidNames {
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	out = appendTraceEvents(out, events)
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ns",
		"traceEvents":     out,
	})
}
