package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Broadcaster is the multi-client successor to StreamHandler: one
// goroutine pulls the rollup source every interval, marshals the SSE
// payload once, and fans it out to every subscriber over a bounded
// per-client queue. A subscriber that stops reading — a stalled TCP
// connection, a wedged consumer — fills its queue and is dropped and
// counted, instead of backpressuring the broadcast tick and starving the
// healthy clients.
type Broadcaster struct {
	interval time.Duration
	source   RollupSource

	mu      sync.Mutex
	clients map[*streamClient]struct{}
	seq     uint64
	stop    chan struct{}
	done    chan struct{}

	dropped atomic.Uint64
}

// streamClientQueue bounds the per-client frame queue: a client more than
// this many ticks behind is considered stalled.
const streamClientQueue = 8

type streamClient struct {
	frames chan []byte
}

// NewBroadcaster returns a broadcaster pulling the source every interval
// (1 s when interval <= 0). Call Start to begin ticking.
func NewBroadcaster(interval time.Duration, source RollupSource) *Broadcaster {
	if interval <= 0 {
		interval = time.Second
	}
	return &Broadcaster{
		interval: interval,
		source:   source,
		clients:  make(map[*streamClient]struct{}),
	}
}

// DroppedClients returns how many stalled subscribers have been dropped —
// exported as the stream_dropped_clients metric.
func (b *Broadcaster) DroppedClients() uint64 { return b.dropped.Load() }

// Start launches the broadcast loop (no-op when already running).
func (b *Broadcaster) Start() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stop != nil {
		return
	}
	b.stop = make(chan struct{})
	b.done = make(chan struct{})
	go b.run(b.stop, b.done)
}

// Stop halts the loop and disconnects every subscriber.
func (b *Broadcaster) Stop() {
	b.mu.Lock()
	if b.stop == nil {
		b.mu.Unlock()
		return
	}
	stop, done := b.stop, b.done
	b.stop, b.done = nil, nil
	b.mu.Unlock()
	close(stop)
	<-done
	b.mu.Lock()
	for c := range b.clients {
		close(c.frames)
		delete(b.clients, c)
	}
	b.mu.Unlock()
}

func (b *Broadcaster) run(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(b.interval)
	defer t.Stop()
	b.tick()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			b.tick()
		}
	}
}

// tick marshals the tick's rollups once and enqueues the frame to every
// subscriber without ever blocking: a full queue drops that subscriber.
func (b *Broadcaster) tick() {
	b.mu.Lock()
	seq := b.seq
	b.seq++
	b.mu.Unlock()

	frame := marshalFrame(b.source(seq))
	if frame == nil {
		return
	}

	b.mu.Lock()
	for c := range b.clients {
		select {
		case c.frames <- frame:
		default:
			delete(b.clients, c)
			close(c.frames)
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// marshalFrame renders one tick's rollups as a single SSE frame.
func marshalFrame(rollups []Rollup) []byte {
	var frame []byte
	for _, r := range rollups {
		body, err := json.Marshal(r)
		if err != nil {
			return nil
		}
		frame = append(frame, "event: rollup\ndata: "...)
		frame = append(frame, body...)
		frame = append(frame, "\n\n"...)
	}
	return frame
}

// subscribe registers a new client. The first frame is generated
// immediately so a consumer never waits a full interval for data.
func (b *Broadcaster) subscribe() *streamClient {
	c := &streamClient{frames: make(chan []byte, streamClientQueue)}
	b.mu.Lock()
	seq := b.seq
	b.seq++
	b.clients[c] = struct{}{}
	b.mu.Unlock()
	c.frames <- marshalFrame(b.source(seq))
	return c
}

// unsubscribe removes a client that disconnected on its own.
func (b *Broadcaster) unsubscribe(c *streamClient) {
	b.mu.Lock()
	if _, ok := b.clients[c]; ok {
		delete(b.clients, c)
		close(c.frames)
	}
	b.mu.Unlock()
}

// ServeHTTP streams broadcast frames to the client until it disconnects or
// is dropped for stalling.
func (b *Broadcaster) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	c := b.subscribe()
	defer b.unsubscribe(c)
	for {
		select {
		case <-req.Context().Done():
			return
		case frame, ok := <-c.frames:
			if !ok {
				// Dropped as a slow client (or broadcaster stopped): a
				// final comment line tells a live consumer why.
				fmt.Fprint(w, ": dropped (slow client)\n\n")
				flusher.Flush()
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
