package flight

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/telemetry"
)

// populate replays a fixed engagement plus host traffic into the live
// recorder, deterministic by construction.
func populate(l *telemetry.Live) {
	l.Event(telemetry.EvRegWrite, 2, uint64(17)<<32|4096, 0)
	l.Event(telemetry.EvFrameStart, 100, 0, 0)
	l.Event(telemetry.EvEnergyHighEdge, 228, 0, 1)
	l.Event(telemetry.EvTriggerFire, 228, 0, 1)
	l.Event(telemetry.EvJamInit, 228, 0, 1)
	l.Event(telemetry.EvJamRFOn, 236, 0, 1)
	l.Event(telemetry.EvJamRFOff, 1236, 0, 1)
	l.Event(telemetry.EvHoldoffRelease, 1300, 0, 1)
	l.Event(telemetry.EvHostPoll, 2000, 0, 0)
}

func TestDumpCapturesEverything(t *testing.T) {
	live := telemetry.NewLive(64)
	r := New(live, Options{Seed: 42})
	r.Arm()
	populate(live)
	r.RecordIQ([]complex128{1 + 2i, 3 + 4i})

	d := r.Trigger(TriggerManual, 2500, "test incident")
	if d.Version != DumpVersion || d.Trigger != TriggerManual || d.Cycle != 2500 {
		t.Fatalf("dump header = %+v", d)
	}
	if d.Seed != 42 || !d.Armed || d.Detail != "test incident" {
		t.Fatalf("dump context = %+v", d)
	}
	if len(d.Events) != 9 {
		t.Errorf("events = %d, want 9", len(d.Events))
	}
	if d.Engagements != 1 {
		t.Errorf("engagements = %d, want 1", d.Engagements)
	}
	if len(d.RegWrites) != 1 || d.RegWrites[0].Addr != 17 || d.RegWrites[0].Value != 4096 {
		t.Errorf("reg writes = %+v", d.RegWrites)
	}
	if len(d.IQ) != 2 || d.IQ[0] != [2]float64{1, 2} || d.IQ[1] != [2]float64{3, 4} {
		t.Errorf("iq = %+v", d.IQ)
	}
	var burst *HistDelta
	for i := range d.Histograms {
		if d.Histograms[i].Name == telemetry.HistJamBurst {
			burst = &d.Histograms[i]
		}
	}
	if burst == nil || burst.CountDelta != 1 {
		t.Errorf("burst delta = %+v", burst)
	}
	// The dump marker lands in the journal after capture, never inside the
	// dump itself.
	if got := live.EventCount(telemetry.EvFlightDump); got != 1 {
		t.Errorf("journal EvFlightDump count = %d, want 1", got)
	}
	for _, ev := range d.Events {
		if ev.Kind == "flight-dump" {
			t.Error("dump contains its own marker")
		}
	}
}

func TestArmAnchorsHistogramDeltas(t *testing.T) {
	live := telemetry.NewLive(64)
	r := New(live, Options{})
	populate(live) // one burst before arming
	r.Arm()
	d := r.Trigger(TriggerManual, 3000, "")
	for _, h := range d.Histograms {
		if h.CountDelta != 0 {
			t.Errorf("%s: count delta = %d after arming past the activity", h.Name, h.CountDelta)
		}
	}
}

func TestEventTailBounded(t *testing.T) {
	live := telemetry.NewLive(1024)
	r := New(live, Options{EventTail: 8})
	for i := 0; i < 100; i++ {
		live.Event(telemetry.EvHostPoll, uint64(i), 0, 0)
	}
	d := r.Trigger(TriggerAnomaly, 100, "")
	if len(d.Events) != 8 {
		t.Fatalf("events = %d, want 8", len(d.Events))
	}
	if d.EventsTruncated != 92 {
		t.Errorf("truncated = %d, want 92", d.EventsTruncated)
	}
	// Newest events survive.
	if d.Events[7].Cycle != 99 {
		t.Errorf("last event cycle = %d, want 99", d.Events[7].Cycle)
	}
}

func TestIQRingKeepsNewest(t *testing.T) {
	live := telemetry.NewLive(16)
	r := New(live, Options{IQDepth: 4})
	for i := 0; i < 10; i++ {
		r.RecordIQ([]complex128{complex(float64(i), 0)})
	}
	d := r.Trigger(TriggerManual, 1, "")
	if len(d.IQ) != 4 {
		t.Fatalf("iq = %d samples, want 4", len(d.IQ))
	}
	for i, want := range []float64{6, 7, 8, 9} {
		if d.IQ[i][0] != want {
			t.Errorf("iq[%d] = %v, want %g", i, d.IQ[i], want)
		}
	}
	// A block larger than the ring keeps only its newest samples.
	r2 := New(live, Options{IQDepth: 2})
	r2.RecordIQ([]complex128{1, 2, 3, 4})
	d2 := r2.Trigger(TriggerManual, 1, "")
	if len(d2.IQ) != 2 || d2.IQ[0][0] != 3 || d2.IQ[1][0] != 4 {
		t.Errorf("oversized block iq = %+v", d2.IQ)
	}
}

func TestDumpDeterministicBytes(t *testing.T) {
	build := func() []byte {
		live := telemetry.NewLive(64)
		r := New(live, Options{Seed: 7})
		r.Arm()
		populate(live)
		r.RecordIQ([]complex128{0.5 + 0.25i})
		d := r.Trigger(TriggerSLOBreach, 4000, "reaction_p99_cycles over budget")
		b, err := d.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs produced different dump bytes:\n%s\nvs\n%s", a, b)
	}
	// Round-trips as JSON with the trigger by name.
	var back Dump
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatalf("dump does not round-trip: %v", err)
	}
	if back.Trigger != TriggerSLOBreach {
		t.Errorf("round-tripped trigger = %v", back.Trigger)
	}
}

func TestHashMatchesBytes(t *testing.T) {
	live := telemetry.NewLive(64)
	r := New(live, Options{})
	populate(live)
	d := r.Trigger(TriggerChaosInvariant, 5000, "engagement-ledger degraded")
	h1, err := d.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := d.Hash()
	if h1 != h2 || len(h1) != 16 {
		t.Fatalf("hash unstable or malformed: %q vs %q", h1, h2)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	b, _ := d.Marshal()
	if !bytes.Equal(buf.Bytes(), b) {
		t.Error("WriteJSON and Marshal disagree")
	}
}

func TestTriggerNamesStable(t *testing.T) {
	want := map[Trigger]string{
		TriggerManual:         "manual",
		TriggerSLOBreach:      "slo-breach",
		TriggerChaosInvariant: "chaos-invariant",
		TriggerAnomaly:        "anomaly",
	}
	for tr, name := range want {
		if tr.String() != name {
			t.Errorf("%d.String() = %q, want %q", tr, tr.String(), name)
		}
	}
}
