// Package flight is the datapath's black-box flight recorder. It rides an
// attached telemetry.Live recorder at near-zero cost — a baseline histogram
// snapshot taken at Arm time and a small ring of recent I/Q samples — and,
// when a trigger fires (SLO budget breach, chaos invariant degradation,
// anomaly alert, or an explicit call), captures a self-contained incident
// Dump: the tail of the event journal, histogram deltas since arming, the
// counter block, the register-write history visible in the journal, and the
// I/Q scope snapshot.
//
// Dumps are deterministic by construction: they contain no wall-clock
// state, every field is cycle-stamped, and serialization goes through
// encoding/json over fixed-order structs — so the same seed and trigger
// cycle produce byte-identical JSON, and a dump hash is a replay witness
// the same way the chaos ledger hash is.
package flight

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/telemetry"
)

// Trigger identifies what fired the flight recorder.
type Trigger uint8

// The trigger taxonomy. Values are stable: they are journaled in
// EvFlightDump's Arg and serialized by name in dumps.
const (
	// TriggerManual is an explicit API call (jamlab's -flight-out path).
	TriggerManual Trigger = iota
	// TriggerSLOBreach is a violated budget from internal/telemetry/slo.
	TriggerSLOBreach
	// TriggerChaosInvariant is a degraded or broken invariant from
	// internal/chaos.
	TriggerChaosInvariant
	// TriggerAnomaly is a streaming-detector alert from
	// internal/telemetry/anomaly.
	TriggerAnomaly

	numTriggers
)

// String returns the stable dump name of the trigger.
func (t Trigger) String() string {
	switch t {
	case TriggerManual:
		return "manual"
	case TriggerSLOBreach:
		return "slo-breach"
	case TriggerChaosInvariant:
		return "chaos-invariant"
	case TriggerAnomaly:
		return "anomaly"
	default:
		return "trigger(?)"
	}
}

// MarshalJSON emits the symbolic name.
func (t Trigger) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// UnmarshalJSON parses the symbolic name back (incident tooling
// round-trips).
func (t *Trigger) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for v := Trigger(0); v < numTriggers; v++ {
		if v.String() == name {
			*t = v
			return nil
		}
	}
	return fmt.Errorf("flight: unknown trigger %q", name)
}

// Options tunes the recorder.
type Options struct {
	// EventTail bounds how many journal events (newest last) a dump
	// carries. Default 512.
	EventTail int
	// IQDepth bounds the I/Q scope ring. Default 256.
	IQDepth int
	// Seed labels the dump with the run's master seed, making "same seed ⇒
	// same dump" checkable from the artifact alone.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.EventTail <= 0 {
		o.EventTail = 512
	}
	if o.IQDepth <= 0 {
		o.IQDepth = 256
	}
	return o
}

// Recorder is the flight recorder. Methods are not safe for concurrent use
// on their own; a single rollup/datapath goroutine owns it (the attached
// Live recorder has its own lock).
type Recorder struct {
	live *telemetry.Live
	opts Options

	baseline telemetry.Snapshot
	armed    bool

	iq     []complex128 // ring storage
	iqNext int
	iqFull bool

	dumps []*Dump
}

// New returns a flight recorder riding the given live telemetry recorder.
func New(live *telemetry.Live, opts Options) *Recorder {
	o := opts.withDefaults()
	return &Recorder{live: live, opts: o, iq: make([]complex128, o.IQDepth)}
}

// Arm captures the histogram baseline that dump deltas are computed
// against. Triggers fire whether or not the recorder is armed; arming only
// anchors the deltas (an unarmed dump reports absolute histogram state).
func (r *Recorder) Arm() {
	r.baseline = r.live.Snapshot()
	r.armed = true
}

// RecordIQ taps a block of received samples into the scope ring, keeping
// the most recent IQDepth samples.
func (r *Recorder) RecordIQ(buf []complex128) {
	if len(buf) > len(r.iq) {
		buf = buf[len(buf)-len(r.iq):]
	}
	for _, s := range buf {
		r.iq[r.iqNext] = s
		r.iqNext++
		if r.iqNext == len(r.iq) {
			r.iqNext, r.iqFull = 0, true
		}
	}
}

// iqSnapshot returns the scope ring oldest-first.
func (r *Recorder) iqSnapshot() [][2]float64 {
	n := r.iqNext
	if r.iqFull {
		n = len(r.iq)
	}
	out := make([][2]float64, 0, n)
	emit := func(s complex128) {
		out = append(out, [2]float64{real(s), imag(s)})
	}
	if r.iqFull {
		for _, s := range r.iq[r.iqNext:] {
			emit(s)
		}
	}
	for _, s := range r.iq[:r.iqNext] {
		emit(s)
	}
	return out
}

// DumpEvent is one journal event in a dump, with the kind spelled out.
type DumpEvent struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	Arg   uint64 `json:"arg,omitempty"`
	Eng   uint32 `json:"eng,omitempty"`
}

// HistDelta is one histogram's movement since the recorder was armed: the
// observation count and sum are deltas, the order statistics are the
// current values (quantile deltas are not meaningful).
type HistDelta struct {
	Name       string `json:"name"`
	CountDelta uint64 `json:"count_delta"`
	SumDelta   uint64 `json:"sum_delta"`
	P50        uint64 `json:"p50"`
	P99        uint64 `json:"p99"`
	Max        uint64 `json:"max"`
}

// RegWrite is one committed register write visible in the dump's journal
// window.
type RegWrite struct {
	Cycle uint64 `json:"cycle"`
	Addr  uint32 `json:"addr"`
	Value uint32 `json:"value"`
}

// Dump is one self-contained incident artifact. Field order is the
// serialization order; keep it stable — incident hashes are compared across
// runs and commits.
type Dump struct {
	// Version is the dump schema version.
	Version int `json:"version"`
	// Trigger and Detail say what fired and why; Cycle is the hardware
	// clock at capture.
	Trigger Trigger `json:"trigger"`
	Detail  string  `json:"detail,omitempty"`
	Cycle   uint64  `json:"cycle"`
	// Seed is the run's master seed (Options.Seed).
	Seed int64 `json:"seed"`
	// Armed reports whether histogram deltas are anchored to an Arm call.
	Armed bool `json:"armed"`
	// Counters is the counter block at capture.
	Counters telemetry.CounterSnapshot `json:"counters"`
	// Engagements counts completed engagements at capture; Dropped is the
	// journal's all-time overwrite count (non-zero means Events is not the
	// whole story even within the tail window).
	Engagements uint64 `json:"engagements"`
	Dropped     uint64 `json:"dropped"`
	// Histograms is the per-histogram movement since arming.
	Histograms []HistDelta `json:"histograms"`
	// Events is the journal tail, oldest first, at most EventTail entries.
	// EventsTruncated reports how many surviving journal events fell
	// outside the tail window.
	Events          []DumpEvent `json:"events"`
	EventsTruncated int         `json:"events_truncated,omitempty"`
	// RegWrites is the register-write history visible in the journal tail.
	RegWrites []RegWrite `json:"reg_writes,omitempty"`
	// IQ is the scope snapshot: the most recent received samples as
	// (I, Q) pairs, oldest first.
	IQ [][2]float64 `json:"iq,omitempty"`
}

// DumpVersion is the current dump schema version.
const DumpVersion = 1

// Trigger captures an incident dump and journals an EvFlightDump marker
// (stamped after capture, so the dump itself never contains its own
// marker). The dump is also retained on the recorder (Dumps, LastDump).
func (r *Recorder) Trigger(tr Trigger, cycle uint64, detail string) *Dump {
	snap := r.live.Snapshot()
	d := &Dump{
		Version:     DumpVersion,
		Trigger:     tr,
		Detail:      detail,
		Cycle:       cycle,
		Seed:        r.opts.Seed,
		Armed:       r.armed,
		Counters:    snap.Counters,
		Engagements: snap.Engagements,
		Dropped:     snap.Dropped,
		IQ:          r.iqSnapshot(),
	}
	for _, h := range snap.Histograms {
		delta := HistDelta{
			Name:       h.Name,
			CountDelta: h.Count,
			SumDelta:   h.Sum,
			P50:        h.P50,
			P99:        h.P99,
			Max:        h.Max,
		}
		if r.armed {
			b := r.baseline.Histogram(h.Name)
			delta.CountDelta -= b.Count
			delta.SumDelta -= b.Sum
		}
		d.Histograms = append(d.Histograms, delta)
	}
	events := r.live.Events()
	if n := len(events) - r.opts.EventTail; n > 0 {
		d.EventsTruncated = n
		events = events[n:]
	}
	d.Events = make([]DumpEvent, len(events))
	for i, ev := range events {
		d.Events[i] = DumpEvent{
			Cycle: ev.Cycle, Kind: ev.Kind.String(), Arg: ev.Arg, Eng: ev.Eng,
		}
		if ev.Kind == telemetry.EvRegWrite {
			d.RegWrites = append(d.RegWrites, RegWrite{
				Cycle: ev.Cycle,
				Addr:  uint32(ev.Arg >> 32),
				Value: uint32(ev.Arg & 0xFFFFFFFF),
			})
		}
	}
	r.dumps = append(r.dumps, d)
	r.live.Event(telemetry.EvFlightDump, cycle, uint64(tr), 0)
	return d
}

// Dumps returns every dump captured so far, in order.
func (r *Recorder) Dumps() []*Dump { return r.dumps }

// LastDump returns the most recent dump, or nil.
func (r *Recorder) LastDump() *Dump {
	if len(r.dumps) == 0 {
		return nil
	}
	return r.dumps[len(r.dumps)-1]
}

// Marshal serializes the dump as deterministic JSON with a trailing
// newline — the byte stream whose hash is the incident's identity.
func (d *Dump) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON writes the dump's canonical serialization.
func (d *Dump) WriteJSON(w io.Writer) error {
	b, err := d.Marshal()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Hash returns the FNV-1a hash of the dump's canonical serialization — the
// replay witness asserted by the determinism gates.
func (d *Dump) Hash() (string, error) {
	b, err := d.Marshal()
	if err != nil {
		return "", err
	}
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return fmt.Sprintf("%016x", h), nil
}
