package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestStreamHandlerPushesRollups is the host-side consumer check: an SSE
// client must receive several rollup updates carrying counter and alert
// figures at the configured cadence.
func TestStreamHandlerPushesRollups(t *testing.T) {
	live := NewLive(256)
	c := &Counters{}
	live.BindCounters(c)
	c.Samples.Store(12345)
	c.JamTriggers.Store(3)
	live.Event(EvJamRFOn, 100, 0, 1)
	live.Event(EvJamRFOff, 1100, 0, 1)
	live.Event(EvAnomalyAlert, 1200, 0, 0)
	live.Event(EvFlightDump, 1300, 0, 0)

	srv := httptest.NewServer(StreamHandler(5*time.Millisecond, func(seq uint64) []Rollup {
		// Two cells per tick: the live cell and a synthetic second cell, so
		// the per-cell fan-out is exercised.
		return []Rollup{
			RollupFrom("cell0", seq, live),
			{Seq: seq, Cell: "cell1"},
		}
	}))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Consume at least 3 updates of cell0 (and the interleaved cell1 rows).
	sc := bufio.NewScanner(resp.Body)
	var cell0 []Rollup
	var sawEventLine bool
	deadline := time.After(5 * time.Second)
	for len(cell0) < 3 {
		select {
		case <-deadline:
			t.Fatalf("timed out after %d rollups", len(cell0))
		default:
		}
		if !sc.Scan() {
			t.Fatalf("stream ended after %d rollups: %v", len(cell0), sc.Err())
		}
		line := sc.Text()
		switch {
		case line == "event: rollup":
			sawEventLine = true
		case strings.HasPrefix(line, "data: "):
			var r Rollup
			if err := json.Unmarshal([]byte(line[len("data: "):]), &r); err != nil {
				t.Fatalf("bad rollup body %q: %v", line, err)
			}
			if r.Cell == "cell0" {
				cell0 = append(cell0, r)
			}
		}
	}
	if !sawEventLine {
		t.Error("no 'event: rollup' framing line seen")
	}

	for i, r := range cell0 {
		if r.Counters.Samples != 12345 || r.Counters.JamTriggers != 3 {
			t.Errorf("rollup %d counters = %+v", i, r.Counters)
		}
		if r.Alerts != 1 || r.Dumps != 1 {
			t.Errorf("rollup %d alerts/dumps = %d/%d, want 1/1", i, r.Alerts, r.Dumps)
		}
		found := false
		for _, h := range r.Histograms {
			if h.Name == HistJamBurst && h.Count == 1 && h.Max >= 1000 {
				found = true
			}
		}
		if !found {
			t.Errorf("rollup %d lacks the jam-burst histogram figures", i)
		}
	}
	// Seq advances across ticks.
	if cell0[0].Seq == cell0[2].Seq {
		t.Errorf("seq did not advance: %d .. %d", cell0[0].Seq, cell0[2].Seq)
	}
}
