package span

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// journal builds a synthetic two-engagement journal: engagement 1 is a full
// detect → fire → delay → init → burst → holdoff chain, engagement 2 is a
// noise edge that never triggers.
func journal() []telemetry.Event {
	return []telemetry.Event{
		{Cycle: 10, Kind: telemetry.EvFrameStart},         // eng 0: ignored
		{Cycle: 100, Kind: telemetry.EvXCorrEdge, Eng: 1}, // opens eng 1
		{Cycle: 100, Kind: telemetry.EvTriggerArm, Eng: 1, Arg: 1},
		{Cycle: 128, Kind: telemetry.EvEnergyHighEdge, Eng: 1},
		{Cycle: 128, Kind: telemetry.EvTriggerFire, Eng: 1},
		{Cycle: 128, Kind: telemetry.EvJamDelay, Eng: 1},
		{Cycle: 160, Kind: telemetry.EvJamInit, Eng: 1},
		{Cycle: 168, Kind: telemetry.EvJamRFOn, Eng: 1},
		{Cycle: 10168, Kind: telemetry.EvJamRFOff, Eng: 1},
		{Cycle: 10232, Kind: telemetry.EvHoldoffRelease, Eng: 1},
		{Cycle: 20000, Kind: telemetry.EvEnergyLowEdge, Eng: 2}, // noise
		{Cycle: 20064, Kind: telemetry.EvHoldoffRelease, Eng: 2},
	}
}

func TestBuildFullEngagement(t *testing.T) {
	engs := Build(journal())
	if len(engs) != 2 {
		t.Fatalf("got %d engagements, want 2", len(engs))
	}
	e := engs[0]
	if e.ID != 1 || e.FirstEdge != 100 {
		t.Fatalf("eng1 id=%d firstEdge=%d", e.ID, e.FirstEdge)
	}
	if !e.HasFire || e.Fire != 128 {
		t.Errorf("fire = %d (has=%v), want 128", e.Fire, e.HasFire)
	}
	if !e.HasRF || e.RFOn != 168 || e.RFOff != 10168 {
		t.Errorf("rf on/off = %d/%d", e.RFOn, e.RFOff)
	}
	if !e.Complete || e.Release != 10232 {
		t.Errorf("release = %d complete=%v", e.Release, e.Complete)
	}
	if r, ok := e.ReactionCycles(); !ok || r != 68 {
		t.Errorf("reaction = %d (%v), want 68", r, ok)
	}
	if tu, ok := e.TurnaroundCycles(); !ok || tu != 40 {
		t.Errorf("turnaround = %d (%v), want 40 (32 delay + 8 init)", tu, ok)
	}
	if b, ok := e.BurstCycles(); !ok || b != 10000 {
		t.Errorf("burst = %d (%v), want 10000", b, ok)
	}
	if len(e.Events) != 9 {
		t.Errorf("eng1 carries %d events, want 9", len(e.Events))
	}
}

func TestTreeStructure(t *testing.T) {
	engs := Build(journal())
	tree := engs[0].Tree()
	if tree.Name != "engagement-1" || tree.Start != 100 || tree.End != 10232 {
		t.Fatalf("root = %+v", tree)
	}
	names := make([]string, len(tree.Children))
	for i, c := range tree.Children {
		names[i] = c.Name
	}
	want := []string{"detect", "turnaround", "burst", "holdoff"}
	if len(names) != len(want) {
		t.Fatalf("children = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("children = %v, want %v", names, want)
		}
	}
	turn := tree.Children[1]
	if len(turn.Children) != 2 ||
		turn.Children[0].Name != "jam-delay" || turn.Children[1].Name != "duc-fill" {
		t.Fatalf("turnaround children = %+v", turn.Children)
	}
	if d := turn.Children[1]; d.Start != 160 || d.End != 168 {
		t.Errorf("duc-fill = [%d,%d], want [160,168] (8-cycle Tinit)", d.Start, d.End)
	}
	// Children tile the causal chain: each starts where the previous ended.
	if tree.Children[0].End != tree.Children[1].Start ||
		tree.Children[1].End != tree.Children[2].Start ||
		tree.Children[2].End != tree.Children[3].Start {
		t.Errorf("spans do not tile: %+v", tree.Children)
	}
}

func TestNoiseEngagementTree(t *testing.T) {
	engs := Build(journal())
	e := engs[1]
	if e.HasFire || e.HasRF {
		t.Fatalf("noise engagement has fire/rf: %+v", e)
	}
	tree := e.Tree()
	if len(tree.Children) != 1 || tree.Children[0].Name != "holdoff" {
		t.Fatalf("noise tree children = %+v", tree.Children)
	}
	if h := tree.Children[0]; h.Start != 20000 || h.End != 20064 {
		t.Errorf("holdoff = [%d,%d]", h.Start, h.End)
	}
}

func TestIncompleteEngagement(t *testing.T) {
	// Journal truncated mid-burst: engagement must not claim completion and
	// End() falls back to the last event seen.
	ev := journal()[:8] // through EvJamRFOn
	engs := Build(ev)
	e := engs[0]
	if e.Complete {
		t.Fatal("truncated engagement reported complete")
	}
	if e.End() != 168 {
		t.Errorf("End() = %d, want last event 168", e.End())
	}
	if _, ok := e.BurstCycles(); ok {
		t.Error("burst reported for engagement with no RF-off")
	}
}

func TestWriteTree(t *testing.T) {
	engs := Build(journal())
	var buf bytes.Buffer
	if err := WriteTree(&buf, &engs[0]); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"engagement-1 @100 +10132 cyc",
		"  detect @100 +28 cyc",
		"  turnaround @128 +40 cyc",
		"    duc-fill @160 +8 cyc (80ns)",
		"  burst @168 +10000 cyc (100µs)",
		"  holdoff @10168 +64 cyc",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
}

// wrappedJournal streams two full engagements through a Live recorder whose
// ring is too small to hold both, so the first engagement's opening edges
// (detector edge, trigger fire, RF-on) fall off the ring mid-engagement and
// only its tail survives.
func wrappedJournal(t *testing.T, depth int) *telemetry.Live {
	t.Helper()
	live := telemetry.NewLive(depth)
	feed := []telemetry.Event{
		{Cycle: 100, Kind: telemetry.EvEnergyHighEdge, Eng: 1},
		{Cycle: 128, Kind: telemetry.EvTriggerFire, Eng: 1},
		{Cycle: 168, Kind: telemetry.EvJamRFOn, Eng: 1},
		{Cycle: 10168, Kind: telemetry.EvJamRFOff, Eng: 1},
		{Cycle: 10232, Kind: telemetry.EvHoldoffRelease, Eng: 1},
		{Cycle: 20000, Kind: telemetry.EvEnergyHighEdge, Eng: 2},
		{Cycle: 20028, Kind: telemetry.EvTriggerFire, Eng: 2},
		{Cycle: 20068, Kind: telemetry.EvJamRFOn, Eng: 2},
		{Cycle: 30068, Kind: telemetry.EvJamRFOff, Eng: 2},
		{Cycle: 30132, Kind: telemetry.EvHoldoffRelease, Eng: 2},
	}
	for _, ev := range feed {
		live.Event(ev.Kind, ev.Cycle, ev.Arg, ev.Eng)
	}
	if live.Dropped() == 0 {
		t.Fatalf("depth %d did not wrap the ring", depth)
	}
	return live
}

// assertSane walks a span tree rejecting negative intervals and children
// escaping their parent — the degradation contract for truncated inputs.
func assertSane(t *testing.T, s Span) {
	t.Helper()
	if s.End < s.Start {
		t.Errorf("negative span %s [%d,%d]", s.Name, s.Start, s.End)
	}
	for _, c := range s.Children {
		if c.Start < s.Start || c.End > s.End {
			t.Errorf("child %s [%d,%d] escapes parent %s [%d,%d]",
				c.Name, c.Start, c.End, s.Name, s.Start, s.End)
		}
		assertSane(t, c)
	}
}

func TestBuildAfterRingWrapMidEngagement(t *testing.T) {
	// Depth 7: engagement 1 loses its edge, fire, and RF-on events; its
	// RF-off and holdoff release survive alongside all of engagement 2.
	live := wrappedJournal(t, 7)
	engs := Build(live.Events())
	if len(engs) != 2 {
		t.Fatalf("got %d engagements, want 2", len(engs))
	}

	e1 := engs[0]
	if e1.ID != 1 {
		t.Fatalf("first engagement id = %d", e1.ID)
	}
	// The dropped RF-on must not be fabricated: no fire, no RF, no burst,
	// no reaction figure — the orphaned RF-off cannot mis-pair.
	if e1.HasFire || e1.HasRF {
		t.Errorf("truncated engagement claims fire/rf: %+v", e1)
	}
	if _, ok := e1.BurstCycles(); ok {
		t.Error("burst derived from an orphaned RF-off")
	}
	if _, ok := e1.ReactionCycles(); ok {
		t.Error("reaction derived without an RF-on")
	}
	// The surviving close edge still closes it, anchored at the first
	// surviving event rather than the lost opening edge.
	if !e1.Complete || e1.Release != 10232 {
		t.Errorf("release = %d complete=%v", e1.Release, e1.Complete)
	}
	if e1.FirstEdge != 10168 {
		t.Errorf("first edge = %d, want 10168 (first surviving event)", e1.FirstEdge)
	}
	for _, ev := range e1.Events {
		if ev.Eng != 1 {
			t.Errorf("engagement 1 absorbed foreign event %+v", ev)
		}
	}
	assertSane(t, e1.Tree())

	// Engagement 2 survived intact and pairs exactly as without the wrap.
	e2 := engs[1]
	if !e2.HasRF || e2.RFOn != 20068 || e2.RFOff != 30068 {
		t.Errorf("eng2 rf = %d/%d", e2.RFOn, e2.RFOff)
	}
	if b, ok := e2.BurstCycles(); !ok || b != 10000 {
		t.Errorf("eng2 burst = %d (%v), want 10000", b, ok)
	}
	if !e2.Complete || e2.Release != 30132 {
		t.Errorf("eng2 release = %d complete=%v", e2.Release, e2.Complete)
	}
	assertSane(t, e2.Tree())
}

func TestBuildAfterDeepWrap(t *testing.T) {
	// Depth 6: engagement 1 is reduced to its holdoff release alone — a
	// zero-width engagement, still rendered without panic or negative spans.
	live := wrappedJournal(t, 6)
	engs := Build(live.Events())
	if len(engs) != 2 {
		t.Fatalf("got %d engagements, want 2", len(engs))
	}
	e1 := engs[0]
	if len(e1.Events) != 1 || !e1.Complete {
		t.Fatalf("eng1 = %+v, want single surviving release event", e1)
	}
	if e1.FirstEdge != e1.Release {
		t.Errorf("zero-width engagement spans [%d,%d]", e1.FirstEdge, e1.Release)
	}
	assertSane(t, e1.Tree())
	var buf bytes.Buffer
	if err := WriteTree(&buf, &e1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "engagement-1 @10232 +0 cyc") {
		t.Errorf("tree rendering:\n%s", buf.String())
	}
}
