// Package span reconstructs detection engagements from the telemetry
// journal as causal span trees. The core stamps every sample-clocked event
// with an engagement ID (see telemetry.Event.Eng); this package groups a
// journal by that ID and derives, for each engagement, the causal chain the
// paper's timing analysis is built on:
//
//	engagement
//	├── detect      first detector edge → trigger decision
//	├── turnaround  trigger decision → jam TX on
//	│   ├── jam-delay  surgical delay phase (when configured)
//	│   └── duc-fill   DUC pipeline fill (the 80 ns Tinit)
//	├── burst       jam TX on → jam TX off
//	└── holdoff     jam TX off → holdoff release
//
// All stamps are 100 MHz hardware-clock cycles taken by the datapath itself,
// so span durations are exact cycle counts, not wall-clock estimates.
package span

import (
	"fmt"
	"io"

	"repro/internal/telemetry"
)

// Span is one node of an engagement's causal tree: a named half-open
// interval [Start, End] in hardware-clock cycles with nested children.
type Span struct {
	Name     string
	Start    uint64
	End      uint64
	Children []Span
}

// Cycles returns the span duration in clock cycles.
func (s Span) Cycles() uint64 { return s.End - s.Start }

// Engagement is one reconstructed detection engagement: every journal event
// carrying the same non-zero engagement ID, plus the causal stamps derived
// from them. Zero-valued stamps guarded by their Has* flags.
type Engagement struct {
	// ID is the core-assigned engagement ID (monotonic within a run).
	ID uint32
	// Events holds the engagement's journal events in journal order.
	Events []telemetry.Event

	// FirstEdge is the cycle of the detector edge that opened the
	// engagement.
	FirstEdge uint64
	// Fire is the trigger-decision cycle (HasFire false when the edges
	// never completed a trigger — a sequence abandon or sub-threshold
	// activity).
	Fire    uint64
	HasFire bool
	// DelayStart and InitStart mark the jammer's surgical-delay and
	// DUC-fill phase entries.
	DelayStart uint64
	HasDelay   bool
	InitStart  uint64
	HasInit    bool
	// RFOn and RFOff bound the jamming burst at RF.
	RFOn  uint64
	HasRF bool
	RFOff uint64
	// Release is the holdoff-release cycle; Complete reports whether the
	// engagement closed inside the journal (false for an engagement still
	// open at capture time or whose tail fell off the ring).
	Release  uint64
	Complete bool
}

// last returns the cycle of the engagement's last recorded event.
func (e *Engagement) last() uint64 {
	if n := len(e.Events); n > 0 {
		return e.Events[n-1].Cycle
	}
	return e.FirstEdge
}

// End returns the engagement's closing cycle: the holdoff release when
// complete, otherwise the last event seen.
func (e *Engagement) End() uint64 {
	if e.Complete {
		return e.Release
	}
	return e.last()
}

// ReactionCycles returns first-edge → RF-on: the datapath's reaction to the
// packet as observed from its own detector (excludes front-end group delay
// and any pre-edge detection latency).
func (e *Engagement) ReactionCycles() (uint64, bool) {
	if !e.HasRF {
		return 0, false
	}
	return e.RFOn - e.FirstEdge, true
}

// TurnaroundCycles returns trigger-fire → RF-on (the paper's Tinit plus any
// configured surgical delay).
func (e *Engagement) TurnaroundCycles() (uint64, bool) {
	if !e.HasFire || !e.HasRF {
		return 0, false
	}
	return e.RFOn - e.Fire, true
}

// BurstCycles returns the jamming burst duration at RF.
func (e *Engagement) BurstCycles() (uint64, bool) {
	if !e.HasRF || e.RFOff < e.RFOn {
		return 0, false
	}
	return e.RFOff - e.RFOn, true
}

// Tree builds the engagement's causal span tree. Phases that did not occur
// (no trigger, no burst) are simply absent, so a noise engagement renders as
// a bare root with a holdoff child.
func (e *Engagement) Tree() Span {
	root := Span{
		Name:  fmt.Sprintf("engagement-%d", e.ID),
		Start: e.FirstEdge,
		End:   e.End(),
	}
	if e.HasFire {
		root.Children = append(root.Children, Span{
			Name: "detect", Start: e.FirstEdge, End: e.Fire,
		})
		if e.HasRF {
			turn := Span{Name: "turnaround", Start: e.Fire, End: e.RFOn}
			if e.HasDelay {
				end := e.RFOn
				if e.HasInit {
					end = e.InitStart
				}
				turn.Children = append(turn.Children, Span{
					Name: "jam-delay", Start: e.DelayStart, End: end,
				})
			}
			if e.HasInit {
				turn.Children = append(turn.Children, Span{
					Name: "duc-fill", Start: e.InitStart, End: e.RFOn,
				})
			}
			root.Children = append(root.Children, turn)
		}
	}
	if e.HasRF && e.RFOff >= e.RFOn {
		root.Children = append(root.Children, Span{
			Name: "burst", Start: e.RFOn, End: e.RFOff,
		})
		if e.Complete {
			root.Children = append(root.Children, Span{
				Name: "holdoff", Start: e.RFOff, End: e.Release,
			})
		}
	} else if e.Complete {
		// No burst: the holdoff ran from the opening edge.
		root.Children = append(root.Children, Span{
			Name: "holdoff", Start: e.FirstEdge, End: e.Release,
		})
	}
	return root
}

// Build groups a journal by engagement ID and derives the causal stamps for
// each. Engagements are returned in order of first appearance (which is ID
// order for a single-run journal). Events with Eng == 0 (frame markers,
// register writes, host polls) are ignored.
func Build(events []telemetry.Event) []Engagement {
	var out []Engagement
	idx := map[uint32]int{}
	for _, ev := range events {
		if ev.Eng == 0 {
			continue
		}
		i, ok := idx[ev.Eng]
		if !ok {
			i = len(out)
			idx[ev.Eng] = i
			out = append(out, Engagement{ID: ev.Eng, FirstEdge: ev.Cycle})
		}
		e := &out[i]
		e.Events = append(e.Events, ev)
		switch ev.Kind {
		case telemetry.EvTriggerFire:
			if !e.HasFire {
				e.Fire, e.HasFire = ev.Cycle, true
			}
		case telemetry.EvJamDelay:
			if !e.HasDelay {
				e.DelayStart, e.HasDelay = ev.Cycle, true
			}
		case telemetry.EvJamInit:
			if !e.HasInit {
				e.InitStart, e.HasInit = ev.Cycle, true
			}
		case telemetry.EvJamRFOn:
			if !e.HasRF {
				e.RFOn, e.HasRF = ev.Cycle, true
			}
		case telemetry.EvJamRFOff:
			e.RFOff = ev.Cycle
		case telemetry.EvHoldoffRelease:
			e.Release, e.Complete = ev.Cycle, true
		}
	}
	return out
}

// WriteTree renders one engagement's span tree as an indented text listing
// with cycle and microsecond durations — the human-readable companion to the
// Chrome-trace export.
func WriteTree(w io.Writer, e *Engagement) error {
	var walk func(s Span, depth int) error
	walk = func(s Span, depth int) error {
		for i := 0; i < depth; i++ {
			if _, err := io.WriteString(w, "  "); err != nil {
				return err
			}
		}
		d := s.Cycles()
		if _, err := fmt.Fprintf(w, "%s @%d +%d cyc (%v)\n",
			s.Name, s.Start, d, telemetry.CyclesToDuration(d)); err != nil {
			return err
		}
		for _, c := range s.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(e.Tree(), 0)
}
