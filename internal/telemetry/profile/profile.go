// Package profile is the continuous-profiling leg of the observability
// plane: a Sampler that periodically captures CPU and heap profiles to a
// directory during long runs (jamlab serving sessions, experiment
// campaigns), and a one-shot Capture that summarizes the process's memory
// and GC state for attachment to the benchmark baseline. The pprof files
// are standard `go tool pprof` inputs; the Summary is small, JSON-friendly
// and append-only so baselines stay diffable.
package profile

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"
)

// Summary digests the process state and what a Sampler captured.
type Summary struct {
	// HeapAllocBytes and TotalAllocBytes are live and cumulative heap
	// usage; SysBytes is what the runtime took from the OS.
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	SysBytes        uint64 `json:"sys_bytes"`
	// HeapObjects is the live object count.
	HeapObjects uint64 `json:"heap_objects"`
	// NumGC counts completed GC cycles; GCPauseTotalNS their total
	// stop-the-world pause time.
	NumGC          uint32 `json:"num_gc"`
	GCPauseTotalNS uint64 `json:"gc_pause_total_ns"`
	// NumGoroutine is the live goroutine count at capture.
	NumGoroutine int `json:"num_goroutine"`
	// CPUProfiles and HeapProfiles count the files a Sampler wrote (zero
	// for a one-shot Capture).
	CPUProfiles  int `json:"cpu_profiles,omitempty"`
	HeapProfiles int `json:"heap_profiles,omitempty"`
	// Dir is the Sampler's output directory (empty for one-shot).
	Dir string `json:"dir,omitempty"`
}

// Capture returns a one-shot summary of the process's memory/GC state.
func Capture() Summary {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return Summary{
		HeapAllocBytes:  m.HeapAlloc,
		TotalAllocBytes: m.TotalAlloc,
		SysBytes:        m.Sys,
		HeapObjects:     m.HeapObjects,
		NumGC:           m.NumGC,
		GCPauseTotalNS:  m.PauseTotalNs,
		NumGoroutine:    runtime.NumGoroutine(),
	}
}

// Config tunes a Sampler.
type Config struct {
	// Dir receives the profile files (created if missing).
	Dir string
	// Interval is the capture cadence (default 30 s).
	Interval time.Duration
	// CPUWindow is each CPU profile's duration (default 5 s; clamped to
	// Interval/2 so capture never overruns the cadence).
	CPUWindow time.Duration
}

// Sampler periodically captures heap and CPU profiles. Start it once;
// Stop returns the final Summary.
type Sampler struct {
	cfg  Config
	stop chan struct{}
	done chan struct{}

	mu   sync.Mutex
	cpu  int
	heap int
	err  error // first capture error, reported by Stop
}

// NewSampler returns an unstarted sampler.
func NewSampler(cfg Config) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.CPUWindow <= 0 {
		cfg.CPUWindow = 5 * time.Second
	}
	if cfg.CPUWindow > cfg.Interval/2 {
		cfg.CPUWindow = cfg.Interval / 2
	}
	return &Sampler{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start creates the output directory and launches the capture loop.
func (s *Sampler) Start() error {
	if s.cfg.Dir == "" {
		return fmt.Errorf("profile: Dir must be set")
	}
	if err := os.MkdirAll(s.cfg.Dir, 0o755); err != nil {
		return err
	}
	go s.loop()
	return nil
}

func (s *Sampler) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.captureOnce()
		}
	}
}

// captureOnce writes one heap profile and one CPU profile window.
func (s *Sampler) captureOnce() {
	s.mu.Lock()
	heapN, cpuN := s.heap+1, s.cpu+1
	s.mu.Unlock()

	if err := s.writeHeap(heapN); err != nil {
		s.fail(err)
		return
	}
	ok := true
	if err := s.writeCPU(cpuN); err != nil {
		s.fail(err)
		ok = false
	}
	s.mu.Lock()
	s.heap = heapN
	if ok {
		s.cpu = cpuN
	}
	s.mu.Unlock()
}

func (s *Sampler) writeHeap(n int) error {
	f, err := os.Create(filepath.Join(s.cfg.Dir, fmt.Sprintf("heap_%04d.pprof", n)))
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // up-to-date allocation data
	return pprof.WriteHeapProfile(f)
}

func (s *Sampler) writeCPU(n int) error {
	f, err := os.Create(filepath.Join(s.cfg.Dir, fmt.Sprintf("cpu_%04d.pprof", n)))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another CPU profile is active (e.g. a /debug/pprof/profile
		// scrape); skip this window rather than fight over it.
		return err
	}
	select {
	case <-time.After(s.cfg.CPUWindow):
	case <-s.stop:
	}
	pprof.StopCPUProfile()
	return nil
}

func (s *Sampler) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Stop halts the loop, waits for any in-flight capture, and returns the
// final summary plus the first capture error (nil when all captures
// succeeded).
func (s *Sampler) Stop() (Summary, error) {
	close(s.stop)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := Capture()
	sum.CPUProfiles = s.cpu
	sum.HeapProfiles = s.heap
	sum.Dir = s.cfg.Dir
	return sum, s.err
}
