package profile

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestCaptureSummaryPopulated(t *testing.T) {
	s := Capture()
	if s.HeapAllocBytes == 0 || s.TotalAllocBytes == 0 || s.SysBytes == 0 {
		t.Errorf("empty memory figures: %+v", s)
	}
	if s.NumGoroutine < 1 {
		t.Errorf("goroutines = %d", s.NumGoroutine)
	}
	if s.CPUProfiles != 0 || s.HeapProfiles != 0 || s.Dir != "" {
		t.Errorf("one-shot capture carries sampler fields: %+v", s)
	}
}

func TestSamplerWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	s := NewSampler(Config{Dir: dir, Interval: 20 * time.Millisecond, CPUWindow: 5 * time.Millisecond})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	deadline := time.Now().Add(120 * time.Millisecond)
	x := 0
	for time.Now().Before(deadline) {
		x += x*31 + 7
	}
	_ = x

	sum, err := s.Stop()
	if err != nil {
		t.Fatalf("sampler error: %v", err)
	}
	if sum.HeapProfiles < 1 || sum.CPUProfiles < 1 {
		t.Fatalf("profiles captured = heap:%d cpu:%d, want >= 1 each", sum.HeapProfiles, sum.CPUProfiles)
	}
	if sum.Dir != dir {
		t.Errorf("summary dir = %q, want %q", sum.Dir, dir)
	}
	heap, _ := filepath.Glob(filepath.Join(dir, "heap_*.pprof"))
	cpu, _ := filepath.Glob(filepath.Join(dir, "cpu_*.pprof"))
	if len(heap) != sum.HeapProfiles || len(cpu) != sum.CPUProfiles {
		t.Errorf("files on disk heap:%d cpu:%d vs summary heap:%d cpu:%d",
			len(heap), len(cpu), sum.HeapProfiles, sum.CPUProfiles)
	}
	for _, f := range append(heap, cpu...) {
		if fi, err := os.Stat(f); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s empty or unreadable: %v", f, err)
		}
	}
}

func TestSamplerRequiresDir(t *testing.T) {
	s := NewSampler(Config{})
	if err := s.Start(); err == nil {
		t.Fatal("Start() with no Dir succeeded")
	}
}
