package telemetry

import "math/bits"

// Histogram is a log-linear latency histogram in hardware clock ticks:
// values 0..15 get exact buckets, and every power-of-two octave above is
// split into 16 linear sub-buckets, giving ≲ 6% relative resolution across
// the full uint64 range with a fixed 976-slot array and no allocation on
// Observe. Not safe for concurrent use on its own; the Live recorder guards
// its histograms with its journal mutex.
type Histogram struct {
	counts [numBuckets]uint64
	count  uint64
	sum    uint64
	min    uint64
	max    uint64
}

const (
	histSubBits = 4 // 16 linear sub-buckets per octave
	histSub     = 1 << histSubBits
	// Buckets: histSub exact small-value buckets plus 16 per remaining
	// octave of a 64-bit value.
	numBuckets = histSub + (64-histSubBits)*histSub
)

// bucketIndex maps a value to its bucket. Values below 16 are exact; above,
// the top five significant bits select (octave, sub-bucket).
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(v) - 1 // 2^e <= v < 2^(e+1), e >= histSubBits
	sub := v>>(uint(e)-histSubBits) - histSub
	return histSub + (e-histSubBits)*histSub + int(sub)
}

// bucketUpper returns the largest value mapping to bucket i.
func bucketUpper(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	e := histSubBits + (i-histSub)/histSub
	sub := uint64((i - histSub) % histSub)
	return (histSub+sub+1)<<(uint(e)-histSubBits) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min and Max return the observed extremes (0 when empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest observed value.
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// upper edge of the bucket in which that rank falls, clamped to the
// observed maximum. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Reset clears all observations.
func (h *Histogram) Reset() { *h = Histogram{} }

// Snapshot returns a point-in-time copy of the histogram with its headline
// quantiles under the given name. Snapshots are the unit the merge plane
// exchanges: MergeSnapshot of a snapshot is exact (shared bucket
// boundaries), so merging snapshots across shards in any order or grouping
// yields the identical histogram.
func (h *Histogram) Snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{
		Name:  name,
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	h.Buckets(func(upper, count uint64) {
		s.Buckets = append(s.Buckets, [2]uint64{upper, count})
	})
	return s
}

// MergeSnapshot folds a snapshot of another histogram into this one. Bucket
// upper bounds are exact bucket boundaries, so each snapshot bucket lands in
// the identical bucket here and quantiles of the merged histogram match a
// histogram that had observed both streams directly (sum, count, min and max
// are merged exactly).
func (h *Histogram) MergeSnapshot(s HistogramSnapshot) {
	if s.Count == 0 {
		return
	}
	for _, b := range s.Buckets {
		h.counts[bucketIndex(b[0])] += b[1]
	}
	if h.count == 0 || s.Min < h.min {
		h.min = s.Min
	}
	if s.Max > h.max {
		h.max = s.Max
	}
	h.count += s.Count
	h.sum += s.Sum
}

// Buckets calls fn for every non-empty bucket in ascending order with the
// bucket's inclusive upper bound and its count.
func (h *Histogram) Buckets(fn func(upper uint64, count uint64)) {
	for i, c := range h.counts {
		if c != 0 {
			fn(bucketUpper(i), c)
		}
	}
}
