package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testSource returns a one-cell rollup source backed by a live recorder.
func testSource(live *Live) RollupSource {
	return func(seq uint64) []Rollup {
		return []Rollup{RollupFrom("cell0", seq, live)}
	}
}

// TestBroadcasterDropsStalledClient is the slow-consumer regression test:
// a subscriber that never drains its queue must be dropped and counted
// while a healthy subscriber keeps receiving rollups — the broadcast tick
// must never block on the stalled client.
func TestBroadcasterDropsStalledClient(t *testing.T) {
	live := NewLive(256)
	b := NewBroadcaster(time.Millisecond, testSource(live))
	b.Start()
	defer b.Stop()

	// A never-reading client: subscribed, queue never drained.
	stalled := b.subscribe()

	// A healthy client drains continuously and tallies frames.
	healthy := b.subscribe()
	got := make(chan int)
	go func() {
		n := 0
		for range healthy.frames {
			n++
		}
		got <- n
	}()

	// The stalled client's queue (streamClientQueue frames, one already
	// holding the subscribe-time frame) fills within a few ticks and the
	// broadcaster must cut it loose.
	deadline := time.After(5 * time.Second)
	for b.DroppedClients() == 0 {
		select {
		case <-deadline:
			t.Fatal("stalled client never dropped")
		case <-time.After(time.Millisecond):
		}
	}
	if got := b.DroppedClients(); got != 1 {
		t.Fatalf("DroppedClients = %d, want 1", got)
	}
	// The dropped client's channel is closed.
	drained := 0
	for range stalled.frames {
		drained++
	}
	if drained > streamClientQueue {
		t.Fatalf("stalled client held %d frames, queue bound is %d", drained, streamClientQueue)
	}

	// The healthy client is still subscribed and keeps receiving.
	b.Stop()
	if n := <-got; n < 2 {
		t.Fatalf("healthy client got %d frames, want >= 2", n)
	}
	if got := b.DroppedClients(); got != 1 {
		t.Fatalf("healthy client counted as dropped: DroppedClients = %d", got)
	}
}

// TestBroadcasterServeHTTP checks the HTTP surface end to end: SSE
// headers, rollup framing, advancing sequence numbers.
func TestBroadcasterServeHTTP(t *testing.T) {
	live := NewLive(256)
	c := &Counters{}
	live.BindCounters(c)
	c.Samples.Store(777)

	b := NewBroadcaster(2*time.Millisecond, testSource(live))
	b.Start()
	defer b.Stop()

	srv := httptest.NewServer(b)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var rollups []Rollup
	for len(rollups) < 3 && sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var r Rollup
		if err := json.Unmarshal([]byte(line[len("data: "):]), &r); err != nil {
			t.Fatalf("bad rollup %q: %v", line, err)
		}
		rollups = append(rollups, r)
	}
	if len(rollups) < 3 {
		t.Fatalf("stream ended after %d rollups: %v", len(rollups), sc.Err())
	}
	for i, r := range rollups {
		if r.Cell != "cell0" || r.Counters.Samples != 777 {
			t.Errorf("rollup %d = %+v", i, r)
		}
	}
	if rollups[0].Seq == rollups[2].Seq {
		t.Errorf("seq did not advance: %d .. %d", rollups[0].Seq, rollups[2].Seq)
	}
}
