// Package fleet is the multi-cell aggregation layer over internal/telemetry:
// the substrate a fleet-scale engagement service stands on. Each testbed
// cell (one radio/core/jammer stack) owns a cheap CellRecorder — the
// existing zero-alloc atomic counter block plus the log-linear latency
// histograms — and an Aggregator periodically snapshots every cell and
// merges the shards into fleet rollups: summed counters, histogram merges
// that are exact under any merge order, per-cell SLO verdicts via the
// internal/telemetry/slo budget machinery, and top-K worst-cell rankings.
//
// The hot path stays lock-free: cells increment their own atomic counters
// and the per-cell mutex only guards edge-rate state (histograms, outcome
// tallies), exactly like the single-cell Live recorder. Registration and
// lookup are sharded so thousands of cells do not contend on one map lock.
//
// The aggregated state is exported three ways: a cardinality-bounded
// OpenMetrics scrape (expo.go), a JSONL fleet ledger (ledger.go), and SSE
// rollups for the /stream surface (rollup.go).
package fleet

import (
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/slo"
)

// numShards spreads cell registration across independent locks. Power of
// two so the hash folds with a mask.
const numShards = 64

// CellRecorder is one cell's telemetry state inside the fleet plane. The
// counter block is the same atomic Counters the datapath increments
// directly — a cell may hand &CellRecorder.Counters to its core, making
// hot-path increments lock-free — while histograms and outcome tallies sit
// behind a mutex touched only at edge/ingest rate.
type CellRecorder struct {
	name string

	// Counters is the cell's datapath counter block (atomic; lock-free).
	Counters telemetry.Counters

	mu          sync.Mutex
	live        *telemetry.Live // bound live recorder (pull on snapshot)
	reaction    telemetry.Histogram
	triggerToRF telemetry.Histogram
	dropped     uint64
	engagements uint64
	frames      uint64
	jammed      uint64
}

// Name returns the cell's registered name.
func (c *CellRecorder) Name() string { return c.name }

// BindLive attaches a live single-cell recorder. On every aggregator
// snapshot the live recorder's own snapshot is folded in on top of the
// accumulated state, so a long-running cell (jamlab) exports through the
// fleet plane without double counting: bound state replaces, it does not
// accumulate.
func (c *CellRecorder) BindLive(l *telemetry.Live) {
	c.mu.Lock()
	c.live = l
	c.mu.Unlock()
}

// Absorb folds a finished run's telemetry snapshot into the cell:
// counters add atomically, histograms merge exactly (bucket boundaries are
// shared), journal drops and engagements accumulate. Safe to call while
// the aggregator snapshots concurrently.
func (c *CellRecorder) Absorb(s telemetry.Snapshot) {
	c.Counters.Add(s.Counters)
	c.mu.Lock()
	c.reaction.MergeSnapshot(s.Histogram(telemetry.HistReaction))
	c.triggerToRF.MergeSnapshot(s.Histogram(telemetry.HistTriggerToRF))
	c.dropped += s.Dropped
	c.engagements += s.Engagements
	c.mu.Unlock()
}

// AddOutcome records ground-truth detection outcomes: frames offered to the
// cell and frames that drew a jamming response. The difference feeds the
// per-cell false-negative rate the SLO budget and worst-cell ranking use.
func (c *CellRecorder) AddOutcome(frames, jammed uint64) {
	c.mu.Lock()
	c.frames += frames
	c.jammed += jammed
	c.mu.Unlock()
}

// ObserveReaction records one end-to-end reaction latency (cycles) for
// cells that feed the fleet plane directly instead of absorbing snapshots.
func (c *CellRecorder) ObserveReaction(cycles uint64) {
	c.mu.Lock()
	c.reaction.Observe(cycles)
	c.mu.Unlock()
}

// ObserveTriggerToRF records one trigger-fire→RF-on turnaround (cycles).
func (c *CellRecorder) ObserveTriggerToRF(cycles uint64) {
	c.mu.Lock()
	c.triggerToRF.Observe(cycles)
	c.mu.Unlock()
}

// snapshot captures the cell under its own lock. A bound live recorder is
// snapshotted outside c.mu first (Live has its own mutex; taking them in
// this fixed order, never nested the other way, avoids ordering hazards).
func (c *CellRecorder) snapshot() CellSnapshot {
	var liveSnap telemetry.Snapshot
	c.mu.Lock()
	l := c.live
	c.mu.Unlock()
	hasLive := l != nil
	if hasLive {
		liveSnap = l.Snapshot()
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	var reaction, triggerToRF telemetry.Histogram
	reaction.MergeSnapshot(c.reaction.Snapshot(""))
	triggerToRF.MergeSnapshot(c.triggerToRF.Snapshot(""))
	s := CellSnapshot{
		Cell:        c.name,
		Counters:    c.Counters.Snapshot(),
		Dropped:     c.dropped,
		Engagements: c.engagements,
		Frames:      c.frames,
		Jammed:      c.jammed,
	}
	if hasLive {
		s.Counters.Add(liveSnap.Counters)
		reaction.MergeSnapshot(liveSnap.Histogram(telemetry.HistReaction))
		triggerToRF.MergeSnapshot(liveSnap.Histogram(telemetry.HistTriggerToRF))
		s.Dropped += liveSnap.Dropped
		s.Engagements += liveSnap.Engagements
	}
	s.Reaction = reaction.Snapshot(telemetry.HistReaction)
	s.TriggerToRF = triggerToRF.Snapshot(telemetry.HistTriggerToRF)
	return s
}

// Options configures an Aggregator.
type Options struct {
	// Budgets are the per-cell SLO budgets (DefaultBudgets when nil).
	Budgets []slo.Budget
	// TopK bounds the worst-cell rankings (default 8).
	TopK int
	// LabelBudget bounds how many cells get their own `cell` label in the
	// OpenMetrics exposition; the rest collapse into cell="other"
	// (default 32).
	LabelBudget int
	// DroppedClients, when set, reports the SSE broadcaster's dropped
	// slow-client count into the exposition.
	DroppedClients func() uint64
}

// MetricFNRate is the per-cell false-negative-rate metric evaluated against
// the fleet SLO budgets: (frames - jammed) / frames from AddOutcome ground
// truth.
const MetricFNRate = "fn_rate"

// DefaultBudgets returns the fleet per-cell budget set: the paper's
// reaction and turnaround bounds (with the front-end group-delay allowance,
// as in slo.DefaultBudgets), zero journal drops, and a 1% false-negative
// ceiling. Late-jam and false-alarm budgets need the per-packet ledger and
// are evaluated by the single-cell SLO gate instead.
func DefaultBudgets(frontEndCycles uint64) []slo.Budget {
	all := slo.DefaultBudgets(frontEndCycles)
	var out []slo.Budget
	for _, b := range all {
		switch b.Metric {
		case slo.MetricReactionP99, slo.MetricTriggerToRFP99, slo.MetricJournalDropped:
			out = append(out, b)
		}
	}
	return append(out, slo.Budget{
		Metric:      MetricFNRate,
		Max:         0.01,
		Description: "undetected frames, of frames offered to the cell",
	})
}

// shard is one registration partition.
type shard struct {
	mu    sync.RWMutex
	cells map[string]*CellRecorder
}

// Aggregator owns the fleet's cells and produces merged snapshots. Cell
// registration and lookup are sharded; Snapshot walks all shards.
type Aggregator struct {
	opts   Options
	shards [numShards]shard

	latest atomic.Pointer[Snapshot]

	runMu sync.Mutex
	stop  chan struct{}
	done  chan struct{}
}

// New returns an aggregator with the given options.
func New(opts Options) *Aggregator {
	if opts.TopK <= 0 {
		opts.TopK = 8
	}
	if opts.LabelBudget <= 0 {
		opts.LabelBudget = 32
	}
	a := &Aggregator{opts: opts}
	for i := range a.shards {
		a.shards[i].cells = make(map[string]*CellRecorder)
	}
	return a
}

// Budgets returns the per-cell SLO budget set the aggregator evaluates.
func (a *Aggregator) Budgets() []slo.Budget { return a.opts.Budgets }

// LabelBudget returns the configured cell-label cardinality budget.
func (a *Aggregator) LabelBudget() int { return a.opts.LabelBudget }

func shardIndex(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() & (numShards - 1))
}

// Cell returns the named cell's recorder, registering it on first use.
func (a *Aggregator) Cell(name string) *CellRecorder {
	sh := &a.shards[shardIndex(name)]
	sh.mu.RLock()
	c := sh.cells[name]
	sh.mu.RUnlock()
	if c != nil {
		return c
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c = sh.cells[name]; c == nil {
		c = &CellRecorder{name: name}
		sh.cells[name] = c
	}
	return c
}

// Cells returns the number of registered cells.
func (a *Aggregator) Cells() int {
	n := 0
	for i := range a.shards {
		a.shards[i].mu.RLock()
		n += len(a.shards[i].cells)
		a.shards[i].mu.RUnlock()
	}
	return n
}

// Snapshot captures every cell, evaluates the SLO budgets per cell, merges
// the fleet totals and computes the worst-cell rankings. Cells are sorted
// by name, so the result is deterministic for a given fleet state no matter
// which shard or goroutine a cell registered from.
func (a *Aggregator) Snapshot() *Snapshot {
	var cells []CellSnapshot
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.RLock()
		recs := make([]*CellRecorder, 0, len(sh.cells))
		for _, c := range sh.cells {
			recs = append(recs, c)
		}
		sh.mu.RUnlock()
		for _, c := range recs {
			cells = append(cells, c.snapshot())
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Cell < cells[j].Cell })

	s := &Snapshot{Cells: cells}
	budgets := a.opts.Budgets
	for i := range s.Cells {
		c := &s.Cells[i]
		c.FNRate = fnRate(c.Frames, c.Jammed)
		c.SLO = slo.Evaluate(budgets, c.Metrics())
		if c.SLO.Pass {
			s.SLOPassing++
		} else {
			s.SLOFailing++
		}
	}
	s.mergeTotals()
	s.rank(a.opts.TopK)
	if a.opts.DroppedClients != nil {
		s.StreamDroppedClients = a.opts.DroppedClients()
	}
	a.latest.Store(s)
	return s
}

func fnRate(frames, jammed uint64) float64 {
	if frames == 0 {
		return 0
	}
	missed := uint64(0)
	if jammed < frames {
		missed = frames - jammed
	}
	return float64(missed) / float64(frames)
}

// Latest returns the most recent snapshot (nil before the first one).
func (a *Aggregator) Latest() *Snapshot { return a.latest.Load() }

// Start launches the background aggregation loop: a snapshot every
// interval until Stop. Restarting a running aggregator is a no-op.
func (a *Aggregator) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	a.runMu.Lock()
	defer a.runMu.Unlock()
	if a.stop != nil {
		return
	}
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		a.Snapshot()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				a.Snapshot()
			}
		}
	}(a.stop, a.done)
}

// Stop halts the background loop (no-op when not running).
func (a *Aggregator) Stop() {
	a.runMu.Lock()
	defer a.runMu.Unlock()
	if a.stop == nil {
		return
	}
	close(a.stop)
	<-a.done
	a.stop, a.done = nil, nil
}
