package fleet

import (
	"bufio"
	"encoding/json"
	"io"

	"repro/internal/telemetry/slo"
)

// The fleet ledger is the periodic JSONL artifact of a fleet run, in the
// same spirit as the per-packet verdict ledger and the chaos campaign
// report: a summary line followed by one line per cell, sorted by name.
// Every field derives from seeded state, so for a given seed the ledger is
// byte-identical across runs — except WallMS, the single wall-clock field,
// which bench tooling is expected to ignore when diffing.

// LedgerMeta carries the run identity stamped into the summary line.
type LedgerMeta struct {
	// Scenario names the run (e.g. "fleetobs").
	Scenario string `json:"scenario"`
	// Seed is the master seed the per-cell seeds derive from.
	Seed int64 `json:"seed"`
	// WallMS is the run's wall-clock duration in milliseconds — the only
	// non-deterministic field in the ledger.
	WallMS float64 `json:"wall_ms"`
}

// ledgerSummary is the first JSONL line.
type ledgerSummary struct {
	Type string `json:"type"`
	LedgerMeta
	Cells                int     `json:"cells"`
	SLOPassing           int     `json:"slo_passing"`
	SLOFailing           int     `json:"slo_failing"`
	Samples              uint64  `json:"samples"`
	JamTriggers          uint64  `json:"jam_triggers"`
	Engagements          uint64  `json:"engagements"`
	Dropped              uint64  `json:"journal_dropped"`
	Frames               uint64  `json:"frames"`
	Jammed               uint64  `json:"jammed"`
	FNRate               float64 `json:"fn_rate"`
	ReactionP50          uint64  `json:"reaction_p50_cycles"`
	ReactionP99          uint64  `json:"reaction_p99_cycles"`
	TriggerToRFP99       uint64  `json:"trigger_to_rf_p99_cycles"`
	WorstReactionP99     []Rank  `json:"worst_reaction_p99,omitempty"`
	WorstFNRate          []Rank  `json:"worst_fn_rate,omitempty"`
	WorstDropped         []Rank  `json:"worst_journal_dropped,omitempty"`
	StreamDroppedClients uint64  `json:"stream_dropped_clients"`
}

// ledgerCell is one per-cell JSONL line.
type ledgerCell struct {
	Type           string   `json:"type"`
	Cell           string   `json:"cell"`
	Samples        uint64   `json:"samples"`
	JamTriggers    uint64   `json:"jam_triggers"`
	Engagements    uint64   `json:"engagements"`
	Dropped        uint64   `json:"journal_dropped"`
	Frames         uint64   `json:"frames"`
	Jammed         uint64   `json:"jammed"`
	FNRate         float64  `json:"fn_rate"`
	ReactionP50    uint64   `json:"reaction_p50_cycles"`
	ReactionP99    uint64   `json:"reaction_p99_cycles"`
	TriggerToRFP99 uint64   `json:"trigger_to_rf_p99_cycles"`
	SLOPass        bool     `json:"slo_pass"`
	SLOFailed      []string `json:"slo_failed,omitempty"`
}

// WriteLedger renders the snapshot as the JSONL fleet ledger.
func WriteLedger(w io.Writer, s *Snapshot, meta LedgerMeta) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	sum := ledgerSummary{
		Type:                 "fleet",
		LedgerMeta:           meta,
		Cells:                len(s.Cells),
		SLOPassing:           s.SLOPassing,
		SLOFailing:           s.SLOFailing,
		Samples:              s.Total.Counters.Samples,
		JamTriggers:          s.Total.Counters.JamTriggers,
		Engagements:          s.Total.Engagements,
		Dropped:              s.Total.Dropped,
		Frames:               s.Total.Frames,
		Jammed:               s.Total.Jammed,
		FNRate:               s.Total.FNRate,
		ReactionP50:          s.Total.Reaction.P50,
		ReactionP99:          s.Total.Reaction.P99,
		TriggerToRFP99:       s.Total.TriggerToRF.P99,
		WorstReactionP99:     s.WorstReactionP99,
		WorstFNRate:          s.WorstFNRate,
		WorstDropped:         s.WorstDropped,
		StreamDroppedClients: s.StreamDroppedClients,
	}
	if err := enc.Encode(sum); err != nil {
		return err
	}
	for i := range s.Cells {
		c := &s.Cells[i]
		row := ledgerCell{
			Type:           "cell",
			Cell:           c.Cell,
			Samples:        c.Counters.Samples,
			JamTriggers:    c.Counters.JamTriggers,
			Engagements:    c.Engagements,
			Dropped:        c.Dropped,
			Frames:         c.Frames,
			Jammed:         c.Jammed,
			FNRate:         c.FNRate,
			ReactionP50:    c.Reaction.P50,
			ReactionP99:    c.Reaction.P99,
			TriggerToRFP99: c.TriggerToRF.P99,
			SLOPass:        c.SLO.Pass,
			SLOFailed:      failedMetrics(c.SLO),
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func failedMetrics(rep slo.Report) []string {
	var out []string
	for _, c := range rep.Failed() {
		out = append(out, c.Budget.Metric)
	}
	return out
}
