package fleet

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/slo"
)

// feedCell absorbs a deterministic synthetic run into the named cell:
// frames engagements with the given reaction latency, plus ground-truth
// outcome tallies.
func feedCell(a *Aggregator, name string, frames int, reactionCycles uint64, missed int) {
	live := telemetry.NewLive(1 << 10)
	var counters telemetry.Counters
	live.BindCounters(&counters)
	cycle := uint64(0)
	for f := 0; f < frames-missed; f++ {
		live.Event(telemetry.EvFrameStart, cycle, 0, uint32(f+1))
		live.Event(telemetry.EvTriggerFire, cycle+reactionCycles-8, 0, uint32(f+1))
		live.Event(telemetry.EvJamRFOn, cycle+reactionCycles, 0, uint32(f+1))
		live.Event(telemetry.EvJamRFOff, cycle+reactionCycles+100, 0, uint32(f+1))
		live.Event(telemetry.EvHoldoffRelease, cycle+reactionCycles+120, 0, uint32(f+1))
		counters.Samples.Add(2000)
		counters.JamTriggers.Add(1)
		cycle += 2000
	}
	c := a.Cell(name)
	c.Absorb(live.Snapshot())
	c.AddOutcome(uint64(frames), uint64(frames-missed))
}

func testBudgets() []slo.Budget {
	return DefaultBudgets(20)
}

func TestAggregatorSnapshotMergesCells(t *testing.T) {
	a := New(Options{Budgets: testBudgets(), TopK: 3, LabelBudget: 4})
	feedCell(a, "cell-b", 10, 100, 0)
	feedCell(a, "cell-a", 10, 120, 0)
	feedCell(a, "cell-c", 10, 400, 1) // slow and lossy: fails SLO

	s := a.Snapshot()
	if len(s.Cells) != 3 || a.Cells() != 3 {
		t.Fatalf("cells = %d/%d, want 3", len(s.Cells), a.Cells())
	}
	// Sorted by name.
	for i, want := range []string{"cell-a", "cell-b", "cell-c"} {
		if s.Cells[i].Cell != want {
			t.Fatalf("cells[%d] = %q, want %q", i, s.Cells[i].Cell, want)
		}
	}
	// Totals: counters summed, histogram counts added.
	if s.Total.Counters.JamTriggers != 10+10+9 {
		t.Errorf("total jam triggers = %d", s.Total.Counters.JamTriggers)
	}
	if s.Total.Reaction.Count != 29 {
		t.Errorf("total reaction count = %d", s.Total.Reaction.Count)
	}
	if s.Total.Frames != 30 || s.Total.Jammed != 29 {
		t.Errorf("total outcome = %d/%d", s.Total.Jammed, s.Total.Frames)
	}

	// SLO verdicts: a and b pass (reaction well under 136+20), c fails on
	// both reaction p99 and FN rate.
	if s.SLOPassing != 2 || s.SLOFailing != 1 {
		t.Fatalf("SLO passing/failing = %d/%d, want 2/1", s.SLOPassing, s.SLOFailing)
	}
	cc := s.CellByName("cell-c")
	if cc == nil || cc.SLO.Pass {
		t.Fatalf("cell-c should fail its SLO: %+v", cc)
	}
	var failed []string
	for _, chk := range cc.SLO.Failed() {
		failed = append(failed, chk.Budget.Metric)
	}
	if len(failed) != 2 || failed[0] != slo.MetricReactionP99 || failed[1] != MetricFNRate {
		t.Errorf("cell-c failed budgets = %v", failed)
	}

	// Per-cell verdict reconciles bit-for-bit with a verdict computed from
	// the cell's own metric map.
	for i := range s.Cells {
		c := &s.Cells[i]
		own := slo.Evaluate(testBudgets(), c.Metrics())
		if own.Pass != c.SLO.Pass || len(own.Checks) != len(c.SLO.Checks) {
			t.Fatalf("%s: fleet verdict diverges from own-counter verdict", c.Cell)
		}
		for j := range own.Checks {
			if own.Checks[j] != c.SLO.Checks[j] {
				t.Fatalf("%s: check %d differs: %+v vs %+v",
					c.Cell, j, own.Checks[j], c.SLO.Checks[j])
			}
		}
	}

	// Rankings: worst reaction first, zero-valued cells omitted.
	if len(s.WorstReactionP99) != 3 || s.WorstReactionP99[0].Cell != "cell-c" {
		t.Errorf("worst reaction ranking = %+v", s.WorstReactionP99)
	}
	if len(s.WorstFNRate) != 1 || s.WorstFNRate[0].Cell != "cell-c" {
		t.Errorf("worst FN ranking = %+v", s.WorstFNRate)
	}
	if len(s.WorstDropped) != 0 {
		t.Errorf("drop ranking should be empty: %+v", s.WorstDropped)
	}
}

// TestAggregatorSnapshotDeterministic: two aggregators fed the same cells
// from different goroutine interleavings produce identical snapshots and
// ledgers (modulo the wall-clock meta field, held constant here).
func TestAggregatorSnapshotDeterministic(t *testing.T) {
	build := func(order []int) *bytes.Buffer {
		a := New(Options{Budgets: testBudgets(), TopK: 4, LabelBudget: 8})
		var wg sync.WaitGroup
		for _, i := range order {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				feedCell(a, fmt.Sprintf("cell-%03d", i), 8, uint64(80+i*7), i%3)
			}(i)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := WriteLedger(&buf, a.Snapshot(), LedgerMeta{Scenario: "test", Seed: 7}); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	fwd := build([]int{0, 1, 2, 3, 4, 5, 6, 7})
	rev := build([]int{7, 6, 5, 4, 3, 2, 1, 0})
	if !bytes.Equal(fwd.Bytes(), rev.Bytes()) {
		t.Fatalf("ledger depends on registration order:\n%s\nvs\n%s", fwd, rev)
	}
	// 9 lines: 1 fleet summary + 8 cells.
	if n := strings.Count(fwd.String(), "\n"); n != 9 {
		t.Fatalf("ledger has %d lines, want 9", n)
	}
	if !strings.Contains(fwd.String(), `"type":"fleet"`) {
		t.Fatalf("ledger lacks fleet summary: %s", fwd)
	}
}

// TestCellRecorderBindLive: a bound live recorder is pulled (not
// accumulated) on every snapshot, so repeated aggregator snapshots do not
// double-count a long-running cell.
func TestCellRecorderBindLive(t *testing.T) {
	a := New(Options{Budgets: testBudgets()})
	live := telemetry.NewLive(256)
	var counters telemetry.Counters
	live.BindCounters(&counters)
	counters.Samples.Store(500)
	live.Event(telemetry.EvTriggerFire, 100, 0, 1)
	live.Event(telemetry.EvJamRFOn, 108, 0, 1)
	a.Cell("jamlab").BindLive(live)

	s1 := a.Snapshot()
	s2 := a.Snapshot()
	for _, s := range []*Snapshot{s1, s2} {
		c := s.CellByName("jamlab")
		if c.Counters.Samples != 500 {
			t.Fatalf("bound cell samples = %d, want 500 (no double count)", c.Counters.Samples)
		}
		if c.TriggerToRF.Count != 1 {
			t.Fatalf("bound cell tinit count = %d, want 1", c.TriggerToRF.Count)
		}
	}

	// Hot-path counters on the CellRecorder itself add on top of the
	// bound recorder.
	a.Cell("jamlab").Counters.Samples.Add(10)
	if c := a.Snapshot().CellByName("jamlab"); c.Counters.Samples != 510 {
		t.Fatalf("samples = %d, want 510", c.Counters.Samples)
	}
}

// TestAggregatorBackgroundLoop: Start publishes snapshots via Latest.
func TestAggregatorBackgroundLoop(t *testing.T) {
	a := New(Options{Budgets: testBudgets()})
	feedCell(a, "cell-0", 4, 90, 0)
	a.Start(time.Millisecond)
	defer a.Stop()
	deadline := time.After(5 * time.Second)
	for {
		if s := a.Latest(); s != nil && len(s.Cells) == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("background loop never published a snapshot")
		case <-time.After(time.Millisecond):
		}
	}
	a.Stop()
	a.Stop() // idempotent
}

// TestCellConcurrentRegistration: concurrent Cell() calls on the same and
// different names are safe and never lose increments.
func TestCellConcurrentRegistration(t *testing.T) {
	a := New(Options{Budgets: testBudgets()})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c := a.Cell(fmt.Sprintf("cell-%d", i%32))
				c.Counters.Samples.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if a.Cells() != 32 {
		t.Fatalf("cells = %d, want 32", a.Cells())
	}
	if s := a.Snapshot(); s.Total.Counters.Samples != 8*500 {
		t.Fatalf("total samples = %d, want %d", s.Total.Counters.Samples, 8*500)
	}
}

// TestRollupSource: the SSE adapter emits fleet + per-cell rollups with
// the overflow bucket past the label budget.
func TestRollupSource(t *testing.T) {
	a := New(Options{Budgets: testBudgets(), LabelBudget: 2})
	feedCell(a, "cell-0", 4, 90, 0)
	feedCell(a, "cell-1", 4, 200, 0)
	feedCell(a, "cell-2", 4, 150, 0)
	feedCell(a, "cell-3", 4, 100, 0)

	rollups := a.RollupSource()(7)
	// fleet + 2 labelled + 1 overflow.
	if len(rollups) != 4 {
		t.Fatalf("got %d rollups: %+v", len(rollups), rollups)
	}
	if rollups[0].Cell != "fleet" || rollups[0].Seq != 7 {
		t.Fatalf("first rollup = %+v", rollups[0])
	}
	if rollups[1].Cell != "cell-1" || rollups[2].Cell != "cell-2" {
		t.Fatalf("labelled rollups not worst-first: %s, %s", rollups[1].Cell, rollups[2].Cell)
	}
	last := rollups[3]
	if last.Cell != OverflowCell {
		t.Fatalf("last rollup cell = %q, want %q", last.Cell, OverflowCell)
	}
	if last.Counters.JamTriggers != 8 { // cell-0 + cell-3 folded
		t.Fatalf("overflow jam triggers = %d, want 8", last.Counters.JamTriggers)
	}
}
