package fleet

import (
	"sort"

	"repro/internal/telemetry"
	"repro/internal/telemetry/slo"
)

// CellSnapshot is one cell's point-in-time state inside a fleet snapshot:
// the counter block, the two headline latency histograms, journal health,
// detection-outcome ground truth, and the cell's SLO verdict.
type CellSnapshot struct {
	Cell        string
	Counters    telemetry.CounterSnapshot
	Reaction    telemetry.HistogramSnapshot
	TriggerToRF telemetry.HistogramSnapshot
	Dropped     uint64
	Engagements uint64
	// Frames and Jammed are the AddOutcome ground truth; FNRate is their
	// miss rate, computed at snapshot time.
	Frames uint64
	Jammed uint64
	FNRate float64
	// SLO is the cell's verdict against the aggregator's budget set.
	SLO slo.Report
}

// Metrics returns the cell's metric map for SLO evaluation — the same
// joining convention the single-cell gate uses, so a fleet verdict and a
// verdict computed from the cell's own recorder agree bit for bit.
func (c *CellSnapshot) Metrics() map[string]float64 {
	return map[string]float64{
		slo.MetricReactionP99:    float64(c.Reaction.P99),
		slo.MetricTriggerToRFP99: float64(c.TriggerToRF.P99),
		slo.MetricJournalDropped: float64(c.Dropped),
		MetricFNRate:             fnRate(c.Frames, c.Jammed),
	}
}

// Rank is one entry of a worst-cell ranking.
type Rank struct {
	Cell  string
	Value float64
}

// Snapshot is one merged view of the whole fleet.
type Snapshot struct {
	// Cells holds every cell sorted by name.
	Cells []CellSnapshot
	// Total is the fleet-wide merge: counters summed, histograms merged
	// exactly, outcome tallies added. Its SLO field is left zero — budgets
	// are per-cell objectives.
	Total CellSnapshot
	// SLOPassing and SLOFailing count cells by verdict.
	SLOPassing int
	SLOFailing int
	// Worst-cell rankings, descending, ties broken by cell name. Cells
	// with a zero value are omitted, so an all-healthy fleet has empty
	// drop/FN rankings.
	WorstReactionP99 []Rank
	WorstFNRate      []Rank
	WorstDropped     []Rank
	// StreamDroppedClients mirrors the SSE broadcaster's slow-client drop
	// counter when the aggregator is wired to one.
	StreamDroppedClients uint64
}

// CellByName returns the named cell snapshot (nil when absent).
func (s *Snapshot) CellByName(name string) *CellSnapshot {
	i := sort.Search(len(s.Cells), func(i int) bool { return s.Cells[i].Cell >= name })
	if i < len(s.Cells) && s.Cells[i].Cell == name {
		return &s.Cells[i]
	}
	return nil
}

// mergeTotals folds every cell into Total. Histogram merges go through the
// exact snapshot-merge path, so the fleet-wide quantiles are identical to a
// histogram that had observed every cell's stream directly, in any order.
func (s *Snapshot) mergeTotals() {
	var reaction, triggerToRF telemetry.Histogram
	t := CellSnapshot{Cell: "fleet"}
	for i := range s.Cells {
		c := &s.Cells[i]
		t.Counters.Add(c.Counters)
		reaction.MergeSnapshot(c.Reaction)
		triggerToRF.MergeSnapshot(c.TriggerToRF)
		t.Dropped += c.Dropped
		t.Engagements += c.Engagements
		t.Frames += c.Frames
		t.Jammed += c.Jammed
	}
	t.FNRate = fnRate(t.Frames, t.Jammed)
	t.Reaction = reaction.Snapshot(telemetry.HistReaction)
	t.TriggerToRF = triggerToRF.Snapshot(telemetry.HistTriggerToRF)
	s.Total = t
}

// rank computes the top-K worst-cell rankings.
func (s *Snapshot) rank(k int) {
	s.WorstReactionP99 = topK(s.Cells, k, func(c *CellSnapshot) float64 {
		return float64(c.Reaction.P99)
	})
	s.WorstFNRate = topK(s.Cells, k, func(c *CellSnapshot) float64 {
		return c.FNRate
	})
	s.WorstDropped = topK(s.Cells, k, func(c *CellSnapshot) float64 {
		return float64(c.Dropped)
	})
}

// topK returns the k highest-valued cells, descending, ties broken by name
// ascending so the ranking is deterministic. Zero values are skipped.
func topK(cells []CellSnapshot, k int, metric func(*CellSnapshot) float64) []Rank {
	ranks := make([]Rank, 0, len(cells))
	for i := range cells {
		if v := metric(&cells[i]); v > 0 {
			ranks = append(ranks, Rank{Cell: cells[i].Cell, Value: v})
		}
	}
	sort.Slice(ranks, func(i, j int) bool {
		if ranks[i].Value != ranks[j].Value {
			return ranks[i].Value > ranks[j].Value
		}
		return ranks[i].Cell < ranks[j].Cell
	})
	if len(ranks) > k {
		ranks = ranks[:k]
	}
	return ranks
}
