package fleet

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestWriteOpenMetricsCardinalityBudget: with more cells than the label
// budget, the scrape keeps the worst cells by name, collapses the rest
// into cell="other", and passes its own lint.
func TestWriteOpenMetricsCardinalityBudget(t *testing.T) {
	a := New(Options{Budgets: testBudgets(), LabelBudget: 4})
	for i := 0; i < 10; i++ {
		feedCell(a, fmt.Sprintf("cell-%03d", i), 5, uint64(90+i*10), 0)
	}
	var buf bytes.Buffer
	if err := a.Snapshot().WriteOpenMetrics(&buf, a.LabelBudget()); err != nil {
		t.Fatal(err)
	}
	scrape := buf.String()

	cells, err := LintMetrics(strings.NewReader(scrape), a.LabelBudget())
	if err != nil {
		t.Fatalf("lint: %v\n%s", err, scrape)
	}
	if cells != 4 {
		t.Fatalf("labelled cells = %d, want 4", cells)
	}
	// Worst 4 by reaction p99 keep their names; the rest are folded.
	for _, want := range []string{`cell="cell-009"`, `cell="cell-006"`, `cell="other"`} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape lacks %s", want)
		}
	}
	if strings.Contains(scrape, `cell="cell-005"`) {
		t.Errorf("cell-005 should be folded into other")
	}
	// The overflow series preserves fleet-wide conservation: summed
	// samples across labelled + other equal the fleet total.
	if !strings.Contains(scrape, "reactivejam_fleet_cells 10") {
		t.Errorf("fleet_cells gauge wrong:\n%s", scrape)
	}
	if !strings.HasSuffix(scrape, "# EOF\n") {
		t.Errorf("scrape does not end with # EOF")
	}
}

// TestLintMetricsCatchesViolations: the lint helper rejects undeclared
// metrics, a blown label budget, bad values, and a missing EOF marker.
func TestLintMetricsCatchesViolations(t *testing.T) {
	cases := []struct {
		name   string
		scrape string
		budget int
		want   string
	}{
		{
			"undeclared metric",
			"foo_total 3\n# EOF\n",
			8, "no preceding # TYPE",
		},
		{
			"budget exceeded",
			"# TYPE m gauge\nm{cell=\"a\"} 1\nm{cell=\"b\"} 1\nm{cell=\"other\"} 1\n# EOF\n",
			1, "exceeds budget",
		},
		{
			"bad value",
			"# TYPE m gauge\nm pizza\n# EOF\n",
			8, "bad value",
		},
		{
			"missing EOF",
			"# TYPE m gauge\nm 1\n",
			8, "does not end with # EOF",
		},
		{
			"content after EOF",
			"# TYPE m gauge\nm 1\n# EOF\nm 2\n",
			8, "after # EOF",
		},
	}
	for _, c := range cases {
		_, err := LintMetrics(strings.NewReader(c.scrape), c.budget)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
	// The "other" bucket does not count against the budget.
	ok := "# TYPE m gauge\nm{cell=\"a\"} 1\nm{cell=\"other\"} 1\n# EOF\n"
	if n, err := LintMetrics(strings.NewReader(ok), 1); err != nil || n != 1 {
		t.Errorf("other-bucket scrape: n=%d err=%v", n, err)
	}
}

// TestLedgerDeterministicBytes: same fleet state, same meta → identical
// ledger bytes; a changed wall-clock meta field only changes the summary.
func TestLedgerDeterministicBytes(t *testing.T) {
	a := New(Options{Budgets: testBudgets(), TopK: 3})
	feedCell(a, "cell-0", 5, 90, 0)
	feedCell(a, "cell-1", 5, 500, 1)
	s := a.Snapshot()

	var one, two bytes.Buffer
	if err := WriteLedger(&one, s, LedgerMeta{Scenario: "t", Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if err := WriteLedger(&two, s, LedgerMeta{Scenario: "t", Seed: 9}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("ledger not byte-stable")
	}

	var wall bytes.Buffer
	if err := WriteLedger(&wall, s, LedgerMeta{Scenario: "t", Seed: 9, WallMS: 123.4}); err != nil {
		t.Fatal(err)
	}
	oneLines := strings.SplitAfter(one.String(), "\n")
	wallLines := strings.SplitAfter(wall.String(), "\n")
	if len(oneLines) != len(wallLines) {
		t.Fatal("wall clock changed the ledger shape")
	}
	for i := 1; i < len(oneLines); i++ {
		if oneLines[i] != wallLines[i] {
			t.Fatalf("cell line %d changed with wall clock:\n%s%s", i, oneLines[i], wallLines[i])
		}
	}
	if !strings.Contains(wallLines[0], `"wall_ms":123.4`) {
		t.Fatalf("summary lacks wall_ms: %s", wallLines[0])
	}
	if !strings.Contains(one.String(), `"slo_failed":["reaction_p99_cycles","fn_rate"]`) {
		t.Fatalf("cell-1 failed budgets missing:\n%s", one.String())
	}
}
