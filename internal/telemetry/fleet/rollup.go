package fleet

import "repro/internal/telemetry"

// RollupSource adapts the aggregator to the SSE /stream surface: every
// tick emits one telemetry.Rollup per cell (worst reaction p99 first,
// bounded by the label budget like the scrape, with the remainder folded
// into the "other" rollup) plus a fleet-wide rollup under the cell name
// "fleet". The per-tick snapshot is shared by all rollups of the tick.
func (a *Aggregator) RollupSource() telemetry.RollupSource {
	return func(seq uint64) []telemetry.Rollup {
		s := a.Snapshot()
		out := make([]telemetry.Rollup, 0, len(s.Cells)+2)
		out = append(out, cellRollup(seq, &s.Total))

		labelled, overflow := s.labelled(a.opts.LabelBudget)
		for i := range labelled {
			if c := s.CellByName(labelled[i].label); c != nil {
				out = append(out, cellRollup(seq, c))
			}
		}
		if overflow != nil {
			out = append(out, telemetry.Rollup{
				Seq:  seq,
				Cell: OverflowCell,
				Counters: telemetry.CounterSnapshot{
					Samples:     overflow.samples,
					JamTriggers: overflow.jamTriggers,
				},
				Dropped:     overflow.dropped,
				Engagements: overflow.engagements,
				Histograms: []telemetry.HistRollup{
					{Name: telemetry.HistReaction, P99: overflow.reactionP99},
					{Name: telemetry.HistTriggerToRF, P99: overflow.tinitP99},
				},
			})
		}
		return out
	}
}

func cellRollup(seq uint64, c *CellSnapshot) telemetry.Rollup {
	return telemetry.Rollup{
		Seq:         seq,
		Cell:        c.Cell,
		Counters:    c.Counters,
		Dropped:     c.Dropped,
		Engagements: c.Engagements,
		Histograms: []telemetry.HistRollup{
			{
				Name:  c.Reaction.Name,
				Count: c.Reaction.Count,
				P50:   c.Reaction.P50,
				P99:   c.Reaction.P99,
				Max:   c.Reaction.Max,
			},
			{
				Name:  c.TriggerToRF.Name,
				Count: c.TriggerToRF.Count,
				P50:   c.TriggerToRF.P50,
				P99:   c.TriggerToRF.P99,
				Max:   c.TriggerToRF.Max,
			},
		},
	}
}
