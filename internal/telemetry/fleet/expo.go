package fleet

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// OpenMetrics exposition of a fleet snapshot with a bounded `cell` label
// cardinality: fleet-wide totals are unlabeled, the labelBudget worst cells
// (by reaction p99, ties by name) keep their own cell="..." series, and
// every remaining cell is collapsed into one cell="other" series so a
// 10,000-cell fleet cannot blow up the scrape or the TSDB behind it.

const (
	metricPrefix = "reactivejam_"
	// OverflowCell is the label value the out-of-budget cells collapse
	// into.
	OverflowCell = "other"
)

// cellSeries is the flattened per-cell figure set the exposition emits.
type cellSeries struct {
	label       string
	samples     uint64
	jamTriggers uint64
	dropped     uint64
	engagements uint64
	frames      uint64
	jammed      uint64
	reactionP99 uint64
	tinitP99    uint64
	sloPass     int // passing cells in the series (1 per healthy cell)
	sloCells    int // cells folded into the series
}

func (c *CellSnapshot) series() cellSeries {
	s := cellSeries{
		label:       c.Cell,
		samples:     c.Counters.Samples,
		jamTriggers: c.Counters.JamTriggers,
		dropped:     c.Dropped,
		engagements: c.Engagements,
		frames:      c.Frames,
		jammed:      c.Jammed,
		reactionP99: c.Reaction.P99,
		tinitP99:    c.TriggerToRF.P99,
		sloCells:    1,
	}
	if c.SLO.Pass {
		s.sloPass = 1
	}
	return s
}

// fold collapses another cell into an overflow series: counters add, the
// quantiles keep the worst (max) value — the conservative choice for an
// aggregate bucket that exists to flag, not hide, unhealthy cells.
func (s *cellSeries) fold(c *CellSnapshot) {
	s.samples += c.Counters.Samples
	s.jamTriggers += c.Counters.JamTriggers
	s.dropped += c.Dropped
	s.engagements += c.Engagements
	s.frames += c.Frames
	s.jammed += c.Jammed
	if c.Reaction.P99 > s.reactionP99 {
		s.reactionP99 = c.Reaction.P99
	}
	if c.TriggerToRF.P99 > s.tinitP99 {
		s.tinitP99 = c.TriggerToRF.P99
	}
	if c.SLO.Pass {
		s.sloPass++
	}
	s.sloCells++
}

// labelled splits the snapshot's cells into up to labelBudget individually
// labelled series (worst reaction p99 first — the cells an operator wants
// to see by name) plus one overflow series holding the rest (nil when
// everything fit).
func (s *Snapshot) labelled(labelBudget int) ([]cellSeries, *cellSeries) {
	order := topKAll(s.Cells)
	var out []cellSeries
	var overflow *cellSeries
	for _, name := range order {
		c := s.CellByName(name)
		if len(out) < labelBudget {
			out = append(out, c.series())
			continue
		}
		if overflow == nil {
			o := c.series()
			o.label = OverflowCell
			overflow = &o
			continue
		}
		overflow.fold(c)
	}
	return out, overflow
}

// topKAll orders every cell worst-reaction-p99 first, ties by name.
func topKAll(cells []CellSnapshot) []string {
	type kv struct {
		name string
		v    uint64
	}
	ks := make([]kv, len(cells))
	for i := range cells {
		ks[i] = kv{cells[i].Cell, cells[i].Reaction.P99}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].v != ks[j].v {
			return ks[i].v > ks[j].v
		}
		return ks[i].name < ks[j].name
	})
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.name
	}
	return out
}

// WriteOpenMetrics renders the snapshot in OpenMetrics text format within
// the given cell-label budget, terminated by the `# EOF` marker.
func (s *Snapshot) WriteOpenMetrics(w io.Writer, labelBudget int) error {
	bw := bufio.NewWriter(w)
	gauge := func(name string, v float64) {
		fmt.Fprintf(bw, "# TYPE %s%s gauge\n%s%s %g\n", metricPrefix, name, metricPrefix, name, v)
	}
	gauge("fleet_cells", float64(len(s.Cells)))
	gauge("fleet_slo_failing_cells", float64(s.SLOFailing))
	gauge("fleet_fn_rate", s.Total.FNRate)
	gauge("fleet_reaction_p99_cycles", float64(s.Total.Reaction.P99))
	gauge("fleet_trigger_to_rf_p99_cycles", float64(s.Total.TriggerToRF.P99))

	counter := func(name string, v uint64) {
		fmt.Fprintf(bw, "# TYPE %s%s counter\n%s%s %d\n", metricPrefix, name, metricPrefix, name, v)
	}
	counter("fleet_samples_total", s.Total.Counters.Samples)
	counter("fleet_jam_triggers_total", s.Total.Counters.JamTriggers)
	counter("fleet_engagements_total", s.Total.Engagements)
	counter("fleet_journal_dropped_total", s.Total.Dropped)
	counter("fleet_frames_total", s.Total.Frames)
	counter("fleet_jammed_frames_total", s.Total.Jammed)
	counter("stream_dropped_clients_total", s.StreamDroppedClients)

	labelled, overflow := s.labelled(labelBudget)
	series := func(name, typ string, value func(*cellSeries) string) {
		fmt.Fprintf(bw, "# TYPE %s%s %s\n", metricPrefix, name, typ)
		for i := range labelled {
			fmt.Fprintf(bw, "%s%s{cell=%q} %s\n", metricPrefix, name, labelled[i].label, value(&labelled[i]))
		}
		if overflow != nil {
			fmt.Fprintf(bw, "%s%s{cell=%q} %s\n", metricPrefix, name, overflow.label, value(overflow))
		}
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	series("cell_samples_total", "counter", func(c *cellSeries) string { return u(c.samples) })
	series("cell_jam_triggers_total", "counter", func(c *cellSeries) string { return u(c.jamTriggers) })
	series("cell_engagements_total", "counter", func(c *cellSeries) string { return u(c.engagements) })
	series("cell_journal_dropped_total", "counter", func(c *cellSeries) string { return u(c.dropped) })
	series("cell_frames_total", "counter", func(c *cellSeries) string { return u(c.frames) })
	series("cell_jammed_frames_total", "counter", func(c *cellSeries) string { return u(c.jammed) })
	series("cell_reaction_p99_cycles", "gauge", func(c *cellSeries) string { return u(c.reactionP99) })
	series("cell_trigger_to_rf_p99_cycles", "gauge", func(c *cellSeries) string { return u(c.tinitP99) })
	series("cell_slo_passing_cells", "gauge", func(c *cellSeries) string { return strconv.Itoa(c.sloPass) })
	series("cell_slo_cells", "gauge", func(c *cellSeries) string { return strconv.Itoa(c.sloCells) })

	fmt.Fprintf(bw, "# EOF\n")
	return bw.Flush()
}

// Handler returns an http.Handler serving the fleet exposition (mount it
// at /metrics). Each scrape takes a fresh snapshot, so the surface is
// always current even without the background loop.
func (a *Aggregator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = a.Snapshot().WriteOpenMetrics(w, a.opts.LabelBudget)
	})
}

// LintMetrics enforces the exposition contract on a scrape: every sample
// line's metric must have been declared by a preceding # TYPE, every value
// must parse, the scrape must end with # EOF, and the number of distinct
// cell label values (the overflow bucket aside) must stay within the
// cardinality budget. It returns the number of distinct labelled cells.
func LintMetrics(r io.Reader, labelBudget int) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	declared := map[string]bool{}
	cells := map[string]bool{}
	sawEOF := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if sawEOF {
			return 0, fmt.Errorf("line %d: content after # EOF", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				sawEOF = true
				continue
			}
			f := strings.Fields(line)
			if len(f) >= 3 && f[1] == "TYPE" {
				declared[f[2]] = true
			}
			continue
		}
		name, rest, ok := cutMetricLine(line)
		if !ok {
			return 0, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		if !declared[name] {
			return 0, fmt.Errorf("line %d: %s has no preceding # TYPE", lineNo, name)
		}
		if _, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err != nil {
			return 0, fmt.Errorf("line %d: bad value in %q: %v", lineNo, line, err)
		}
		if cell, ok := cellLabel(line); ok && cell != OverflowCell {
			cells[cell] = true
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if !sawEOF {
		return 0, fmt.Errorf("scrape does not end with # EOF")
	}
	if len(cells) > labelBudget {
		return len(cells), fmt.Errorf("cell label cardinality %d exceeds budget %d", len(cells), labelBudget)
	}
	return len(cells), nil
}

// cutMetricLine splits a sample line into its metric name (label block
// stripped) and the value part.
func cutMetricLine(line string) (name, value string, ok bool) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", "", false
		}
		return line[:i], line[j+1:], true
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return "", "", false
	}
	return line[:i], line[i+1:], true
}

// cellLabel extracts the cell="..." label value from a sample line.
func cellLabel(line string) (string, bool) {
	const key = `cell="`
	i := strings.Index(line, key)
	if i < 0 {
		return "", false
	}
	rest := line[i+len(key):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}
