package telemetry

import "sync/atomic"

// Counters is the datapath counter block. The core increments these
// directly (atomically, so a concurrent exposition scrape is race-free) and
// core.Stats snapshots them; when a Live recorder is attached it is bound to
// the same instance, so the host-feedback counters and the exposition
// endpoint read the same memory by construction.
//
// Counters must not be copied once in use.
type Counters struct {
	// Samples counts baseband samples processed.
	Samples atomic.Uint64
	// XCorrDetections counts cross-correlator trigger edges.
	XCorrDetections atomic.Uint64
	// EnergyHighDetections and EnergyLowDetections count energy edges.
	EnergyHighDetections atomic.Uint64
	EnergyLowDetections  atomic.Uint64
	// JamTriggers counts serviced jamming events.
	JamTriggers atomic.Uint64
	// JamSamples counts transmitted jamming samples.
	JamSamples atomic.Uint64
	// RegWrites counts user register-bus writes.
	RegWrites atomic.Uint64
	// HostPolls counts host-feedback counter reads.
	HostPolls atomic.Uint64
}

// CounterSnapshot is a plain-value copy of the counter block.
type CounterSnapshot struct {
	Samples              uint64
	XCorrDetections      uint64
	EnergyHighDetections uint64
	EnergyLowDetections  uint64
	JamTriggers          uint64
	JamSamples           uint64
	RegWrites            uint64
	HostPolls            uint64
}

// Snapshot returns a point-in-time copy of all counters.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		Samples:              c.Samples.Load(),
		XCorrDetections:      c.XCorrDetections.Load(),
		EnergyHighDetections: c.EnergyHighDetections.Load(),
		EnergyLowDetections:  c.EnergyLowDetections.Load(),
		JamTriggers:          c.JamTriggers.Load(),
		JamSamples:           c.JamSamples.Load(),
		RegWrites:            c.RegWrites.Load(),
		HostPolls:            c.HostPolls.Load(),
	}
}

// Add folds a snapshot of another counter block into this one, field by
// field. Each field is a single atomic add, so Add is safe to run while
// the owning datapath keeps incrementing and while other goroutines
// Snapshot concurrently: a reader sees each field either before or after
// the add, never a torn intermediate (there are no multi-word reads
// anywhere in the block — every field is an independent atomic.Uint64).
// This is the merge primitive of the fleet aggregation plane.
func (c *Counters) Add(s CounterSnapshot) {
	c.Samples.Add(s.Samples)
	c.XCorrDetections.Add(s.XCorrDetections)
	c.EnergyHighDetections.Add(s.EnergyHighDetections)
	c.EnergyLowDetections.Add(s.EnergyLowDetections)
	c.JamTriggers.Add(s.JamTriggers)
	c.JamSamples.Add(s.JamSamples)
	c.RegWrites.Add(s.RegWrites)
	c.HostPolls.Add(s.HostPolls)
}

// Add folds another snapshot into this plain-value snapshot.
func (s *CounterSnapshot) Add(o CounterSnapshot) {
	s.Samples += o.Samples
	s.XCorrDetections += o.XCorrDetections
	s.EnergyHighDetections += o.EnergyHighDetections
	s.EnergyLowDetections += o.EnergyLowDetections
	s.JamTriggers += o.JamTriggers
	s.JamSamples += o.JamSamples
	s.RegWrites += o.RegWrites
	s.HostPolls += o.HostPolls
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	c.Samples.Store(0)
	c.XCorrDetections.Store(0)
	c.EnergyHighDetections.Store(0)
	c.EnergyLowDetections.Store(0)
	c.JamTriggers.Store(0)
	c.JamSamples.Store(0)
	c.RegWrites.Store(0)
	c.HostPolls.Store(0)
}
