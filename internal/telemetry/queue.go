package telemetry

import "sync/atomic"

// QueueCounters instruments one bounded stream queue — a flowgraph edge ring
// in practice. Producers and consumers touch disjoint counters with single
// atomic adds, so the instrumentation is safe (and cheap) on the streaming
// hot path, and a concurrent observer can Snapshot at any time.
//
// The stall counters are the backpressure signal: ProducerStalls counts
// pushes that found the queue full and had to wait for downstream to drain,
// ConsumerStalls counts pops that found it empty and had to wait for
// upstream to produce. A healthy pipeline shows stalls concentrated on the
// edge feeding its slowest stage.
//
// QueueCounters must not be copied once in use.
type QueueCounters struct {
	// Pushes and Pops count chunks through the queue.
	Pushes atomic.Uint64
	Pops   atomic.Uint64
	// ProducerStalls counts pushes that blocked on a full queue.
	ProducerStalls atomic.Uint64
	// ConsumerStalls counts pops that blocked on an empty queue.
	ConsumerStalls atomic.Uint64
	// OccupancyHW is the high-water occupancy (chunks queued) ever observed
	// at a push.
	OccupancyHW atomic.Uint64
}

// NotePush records a completed push observing occ chunks queued (including
// the one just pushed), updating the high-water mark.
func (q *QueueCounters) NotePush(occ int) {
	q.Pushes.Add(1)
	o := uint64(occ)
	for {
		hw := q.OccupancyHW.Load()
		if o <= hw || q.OccupancyHW.CompareAndSwap(hw, o) {
			return
		}
	}
}

// NotePop records a completed pop.
func (q *QueueCounters) NotePop() { q.Pops.Add(1) }

// QueueSnapshot is a plain-value copy of a queue's counters.
type QueueSnapshot struct {
	Pushes         uint64
	Pops           uint64
	ProducerStalls uint64
	ConsumerStalls uint64
	OccupancyHW    uint64
}

// Snapshot returns a point-in-time copy of the counters. Taken while the
// queue is active it is a consistent-enough view for monitoring (each field
// is independently atomic); taken after the pipeline has drained it is
// exact.
func (q *QueueCounters) Snapshot() QueueSnapshot {
	return QueueSnapshot{
		Pushes:         q.Pushes.Load(),
		Pops:           q.Pops.Load(),
		ProducerStalls: q.ProducerStalls.Load(),
		ConsumerStalls: q.ConsumerStalls.Load(),
		OccupancyHW:    q.OccupancyHW.Load(),
	}
}
