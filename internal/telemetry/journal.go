package telemetry

// Journal is a bounded ring buffer of datapath events. When full, the
// oldest events are overwritten — a long run keeps the most recent window,
// which is what a post-mortem trace wants. Appends never allocate after
// construction. Not safe for concurrent use on its own; the Live recorder
// serializes access.
type Journal struct {
	buf     []Event
	next    int // position of the next write
	full    bool
	dropped uint64
}

// DefaultJournalDepth bounds the journal at 64k events (~1.5 MiB).
const DefaultJournalDepth = 1 << 16

// NewJournal returns a journal holding up to depth events (DefaultJournalDepth
// when depth <= 0).
func NewJournal(depth int) *Journal {
	if depth <= 0 {
		depth = DefaultJournalDepth
	}
	return &Journal{buf: make([]Event, depth)}
}

// Append records one event, overwriting the oldest when full.
func (j *Journal) Append(e Event) {
	if j.full {
		j.dropped++
	}
	j.buf[j.next] = e
	j.next++
	if j.next == len(j.buf) {
		j.next = 0
		j.full = true
	}
}

// Len returns the number of events currently held.
func (j *Journal) Len() int {
	if j.full {
		return len(j.buf)
	}
	return j.next
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (j *Journal) Dropped() uint64 { return j.dropped }

// Events returns the held events oldest-first as a fresh slice.
func (j *Journal) Events() []Event {
	out := make([]Event, 0, j.Len())
	if j.full {
		out = append(out, j.buf[j.next:]...)
	}
	return append(out, j.buf[:j.next]...)
}

// Reset empties the journal without releasing its storage.
func (j *Journal) Reset() {
	j.next = 0
	j.full = false
	j.dropped = 0
}
