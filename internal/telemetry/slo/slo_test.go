package slo

import (
	"bytes"
	"strings"
	"testing"
)

func metricsOK() map[string]float64 {
	return map[string]float64{
		MetricReactionP99:    151, // the measured p99 with DDC group delay
		MetricTriggerToRFP99: 8,
		MetricLateFraction:   0,
		MetricFalseAlarmsSec: 0.1,
		MetricJournalDropped: 0,
	}
}

func TestDefaultBudgetsPassOnMeasuredRun(t *testing.T) {
	// 20 cycles is the WiFi 5/4 DDC group-delay allowance; the measured
	// 151-cycle p99 must clear 136+20.
	rep := Evaluate(DefaultBudgets(20), metricsOK())
	if !rep.Pass {
		t.Fatalf("expected pass, failed checks: %+v", rep.Failed())
	}
	if len(rep.Checks) != 5 {
		t.Fatalf("got %d checks, want 5", len(rep.Checks))
	}
}

func TestReactionBudgetViolation(t *testing.T) {
	m := metricsOK()
	m[MetricReactionP99] = 157 // one cycle over 136+20
	rep := Evaluate(DefaultBudgets(20), m)
	if rep.Pass {
		t.Fatal("expected reaction p99 violation to fail")
	}
	failed := rep.Failed()
	if len(failed) != 1 || failed[0].Budget.Metric != MetricReactionP99 {
		t.Fatalf("failed = %+v", failed)
	}
	// Exactly at the bound passes (inclusive).
	m[MetricReactionP99] = 156
	if rep := Evaluate(DefaultBudgets(20), m); !rep.Pass {
		t.Fatal("value at the bound must pass")
	}
}

func TestMissingMetricFails(t *testing.T) {
	m := metricsOK()
	delete(m, MetricLateFraction)
	rep := Evaluate(DefaultBudgets(20), m)
	if rep.Pass {
		t.Fatal("missing metric must fail its budget")
	}
	var missing *Check
	for i := range rep.Checks {
		if rep.Checks[i].Budget.Metric == MetricLateFraction {
			missing = &rep.Checks[i]
		}
	}
	if missing == nil || !missing.Missing || missing.Pass {
		t.Fatalf("missing-metric check = %+v", missing)
	}
}

func TestDroppedEventsFail(t *testing.T) {
	m := metricsOK()
	m[MetricJournalDropped] = 1
	if rep := Evaluate(DefaultBudgets(20), m); rep.Pass {
		t.Fatal("dropped journal events must fail")
	}
}

func TestWriteReport(t *testing.T) {
	m := metricsOK()
	m["extra_metric"] = 42
	m[MetricTriggerToRFP99] = 9
	rep := Evaluate(DefaultBudgets(20), m)
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"PASS reaction_p99_cycles",
		"FAIL trigger_to_rf_p99_cycles",
		"info extra_metric",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
