// Package slo evaluates declarative service-level objectives over the
// metrics a telemetry-instrumented run produces. Each budget names one
// metric and an inclusive upper bound; Evaluate joins budgets against a
// metric map and reports pass/fail per budget and overall. The default
// budget set encodes the paper's reactive-jamming guarantees: the
// single-stage energy reaction budget (Ten_det 1.28 µs + Tinit 80 ns =
// 1.36 µs, i.e. 136 cycles of the 100 MHz clock) plus the receive front
// end's group delay, the 8-cycle trigger-to-RF turnaround, a late-jam
// ceiling, a false-alarm-rate ceiling, and zero tolerance for dropped
// journal events (a truncated journal voids every other figure).
package slo

import (
	"fmt"
	"io"
	"sort"
)

// Paper timing budgets in 100 MHz clock cycles.
const (
	// ReactionBudgetCycles is Ten_det (128 cycles = 1.28 µs) + Tinit
	// (8 cycles = 80 ns): the Fig. 5 single-stage energy response bound.
	ReactionBudgetCycles = 136
	// TinitBudgetCycles is the trigger-fire → RF-on turnaround (80 ns).
	TinitBudgetCycles = 8
)

// Metric names used by the default budgets.
const (
	MetricReactionP99    = "reaction_p99_cycles"
	MetricTriggerToRFP99 = "trigger_to_rf_p99_cycles"
	MetricLateFraction   = "late_fraction"
	MetricFalseAlarmsSec = "false_alarms_per_sec"
	MetricJournalDropped = "journal_dropped"
)

// Budget is one declarative objective: metric value must be <= Max.
type Budget struct {
	// Metric is the key into the metric map.
	Metric string
	// Max is the inclusive upper bound.
	Max float64
	// Description says where the bound comes from (shown in reports).
	Description string
}

// Check is one evaluated budget.
type Check struct {
	Budget Budget
	// Value is the measured metric (undefined when Missing).
	Value float64
	// Missing reports that the metric was absent from the run — a missing
	// metric fails its budget, since an objective that cannot be evaluated
	// cannot be met.
	Missing bool
	Pass    bool
}

// Report is the outcome of evaluating a budget set.
type Report struct {
	Checks []Check
	// Pass is true only when every budget passed.
	Pass bool
}

// Failed returns the failing checks.
func (r Report) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// DefaultBudgets returns the paper-derived budget set. frontEndCycles is
// the receive front end's group delay allowance added to the reaction
// budget: the paper's 1.36 µs timeline starts when samples reach the
// detectors, while the measured reaction histogram is anchored at the
// frame boundary entering the DDC, so the budget must absorb the
// resampler's group delay (radio.GroupDelayCycles).
func DefaultBudgets(frontEndCycles uint64) []Budget {
	return []Budget{
		{
			Metric:      MetricReactionP99,
			Max:         float64(ReactionBudgetCycles + frontEndCycles),
			Description: fmt.Sprintf("Ten_det+Tinit (136 cyc = 1.36 µs) + %d cyc front-end group delay", frontEndCycles),
		},
		{
			Metric:      MetricTriggerToRFP99,
			Max:         TinitBudgetCycles,
			Description: "Tinit: trigger→RF turnaround (80 ns)",
		},
		{
			Metric:      MetricLateFraction,
			Max:         0.01,
			Description: "jams landing after the packet ended, of detected packets",
		},
		{
			Metric:      MetricFalseAlarmsSec,
			Max:         1.0,
			Description: "noise-only detection rate (paper targets 0.083–0.52/s)",
		},
		{
			Metric:      MetricJournalDropped,
			Max:         0,
			Description: "journal ring overflow voids the other figures",
		},
	}
}

// Evaluate joins budgets against measured metrics.
func Evaluate(budgets []Budget, metrics map[string]float64) Report {
	rep := Report{Pass: true}
	for _, b := range budgets {
		c := Check{Budget: b}
		v, ok := metrics[b.Metric]
		if !ok {
			c.Missing = true
		} else {
			c.Value = v
			c.Pass = v <= b.Max
		}
		if !c.Pass {
			rep.Pass = false
		}
		rep.Checks = append(rep.Checks, c)
	}
	return rep
}

// WriteReport renders the evaluation as an aligned text table, one line per
// budget, with unevaluated metrics listed after (sorted for determinism).
func WriteReport(w io.Writer, rep Report, metrics map[string]float64) error {
	used := map[string]bool{}
	for _, c := range rep.Checks {
		used[c.Budget.Metric] = true
		status := "PASS"
		val := fmt.Sprintf("%g", c.Value)
		if c.Missing {
			status, val = "FAIL", "missing"
		} else if !c.Pass {
			status = "FAIL"
		}
		if _, err := fmt.Fprintf(w, "  %-4s %-28s %10s <= %-10g %s\n",
			status, c.Budget.Metric, val, c.Budget.Max, c.Budget.Description); err != nil {
			return err
		}
	}
	var extra []string
	for k := range metrics {
		if !used[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		if _, err := fmt.Fprintf(w, "  info %-28s %10g\n", k, metrics[k]); err != nil {
			return err
		}
	}
	return nil
}
