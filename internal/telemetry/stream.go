package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Live streaming: a Server-Sent Events endpoint (`/stream`, next to
// `/metrics`) that pushes per-cell counter/histogram/alert rollups at a
// fixed cadence, so a long run has a live view without scrape polling.
// Each tick emits one `rollup` event per cell with a JSON body.

// HistRollup is one histogram's headline figures inside a rollup.
type HistRollup struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
	P50   uint64 `json:"p50"`
	P99   uint64 `json:"p99"`
	Max   uint64 `json:"max"`
}

// Rollup is one cell's periodic digest: the counter block, per-histogram
// headline figures, and the observability-plane tallies (anomaly alerts,
// flight dumps, journal drops, completed engagements).
type Rollup struct {
	// Seq is the tick number, shared by every cell emitted in one tick.
	Seq uint64 `json:"seq"`
	// Cell names the datapath cell the rollup describes.
	Cell string `json:"cell"`
	// Counters is the cell's counter block.
	Counters CounterSnapshot `json:"counters"`
	// Histograms carries the headline figures per latency histogram.
	Histograms []HistRollup `json:"histograms"`
	// Alerts and Dumps count anomaly alerts raised and flight-recorder
	// dumps captured so far; Dropped and Engagements mirror the journal.
	Alerts      uint64 `json:"alerts"`
	Dumps       uint64 `json:"dumps"`
	Dropped     uint64 `json:"dropped"`
	Engagements uint64 `json:"engagements"`
}

// RollupFrom digests a live recorder into one cell's rollup.
func RollupFrom(cell string, seq uint64, l *Live) Rollup {
	s := l.Snapshot()
	r := Rollup{
		Seq:         seq,
		Cell:        cell,
		Counters:    s.Counters,
		Alerts:      l.EventCount(EvAnomalyAlert),
		Dumps:       l.EventCount(EvFlightDump),
		Dropped:     s.Dropped,
		Engagements: s.Engagements,
	}
	for _, h := range s.Histograms {
		r.Histograms = append(r.Histograms, HistRollup{
			Name: h.Name, Count: h.Count, P50: h.P50, P99: h.P99, Max: h.Max,
		})
	}
	return r
}

// RollupSource produces the per-cell rollups for one stream tick.
type RollupSource func(seq uint64) []Rollup

// StreamHandler returns an SSE handler pushing the source's rollups every
// interval until the client disconnects. The first tick is emitted
// immediately so a consumer never waits a full interval for data.
func StreamHandler(interval time.Duration, source RollupSource) http.Handler {
	if interval <= 0 {
		interval = time.Second
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")

		emit := func(seq uint64) bool {
			for _, r := range source(seq) {
				body, err := json.Marshal(r)
				if err != nil {
					return false
				}
				if _, err := fmt.Fprintf(w, "event: rollup\ndata: %s\n\n", body); err != nil {
					return false
				}
			}
			flusher.Flush()
			return true
		}

		var seq uint64
		if !emit(seq) {
			return
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-req.Context().Done():
				return
			case <-ticker.C:
				seq++
				if !emit(seq) {
					return
				}
			}
		}
	})
}
