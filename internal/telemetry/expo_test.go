package telemetry

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestMetricsScrapeFormat is the exposition regression gate: every stable
// metric name must appear with its TYPE line, the journal drop counter and
// per-histogram sample counts must be present, and histogram buckets must be
// cumulative in le order. Renaming or dropping a metric breaks dashboards,
// so this test pins the contract.
func TestMetricsScrapeFormat(t *testing.T) {
	live := NewLive(8) // tiny ring: force drops so journal_dropped_total is live
	c := &Counters{}
	live.BindCounters(c)
	c.Samples.Store(1000)
	c.JamTriggers.Store(2)
	for i := 0; i < 20; i++ {
		live.Event(EvHostPoll, uint64(i), 0, 0)
	}
	live.Event(EvJamRFOn, 100, 0, 1)
	live.Event(EvJamRFOff, 1100, 0, 1)
	live.Event(EvAnomalyAlert, 1200, 0, 0)
	live.Event(EvFlightDump, 1300, 0, 0)

	srv := httptest.NewServer(live.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}

	types := map[string]string{} // name -> TYPE
	values := map[string]float64{}
	buckets := map[string][]uint64{} // histogram name -> cumulative counts in le order
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[f[0]] = f[1]
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		values[f[0]] = v
		if i := strings.Index(f[0], "_bucket{"); i >= 0 {
			name := f[0][:i]
			buckets[name] = append(buckets[name], uint64(v))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	// Stable counter names, all with TYPE counter.
	for _, name := range []string{
		"samples_total", "xcorr_detections_total", "energy_high_detections_total",
		"energy_low_detections_total", "jam_triggers_total", "jam_samples_total",
		"reg_writes_total", "host_polls_total", "journal_events",
		"journal_dropped_total", "engagements_total",
		"anomaly_alerts_total", "flight_dumps_total",
	} {
		full := metricPrefix + name
		if types[full] != "counter" {
			t.Errorf("%s: TYPE = %q, want counter", full, types[full])
		}
		if _, ok := values[full]; !ok {
			t.Errorf("%s: no sample line", full)
		}
	}
	if values[metricPrefix+"journal_dropped_total"] == 0 {
		t.Error("journal_dropped_total = 0 despite forced ring overflow")
	}
	if values[metricPrefix+"anomaly_alerts_total"] != 1 ||
		values[metricPrefix+"flight_dumps_total"] != 1 {
		t.Error("observability counters missing the journaled events")
	}

	// Every histogram exposes _count and _sum plus cumulative buckets.
	for _, h := range []string{
		HistReaction, HistDetectToRF, HistTriggerToRF, HistJamBurst, HistXCorrLead,
	} {
		full := metricPrefix + h
		if types[full] != "histogram" {
			t.Errorf("%s: TYPE = %q, want histogram", full, types[full])
		}
		count, ok := values[full+"_count"]
		if !ok {
			t.Errorf("%s_count missing", full)
		}
		if _, ok := values[full+"_sum"]; !ok {
			t.Errorf("%s_sum missing", full)
		}
		bs := buckets[full]
		if len(bs) == 0 {
			t.Errorf("%s: no buckets", full)
			continue
		}
		for i := 1; i < len(bs); i++ {
			if bs[i] < bs[i-1] {
				t.Errorf("%s: buckets not cumulative at %d: %v", full, i, bs)
			}
		}
		// The +Inf bucket equals the sample count.
		inf, ok := values[fmt.Sprintf("%s_bucket{le=\"+Inf\"}", full)]
		if !ok || inf != count {
			t.Errorf("%s: +Inf bucket %v (present %v) != count %v", full, inf, ok, count)
		}
	}
	if got := values[metricPrefix+HistJamBurst+"_count"]; got != 1 {
		t.Errorf("jam-burst sample count = %v, want 1", got)
	}
}
