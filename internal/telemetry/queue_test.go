package telemetry

import (
	"sync"
	"testing"
)

func TestQueueCountersSnapshot(t *testing.T) {
	var q QueueCounters
	q.NotePush(1)
	q.NotePush(3)
	q.NotePush(2) // lower than high water: must not regress the mark
	q.NotePop()
	q.ProducerStalls.Add(2)
	q.ConsumerStalls.Add(1)
	s := q.Snapshot()
	want := QueueSnapshot{Pushes: 3, Pops: 1, ProducerStalls: 2, ConsumerStalls: 1, OccupancyHW: 3}
	if s != want {
		t.Fatalf("snapshot %+v, want %+v", s, want)
	}
}

// TestQueueCountersConcurrent drives the counters from concurrent producer
// and consumer goroutines while an observer snapshots, as the pipeline
// runtime does; run under -race this is the safety proof, and the final
// snapshot must account for every operation exactly.
func TestQueueCountersConcurrent(t *testing.T) {
	var q QueueCounters
	const n = 1000
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.NotePush(i % 7)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.NotePop()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = q.Snapshot()
		}
	}()
	wg.Wait()
	s := q.Snapshot()
	if s.Pushes != n || s.Pops != n {
		t.Fatalf("lost operations: %+v", s)
	}
	if s.OccupancyHW != 6 {
		t.Fatalf("high water %d, want 6", s.OccupancyHW)
	}
}
