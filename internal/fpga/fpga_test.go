package fpga

import (
	"testing"
	"time"
)

func TestClockConstants(t *testing.T) {
	if CyclesPerSample != 4 {
		t.Fatalf("CyclesPerSample = %d, want 4", CyclesPerSample)
	}
	if ClockPeriod != 10*time.Nanosecond {
		t.Fatalf("ClockPeriod = %v, want 10ns", ClockPeriod)
	}
	if SamplePeriod != 40*time.Nanosecond {
		t.Fatalf("SamplePeriod = %v, want 40ns", SamplePeriod)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.AdvanceSamples(10)
	if c.Cycle() != 40 || c.Sample() != 10 {
		t.Errorf("after 10 samples: cycle=%d sample=%d", c.Cycle(), c.Sample())
	}
	c.AdvanceCycles(3)
	if c.Sample() != 10 {
		t.Errorf("partial sample should floor: %d", c.Sample())
	}
	if c.Now() != 430*time.Nanosecond {
		t.Errorf("Now = %v, want 430ns", c.Now())
	}
}

func TestDurationConversions(t *testing.T) {
	// Paper §2.4: jamming duration from 1 sample (40ns) up to 2^32 samples.
	if d := SamplesToDuration(1); d != 40*time.Nanosecond {
		t.Errorf("1 sample = %v", d)
	}
	if d := CyclesToDuration(8); d != 80*time.Nanosecond {
		t.Errorf("8 cycles = %v, want 80ns (paper Tinit)", d)
	}
	if s := DurationToSamples(100 * time.Microsecond); s != 2500 {
		t.Errorf("100us = %d samples, want 2500", s)
	}
	if DurationToSamples(-time.Second) != 0 {
		t.Error("negative duration should give 0 samples")
	}
	// 2^32 samples is about 172s > 40s claimed; 40s fits in the range.
	if s := DurationToSamples(40 * time.Second); s != 1_000_000_000 {
		t.Errorf("40s = %d samples", s)
	}
}

func TestResourcesAddString(t *testing.T) {
	a := Resources{Slices: 2613, FFs: 2647, BRAMs: 12, LUTs: 2818, DSP48s: 2}
	b := Resources{Slices: 1262, FFs: 1313, LUTs: 2513, DSP48s: 6}
	sum := a.Add(b)
	if sum.Slices != 3875 || sum.FFs != 3960 || sum.BRAMs != 12 ||
		sum.LUTs != 5331 || sum.DSP48s != 8 {
		t.Errorf("Add = %+v", sum)
	}
	if s := a.String(); s != "Slices:2613 FFs:2647 BRAMs:12 LUTs:2818 IOBs:0 DSP_48:2" {
		t.Errorf("String = %q", s)
	}
}
