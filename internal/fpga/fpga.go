// Package fpga models the hardware substrate of the custom DSP core that the
// paper implements in the USRP N210's FPGA: the 100 MHz hardware clock
// domain, the relationship between clock cycles and 25 MSPS baseband
// samples, the UHD user register bus used for host control, and per-block
// resource-utilization accounting (the slice/FF/BRAM/LUT/DSP48 insets of
// Figs. 3 and 4).
//
// The simulation is cycle-accounted rather than gate-level: every sample the
// core consumes advances the clock by CyclesPerSample, and every latency in
// the system (detection, trigger-to-jam turnaround, register writes) is
// expressed in these ticks so the paper's timeline analysis (Fig. 5) can be
// reproduced structurally.
package fpga

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Hardware timing constants of the USRP N210 platform (paper §2.2).
const (
	// ClockHz is the FPGA hardware clock: 100 MHz.
	ClockHz = 100_000_000
	// SampleRateHz is the baseband complex sample rate: 25 MSPS.
	SampleRateHz = 25_000_000
	// CyclesPerSample is the number of hardware clock cycles per baseband
	// sample (100 MHz / 25 MSPS = 4).
	CyclesPerSample = ClockHz / SampleRateHz
	// ClockPeriod is one hardware clock cycle (10 ns).
	ClockPeriod = time.Second / ClockHz
	// SamplePeriod is one baseband sample period (40 ns).
	SamplePeriod = time.Second / SampleRateHz
)

// Clock is the FPGA clock domain. The zero value is a clock at cycle 0.
// The cycle count is updated atomically so host-side observers (telemetry,
// register-bus watchers) may read it while the datapath advances it.
type Clock struct {
	cycle atomic.Uint64
}

// Cycle returns the current hardware clock cycle count.
func (c *Clock) Cycle() uint64 { return c.cycle.Load() }

// Sample returns the current baseband sample index (cycle / 4).
func (c *Clock) Sample() uint64 { return c.Cycle() / CyclesPerSample }

// Now returns the elapsed simulated time.
func (c *Clock) Now() time.Duration {
	return time.Duration(c.Cycle()) * ClockPeriod
}

// AdvanceCycles moves the clock forward by n cycles.
func (c *Clock) AdvanceCycles(n uint64) { c.cycle.Add(n) }

// AdvanceSamples moves the clock forward by n baseband samples.
func (c *Clock) AdvanceSamples(n uint64) { c.cycle.Add(n * CyclesPerSample) }

// Reset returns the clock to cycle 0.
func (c *Clock) Reset() { c.cycle.Store(0) }

// CyclesToDuration converts a cycle count to wall time at the 100 MHz clock.
func CyclesToDuration(cycles uint64) time.Duration {
	return time.Duration(cycles) * ClockPeriod
}

// SamplesToDuration converts a baseband sample count to wall time at 25 MSPS.
func SamplesToDuration(samples uint64) time.Duration {
	return time.Duration(samples) * SamplePeriod
}

// DurationToSamples converts wall time to whole baseband samples (floor).
func DurationToSamples(d time.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	return uint64(d / SamplePeriod)
}

// Resources tallies FPGA resource utilization for a synthesized block,
// mirroring the resource insets printed in the paper's block diagrams.
type Resources struct {
	Slices int
	FFs    int
	BRAMs  int
	LUTs   int
	IOBs   int
	DSP48s int
}

// Add returns the element-wise sum of two resource tallies.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		Slices: r.Slices + o.Slices,
		FFs:    r.FFs + o.FFs,
		BRAMs:  r.BRAMs + o.BRAMs,
		LUTs:   r.LUTs + o.LUTs,
		IOBs:   r.IOBs + o.IOBs,
		DSP48s: r.DSP48s + o.DSP48s,
	}
}

func (r Resources) String() string {
	return fmt.Sprintf("Slices:%d FFs:%d BRAMs:%d LUTs:%d IOBs:%d DSP_48:%d",
		r.Slices, r.FFs, r.BRAMs, r.LUTs, r.IOBs, r.DSP48s)
}

// ResourceUser is implemented by synthesized blocks that report their
// utilization.
type ResourceUser interface {
	Resources() Resources
}
