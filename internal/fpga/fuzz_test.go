package fpga

import (
	"encoding/binary"
	"testing"
)

// FuzzRegisterBus drives the register file with an arbitrary write script —
// five bytes per operation: one address byte plus a little-endian 32-bit
// value — while a write interceptor and watchers are armed. The contract
// under fuzz: the bus never panics, register 0 is always rejected, readback
// always reflects the last committed value, and the write/drop counters
// account for every transaction exactly once.
func FuzzRegisterBus(f *testing.F) {
	f.Add([]byte{0x00, 1, 2, 3, 4, 0x17, 0xE8, 0x03, 0x00, 0x00, 0x0F, 0xAA, 0xAA, 0xAA, 0xAA})
	f.Add([]byte("register bus fuzz script: addresses and values"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, script []byte) {
		b := NewRegisterBus()

		// Interceptor exercising every disposition: drop value%5==0, flip a
		// bit on value%5==1, pass the rest through untouched.
		b.Intercept(func(addr uint8, value uint32) (uint32, WriteAction) {
			switch value % 5 {
			case 0:
				return value, WriteDrop
			case 1:
				return value ^ 0x40, WriteCommit
			default:
				return value, WriteCommit
			}
		})

		// A watcher that reentrantly registers more watchers mid-dispatch —
		// the historical deadlock/corruption case — plus an all-watcher that
		// keeps its own commit count for reconciliation.
		var allFired, addrFired uint64
		b.WatchAll(func(uint8, uint32) { allFired++ })
		b.Watch(7, func(uint8, uint32) {
			addrFired++
			b.Watch(7, func(uint8, uint32) { addrFired++ })
		})

		model := make(map[uint8]uint32)
		var commits, drops uint64
		for pos := 0; pos+5 <= len(script); pos += 5 {
			addr := script[pos]
			value := binary.LittleEndian.Uint32(script[pos+1 : pos+5])
			err := b.Write(addr, value)
			if addr == 0 {
				if err == nil {
					t.Fatal("write to reserved register 0 accepted")
				}
				continue
			}
			if err != nil {
				t.Fatalf("write(%d, %#x) failed: %v", addr, value, err)
			}
			switch value % 5 {
			case 0:
				drops++
			case 1:
				model[addr] = value ^ 0x40
				commits++
			default:
				model[addr] = value
				commits++
			}
		}

		if _, err := b.Read(0); err == nil {
			t.Fatal("read of reserved register 0 accepted")
		}
		for addr, want := range model {
			got, err := b.Read(addr)
			if err != nil {
				t.Fatalf("read(%d) failed: %v", addr, err)
			}
			if got != want {
				t.Fatalf("register %d reads %#x, want last committed %#x", addr, got, want)
			}
		}
		if b.WriteCount() != commits {
			t.Fatalf("WriteCount() = %d, want %d commits", b.WriteCount(), commits)
		}
		if b.DroppedWrites() != drops {
			t.Fatalf("DroppedWrites() = %d, want %d", b.DroppedWrites(), drops)
		}
		if allFired != commits {
			t.Fatalf("all-watcher fired %d times, want once per commit (%d)", allFired, commits)
		}
		if len(b.UsedRegisters()) != len(model) {
			t.Fatalf("UsedRegisters() has %d entries, want %d", len(b.UsedRegisters()), len(model))
		}
	})
}
