package fpga

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestRegisterWriteRead(t *testing.T) {
	b := NewRegisterBus()
	if err := b.Write(5, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := b.Read(5)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("Read = %x, %v", v, err)
	}
}

func TestRegisterZeroReserved(t *testing.T) {
	b := NewRegisterBus()
	if err := b.Write(0, 1); !errors.Is(err, ErrBadRegister) {
		t.Errorf("Write(0) err = %v, want ErrBadRegister", err)
	}
	if _, err := b.Read(0); !errors.Is(err, ErrBadRegister) {
		t.Errorf("Read(0) err = %v, want ErrBadRegister", err)
	}
}

func TestRegisterWriteReadProperty(t *testing.T) {
	b := NewRegisterBus()
	f := func(addr uint8, value uint32) bool {
		if addr == 0 {
			return b.Write(addr, value) != nil
		}
		if err := b.Write(addr, value); err != nil {
			return false
		}
		v, err := b.Read(addr)
		return err == nil && v == value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegisterWatcher(t *testing.T) {
	b := NewRegisterBus()
	var got []uint32
	b.Watch(7, func(addr uint8, v uint32) {
		if addr != 7 {
			t.Errorf("watcher got addr %d", addr)
		}
		got = append(got, v)
	})
	b.Write(7, 1)
	b.Write(8, 99) // different register, not watched
	b.Write(7, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("watcher saw %v", got)
	}
}

func TestUsedRegisters(t *testing.T) {
	b := NewRegisterBus()
	for _, a := range []uint8{30, 3, 12, 3} {
		if err := b.Write(a, 1); err != nil {
			t.Fatal(err)
		}
	}
	used := b.UsedRegisters()
	want := []uint8{3, 12, 30}
	if len(used) != len(want) {
		t.Fatalf("UsedRegisters = %v", used)
	}
	for i := range want {
		if used[i] != want[i] {
			t.Fatalf("UsedRegisters = %v, want %v", used, want)
		}
	}
	if b.WriteCount() != 4 {
		t.Errorf("WriteCount = %d, want 4", b.WriteCount())
	}
}

func TestWriteLatency(t *testing.T) {
	// Paper §4.3: personality change latency is "hundreds of ns".
	if d := WriteLatency(1); d != 300*time.Nanosecond {
		t.Errorf("1 write = %v", d)
	}
	if d := WriteLatency(24); d != 7200*time.Nanosecond {
		t.Errorf("24 writes = %v", d)
	}
	if WriteLatency(-1) != 0 {
		t.Error("negative count should clamp")
	}
}

// TestRegisterBusWatcherConcurrency exercises the full concurrent surface
// the telemetry layer depends on — WatchAll hooks firing while another
// goroutine writes, reads and scans the register file. Run under
// `go test -race` (the CI target does) to prove the bus access log is
// race-free.
func TestRegisterBusWatcherConcurrency(t *testing.T) {
	b := NewRegisterBus()
	var all, addr9 atomic.Uint64
	b.WatchAll(func(a uint8, v uint32) { all.Add(1) })
	b.Watch(9, func(a uint8, v uint32) { addr9.Add(1) })

	const perG = 500
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // host-style writer
		defer wg.Done()
		for i := 0; i < perG; i++ {
			if err := b.Write(uint8(1+i%255), uint32(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // feedback poller
		defer wg.Done()
		for i := 0; i < perG; i++ {
			if _, err := b.Read(uint8(1 + i%255)); err != nil {
				t.Error(err)
				return
			}
			_ = b.ReadCount()
		}
	}()
	go func() { // telemetry snapshotter
		defer wg.Done()
		for i := 0; i < perG/10; i++ {
			_ = b.UsedRegisters()
			_ = b.WriteCount()
		}
	}()
	wg.Wait()

	if got := all.Load(); got != perG {
		t.Errorf("WatchAll saw %d writes, want %d", got, perG)
	}
	// Writes cycle addresses 1..255; address 9 is hit for i≡8 (mod 255).
	var want9 uint64
	for i := 0; i < perG; i++ {
		if 1+i%255 == 9 {
			want9++
		}
	}
	if got := addr9.Load(); got != want9 {
		t.Errorf("Watch(9) saw %d writes, want %d", got, want9)
	}
	if b.ReadCount() != perG {
		t.Errorf("ReadCount = %d, want %d", b.ReadCount(), perG)
	}
}

// TestWatcherReentrantRegistration is the regression test for the dispatch
// snapshot: a watcher that registers another watcher (or writes the bus)
// from inside its callback must not corrupt the iteration in progress. The
// newly registered watcher only observes writes that start after its
// registration.
func TestWatcherReentrantRegistration(t *testing.T) {
	b := NewRegisterBus()
	var outer, inner, all int
	b.WatchAll(func(a uint8, v uint32) { all++ })
	b.Watch(5, func(a uint8, v uint32) {
		outer++
		if outer == 1 {
			// Reentrant registration mid-dispatch, on the same address.
			b.Watch(5, func(a uint8, v uint32) { inner++ })
			// Reentrant registration of a bus-wide watcher.
			b.WatchAll(func(a uint8, v uint32) { all++ })
			// Reentrant write to a different register from inside dispatch.
			if err := b.Write(6, 0xAA); err != nil {
				t.Errorf("reentrant Write: %v", err)
			}
		}
	})

	if err := b.Write(5, 1); err != nil {
		t.Fatal(err)
	}
	if outer != 1 || inner != 0 {
		t.Errorf("after first write: outer=%d inner=%d, want 1, 0", outer, inner)
	}
	if err := b.Write(5, 2); err != nil {
		t.Fatal(err)
	}
	if outer != 2 || inner != 1 {
		t.Errorf("after second write: outer=%d inner=%d, want 2, 1", outer, inner)
	}
	// WatchAll log: write(5)#1 hits the original only (1), the reentrant
	// write(6) hits both (2), write(5)#2 hits both (2) — 5 total.
	if all != 5 {
		t.Errorf("WatchAll firings = %d, want 5", all)
	}
	if got, err := b.Read(6); err != nil || got != 0xAA {
		t.Errorf("reentrant write landed as %#x, %v", got, err)
	}
}

func TestWriteInterceptor(t *testing.T) {
	b := NewRegisterBus()
	var seen []uint32
	b.Watch(9, func(a uint8, v uint32) { seen = append(seen, v) })
	b.Intercept(func(addr uint8, value uint32) (uint32, WriteAction) {
		switch value {
		case 1:
			return 0, WriteDrop
		case 2:
			return value ^ 0x80, WriteCommit // injected bit error
		}
		return value, WriteCommit
	})

	for _, v := range []uint32{1, 2, 3} {
		if err := b.Write(9, v); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := b.Read(9); got != 3 {
		t.Errorf("final value = %d, want 3", got)
	}
	if len(seen) != 2 || seen[0] != 2^0x80 || seen[1] != 3 {
		t.Errorf("watchers saw %v, want [130 3]", seen)
	}
	if b.WriteCount() != 2 {
		t.Errorf("WriteCount = %d, want 2 (dropped writes don't commit)", b.WriteCount())
	}
	if b.DroppedWrites() != 1 {
		t.Errorf("DroppedWrites = %d, want 1", b.DroppedWrites())
	}
	// Reserved register 0 is rejected before interception.
	called := false
	b.Intercept(func(addr uint8, value uint32) (uint32, WriteAction) {
		called = true
		return value, WriteCommit
	})
	if err := b.Write(0, 1); err == nil || called {
		t.Errorf("Write(0) err=%v intercepted=%v, want error and no interception", err, called)
	}
	b.Intercept(nil)
	if err := b.Write(9, 7); err != nil {
		t.Fatal(err)
	}
	if got, _ := b.Read(9); got != 7 {
		t.Errorf("after removing interceptor, value = %d, want 7", got)
	}
}

func TestRegisterBusConcurrency(t *testing.T) {
	b := NewRegisterBus()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				addr := uint8(1 + (g*31+i)%255)
				_ = b.Write(addr, uint32(i))
				_, _ = b.Read(addr)
			}
		}(g)
	}
	wg.Wait()
	if b.WriteCount() != 8000 {
		t.Errorf("WriteCount = %d, want 8000", b.WriteCount())
	}
}
