package fpga

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// The UHD user register bus (paper §2.2): an 8-bit address bus and a 32-bit
// data bus providing up to 255 programmable registers inside the custom DSP
// core. Host applications program detector coefficients, thresholds and
// jammer settings through it at runtime; the paper measures its write
// latency at "hundreds of ns" (§4.3), which is what makes on-the-fly jammer
// personality changes possible without reprogramming the FPGA.

// NumUserRegisters is the size of the user register file. Address 0 is
// reserved by the UHD design, leaving 255 usable registers.
const NumUserRegisters = 256

// RegWriteLatency is the modeled latency of one register write through the
// UHD user setting bus.
const RegWriteLatency = 300 * time.Nanosecond

// ErrBadRegister is returned for accesses outside the register file.
var ErrBadRegister = fmt.Errorf("fpga: register address out of range")

// RegWatcher observes register writes; blocks register watchers on their
// control addresses to pick up configuration as soon as the host programs it.
type RegWatcher func(addr uint8, value uint32)

// WriteAction is a WriteInterceptor's disposition for one register write.
type WriteAction uint8

const (
	// WriteCommit lets the write proceed (with the possibly rewritten value).
	WriteCommit WriteAction = iota
	// WriteDrop silently discards the write: the register file keeps its old
	// value and no watcher fires, exactly as if the setting-bus transaction
	// were lost in flight.
	WriteDrop
)

// WriteInterceptor inspects every register write before it commits and may
// rewrite the value or drop the transaction entirely. It models setting-bus
// glitches (lost writes, bit errors) for fault-injection harnesses; see
// internal/chaos. The interceptor is called outside the bus lock and must
// not call back into the same bus unless it handles its own reentrancy.
type WriteInterceptor func(addr uint8, value uint32) (uint32, WriteAction)

// RegisterBus is the user register file plus write-latency accounting.
// It is safe for concurrent use: the host-side application and the sample
// clocked core may touch it from different goroutines.
type RegisterBus struct {
	mu          sync.RWMutex
	regs        [NumUserRegisters]uint32
	written     [NumUserRegisters]bool
	watchers    map[uint8][]RegWatcher
	watchersAll []RegWatcher
	intercept   WriteInterceptor
	writes      uint64
	reads       uint64
	dropped     uint64
}

// NewRegisterBus returns an empty register file.
func NewRegisterBus() *RegisterBus {
	return &RegisterBus{watchers: make(map[uint8][]RegWatcher)}
}

// Write programs one 32-bit register. Address 0 is reserved and faults.
func (b *RegisterBus) Write(addr uint8, value uint32) error {
	if addr == 0 {
		return fmt.Errorf("%w: register 0 is reserved by UHD", ErrBadRegister)
	}
	b.mu.RLock()
	icept := b.intercept
	b.mu.RUnlock()
	if icept != nil {
		v, action := icept(addr, value)
		if action == WriteDrop {
			b.mu.Lock()
			b.dropped++
			b.mu.Unlock()
			return nil
		}
		value = v
	}
	b.mu.Lock()
	b.regs[addr] = value
	b.written[addr] = true
	b.writes++
	// Snapshot copies of the watcher lists so dispatch (outside the lock)
	// stays safe when a watcher reentrantly registers another watcher —
	// append may grow the shared backing arrays mid-iteration otherwise.
	watchers := append([]RegWatcher(nil), b.watchers[addr]...)
	all := append([]RegWatcher(nil), b.watchersAll...)
	b.mu.Unlock()
	for _, w := range all {
		w(addr, value)
	}
	for _, w := range watchers {
		w(addr, value)
	}
	return nil
}

// Read returns the current value of a register.
func (b *RegisterBus) Read(addr uint8) (uint32, error) {
	if addr == 0 {
		return 0, fmt.Errorf("%w: register 0 is reserved by UHD", ErrBadRegister)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.reads++
	return b.regs[addr], nil
}

// Watch registers a callback invoked after every write to addr.
func (b *RegisterBus) Watch(addr uint8, w RegWatcher) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.watchers[addr] = append(b.watchers[addr], w)
}

// WatchAll registers a callback invoked before per-address watchers on
// every write — the bus access log the telemetry layer taps.
func (b *RegisterBus) WatchAll(w RegWatcher) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.watchersAll = append(b.watchersAll, w)
}

// Intercept installs a write interceptor (nil removes it). Only one
// interceptor may be installed at a time; fault harnesses compose their
// fault classes inside a single closure.
func (b *RegisterBus) Intercept(f WriteInterceptor) {
	b.mu.Lock()
	b.intercept = f
	b.mu.Unlock()
}

// DroppedWrites returns how many writes an interceptor has discarded.
func (b *RegisterBus) DroppedWrites() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.dropped
}

// WriteCount returns the total number of register writes performed.
func (b *RegisterBus) WriteCount() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.writes
}

// ReadCount returns the total number of register reads performed.
func (b *RegisterBus) ReadCount() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.reads
}

// WriteLatency returns the modeled host-to-core latency for n consecutive
// register writes over the UHD setting bus.
func WriteLatency(n int) time.Duration {
	if n < 0 {
		n = 0
	}
	return time.Duration(n) * RegWriteLatency
}

// UsedRegisters returns the sorted list of register addresses that have been
// written at least once. The paper's design uses 24 of the 255 registers.
func (b *RegisterBus) UsedRegisters() []uint8 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var used []uint8
	for a := 1; a < NumUserRegisters; a++ {
		if b.written[a] {
			used = append(used, uint8(a))
		}
	}
	sort.Slice(used, func(i, j int) bool { return used[i] < used[j] })
	return used
}
