package wifi

import (
	"encoding/binary"
	"hash/crc32"
)

// The 802.11 frame check sequence: CRC-32 (IEEE 802.3 polynomial) appended
// little-endian to every MPDU. A jammed frame shows up as an FCS failure at
// the receiver, which is what drives the MAC retransmissions and the
// throughput collapse the paper measures.

// AppendFCS returns data with its 4-byte FCS appended.
func AppendFCS(data []byte) []byte {
	fcs := crc32.ChecksumIEEE(data)
	out := make([]byte, len(data)+4)
	copy(out, data)
	binary.LittleEndian.PutUint32(out[len(data):], fcs)
	return out
}

// CheckFCS verifies and strips the FCS, reporting whether it matched.
func CheckFCS(frame []byte) (payload []byte, ok bool) {
	if len(frame) < 4 {
		return nil, false
	}
	data := frame[:len(frame)-4]
	want := binary.LittleEndian.Uint32(frame[len(frame)-4:])
	return data, crc32.ChecksumIEEE(data) == want
}
