package wifi

// The 802.11 OFDM block interleaver (§17.3.5.6): coded bits of one OFDM
// symbol are permuted twice — the first permutation spreads adjacent coded
// bits across non-adjacent subcarriers, the second alternates them between
// significant and less-significant constellation bit positions.
//
// The two-permutation index arithmetic runs once per (rate, position) at
// package init into per-rate permutation tables; the per-symbol hot path is
// then a single gather/scatter over the table, which is what the batch
// frame codecs use to (de)interleave whole symbols with no index math and
// no allocation.

// interleaveIndex maps input index k (0..cbps-1) to output index j for a
// symbol with cbps coded bits and bpsc bits per subcarrier. Retained as the
// closed-form reference the permutation tables are generated from (and
// checked against in the tests).
func interleaveIndex(k, cbps, bpsc int) int {
	s := bpsc / 2
	if s < 1 {
		s = 1
	}
	// First permutation.
	i := (cbps/16)*(k%16) + k/16
	// Second permutation.
	j := s*(i/s) + (i+cbps-(16*i)/cbps)%s
	return j
}

// interleavePerm holds the per-rate permutation: interleavePerm[r][k] is the
// output position of input bit k. Built once at init from interleaveIndex.
var interleavePerm [len(rateTable)][]uint16

func init() {
	for r, info := range rateTable {
		perm := make([]uint16, info.cbps)
		for k := 0; k < info.cbps; k++ {
			perm[k] = uint16(interleaveIndex(k, info.cbps, info.bpsc))
		}
		interleavePerm[r] = perm
	}
}

// interleaveInto permutes one symbol's coded bits into dst; both slices must
// hold exactly N_CBPS bits for the rate and must not alias.
func interleaveInto(dst, src []uint8, r Rate) {
	perm := interleavePerm[r]
	_ = dst[len(perm)-1]
	for k, j := range perm {
		dst[j] = src[k]
	}
}

// deinterleaveInto inverts interleaveInto. dst and src must not alias.
func deinterleaveInto(dst, src []uint8, r Rate) {
	perm := interleavePerm[r]
	_ = dst[len(perm)-1]
	for k, j := range perm {
		dst[k] = src[j]
	}
}

// Interleave permutes one symbol's worth of coded bits (len must equal
// N_CBPS for the rate).
func Interleave(bits []uint8, r Rate) []uint8 {
	out := make([]uint8, r.CodedBitsPerSymbol())
	interleaveInto(out, bits, r)
	return out
}

// Deinterleave inverts Interleave.
func Deinterleave(bits []uint8, r Rate) []uint8 {
	out := make([]uint8, r.CodedBitsPerSymbol())
	deinterleaveInto(out, bits, r)
	return out
}
