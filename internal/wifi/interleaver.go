package wifi

// The 802.11 OFDM block interleaver (§17.3.5.6): coded bits of one OFDM
// symbol are permuted twice — the first permutation spreads adjacent coded
// bits across non-adjacent subcarriers, the second alternates them between
// significant and less-significant constellation bit positions.

// interleaveIndex maps input index k (0..cbps-1) to output index j for a
// symbol with cbps coded bits and bpsc bits per subcarrier.
func interleaveIndex(k, cbps, bpsc int) int {
	s := bpsc / 2
	if s < 1 {
		s = 1
	}
	// First permutation.
	i := (cbps/16)*(k%16) + k/16
	// Second permutation.
	j := s*(i/s) + (i+cbps-(16*i)/cbps)%s
	return j
}

// Interleave permutes one symbol's worth of coded bits (len must equal
// N_CBPS for the rate).
func Interleave(bits []uint8, r Rate) []uint8 {
	cbps := r.CodedBitsPerSymbol()
	bpsc := r.BitsPerSubcarrier()
	out := make([]uint8, cbps)
	for k := 0; k < cbps; k++ {
		out[interleaveIndex(k, cbps, bpsc)] = bits[k]
	}
	return out
}

// Deinterleave inverts Interleave.
func Deinterleave(bits []uint8, r Rate) []uint8 {
	cbps := r.CodedBitsPerSymbol()
	bpsc := r.BitsPerSubcarrier()
	out := make([]uint8, cbps)
	for k := 0; k < cbps; k++ {
		out[k] = bits[interleaveIndex(k, cbps, bpsc)]
	}
	return out
}
