package wifi

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dsp"
)

func TestSoftLoopbackAllRates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, r := range AllRates {
		psdu := make([]byte, 180)
		rng.Read(psdu)
		tx, err := Modulate(psdu, TxConfig{Rate: r, ScramblerSeed: 0x33})
		if err != nil {
			t.Fatal(err)
		}
		res, err := DemodulateSoft(tx, 0, len(tx))
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if !bytes.Equal(res.PSDU, psdu) {
			t.Errorf("%v: soft loopback corrupted PSDU", r)
		}
	}
}

func TestSoftLLRSigns(t *testing.T) {
	// A confidently-received constellation point must produce LLRs whose
	// signs agree with the hard decision, for every constellation.
	rng := rand.New(rand.NewSource(12))
	for _, c := range []Constellation{BPSK, QPSK, QAM16, QAM64} {
		n := c.Bits()
		bits := make([]uint8, n)
		for trial := 0; trial < 20; trial++ {
			for i := range bits {
				bits[i] = uint8(rng.Intn(2))
			}
			p := c.Map(bits)
			llrs := c.DemapSoft(p, nil)
			if len(llrs) != n {
				t.Fatalf("%v: %d LLRs for %d bits", c, len(llrs), n)
			}
			for i, l := range llrs {
				want := bits[i]
				switch {
				case l > 0 && want != 0:
					t.Fatalf("%v bit %d: LLR %d but bit is 1", c, i, l)
				case l < 0 && want != 1:
					t.Fatalf("%v bit %d: LLR %d but bit is 0", c, i, l)
				case l == 0:
					t.Fatalf("%v bit %d: zero LLR on clean point", c, i)
				}
			}
		}
	}
}

func TestSoftBeatsHardUnderBurstJamming(t *testing.T) {
	// A jam burst over a run of data symbols at moderate power: the soft
	// receiver recovers frames the hard receiver loses.
	rng := rand.New(rand.NewSource(13))
	const trials = 30
	hardOK, softOK := 0, 0
	for tr := 0; tr < trials; tr++ {
		psdu := make([]byte, 300)
		rng.Read(psdu)
		tx, err := Modulate(psdu, TxConfig{Rate: Rate24, ScramblerSeed: uint8(tr) + 1})
		if err != nil {
			t.Fatal(err)
		}
		rx := tx.Clone()
		// Burst over 4 symbols starting after the preamble+SIGNAL, at a
		// power where hard decisions are marginal.
		start := 400 + 160
		jam := dsp.NewNoiseSource(0.25, int64(tr))
		for i := start; i < start+4*SymbolLen && i < len(rx); i++ {
			rx[i] += jam.Sample()
		}
		noise := dsp.NewNoiseSource(1e-4, int64(tr)+100)
		noise.AddTo(rx)
		if res, err := Demodulate(rx, 0, 300); err == nil && bytes.Equal(res.PSDU, psdu) {
			hardOK++
		}
		if res, err := DemodulateSoft(rx, 0, 300); err == nil && bytes.Equal(res.PSDU, psdu) {
			softOK++
		}
	}
	if softOK < hardOK {
		t.Errorf("soft receiver (%d/%d) worse than hard (%d/%d) under burst jamming",
			softOK, trials, hardOK, trials)
	}
	if softOK == 0 {
		t.Error("soft receiver recovered nothing; burst too strong for the test's point")
	}
}

func TestViterbiSoftMatchesHardOnCleanInput(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	bits := make([]uint8, 96)
	for i := range bits[:90] {
		bits[i] = uint8(rng.Intn(2))
	}
	coded := ConvEncode(bits, Punct1_2)
	llrs := make([]LLR, len(coded))
	for i, b := range coded {
		if b == 1 {
			llrs[i] = -llrClip
		} else {
			llrs[i] = llrClip
		}
	}
	dec, err := ViterbiDecodeSoft(llrs, Punct1_2, 96, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, bits) {
		t.Error("soft decode of saturated LLRs differs from input")
	}
}

func TestViterbiSoftShortInput(t *testing.T) {
	if _, err := ViterbiDecodeSoft([]LLR{1, 2}, Punct1_2, 24, true); err == nil {
		t.Error("insufficient LLRs accepted")
	}
}
