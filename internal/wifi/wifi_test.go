package wifi

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRateTable(t *testing.T) {
	// Spot-check Table 78 parameters.
	cases := []struct {
		r          Rate
		mbps, dbps int
		c          Constellation
	}{
		{Rate6, 6, 24, BPSK},
		{Rate9, 9, 36, BPSK},
		{Rate12, 12, 48, QPSK},
		{Rate18, 18, 72, QPSK},
		{Rate24, 24, 96, QAM16},
		{Rate36, 36, 144, QAM16},
		{Rate48, 48, 192, QAM64},
		{Rate54, 54, 216, QAM64},
	}
	for _, c := range cases {
		if c.r.Mbps() != c.mbps || c.r.BitsPerSymbol() != c.dbps || c.r.Constellation() != c.c {
			t.Errorf("%v: mbps=%d dbps=%d const=%v", c.r, c.r.Mbps(), c.r.BitsPerSymbol(), c.r.Constellation())
		}
		if c.r.CodedBitsPerSymbol() != c.r.BitsPerSubcarrier()*NumDataCarriers {
			t.Errorf("%v: CBPS inconsistent", c.r)
		}
	}
}

func TestSignalBitsRoundTrip(t *testing.T) {
	for _, r := range AllRates {
		got, err := RateFromSignalBits(r.SignalBits())
		if err != nil || got != r {
			t.Errorf("rate %v: round-trip gave %v, %v", r, got, err)
		}
	}
	if _, err := RateFromSignalBits(0b0000); err == nil {
		t.Error("invalid signal bits accepted")
	}
}

func TestNumDataSymbols(t *testing.T) {
	// 100-byte PSDU at 24 Mbps: (16+800+6)/96 = 8.56 -> 9 symbols.
	if n := NumDataSymbols(Rate24, 100); n != 9 {
		t.Errorf("NumDataSymbols = %d, want 9", n)
	}
	// Frame duration: 320 preamble + 80 SIGNAL + 9*80 = 1120 samples.
	if d := FrameDuration(Rate24, 100); d != 1120 {
		t.Errorf("FrameDuration = %d, want 1120", d)
	}
}

func TestScramblerStandardSequence(t *testing.T) {
	// §17.3.5.4: with all-ones seed, the first 16 output bits are
	// 0000 1110 1111 0010.
	s := NewScrambler(0x7F)
	want := []uint8{0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0}
	for i, w := range want {
		if got := s.NextBit(); got != w {
			t.Fatalf("scrambler bit %d = %d, want %d", i, got, w)
		}
	}
}

func TestScramblerInvolution(t *testing.T) {
	f := func(seed uint8, data []uint8) bool {
		seed |= 1 // nonzero
		for i := range data {
			data[i] &= 1
		}
		orig := append([]uint8(nil), data...)
		NewScrambler(seed).Process(data)
		NewScrambler(seed).Process(data)
		return bytes.Equal(orig, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRecoverSeedContinuesSequence(t *testing.T) {
	f := func(seed uint8) bool {
		seed &= 0x7F
		if seed == 0 {
			return true
		}
		tx := NewScrambler(seed)
		var first7 []uint8
		for i := 0; i < 7; i++ {
			first7 = append(first7, tx.NextBit())
		}
		rx := NewScrambler(RecoverSeed(first7))
		for i := 0; i < 100; i++ {
			if rx.NextBit() != tx.NextBit() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConvEncodeKnownVector(t *testing.T) {
	// All-zero input yields all-zero output.
	out := ConvEncode(make([]uint8, 8), Punct1_2)
	for _, b := range out {
		if b != 0 {
			t.Fatal("zero input produced nonzero coded bit")
		}
	}
	if len(out) != 16 {
		t.Fatalf("rate-1/2 coded %d bits from 8", len(out))
	}
	// Impulse response: first input 1 gives A=parity(1&133)=1, B=parity(1&171)=1.
	out = ConvEncode([]uint8{1}, Punct1_2)
	if out[0] != 1 || out[1] != 1 {
		t.Errorf("impulse response start = %v", out)
	}
}

func TestPunctureLengths(t *testing.T) {
	in := make([]uint8, 12)
	if n := len(ConvEncode(in, Punct1_2)); n != 24 {
		t.Errorf("1/2: %d", n)
	}
	if n := len(ConvEncode(in, Punct2_3)); n != 18 {
		t.Errorf("2/3: %d", n)
	}
	if n := len(ConvEncode(in, Punct3_4)); n != 16 {
		t.Errorf("3/4: %d", n)
	}
}

func TestViterbiRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8, pSel uint8) bool {
		punct := []Puncture{Punct1_2, Punct2_3, Punct3_4}[pSel%3]
		// 3/4 and 2/3 need lengths matching the puncture period.
		nbits := 24 + int(n)%200
		nbits -= nbits % 12
		bits := make([]uint8, nbits)
		for i := range bits[:nbits-TailBits] {
			bits[i] = uint8(rng.Intn(2))
		}
		coded := ConvEncode(bits, punct)
		dec, err := ViterbiDecode(coded, punct, nbits, true)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestViterbiCorrectsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bits := make([]uint8, 120)
	for i := range bits[:114] {
		bits[i] = uint8(rng.Intn(2))
	}
	coded := ConvEncode(bits, Punct1_2)
	// Flip 5 well-separated coded bits; the free-distance-10 code at rate
	// 1/2 corrects isolated errors easily.
	for _, pos := range []int{3, 50, 99, 150, 200} {
		coded[pos] ^= 1
	}
	dec, err := ViterbiDecode(coded, Punct1_2, 120, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, bits) {
		t.Error("Viterbi failed to correct 5 isolated hard errors")
	}
}

func TestViterbiShortInput(t *testing.T) {
	if _, err := ViterbiDecode([]uint8{1, 0}, Punct1_2, 24, true); err == nil {
		t.Error("insufficient coded bits accepted")
	}
}

func TestInterleaverRoundTripAllRates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, r := range AllRates {
		bits := make([]uint8, r.CodedBitsPerSymbol())
		for i := range bits {
			bits[i] = uint8(rng.Intn(2))
		}
		orig := append([]uint8(nil), bits...)
		got := Deinterleave(Interleave(bits, r), r)
		if !bytes.Equal(got, orig) {
			t.Errorf("%v: interleave round-trip failed", r)
		}
	}
}

func TestInterleaverIsPermutation(t *testing.T) {
	for _, r := range AllRates {
		cbps := r.CodedBitsPerSymbol()
		bpsc := r.BitsPerSubcarrier()
		seen := make([]bool, cbps)
		for k := 0; k < cbps; k++ {
			j := interleaveIndex(k, cbps, bpsc)
			if j < 0 || j >= cbps || seen[j] {
				t.Fatalf("%v: index %d -> %d not a permutation", r, k, j)
			}
			seen[j] = true
		}
	}
}

func TestInterleaverSpreadsAdjacentBits(t *testing.T) {
	// Adjacent coded bits must land on different subcarriers (the point of
	// the first permutation).
	r := Rate54
	cbps, bpsc := r.CodedBitsPerSymbol(), r.BitsPerSubcarrier()
	for k := 0; k+1 < cbps; k++ {
		c1 := interleaveIndex(k, cbps, bpsc) / bpsc
		c2 := interleaveIndex(k+1, cbps, bpsc) / bpsc
		if c1 == c2 {
			t.Fatalf("coded bits %d,%d map to same subcarrier %d", k, k+1, c1)
		}
	}
}

func TestConstellationUnitPower(t *testing.T) {
	for _, c := range []Constellation{BPSK, QPSK, QAM16, QAM64} {
		n := c.Bits()
		var sum float64
		count := 1 << n
		bits := make([]uint8, n)
		for v := 0; v < count; v++ {
			for i := 0; i < n; i++ {
				bits[i] = uint8((v >> i) & 1)
			}
			p := c.Map(bits)
			sum += real(p)*real(p) + imag(p)*imag(p)
		}
		avg := sum / float64(count)
		if math.Abs(avg-1) > 1e-9 {
			t.Errorf("%v average power %v, want 1", c, avg)
		}
	}
}

func TestMapDemapRoundTripProperty(t *testing.T) {
	f := func(v uint8, cSel uint8) bool {
		c := []Constellation{BPSK, QPSK, QAM16, QAM64}[cSel%4]
		n := c.Bits()
		bits := make([]uint8, n)
		for i := 0; i < n; i++ {
			bits[i] = (v >> i) & 1
		}
		got := c.Demap(c.Map(bits), nil)
		return bytes.Equal(got, bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPreambleStructure(t *testing.T) {
	sp := ShortPreamble()
	if len(sp) != ShortPreambleLen {
		t.Fatalf("short preamble %d samples", len(sp))
	}
	// Periodicity 16.
	for i := 0; i+ShortRepLen < len(sp); i++ {
		if d := sp[i] - sp[i+ShortRepLen]; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("short preamble not 16-periodic at %d", i)
		}
	}
	lp := LongPreamble()
	if len(lp) != LongPreambleLen {
		t.Fatalf("long preamble %d samples", len(lp))
	}
	// GI2 is a cyclic extension: lp[0:32] == lp[64:96] (end of LTS).
	for i := 0; i < 32; i++ {
		if d := lp[i] - lp[i+FFTSize]; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("GI2 not cyclic at %d", i)
		}
	}
	// Two identical LTS symbols.
	for i := 32; i < 96; i++ {
		if d := lp[i] - lp[i+FFTSize]; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("LTS repetitions differ at %d", i)
		}
	}
	full := Preamble()
	if len(full) != 320 {
		t.Fatalf("full preamble %d samples, want 320 (16us)", len(full))
	}
}

func TestPreamblePower(t *testing.T) {
	// 52 of 64 carriers occupied -> time-domain power 52/64.
	want := 52.0 / 64
	if p := LongTrainingSymbol().Power(); math.Abs(p-want) > 1e-9 {
		t.Errorf("LTS power %v, want %v", p, want)
	}
	if p := ShortPreamble().Power(); math.Abs(p-want) > 1e-9 {
		t.Errorf("STS power %v, want %v", p, want)
	}
}

func TestPilotPolarityStartsCorrect(t *testing.T) {
	// Standard sequence begins 1,1,1,1,-1,-1,-1,1.
	want := []float64{1, 1, 1, 1, -1, -1, -1, 1}
	for i, w := range want {
		if PilotPolarity(i) != w {
			t.Errorf("p_%d = %v, want %v", i, PilotPolarity(i), w)
		}
	}
	if PilotPolarity(127) != PilotPolarity(0) {
		t.Error("pilot polarity must cycle at 127")
	}
}

func TestSymbolRoundTripFlatChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := FlatChannel()
	for _, r := range AllRates {
		bits := make([]uint8, r.CodedBitsPerSymbol())
		for i := range bits {
			bits[i] = uint8(rng.Intn(2))
		}
		pts := MapSymbolBits(bits, r)
		sym := AssembleSymbol(pts, 3)
		got := DemapSymbolPoints(DisassembleSymbol(sym, h, 3), r)
		if !bytes.Equal(got, bits) {
			t.Errorf("%v: OFDM symbol round-trip failed", r)
		}
	}
}

func TestSignalFieldRoundTrip(t *testing.T) {
	for _, r := range AllRates {
		for _, l := range []int{1, 100, 1470, 4095} {
			rr, ll, err := parseSignalField(signalField(r, l))
			if err != nil || rr != r || ll != l {
				t.Errorf("SIGNAL(%v,%d) -> %v,%d,%v", r, l, rr, ll, err)
			}
		}
	}
	// Corrupt parity.
	bits := signalField(Rate24, 100)
	bits[0] ^= 1
	if _, _, err := parseSignalField(bits); err == nil {
		t.Error("parity error not detected")
	}
}

func TestModulateValidation(t *testing.T) {
	if _, err := Modulate(nil, TxConfig{Rate: Rate6}); err == nil {
		t.Error("empty PSDU accepted")
	}
	if _, err := Modulate(make([]byte, MaxPSDU+1), TxConfig{Rate: Rate6}); err == nil {
		t.Error("oversized PSDU accepted")
	}
	if _, err := Modulate([]byte{1}, TxConfig{Rate: Rate(99)}); err == nil {
		t.Error("bogus rate accepted")
	}
}

func TestModemLoopbackAllRates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, r := range AllRates {
		psdu := make([]byte, 200)
		rng.Read(psdu)
		tx, err := Modulate(psdu, TxConfig{Rate: r, ScramblerSeed: 0x2A})
		if err != nil {
			t.Fatal(err)
		}
		if len(tx) != FrameDuration(r, len(psdu)) {
			t.Errorf("%v: waveform %d samples, want %d", r, len(tx), FrameDuration(r, len(psdu)))
		}
		res, err := Demodulate(tx, 0, len(tx))
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if res.Rate != r || res.Length != len(psdu) {
			t.Errorf("%v: SIGNAL decoded as %v/%d", r, res.Rate, res.Length)
		}
		if !bytes.Equal(res.PSDU, psdu) {
			t.Errorf("%v: PSDU corrupted in loopback", r)
		}
		if res.LTSIndex != ShortPreambleLen+32 {
			t.Errorf("%v: sync at %d, want %d", r, res.LTSIndex, ShortPreambleLen+32)
		}
	}
}

func TestModemLoopbackProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(n uint16, rSel, seed uint8) bool {
		r := AllRates[rSel%8]
		psdu := make([]byte, 1+int(n)%512)
		rng.Read(psdu)
		tx, err := Modulate(psdu, TxConfig{Rate: r, ScramblerSeed: seed})
		if err != nil {
			return false
		}
		res, err := Demodulate(tx, 0, len(tx))
		if err != nil {
			return false
		}
		return bytes.Equal(res.PSDU, psdu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestDemodulateNoiseOnlyFails(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	noise := make([]complex128, 2000)
	for i := range noise {
		noise[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * 0.1
	}
	if _, err := Demodulate(noise, 0, len(noise)); err == nil {
		t.Error("demodulated pure noise")
	}
}

func TestFCS(t *testing.T) {
	data := []byte("hello mpdu")
	framed := AppendFCS(data)
	if len(framed) != len(data)+4 {
		t.Fatal("FCS length wrong")
	}
	got, ok := CheckFCS(framed)
	if !ok || !bytes.Equal(got, data) {
		t.Error("FCS round-trip failed")
	}
	framed[2] ^= 0x40
	if _, ok := CheckFCS(framed); ok {
		t.Error("corrupted frame passed FCS")
	}
	if _, ok := CheckFCS([]byte{1, 2}); ok {
		t.Error("short frame passed FCS")
	}
}

func TestBitsBytesRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(BitsToBytes(BytesToBits(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBitsLSBFirst(t *testing.T) {
	bits := BytesToBits([]byte{0x01, 0x80})
	if bits[0] != 1 || bits[7] != 0 || bits[8] != 0 || bits[15] != 1 {
		t.Errorf("bit order wrong: %v", bits)
	}
}

func TestPseudoFrames(t *testing.T) {
	if n := len(ModulatePseudoFrame(PseudoShort)); n != ShortRepLen {
		t.Errorf("pseudo short = %d samples", n)
	}
	if n := len(ModulatePseudoFrame(PseudoLong)); n != FFTSize {
		t.Errorf("pseudo long = %d samples", n)
	}
}
