package wifi

import (
	"fmt"

	"repro/internal/dsp"
)

// PPDU transmission (§17.3.2): PLCP preamble, the BPSK rate-1/2 SIGNAL
// symbol carrying RATE and LENGTH, and the DATA field carrying
// SERVICE + PSDU + tail + pad through the full coding chain.

// MaxPSDU is the largest PSDU the 12-bit LENGTH field can describe.
const MaxPSDU = 4095

// TxConfig controls PPDU generation.
type TxConfig struct {
	// Rate selects the DATA-field modulation and coding.
	Rate Rate
	// ScramblerSeed is the 7-bit nonzero initial scrambler state.
	ScramblerSeed uint8
}

// signalFieldInto fills the 24 SIGNAL bits: RATE(4), reserved(1),
// LENGTH(12), parity(1), tail(6).
func signalFieldInto(bits *[24]uint8, r Rate, length int) {
	rb := r.SignalBits()
	for i := 0; i < 4; i++ {
		bits[i] = (rb >> (3 - i)) & 1 // R1-R4 transmitted MSB of table first
	}
	bits[4] = 0 // reserved
	for i := 0; i < 12; i++ {
		bits[5+i] = uint8((length >> i) & 1) // LENGTH is LSB first
	}
	var par uint8
	for i := 0; i < 17; i++ {
		par ^= bits[i]
	}
	bits[17] = par
	for i := 18; i < 24; i++ {
		bits[i] = 0 // tail
	}
}

// signalField builds the 24 SIGNAL bits.
func signalField(r Rate, length int) []uint8 {
	var bits [24]uint8
	signalFieldInto(&bits, r, length)
	return bits[:]
}

// parseSignalField inverts signalField.
func parseSignalField(bits []uint8) (r Rate, length int, err error) {
	if len(bits) < 24 {
		return 0, 0, fmt.Errorf("wifi: SIGNAL field too short")
	}
	var par uint8
	for i := 0; i < 18; i++ {
		par ^= bits[i]
	}
	if par != 0 {
		return 0, 0, fmt.Errorf("wifi: SIGNAL parity error")
	}
	var rb uint8
	for i := 0; i < 4; i++ {
		rb = rb<<1 | bits[i]
	}
	r, err = RateFromSignalBits(rb)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < 12; i++ {
		length |= int(bits[5+i]) << i
	}
	return r, length, nil
}

// Modulate builds the complete PPDU baseband waveform at 20 MSPS for the
// given PSDU. The returned buffer has unit-order average power during the
// frame. The work runs on a pooled TxCodec; the returned slice is freshly
// allocated and owned by the caller.
func Modulate(psdu []byte, cfg TxConfig) (dsp.Samples, error) {
	if !cfg.Rate.Valid() {
		return nil, fmt.Errorf("wifi: invalid rate %v", cfg.Rate)
	}
	if len(psdu) == 0 || len(psdu) > MaxPSDU {
		return nil, fmt.Errorf("wifi: PSDU length %d outside [1, %d]", len(psdu), MaxPSDU)
	}
	c := txPool.Get().(*TxCodec)
	defer txPool.Put(c)
	out := make(dsp.Samples, 0, FrameDuration(cfg.Rate, len(psdu)))
	return c.TxFrame(out, psdu, cfg)
}

// PseudoFrame builds the single-preamble test frames of §3.2: "pseudo-frames
// with only a single short or long preamble", used to characterize raw
// correlator sensitivity.
type PseudoFrame uint8

// Pseudo-frame kinds.
const (
	PseudoShort PseudoFrame = iota // one 16-sample short training symbol
	PseudoLong                     // one 64-sample long training symbol
)

// ModulatePseudoFrame returns the bare training-symbol waveform.
func ModulatePseudoFrame(kind PseudoFrame) dsp.Samples {
	switch kind {
	case PseudoShort:
		return ShortTrainingSymbol()
	default:
		return LongTrainingSymbol()
	}
}
