package wifi

import (
	"fmt"
	"math"
)

// Soft-decision receive path: instead of hard-slicing each equalized
// subcarrier to bits, the demapper emits log-likelihood ratios and the
// Viterbi decoder accumulates them, buying roughly 2 dB over hard
// decisions on AWGN and substantially more resilience when a jamming burst
// corrupts a contiguous run of symbols. The paper's receivers are
// commodity hardware (hard or soft unknown); this path exists as the
// "improved victim" ablation — how much harder does a soft receiver make
// the jammer's job?

// LLR is a clipped integer log-likelihood ratio: positive favors bit 0.
type LLR int8

// llrClip bounds the integer LLR magnitude.
const llrClip = 31

// llrErasure marks a punctured position for the soft decoder.
const llrErasure LLR = 0

func clipLLR(v float64) LLR {
	switch {
	case v > llrClip:
		return llrClip
	case v < -llrClip:
		return -llrClip
	default:
		return LLR(math.Round(v))
	}
}

// pamLLR computes the max-log LLR of bit index b (MSB first within the PAM
// label) for an observed PAM coordinate v over levels with Gray labels, at
// a noise scale that normalizes typical magnitudes into the clip range.
func pamLLR(v float64, levels []float64, labels []uint8, bit int, scale float64) LLR {
	best0, best1 := math.Inf(1), math.Inf(1)
	for i, lv := range levels {
		d := (v - lv) * (v - lv)
		if labels[i]>>bit&1 == 0 {
			if d < best0 {
				best0 = d
			}
		} else if d < best1 {
			best1 = d
		}
	}
	return clipLLR((best1 - best0) * scale)
}

// PAM constellations in Gray-label order matching modulation.go.
var (
	pam2Levels = []float64{-1, 1}
	pam2Labels = []uint8{0, 1}
	pam4Levels = []float64{-3, -1, 1, 3}
	pam4Labels = []uint8{0b00, 0b01, 0b11, 0b10}
	pam8Levels = []float64{-7, -5, -3, -1, 1, 3, 5, 7}
	pam8Labels = []uint8{0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100}
)

// DemapSoft produces the constellation's LLRs for one equalized point,
// appended to dst. Bit order matches Demap.
func (c Constellation) DemapSoft(p complex128, dst []LLR) []LLR {
	k := kmod[c]
	re, im := real(p)/k, imag(p)/k
	switch c {
	case BPSK:
		return append(dst, pamLLR(re, pam2Levels, pam2Labels, 0, 8))
	case QPSK:
		return append(dst,
			pamLLR(re, pam2Levels, pam2Labels, 0, 8),
			pamLLR(im, pam2Levels, pam2Labels, 0, 8))
	case QAM16:
		return append(dst,
			pamLLR(re, pam4Levels, pam4Labels, 1, 4),
			pamLLR(re, pam4Levels, pam4Labels, 0, 4),
			pamLLR(im, pam4Levels, pam4Labels, 1, 4),
			pamLLR(im, pam4Levels, pam4Labels, 0, 4))
	case QAM64:
		return append(dst,
			pamLLR(re, pam8Levels, pam8Labels, 2, 2),
			pamLLR(re, pam8Levels, pam8Labels, 1, 2),
			pamLLR(re, pam8Levels, pam8Labels, 0, 2),
			pamLLR(im, pam8Levels, pam8Labels, 2, 2),
			pamLLR(im, pam8Levels, pam8Labels, 1, 2),
			pamLLR(im, pam8Levels, pam8Labels, 0, 2))
	default:
		return dst
	}
}

// DemapSymbolPointsSoft converts 48 equalized points into one symbol's
// interleaved LLRs.
func DemapSymbolPointsSoft(points []complex128, r Rate) []LLR {
	c := r.Constellation()
	out := make([]LLR, 0, r.CodedBitsPerSymbol())
	for _, p := range points {
		out = c.DemapSoft(p, out)
	}
	return out
}

// DeinterleaveSoft inverts the block interleaver on LLRs, gathering through
// the same per-rate permutation tables the hard path uses.
func DeinterleaveSoft(llrs []LLR, r Rate) []LLR {
	perm := interleavePerm[r]
	out := make([]LLR, len(perm))
	for k, j := range perm {
		out[k] = llrs[j]
	}
	return out
}

// depunctureSoft reinserts zero-LLR erasures at the punctured positions.
func depunctureSoft(llrs []LLR, p Puncture, numDataBits int) ([]LLR, error) {
	mask := p.pattern()
	need := numDataBits * 2 * p.kept() / len(mask)
	if len(llrs) < need {
		return nil, errShortSoft(len(llrs), need)
	}
	out := make([]LLR, 0, numDataBits*2)
	src, pos := 0, 0
	for len(out) < numDataBits*2 {
		if mask[pos] {
			out = append(out, llrs[src])
			src++
		} else {
			out = append(out, llrErasure)
		}
		pos++
		if pos == len(mask) {
			pos = 0
		}
	}
	return out, nil
}

type errShortSoftT struct{ got, need int }

func errShortSoft(got, need int) error { return errShortSoftT{got, need} }
func (e errShortSoftT) Error() string {
	return fmt.Sprintf("wifi: soft decode has %d coded LLRs, needs %d", e.got, e.need)
}

// ViterbiDecodeSoft is the soft-decision counterpart of ViterbiDecode: the
// branch metric accumulates the LLR mass that contradicts each candidate
// coded bit, so confident wrong bits cost more than uncertain ones.
func ViterbiDecodeSoft(llrs []LLR, p Puncture, numDataBits int, terminated bool) ([]uint8, error) {
	seq, err := depunctureSoft(llrs, p, numDataBits)
	if err != nil {
		return nil, err
	}
	const inf = int32(1) << 30
	metric := make([]int32, numStates)
	next := make([]int32, numStates)
	for s := 1; s < numStates; s++ {
		metric[s] = inf
	}
	prev := make([][numStates]uint8, numDataBits)

	cost := func(llr LLR, bit uint8) int32 {
		// llr > 0 favors bit 0: transmitting bit 1 against it costs llr.
		if bit == 1 {
			if llr > 0 {
				return int32(llr)
			}
			return 0
		}
		if llr < 0 {
			return int32(-llr)
		}
		return 0
	}

	for t := 0; t < numDataBits; t++ {
		lA, lB := seq[2*t], seq[2*t+1]
		for s := range next {
			next[s] = inf
		}
		for s := 0; s < numStates; s++ {
			m := metric[s]
			if m >= inf {
				continue
			}
			for in := 0; in < 2; in++ {
				ns := ((s << 1) | in) & (numStates - 1)
				bm := m + cost(lA, branchOut[s][in][0]) + cost(lB, branchOut[s][in][1])
				if bm < next[ns] {
					next[ns] = bm
					prev[t][ns] = uint8(s)
				}
			}
		}
		metric, next = next, metric
	}
	best := 0
	if !terminated {
		for s := 1; s < numStates; s++ {
			if metric[s] < metric[best] {
				best = s
			}
		}
	}
	out := make([]uint8, numDataBits)
	state := best
	for t := numDataBits - 1; t >= 0; t-- {
		out[t] = uint8(state & 1)
		state = int(prev[t][state])
	}
	return out, nil
}

// DemodulateSoft mirrors Demodulate with the soft-decision DATA path (the
// SIGNAL field stays hard — it is short, BPSK, and rate-1/2).
func DemodulateSoft(x []complex128, searchFrom, searchTo int) (*RxResult, error) {
	ltsStart, err := Sync(x, searchFrom, searchTo)
	if err != nil {
		return nil, err
	}
	if len(x) < ltsStart+2*FFTSize+SymbolLen {
		return nil, fmt.Errorf("wifi: truncated frame after sync")
	}
	h := EstimateChannel(x[ltsStart:ltsStart+FFTSize],
		x[ltsStart+FFTSize:ltsStart+2*FFTSize])

	sigStart := ltsStart + 2*FFTSize
	sigPts := DisassembleSymbol(x[sigStart:sigStart+SymbolLen], h, 0)
	sigBits := Deinterleave(DemapSymbolPoints(sigPts, Rate6), Rate6)
	sigDec, err := ViterbiDecode(sigBits, Punct1_2, 24, true)
	if err != nil {
		return nil, err
	}
	rate, length, err := parseSignalField(sigDec)
	if err != nil {
		return nil, err
	}

	nsym := NumDataSymbols(rate, length)
	dataStart := sigStart + SymbolLen
	if len(x) < dataStart+nsym*SymbolLen {
		return nil, fmt.Errorf("wifi: frame truncated (%d of %d data symbols)",
			(len(x)-dataStart)/SymbolLen, nsym)
	}
	llrs := make([]LLR, 0, nsym*rate.CodedBitsPerSymbol())
	for s := 0; s < nsym; s++ {
		start := dataStart + s*SymbolLen
		pts := DisassembleSymbol(x[start:start+SymbolLen], h, 1+s)
		llrs = append(llrs, DeinterleaveSoft(DemapSymbolPointsSoft(pts, rate), rate)...)
	}
	nbits := nsym * rate.BitsPerSymbol()
	bits, err := ViterbiDecodeSoft(llrs, rate.Puncture(), nbits, false)
	if err != nil {
		return nil, err
	}
	state := RecoverSeed(bits[:7])
	NewScrambler(state).Process(bits[7:])
	for i := 0; i < 7; i++ {
		bits[i] = 0
	}
	psduBits := bits[ServiceBits : ServiceBits+8*length]
	return &RxResult{
		LTSIndex: ltsStart,
		Rate:     rate,
		Length:   length,
		PSDU:     BitsToBytes(psduBits),
	}, nil
}
