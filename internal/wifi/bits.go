package wifi

// Bit-order helpers. 802.11 serializes each octet least-significant bit
// first (§17.3.5.3).

// bytesToBitsInto appends the LSB-first bit expansion of b to dst.
func bytesToBitsInto(dst []uint8, b []byte) []uint8 {
	for _, v := range b {
		dst = append(dst, v&1, (v>>1)&1, (v>>2)&1, (v>>3)&1,
			(v>>4)&1, (v>>5)&1, (v>>6)&1, (v>>7)&1)
	}
	return dst
}

// BytesToBits expands bytes into bits, LSB first.
func BytesToBits(b []byte) []uint8 {
	return bytesToBitsInto(make([]uint8, 0, len(b)*8), b)
}

// bitsToBytesInto packs bits (LSB first) into dst; len(dst) must be
// len(bits)/8.
func bitsToBytesInto(dst []byte, bits []uint8) {
	for i := range dst {
		var v byte
		for j := 0; j < 8; j++ {
			v |= byte(bits[i*8+j]&1) << j
		}
		dst[i] = v
	}
}

// BitsToBytes packs bits (LSB first) into bytes; len(bits) must be a
// multiple of 8.
func BitsToBytes(bits []uint8) []byte {
	out := make([]byte, len(bits)/8)
	bitsToBytesInto(out, bits)
	return out
}
