package wifi

// Bit-order helpers. 802.11 serializes each octet least-significant bit
// first (§17.3.5.3).

// BytesToBits expands bytes into bits, LSB first.
func BytesToBits(b []byte) []uint8 {
	out := make([]uint8, 0, len(b)*8)
	for _, v := range b {
		for i := 0; i < 8; i++ {
			out = append(out, (v>>i)&1)
		}
	}
	return out
}

// BitsToBytes packs bits (LSB first) into bytes; len(bits) must be a
// multiple of 8.
func BitsToBytes(bits []uint8) []byte {
	out := make([]byte, len(bits)/8)
	for i := range out {
		var v byte
		for j := 0; j < 8; j++ {
			v |= byte(bits[i*8+j]&1) << j
		}
		out[i] = v
	}
	return out
}
