package wifi

import (
	"fmt"
	"sync"

	"repro/internal/dsp"
)

// Batch frame codecs: the zero-alloc fast path through the whole modem.
//
// A TxCodec or RxCodec owns every scratch buffer one frame's worth of OFDM
// symbols needs — transform points, interleaver blocks, coded-bit streams,
// Viterbi metrics and decision words — so processing N symbols touches the
// allocator zero times once the grow-only slices have reached the frame
// size. The per-symbol arithmetic is bit-for-bit the same as the exported
// single-shot primitives (Interleave, MapSymbolBits, AssembleSymbol, ...);
// the differential tests in batch_test.go pin that equivalence.
//
// Modulate, Demodulate and Sync route through sync.Pool-managed codecs, so
// existing callers get the fast path with the old allocating signatures.

// maxCBPS is the largest N_CBPS of any rate (64-QAM: 288 coded bits).
const maxCBPS = 288

// TxCodec carries the reusable transmit-side scratch.
type TxCodec struct {
	freq   [FFTSize]complex128
	points [NumDataCarriers]complex128
	il     [maxCBPS]uint8
	sig    [24]uint8
	bits   []uint8 // scrambled DATA-field bits, grow-only
	coded  []uint8 // punctured coded bits of one field, grow-only
}

var txPool = sync.Pool{New: func() any { return new(TxCodec) }}

// encodeSymbols codes, interleaves, maps and OFDM-assembles bits (already
// scrambled, tail zeroed) onto the end of dst, which must have capacity for
// every produced symbol. firstSymIndex sets the pilot polarity origin.
func (c *TxCodec) encodeSymbols(dst dsp.Samples, bits []uint8, r Rate, firstSymIndex int) dsp.Samples {
	if cap(c.coded) < 2*len(bits) {
		c.coded = make([]uint8, 0, 2*len(bits))
	}
	coded := convEncodeInto(c.coded[:0], bits, r.Puncture())
	c.coded = coded
	cbps := r.CodedBitsPerSymbol()
	nsym := len(coded) / cbps
	for s := 0; s < nsym; s++ {
		interleaveInto(c.il[:cbps], coded[s*cbps:(s+1)*cbps], r)
		mapSymbolBitsInto(c.points[:], c.il[:cbps], r)
		n := len(dst)
		dst = dst[:n+SymbolLen]
		assembleSymbolInto(dst[n:], &c.freq, c.points[:], firstSymIndex+s)
	}
	return dst
}

// TxFrame appends the complete PPDU baseband waveform for psdu to dst and
// returns the extended slice. Allocation free when dst has FrameDuration
// spare capacity and the codec has processed a frame this large before.
func (c *TxCodec) TxFrame(dst dsp.Samples, psdu []byte, cfg TxConfig) (dsp.Samples, error) {
	if !cfg.Rate.Valid() {
		return dst, fmt.Errorf("wifi: invalid rate %v", cfg.Rate)
	}
	if len(psdu) == 0 || len(psdu) > MaxPSDU {
		return dst, fmt.Errorf("wifi: PSDU length %d outside [1, %d]", len(psdu), MaxPSDU)
	}
	seed := cfg.ScramblerSeed & 0x7F
	if seed == 0 {
		seed = 0x5D // standard example seed 1011101
	}
	if need := len(dst) + FrameDuration(cfg.Rate, len(psdu)); cap(dst) < need {
		grown := make(dsp.Samples, len(dst), need)
		copy(grown, dst)
		dst = grown
	}

	dst = append(dst, preambleCached...)

	// SIGNAL: BPSK rate-1/2, not scrambled, own single symbol, pilot p_0.
	signalFieldInto(&c.sig, cfg.Rate, len(psdu))
	dst = c.encodeSymbols(dst, c.sig[:], Rate6, 0)

	// DATA: SERVICE + PSDU + tail + pad, scrambled (tail bits re-zeroed
	// after scrambling to terminate the trellis).
	nsym := NumDataSymbols(cfg.Rate, len(psdu))
	nbits := nsym * cfg.Rate.BitsPerSymbol()
	if cap(c.bits) < nbits {
		c.bits = make([]uint8, 0, nbits)
	}
	bits := c.bits[:0]
	for i := 0; i < ServiceBits; i++ {
		bits = append(bits, 0)
	}
	bits = bytesToBitsInto(bits, psdu)
	for len(bits) < nbits {
		bits = append(bits, 0) // tail + pad
	}
	c.bits = bits
	scr := Scrambler{state: seed}
	scr.Process(bits)
	tailStart := ServiceBits + 8*len(psdu)
	for i := 0; i < TailBits; i++ {
		bits[tailStart+i] = 0
	}
	return c.encodeSymbols(dst, bits, cfg.Rate, 1), nil
}

// RxCodec carries the reusable receive-side scratch, including the packed
// Viterbi working set and the Sync correlation magnitudes.
type RxCodec struct {
	mags   []float64
	freq   [FFTSize]complex128
	f2     [FFTSize]complex128
	points [NumDataCarriers]complex128
	h      Channel
	db     [maxCBPS]uint8 // demapped (still interleaved) symbol bits
	deint  [maxCBPS]uint8 // deinterleaved symbol bits
	sigDec [24]uint8
	coded  []uint8 // whole DATA field's deinterleaved coded bits
	bits   []uint8 // Viterbi output data bits
	psdu   []byte
	vit    viterbiScratch
	res    RxResult
}

var rxPool = sync.Pool{New: func() any { return new(RxCodec) }}

// sync is the scratch-reusing core of Sync: it correlates the window against
// the cached conjugated LTS taps and requires the characteristic double peak
// 64 samples apart.
func (c *RxCodec) sync(x dsp.Samples, from, to int) (int, error) {
	if from < 0 {
		from = 0
	}
	last := len(x) - (2*FFTSize + SymbolLen) // need LTS1+LTS2+SIGNAL after
	if to > last {
		to = last
	}
	if from >= to {
		return 0, ErrSync
	}
	// Correlation magnitude at every candidate offset in the window plus
	// one LTS length (for the second peak).
	n := to - from + FFTSize + 1
	if cap(c.mags) < n {
		c.mags = make([]float64, n)
	}
	mags := c.mags[:n]
	lts := ltsConjCached
	for i := 0; i < n; i++ {
		k := from + i
		var acc complex128
		for j := 0; j < FFTSize; j++ {
			acc += x[k+j] * lts[j]
		}
		mags[i] = real(acc)*real(acc) + imag(acc)*imag(acc)
	}
	best, bestScore := -1, 0.0
	for i := 0; i+FFTSize < n; i++ {
		score := mags[i] + mags[i+FFTSize]
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return 0, ErrSync
	}
	// Reject pure-noise "peaks": the LTS autocorrelation at the right lag
	// concentrates energy; require the peak to dominate the window median.
	var sum float64
	for _, m := range mags {
		sum += m
	}
	mean := sum / float64(len(mags))
	if bestScore < 4*mean {
		return 0, ErrSync
	}
	return from + best, nil
}

// RxFrame recovers one PPDU from the waveform, searching for the long
// preamble start in [searchFrom, searchTo). The returned RxResult (and its
// PSDU) alias codec scratch and are valid until the next RxFrame call;
// Demodulate copies them out for callers that keep the data.
func (c *RxCodec) RxFrame(x dsp.Samples, searchFrom, searchTo int) (*RxResult, error) {
	ltsStart, err := c.sync(x, searchFrom, searchTo)
	if err != nil {
		return nil, err
	}
	if len(x) < ltsStart+2*FFTSize+SymbolLen {
		return nil, fmt.Errorf("wifi: truncated frame after sync")
	}
	estimateChannelInto(&c.h, &c.freq, &c.f2,
		x[ltsStart:ltsStart+FFTSize], x[ltsStart+FFTSize:ltsStart+2*FFTSize])

	// SIGNAL symbol.
	sigStart := ltsStart + 2*FFTSize
	disassembleSymbolInto(c.points[:], &c.freq, x[sigStart:sigStart+SymbolLen], &c.h, 0)
	db := demapSymbolPointsInto(c.db[:0], c.points[:], Rate6)
	sigCBPS := Rate6.CodedBitsPerSymbol()
	deinterleaveInto(c.deint[:sigCBPS], db, Rate6)
	seq, err := depunctureInto(c.vit.seq[:0], c.deint[:sigCBPS], Punct1_2, 24)
	if err != nil {
		return nil, err
	}
	c.vit.seq = seq
	c.vit.decode(seq, c.sigDec[:], true)
	rate, length, err := parseSignalField(c.sigDec[:])
	if err != nil {
		return nil, err
	}

	// DATA symbols.
	nsym := NumDataSymbols(rate, length)
	dataStart := sigStart + SymbolLen
	if len(x) < dataStart+nsym*SymbolLen {
		return nil, fmt.Errorf("wifi: frame truncated (%d of %d data symbols)",
			(len(x)-dataStart)/SymbolLen, nsym)
	}
	cbps := rate.CodedBitsPerSymbol()
	if cap(c.coded) < nsym*cbps {
		c.coded = make([]uint8, 0, nsym*cbps)
	}
	coded := c.coded[:0]
	for s := 0; s < nsym; s++ {
		start := dataStart + s*SymbolLen
		disassembleSymbolInto(c.points[:], &c.freq, x[start:start+SymbolLen], &c.h, 1+s)
		db = demapSymbolPointsInto(c.db[:0], c.points[:], rate)
		deinterleaveInto(c.deint[:cbps], db, rate)
		coded = append(coded, c.deint[:cbps]...)
	}
	c.coded = coded
	nbits := nsym * rate.BitsPerSymbol()
	seq, err = depunctureInto(c.vit.seq[:0], coded, rate.Puncture(), nbits)
	if err != nil {
		return nil, err
	}
	c.vit.seq = seq
	if cap(c.bits) < nbits {
		c.bits = make([]uint8, nbits)
	}
	bits := c.bits[:nbits]
	c.vit.decode(seq, bits, false)

	// Descramble: the first 7 bits carry the seed (SERVICE bits are zero).
	desc := Scrambler{state: RecoverSeed(bits[:7])}
	desc.Process(bits[7:])
	for i := 0; i < 7; i++ {
		bits[i] = 0
	}
	psduBits := bits[ServiceBits : ServiceBits+8*length]
	if cap(c.psdu) < length {
		c.psdu = make([]byte, length)
	}
	psdu := c.psdu[:length]
	bitsToBytesInto(psdu, psduBits)
	c.res = RxResult{LTSIndex: ltsStart, Rate: rate, Length: length, PSDU: psdu}
	return &c.res, nil
}
