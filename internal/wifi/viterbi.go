package wifi

import "sync"

// Bit-packed Viterbi fast path. The K=7 code has exactly 64 trellis states,
// so one uint64 per trellis step records every add-compare-select decision:
// bit ns set means state ns took its high predecessor (ns>>1 | 32) rather
// than its low one (ns>>1). That replaces the reference decoder's
// [][numStates]uint8 predecessor matrix — 64 bytes per step, allocated per
// call — with 8 bytes per step in a pooled slice, and turns the traceback
// into shift/mask arithmetic. Path metrics live in two pooled arrays that
// ping-pong per step, and the per-branch Hamming cost comes from the bmLUT
// row selected once per step by the received coded pair.
//
// The decode is output-bit-exact against tracebackDecode: both relax the
// two predecessors of each next-state in the same order (low predecessor
// first, replaced only on strictly smaller metric), so ties resolve
// identically, and the branch costs are the same Hamming/erasure metric.

// viterbiScratch holds the pooled working storage of one packed decode.
type viterbiScratch struct {
	metric    []int32  // numStates path metrics (current step)
	next      []int32  // numStates path metrics (next step)
	decisions []uint64 // one decision word per trellis step
	seq       []uint8  // depunctured coded stream (2 per data bit)
}

var viterbiPool = sync.Pool{New: func() any {
	return &viterbiScratch{
		metric: make([]int32, numStates),
		next:   make([]int32, numStates),
	}
}}

// vitInf is the unreachable-state metric. Branch costs add at most 2 per
// step, so reachable metrics stay far below it for any frame the 12-bit
// LENGTH field can describe, and int32 cannot overflow.
const vitInf = int32(1) << 29

// decode runs the packed add-compare-select recursion over the
// erasure-marked coded stream seq (len(seq) must be 2*len(out)) and writes
// the decoded data bits to out. Allocation free once the scratch has grown
// to the frame's step count.
func (v *viterbiScratch) decode(seq []uint8, out []uint8, terminated bool) {
	n := len(out)
	if cap(v.decisions) < n {
		v.decisions = make([]uint64, n)
	}
	decisions := v.decisions[:n]
	if cap(v.metric) < numStates {
		v.metric = make([]int32, numStates)
		v.next = make([]int32, numStates)
	}
	m, nx := v.metric[:numStates], v.next[:numStates]
	m[0] = 0
	for s := 1; s < numStates; s++ {
		m[s] = vitInf
	}

	for t := 0; t < n; t++ {
		rA, rB := seq[2*t], seq[2*t+1]
		if rA > 3 {
			rA = 3 // out-of-alphabet: every branch mismatches (see bmLUT)
		}
		if rB > 3 {
			rB = 3
		}
		cost := &bmLUT[rA][rB]
		var dec uint64
		// Butterfly over predecessor pairs: states k and k+32 are the two
		// predecessors of both next-states 2k and 2k+1, so their metrics and
		// branch pairs load once and serve two compare-selects. Low
		// predecessor wins ties, matching the reference's ascending
		// relaxation order with strict-less replacement.
		for k := 0; k < numStates/2; k++ {
			m0, m1 := m[k], m[k+numStates/2]
			bp0, bp1 := branchPair[k], branchPair[k+numStates/2]
			ns := 2 * k
			a := m0 + cost[bp0[0]]
			b := m1 + cost[bp1[0]]
			if b < a {
				nx[ns] = b
				dec |= 1 << uint(ns)
			} else {
				nx[ns] = a
			}
			a = m0 + cost[bp0[1]]
			b = m1 + cost[bp1[1]]
			if b < a {
				nx[ns+1] = b
				dec |= 1 << uint(ns+1)
			} else {
				nx[ns+1] = a
			}
		}
		decisions[t] = dec
		m, nx = nx, m
	}
	v.metric, v.next = m, nx

	best := 0
	if !terminated {
		for s := 1; s < numStates; s++ {
			if m[s] < m[best] {
				best = s
			}
		}
	}
	state := best
	for t := n - 1; t >= 0; t-- {
		out[t] = uint8(state & 1)
		state = state>>1 | int(decisions[t]>>uint(state)&1)<<5
	}
}
