package wifi

import "fmt"

// The 802.11 convolutional code (§17.3.5.5): rate-1/2, constraint length 7,
// generators g0 = 133₈ and g1 = 171₈, with puncturing to rates 2/3 and 3/4.

// Code generator polynomials (octal 133, 171).
const (
	genA = 0o133
	genB = 0o171
	// numStates is 2^(K-1) for K=7.
	numStates = 64
)

// Puncture selects the puncturing pattern applied after the rate-1/2 mother
// code.
type Puncture uint8

// The three coding rates of the OFDM PHY.
const (
	Punct1_2 Puncture = iota // no puncturing
	Punct2_3                 // drop every 4th coded bit (B of odd pairs)
	Punct3_4                 // drop bits 3,4 of every 6 (A3/B2 pattern)
)

func (p Puncture) String() string {
	switch p {
	case Punct1_2:
		return "1/2"
	case Punct2_3:
		return "2/3"
	case Punct3_4:
		return "3/4"
	default:
		return fmt.Sprintf("Puncture(%d)", uint8(p))
	}
}

// punctPatterns holds the keep-mask over one puncturing period of the A,B
// output stream (interleaved A0 B0 A1 B1 ...), one shared table per rate.
// ConvEncode and depuncture hit these on every frame; hoisting them to
// package level removes the per-call slice allocation the old pattern()
// paid.
var punctPatterns = [...][]bool{
	Punct1_2: {true, true},
	// Period 4 (2 input bits): keep A0 B0 A1, drop B1.
	Punct2_3: {true, true, true, false},
	// Period 6 (3 input bits): keep A0 B0 A1, drop B1, drop A2, keep B2.
	Punct3_4: {true, true, true, false, false, true},
}

// punctKept counts the kept positions per period, precomputed alongside the
// masks.
var punctKept = func() [len(punctPatterns)]int {
	var out [len(punctPatterns)]int
	for p, mask := range punctPatterns {
		for _, m := range mask {
			if m {
				out[p]++
			}
		}
	}
	return out
}()

// pattern returns the shared keep-mask for the rate. Callers must treat the
// returned slice as read-only.
func (p Puncture) pattern() []bool {
	if int(p) < len(punctPatterns) {
		return punctPatterns[p]
	}
	return punctPatterns[Punct1_2]
}

// kept returns the number of coded bits kept per puncturing period.
func (p Puncture) kept() int {
	if int(p) < len(punctKept) {
		return punctKept[p]
	}
	return punctKept[Punct1_2]
}

// parity7 returns the parity of the 7 low bits of v.
func parity7(v uint32) uint8 {
	v &= 0x7F
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return uint8(v & 1)
}

// ConvEncode encodes data bits with the rate-1/2 mother code and applies the
// puncturing pattern. The caller appends the 6 zero tail bits beforehand if
// trellis termination is wanted.
func ConvEncode(bits []uint8, p Puncture) []uint8 {
	return convEncodeInto(make([]uint8, 0, len(bits)*2), bits, p)
}

// convEncodeInto is the allocation-free form of ConvEncode: coded bits are
// appended to out (which the caller sizes with adequate capacity).
func convEncodeInto(out []uint8, bits []uint8, p Puncture) []uint8 {
	mask := p.pattern()
	var state uint32 // 6-bit shift register of previous inputs
	pos := 0
	for _, b := range bits {
		reg := (state << 1) | uint32(b&1)
		if mask[pos] {
			out = append(out, parity7(reg&genA))
		}
		if pos++; pos == len(mask) {
			pos = 0
		}
		if mask[pos] {
			out = append(out, parity7(reg&genB))
		}
		if pos++; pos == len(mask) {
			pos = 0
		}
		state = reg & 0x3F
	}
	return out
}

// viterbiTables holds the per-state branch outputs, computed once.
var branchOut [numStates][2][2]uint8 // [state][input] -> (outA, outB)

// branchPair packs each branch's (outA, outB) into a 2-bit index
// outA<<1|outB, the key into the per-step branch-metric LUT row.
var branchPair [numStates][2]uint8

// bmLUT is the branch-metric lookup table: bmLUT[rA][rB][pair] is the
// Hamming cost of emitting output pair `pair` when the received coded pair
// is (rA, rB). Received values are 0, 1, erasure (2, free), or "unknown"
// (3, every branch pays 1 — matching the reference decoder's treatment of
// out-of-alphabet inputs, which mismatch both coded values).
var bmLUT [4][4][4]int32

func init() {
	for s := 0; s < numStates; s++ {
		for in := 0; in < 2; in++ {
			reg := (uint32(s) << 1) | uint32(in)
			branchOut[s][in][0] = parity7(reg & genA)
			branchOut[s][in][1] = parity7(reg & genB)
			branchPair[s][in] = branchOut[s][in][0]<<1 | branchOut[s][in][1]
		}
	}
	cost := func(r int, out uint8) int32 {
		switch {
		case r == int(erasure):
			return 0
		case r == int(out):
			return 0
		default:
			return 1 // 0/1 mismatch, or out-of-alphabet (always mismatches)
		}
	}
	for rA := 0; rA < 4; rA++ {
		for rB := 0; rB < 4; rB++ {
			for pair := 0; pair < 4; pair++ {
				bmLUT[rA][rB][pair] = cost(rA, uint8(pair>>1)) + cost(rB, uint8(pair&1))
			}
		}
	}
}

// erasure marks a punctured (missing) coded bit position for the decoder.
const erasure uint8 = 2

// depuncture reinserts erasure marks at the punctured positions so the
// Viterbi decoder can skip them in its metric.
func depuncture(coded []uint8, p Puncture, numDataBits int) ([]uint8, error) {
	return depunctureInto(make([]uint8, 0, numDataBits*2), coded, p, numDataBits)
}

// depunctureInto is the allocation-free form of depuncture, appending the
// erasure-marked stream to out.
func depunctureInto(out []uint8, coded []uint8, p Puncture, numDataBits int) ([]uint8, error) {
	mask := p.pattern()
	need := numDataBits * 2 * p.kept() / len(mask)
	if len(coded) < need {
		return nil, fmt.Errorf("wifi: %d coded bits, need %d for %d data bits at rate %v",
			len(coded), need, numDataBits, p)
	}
	src := 0
	pos := 0
	for n := 0; n < numDataBits*2; n++ {
		if mask[pos] {
			out = append(out, coded[src])
			src++
		} else {
			out = append(out, erasure)
		}
		if pos++; pos == len(mask) {
			pos = 0
		}
	}
	return out, nil
}

// ViterbiDecode performs hard-decision maximum-likelihood decoding of coded
// bits back to numDataBits data bits. The trellis starts in state 0; if the
// encoder was tail-terminated the final state 0 is forced, otherwise the
// best end state wins. Punctured positions are treated as erasures.
//
// The decode runs on the bit-packed fast path (viterbiScratch.decode) with
// pooled metric and decision storage; the retained tracebackDecode is the
// bit-exactness reference for the differential suite.
func ViterbiDecode(coded []uint8, p Puncture, numDataBits int, terminated bool) ([]uint8, error) {
	vs := viterbiPool.Get().(*viterbiScratch)
	defer viterbiPool.Put(vs)
	seq, err := depunctureInto(vs.seq[:0], coded, p, numDataBits)
	if err != nil {
		return nil, err
	}
	vs.seq = seq
	out := make([]uint8, numDataBits)
	vs.decode(seq, out, terminated)
	return out, nil
}

// tracebackDecode runs the add-compare-select recursion with explicit
// predecessor bookkeeping per step for an unambiguous traceback. Retained
// as the reference implementation the packed decoder is pinned against.
func tracebackDecode(seq []uint8, numDataBits int, terminated bool) []uint8 {
	const inf = int32(1) << 30
	metric := make([]int32, numStates)
	next := make([]int32, numStates)
	for s := 1; s < numStates; s++ {
		metric[s] = inf
	}
	prev := make([][numStates]uint8, numDataBits) // predecessor state

	for t := 0; t < numDataBits; t++ {
		rA, rB := seq[2*t], seq[2*t+1]
		for s := range next {
			next[s] = inf
		}
		for s := 0; s < numStates; s++ {
			m := metric[s]
			if m >= inf {
				continue
			}
			for in := 0; in < 2; in++ {
				ns := ((s << 1) | in) & (numStates - 1)
				bm := m
				if rA != erasure && branchOut[s][in][0] != rA {
					bm++
				}
				if rB != erasure && branchOut[s][in][1] != rB {
					bm++
				}
				if bm < next[ns] {
					next[ns] = bm
					prev[t][ns] = uint8(s)
				}
			}
		}
		metric, next = next, metric
	}

	best := 0
	if !terminated {
		for s := 1; s < numStates; s++ {
			if metric[s] < metric[best] {
				best = s
			}
		}
	}
	out := make([]uint8, numDataBits)
	state := best
	for t := numDataBits - 1; t >= 0; t-- {
		out[t] = uint8(state & 1)
		state = int(prev[t][state])
	}
	return out
}
