package wifi

import "fmt"

// The 802.11 convolutional code (§17.3.5.5): rate-1/2, constraint length 7,
// generators g0 = 133₈ and g1 = 171₈, with puncturing to rates 2/3 and 3/4.

// Code generator polynomials (octal 133, 171).
const (
	genA = 0o133
	genB = 0o171
	// numStates is 2^(K-1) for K=7.
	numStates = 64
)

// Puncture selects the puncturing pattern applied after the rate-1/2 mother
// code.
type Puncture uint8

// The three coding rates of the OFDM PHY.
const (
	Punct1_2 Puncture = iota // no puncturing
	Punct2_3                 // drop every 4th coded bit (B of odd pairs)
	Punct3_4                 // drop bits 3,4 of every 6 (A3/B2 pattern)
)

func (p Puncture) String() string {
	switch p {
	case Punct1_2:
		return "1/2"
	case Punct2_3:
		return "2/3"
	case Punct3_4:
		return "3/4"
	default:
		return fmt.Sprintf("Puncture(%d)", uint8(p))
	}
}

// pattern returns the keep-mask over one puncturing period of the A,B
// output stream (interleaved A0 B0 A1 B1 ...).
func (p Puncture) pattern() []bool {
	switch p {
	case Punct2_3:
		// Period 4 (2 input bits): keep A0 B0 A1, drop B1.
		return []bool{true, true, true, false}
	case Punct3_4:
		// Period 6 (3 input bits): keep A0 B0 A1, drop B1, drop A2, keep B2.
		return []bool{true, true, true, false, false, true}
	default:
		return []bool{true, true}
	}
}

// parity64 returns the parity of the 7 low bits of v.
func parity7(v uint32) uint8 {
	v &= 0x7F
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return uint8(v & 1)
}

// ConvEncode encodes data bits with the rate-1/2 mother code and applies the
// puncturing pattern. The caller appends the 6 zero tail bits beforehand if
// trellis termination is wanted.
func ConvEncode(bits []uint8, p Puncture) []uint8 {
	mask := p.pattern()
	out := make([]uint8, 0, len(bits)*2)
	var state uint32 // 6-bit shift register of previous inputs
	pos := 0
	emit := func(b uint8) {
		if mask[pos] {
			out = append(out, b)
		}
		pos++
		if pos == len(mask) {
			pos = 0
		}
	}
	for _, b := range bits {
		reg := (state << 1) | uint32(b&1)
		emit(parity7(reg & genA))
		emit(parity7(reg & genB))
		state = reg & 0x3F
	}
	return out
}

// viterbiTables holds the per-state branch outputs, computed once.
var branchOut [numStates][2][2]uint8 // [state][input] -> (outA, outB)

func init() {
	for s := 0; s < numStates; s++ {
		for in := 0; in < 2; in++ {
			reg := (uint32(s) << 1) | uint32(in)
			branchOut[s][in][0] = parity7(reg & genA)
			branchOut[s][in][1] = parity7(reg & genB)
		}
	}
}

// erasure marks a punctured (missing) coded bit position for the decoder.
const erasure uint8 = 2

// depuncture reinserts erasure marks at the punctured positions so the
// Viterbi decoder can skip them in its metric.
func depuncture(coded []uint8, p Puncture, numDataBits int) ([]uint8, error) {
	mask := p.pattern()
	kept := 0
	for _, m := range mask {
		if m {
			kept++
		}
	}
	need := numDataBits * 2 * kept / len(mask)
	if len(coded) < need {
		return nil, fmt.Errorf("wifi: %d coded bits, need %d for %d data bits at rate %v",
			len(coded), need, numDataBits, p)
	}
	out := make([]uint8, 0, numDataBits*2)
	src := 0
	pos := 0
	for len(out) < numDataBits*2 {
		if mask[pos] {
			out = append(out, coded[src])
			src++
		} else {
			out = append(out, erasure)
		}
		pos++
		if pos == len(mask) {
			pos = 0
		}
	}
	return out, nil
}

// ViterbiDecode performs hard-decision maximum-likelihood decoding of coded
// bits back to numDataBits data bits. The trellis starts in state 0; if the
// encoder was tail-terminated the final state 0 is forced, otherwise the
// best end state wins. Punctured positions are treated as erasures.
func ViterbiDecode(coded []uint8, p Puncture, numDataBits int, terminated bool) ([]uint8, error) {
	seq, err := depuncture(coded, p, numDataBits)
	if err != nil {
		return nil, err
	}
	return tracebackDecode(seq, numDataBits, terminated), nil
}

// tracebackDecode runs the add-compare-select recursion with explicit
// predecessor bookkeeping per step for an unambiguous traceback.
func tracebackDecode(seq []uint8, numDataBits int, terminated bool) []uint8 {
	const inf = int32(1) << 30
	metric := make([]int32, numStates)
	next := make([]int32, numStates)
	for s := 1; s < numStates; s++ {
		metric[s] = inf
	}
	prev := make([][numStates]uint8, numDataBits) // predecessor state

	for t := 0; t < numDataBits; t++ {
		rA, rB := seq[2*t], seq[2*t+1]
		for s := range next {
			next[s] = inf
		}
		for s := 0; s < numStates; s++ {
			m := metric[s]
			if m >= inf {
				continue
			}
			for in := 0; in < 2; in++ {
				ns := ((s << 1) | in) & (numStates - 1)
				bm := m
				if rA != erasure && branchOut[s][in][0] != rA {
					bm++
				}
				if rB != erasure && branchOut[s][in][1] != rB {
					bm++
				}
				if bm < next[ns] {
					next[ns] = bm
					prev[t][ns] = uint8(s)
				}
			}
		}
		metric, next = next, metric
	}

	best := 0
	if !terminated {
		for s := 1; s < numStates; s++ {
			if metric[s] < metric[best] {
				best = s
			}
		}
	}
	out := make([]uint8, numDataBits)
	state := best
	for t := numDataBits - 1; t >= 0; t-- {
		out[t] = uint8(state & 1)
		state = int(prev[t][state])
	}
	return out
}
