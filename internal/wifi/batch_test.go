package wifi

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dsp"
)

// Differential suite for the batch fast path: the packed Viterbi decoder is
// pinned against the retained tracebackDecode reference, and the frame
// codecs against a composition of the exported single-shot primitives. All
// comparisons are exact (==), not tolerance-based — the fast path must be
// bit-identical, or the seeded experiment figures would drift.

// legacyModulate rebuilds Modulate's output from the exported per-symbol
// primitives, the way the pre-batch implementation composed them.
func legacyModulate(t *testing.T, psdu []byte, cfg TxConfig) dsp.Samples {
	t.Helper()
	seed := cfg.ScramblerSeed & 0x7F
	if seed == 0 {
		seed = 0x5D
	}
	encode := func(bits []uint8, r Rate, firstSymIndex int) dsp.Samples {
		coded := ConvEncode(bits, r.Puncture())
		cbps := r.CodedBitsPerSymbol()
		var out dsp.Samples
		for s := 0; s < len(coded)/cbps; s++ {
			il := Interleave(coded[s*cbps:(s+1)*cbps], r)
			pts := MapSymbolBits(il, r)
			out = append(out, AssembleSymbol(pts, firstSymIndex+s)...)
		}
		return out
	}
	out := Preamble()
	out = append(out, encode(signalField(cfg.Rate, len(psdu)), Rate6, 0)...)
	nbits := NumDataSymbols(cfg.Rate, len(psdu)) * cfg.Rate.BitsPerSymbol()
	bits := make([]uint8, 0, nbits)
	bits = append(bits, make([]uint8, ServiceBits)...)
	bits = append(bits, BytesToBits(psdu)...)
	bits = append(bits, make([]uint8, nbits-len(bits))...)
	NewScrambler(seed).Process(bits)
	for i := 0; i < TailBits; i++ {
		bits[ServiceBits+8*len(psdu)+i] = 0
	}
	return append(out, encode(bits, cfg.Rate, 1)...)
}

func TestTxFrameMatchesLegacyCompositionAllRates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, r := range AllRates {
		psdu := make([]byte, 1+rng.Intn(400))
		rng.Read(psdu)
		cfg := TxConfig{Rate: r, ScramblerSeed: uint8(1 + rng.Intn(127))}
		want := legacyModulate(t, psdu, cfg)

		got, err := Modulate(psdu, cfg)
		if err != nil {
			t.Fatalf("%v: Modulate: %v", r, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: length %d, want %d", r, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: sample %d = %v, want %v", r, i, got[i], want[i])
			}
		}

		var codec TxCodec
		batch, err := codec.TxFrame(nil, psdu, cfg)
		if err != nil {
			t.Fatalf("%v: TxFrame: %v", r, err)
		}
		for i := range batch {
			if batch[i] != want[i] {
				t.Fatalf("%v: TxFrame sample %d = %v, want %v", r, i, batch[i], want[i])
			}
		}
	}
}

func TestTxFrameAppendsToExistingSamples(t *testing.T) {
	psdu := []byte("appended payload")
	cfg := TxConfig{Rate: Rate12, ScramblerSeed: 9}
	frame, err := Modulate(psdu, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prefix := make(dsp.Samples, 100)
	for i := range prefix {
		prefix[i] = complex(float64(i), -float64(i))
	}
	var codec TxCodec
	got, err := codec.TxFrame(prefix.Clone(), psdu, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(prefix)+len(frame) {
		t.Fatalf("length %d, want %d", len(got), len(prefix)+len(frame))
	}
	for i, v := range prefix {
		if got[i] != v {
			t.Fatalf("prefix sample %d clobbered", i)
		}
	}
	for i, v := range frame {
		if got[len(prefix)+i] != v {
			t.Fatalf("frame sample %d = %v, want %v", i, got[len(prefix)+i], v)
		}
	}
}

func TestRxFrameMatchesDemodulateAllRates(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var codec RxCodec
	for _, r := range AllRates {
		psdu := make([]byte, 1+rng.Intn(300))
		rng.Read(psdu)
		tx, err := Modulate(psdu, TxConfig{Rate: r, ScramblerSeed: 0x31})
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		want, err := Demodulate(tx, 100, 260)
		if err != nil {
			t.Fatalf("%v: Demodulate: %v", r, err)
		}
		got, err := codec.RxFrame(tx, 100, 260)
		if err != nil {
			t.Fatalf("%v: RxFrame: %v", r, err)
		}
		if got.LTSIndex != want.LTSIndex || got.Rate != want.Rate || got.Length != want.Length {
			t.Fatalf("%v: header %+v, want %+v", r, got, want)
		}
		if !bytes.Equal(got.PSDU, want.PSDU) {
			t.Fatalf("%v: PSDU mismatch", r)
		}
		if !bytes.Equal(want.PSDU, psdu) {
			t.Fatalf("%v: loopback payload mismatch", r)
		}
	}
}

// TestPackedViterbiMatchesReference pins viterbiScratch.decode against
// tracebackDecode on the same depunctured sequences: all three puncture
// rates, terminated and open trellises, random bit corruptions and extra
// erasures beyond the puncturing pattern's own.
func TestPackedViterbiMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	punctures := []Puncture{Punct1_2, Punct2_3, Punct3_4}
	var vs viterbiScratch
	for trial := 0; trial < 200; trial++ {
		p := punctures[trial%len(punctures)]
		terminated := trial%2 == 0
		n := 12 + rng.Intn(200)
		bits := make([]uint8, n)
		for i := range bits {
			bits[i] = uint8(rng.Intn(2))
		}
		if terminated {
			for i := n - 6; i < n; i++ {
				bits[i] = 0
			}
		}
		coded := ConvEncode(bits, p)
		// Corrupt some hard bits.
		for f := 0; f < 1+rng.Intn(4); f++ {
			coded[rng.Intn(len(coded))] ^= 1
		}
		seq, err := depuncture(coded, p, n)
		if err != nil {
			t.Fatal(err)
		}
		// Inject extra erasures on top of the punctured positions.
		for e := 0; e < rng.Intn(5); e++ {
			seq[rng.Intn(len(seq))] = erasure
		}

		want := tracebackDecode(seq, n, terminated)
		got := make([]uint8, n)
		vs.decode(seq, got, terminated)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (p=%v terminated=%v n=%d): packed decode diverges from reference",
				trial, p, terminated, n)
		}
	}
}

// TestPackedViterbiOutOfAlphabetInput pins the bmLUT clamp row: values
// outside {0, 1, erasure} must cost every branch equally, exactly like the
// reference's "mismatches both outputs" treatment.
func TestPackedViterbiOutOfAlphabetInput(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	var vs viterbiScratch
	for trial := 0; trial < 50; trial++ {
		n := 24 + rng.Intn(60)
		seq := make([]uint8, 2*n)
		for i := range seq {
			seq[i] = uint8(rng.Intn(6)) // includes 3, 4, 5: out of alphabet
		}
		want := tracebackDecode(seq, n, false)
		got := make([]uint8, n)
		vs.decode(seq, got, false)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: clamp row diverges from reference", trial)
		}
	}
}

func TestInterleaveTablesMatchClosedForm(t *testing.T) {
	for r, info := range rateTable {
		perm := interleavePerm[r]
		if len(perm) != info.cbps {
			t.Fatalf("rate %v: table has %d entries, want %d", Rate(r), len(perm), info.cbps)
		}
		for k := 0; k < info.cbps; k++ {
			if int(perm[k]) != interleaveIndex(k, info.cbps, info.bpsc) {
				t.Fatalf("rate %v: perm[%d] = %d, want %d",
					Rate(r), k, perm[k], interleaveIndex(k, info.cbps, info.bpsc))
			}
		}
	}
}

func TestPuncturePatternsShared(t *testing.T) {
	for _, p := range []Puncture{Punct1_2, Punct2_3, Punct3_4} {
		if &p.pattern()[0] != &punctPatterns[p][0] {
			t.Fatalf("%v: pattern() returned a copy, want the shared table", p)
		}
	}
	if &Puncture(7).pattern()[0] != &punctPatterns[Punct1_2][0] {
		t.Fatal("invalid puncture should fall back to the 1/2 table")
	}
	if Punct1_2.kept() != 2 || Punct2_3.kept() != 3 || Punct3_4.kept() != 4 {
		t.Fatal("kept counts wrong")
	}
}

func TestCachedPreambleWaveformsImmutable(t *testing.T) {
	a := LongTrainingSymbol()
	a[0] = 99
	b := LongTrainingSymbol()
	if b[0] == 99 {
		t.Fatal("LongTrainingSymbol returned the cached buffer, not a copy")
	}
	pa := Preamble()
	pa[5] = 99
	if Preamble()[5] == 99 {
		t.Fatal("Preamble returned the cached buffer, not a copy")
	}
	for i, v := range renderLongTrainingSymbol() {
		if ltsCached[i] != v {
			t.Fatalf("cached LTS sample %d drifted", i)
		}
		want := complex(real(v), -imag(v))
		if ltsConjCached[i] != want {
			t.Fatalf("conjugated LTS sample %d = %v, want %v", i, ltsConjCached[i], want)
		}
	}
}

// TestBatchCodecsZeroAlloc is the steady-state allocation contract of the
// tentpole: after warm-up, a whole frame through either codec must not
// touch the allocator.
func TestBatchCodecsZeroAlloc(t *testing.T) {
	psdu := make([]byte, 1000)
	rng := rand.New(rand.NewSource(46))
	rng.Read(psdu)
	cfg := TxConfig{Rate: Rate54, ScramblerSeed: 0x5D}

	var tx TxCodec
	dst := make(dsp.Samples, 0, FrameDuration(cfg.Rate, len(psdu)))
	var err error
	dst, err = tx.TxFrame(dst, psdu, cfg) // warm the grow-only scratch
	if err != nil {
		t.Fatal(err)
	}
	frame := dst.Clone()
	if allocs := testing.AllocsPerRun(20, func() {
		dst = dst[:0]
		dst, err = tx.TxFrame(dst, psdu, cfg)
	}); allocs != 0 {
		t.Fatalf("TxFrame allocates %v times per frame in steady state", allocs)
	}
	if err != nil {
		t.Fatal(err)
	}

	var rx RxCodec
	if _, err := rx.RxFrame(frame, 100, 260); err != nil {
		t.Fatal(err)
	}
	var res *RxResult
	if allocs := testing.AllocsPerRun(20, func() {
		res, err = rx.RxFrame(frame, 100, 260)
	}); allocs != 0 {
		t.Fatalf("RxFrame allocates %v times per frame in steady state", allocs)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.PSDU, psdu) {
		t.Fatal("steady-state RxFrame corrupted the payload")
	}
}

func benchFrame(b *testing.B) (dsp.Samples, []byte, TxConfig) {
	b.Helper()
	psdu := make([]byte, 1000)
	rng := rand.New(rand.NewSource(47))
	rng.Read(psdu)
	cfg := TxConfig{Rate: Rate54, ScramblerSeed: 0x5D}
	frame, err := Modulate(psdu, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return frame, psdu, cfg
}

func BenchmarkTxFrame(b *testing.B) {
	frame, psdu, cfg := benchFrame(b)
	var codec TxCodec
	dst := make(dsp.Samples, 0, len(frame))
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = codec.TxFrame(dst[:0], psdu, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRxFrame(b *testing.B) {
	frame, _, _ := benchFrame(b)
	var codec RxCodec
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.RxFrame(frame, 100, 260); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModulate(b *testing.B) {
	frame, psdu, cfg := benchFrame(b)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Modulate(psdu, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDemodulate(b *testing.B) {
	frame, _, _ := benchFrame(b)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Demodulate(frame, 100, 260); err != nil {
			b.Fatal(err)
		}
	}
}

func viterbiBenchInput(b *testing.B) ([]uint8, int) {
	b.Helper()
	rng := rand.New(rand.NewSource(48))
	n := 4000
	bits := make([]uint8, n)
	for i := range bits {
		bits[i] = uint8(rng.Intn(2))
	}
	coded := ConvEncode(bits, Punct3_4)
	seq, err := depuncture(coded, Punct3_4, n)
	if err != nil {
		b.Fatal(err)
	}
	return seq, n
}

func BenchmarkViterbiPacked(b *testing.B) {
	seq, n := viterbiBenchInput(b)
	var vs viterbiScratch
	out := make([]uint8, n)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs.decode(seq, out, false)
	}
}

func BenchmarkViterbiReference(b *testing.B) {
	seq, n := viterbiBenchInput(b)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracebackDecode(seq, n, false)
	}
}
