package wifi

import (
	"math"

	"repro/internal/dsp"
)

// PLCP preamble generation (§17.3.3): ten repetitions of a 16-sample short
// training symbol (8 µs) followed by a double guard interval and two
// 64-sample long training symbols (8 µs). These are the low-entropy,
// standard-defined portions of every frame that the jammer's
// cross-correlator keys on.
//
// The waveforms are pure functions of the standard, so they are rendered
// once at package init; the exported accessors hand out defensive copies,
// while the modem fast paths (Sync, the batch frame codecs) read the cached
// buffers directly.

// shortSeq is the frequency-domain short training sequence S(-26..26)
// before the sqrt(13/6) scaling; entries are (1+j) multiples.
var shortSeq = [53]complex128{
	0, 0, 1 + 1i, 0, 0, 0, -1 - 1i, 0, 0, 0,
	1 + 1i, 0, 0, 0, -1 - 1i, 0, 0, 0, -1 - 1i, 0,
	0, 0, 1 + 1i, 0, 0, 0, 0, 0, 0, 0,
	-1 - 1i, 0, 0, 0, -1 - 1i, 0, 0, 0, 1 + 1i, 0,
	0, 0, 1 + 1i, 0, 0, 0, 1 + 1i, 0, 0, 0,
	1 + 1i, 0, 0,
}

// longSeq is the frequency-domain long training sequence L(-26..26).
var longSeq = [53]float64{
	1, 1, -1, -1, 1, 1, -1, 1, -1, 1,
	1, 1, 1, 1, 1, -1, -1, 1, 1, -1,
	1, -1, 1, 1, 1, 1, 0, 1, -1, -1,
	1, 1, -1, 1, -1, 1, -1, -1, -1, -1,
	-1, 1, 1, -1, -1, 1, -1, 1, -1, 1,
	1, 1, 1,
}

// carrierToBin maps subcarrier index k in [-26, 26] to its FFT bin.
func carrierToBin(k int) int {
	if k >= 0 {
		return k
	}
	return FFTSize + k
}

// ifft64 performs a 64-point IFFT of freq-domain subcarriers scaled so the
// time-domain signal has approximately unit peak (standard IFFT scaling).
// Init-time only; the per-symbol paths use the dsp.FFT64 plan.
func ifft64(freq dsp.Samples) dsp.Samples {
	buf := freq.Clone()
	dsp.IFFT(buf)
	// Undo the 1/N of IFFT and apply 1/sqrt(52) style normalization so the
	// average symbol power is ~1 regardless of occupied carriers.
	buf.Scale(float64(FFTSize))
	return buf
}

// The cached preamble waveforms, rendered once. stsCached is one 16-sample
// short training repetition, ltsCached the 64-sample long training symbol,
// preambleCached the full 320-sample PLCP preamble. ltsConjCached holds the
// conjugated LTS taps Sync correlates with.
var (
	stsCached      = renderShortTrainingSymbol()
	ltsCached      = renderLongTrainingSymbol()
	ltsConjCached  = renderLTSConj()
	preambleCached = renderPreamble()
)

func renderShortTrainingSymbol() dsp.Samples {
	freq := make(dsp.Samples, FFTSize)
	scale := complex(math.Sqrt(13.0/6.0), 0)
	for i, v := range shortSeq {
		k := i - 26
		freq[carrierToBin(k)] = v * scale
	}
	full := ifft64(freq)
	full.Scale(1.0 / math.Sqrt(float64(FFTSize)))
	return full[:ShortRepLen].Clone()
}

func renderLongTrainingSymbol() dsp.Samples {
	freq := make(dsp.Samples, FFTSize)
	for i, v := range longSeq {
		k := i - 26
		freq[carrierToBin(k)] = complex(v, 0)
	}
	full := ifft64(freq)
	full.Scale(1.0 / math.Sqrt(float64(FFTSize)))
	return full
}

func renderLTSConj() dsp.Samples {
	lts := renderLongTrainingSymbol()
	out := make(dsp.Samples, len(lts))
	for i, v := range lts {
		out[i] = complex(real(v), -imag(v))
	}
	return out
}

func renderPreamble() dsp.Samples {
	out := make(dsp.Samples, 0, ShortPreambleLen+LongPreambleLen)
	sts := renderShortTrainingSymbol()
	for i := 0; i < 10; i++ {
		out = append(out, sts...)
	}
	lts := renderLongTrainingSymbol()
	out = append(out, lts[FFTSize-2*CPLen:]...) // GI2
	out = append(out, lts...)
	out = append(out, lts...)
	return out
}

// ShortTrainingSymbol returns one 16-sample period of the short training
// sequence at 20 MSPS.
func ShortTrainingSymbol() dsp.Samples {
	return stsCached.Clone()
}

// ShortPreamble returns the full 160-sample (8 µs) short training sequence:
// ten repetitions of the short training symbol.
func ShortPreamble() dsp.Samples {
	return preambleCached[:ShortPreambleLen].Clone()
}

// LongTrainingSymbol returns the 64-sample long training symbol (no guard).
func LongTrainingSymbol() dsp.Samples {
	return ltsCached.Clone()
}

// LongPreamble returns the full 160-sample long training sequence: a
// 32-sample double guard interval followed by two long training symbols.
func LongPreamble() dsp.Samples {
	return preambleCached[ShortPreambleLen:].Clone()
}

// Preamble returns the complete 320-sample (16 µs) PLCP preamble.
func Preamble() dsp.Samples {
	return preambleCached.Clone()
}

// LongFreqSequence exposes the frequency-domain long training values for
// channel estimation; index by subcarrier k via carrierToBin.
func longFreqAt(k int) float64 {
	return longSeq[k+26]
}
