package wifi

import (
	"fmt"
	"math"
)

// Constellation identifies the subcarrier modulation of a rate.
type Constellation uint8

// The four OFDM constellations.
const (
	BPSK Constellation = iota
	QPSK
	QAM16
	QAM64
)

func (c Constellation) String() string {
	switch c {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	default:
		return fmt.Sprintf("Constellation(%d)", uint8(c))
	}
}

// Normalization factors K_MOD (§17.3.5.7) giving unit average symbol power.
var kmod = map[Constellation]float64{
	BPSK:  1,
	QPSK:  1 / math.Sqrt2,
	QAM16: 1 / math.Sqrt(10),
	QAM64: 1 / math.Sqrt(42),
}

// gray2 maps 1 bit to a PAM-2 level, gray4/gray8 map 2/3 bits (Gray coded,
// per Figure 116 of the standard) to PAM-4/PAM-8 levels.
func gray2(b0 uint8) float64 {
	if b0 == 0 {
		return -1
	}
	return 1
}

func gray4(b0, b1 uint8) float64 {
	// b0 b1: 00->-3 01->-1 11->+1 10->+3
	switch b0<<1 | b1 {
	case 0b00:
		return -3
	case 0b01:
		return -1
	case 0b11:
		return 1
	default:
		return 3
	}
}

func gray8(b0, b1, b2 uint8) float64 {
	// 000->-7 001->-5 011->-3 010->-1 110->+1 111->+3 101->+5 100->+7
	switch b0<<2 | b1<<1 | b2 {
	case 0b000:
		return -7
	case 0b001:
		return -5
	case 0b011:
		return -3
	case 0b010:
		return -1
	case 0b110:
		return 1
	case 0b111:
		return 3
	case 0b101:
		return 5
	default:
		return 7
	}
}

// Map converts bpsc bits into one constellation point with unit average
// power. bits must hold exactly c's bits per point.
func (c Constellation) Map(bits []uint8) complex128 {
	k := kmod[c]
	switch c {
	case BPSK:
		return complex(gray2(bits[0])*k, 0)
	case QPSK:
		return complex(gray2(bits[0])*k, gray2(bits[1])*k)
	case QAM16:
		return complex(gray4(bits[0], bits[1])*k, gray4(bits[2], bits[3])*k)
	case QAM64:
		return complex(gray8(bits[0], bits[1], bits[2])*k,
			gray8(bits[3], bits[4], bits[5])*k)
	default:
		panic(fmt.Sprintf("wifi: unknown constellation %v", c))
	}
}

// Bits returns the number of bits per constellation point.
func (c Constellation) Bits() int {
	switch c {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	default:
		return 0
	}
}

func slicePAM4(v float64) (uint8, uint8) {
	switch {
	case v < -2:
		return 0, 0
	case v < 0:
		return 0, 1
	case v < 2:
		return 1, 1
	default:
		return 1, 0
	}
}

func slicePAM8(v float64) (uint8, uint8, uint8) {
	switch {
	case v < -6:
		return 0, 0, 0
	case v < -4:
		return 0, 0, 1
	case v < -2:
		return 0, 1, 1
	case v < 0:
		return 0, 1, 0
	case v < 2:
		return 1, 1, 0
	case v < 4:
		return 1, 1, 1
	case v < 6:
		return 1, 0, 1
	default:
		return 1, 0, 0
	}
}

// Demap hard-slices one equalized constellation point into bpsc bits,
// appending to dst and returning it.
func (c Constellation) Demap(p complex128, dst []uint8) []uint8 {
	k := kmod[c]
	re, im := real(p)/k, imag(p)/k
	switch c {
	case BPSK:
		return append(dst, b2u(re >= 0))
	case QPSK:
		return append(dst, b2u(re >= 0), b2u(im >= 0))
	case QAM16:
		b0, b1 := slicePAM4(re)
		b2, b3 := slicePAM4(im)
		return append(dst, b0, b1, b2, b3)
	case QAM64:
		b0, b1, b2 := slicePAM8(re)
		b3, b4, b5 := slicePAM8(im)
		return append(dst, b0, b1, b2, b3, b4, b5)
	default:
		panic(fmt.Sprintf("wifi: unknown constellation %v", c))
	}
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
