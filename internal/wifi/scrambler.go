package wifi

// Scrambler is the 802.11 frame-synchronous scrambler (§17.3.5.4): a 7-bit
// LFSR with generator x⁷ + x⁴ + 1. The same structure descrambles, so one
// type serves both directions.
type Scrambler struct {
	state uint8 // 7-bit state
}

// NewScrambler returns a scrambler seeded with the given 7-bit initial
// state. The standard requires a pseudorandom nonzero seed per frame; the
// receiver recovers it from the scrambled all-zero SERVICE bits.
func NewScrambler(seed uint8) *Scrambler {
	return &Scrambler{state: seed & 0x7F}
}

// NextBit returns the next scrambling-sequence bit and advances the LFSR.
func (s *Scrambler) NextBit() uint8 {
	// Feedback is x7 xor x4 of the current state.
	b := ((s.state >> 6) ^ (s.state >> 3)) & 1
	s.state = ((s.state << 1) | b) & 0x7F
	return b
}

// Process scrambles (or descrambles) bits in place and returns them.
func (s *Scrambler) Process(bits []uint8) []uint8 {
	for i := range bits {
		bits[i] ^= s.NextBit()
	}
	return bits
}

// RecoverSeed derives the transmitter's scrambler seed from the first seven
// descrambler-input bits of the DATA field, which the transmitter produced
// by scrambling seven zero SERVICE bits: the received bits are the raw
// scrambling sequence, from which the state is reconstructed.
func RecoverSeed(first7 []uint8) uint8 {
	// The 7 scrambling-sequence outputs are the successive feedback bits;
	// the state after 7 shifts consists exactly of those outputs, and
	// equals the original seed's image. Running the LFSR backwards from
	// them reconstructs the seed.
	var state uint8
	for _, b := range first7[:7] {
		state = ((state << 1) | (b & 1)) & 0x7F
	}
	// state now equals the LFSR state after the 7 seed-dependent outputs,
	// which is what NewScrambler needs to continue the sequence — i.e. we
	// return the state such that subsequent NextBit calls align with the
	// transmitter's bit 8 onward.
	return state
}
