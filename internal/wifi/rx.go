package wifi

import (
	"fmt"

	"repro/internal/dsp"
)

// Receiver-side processing: long-training-sequence synchronization, channel
// estimation, SIGNAL decoding, and DATA-field recovery. This is the "AP and
// client" side of the validation experiments — a frame that decodes with a
// valid FCS counts as received; a frame whose payload was hit by the jammer
// fails here and triggers MAC retransmission.
//
// The exported entry points borrow a pooled RxCodec (see batch.go) so the
// per-frame symbol pipeline and Viterbi decode reuse scratch instead of
// allocating; callers that process many frames back to back can hold their
// own RxCodec and use RxFrame directly for the fully allocation-free path.

// RxResult reports one demodulated PPDU.
type RxResult struct {
	// LTSIndex is the sample index of the first long training symbol.
	LTSIndex int
	// Rate and Length are the decoded SIGNAL parameters.
	Rate   Rate
	Length int
	// PSDU is the recovered payload (Length bytes).
	PSDU []byte
}

// ErrSync is returned when no plausible long training sequence is found.
var ErrSync = fmt.Errorf("wifi: synchronization failed")

// Sync locates the first long training symbol by correlating against the
// known LTS and requiring the characteristic double peak 64 samples apart.
// The search examines candidate start positions in [from, to).
func Sync(x dsp.Samples, from, to int) (int, error) {
	c := rxPool.Get().(*RxCodec)
	defer rxPool.Put(c)
	return c.sync(x, from, to)
}

// Demodulate recovers one PPDU from the waveform, searching for the long
// preamble start in [searchFrom, searchTo). On success the PSDU has been
// Viterbi-decoded and descrambled; FCS checking is the caller's (MAC's)
// concern. The returned result is a copy the caller owns.
func Demodulate(x dsp.Samples, searchFrom, searchTo int) (*RxResult, error) {
	c := rxPool.Get().(*RxCodec)
	defer rxPool.Put(c)
	res, err := c.RxFrame(x, searchFrom, searchTo)
	if err != nil {
		return nil, err
	}
	out := *res
	out.PSDU = append([]byte(nil), res.PSDU...)
	return &out, nil
}
