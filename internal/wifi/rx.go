package wifi

import (
	"fmt"
	"math/cmplx"

	"repro/internal/dsp"
)

// Receiver-side processing: long-training-sequence synchronization, channel
// estimation, SIGNAL decoding, and DATA-field recovery. This is the "AP and
// client" side of the validation experiments — a frame that decodes with a
// valid FCS counts as received; a frame whose payload was hit by the jammer
// fails here and triggers MAC retransmission.

// RxResult reports one demodulated PPDU.
type RxResult struct {
	// LTSIndex is the sample index of the first long training symbol.
	LTSIndex int
	// Rate and Length are the decoded SIGNAL parameters.
	Rate   Rate
	Length int
	// PSDU is the recovered payload (Length bytes).
	PSDU []byte
}

// ErrSync is returned when no plausible long training sequence is found.
var ErrSync = fmt.Errorf("wifi: synchronization failed")

// Sync locates the first long training symbol by correlating against the
// known LTS and requiring the characteristic double peak 64 samples apart.
// The search examines candidate start positions in [from, to).
func Sync(x dsp.Samples, from, to int) (int, error) {
	lts := LongTrainingSymbol()
	if from < 0 {
		from = 0
	}
	last := len(x) - (2*FFTSize + SymbolLen) // need LTS1+LTS2+SIGNAL after
	if to > last {
		to = last
	}
	if from >= to {
		return 0, ErrSync
	}
	// Correlation magnitude at every candidate offset in the window plus
	// one LTS length (for the second peak).
	n := to - from + FFTSize + 1
	mags := make([]float64, n)
	for i := 0; i < n; i++ {
		k := from + i
		var acc complex128
		for j := 0; j < FFTSize; j++ {
			acc += x[k+j] * cmplx.Conj(lts[j])
		}
		mags[i] = real(acc)*real(acc) + imag(acc)*imag(acc)
	}
	best, bestScore := -1, 0.0
	for i := 0; i+FFTSize < n; i++ {
		score := mags[i] + mags[i+FFTSize]
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return 0, ErrSync
	}
	// Reject pure-noise "peaks": the LTS autocorrelation at the right lag
	// concentrates energy; require the peak to dominate the window median.
	var sum float64
	for _, m := range mags {
		sum += m
	}
	mean := sum / float64(len(mags))
	if bestScore < 4*mean {
		return 0, ErrSync
	}
	return from + best, nil
}

// Demodulate recovers one PPDU from the waveform, searching for the long
// preamble start in [searchFrom, searchTo). On success the PSDU has been
// Viterbi-decoded and descrambled; FCS checking is the caller's (MAC's)
// concern.
func Demodulate(x dsp.Samples, searchFrom, searchTo int) (*RxResult, error) {
	ltsStart, err := Sync(x, searchFrom, searchTo)
	if err != nil {
		return nil, err
	}
	if len(x) < ltsStart+2*FFTSize+SymbolLen {
		return nil, fmt.Errorf("wifi: truncated frame after sync")
	}
	h := EstimateChannel(x[ltsStart:ltsStart+FFTSize],
		x[ltsStart+FFTSize:ltsStart+2*FFTSize])

	// SIGNAL symbol.
	sigStart := ltsStart + 2*FFTSize
	sigPts := DisassembleSymbol(x[sigStart:sigStart+SymbolLen], h, 0)
	sigBits := Deinterleave(DemapSymbolPoints(sigPts, Rate6), Rate6)
	sigDec, err := ViterbiDecode(sigBits, Punct1_2, 24, true)
	if err != nil {
		return nil, err
	}
	rate, length, err := parseSignalField(sigDec)
	if err != nil {
		return nil, err
	}

	// DATA symbols.
	nsym := NumDataSymbols(rate, length)
	dataStart := sigStart + SymbolLen
	if len(x) < dataStart+nsym*SymbolLen {
		return nil, fmt.Errorf("wifi: frame truncated (%d of %d data symbols)",
			(len(x)-dataStart)/SymbolLen, nsym)
	}
	cbps := rate.CodedBitsPerSymbol()
	coded := make([]uint8, 0, nsym*cbps)
	for s := 0; s < nsym; s++ {
		start := dataStart + s*SymbolLen
		pts := DisassembleSymbol(x[start:start+SymbolLen], h, 1+s)
		coded = append(coded, Deinterleave(DemapSymbolPoints(pts, rate), rate)...)
	}
	nbits := nsym * rate.BitsPerSymbol()
	bits, err := ViterbiDecode(coded, rate.Puncture(), nbits, false)
	if err != nil {
		return nil, err
	}

	// Descramble: the first 7 bits carry the seed (SERVICE bits are zero).
	state := RecoverSeed(bits[:7])
	desc := NewScrambler(state)
	desc.Process(bits[7:])
	for i := 0; i < 7; i++ {
		bits[i] = 0
	}
	psduBits := bits[ServiceBits : ServiceBits+8*length]
	return &RxResult{
		LTSIndex: ltsStart,
		Rate:     rate,
		Length:   length,
		PSDU:     BitsToBytes(psduBits),
	}, nil
}
