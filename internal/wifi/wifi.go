// Package wifi implements the IEEE 802.11a/g OFDM physical layer used by the
// validation experiments of §3 and §4: PLCP preamble generation (short and
// long training sequences), the SIGNAL field, and the full DATA-field coding
// chain (scrambler, K=7 convolutional code with puncturing, block
// interleaver, BPSK/QPSK/16-QAM/64-QAM mapping, 64-point OFDM with cyclic
// prefix), plus a complete receiver (synchronization, channel estimation,
// equalization, demapping, Viterbi decoding, FCS check).
//
// Waveforms are produced at the standard's native 20 MSPS; the jammer's
// receive chain resamples them to its fixed 25 MSPS, which is exactly the
// sampling-rate mismatch the paper identifies as the dominant limitation of
// the 64-sample correlator on long preambles (§3.2).
package wifi

import "fmt"

// PHY constants of the 802.11a/g OFDM PHY (20 MHz channelization).
const (
	// SampleRate is the native baseband rate: 20 MSPS.
	SampleRate = 20_000_000
	// FFTSize is the OFDM symbol size.
	FFTSize = 64
	// CPLen is the cyclic prefix (guard interval): 16 samples, 0.8 µs.
	CPLen = 16
	// SymbolLen is one OFDM symbol including guard: 80 samples, 4 µs.
	SymbolLen = FFTSize + CPLen
	// NumDataCarriers is the number of data subcarriers per symbol.
	NumDataCarriers = 48
	// NumPilots is the number of pilot subcarriers per symbol.
	NumPilots = 4
	// ShortPreambleLen is the 10-repetition short training sequence:
	// 160 samples, 8 µs.
	ShortPreambleLen = 160
	// ShortRepLen is one short training symbol repetition: 16 samples.
	ShortRepLen = 16
	// LongPreambleLen is the long training sequence: 32-sample GI2 plus two
	// 64-sample symbols, 160 samples, 8 µs.
	LongPreambleLen = 160
	// ServiceBits is the DATA-field SERVICE prefix (all zero, 7 of them
	// reset the descrambler).
	ServiceBits = 16
	// TailBits flushes the convolutional coder at the end of DATA.
	TailBits = 6
)

// Rate is an 802.11a/g OFDM data rate.
type Rate uint8

// The eight mandatory/optional OFDM rates.
const (
	Rate6 Rate = iota
	Rate9
	Rate12
	Rate18
	Rate24
	Rate36
	Rate48
	Rate54
)

// rateInfo captures the modulation/coding parameters of Table 78 in the
// standard.
type rateInfo struct {
	mbps     int
	bpsc     int // coded bits per subcarrier
	cbps     int // coded bits per OFDM symbol
	dbps     int // data bits per OFDM symbol
	punct    Puncture
	signal   uint8 // 4-bit RATE field encoding
	constell Constellation
}

var rateTable = [...]rateInfo{
	Rate6:  {6, 1, 48, 24, Punct1_2, 0b1101, BPSK},
	Rate9:  {9, 1, 48, 36, Punct3_4, 0b1111, BPSK},
	Rate12: {12, 2, 96, 48, Punct1_2, 0b0101, QPSK},
	Rate18: {18, 2, 96, 72, Punct3_4, 0b0111, QPSK},
	Rate24: {24, 4, 192, 96, Punct1_2, 0b1001, QAM16},
	Rate36: {36, 4, 192, 144, Punct3_4, 0b1011, QAM16},
	Rate48: {48, 6, 288, 192, Punct2_3, 0b0001, QAM64},
	Rate54: {54, 6, 288, 216, Punct3_4, 0b0011, QAM64},
}

// AllRates lists every OFDM rate, ascending.
var AllRates = []Rate{Rate6, Rate9, Rate12, Rate18, Rate24, Rate36, Rate48, Rate54}

// Valid reports whether r is a defined rate.
func (r Rate) Valid() bool { return int(r) < len(rateTable) }

// Mbps returns the nominal data rate in Mb/s.
func (r Rate) Mbps() int { return rateTable[r].mbps }

// BitsPerSymbol returns the data bits carried per OFDM symbol (N_DBPS).
func (r Rate) BitsPerSymbol() int { return rateTable[r].dbps }

// CodedBitsPerSymbol returns N_CBPS.
func (r Rate) CodedBitsPerSymbol() int { return rateTable[r].cbps }

// BitsPerSubcarrier returns N_BPSC.
func (r Rate) BitsPerSubcarrier() int { return rateTable[r].bpsc }

// Puncture returns the code puncturing pattern of the rate.
func (r Rate) Puncture() Puncture { return rateTable[r].punct }

// Constellation returns the subcarrier constellation of the rate.
func (r Rate) Constellation() Constellation { return rateTable[r].constell }

// SignalBits returns the 4-bit RATE encoding used in the SIGNAL field.
func (r Rate) SignalBits() uint8 { return rateTable[r].signal }

// RateFromSignalBits decodes the SIGNAL field RATE bits.
func RateFromSignalBits(bits uint8) (Rate, error) {
	for r, info := range rateTable {
		if info.signal == bits {
			return Rate(r), nil
		}
	}
	return 0, fmt.Errorf("wifi: invalid SIGNAL rate bits %04b", bits)
}

func (r Rate) String() string {
	if !r.Valid() {
		return fmt.Sprintf("Rate(%d)", uint8(r))
	}
	return fmt.Sprintf("%dMbps", rateTable[r].mbps)
}

// NumDataSymbols returns the number of OFDM DATA symbols needed to carry a
// PSDU of length psduBytes at rate r (SERVICE + PSDU + tail + pad, §17.3.5.3).
func NumDataSymbols(r Rate, psduBytes int) int {
	bits := ServiceBits + 8*psduBytes + TailBits
	dbps := r.BitsPerSymbol()
	return (bits + dbps - 1) / dbps
}

// FrameDuration returns the whole PPDU duration in 20 MSPS samples:
// preambles (16 µs) + SIGNAL (4 µs) + DATA symbols.
func FrameDuration(r Rate, psduBytes int) int {
	return ShortPreambleLen + LongPreambleLen + SymbolLen +
		NumDataSymbols(r, psduBytes)*SymbolLen
}
