package host

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/jammer"
	"repro/internal/trigger"
	"repro/internal/wimax"
	"repro/internal/xcorr"
)

func TestProgramCorrelatorLatencyAndEffect(t *testing.T) {
	c := core.New()
	h := New(c)
	rng := rand.New(rand.NewSource(1))
	tpl := make([]complex128, xcorr.Length)
	for i := range tpl {
		tpl[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	d, err := h.ProgramCorrelator(tpl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 14 coefficient registers + 1 threshold = 15 writes.
	if want := fpga.WriteLatency(15); d != want {
		t.Errorf("latency %v, want %v", d, want)
	}
	if c.XCorr().Threshold() == 0 {
		t.Error("threshold not programmed")
	}
	// The programmed correlator must trigger on its own template.
	if _, err := h.ProgramTrigger(core.FusionSequence,
		[]trigger.Event{trigger.EventXCorr}, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		c.ProcessSample(complex(rng.NormFloat64(), rng.NormFloat64()) * 0.01)
	}
	for _, s := range tpl {
		c.ProcessSample(s)
	}
	if c.Stats().XCorrDetections == 0 {
		t.Error("programmed template did not detect itself")
	}
}

func TestProgramCorrelatorValidation(t *testing.T) {
	h := New(core.New())
	tpl := make([]complex128, xcorr.Length)
	tpl[0] = 1
	if _, err := h.ProgramCorrelator(tpl, 0); err == nil {
		t.Error("zero threshold fraction accepted")
	}
	if _, err := h.ProgramCorrelator(tpl, 1.5); err == nil {
		t.Error(">1 threshold fraction accepted")
	}
}

func TestProgramEnergy(t *testing.T) {
	c := core.New()
	h := New(c)
	d, err := h.ProgramEnergy(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != fpga.WriteLatency(3) {
		t.Errorf("latency %v", d)
	}
	v, _ := c.Bus().Read(core.RegEnergyThreshHigh)
	if v != 1000 {
		t.Errorf("high threshold reg = %d, want 1000 centi-dB", v)
	}
	cfg, _ := c.Bus().Read(core.RegEnergyConfig)
	if cfg != 1 {
		t.Errorf("config = %b, want high-only", cfg)
	}
}

func TestProgramTriggerValidation(t *testing.T) {
	h := New(core.New())
	if _, err := h.ProgramTrigger(core.FusionAny, nil, 0); err == nil {
		t.Error("no events accepted")
	}
	if _, err := h.ProgramTrigger(core.FusionAny, make([]trigger.Event, 4), 0); err == nil {
		t.Error("too many events accepted")
	}
}

func TestProgramJammerPersonalities(t *testing.T) {
	c := core.New()
	h := New(c)
	d, err := h.ProgramJammer(ReactiveLong)
	if err != nil {
		t.Fatal(err)
	}
	// 4 registers — the personality switch costs ~1.2 µs of bus time, the
	// "hundreds of ns" per-setting latency of §4.3.
	if d != fpga.WriteLatency(4) {
		t.Errorf("switch latency %v", d)
	}
	if got := c.Jammer().UptimeSamples(); got != 2500 {
		t.Errorf("0.1ms uptime = %d samples, want 2500", got)
	}
	if _, err := h.ProgramJammer(ReactiveShort); err != nil {
		t.Fatal(err)
	}
	if got := c.Jammer().UptimeSamples(); got != 250 {
		t.Errorf("0.01ms uptime = %d samples, want 250", got)
	}
	if _, err := h.ProgramJammer(Continuous); err != nil {
		t.Fatal(err)
	}
	if got := c.Jammer().UptimeSamples(); got != 1_000_000_000 {
		t.Errorf("continuous uptime = %d samples", got)
	}
	if c.Jammer().Waveform() != jammer.WaveformWGN {
		t.Error("waveform not programmed")
	}
}

func TestProgramJammerValidation(t *testing.T) {
	h := New(core.New())
	if _, err := h.ProgramJammer(Personality{Gain: -1}); err == nil {
		t.Error("negative gain accepted")
	}
	if _, err := h.ProgramJammer(Personality{Gain: 100}); err == nil {
		t.Error("unencodable gain accepted")
	}
	// Zero uptime clamps to the 1-sample minimum rather than failing.
	c := core.New()
	h2 := New(c)
	if _, err := h2.ProgramJammer(Personality{Gain: 1}); err != nil {
		t.Fatal(err)
	}
	if c.Jammer().UptimeSamples() != 1 {
		t.Errorf("zero uptime clamped to %d", c.Jammer().UptimeSamples())
	}
}

func TestTemplatesHaveWindowLength(t *testing.T) {
	if n := len(WiFiLongTemplate()); n != xcorr.Length {
		t.Errorf("long template %d samples", n)
	}
	if n := len(WiFiShortTemplate()); n != xcorr.Length {
		t.Errorf("short template %d samples", n)
	}
	tpl, err := WiMAXTemplate(wimax.Config{CellID: 1, Segment: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(tpl) != xcorr.Length {
		t.Errorf("wimax template %d samples", len(tpl))
	}
	if _, err := WiMAXTemplate(wimax.Config{CellID: 99}); err == nil {
		t.Error("bad wimax config accepted")
	}
}

func TestTemplatesNonTrivial(t *testing.T) {
	for name, tpl := range map[string][]complex128{
		"long":  WiFiLongTemplate(),
		"short": WiFiShortTemplate(),
	} {
		var energy float64
		for _, s := range tpl {
			energy += real(s)*real(s) + imag(s)*imag(s)
		}
		if energy < 1 {
			t.Errorf("%s template nearly empty (energy %v)", name, energy)
		}
	}
}

func TestPersonalitySwitchIsSubMillisecond(t *testing.T) {
	// §4.3: "On-the-fly jamming personalities can be changed with a small
	// latency ... (hundreds of ns)" per register; the full switch must stay
	// far below a frame time.
	h := New(core.New())
	d, err := h.ProgramJammer(ReactiveShort)
	if err != nil {
		t.Fatal(err)
	}
	if d > 10*time.Microsecond {
		t.Errorf("personality switch took %v", d)
	}
}

func TestProgramCorrelatorFA(t *testing.T) {
	c := core.New()
	h := New(c)
	tpl := WiFiLongTemplate()
	d, err := h.ProgramCorrelatorFA(tpl, 0.52)
	if err != nil {
		t.Fatal(err)
	}
	if d != fpga.WriteLatency(15) {
		t.Errorf("latency %v", d)
	}
	i, q := xcorr.CoefficientsFromTemplate(tpl)
	want := xcorr.ThresholdForFARate(i, q, 0.52)
	if got := c.XCorr().Threshold(); got != want {
		t.Errorf("threshold %d, want %d", got, want)
	}
	if _, err := h.ProgramCorrelatorFA(tpl, 0); err == nil {
		t.Error("zero FA target accepted")
	}
	if _, err := h.ProgramCorrelatorFA(tpl, -1); err == nil {
		t.Error("negative FA target accepted")
	}
}

func TestSetCorrelatorThreshold(t *testing.T) {
	c := core.New()
	h := New(c)
	if _, err := h.SetCorrelatorThreshold(4242); err != nil {
		t.Fatal(err)
	}
	if c.XCorr().Threshold() != 4242 {
		t.Error("threshold write did not land")
	}
}

func TestProgramEnergyBothDirections(t *testing.T) {
	c := core.New()
	h := New(c)
	if _, err := h.ProgramEnergy(10, 6); err != nil {
		t.Fatal(err)
	}
	cfg, _ := c.Bus().Read(core.RegEnergyConfig)
	if cfg != 3 {
		t.Errorf("config %b, want both enabled", cfg)
	}
	if _, err := h.ProgramEnergy(0, 0); err != nil {
		t.Fatal(err)
	}
	cfg, _ = c.Bus().Read(core.RegEnergyConfig)
	if cfg != 0 {
		t.Errorf("config %b, want disabled", cfg)
	}
}

func TestRawRateTemplates(t *testing.T) {
	if n := len(WiFiLongTemplateRawRate()); n != xcorr.Length {
		t.Errorf("raw long template %d samples", n)
	}
	if n := len(WiFiShortTemplateRawRate()); n != xcorr.Length {
		t.Errorf("raw short template %d samples", n)
	}
	if n := len(WiFiBTemplate()); n != xcorr.Length {
		t.Errorf("802.11b template %d samples", n)
	}
}

func TestProgramJammerUptimeClampHigh(t *testing.T) {
	c := core.New()
	h := New(c)
	if _, err := h.ProgramJammer(Personality{Gain: 1, Uptime: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if c.Jammer().UptimeSamples() != 1<<32-1 {
		t.Errorf("hour-long uptime clamped to %d", c.Jammer().UptimeSamples())
	}
}
