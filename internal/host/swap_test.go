package host

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/trigger"
	"repro/internal/wimax"
	"repro/internal/xcorr"
)

// feedNoise runs n low-level noise samples through the core.
func feedNoise(c *core.Core, rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		c.ProcessSample(complex(rng.NormFloat64(), rng.NormFloat64()) * 0.01)
	}
}

// feedFrame plays a template waveform into the core at full amplitude,
// padded with noise on both sides, and returns how many new correlator
// detections it produced.
func feedFrame(c *core.Core, rng *rand.Rand, frame []complex128) uint64 {
	before := c.Stats().XCorrDetections
	feedNoise(c, rng, 200)
	for _, s := range frame {
		c.ProcessSample(s)
	}
	feedNoise(c, rng, 200)
	return c.Stats().XCorrDetections - before
}

// TestMidStreamTemplateSwap reprograms the correlator from the WiFi short
// preamble to the WiMAX downlink preamble while samples keep flowing — the
// §4.3 on-the-fly personality switch. It pins down three contracts:
//
//   - bus-latency accounting: the full template swap costs exactly
//     fpga.WriteLatency(15) (14 coefficient registers + threshold) and the
//     jammer personality swap exactly fpga.WriteLatency(4);
//   - selectivity on both sides of the swap: WiFi detects only before,
//     WiMAX only after;
//   - no stale-coefficient triggers: while the banks are half WiFi, half
//     WiMAX (threshold intentionally written last), the receive stream
//     running between the register writes must produce zero detections.
func TestMidStreamTemplateSwap(t *testing.T) {
	c := core.New()
	h := New(c)
	rng := rand.New(rand.NewSource(7))

	wifiTpl := WiFiShortTemplate()
	wimaxTpl, err := WiMAXTemplate(wimax.Config{CellID: 1, Segment: 0})
	if err != nil {
		t.Fatal(err)
	}

	if d, err := h.ProgramCorrelator(wifiTpl, 0.5); err != nil {
		t.Fatal(err)
	} else if d != fpga.WriteLatency(15) {
		t.Errorf("WiFi programming latency %v, want %v", d, fpga.WriteLatency(15))
	}
	if _, err := h.ProgramTrigger(core.FusionSequence,
		[]trigger.Event{trigger.EventXCorr}, 0); err != nil {
		t.Fatal(err)
	}
	if d, err := h.ProgramJammer(ReactiveShort); err != nil {
		t.Fatal(err)
	} else if d != fpga.WriteLatency(4) {
		t.Errorf("personality latency %v, want %v", d, fpga.WriteLatency(4))
	}

	// Before the swap: the WiFi personality detects WiFi and rejects WiMAX.
	if n := feedFrame(c, rng, wifiTpl); n == 0 {
		t.Fatal("WiFi personality missed the WiFi preamble")
	}
	if n := feedFrame(c, rng, wimaxTpl); n != 0 {
		t.Fatalf("WiFi personality detected WiMAX preamble %d times", n)
	}

	// Mid-stream swap: issue the same 15 writes ProgramCorrelator would,
	// but interleave the receive stream between them. Each setting-bus write
	// takes RegWriteLatency (300 ns) while the ADC keeps delivering a sample
	// every 40 ns, so ~7 samples land inside every write slot. The threshold
	// register goes last, so throughout the window the core is running a
	// frankenbank of old and new coefficients against the old threshold —
	// exactly the state that must not fire on live traffic.
	samplesPerWrite := int(fpga.RegWriteLatency / fpga.SamplePeriod)
	wi, wq := xcorr.CoefficientsFromTemplate(wimaxTpl)
	thresh := uint32(float64(xcorr.IdealPeakMetric(wimaxTpl)) * 0.5)
	swapWrites := make([]struct {
		addr uint8
		v    uint32
	}, 0, 15)
	for r, v := range core.PackCoefficients(wi) {
		swapWrites = append(swapWrites, struct {
			addr uint8
			v    uint32
		}{core.RegXCorrCoefI0 + uint8(r), v})
	}
	for r, v := range core.PackCoefficients(wq) {
		swapWrites = append(swapWrites, struct {
			addr uint8
			v    uint32
		}{core.RegXCorrCoefQ0 + uint8(r), v})
	}
	swapWrites = append(swapWrites, struct {
		addr uint8
		v    uint32
	}{core.RegXCorrThreshold, thresh})

	detBefore := c.Stats().XCorrDetections
	var swapLatency = fpga.WriteLatency(0)
	for _, w := range swapWrites {
		d, err := h.write(w.addr, w.v)
		if err != nil {
			t.Fatal(err)
		}
		swapLatency += d
		feedNoise(c, rng, samplesPerWrite)
	}
	if swapLatency != fpga.WriteLatency(len(swapWrites)) {
		t.Errorf("swap latency %v, want %v", swapLatency, fpga.WriteLatency(len(swapWrites)))
	}
	if det := c.Stats().XCorrDetections - detBefore; det != 0 {
		t.Fatalf("stale-coefficient window produced %d detections", det)
	}

	// Jammer personality rides along with the template swap.
	if d, err := h.ProgramJammer(ReactiveLong); err != nil {
		t.Fatal(err)
	} else if d != fpga.WriteLatency(4) {
		t.Errorf("personality latency %v, want %v", d, fpga.WriteLatency(4))
	}

	// After the swap the selectivity inverts: WiMAX detects, WiFi rejects.
	if n := feedFrame(c, rng, wimaxTpl); n == 0 {
		t.Fatal("WiMAX personality missed the WiMAX preamble")
	}
	if n := feedFrame(c, rng, wifiTpl); n != 0 {
		t.Fatalf("WiMAX personality detected WiFi preamble %d times", n)
	}
	if got := c.XCorr().Threshold(); got != thresh {
		t.Errorf("threshold %d after swap, want %d", got, thresh)
	}
}
