// Package host implements the host-side control application of §2.5: the
// GNU-Radio-based backend that generates correlator coefficient templates
// offline, programs the custom DSP core through the UHD user register bus,
// and switches jammer personalities on the fly.
//
// Templates are produced by resampling a standard's preamble waveform to
// the core's fixed 25 MSPS rate and truncating to the 64-sample correlation
// window — exactly the procedure whose consequences §3.2 and §5 analyze
// ("an orthogonal code that is 3.2 µs long is being correlated across its
// first 2.56 µs").
package host

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/fpga"
	"repro/internal/jammer"
	"repro/internal/trigger"
	"repro/internal/wifi"
	"repro/internal/wifib"
	"repro/internal/wimax"
	"repro/internal/xcorr"
)

// Host drives one core's register bus, tracking the modeled bus latency of
// every programming action.
type Host struct {
	core *core.Core
}

// New returns a host controller attached to the core.
func New(c *core.Core) *Host { return &Host{core: c} }

// write programs one register, returning its bus latency.
func (h *Host) write(addr uint8, v uint32) (time.Duration, error) {
	if err := h.core.Bus().Write(addr, v); err != nil {
		return 0, err
	}
	return fpga.RegWriteLatency, nil
}

// PollFeedback reads the core's host-feedback counters ("Synchro Flags")
// the way the GNU Radio host polls them, journaling the poll through the
// core's telemetry recorder.
func (h *Host) PollFeedback() core.Stats {
	return h.core.PollFeedback()
}

// ProgramCorrelator quantizes the template into the two coefficient banks,
// writes them plus the threshold, and returns the total bus latency.
// thresholdFrac sets the trigger threshold as a fraction of the template's
// ideal (noiseless) peak metric.
func (h *Host) ProgramCorrelator(tpl []complex128, thresholdFrac float64) (time.Duration, error) {
	if thresholdFrac <= 0 || thresholdFrac > 1 {
		return 0, fmt.Errorf("host: threshold fraction %v outside (0,1]", thresholdFrac)
	}
	i, q := xcorr.CoefficientsFromTemplate(tpl)
	peak := xcorr.IdealPeakMetric(tpl)
	thresh := uint32(float64(peak) * thresholdFrac)
	if thresh == 0 {
		thresh = 1
	}
	var total time.Duration
	iRegs := core.PackCoefficients(i)
	qRegs := core.PackCoefficients(q)
	for r, v := range iRegs {
		d, err := h.write(core.RegXCorrCoefI0+uint8(r), v)
		if err != nil {
			return total, err
		}
		total += d
	}
	for r, v := range qRegs {
		d, err := h.write(core.RegXCorrCoefQ0+uint8(r), v)
		if err != nil {
			return total, err
		}
		total += d
	}
	d, err := h.write(core.RegXCorrThreshold, thresh)
	return total + d, err
}

// ProgramCorrelatorFA programs the template with the threshold calibrated
// to a target false-alarm rate on terminated input (triggers per second),
// the §3.2 characterization methodology.
func (h *Host) ProgramCorrelatorFA(tpl []complex128, faPerSec float64) (time.Duration, error) {
	if faPerSec <= 0 {
		return 0, fmt.Errorf("host: false-alarm target %v must be positive", faPerSec)
	}
	i, q := xcorr.CoefficientsFromTemplate(tpl)
	thresh := xcorr.ThresholdForFARate(i, q, faPerSec)
	var total time.Duration
	for r, v := range core.PackCoefficients(i) {
		d, err := h.write(core.RegXCorrCoefI0+uint8(r), v)
		if err != nil {
			return total, err
		}
		total += d
	}
	for r, v := range core.PackCoefficients(q) {
		d, err := h.write(core.RegXCorrCoefQ0+uint8(r), v)
		if err != nil {
			return total, err
		}
		total += d
	}
	d, err := h.write(core.RegXCorrThreshold, thresh)
	return total + d, err
}

// SetCorrelatorThreshold adjusts only the trigger threshold.
func (h *Host) SetCorrelatorThreshold(t uint32) (time.Duration, error) {
	return h.write(core.RegXCorrThreshold, t)
}

// ProgramEnergy configures the energy differentiator. Pass a zero dB value
// to disable the corresponding direction.
func (h *Host) ProgramEnergy(highDB, lowDB float64) (time.Duration, error) {
	var cfg uint32
	if highDB > 0 {
		cfg |= 1
	}
	if lowDB > 0 {
		cfg |= 2
	}
	var total time.Duration
	d, err := h.write(core.RegEnergyThreshHigh, uint32(highDB*100))
	if err != nil {
		return total, err
	}
	total += d
	if d, err = h.write(core.RegEnergyThreshLow, uint32(lowDB*100)); err != nil {
		return total, err
	}
	total += d
	d, err = h.write(core.RegEnergyConfig, cfg)
	return total + d, err
}

// ProgramTrigger configures the event builder: fusion mode, event sequence
// (1..3 events) and completion window in samples.
func (h *Host) ProgramTrigger(mode core.FusionMode, events []trigger.Event, window uint64) (time.Duration, error) {
	if len(events) == 0 || len(events) > trigger.MaxStages {
		return 0, fmt.Errorf("host: need 1..%d trigger events, got %d",
			trigger.MaxStages, len(events))
	}
	var cfg uint32
	for s, e := range events {
		cfg |= uint32(e&0xF) << (4 * s)
	}
	cfg |= uint32(len(events)) << 12
	if mode == core.FusionAny {
		cfg |= 1 << 14
	}
	var total time.Duration
	d, err := h.write(core.RegTriggerWindow, uint32(window))
	if err != nil {
		return total, err
	}
	total += d
	d, err = h.write(core.RegTriggerConfig, cfg)
	return total + d, err
}

// Personality bundles the jammer settings that define one jamming behavior;
// §4.3 demonstrates switching between these at run time on a single
// hardware instantiation.
type Personality struct {
	// Name labels the personality in reports.
	Name string
	// Waveform selects the TX preset.
	Waveform jammer.Waveform
	// Uptime is the burst duration.
	Uptime time.Duration
	// Delay postpones the burst after the trigger ("surgical" jamming).
	Delay time.Duration
	// Gain is the TX amplitude scale (1.0 = unity).
	Gain float64
	// Antenna drives the 4 antenna-control GPIO lines.
	Antenna uint8
}

// Standard personalities used in the §4.3 experiments.
var (
	// ReactiveLong is the 0.1 ms-uptime reactive jammer.
	ReactiveLong = Personality{Name: "reactive-0.1ms", Waveform: jammer.WaveformWGN,
		Uptime: 100 * time.Microsecond, Gain: 1}
	// ReactiveShort is the 0.01 ms-uptime reactive jammer.
	ReactiveShort = Personality{Name: "reactive-0.01ms", Waveform: jammer.WaveformWGN,
		Uptime: 10 * time.Microsecond, Gain: 1}
	// Continuous approximates the always-on jammer with the maximum burst.
	Continuous = Personality{Name: "continuous", Waveform: jammer.WaveformWGN,
		Uptime: 40 * time.Second, Gain: 1}
)

// ProgramJammer writes a personality to the core and returns the bus
// latency of the switch — the "small latency equivalent to the latency of
// the UHD user setting bus (hundreds of ns)" per register of §4.3.
func (h *Host) ProgramJammer(p Personality) (time.Duration, error) {
	if p.Gain < 0 || p.Gain > 65.535 {
		return 0, fmt.Errorf("host: gain %v outside [0, 65.535]", p.Gain)
	}
	up := fpga.DurationToSamples(p.Uptime)
	if up == 0 {
		up = 1
	}
	if up > 1<<32-1 {
		up = 1<<32 - 1
	}
	var total time.Duration
	writes := []struct {
		addr uint8
		v    uint32
	}{
		{core.RegJammerWaveform, uint32(p.Waveform)},
		{core.RegJammerUptime, uint32(up)},
		{core.RegJammerDelay, uint32(fpga.DurationToSamples(p.Delay))},
		{core.RegJammerGainAnt, uint32(p.Gain*1000) | uint32(p.Antenna&0xF)<<16},
	}
	for _, w := range writes {
		d, err := h.write(w.addr, w.v)
		if err != nil {
			return total, err
		}
		total += d
	}
	return total, nil
}

// WiFiLongTemplate returns the 64-sample correlation template for the WiFi
// long preamble: the 3.2 µs long training symbol resampled to the core's
// fixed 25 MSPS (80 samples) and truncated to the 64-sample window — §3.2's
// "orthogonal code that is 3.2 µs long is being correlated across its first
// 2.56 µs". The truncation, the sign-bit slicing and the 3-bit coefficients
// are what limit Fig. 6's curves.
func WiFiLongTemplate() []complex128 {
	return clampTemplate(dsp.Resample(wifi.LongTrainingSymbol(), 5, 4))
}

// WiFiLongTemplateRawRate returns the naive alternative of loading the
// 20 MSPS long training symbol directly without rate correction: every
// received sample slips 0.8 template samples, the correlation never
// accumulates coherently (peak ≈ 20% of the matched value), and detection
// collapses below any useful false-alarm threshold. The ablation benches
// use it to show why the host-side resampling step matters.
func WiFiLongTemplateRawRate() []complex128 {
	return clampTemplate(wifi.LongTrainingSymbol())
}

// WiFiShortTemplate returns the 64-sample template for the WiFi short
// preamble: the cyclic 0.8 µs short training symbol resampled to 25 MSPS
// (period 20 samples, 3.2 repetitions per window). The code's ten cyclic
// repetitions per frame are what keep Fig. 7 detection high.
func WiFiShortTemplate() []complex128 {
	return clampTemplate(dsp.Resample(wifi.ShortPreamble(), 5, 4))
}

// WiFiShortTemplateRawRate is the uncorrected 20 MSPS short-preamble
// template, for the rate-mismatch ablation.
func WiFiShortTemplateRawRate() []complex128 {
	return clampTemplate(wifi.ShortPreamble())
}

// WiMAXTemplate returns the 64-sample template for a WiMAX downlink
// preamble: the 11.4 MSPS OFDMA preamble symbol resampled to 25 MSPS
// (125/57) and truncated — only the first 2.56 µs of the 25 µs code.
func WiMAXTemplate(cfg wimax.Config) ([]complex128, error) {
	pre, err := wimax.PreambleSymbol(cfg)
	if err != nil {
		return nil, err
	}
	rs := dsp.Resample(pre[wimax.CPLen:], 125, 57)
	return clampTemplate(rs), nil
}

// templateSkip drops the polyphase filter's ramp-up from the head of a
// resampled template so the coefficients describe steady-state signal (the
// receive chain resamples continuously and has no per-frame transient).
const templateSkip = 10

func clampTemplate(s dsp.Samples) []complex128 {
	if len(s) > templateSkip+xcorr.Length {
		s = s[templateSkip:]
	}
	if len(s) > xcorr.Length {
		s = s[:xcorr.Length]
	}
	return s
}

// WiFiBTemplate returns the 64-sample template for the 802.11b DSSS long
// preamble: the scrambled-ones SYNC field (Barker-spread DBPSK at
// 22 MSPS) resampled to 25 MSPS. The SYNC scrambler seed is fixed by the
// standard's long-preamble convention, so the waveform is predictable —
// the "low-entropy portion" §2.3 says templates may be inferred from.
func WiFiBTemplate() []complex128 {
	sync := wifib.SyncWaveform(8, 0x1B)
	return clampTemplate(dsp.Resample(sync, 25, 22))
}
