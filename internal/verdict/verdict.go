// Package verdict joins reconstructed detection engagements against ground
// truth — which packets were actually on the air, expressed as hardware
// clock windows — and classifies every packet as a true positive, false
// negative or late jam, and every stray engagement as a false positive. The
// per-packet records form the verdict ledger (one JSONL row per packet plus
// one per false-positive engagement), and the aggregate summary yields the
// Pd / false-alarm figures that must reconcile with the counter-based
// detection characterization: both are derived from the same datapath run,
// the counters by differencing and the ledger by windowing the journal, so
// any divergence is an instrumentation bug, not measurement noise.
package verdict

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
)

// Class is the verdict for one packet or engagement.
type Class uint8

// The verdict taxonomy.
const (
	// TP: the packet was detected and jamming energy reached RF while the
	// packet was still on the air.
	TP Class = iota
	// FP: an engagement opened by detector edges outside every packet
	// window (noise or spur triggered).
	FP
	// FN: the packet produced no detector edge of the configured kind.
	FN
	// Late: the packet was detected but the jam reached RF only after the
	// packet had ended (or never reached RF at all) — the "late jam" bucket
	// of the reaction-latency analysis.
	Late
)

func (c Class) String() string {
	switch c {
	case TP:
		return "TP"
	case FP:
		return "FP"
	case FN:
		return "FN"
	case Late:
		return "LATE"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// MarshalJSON renders the class as its string form.
func (c Class) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// Packet is one ground-truth packet: a half-open hardware-clock window
// (Start, End] during which the packet's samples traversed the datapath. The
// windows are clock readings taken around the receive call that carried the
// packet, so a detector edge caused by the packet always satisfies
// Start < cycle <= End (the clock advances before events are journaled).
type Packet struct {
	// Index is the packet's ordinal in the run.
	Index int
	// Start is the clock cycle before the packet's first sample entered.
	Start uint64
	// End is the clock cycle after its last sample was processed.
	End uint64
}

// contains reports whether the cycle falls in the packet window.
func (p Packet) contains(cycle uint64) bool { return p.Start < cycle && cycle <= p.End }

// Record is one ledger row: the verdict for one packet, or for one
// false-positive engagement (Packet == -1).
type Record struct {
	// Packet is the ground-truth packet index, -1 for a false-positive
	// engagement row.
	Packet int `json:"packet"`
	// Class is the verdict.
	Class Class `json:"class"`
	// Start and End echo the packet window (or the engagement extent for
	// FP rows), in hardware clock cycles.
	Start uint64 `json:"start_cycle"`
	End   uint64 `json:"end_cycle"`
	// Eng is the matched engagement ID (0 when none — FN rows).
	Eng uint32 `json:"eng,omitempty"`
	// Detect is the first configured-kind detector edge inside the window.
	Detect uint64 `json:"detect_cycle,omitempty"`
	// Fire is the trigger decision cycle (0 when the trigger never fired).
	Fire uint64 `json:"fire_cycle,omitempty"`
	// RFOn is the jam-TX-on cycle (0 when no jam reached RF).
	RFOn uint64 `json:"rf_on_cycle,omitempty"`
	// Reaction is RFOn minus the window start: how long after the packet
	// began the jam landed.
	Reaction uint64 `json:"reaction_cycles,omitempty"`
	// Overlap is how many cycles of the jamming burst fell inside the
	// packet window (0 for a fully late jam).
	Overlap uint64 `json:"jam_overlap_cycles,omitempty"`
}

// Options configures classification.
type Options struct {
	// Kinds lists the detector-edge kinds that count as detections; empty
	// means all three (xcorr, energy-high, energy-low). A characterization
	// run that counts one detector (as CharacterizeDetection does) must
	// pass exactly that kind for the ledger to reconcile with the counter
	// figures.
	Kinds []telemetry.EventKind
}

func (o Options) kindSet() map[telemetry.EventKind]bool {
	ks := o.Kinds
	if len(ks) == 0 {
		ks = []telemetry.EventKind{
			telemetry.EvXCorrEdge, telemetry.EvEnergyHighEdge, telemetry.EvEnergyLowEdge,
		}
	}
	m := make(map[telemetry.EventKind]bool, len(ks))
	for _, k := range ks {
		m[k] = true
	}
	return m
}

// Summary aggregates the ledger.
type Summary struct {
	// Packets is the ground-truth packet count.
	Packets int `json:"packets"`
	// TP, FN and Late partition the packets.
	TP   int `json:"tp"`
	FN   int `json:"fn"`
	Late int `json:"late"`
	// FPEngagements counts engagements classified FP.
	FPEngagements int `json:"fp_engagements"`
	// FalseAlarmEdges counts configured-kind detector edges outside every
	// packet window — the quantity the counter-based false-alarm
	// calibration measures.
	FalseAlarmEdges uint64 `json:"false_alarm_edges"`
	// DetectionEdges counts configured-kind detector edges inside packet
	// windows (the counter-based sweep's detection total).
	DetectionEdges uint64 `json:"detection_edges"`
	// Pd is the detection probability: (TP + Late) / Packets.
	Pd float64 `json:"pd"`
	// JamSuccess is TP / Packets: detected and jammed in time.
	JamSuccess float64 `json:"jam_success"`
	// LateFraction is Late / (TP + Late): of the detected packets, how many
	// were jammed too late (0 when nothing was detected).
	LateFraction float64 `json:"late_fraction"`
}

// Result is the full classification output.
type Result struct {
	// Records holds one row per packet (in packet order) followed by one
	// row per false-positive engagement (in engagement order).
	Records []Record
	Summary Summary
}

// Classify joins ground-truth packets against the engagements reconstructed
// from the same run's journal. Packets must be sorted by Start and
// non-overlapping (they are clock windows of sequential receive calls, so
// this holds by construction; Classify verifies it).
func Classify(packets []Packet, engs []span.Engagement, opts Options) (*Result, error) {
	for i := 1; i < len(packets); i++ {
		if packets[i].Start < packets[i-1].End {
			return nil, fmt.Errorf("verdict: packet windows overlap or unsorted at index %d", i)
		}
	}
	kinds := opts.kindSet()

	// find returns the index of the packet whose window contains the cycle.
	find := func(cycle uint64) int {
		i := sort.Search(len(packets), func(i int) bool { return packets[i].End >= cycle })
		if i < len(packets) && packets[i].contains(cycle) {
			return i
		}
		return -1
	}

	type match struct {
		eng     *span.Engagement
		detect  uint64 // first configured-kind edge in the window
		hasEdge bool
	}
	matches := make([]match, len(packets))
	var res Result

	for i := range engs {
		e := &engs[i]
		inWindow := false
		var engExtentStart, engExtentEnd uint64
		hasKindEdge := false
		for _, ev := range e.Events {
			if !kinds[ev.Kind] {
				continue
			}
			if !hasKindEdge {
				engExtentStart = ev.Cycle
				hasKindEdge = true
			}
			engExtentEnd = ev.Cycle
			if pi := find(ev.Cycle); pi >= 0 {
				inWindow = true
				res.Summary.DetectionEdges++
				m := &matches[pi]
				if !m.hasEdge {
					m.eng, m.detect, m.hasEdge = e, ev.Cycle, true
				}
			} else {
				res.Summary.FalseAlarmEdges++
			}
		}
		if hasKindEdge && !inWindow {
			res.Summary.FPEngagements++
			rec := Record{
				Packet: -1, Class: FP,
				Start: engExtentStart, End: engExtentEnd,
				Eng: e.ID, Detect: engExtentStart,
			}
			if e.HasFire {
				rec.Fire = e.Fire
			}
			if e.HasRF {
				rec.RFOn = e.RFOn
			}
			res.Records = append(res.Records, rec)
		}
	}

	fpRows := res.Records
	res.Records = make([]Record, 0, len(packets)+len(fpRows))
	res.Summary.Packets = len(packets)
	for pi, p := range packets {
		rec := Record{Packet: p.Index, Start: p.Start, End: p.End}
		m := matches[pi]
		if !m.hasEdge {
			rec.Class = FN
			res.Summary.FN++
			res.Records = append(res.Records, rec)
			continue
		}
		e := m.eng
		rec.Eng, rec.Detect = e.ID, m.detect
		if e.HasFire {
			rec.Fire = e.Fire
		}
		if e.HasRF {
			rec.RFOn = e.RFOn
			rec.Reaction = e.RFOn - p.Start
			if e.RFOn <= p.End {
				// Burst ∩ window; an engagement still mid-burst at capture
				// time jams through the window end.
				off := e.RFOff
				if off < e.RFOn || off > p.End {
					off = p.End
				}
				rec.Overlap = off - e.RFOn
			}
		}
		if e.HasRF && e.RFOn <= p.End {
			rec.Class = TP
			res.Summary.TP++
		} else {
			rec.Class = Late
			res.Summary.Late++
		}
		res.Records = append(res.Records, rec)
	}
	res.Records = append(res.Records, fpRows...)

	s := &res.Summary
	if s.Packets > 0 {
		s.Pd = float64(s.TP+s.Late) / float64(s.Packets)
		s.JamSuccess = float64(s.TP) / float64(s.Packets)
	}
	if det := s.TP + s.Late; det > 0 {
		s.LateFraction = float64(s.Late) / float64(det)
	}
	return &res, nil
}

// WriteJSONL writes the ledger as one JSON object per line: every record,
// then a final summary line tagged {"summary": ...}.
func (r *Result) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, rec := range r.Records {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return enc.Encode(map[string]Summary{"summary": r.Summary})
}
