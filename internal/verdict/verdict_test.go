package verdict

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/telemetry/span"
)

// fixture builds three ground-truth packets and a journal where packet 0 is
// jammed in time, packet 1 is detected but jammed after its window, packet 2
// is missed entirely, and one noise engagement fires between packets.
func fixture() ([]Packet, []span.Engagement) {
	packets := []Packet{
		{Index: 0, Start: 1000, End: 2000},
		{Index: 1, Start: 3000, End: 4000},
		{Index: 2, Start: 5000, End: 6000},
	}
	events := []telemetry.Event{
		// Packet 0: edge at 1100, fire, RF on at 1140 — inside the window.
		{Cycle: 1100, Kind: telemetry.EvXCorrEdge, Eng: 1},
		{Cycle: 1100, Kind: telemetry.EvTriggerFire, Eng: 1},
		{Cycle: 1140, Kind: telemetry.EvJamRFOn, Eng: 1},
		{Cycle: 1900, Kind: telemetry.EvJamRFOff, Eng: 1},
		{Cycle: 1964, Kind: telemetry.EvHoldoffRelease, Eng: 1},
		// Noise engagement between packets: false positive.
		{Cycle: 2500, Kind: telemetry.EvXCorrEdge, Eng: 2},
		{Cycle: 2564, Kind: telemetry.EvHoldoffRelease, Eng: 2},
		// Packet 1: detected at 3900 but RF only at 4500 — late.
		{Cycle: 3900, Kind: telemetry.EvXCorrEdge, Eng: 3},
		{Cycle: 3900, Kind: telemetry.EvTriggerFire, Eng: 3},
		{Cycle: 4500, Kind: telemetry.EvJamRFOn, Eng: 3},
		{Cycle: 4600, Kind: telemetry.EvJamRFOff, Eng: 3},
		{Cycle: 4664, Kind: telemetry.EvHoldoffRelease, Eng: 3},
		// Packet 2: no events at all — false negative.
	}
	return packets, span.Build(events)
}

func TestClassifyTaxonomy(t *testing.T) {
	packets, engs := fixture()
	res, err := Classify(packets, engs, Options{Kinds: []telemetry.EventKind{telemetry.EvXCorrEdge}})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Packets != 3 || s.TP != 1 || s.Late != 1 || s.FN != 1 || s.FPEngagements != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Pd != 2.0/3.0 {
		t.Errorf("Pd = %v, want 2/3", s.Pd)
	}
	if s.JamSuccess != 1.0/3.0 {
		t.Errorf("JamSuccess = %v, want 1/3", s.JamSuccess)
	}
	if s.LateFraction != 0.5 {
		t.Errorf("LateFraction = %v, want 0.5", s.LateFraction)
	}
	if s.DetectionEdges != 2 || s.FalseAlarmEdges != 1 {
		t.Errorf("edges det=%d fa=%d, want 2/1", s.DetectionEdges, s.FalseAlarmEdges)
	}

	// Per-packet rows in packet order, then FP rows.
	if len(res.Records) != 4 {
		t.Fatalf("got %d records, want 4", len(res.Records))
	}
	r0 := res.Records[0]
	if r0.Class != TP || r0.Eng != 1 || r0.Detect != 1100 || r0.RFOn != 1140 {
		t.Errorf("packet 0 record = %+v", r0)
	}
	if r0.Reaction != 140 {
		t.Errorf("packet 0 reaction = %d, want 140", r0.Reaction)
	}
	if r0.Overlap != 760 { // burst 1140..1900 inside window ending 2000
		t.Errorf("packet 0 overlap = %d, want 760", r0.Overlap)
	}
	if r1 := res.Records[1]; r1.Class != Late || r1.Eng != 3 || r1.Overlap != 0 {
		t.Errorf("packet 1 record = %+v", r1)
	}
	if r2 := res.Records[2]; r2.Class != FN || r2.Eng != 0 {
		t.Errorf("packet 2 record = %+v", r2)
	}
	if fp := res.Records[3]; fp.Class != FP || fp.Packet != -1 || fp.Eng != 2 {
		t.Errorf("fp record = %+v", fp)
	}
}

func TestClassifyKindFiltering(t *testing.T) {
	// Counting only energy-high edges, the xcorr-only journal yields zero
	// detections: all three packets are FN and no FP is recorded.
	packets, engs := fixture()
	res, err := Classify(packets, engs, Options{Kinds: []telemetry.EventKind{telemetry.EvEnergyHighEdge}})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Summary; s.FN != 3 || s.TP != 0 || s.FPEngagements != 0 || s.Pd != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestClassifyWindowBoundaries(t *testing.T) {
	// Containment is (Start, End]: an edge exactly at Start belongs to the
	// previous interval, an edge exactly at End is inside.
	packets := []Packet{{Index: 0, Start: 100, End: 200}}
	for _, tc := range []struct {
		cycle uint64
		want  Class
	}{
		{100, FN}, // at Start: outside
		{101, Late},
		{200, Late}, // at End: inside
		{201, FN},
	} {
		engs := span.Build([]telemetry.Event{
			{Cycle: tc.cycle, Kind: telemetry.EvXCorrEdge, Eng: 1},
		})
		res, err := Classify(packets, engs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Records[0].Class != tc.want {
			t.Errorf("edge at %d: packet class = %v, want %v", tc.cycle, res.Records[0].Class, tc.want)
		}
	}
}

func TestClassifyRejectsOverlap(t *testing.T) {
	_, err := Classify([]Packet{
		{Index: 0, Start: 100, End: 300},
		{Index: 1, Start: 200, End: 400},
	}, nil, Options{})
	if err == nil {
		t.Fatal("overlapping windows accepted")
	}
}

func TestWriteJSONL(t *testing.T) {
	packets, engs := fixture()
	res, err := Classify(packets, engs, Options{Kinds: []telemetry.EventKind{telemetry.EvXCorrEdge}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", len(lines), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 5 { // 3 packets + 1 FP + summary
		t.Fatalf("got %d JSONL lines, want 5", len(lines))
	}
	if lines[0]["class"] != "TP" || lines[0]["packet"] != float64(0) {
		t.Errorf("first row = %v", lines[0])
	}
	if _, ok := lines[4]["summary"]; !ok {
		t.Errorf("last row is not the summary: %v", lines[4])
	}
	if strings.Contains(buf.String(), "Class(") {
		t.Error("unmapped class name leaked into ledger")
	}
}
