package testbed

import (
	"math"
	"testing"

	"repro/internal/dsp"
)

func TestTable1Values(t *testing.T) {
	n := New()
	// Spot checks straight from the paper's Table 1.
	cases := []struct {
		from, to int
		want     float64
	}{
		{PortAP, PortClient, -51.0},
		{PortAP, PortScope, -25.2},
		{PortAP, PortJammerTX, -38.4},
		{PortAP, PortJammerRX, -39.3},
		{PortClient, PortScope, -31.7},
		{PortJammerTX, PortAP, -38.4},
		{PortJammerRX, PortAP, -39.2},
		{PortScope, PortJammerRX, -19.9},
	}
	for _, c := range cases {
		got, err := n.InsertionLossDB(c.from, c.to)
		if err != nil || got != c.want {
			t.Errorf("loss(%d->%d) = %v, %v; want %v", c.from, c.to, got, err, c.want)
		}
	}
}

func TestReciprocityWithinMeasurementTolerance(t *testing.T) {
	// The measured network is passive, so losses are reciprocal up to VNA
	// measurement error (the paper's table differs by ≤0.1 dB).
	n := New()
	for a := 1; a <= NumPorts; a++ {
		for b := a + 1; b <= NumPorts; b++ {
			ab, err1 := n.InsertionLossDB(a, b)
			ba, err2 := n.InsertionLossDB(b, a)
			if (err1 == nil) != (err2 == nil) {
				t.Errorf("asymmetric isolation between %d and %d", a, b)
				continue
			}
			if err1 != nil {
				continue
			}
			if math.Abs(ab-ba) > 0.15 {
				t.Errorf("loss(%d,%d)=%v but loss(%d,%d)=%v", a, b, ab, b, a, ba)
			}
		}
	}
}

func TestIsolatedAndInvalidPairs(t *testing.T) {
	n := New()
	if _, err := n.InsertionLossDB(PortJammerTX, PortJammerRX); err == nil {
		t.Error("jammer TX->RX should be isolated (unmeasured in Table 1)")
	}
	if _, err := n.InsertionLossDB(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := n.InsertionLossDB(0, 3); err == nil {
		t.Error("port 0 accepted")
	}
	if _, err := n.InsertionLossDB(1, 6); err == nil {
		t.Error("port 6 accepted")
	}
	if g := n.PathGain(PortJammerTX, PortJammerRX); g != 0 {
		t.Errorf("isolated path gain %v, want 0", g)
	}
}

func TestPathGainMatchesLoss(t *testing.T) {
	n := New()
	g := n.PathGain(PortAP, PortClient)
	want := dsp.AmplitudeFromDB(-51)
	if math.Abs(g-want) > 1e-12 {
		t.Errorf("PathGain = %v, want %v", g, want)
	}
	pg := n.PathPowerGain(PortAP, PortClient)
	if math.Abs(dsp.DB(pg)-(-51)) > 1e-9 {
		t.Errorf("power gain = %v dB, want -51", dsp.DB(pg))
	}
}

func TestVariableAttenuatorOnPort4(t *testing.T) {
	n := New()
	base := n.PathGain(PortJammerTX, PortAP)
	if err := n.SetVariableAttenuator(20); err != nil {
		t.Fatal(err)
	}
	if n.VariableAttenuator() != 20 {
		t.Error("accessor")
	}
	got := n.PathGain(PortJammerTX, PortAP)
	if math.Abs(got-base/10) > 1e-12 {
		t.Errorf("20 dB pad: gain %v, want %v", got, base/10)
	}
	// Paths not involving port 4 are unaffected.
	if n.PathGain(PortAP, PortClient) != dsp.AmplitudeFromDB(-51) {
		t.Error("variable attenuator leaked into AP-client path")
	}
	if err := n.SetVariableAttenuator(-1); err == nil {
		t.Error("negative attenuation accepted")
	}
}

func TestMeasureTable(t *testing.T) {
	n := New()
	tab := n.MeasureTable()
	if !math.IsNaN(tab[0][0]) {
		t.Error("diagonal should be NaN")
	}
	if tab[0][1] != -51.0 {
		t.Errorf("tab[0][1] = %v", tab[0][1])
	}
	if !math.IsNaN(tab[3][4]) {
		t.Error("isolated 4->5 should be NaN")
	}
}
