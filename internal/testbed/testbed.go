// Package testbed models the wired, non-disruptive experimental setup of
// §4.1 (Fig. 9): a 5-port interconnect network built from power splitters,
// with 20 dB attenuators on ports 1 and 2 and a variable attenuator on
// port 4. The insertion losses between ports are the measured values of
// Table 1, characterized with a vector network analyzer.
//
// Port assignment follows the paper: 1 = access point, 2 = wireless client,
// 3 = oscilloscope, 4 = jammer transmitter, 5 = jammer receiver.
package testbed

import (
	"fmt"
	"math"

	"repro/internal/dsp"
)

// NumPorts is the size of the interconnect network.
const NumPorts = 5

// Port identities (1-based, as in Fig. 9).
const (
	PortAP       = 1
	PortClient   = 2
	PortScope    = 3
	PortJammerTX = 4
	PortJammerRX = 5
)

// table1 holds the measured insertion losses in dB (input port selects the
// row, output port the column, 1-based, matching the paper's layout).
// Values are negative gains exactly as printed in Table 1.
var table1 = [NumPorts + 1][NumPorts + 1]float64{
	1: {0, 0, -51.0, -25.2, -38.4, -39.3},
	2: {0, -51.0, 0, -31.7, -32.0, -32.8},
	3: {0, -25.2, -31.7, 0, -19.1, -19.9},
	4: {0, -38.4, -32.0, -19.1, 0, math.Inf(-1)},
	5: {0, -39.2, -32.8, -19.8, math.Inf(-1), 0},
}

// Network is the 5-port splitter interconnect. The zero value is not
// usable; construct with New.
type Network struct {
	loss        [NumPorts + 1][NumPorts + 1]float64
	variableAtt float64 // extra dB inserted at port 4 (jammer TX)
}

// New returns the network with the paper's measured Table 1 losses and the
// variable attenuator at 0 dB.
func New() *Network {
	n := &Network{}
	n.loss = table1
	return n
}

// InsertionLossDB returns the measured loss in dB from input port to output
// port (a negative number), excluding the variable attenuator. It returns
// an error for invalid or isolated port pairs.
func (n *Network) InsertionLossDB(from, to int) (float64, error) {
	if from < 1 || from > NumPorts || to < 1 || to > NumPorts {
		return 0, fmt.Errorf("testbed: port pair (%d,%d) out of range", from, to)
	}
	if from == to {
		return 0, fmt.Errorf("testbed: port %d to itself is not a path", from)
	}
	l := n.loss[from][to]
	if math.IsInf(l, -1) {
		return 0, fmt.Errorf("testbed: ports %d and %d are isolated", from, to)
	}
	return l, nil
}

// SetVariableAttenuator sets the extra attenuation (dB, ≥0) in line with
// port 4, used to sweep the jammer's effective power over a large dynamic
// range.
func (n *Network) SetVariableAttenuator(db float64) error {
	if db < 0 {
		return fmt.Errorf("testbed: negative attenuation %v dB", db)
	}
	n.variableAtt = db
	return nil
}

// VariableAttenuator returns the current port-4 pad value in dB.
func (n *Network) VariableAttenuator() float64 { return n.variableAtt }

// PathGain returns the amplitude gain from one port to another, including
// the variable attenuator when the path involves port 4. Isolated or
// invalid pairs have zero gain.
func (n *Network) PathGain(from, to int) float64 {
	l, err := n.InsertionLossDB(from, to)
	if err != nil {
		return 0
	}
	if from == PortJammerTX || to == PortJammerTX {
		l -= n.variableAtt
	}
	return dsp.AmplitudeFromDB(l)
}

// PathPowerGain returns the power gain (linear) for a port pair.
func (n *Network) PathPowerGain(from, to int) float64 {
	g := n.PathGain(from, to)
	return g * g
}

// MeasureTable performs the VNA-style characterization of §4.1: it returns
// the full port-to-port insertion-loss matrix in dB (NaN on the diagonal and
// for isolated pairs), which experiment E5 prints as Table 1.
func (n *Network) MeasureTable() [NumPorts][NumPorts]float64 {
	var out [NumPorts][NumPorts]float64
	for in := 1; in <= NumPorts; in++ {
		for o := 1; o <= NumPorts; o++ {
			l, err := n.InsertionLossDB(in, o)
			if err != nil {
				out[in-1][o-1] = math.NaN()
				continue
			}
			out[in-1][o-1] = l
		}
	}
	return out
}
