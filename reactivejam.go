// Package reactivejam is a software reproduction of "A Real-Time and
// Protocol-Aware Reactive Jamming Framework Built on Software-Defined
// Radios" (Nguyen et al., ACM SRIF 2014): a reactive jammer built from a
// cross-correlating preamble detector, an energy differentiator, a
// three-stage trigger state machine and a fast transmit controller, all
// modeled at the fidelity of the paper's USRP N210 FPGA implementation
// (25 MSPS baseband, 100 MHz hardware clock, 80 ns trigger-to-RF
// turnaround).
//
// The Framework type is the high-level entry point: configure a detector
// (WiFi short/long preamble templates, a WiMAX downlink preamble, a plain
// energy rise, or any custom template), pick a jamming personality
// (waveform, uptime, delay, gain), and stream complex baseband samples
// through Process. Detection, triggering and the jamming response all
// happen inside the sample loop with hardware-accurate latencies.
//
// Lower layers live in internal/: the 802.11g and 802.16e modems, the
// 5-port wired testbed of the paper's §4, an iperf-style bandwidth
// harness, and the experiment drivers that regenerate every figure and
// table of the paper (see DESIGN.md and EXPERIMENTS.md).
package reactivejam

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/host"
	"repro/internal/jammer"
	"repro/internal/radio"
	"repro/internal/telemetry"
	"repro/internal/trigger"
	"repro/internal/wimax"
)

// Waveform selects the jamming waveform preset (paper §2.4).
type Waveform uint8

// The three hardware waveform presets.
const (
	// WGN transmits pseudorandom wideband Gaussian noise.
	WGN Waveform = iota
	// Replay repetitively replays up to the 512 most recently received
	// samples.
	Replay
	// HostStream transmits the waveform the host streamed via
	// SetHostWaveform.
	HostStream
)

// Personality bundles the run-time jammer settings. Switching personalities
// costs only register-bus writes (≈1.2 µs), never an FPGA reprogram.
type Personality struct {
	// Name labels the personality in logs and reports.
	Name string
	// Waveform selects the TX preset.
	Waveform Waveform
	// Uptime is the jamming burst duration (40 ns .. ~40 s).
	Uptime time.Duration
	// Delay postpones the burst after the trigger for "surgical" jamming
	// of specific packet regions.
	Delay time.Duration
	// Gain is the TX amplitude scale (1.0 = unit-power waveform).
	Gain float64
}

// Stats mirrors the core's host-feedback counters (a snapshot of the
// telemetry counter block).
type Stats struct {
	Samples              uint64
	XCorrDetections      uint64
	EnergyHighDetections uint64
	EnergyLowDetections  uint64
	JamTriggers          uint64
	JamSamples           uint64
	RegWrites            uint64
	HostPolls            uint64
}

// Timelines is the reactive-jamming latency budget (paper Fig. 5).
type Timelines struct {
	// EnergyDetect is the worst-case energy-rise detection latency.
	EnergyDetect time.Duration
	// XCorrDetect is the cross-correlation detection latency.
	XCorrDetect time.Duration
	// TXInit is the trigger-to-RF turnaround.
	TXInit time.Duration
	// JamBurst is the configured burst duration.
	JamBurst time.Duration
	// ResponseEnergy and ResponseXCorr are total system response times.
	ResponseEnergy time.Duration
	ResponseXCorr  time.Duration
}

// Framework is a complete reactive jamming platform instance: a simulated
// USRP N210 whose receive chain feeds the custom detection/jamming DSP
// core, plus the host-side register programming layer.
type Framework struct {
	radio *radio.N210
	host  *host.Host
	tel   *telemetry.Live
}

// New returns a framework tuned to WiFi channel 14 (2.484 GHz) with both
// TX and RX chains initialized, no detector armed, and a muted jammer.
func New() *Framework {
	r := radio.New()
	f := &Framework{radio: r, host: host.New(r.Core())}
	r.Start()
	return f
}

// Tune sets the RF center frequency (SBX front end: 400 MHz – 4.4 GHz).
func (f *Framework) Tune(hz float64) error { return f.radio.Tune(hz) }

// SetSourceRate declares the sample rate of the stream passed to Process;
// the receive chain resamples it to the core's fixed 25 MSPS. Use
// 25_000_000 (the default) for native-rate input.
func (f *Framework) SetSourceRate(hz int) error { return f.radio.SetSourceRate(hz) }

// GroupDelayCycles returns the receive front end's group delay in hardware
// clock cycles at the current source rate — the allowance latency budgets
// anchored at the frame boundary entering the radio must add on top of the
// paper's detection timeline.
func (f *Framework) GroupDelayCycles() uint64 { return f.radio.GroupDelayCycles() }

// DetectEnergyRise arms the energy differentiator alone: the platform
// reacts to any in-band energy rise of at least thresholdDB (3–30 dB).
func (f *Framework) DetectEnergyRise(thresholdDB float64) error {
	if _, err := f.host.ProgramEnergy(thresholdDB, 0); err != nil {
		return err
	}
	_, err := f.host.ProgramTrigger(core.FusionSequence,
		[]trigger.Event{trigger.EventEnergyHigh}, 0)
	return err
}

// DetectWiFiShortPreamble arms the cross-correlator with the 802.11g short
// training sequence template at the given terminated-input false-alarm
// rate (triggers per second).
func (f *Framework) DetectWiFiShortPreamble(faPerSec float64) error {
	return f.useTemplateFA(host.WiFiShortTemplate(), faPerSec)
}

// DetectWiFiLongPreamble arms the cross-correlator with the 802.11g long
// training sequence template.
func (f *Framework) DetectWiFiLongPreamble(faPerSec float64) error {
	return f.useTemplateFA(host.WiFiLongTemplate(), faPerSec)
}

// DetectWiMAX arms both detectors for an 802.16e downlink (the §5 fusion
// configuration): preamble correlation for the given cell/segment OR an
// energy rise, whichever fires first.
func (f *Framework) DetectWiMAX(cellID, segment int) error {
	tpl, err := host.WiMAXTemplate(wimax.Config{CellID: cellID, Segment: segment})
	if err != nil {
		return err
	}
	if _, err := f.host.ProgramCorrelator(tpl, 0.86); err != nil {
		return err
	}
	if _, err := f.host.ProgramEnergy(10, 0); err != nil {
		return err
	}
	_, err = f.host.ProgramTrigger(core.FusionAny,
		[]trigger.Event{trigger.EventXCorr, trigger.EventEnergyHigh}, 0)
	return err
}

// UseTemplate arms the cross-correlator with a custom 64-sample complex
// baseband template (at 25 MSPS) and a threshold set as a fraction of the
// template's matched peak.
func (f *Framework) UseTemplate(tpl []complex128, thresholdFrac float64) error {
	if _, err := f.host.ProgramCorrelator(tpl, thresholdFrac); err != nil {
		return err
	}
	_, err := f.host.ProgramTrigger(core.FusionSequence,
		[]trigger.Event{trigger.EventXCorr}, 0)
	return err
}

func (f *Framework) useTemplateFA(tpl []complex128, faPerSec float64) error {
	if _, err := f.host.ProgramCorrelatorFA(tpl, faPerSec); err != nil {
		return err
	}
	_, err := f.host.ProgramTrigger(core.FusionSequence,
		[]trigger.Event{trigger.EventXCorr}, 0)
	return err
}

// SetPersonality switches the jammer behavior at run time and returns the
// modeled register-bus latency of the switch.
func (f *Framework) SetPersonality(p Personality) (time.Duration, error) {
	if p.Waveform > HostStream {
		return 0, fmt.Errorf("reactivejam: unknown waveform %d", p.Waveform)
	}
	return f.host.ProgramJammer(host.Personality{
		Name:     p.Name,
		Waveform: jammer.Waveform(p.Waveform),
		Uptime:   p.Uptime,
		Delay:    p.Delay,
		Gain:     p.Gain,
	})
}

// SetHostWaveform supplies the buffer transmitted by the HostStream preset.
func (f *Framework) SetHostWaveform(buf []complex128) {
	f.radio.Core().Jammer().SetHostStream(buf)
}

// Process streams received complex baseband through the platform and
// returns the transmit output (zero while not jamming). The output is at
// the core's native 25 MSPS regardless of the source rate.
func (f *Framework) Process(rx []complex128) ([]complex128, error) {
	return f.radio.Process(rx)
}

// Stats returns the host-feedback counters.
func (f *Framework) Stats() Stats {
	return statsFrom(f.radio.Core().Stats())
}

// Poll reads the feedback counters the way the GNU Radio host polls the
// core's "Synchro Flags" — identical to Stats except the poll itself is
// counted and journaled through the telemetry layer.
func (f *Framework) Poll() Stats {
	return statsFrom(f.host.PollFeedback())
}

func statsFrom(s core.Stats) Stats {
	return Stats{
		Samples:              s.Samples,
		XCorrDetections:      s.XCorrDetections,
		EnergyHighDetections: s.EnergyHighDetections,
		EnergyLowDetections:  s.EnergyLowDetections,
		JamTriggers:          s.JamTriggers,
		JamSamples:           s.JamSamples,
		RegWrites:            s.RegWrites,
		HostPolls:            s.HostPolls,
	}
}

// ResetStats clears the feedback counters.
func (f *Framework) ResetStats() { f.radio.Core().ResetStats() }

// Timelines reports the latency budget for the current configuration.
func (f *Framework) Timelines() Timelines {
	tl := f.radio.Core().Timelines()
	return Timelines{
		EnergyDetect:   tl.TenDet,
		XCorrDetect:    tl.TxcorrDet,
		TXInit:         tl.TInit,
		JamBurst:       tl.TJam,
		ResponseEnergy: tl.TRespEnergy,
		ResponseXCorr:  tl.TRespXCorr,
	}
}

// Elapsed returns the simulated hardware time since Start.
func (f *Framework) Elapsed() time.Duration {
	return f.radio.Core().Clock().Now()
}

// TelemetrySummary is the one-line shutdown digest of a telemetry-enabled
// run.
type TelemetrySummary struct {
	// Samples and JamTriggers are the headline counters.
	Samples     uint64
	JamTriggers uint64
	// ReactionP50 and ReactionP99 summarize the frame-start→RF-on latency
	// histogram (zero when no frame markers were recorded).
	ReactionP50 time.Duration
	ReactionP99 time.Duration
	// Events is the number of events currently held in the journal.
	Events int
}

// EnableTelemetry attaches a live event recorder (journal, histograms and
// counters) to the core. Idempotent; returns the recorder for direct access
// to snapshots and the trace/metrics writers.
func (f *Framework) EnableTelemetry() *telemetry.Live {
	if f.tel == nil {
		f.tel = telemetry.NewLive(telemetry.DefaultJournalDepth)
		f.radio.Core().SetRecorder(f.tel)
	}
	return f.tel
}

// TelemetryEnabled reports whether a live recorder is attached.
func (f *Framework) TelemetryEnabled() bool { return f.tel != nil }

// Telemetry returns the attached live recorder, or nil when telemetry is
// disabled.
func (f *Framework) Telemetry() *telemetry.Live { return f.tel }

// MarkFrame journals a frame-start marker for a frame beginning
// offsetSourceSamples into the next buffer handed to Process (at the
// declared source rate). Reaction-latency histograms measure from these
// markers to the first jamming sample on air.
func (f *Framework) MarkFrame(offsetSourceSamples int) {
	f.radio.MarkFrame(offsetSourceSamples)
}

// WriteTrace dumps the event journal as Chrome trace_event JSON
// (chrome://tracing / Perfetto). Fails when telemetry is disabled.
func (f *Framework) WriteTrace(w io.Writer) error {
	if f.tel == nil {
		return fmt.Errorf("reactivejam: telemetry not enabled")
	}
	return f.tel.WriteTrace(w)
}

// MetricsHandler returns the Prometheus-style text exposition handler, or
// nil when telemetry is disabled.
func (f *Framework) MetricsHandler() http.Handler {
	if f.tel == nil {
		return nil
	}
	return f.tel.Handler()
}

// Summary digests the current telemetry state. Zero-valued when telemetry
// is disabled.
func (f *Framework) Summary() TelemetrySummary {
	if f.tel == nil {
		return TelemetrySummary{}
	}
	snap := f.tel.Snapshot()
	sum := TelemetrySummary{
		Samples:     snap.Counters.Samples,
		JamTriggers: snap.Counters.JamTriggers,
		Events:      snap.Events,
	}
	if h := snap.Histogram(telemetry.HistReaction); h.Count > 0 {
		sum.ReactionP50 = h.P50Duration()
		sum.ReactionP99 = h.P99Duration()
	}
	return sum
}

// DetectWiFiBPreamble arms the cross-correlator with the 802.11b DSSS long
// preamble's scrambled SYNC template. The DSSS SYNC is purely real (BPSK),
// so the threshold sits at 0.72 of the matched peak to reject unrelated
// wideband signals.
func (f *Framework) DetectWiFiBPreamble() error {
	return f.UseTemplate(host.WiFiBTemplate(), 0.72)
}
