package reactivejam

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/dsp"
	"repro/internal/wifi"
	"repro/internal/wimax"
)

func TestQuickstartFlow(t *testing.T) {
	f := New()
	if err := f.DetectWiFiShortPreamble(0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SetPersonality(Personality{
		Name: "test", Waveform: WGN, Uptime: 50 * time.Microsecond, Gain: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.SetSourceRate(wifi.SampleRate); err != nil {
		t.Fatal(err)
	}

	// One WiFi frame in quiet noise: the platform must detect and jam it.
	frame, err := wifi.Modulate(wifi.AppendFCS(make([]byte, 100)),
		wifi.TxConfig{Rate: wifi.Rate24, ScramblerSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	buf := make(dsp.Samples, 512+len(frame)+512)
	copy(buf[512:], frame)
	buf.Scale(0.3)
	rng := rand.New(rand.NewSource(1))
	for i := range buf {
		buf[i] += complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-4
	}
	tx, err := f.Process(buf)
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.XCorrDetections == 0 || st.JamTriggers == 0 {
		t.Fatalf("no detection: %+v", st)
	}
	active := 0
	for _, s := range tx {
		if s != 0 {
			active++
		}
	}
	// 50 µs at 25 MSPS = 1250 samples.
	if active != 1250 {
		t.Errorf("jam burst %d samples, want 1250", active)
	}
	if f.Elapsed() <= 0 {
		t.Error("hardware clock did not advance")
	}
}

func TestEnergyDetectionFlow(t *testing.T) {
	f := New()
	if err := f.DetectEnergyRise(10); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SetPersonality(Personality{Waveform: Replay, Uptime: 10 * time.Microsecond, Gain: 1}); err != nil {
		t.Fatal(err)
	}
	buf := make(dsp.Samples, 4000)
	for i := 1000; i < 3000; i++ {
		buf[i] = complex(0.4, 0)
	}
	rng := rand.New(rand.NewSource(2))
	for i := range buf {
		buf[i] += complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-3
	}
	if _, err := f.Process(buf); err != nil {
		t.Fatal(err)
	}
	if f.Stats().EnergyHighDetections == 0 {
		t.Error("energy rise not detected")
	}
}

func TestWiMAXDetectionFlow(t *testing.T) {
	f := New()
	if err := f.Tune(2.608e9); err != nil {
		t.Fatal(err)
	}
	if err := f.DetectWiMAX(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.SetSourceRate(wimax.ActualSampleRate); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SetPersonality(Personality{Waveform: WGN, Uptime: 100 * time.Microsecond, Gain: 1}); err != nil {
		t.Fatal(err)
	}
	frame, err := wimax.DownlinkFrame(wimax.Config{CellID: 1, Segment: 0}, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	buf := frame[:12*wimax.SymbolLen].Clone().Scale(0.3)
	lead := make(dsp.Samples, 2048)
	buf = append(lead, buf...)
	rng := rand.New(rand.NewSource(3))
	for i := range buf {
		buf[i] += complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-3
	}
	if _, err := f.Process(buf); err != nil {
		t.Fatal(err)
	}
	if f.Stats().JamTriggers == 0 {
		t.Error("WiMAX downlink not detected")
	}
	if err := f.DetectWiMAX(99, 0); err == nil {
		t.Error("invalid cell ID accepted")
	}
}

func TestPersonalityValidationAndTimelines(t *testing.T) {
	f := New()
	if _, err := f.SetPersonality(Personality{Waveform: Waveform(9)}); err == nil {
		t.Error("bogus waveform accepted")
	}
	if _, err := f.SetPersonality(Personality{Waveform: WGN, Uptime: 100 * time.Microsecond, Gain: 1}); err != nil {
		t.Fatal(err)
	}
	tl := f.Timelines()
	if tl.TXInit != 80*time.Nanosecond {
		t.Errorf("TXInit = %v, want 80ns (paper abstract)", tl.TXInit)
	}
	if tl.ResponseXCorr != 2640*time.Nanosecond {
		t.Errorf("ResponseXCorr = %v", tl.ResponseXCorr)
	}
	if tl.JamBurst != 100*time.Microsecond {
		t.Errorf("JamBurst = %v", tl.JamBurst)
	}
}

func TestHostStreamWaveform(t *testing.T) {
	f := New()
	if err := f.DetectEnergyRise(10); err != nil {
		t.Fatal(err)
	}
	if _, err := f.SetPersonality(Personality{Waveform: HostStream, Uptime: time.Microsecond, Gain: 1}); err != nil {
		t.Fatal(err)
	}
	f.SetHostWaveform([]complex128{0.5, -0.5})
	buf := make(dsp.Samples, 3000)
	for i := 1000; i < 2500; i++ {
		buf[i] = complex(0.5, 0)
	}
	rng := rand.New(rand.NewSource(4))
	for i := range buf {
		buf[i] += complex(rng.NormFloat64(), rng.NormFloat64()) * 1e-3
	}
	tx, err := f.Process(buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []complex128
	for _, s := range tx {
		if s != 0 {
			got = append(got, s)
		}
	}
	if len(got) == 0 {
		t.Fatal("host-stream jammer never transmitted")
	}
	if got[0] != 0.5 {
		t.Errorf("first host-stream sample %v, want 0.5", got[0])
	}
	f.ResetStats()
	if f.Stats().Samples != 0 {
		t.Error("ResetStats incomplete")
	}
}
