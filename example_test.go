package reactivejam_test

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/dsp"
	"repro/internal/wifi"
)

// Example demonstrates the complete detect-and-jam loop against one
// 802.11g frame.
func Example() {
	jam := reactivejam.New()
	if err := jam.DetectWiFiShortPreamble(0.059); err != nil {
		panic(err)
	}
	if _, err := jam.SetPersonality(reactivejam.Personality{
		Waveform: reactivejam.WGN,
		Uptime:   100 * time.Microsecond,
		Gain:     1,
	}); err != nil {
		panic(err)
	}
	if err := jam.SetSourceRate(wifi.SampleRate); err != nil {
		panic(err)
	}

	frame, err := wifi.Modulate(wifi.AppendFCS(make([]byte, 64)),
		wifi.TxConfig{Rate: wifi.Rate24, ScramblerSeed: 0x2A})
	if err != nil {
		panic(err)
	}
	// Leave enough tail for the whole 100 µs (2500-sample) burst.
	rx := make(dsp.Samples, 600+len(frame)+2600)
	copy(rx[600:], frame)

	tx, err := jam.Process(rx)
	if err != nil {
		panic(err)
	}
	active := 0
	for _, s := range tx {
		if s != 0 {
			active++
		}
	}
	st := jam.Stats()
	fmt.Printf("triggered: %v, burst: %d samples\n", st.JamTriggers > 0, active)
	// Output: triggered: true, burst: 2500 samples
}

// ExampleFramework_Timelines prints the paper's Fig. 5 latency budget.
func ExampleFramework_Timelines() {
	jam := reactivejam.New()
	if _, err := jam.SetPersonality(reactivejam.Personality{
		Waveform: reactivejam.WGN, Uptime: 10 * time.Microsecond, Gain: 1,
	}); err != nil {
		panic(err)
	}
	tl := jam.Timelines()
	fmt.Printf("detect %v, init %v, respond %v\n",
		tl.XCorrDetect, tl.TXInit, tl.ResponseXCorr)
	// Output: detect 2.56µs, init 80ns, respond 2.64µs
}
